#pragma once
// Real-socket backend: the identical RUDP engine over UDP on localhost.
//
// RealtimeLoop implements the Executor interface against the monotonic
// clock with an epoll(7)-driven event loop and a timerfd-armed timer heap;
// UdpWire encodes segments with the wire codec and moves them through an
// actual AF_INET datagram socket in sendmmsg/recvmmsg batches. Used by the
// loopback example, the integration tests, the two-process soak and
// bench_wire to demonstrate the protocol is a deployable transport, not
// only a simulation artifact. docs/WIRE.md has the event-loop contract,
// the batching/zero-copy lifetime rules and the soak instructions.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "iq/common/bytes.hpp"
#include "iq/common/rng.hpp"
#include "iq/rudp/segment_wire.hpp"
#include "iq/sim/timer_wheel.hpp"

// Forward-declared here so <sys/socket.h> stays out of this header.
struct mmsghdr;
struct iovec;

namespace iq::wire {

/// Epoll-based realtime executor.
///
/// Contract (docs/WIRE.md):
///  * Single-threaded: every callback (fd readiness, timers, hooks) runs on
///    the thread inside run_until/run_for/poll_once.
///  * Timers are timerfd-armed: a due timer fires without any forced sleep,
///    and sub-millisecond waits sleep their actual duration instead of
///    being floored to 1 ms (regression-tested — the poll(2) predecessor
///    imposed a systematic >=1 ms latency floor on every RTO/keepalive).
///  * Readiness callbacks may add_fd/remove_fd freely, including removing
///    the fd being dispatched or any other fd in the same ready batch:
///    dispatch resolves each event against the *current* watch list, and a
///    watcher removed mid-dispatch is skipped, not misdispatched.
class RealtimeLoop final : public sim::Executor {
 public:
  RealtimeLoop();
  ~RealtimeLoop() override;
  RealtimeLoop(const RealtimeLoop&) = delete;
  RealtimeLoop& operator=(const RealtimeLoop&) = delete;

  TimePoint now() const override;
  sim::EventId schedule_at(TimePoint t, sim::EventFn fn) override;
  bool cancel_event(sim::EventId id) override;

  /// Watch a file descriptor; `on_readable` runs when it has data.
  void add_fd(int fd, std::function<void()> on_readable);
  void remove_fd(int fd);

  /// Register a hook that runs after every dispatch round, before the loop
  /// can block — the transmit-batching flush point: wires queue datagrams
  /// during dispatch and push the whole batch in one sendmmsg here, so
  /// batching never adds latency (nothing queued ever waits out a sleep).
  using HookId = std::uint64_t;
  HookId add_before_wait(std::function<void()> hook);
  void remove_before_wait(HookId id);

  /// Run until `done()` returns true or `max_wall` elapses.
  /// Returns true if `done()` was satisfied.
  bool run_until(const std::function<bool()>& done,
                 Duration max_wall = Duration::seconds(30));
  /// Run for a fixed wall-clock span.
  void run_for(Duration wall);

  /// One event-loop iteration: fire due timers, flush, wait (at most
  /// `max_wait`, cut short by fd readiness or the next timer deadline),
  /// dispatch, fire due timers, flush. Public so benches and external
  /// drivers (the soak) can interleave the loop with their own work.
  void poll_once(Duration max_wait);

 private:
  /// Heap-stable watcher record: epoll events carry the Watcher pointer,
  /// and removal during dispatch only marks it dead (compacted after the
  /// dispatch round), so a callback mutating the watch list can never
  /// invalidate the entry another ready event is about to use.
  struct Watcher {
    int fd;
    std::function<void()> on_readable;
    bool dead = false;
  };
  struct Hook {
    HookId id;
    std::function<void()> fn;
  };

  /// Returns how many timers ran; a non-empty round makes the following
  /// wait non-blocking so run_until predicates are re-checked promptly.
  std::size_t fire_due_timers();
  void run_hooks();
  /// Keep the timerfd armed at the next timer deadline (absolute
  /// CLOCK_MONOTONIC); disarmed when no timers are pending.
  void arm_timerfd();

  std::int64_t epoch_ns_;  ///< steady-clock origin of TimePoint zero
  int epoll_fd_ = -1;
  int timer_fd_ = -1;
  std::int64_t armed_ns_ = -1;  ///< timerfd target (absolute ns); -1 disarmed
  /// O(1) timing wheel; the timerfd is armed at its next_time() through the
  /// cached armed_ns_ coalescing in arm_timerfd().
  sim::TimerWheel timers_;
  std::vector<std::unique_ptr<Watcher>> fds_;
  bool dispatching_ = false;
  bool compact_needed_ = false;
  std::vector<Hook> hooks_;
  HookId next_hook_id_ = 1;
};

/// Tuning + netem-style userspace impairment for one UdpWire endpoint.
/// Impairment exists so the soak and fault-matrix rows can run lossy /
/// blackout scenarios on hosts where tc-netem is unavailable (containers):
/// drops are applied at this endpoint, after the kernel, with a seeded RNG,
/// and counted separately from genuine kernel send failures.
struct UdpWireConfig {
  /// mmsg slots per direction; sends flush when the batch fills and at
  /// every loop flush point, receives drain up to this many per syscall.
  std::size_t batch = 16;
  /// Per-slot receive buffer; datagrams longer than this are counted
  /// truncated and rejected (loopback MTU covers any mtu-sized segment).
  std::size_t recv_slot_bytes = 9216;
  /// Probability an inbound / outbound datagram is dropped here.
  double rx_drop = 0.0;
  double tx_drop = 0.0;
  std::uint64_t impairment_seed = 1;
};

struct UdpWireStats {
  std::uint64_t datagrams_sent = 0;      ///< accepted by the kernel
  std::uint64_t datagrams_received = 0;  ///< decoded and dispatched
  /// All rejected inbound datagrams (any DecodeStatus failure, truncation).
  std::uint64_t decode_failures = 0;
  /// Subset rejected specifically by the wire checksum: well-framed IQ
  /// datagrams whose CRC did not match (corruption in flight).
  std::uint64_t checksum_rejects = 0;
  /// Datagrams the kernel refused to take (EWOULDBLOCK/ENOBUFS under
  /// pressure, EMSGSIZE for oversize) — previously a silent log line, now
  /// surfaced through SegmentWire::set_send_drop_handler into
  /// RudpStats::sends_dropped and NET_SENDS_DROPPED.
  std::uint64_t sends_dropped = 0;
  /// Zero-length datagrams: a valid (if useless) UDP arrival, distinguished
  /// from "socket drained" and never fed to the decoder.
  std::uint64_t empty_datagrams = 0;
  std::uint64_t truncated_datagrams = 0;  ///< larger than recv_slot_bytes
  std::uint64_t send_batches = 0;   ///< sendmmsg calls that moved >=1
  std::uint64_t recv_batches = 0;   ///< recvmmsg calls that moved >=1
  std::uint64_t max_send_batch = 0;
  std::uint64_t max_recv_batch = 0;
  std::uint64_t impaired_tx_drops = 0;  ///< userspace impairment, outbound
  std::uint64_t impaired_rx_drops = 0;  ///< userspace impairment, inbound
};

class UdpWire final : public rudp::SegmentWire {
 public:
  /// Binds 127.0.0.1:`local_port`; sends to 127.0.0.1:`remote_port`.
  UdpWire(RealtimeLoop& loop, std::uint16_t local_port,
          std::uint16_t remote_port, UdpWireConfig cfg = {});
  ~UdpWire() override;
  UdpWire(const UdpWire&) = delete;
  UdpWire& operator=(const UdpWire&) = delete;

  void send(const rudp::Segment& segment) override;
  void set_receiver(RecvFn fn) override { recv_ = std::move(fn); }
  void set_corruption_handler(CorruptionFn fn) override {
    corrupt_fn_ = std::move(fn);
  }
  void set_send_drop_handler(SendDropFn fn) override {
    drop_fn_ = std::move(fn);
  }
  sim::Executor& executor() override { return loop_; }

  /// Push any queued datagrams to the kernel now. Normally driven by the
  /// loop's before-wait hook; exposed for tests and shutdown paths.
  void flush_sends();

  /// Blackout impairment: drop everything in both directions while set
  /// (the soak's terminal-failure window).
  void set_blackout(bool on) { blackout_ = on; }

  const UdpWireStats& stats() const { return stats_; }
  std::uint64_t datagrams_sent() const { return stats_.datagrams_sent; }
  std::uint64_t datagrams_received() const {
    return stats_.datagrams_received;
  }
  std::uint64_t decode_failures() const { return stats_.decode_failures; }
  std::uint64_t checksum_rejects() const { return stats_.checksum_rejects; }

 private:
  void on_readable();
  void dispatch(BytesView datagram);

  RealtimeLoop& loop_;
  UdpWireConfig cfg_;
  int fd_ = -1;
  RealtimeLoop::HookId flush_hook_ = 0;
  Rng impairment_rng_;
  bool blackout_ = false;

  // Transmit batch: slot i's mmsghdr/iovec point into arena i, which is
  // reused only after the slot has been flushed. After the first few sends
  // every arena sits at its high-water size and the send path performs no
  // heap allocation (see rudp::encode_segment_into).
  std::vector<ByteWriter> tx_arenas_;
  std::unique_ptr<mmsghdr[]> tx_msgs_;
  std::unique_ptr<iovec[]> tx_iovs_;
  std::size_t tx_pending_ = 0;

  // Receive batch: fixed buffers recvmmsg fills; decode_segment_view
  // parses each datagram in place from its slot (the payload view aliases
  // the slot and is valid only for the synchronous recv_ dispatch —
  // zero-copy lifetime rules in docs/WIRE.md).
  std::vector<Bytes> rx_bufs_;
  std::unique_ptr<mmsghdr[]> rx_msgs_;
  std::unique_ptr<iovec[]> rx_iovs_;

  RecvFn recv_;
  CorruptionFn corrupt_fn_;
  SendDropFn drop_fn_;
  UdpWireStats stats_;
};

}  // namespace iq::wire
