#pragma once
// Real-socket backend: the identical RUDP engine over UDP on localhost.
//
// RealtimeLoop implements the Executor interface against the monotonic
// clock with a poll(2)-driven event loop; UdpWire encodes segments with the
// wire codec and moves them through an actual AF_INET datagram socket.
// Used by the loopback example and integration test to demonstrate the
// protocol is a deployable transport, not only a simulation artifact.

#include <cstdint>
#include <functional>
#include <vector>

#include "iq/common/bytes.hpp"
#include "iq/rudp/segment_wire.hpp"
#include "iq/sim/event_queue.hpp"

namespace iq::wire {

class RealtimeLoop final : public sim::Executor {
 public:
  RealtimeLoop();

  TimePoint now() const override;
  sim::EventId schedule_at(TimePoint t, sim::EventFn fn) override;
  bool cancel_event(sim::EventId id) override;

  /// Watch a file descriptor; `on_readable` runs when it has data.
  void add_fd(int fd, std::function<void()> on_readable);
  void remove_fd(int fd);

  /// Run until `done()` returns true or `max_wall` elapses.
  /// Returns true if `done()` was satisfied.
  bool run_until(const std::function<bool()>& done,
                 Duration max_wall = Duration::seconds(30));
  /// Run for a fixed wall-clock span.
  void run_for(Duration wall);

 private:
  void poll_once(Duration max_wait);
  void fire_due_timers();

  std::int64_t epoch_ns_;  ///< steady-clock origin of TimePoint zero
  sim::EventQueue timers_;
  struct Watched {
    int fd;
    std::function<void()> on_readable;
  };
  std::vector<Watched> fds_;
};

class UdpWire final : public rudp::SegmentWire {
 public:
  /// Binds 127.0.0.1:`local_port`; sends to 127.0.0.1:`remote_port`.
  UdpWire(RealtimeLoop& loop, std::uint16_t local_port,
          std::uint16_t remote_port);
  ~UdpWire() override;
  UdpWire(const UdpWire&) = delete;
  UdpWire& operator=(const UdpWire&) = delete;

  void send(const rudp::Segment& segment) override;
  void set_receiver(RecvFn fn) override { recv_ = std::move(fn); }
  void set_corruption_handler(CorruptionFn fn) override {
    corrupt_fn_ = std::move(fn);
  }
  sim::Executor& executor() override { return loop_; }

  std::uint64_t datagrams_sent() const { return sent_; }
  std::uint64_t datagrams_received() const { return received_; }
  /// All rejected inbound datagrams (any DecodeStatus failure).
  std::uint64_t decode_failures() const { return decode_failures_; }
  /// Subset rejected specifically by the wire checksum: well-framed IQ
  /// datagrams whose CRC did not match (corruption in flight).
  std::uint64_t checksum_rejects() const { return checksum_rejects_; }

 private:
  void on_readable();

  RealtimeLoop& loop_;
  int fd_ = -1;
  std::uint16_t remote_port_;
  /// Reusable encode buffer (see rudp::encode_segment_into).
  ByteWriter encode_arena_;
  RecvFn recv_;
  CorruptionFn corrupt_fn_;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t decode_failures_ = 0;
  std::uint64_t checksum_rejects_ = 0;
};

}  // namespace iq::wire
