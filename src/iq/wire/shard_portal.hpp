#pragma once
// ShardPortal: deterministic cross-shard packet handoff.
//
// Sharded scenarios give every group its own net::Network (with a disjoint
// node-id range) on its group's Simulator. A portal is the one-way junction
// between two groups: on the source side it is the PacketSink at the end of
// a zero-propagation net::Network::add_portal_link; on delivery it copies
// the rudp::Segment payload BY VALUE into a ShardedSim parcel due
// `latency` later, and the parcel re-materializes the packet on the
// destination group's thread from destination-owned pools.
//
// Copying by value is the whole trick: pooled Packet/Segment objects never
// cross a shard boundary (ObjectPool arenas are single-shard by contract,
// enforced in strict affinity windows), and because the Segment plus its
// addressing fits the ParcelFn inline buffer, the steady-state handoff
// performs no heap allocation. `latency` must be at least the ShardedSim
// lookahead — ShardedSim::post aborts otherwise — which makes the minimum
// portal latency the conservative lookahead bound of the whole scenario.

#include <cstdint>

#include "iq/net/network.hpp"
#include "iq/net/packet.hpp"
#include "iq/net/pool.hpp"
#include "iq/rudp/segment.hpp"
#include "iq/sim/sharded.hpp"

namespace iq::wire {

class ShardPortal final : public net::PacketSink {
 public:
  struct Config {
    std::uint32_t src_group = 0;
    std::uint32_t dst_group = 0;
    /// One-way cross-shard latency; must be >= the ShardedSim lookahead.
    Duration latency = Duration::millis(10);
  };

  /// `dst_net` is the destination group's network: re-materialized packets
  /// come from its pool and are delivered to its node matching packet->dst.
  ShardPortal(sim::ShardedSim& sharded, net::Network& dst_net,
              const Config& cfg);
  ShardPortal(const ShardPortal&) = delete;
  ShardPortal& operator=(const ShardPortal&) = delete;

  /// PacketSink: a packet left the source group through a portal link.
  /// Runs on the source shard.
  void deliver(net::PacketPtr packet) override;

  std::uint64_t forwarded() const { return forwarded_; }
  net::PoolStats segment_pool_stats() const { return dst_pool_.stats(); }

 private:
  sim::ShardedSim& sharded_;
  net::Network& dst_net_;
  Config cfg_;
  /// Destination-side segment pool: touched only by the parcel bodies,
  /// i.e. only on the destination shard's thread.
  net::ObjectPool<rudp::Segment> dst_pool_;
  std::uint64_t forwarded_ = 0;
};

}  // namespace iq::wire
