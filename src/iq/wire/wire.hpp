#pragma once
// In-memory wires for unit tests: a DirectWirePair connects two RUDP
// endpoints through the executor with a fixed one-way delay and no loss.

#include <memory>

#include "iq/rudp/segment_wire.hpp"

namespace iq::wire {

class DirectWirePair;

/// One endpoint of a DirectWirePair.
class DirectWire final : public rudp::SegmentWire {
 public:
  DirectWire(DirectWirePair& pair, int side);

  void send(const rudp::Segment& segment) override;
  void set_receiver(RecvFn fn) override { recv_ = std::move(fn); }
  sim::Executor& executor() override;

 private:
  friend class DirectWirePair;
  DirectWirePair& pair_;
  int side_;
  RecvFn recv_;
};

/// A pair of endpoints joined by a fixed-delay, loss-free pipe.
class DirectWirePair {
 public:
  DirectWirePair(sim::Executor& exec, Duration one_way_delay);

  DirectWire& a() { return a_; }
  DirectWire& b() { return b_; }

  std::uint64_t segments_carried() const { return carried_; }

 private:
  friend class DirectWire;
  void carry(int from_side, const rudp::Segment& segment);

  sim::Executor& exec_;
  Duration delay_;
  DirectWire a_;
  DirectWire b_;
  std::uint64_t carried_ = 0;
};

}  // namespace iq::wire
