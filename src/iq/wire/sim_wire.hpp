#pragma once
// SimWire: plugs the RUDP engine into the simulated network.
//
// One SimWire per endpoint: it binds a node port, addresses a fixed peer,
// and carries Segment structs as packet bodies — links and queues account
// for Segment::wire_bytes() without byte serialization.

#include <memory>

#include "iq/net/network.hpp"
#include "iq/net/pool.hpp"
#include "iq/rudp/segment_wire.hpp"

namespace iq::wire {

class SimWire final : public rudp::SegmentWire, public net::PacketSink {
 public:
  /// Binds `local` on its node; traffic is labelled with `flow` for stats.
  SimWire(net::Network& net, net::Endpoint local, net::Endpoint remote,
          std::uint32_t flow);
  ~SimWire() override;
  SimWire(const SimWire&) = delete;
  SimWire& operator=(const SimWire&) = delete;

  // SegmentWire. Segment bodies come from a freelist pool; the move
  // overload adopts the caller's vectors/attrs instead of copying them.
  void send(const rudp::Segment& segment) override;
  void send(rudp::Segment&& segment) override;
  void set_receiver(RecvFn fn) override { recv_ = std::move(fn); }
  void set_corruption_handler(CorruptionFn fn) override {
    corrupt_fn_ = std::move(fn);
  }
  sim::Executor& executor() override { return net_.sim(); }

  // PacketSink (inbound from the node).
  void deliver(net::PacketPtr packet) override;

  std::uint64_t sent() const { return sent_; }
  std::uint64_t received() const { return received_; }
  /// Corrupted-delivered packets rejected (the sim stand-in for the wire
  /// format's CRC check — see rudp::segment_checksum).
  std::uint64_t checksum_rejects() const { return checksum_rejects_; }
  net::PoolStats segment_pool_stats() const { return pool_.stats(); }

 private:
  void dispatch(std::shared_ptr<const rudp::Segment> body);

  net::ObjectPool<rudp::Segment> pool_;
  net::Network& net_;
  net::Endpoint local_;
  net::Endpoint remote_;
  std::uint32_t flow_;
  RecvFn recv_;
  CorruptionFn corrupt_fn_;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t checksum_rejects_ = 0;
};

}  // namespace iq::wire
