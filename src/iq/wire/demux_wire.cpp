#include "iq/wire/demux_wire.hpp"

namespace iq::wire {

void VirtualWire::send(const rudp::Segment& segment) {
  demux_.underlying_.send(segment);
}

sim::Executor& VirtualWire::executor() {
  return demux_.underlying_.executor();
}

DemuxWire::DemuxWire(rudp::SegmentWire& underlying) : underlying_(underlying) {
  underlying_.set_receiver(
      [this](const rudp::Segment& seg) { on_segment(seg); });
}

VirtualWire& DemuxWire::lane(std::uint32_t conn_id) {
  auto it = lanes_.find(conn_id);
  if (it == lanes_.end()) {
    it = lanes_
             .emplace(conn_id, std::unique_ptr<VirtualWire>(
                                   new VirtualWire(*this, conn_id)))
             .first;
  }
  return *it->second;
}

bool DemuxWire::remove_lane(std::uint32_t conn_id) {
  return lanes_.erase(conn_id) > 0;
}

void DemuxWire::on_segment(const rudp::Segment& seg) {
  auto it = lanes_.find(seg.conn_id);
  if (it == lanes_.end()) {
    ++unrouted_;
    return;
  }
  ++routed_;
  if (it->second->recv_) it->second->recv_(seg);
}

}  // namespace iq::wire
