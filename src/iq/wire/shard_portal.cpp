#include "iq/wire/shard_portal.hpp"

#include <type_traits>
#include <utility>

#include "iq/common/check.hpp"

namespace iq::wire {

ShardPortal::ShardPortal(sim::ShardedSim& sharded, net::Network& dst_net,
                         const Config& cfg)
    : sharded_(sharded), dst_net_(dst_net), cfg_(cfg) {
  IQ_CHECK_MSG(cfg_.latency >= sharded_.lookahead(),
               "portal latency below the ShardedSim lookahead bound");
}

void ShardPortal::deliver(net::PacketPtr packet) {
  const auto* seg = dynamic_cast<const rudp::Segment*>(packet->body.get());
  IQ_CHECK_MSG(seg != nullptr, "non-RUDP packet crossed a shard portal");
  const TimePoint due =
      sharded_.group_sim(cfg_.src_group).now() + cfg_.latency;
  ++forwarded_;
  // The segment crosses by VALUE; everything pooled stays on its own shard.
  auto parcel = [this, seg = *seg, src = packet->src, dst = packet->dst,
                 flow = packet->flow, wire_bytes = packet->wire_bytes,
                 corrupted = packet->corrupted]() mutable {
    auto body = dst_pool_.make(std::move(seg));
    auto remade = dst_net_.make_packet(src, dst, flow, wire_bytes,
                                       std::move(body), corrupted);
    dst_net_.node(dst.node).deliver(std::move(remade));
  };
  // The handoff must stay allocation-free: the capture (Segment + addressing)
  // has to fit the ParcelFn inline buffer, or every crossing would pay a
  // heap box. If this fires, grow sim::ParcelFn's capacity.
  static_assert(sizeof(parcel) <= 1536, "parcel capture outgrew ParcelFn");
  static_assert(std::is_nothrow_move_constructible_v<decltype(parcel)>,
                "parcel capture must relocate noexcept to stay inline");
  sharded_.post(cfg_.src_group, cfg_.dst_group, due, std::move(parcel));
}

}  // namespace iq::wire
