#pragma once
// DemuxWire: several RUDP connections over one underlying wire.
//
// Segments already carry a connection id; the demux routes inbound segments
// to the virtual wire registered for that id and funnels all outbound
// segments into the shared underlying wire. This is how several transport
// connections (e.g. one per collaboration session) share a single UDP
// socket pair or simulated port.

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "iq/rudp/segment_wire.hpp"

namespace iq::wire {

class DemuxWire;

/// The per-connection virtual wire handed to a RudpConnection.
class VirtualWire final : public rudp::SegmentWire {
 public:
  void send(const rudp::Segment& segment) override;
  void set_receiver(RecvFn fn) override { recv_ = std::move(fn); }
  sim::Executor& executor() override;

  std::uint32_t conn_id() const { return conn_id_; }

 private:
  friend class DemuxWire;
  VirtualWire(DemuxWire& demux, std::uint32_t conn_id)
      : demux_(demux), conn_id_(conn_id) {}

  DemuxWire& demux_;
  std::uint32_t conn_id_;
  RecvFn recv_;
};

class DemuxWire {
 public:
  /// Takes over the underlying wire's receiver.
  explicit DemuxWire(rudp::SegmentWire& underlying);
  DemuxWire(const DemuxWire&) = delete;
  DemuxWire& operator=(const DemuxWire&) = delete;

  /// Create (or fetch) the virtual wire for a connection id. The
  /// RudpConnection built on it must use the same id in its config.
  VirtualWire& lane(std::uint32_t conn_id);
  bool remove_lane(std::uint32_t conn_id);

  std::uint64_t routed() const { return routed_; }
  /// Inbound segments whose conn id has no lane.
  std::uint64_t unrouted() const { return unrouted_; }
  std::size_t lanes() const { return lanes_.size(); }

 private:
  friend class VirtualWire;
  void on_segment(const rudp::Segment& seg);

  rudp::SegmentWire& underlying_;
  std::unordered_map<std::uint32_t, std::unique_ptr<VirtualWire>> lanes_;
  std::uint64_t routed_ = 0;
  std::uint64_t unrouted_ = 0;
};

}  // namespace iq::wire
