#pragma once
// LossyWirePair: failure injection for protocol tests — independent drop,
// duplication, reordering, blackouts, burst loss and delivered corruption on
// an in-memory pipe, all seeded and deterministic. Implements
// fault::FaultTarget, so a FaultInjector can drive it from a FaultPlan the
// same way it drives net::Link.

#include <memory>
#include <optional>

#include "iq/common/rng.hpp"
#include "iq/fault/loss_model.hpp"
#include "iq/fault/target.hpp"
#include "iq/net/pool.hpp"
#include "iq/rudp/segment_wire.hpp"

namespace iq::wire {

struct LossyConfig {
  Duration one_way_delay = Duration::millis(15);
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  /// Extra, uniformly distributed delay [0, reorder_jitter] per segment —
  /// nonzero values cause reordering.
  Duration reorder_jitter = Duration::zero();
  std::uint64_t seed = 42;
};

class LossyWirePair;

class LossyWire final : public rudp::SegmentWire {
 public:
  LossyWire(LossyWirePair& pair, int side);

  void send(const rudp::Segment& segment) override;
  void send(rudp::Segment&& segment) override;
  void set_receiver(RecvFn fn) override { recv_ = std::move(fn); }
  void set_corruption_handler(CorruptionFn fn) override {
    corrupt_fn_ = std::move(fn);
  }
  sim::Executor& executor() override;

  /// Corrupted-delivered segments this endpoint rejected.
  std::uint64_t checksum_rejects() const { return checksum_rejects_; }

 private:
  friend class LossyWirePair;
  LossyWirePair& pair_;
  int side_;
  RecvFn recv_;
  CorruptionFn corrupt_fn_;
  std::uint64_t checksum_rejects_ = 0;
};

class LossyWirePair final : public fault::FaultTarget {
 public:
  LossyWirePair(sim::Executor& exec, const LossyConfig& cfg);

  LossyWire& a() { return a_; }
  LossyWire& b() { return b_; }

  // FaultTarget: change loss characteristics mid-run. The base drop and
  // duplicate coins keep their original RNG consumption order, so enabling
  // blackout/burst/corruption does not perturb existing seeded streams.
  void set_blackout(bool on) override { blackout_ = on; }
  void set_drop_probability(double p) override { cfg_.drop_probability = p; }
  void set_burst_loss(
      const std::optional<fault::GilbertElliottConfig>& cfg) override;
  void set_corrupt_probability(double p) override { corrupt_probability_ = p; }
  void set_duplicate_probability(double p) override {
    cfg_.duplicate_probability = p;
  }
  void set_extra_delay(Duration d) override { extra_delay_ = d; }

  bool blackout() const { return blackout_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t duplicated() const { return duplicated_; }
  std::uint64_t carried() const { return carried_; }
  std::uint64_t blackout_drops() const { return blackout_drops_; }
  std::uint64_t burst_drops() const { return burst_drops_; }
  std::uint64_t corrupt_deliveries() const { return corrupt_deliveries_; }

 private:
  friend class LossyWire;
  /// Segments travel as pooled immutable bodies: a duplicate delivery
  /// shares the first copy's body, and the InlineFn capture (shared_ptr +
  /// destination pointer) stays within the scheduler's inline buffer — the
  /// pipe adds no heap traffic at steady state.
  void carry(int from_side, std::shared_ptr<const rudp::Segment> body);
  void deliver_later(int to_side, std::shared_ptr<const rudp::Segment> body,
                     bool corrupted);

  sim::Executor& exec_;
  LossyConfig cfg_;
  Rng rng_;
  Rng fault_rng_;
  net::ObjectPool<rudp::Segment> pool_;
  LossyWire a_;
  LossyWire b_;
  bool blackout_ = false;
  std::optional<fault::GilbertElliottModel> burst_;
  double corrupt_probability_ = 0.0;
  Duration extra_delay_ = Duration::zero();
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t carried_ = 0;
  std::uint64_t blackout_drops_ = 0;
  std::uint64_t burst_drops_ = 0;
  std::uint64_t corrupt_deliveries_ = 0;
};

}  // namespace iq::wire
