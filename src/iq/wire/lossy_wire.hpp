#pragma once
// LossyWirePair: failure injection for protocol tests — independent drop,
// duplication and reordering on each direction of an in-memory pipe, all
// seeded and deterministic.

#include <memory>

#include "iq/common/rng.hpp"
#include "iq/rudp/segment_wire.hpp"

namespace iq::wire {

struct LossyConfig {
  Duration one_way_delay = Duration::millis(15);
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  /// Extra, uniformly distributed delay [0, reorder_jitter] per segment —
  /// nonzero values cause reordering.
  Duration reorder_jitter = Duration::zero();
  std::uint64_t seed = 42;
};

class LossyWirePair;

class LossyWire final : public rudp::SegmentWire {
 public:
  LossyWire(LossyWirePair& pair, int side);

  void send(const rudp::Segment& segment) override;
  void set_receiver(RecvFn fn) override { recv_ = std::move(fn); }
  sim::Executor& executor() override;

 private:
  friend class LossyWirePair;
  LossyWirePair& pair_;
  int side_;
  RecvFn recv_;
};

class LossyWirePair {
 public:
  LossyWirePair(sim::Executor& exec, const LossyConfig& cfg);

  LossyWire& a() { return a_; }
  LossyWire& b() { return b_; }

  /// Change loss characteristics mid-run (e.g. congestion phases).
  void set_drop_probability(double p) { cfg_.drop_probability = p; }

  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t duplicated() const { return duplicated_; }
  std::uint64_t carried() const { return carried_; }

 private:
  friend class LossyWire;
  void carry(int from_side, const rudp::Segment& segment);
  void deliver_later(int to_side, const rudp::Segment& segment);

  sim::Executor& exec_;
  LossyConfig cfg_;
  Rng rng_;
  LossyWire a_;
  LossyWire b_;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t carried_ = 0;
};

}  // namespace iq::wire
