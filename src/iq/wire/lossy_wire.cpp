#include "iq/wire/lossy_wire.hpp"

namespace iq::wire {

LossyWire::LossyWire(LossyWirePair& pair, int side)
    : pair_(pair), side_(side) {}

void LossyWire::send(const rudp::Segment& segment) {
  pair_.carry(side_, pair_.pool_.make(segment));
}

void LossyWire::send(rudp::Segment&& segment) {
  pair_.carry(side_, pair_.pool_.make(std::move(segment)));
}

sim::Executor& LossyWire::executor() { return pair_.exec_; }

LossyWirePair::LossyWirePair(sim::Executor& exec, const LossyConfig& cfg)
    : exec_(exec),
      cfg_(cfg),
      rng_(cfg.seed),
      fault_rng_(cfg.seed ^ 0x9e3779b97f4a7c15ull),
      a_(*this, 0),
      b_(*this, 1) {}

void LossyWirePair::set_burst_loss(
    const std::optional<fault::GilbertElliottConfig>& cfg) {
  if (cfg.has_value()) {
    burst_.emplace(*cfg);
  } else {
    burst_.reset();
  }
}

void LossyWirePair::carry(int from_side,
                          std::shared_ptr<const rudp::Segment> body) {
  const int to_side = from_side == 0 ? 1 : 0;
  // Keep the base drop coin first and unconditional: fault features must not
  // shift the original seeded drop/duplicate streams.
  const bool base_drop = rng_.chance(cfg_.drop_probability);
  if (blackout_) {
    ++dropped_;
    ++blackout_drops_;
    return;
  }
  if (burst_.has_value() && burst_->lose()) {
    ++dropped_;
    ++burst_drops_;
    return;
  }
  if (base_drop) {
    ++dropped_;
    return;
  }
  ++carried_;
  const bool corrupted = corrupt_probability_ > 0.0 &&
                         fault_rng_.chance(corrupt_probability_);
  if (corrupted) ++corrupt_deliveries_;
  deliver_later(to_side, body, corrupted);
  if (rng_.chance(cfg_.duplicate_probability)) {
    ++duplicated_;
    // The duplicate is an independent copy on the wire (sharing the same
    // immutable body); it is delivered clean even when the first copy took
    // the bit errors.
    deliver_later(to_side, std::move(body), /*corrupted=*/false);
  }
}

void LossyWirePair::deliver_later(int to_side,
                                  std::shared_ptr<const rudp::Segment> body,
                                  bool corrupted) {
  Duration delay = cfg_.one_way_delay + extra_delay_;
  if (!cfg_.reorder_jitter.is_zero()) {
    delay += Duration::nanos(
        rng_.uniform_int(0, cfg_.reorder_jitter.ns()));
  }
  LossyWire& dst = to_side == 0 ? a_ : b_;
  if (corrupted) {
    // A corrupted segment arrives as garbage bytes: the receiver's checksum
    // rejects it before the engine ever sees a Segment.
    exec_.schedule_after(delay, [&dst] {
      ++dst.checksum_rejects_;
      if (dst.corrupt_fn_) dst.corrupt_fn_();
    });
    return;
  }
  // shared_ptr + reference: 24 bytes, well inside InlineFn's inline buffer.
  exec_.schedule_after(delay, [&dst, body = std::move(body)] {
    if (dst.recv_) dst.recv_(*body);
  });
}

}  // namespace iq::wire
