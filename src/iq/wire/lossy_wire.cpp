#include "iq/wire/lossy_wire.hpp"

namespace iq::wire {

LossyWire::LossyWire(LossyWirePair& pair, int side)
    : pair_(pair), side_(side) {}

void LossyWire::send(const rudp::Segment& segment) {
  pair_.carry(side_, segment);
}

sim::Executor& LossyWire::executor() { return pair_.exec_; }

LossyWirePair::LossyWirePair(sim::Executor& exec, const LossyConfig& cfg)
    : exec_(exec), cfg_(cfg), rng_(cfg.seed), a_(*this, 0), b_(*this, 1) {}

void LossyWirePair::carry(int from_side, const rudp::Segment& segment) {
  const int to_side = from_side == 0 ? 1 : 0;
  if (rng_.chance(cfg_.drop_probability)) {
    ++dropped_;
    return;
  }
  ++carried_;
  deliver_later(to_side, segment);
  if (rng_.chance(cfg_.duplicate_probability)) {
    ++duplicated_;
    deliver_later(to_side, segment);
  }
}

void LossyWirePair::deliver_later(int to_side, const rudp::Segment& segment) {
  Duration delay = cfg_.one_way_delay;
  if (!cfg_.reorder_jitter.is_zero()) {
    delay += Duration::nanos(
        rng_.uniform_int(0, cfg_.reorder_jitter.ns()));
  }
  LossyWire& dst = to_side == 0 ? a_ : b_;
  exec_.schedule_after(delay, [&dst, seg = segment] {
    if (dst.recv_) dst.recv_(seg);
  });
}

}  // namespace iq::wire
