#include "iq/wire/wire.hpp"

namespace iq::wire {

DirectWire::DirectWire(DirectWirePair& pair, int side)
    : pair_(pair), side_(side) {}

void DirectWire::send(const rudp::Segment& segment) {
  pair_.carry(side_, segment);
}

sim::Executor& DirectWire::executor() { return pair_.exec_; }

DirectWirePair::DirectWirePair(sim::Executor& exec, Duration one_way_delay)
    : exec_(exec), delay_(one_way_delay), a_(*this, 0), b_(*this, 1) {}

void DirectWirePair::carry(int from_side, const rudp::Segment& segment) {
  ++carried_;
  DirectWire& dst = from_side == 0 ? b_ : a_;
  // Copy the segment; delivery happens after the one-way delay.
  exec_.schedule_after(delay_, [&dst, seg = segment] {
    if (dst.recv_) dst.recv_(seg);
  });
}

}  // namespace iq::wire
