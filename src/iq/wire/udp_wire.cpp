#include "iq/wire/udp_wire.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>

#include "iq/common/check.hpp"
#include "iq/common/log.hpp"
#include "iq/rudp/codec.hpp"

namespace iq::wire {

namespace {
std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

// -------------------------------------------------------- RealtimeLoop ----

RealtimeLoop::RealtimeLoop() : epoch_ns_(steady_ns()) {}

TimePoint RealtimeLoop::now() const {
  return TimePoint::from_ns(steady_ns() - epoch_ns_);
}

sim::EventId RealtimeLoop::schedule_at(TimePoint t, sim::EventFn fn) {
  return timers_.schedule(t, std::move(fn));
}

bool RealtimeLoop::cancel_event(sim::EventId id) { return timers_.cancel(id); }

void RealtimeLoop::add_fd(int fd, std::function<void()> on_readable) {
  fds_.push_back(Watched{fd, std::move(on_readable)});
}

void RealtimeLoop::remove_fd(int fd) {
  std::erase_if(fds_, [fd](const Watched& w) { return w.fd == fd; });
}

void RealtimeLoop::fire_due_timers() {
  while (!timers_.empty() && timers_.next_time() <= now()) {
    auto ev = timers_.pop();
    ev.fn();
  }
}

void RealtimeLoop::poll_once(Duration max_wait) {
  Duration wait = max_wait;
  if (!timers_.empty()) {
    const Duration until_timer = timers_.next_time() - now();
    wait = std::clamp(until_timer, Duration::zero(), max_wait);
  }
  std::vector<pollfd> pfds;
  pfds.reserve(fds_.size());
  for (const Watched& w : fds_) {
    pfds.push_back(pollfd{w.fd, POLLIN, 0});
  }
  const int timeout_ms =
      static_cast<int>(std::max<std::int64_t>(0, wait.ms()));
  const int rc = ::poll(pfds.empty() ? nullptr : pfds.data(),
                        static_cast<nfds_t>(pfds.size()),
                        std::max(timeout_ms, 1));
  if (rc > 0) {
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      if ((pfds[i].revents & POLLIN) != 0) fds_[i].on_readable();
    }
  }
  fire_due_timers();
}

bool RealtimeLoop::run_until(const std::function<bool()>& done,
                             Duration max_wall) {
  const TimePoint deadline = now() + max_wall;
  while (!done()) {
    if (now() >= deadline) return false;
    poll_once(Duration::millis(20));
  }
  return true;
}

void RealtimeLoop::run_for(Duration wall) {
  const TimePoint deadline = now() + wall;
  while (now() < deadline) poll_once(Duration::millis(20));
}

// -------------------------------------------------------------- UdpWire ---

UdpWire::UdpWire(RealtimeLoop& loop, std::uint16_t local_port,
                 std::uint16_t remote_port)
    : loop_(loop), remote_port_(remote_port) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  IQ_CHECK_MSG(fd_ >= 0, "socket() failed");

  int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(local_port);
  const int rc =
      ::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  IQ_CHECK_MSG(rc == 0, "bind() failed");

  loop_.add_fd(fd_, [this] { on_readable(); });
}

UdpWire::~UdpWire() {
  if (fd_ >= 0) {
    loop_.remove_fd(fd_);
    ::close(fd_);
  }
}

void UdpWire::send(const rudp::Segment& segment) {
  // Encode into the per-wire arena: after the first datagram the writer's
  // buffer is at its high-water size and sends stop allocating.
  const BytesView wire = rudp::encode_segment_into(encode_arena_, segment);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(remote_port_);
  const ssize_t n =
      ::sendto(fd_, wire.data(), wire.size(), 0,
               reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (n < 0) {
    log_warn("udp_wire: sendto failed: ", std::strerror(errno));
    return;
  }
  ++sent_;
}

void UdpWire::on_readable() {
  std::uint8_t buf[65536];
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) break;  // EWOULDBLOCK or error — drained
    rudp::DecodeStatus status = rudp::DecodeStatus::Ok;
    // In-place decode: the payload view borrows `buf`, which lives until
    // the next recv() — long enough for the synchronous recv_ dispatch.
    auto decoded = rudp::decode_segment_view(
        BytesView(buf, static_cast<std::size_t>(n)), &status);
    if (!decoded) {
      ++decode_failures_;
      if (status == rudp::DecodeStatus::BadChecksum) {
        ++checksum_rejects_;
        if (corrupt_fn_) corrupt_fn_();
      }
      continue;
    }
    ++received_;
    if (recv_) recv_(decoded->segment);
  }
}

}  // namespace iq::wire
