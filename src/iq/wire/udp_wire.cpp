#include "iq/wire/udp_wire.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "iq/common/check.hpp"
#include "iq/common/log.hpp"
#include "iq/rudp/codec.hpp"

namespace iq::wire {

namespace {

constexpr int kMaxEpollEvents = 64;

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Ceil a Duration to whole milliseconds for epoll_wait: rounding *up*
/// keeps a sub-millisecond bound from truncating to a busy-spin; the
/// timerfd provides the sub-millisecond precision inside the wait.
int ceil_ms(Duration d) {
  if (d <= Duration::zero()) return 0;
  const std::int64_t ms = (d.ns() + 999'999) / 1'000'000;
  return static_cast<int>(std::min<std::int64_t>(ms, 60'000));
}

}  // namespace

// -------------------------------------------------------- RealtimeLoop ----

RealtimeLoop::RealtimeLoop() : epoch_ns_(steady_ns()) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  IQ_CHECK_MSG(epoll_fd_ >= 0, "epoll_create1() failed");
  timer_fd_ = ::timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC);
  IQ_CHECK_MSG(timer_fd_ >= 0, "timerfd_create() failed");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = nullptr;  // nullptr marks the timerfd
  const int rc = ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, timer_fd_, &ev);
  IQ_CHECK_MSG(rc == 0, "epoll_ctl(ADD timerfd) failed");
}

RealtimeLoop::~RealtimeLoop() {
  if (timer_fd_ >= 0) ::close(timer_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

TimePoint RealtimeLoop::now() const {
  return TimePoint::from_ns(steady_ns() - epoch_ns_);
}

sim::EventId RealtimeLoop::schedule_at(TimePoint t, sim::EventFn fn) {
  return timers_.schedule(t, std::move(fn));
}

bool RealtimeLoop::cancel_event(sim::EventId id) { return timers_.cancel(id); }

void RealtimeLoop::add_fd(int fd, std::function<void()> on_readable) {
  auto watcher = std::make_unique<Watcher>();
  watcher->fd = fd;
  watcher->on_readable = std::move(on_readable);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = watcher.get();
  const int rc = ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  IQ_CHECK_MSG(rc == 0, "epoll_ctl(ADD) failed");
  fds_.push_back(std::move(watcher));
}

void RealtimeLoop::remove_fd(int fd) {
  for (auto& w : fds_) {
    if (w->fd != fd || w->dead) continue;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    w->dead = true;
    compact_needed_ = true;
  }
  // Mid-dispatch, the Watcher object must stay alive: a later event in the
  // current ready batch may still point at it (it is skipped via `dead`).
  if (!dispatching_ && compact_needed_) {
    std::erase_if(fds_, [](const auto& w) { return w->dead; });
    compact_needed_ = false;
  }
}

RealtimeLoop::HookId RealtimeLoop::add_before_wait(
    std::function<void()> hook) {
  const HookId id = next_hook_id_++;
  hooks_.push_back(Hook{id, std::move(hook)});
  return id;
}

void RealtimeLoop::remove_before_wait(HookId id) {
  std::erase_if(hooks_, [id](const Hook& h) { return h.id == id; });
}

std::size_t RealtimeLoop::fire_due_timers() {
  std::size_t fired = 0;
  while (!timers_.empty() && timers_.next_time() <= now()) {
    auto ev = timers_.pop();
    ev.fn();
    ++fired;
  }
  return fired;
}

void RealtimeLoop::run_hooks() {
  // Hooks may not add/remove hooks during iteration (wires install exactly
  // one for their lifetime); indexed loop tolerates growth regardless.
  for (std::size_t i = 0; i < hooks_.size(); ++i) hooks_[i].fn();
}

void RealtimeLoop::arm_timerfd() {
  std::int64_t want = -1;
  if (!timers_.empty()) want = epoch_ns_ + timers_.next_time().ns();
  if (want == armed_ns_) return;
  itimerspec spec{};
  if (want >= 0) {
    spec.it_value.tv_sec = want / 1'000'000'000;
    spec.it_value.tv_nsec = want % 1'000'000'000;
  }
  // want < 0 leaves it_value zeroed, which disarms the timer.
  ::timerfd_settime(timer_fd_, TFD_TIMER_ABSTIME, &spec, nullptr);
  armed_ns_ = want;
}

void RealtimeLoop::poll_once(Duration max_wait) {
  // A timer that is already due fires before any wait: the poll(2)
  // predecessor slept >= 1 ms here regardless, putting a systematic floor
  // under every RTO and keepalive on the real path.
  const std::size_t fired = fire_due_timers();
  run_hooks();

  int timeout_ms;
  if (fired > 0 || (!timers_.empty() && timers_.next_time() <= now())) {
    // This iteration already did work (or more is due): poll readiness
    // without blocking so run_until can re-evaluate its predicate — a
    // satisfied caller must not wait out a full max_wait first.
    timeout_ms = 0;
  } else {
    arm_timerfd();
    timeout_ms = ceil_ms(max_wait);
  }

  epoll_event events[kMaxEpollEvents];
  const int n = ::epoll_wait(epoll_fd_, events, kMaxEpollEvents, timeout_ms);
  if (n > 0) {
    dispatching_ = true;
    for (int i = 0; i < n; ++i) {
      if (events[i].data.ptr == nullptr) {
        // Timerfd tick: drain the expiration count; the due timers fire
        // below. A stale read (timer rearmed meanwhile) is harmless.
        std::uint64_t expirations;
        [[maybe_unused]] const ssize_t r =
            ::read(timer_fd_, &expirations, sizeof(expirations));
        continue;
      }
      auto* w = static_cast<Watcher*>(events[i].data.ptr);
      if (!w->dead) w->on_readable();
    }
    dispatching_ = false;
    if (compact_needed_) {
      std::erase_if(fds_, [](const auto& w) { return w->dead; });
      compact_needed_ = false;
    }
  }
  fire_due_timers();
  // Flush before returning so acks and retransmissions produced by this
  // dispatch round reach the kernel before the loop can block again.
  run_hooks();
}

bool RealtimeLoop::run_until(const std::function<bool()>& done,
                             Duration max_wall) {
  const TimePoint deadline = now() + max_wall;
  while (!done()) {
    if (now() >= deadline) return false;
    poll_once(Duration::millis(20));
  }
  return true;
}

void RealtimeLoop::run_for(Duration wall) {
  const TimePoint deadline = now() + wall;
  while (now() < deadline) poll_once(Duration::millis(20));
}

// -------------------------------------------------------------- UdpWire ---

UdpWire::UdpWire(RealtimeLoop& loop, std::uint16_t local_port,
                 std::uint16_t remote_port, UdpWireConfig cfg)
    : loop_(loop),
      cfg_(cfg),
      impairment_rng_(cfg.impairment_seed),
      tx_arenas_(cfg.batch),
      rx_bufs_(cfg.batch) {
  IQ_CHECK(cfg_.batch >= 1);
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  IQ_CHECK_MSG(fd_ >= 0, "socket() failed");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(local_port);
  int rc = ::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  IQ_CHECK_MSG(rc == 0, "bind() failed");

  // Connect the socket to the peer: sendmmsg needs no per-message address
  // and the kernel filters stray datagrams from other sources.
  addr.sin_port = htons(remote_port);
  rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  IQ_CHECK_MSG(rc == 0, "connect() failed");

  tx_msgs_ = std::make_unique<mmsghdr[]>(cfg_.batch);
  tx_iovs_ = std::make_unique<iovec[]>(cfg_.batch);
  rx_msgs_ = std::make_unique<mmsghdr[]>(cfg_.batch);
  rx_iovs_ = std::make_unique<iovec[]>(cfg_.batch);
  std::memset(tx_msgs_.get(), 0, sizeof(mmsghdr) * cfg_.batch);
  std::memset(rx_msgs_.get(), 0, sizeof(mmsghdr) * cfg_.batch);
  for (std::size_t i = 0; i < cfg_.batch; ++i) {
    tx_msgs_[i].msg_hdr.msg_iov = &tx_iovs_[i];
    tx_msgs_[i].msg_hdr.msg_iovlen = 1;
    rx_bufs_[i].resize(cfg_.recv_slot_bytes);
    rx_iovs_[i] = {rx_bufs_[i].data(), rx_bufs_[i].size()};
    rx_msgs_[i].msg_hdr.msg_iov = &rx_iovs_[i];
    rx_msgs_[i].msg_hdr.msg_iovlen = 1;
  }

  loop_.add_fd(fd_, [this] { on_readable(); });
  flush_hook_ = loop_.add_before_wait([this] { flush_sends(); });
}

UdpWire::~UdpWire() {
  if (fd_ >= 0) {
    flush_sends();
    loop_.remove_before_wait(flush_hook_);
    loop_.remove_fd(fd_);
    ::close(fd_);
  }
}

void UdpWire::send(const rudp::Segment& segment) {
  if (blackout_ ||
      (cfg_.tx_drop > 0.0 && impairment_rng_.chance(cfg_.tx_drop))) {
    ++stats_.impaired_tx_drops;
    return;
  }
  // Encode into this slot's arena: after the first datagram through a slot
  // the writer's buffer is at its high-water size and sends stop
  // allocating. The slot is reused only after flush_sends() has pushed it.
  ByteWriter& arena = tx_arenas_[tx_pending_];
  const BytesView wire = rudp::encode_segment_into(arena, segment);
  tx_iovs_[tx_pending_] = {const_cast<std::uint8_t*>(wire.data()),
                           wire.size()};
  ++tx_pending_;
  if (tx_pending_ == cfg_.batch) flush_sends();
}

void UdpWire::flush_sends() {
  std::size_t off = 0;
  while (off < tx_pending_) {
    const unsigned n = static_cast<unsigned>(tx_pending_ - off);
    const int r = ::sendmmsg(fd_, &tx_msgs_[off], n, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      // The head datagram was refused (EWOULDBLOCK/ENOBUFS under pressure,
      // EMSGSIZE for oversize): count the drop — silently log-warning it
      // away hid real transmit losses from every stat — skip it, and keep
      // the rest of the batch moving.
      ++stats_.sends_dropped;
      if (drop_fn_) drop_fn_();
      log_warn("udp_wire: sendmmsg failed: ", std::strerror(errno));
      ++off;
      continue;
    }
    stats_.datagrams_sent += static_cast<std::uint64_t>(r);
    ++stats_.send_batches;
    stats_.max_send_batch =
        std::max<std::uint64_t>(stats_.max_send_batch, r);
    off += static_cast<std::size_t>(r);
  }
  tx_pending_ = 0;
}

void UdpWire::on_readable() {
  for (;;) {
    const int r = ::recvmmsg(fd_, rx_msgs_.get(),
                             static_cast<unsigned>(cfg_.batch), MSG_DONTWAIT,
                             nullptr);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      break;  // EWOULDBLOCK or error — drained
    }
    ++stats_.recv_batches;
    stats_.max_recv_batch =
        std::max<std::uint64_t>(stats_.max_recv_batch, r);
    for (int i = 0; i < r; ++i) {
      if ((rx_msgs_[i].msg_hdr.msg_flags & MSG_TRUNC) != 0) {
        ++stats_.truncated_datagrams;
        ++stats_.decode_failures;
        continue;
      }
      const std::size_t len = rx_msgs_[i].msg_len;
      if (len == 0) {
        // A zero-length datagram is a real (empty) arrival, not "socket
        // drained": count it and skip the decoder instead of letting it
        // surface as a spurious decode failure.
        ++stats_.empty_datagrams;
        continue;
      }
      if (blackout_ ||
          (cfg_.rx_drop > 0.0 && impairment_rng_.chance(cfg_.rx_drop))) {
        ++stats_.impaired_rx_drops;
        continue;
      }
      dispatch(BytesView(rx_bufs_[i].data(), len));
    }
    if (static_cast<std::size_t>(r) < cfg_.batch) break;
  }
}

void UdpWire::dispatch(BytesView datagram) {
  rudp::DecodeStatus status = rudp::DecodeStatus::Ok;
  // In-place decode: the payload view borrows the receive slot, which lives
  // until the next recvmmsg — long enough for the synchronous recv_
  // dispatch (zero-copy lifetime rules in docs/WIRE.md).
  auto decoded = rudp::decode_segment_view(datagram, &status);
  if (!decoded) {
    ++stats_.decode_failures;
    if (status == rudp::DecodeStatus::BadChecksum) {
      ++stats_.checksum_rejects;
      if (corrupt_fn_) corrupt_fn_();
    }
    return;
  }
  ++stats_.datagrams_received;
  if (recv_) recv_(decoded->segment);
}

}  // namespace iq::wire
