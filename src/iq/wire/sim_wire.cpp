#include "iq/wire/sim_wire.hpp"

#include "iq/common/check.hpp"

namespace iq::wire {

SimWire::SimWire(net::Network& net, net::Endpoint local, net::Endpoint remote,
                 std::uint32_t flow)
    : net_(net), local_(local), remote_(remote), flow_(flow) {
  net_.node(local_.node).bind(local_.port, this);
}

SimWire::~SimWire() { net_.node(local_.node).unbind(local_.port); }

void SimWire::send(const rudp::Segment& segment) {
  dispatch(pool_.make(segment));
}

void SimWire::send(rudp::Segment&& segment) {
  dispatch(pool_.make(std::move(segment)));
}

void SimWire::dispatch(std::shared_ptr<const rudp::Segment> body) {
  const std::int64_t wire_bytes = body->wire_bytes();
  auto packet =
      net_.make_packet(local_, remote_, flow_, wire_bytes, std::move(body));
  ++sent_;
  net_.node(local_.node).send(std::move(packet));
}

void SimWire::deliver(net::PacketPtr packet) {
  const auto* seg = dynamic_cast<const rudp::Segment*>(packet->body.get());
  IQ_CHECK_MSG(seg != nullptr, "non-RUDP packet delivered to SimWire");
  ++received_;
  if (packet->corrupted) {
    // Bit errors in flight: what the byte codec's CRC rejects on a real
    // socket, the sim rejects here. The segment never reaches the engine.
    ++checksum_rejects_;
    if (corrupt_fn_) corrupt_fn_();
    return;
  }
  if (recv_) recv_(*seg);
}

}  // namespace iq::wire
