#include "iq/wire/sim_wire.hpp"

#include "iq/common/check.hpp"

namespace iq::wire {

SimWire::SimWire(net::Network& net, net::Endpoint local, net::Endpoint remote,
                 std::uint32_t flow)
    : net_(net), local_(local), remote_(remote), flow_(flow) {
  net_.node(local_.node).bind(local_.port, this);
}

SimWire::~SimWire() { net_.node(local_.node).unbind(local_.port); }

void SimWire::send(const rudp::Segment& segment) {
  auto body = std::make_shared<rudp::Segment>(segment);
  auto packet =
      net_.make_packet(local_, remote_, flow_, segment.wire_bytes(), body);
  ++sent_;
  net_.node(local_.node).send(std::move(packet));
}

void SimWire::deliver(net::PacketPtr packet) {
  const auto* seg = dynamic_cast<const rudp::Segment*>(packet->body.get());
  IQ_CHECK_MSG(seg != nullptr, "non-RUDP packet delivered to SimWire");
  ++received_;
  if (recv_) recv_(*seg);
}

}  // namespace iq::wire
