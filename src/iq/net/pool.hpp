#pragma once
// Freelist object pool for simulation hot-path objects.
//
// Multi-million-packet runs used to pay two mallocs per simulated packet
// (shared_ptr control block + object, for both the Packet and its body).
// ObjectPool<T> routes std::allocate_shared through a freelist arena:
// object and control block live in one block, and released blocks are
// recycled instead of returned to malloc. Objects are fully constructed and
// destroyed on every cycle — recycling reuses memory, never state.
//
// Lifetime is safe by construction: the deleter stored in every control
// block keeps a shared reference to the arena, so blocks released after the
// pool itself is gone still land in the (still-alive) arena, which frees
// everything when the last reference drops.
//
// Not thread-safe — a pool belongs to one simulator thread, matching the
// single-threaded-by-design Simulator. The parallel experiment runner gives
// every worker its own Network (and therefore its own pools), and the
// sharded simulator gives every *shard* its own. That ownership is enforced,
// not just documented: while a strict shard window is open
// (iq::affinity::strict(), held by ShardedSim across every lockstep epoch),
// the first thread to touch an arena in the window binds it, and any other
// thread touching it afterwards aborts with a diagnostic — a cross-shard
// Packet handoff that dodges the mailbox fails loudly instead of racing.
// Outside strict windows the owner rebinds freely, so scenarios can be
// built and torn down on the main thread.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

namespace iq::net {

struct PoolStats {
  std::uint64_t fresh_allocations = 0;  ///< blocks obtained from malloc
  std::uint64_t reuses = 0;             ///< blocks served from the freelist
  std::uint64_t outstanding = 0;        ///< blocks currently live
  std::size_t free_blocks = 0;          ///< blocks parked in the freelist
};

namespace detail {

/// The shared freelist. One fixed block size per arena (allocate_shared
/// performs one same-sized allocation per object for a given T).
class ArenaState {
 public:
  ArenaState() = default;
  ArenaState(const ArenaState&) = delete;
  ArenaState& operator=(const ArenaState&) = delete;
  ~ArenaState();

  void* allocate(std::size_t bytes);
  void deallocate(void* p, std::size_t bytes);

  PoolStats stats() const;

 private:
  /// Bind-or-verify the owning thread while a strict shard window is open.
  void check_affinity();

  std::size_t block_size_ = 0;
  std::vector<void*> free_blocks_;
  std::uint64_t fresh_allocations_ = 0;
  std::uint64_t reuses_ = 0;
  std::uint64_t outstanding_ = 0;
  std::thread::id owner_;
  std::uint64_t owner_generation_ = 0;
};

template <typename T>
struct PoolAllocator {
  using value_type = T;

  explicit PoolAllocator(std::shared_ptr<ArenaState> s)
      : state(std::move(s)) {}
  template <typename U>
  PoolAllocator(const PoolAllocator<U>& o) : state(o.state) {}

  T* allocate(std::size_t n) {
    static_assert(alignof(T) <= alignof(std::max_align_t),
                  "over-aligned types are not supported by the pool");
    return static_cast<T*>(state->allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) {
    state->deallocate(p, n * sizeof(T));
  }

  template <typename U>
  bool operator==(const PoolAllocator<U>& o) const {
    return state == o.state;
  }

  std::shared_ptr<ArenaState> state;
};

}  // namespace detail

template <typename T>
class ObjectPool {
 public:
  ObjectPool() : state_(std::make_shared<detail::ArenaState>()) {}

  /// Construct a T in a pooled block. The returned shared_ptr is ordinary —
  /// it may outlive the pool; its block returns to the arena on release.
  template <typename... Args>
  std::shared_ptr<T> make(Args&&... args) {
    return std::allocate_shared<T>(detail::PoolAllocator<T>(state_),
                                   std::forward<Args>(args)...);
  }

  PoolStats stats() const { return state_->stats(); }

 private:
  std::shared_ptr<detail::ArenaState> state_;
};

/// std::map whose tree nodes come from a freelist arena. A map allocates
/// exactly one node type, which matches the arena's one-block-size
/// invariant; once the freelist has reached the map's high-water node
/// count, insert/erase churn stops touching malloc — the property the
/// RUDP send/receive buffers rely on for an allocation-free steady state.
template <typename K, typename V, typename Cmp = std::less<K>>
using PooledMap =
    std::map<K, V, Cmp, detail::PoolAllocator<std::pair<const K, V>>>;

template <typename K, typename V, typename Cmp = std::less<K>>
PooledMap<K, V, Cmp> make_pooled_map() {
  return PooledMap<K, V, Cmp>(
      Cmp(), detail::PoolAllocator<std::pair<const K, V>>(
                 std::make_shared<detail::ArenaState>()));
}

}  // namespace iq::net
