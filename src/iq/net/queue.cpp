#include "iq/net/queue.hpp"

#include <algorithm>

#include "iq/common/check.hpp"

namespace iq::net {

bool DropTailQueue::enqueue(PacketPtr p) {
  IQ_CHECK(p != nullptr && p->wire_bytes > 0);
  if (bytes_ + p->wire_bytes > capacity_bytes_) {
    ++dropped_;
    dropped_bytes_ += p->wire_bytes;
    return false;
  }
  bytes_ += p->wire_bytes;
  max_bytes_seen_ = std::max(max_bytes_seen_, bytes_);
  ++enqueued_;
  items_.push_back(std::move(p));
  return true;
}

PacketPtr DropTailQueue::dequeue() {
  IQ_CHECK_MSG(!items_.empty(), "dequeue from empty queue");
  PacketPtr p = std::move(items_.front());
  items_.pop_front();
  bytes_ -= p->wire_bytes;
  IQ_CHECK(bytes_ >= 0);
  return p;
}

}  // namespace iq::net
