#include "iq/net/dumbbell.hpp"

#include "iq/common/check.hpp"

namespace iq::net {

Dumbbell::Dumbbell(Network& net, const DumbbellConfig& cfg) : cfg_(cfg) {
  IQ_CHECK(cfg.pairs >= 1);

  router_left_ = &net.add_node("RA");
  router_right_ = &net.add_node("RB");

  // One-way path delay = rtt/2 across three hops: access, bottleneck, access.
  // Give the bottleneck the bulk of it; accesses get a token 1/10 share each.
  const Duration one_way = cfg.path_rtt / 2;
  const Duration access_delay = one_way / 10;
  const Duration bottleneck_delay = one_way - access_delay * 2;

  LinkConfig bottleneck_cfg{
      .rate_bps = cfg.bottleneck_bps,
      .propagation = bottleneck_delay,
      .queue_capacity_bytes = cfg.bottleneck_queue_bytes,
      .drop_probability = cfg.bottleneck_drop_probability,
      .drop_seed = cfg.bottleneck_drop_seed,
  };
  bottleneck_ = &net.add_link(*router_left_, *router_right_, bottleneck_cfg);
  LinkConfig reverse_cfg = bottleneck_cfg;
  reverse_cfg.drop_probability = cfg.reverse_drop_probability;
  reverse_cfg.drop_seed = cfg.reverse_drop_seed;
  bottleneck_rev_ = &net.add_link(*router_right_, *router_left_,
                                  reverse_cfg);

  LinkConfig access_cfg{
      .rate_bps = cfg.access_bps,
      .propagation = access_delay,
      .queue_capacity_bytes = cfg.access_queue_bytes,
  };
  for (std::size_t i = 0; i < cfg.pairs; ++i) {
    Node& l = net.add_node("L" + std::to_string(i));
    Node& r = net.add_node("R" + std::to_string(i));
    net.add_duplex_link(l, *router_left_, access_cfg);
    net.add_duplex_link(r, *router_right_, access_cfg);
    left_.push_back(&l);
    right_.push_back(&r);
  }
  net.compute_routes();
}

}  // namespace iq::net
