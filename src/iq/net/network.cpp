#include "iq/net/network.hpp"

#include <deque>
#include <limits>

#include "iq/common/check.hpp"

namespace iq::net {

Node& Network::add_node(const std::string& name) {
  const NodeId id = node_id_base_ + static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(id, name));
  return *nodes_.back();
}

Link& Network::add_link(Node& from, Node& to, const LinkConfig& cfg) {
  auto link = std::make_unique<Link>(
      sim_, from.name() + "->" + to.name(), cfg, to);
  link->set_tracer(tracer_);
  links_.push_back(std::move(link));
  edges_.push_back(Edge{from.id(), to.id(), links_.back().get()});
  return *links_.back();
}

void Network::add_duplex_link(Node& a, Node& b, const LinkConfig& cfg) {
  add_link(a, b, cfg);
  add_link(b, a, cfg);
}

Link& Network::add_portal_link(Node& from, PacketSink& sink,
                               const std::string& name,
                               const LinkConfig& cfg) {
  auto link = std::make_unique<Link>(sim_, from.name() + "->" + name, cfg,
                                     sink);
  link->set_tracer(tracer_);
  links_.push_back(std::move(link));
  // Deliberately not an Edge: the sink is outside this network's node set,
  // so compute_routes() must not see it.
  return *links_.back();
}

void Network::compute_routes() {
  // Node ids are node_id_base_ + local index; all graph arrays use the
  // local index.
  const std::size_t n = nodes_.size();
  const auto li = [this](NodeId id) {
    return static_cast<std::size_t>(id - node_id_base_);
  };
  // Adjacency: for each node, outgoing edges.
  std::vector<std::vector<const Edge*>> adj(n);
  for (const Edge& e : edges_) adj[li(e.from)].push_back(&e);

  // For each destination, BFS on the reversed graph to find, for every
  // source, the first-hop link of a shortest path.
  std::vector<std::vector<const Edge*>> radj(n);
  for (const Edge& e : edges_) radj[li(e.to)].push_back(&e);

  constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();
  for (std::size_t dst = 0; dst < n; ++dst) {
    std::vector<std::uint32_t> dist(n, kInf);
    std::deque<std::size_t> bfs;
    dist[dst] = 0;
    bfs.push_back(dst);
    while (!bfs.empty()) {
      std::size_t cur = bfs.front();
      bfs.pop_front();
      for (const Edge* e : radj[cur]) {
        if (dist[li(e->from)] == kInf) {
          dist[li(e->from)] = dist[cur] + 1;
          bfs.push_back(li(e->from));
        }
      }
    }
    // First hop at each source: any outgoing edge that decreases distance.
    for (std::size_t src = 0; src < n; ++src) {
      if (src == dst || dist[src] == kInf) continue;
      for (const Edge* e : adj[src]) {
        if (dist[li(e->to)] != kInf && dist[li(e->to)] + 1 == dist[src]) {
          nodes_[src]->set_route(nodes_[dst]->id(), e->link);
          break;
        }
      }
    }
  }
}

PacketPtr Network::make_packet(Endpoint src, Endpoint dst, std::uint32_t flow,
                               std::int64_t wire_bytes,
                               std::shared_ptr<const PacketBody> body,
                               bool corrupted) {
  IQ_CHECK(wire_bytes > 0);
  auto p = packet_pool_.make();
  p->id = next_packet_id_++;
  p->src = src;
  p->dst = dst;
  p->flow = flow;
  p->wire_bytes = wire_bytes;
  p->created = sim_.now();
  p->corrupted = corrupted;
  p->body = std::move(body);
  return p;
}

void Network::set_tracer(Tracer* tracer) {
  tracer_ = tracer;
  for (auto& link : links_) link->set_tracer(tracer);
}

Node& Network::node(NodeId id) {
  IQ_CHECK(id >= node_id_base_ && id - node_id_base_ < nodes_.size());
  return *nodes_[id - node_id_base_];
}

}  // namespace iq::net
