#pragma once
// Node: a host or router. Hosts bind local ports to sinks (sockets); routers
// forward by destination node id through a static routing table. The same
// class serves both roles — a host with routes forwards, a router with bound
// ports delivers locally — mirroring how Emulab end hosts and delay nodes
// are all just machines.

#include <cstdint>
#include <string>
#include <unordered_map>

#include "iq/net/link.hpp"
#include "iq/net/packet.hpp"

namespace iq::net {

class Node final : public PacketSink {
 public:
  Node(NodeId id, std::string name) : id_(id), name_(std::move(name)) {}

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }

  /// Attach a local sink to a port. Overwrites any existing binding.
  void bind(std::uint16_t port, PacketSink* sink);
  void unbind(std::uint16_t port);

  /// Set the outgoing link used to reach `dst`.
  void set_route(NodeId dst, Link* link);
  Link* route(NodeId dst) const;

  /// Fallback used when no per-destination route matches — the "default
  /// gateway". Lets a gateway node reach destinations outside its own
  /// Network (e.g. another shard's groups, via a portal link) without
  /// enumerating every remote node id.
  void set_default_route(Link* link) { default_route_ = link; }
  Link* default_route() const { return default_route_; }

  /// Inject a locally-originated packet (from a socket on this node).
  void send(PacketPtr packet);

  /// PacketSink: a packet arrived from a link.
  void deliver(PacketPtr packet) override;

  std::uint64_t forwarded() const { return forwarded_; }
  std::uint64_t delivered_local() const { return delivered_local_; }
  std::uint64_t dead_lettered() const { return dead_lettered_; }

 private:
  void route_or_drop(PacketPtr packet);

  NodeId id_;
  std::string name_;
  std::unordered_map<std::uint16_t, PacketSink*> ports_;
  std::unordered_map<NodeId, Link*> routes_;
  Link* default_route_ = nullptr;
  std::uint64_t forwarded_ = 0;
  std::uint64_t delivered_local_ = 0;
  std::uint64_t dead_lettered_ = 0;
};

}  // namespace iq::net
