#include "iq/net/node.hpp"

#include "iq/common/check.hpp"
#include "iq/common/log.hpp"

namespace iq::net {

void Node::bind(std::uint16_t port, PacketSink* sink) {
  IQ_CHECK(sink != nullptr);
  ports_[port] = sink;
}

void Node::unbind(std::uint16_t port) { ports_.erase(port); }

void Node::set_route(NodeId dst, Link* link) {
  IQ_CHECK(link != nullptr);
  routes_[dst] = link;
}

Link* Node::route(NodeId dst) const {
  auto it = routes_.find(dst);
  return it == routes_.end() ? nullptr : it->second;
}

void Node::send(PacketPtr packet) {
  if (packet->dst.node == id_) {
    deliver(std::move(packet));
    return;
  }
  route_or_drop(std::move(packet));
}

void Node::deliver(PacketPtr packet) {
  if (packet->dst.node != id_) {
    ++forwarded_;
    route_or_drop(std::move(packet));
    return;
  }
  auto it = ports_.find(packet->dst.port);
  if (it == ports_.end()) {
    ++dead_lettered_;
    log_debug("node ", name_, ": no sink on port ", packet->dst.port);
    return;
  }
  ++delivered_local_;
  it->second->deliver(std::move(packet));
}

void Node::route_or_drop(PacketPtr packet) {
  Link* link = route(packet->dst.node);
  if (link == nullptr) link = default_route_;
  if (link == nullptr) {
    ++dead_lettered_;
    log_debug("node ", name_, ": no route to ", packet->dst.node);
    return;
  }
  link->deliver(std::move(packet));
}

}  // namespace iq::net
