#pragma once
// Dumbbell topology builder: N left hosts and N right hosts joined by a pair
// of routers and a shared bottleneck. This is the standard shape for the
// paper's Emulab experiments: the application flow plus cross traffic share
// one 20 Mb/s bottleneck; access links are fast and short.
//
//   L0 ─┐                   ┌─ R0
//   L1 ─┤── RA ══bottleneck══ RB ──├─ R1
//   L2 ─┘                   └─ R2
//
// The path RTT (default 30 ms, as in the paper) is split between the
// bottleneck propagation delay and the access links.

#include <cstdint>
#include <vector>

#include "iq/net/network.hpp"

namespace iq::net {

struct DumbbellConfig {
  std::size_t pairs = 2;
  std::int64_t bottleneck_bps = 20'000'000;
  std::int64_t access_bps = 100'000'000;
  /// Path round-trip time, split across the 3 hops in each direction.
  Duration path_rtt = Duration::millis(30);
  std::int64_t bottleneck_queue_bytes = 64 * 1500;
  std::int64_t access_queue_bytes = 256 * 1500;
  /// Random loss on the left→right bottleneck (the data direction).
  double bottleneck_drop_probability = 0.0;
  std::uint64_t bottleneck_drop_seed = 1;
  /// Random loss on the right→left bottleneck (the ack direction). Defaults
  /// to clean — acks lost only to congestion — but real paths lose acks too;
  /// set this (or drive bottleneck_reverse() through a FaultInjector) to
  /// exercise ack-loss robustness.
  double reverse_drop_probability = 0.0;
  std::uint64_t reverse_drop_seed = 2;
};

class Dumbbell {
 public:
  Dumbbell(Network& net, const DumbbellConfig& cfg);

  Node& left(std::size_t i) { return *left_.at(i); }
  Node& right(std::size_t i) { return *right_.at(i); }
  Node& router_left() { return *router_left_; }
  Node& router_right() { return *router_right_; }

  /// The left→right bottleneck link (the congested one in all experiments).
  Link& bottleneck() { return *bottleneck_; }
  Link& bottleneck_reverse() { return *bottleneck_rev_; }

  const DumbbellConfig& config() const { return cfg_; }

 private:
  DumbbellConfig cfg_;
  std::vector<Node*> left_;
  std::vector<Node*> right_;
  Node* router_left_ = nullptr;
  Node* router_right_ = nullptr;
  Link* bottleneck_ = nullptr;
  Link* bottleneck_rev_ = nullptr;
};

}  // namespace iq::net
