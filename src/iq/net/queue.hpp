#pragma once
// Drop-tail FIFO queue with a byte-capacity bound, as in the paper's
// emulated routers. Tracks occupancy and drop statistics for experiments.

#include <cstdint>
#include <deque>

#include "iq/net/packet.hpp"

namespace iq::net {

class DropTailQueue {
 public:
  explicit DropTailQueue(std::int64_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  /// Returns false (and counts a drop) when the packet does not fit.
  bool enqueue(PacketPtr p);
  PacketPtr dequeue();
  bool empty() const { return items_.empty(); }

  std::int64_t bytes() const { return bytes_; }
  std::size_t packets() const { return items_.size(); }
  std::int64_t capacity_bytes() const { return capacity_bytes_; }

  std::uint64_t enqueued() const { return enqueued_; }
  std::uint64_t dropped() const { return dropped_; }
  std::int64_t dropped_bytes() const { return dropped_bytes_; }
  /// Peak occupancy seen since construction.
  std::int64_t max_bytes_seen() const { return max_bytes_seen_; }

 private:
  std::int64_t capacity_bytes_;
  std::int64_t bytes_ = 0;
  std::int64_t max_bytes_seen_ = 0;
  std::uint64_t enqueued_ = 0;
  std::uint64_t dropped_ = 0;
  std::int64_t dropped_bytes_ = 0;
  std::deque<PacketPtr> items_;
};

}  // namespace iq::net
