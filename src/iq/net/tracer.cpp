#include "iq/net/tracer.hpp"

namespace iq::net {

void Tracer::on_text(const Link&, const std::string&) {}

void TextTracer::on_text(const Link&, const std::string& line) {
  if (lines_.size() == capacity_) {
    lines_.pop_front();
    ++discarded_;
  }
  lines_.push_back(line);
}

CountingTracer::FlowCounts& CountingTracer::at(std::uint32_t flow_id) {
  return flows_[flow_id];
}

void CountingTracer::on_transmit(const Link&, const Packet& p) {
  auto& c = at(p.flow);
  ++c.transmitted;
  c.transmitted_bytes += p.wire_bytes;
}

void CountingTracer::on_drop(const Link&, const Packet& p) {
  auto& c = at(p.flow);
  ++c.dropped;
  c.dropped_bytes += p.wire_bytes;
}

void CountingTracer::on_deliver(const Link&, const Packet& p) {
  ++at(p.flow).delivered;
}

CountingTracer::FlowCounts CountingTracer::flow(std::uint32_t flow_id) const {
  auto it = flows_.find(flow_id);
  return it == flows_.end() ? FlowCounts{} : it->second;
}

CountingTracer::FlowCounts CountingTracer::total() const {
  FlowCounts t;
  for (const auto& [_, c] : flows_) {
    t.transmitted += c.transmitted;
    t.dropped += c.dropped;
    t.delivered += c.delivered;
    t.transmitted_bytes += c.transmitted_bytes;
    t.dropped_bytes += c.dropped_bytes;
  }
  return t;
}

}  // namespace iq::net
