#include "iq/net/recording_tracer.hpp"

#include <sstream>

#include "iq/net/link.hpp"

namespace iq::net {

namespace {
const char* kind_name(RecordingTracer::EventKind k) {
  switch (k) {
    case RecordingTracer::EventKind::Transmit: return "tx";
    case RecordingTracer::EventKind::Drop: return "drop";
    case RecordingTracer::EventKind::Deliver: return "rx";
  }
  return "?";
}
}  // namespace

void RecordingTracer::record(EventKind kind, const Link& link,
                             const Packet& p) {
  if (events_.size() >= capacity_) {
    // Drop the oldest half in one move to amortize.
    const std::size_t keep = capacity_ / 2;
    discarded_ += events_.size() - keep;
    events_.erase(events_.begin(),
                  events_.end() - static_cast<std::ptrdiff_t>(keep));
  }
  events_.push_back(
      Event{sim_.now(), kind, p.flow, p.id, p.wire_bytes, &link});
}

std::vector<RecordingTracer::Event> RecordingTracer::filter(
    EventKind kind, std::uint32_t flow) const {
  std::vector<Event> out;
  for (const Event& e : events_) {
    if (e.kind == kind && (flow == 0xffffffff || e.flow == flow)) {
      out.push_back(e);
    }
  }
  return out;
}

std::string RecordingTracer::to_csv() const {
  std::ostringstream os;
  os << "time_s,kind,flow,packet,bytes,link\n";
  for (const Event& e : events_) {
    os << e.at.to_seconds() << "," << kind_name(e.kind) << "," << e.flow
       << "," << e.packet_id << "," << e.wire_bytes << ","
       << (e.link != nullptr ? e.link->name() : "?") << "\n";
  }
  return os.str();
}

}  // namespace iq::net
