#pragma once
// Packet: the unit that flows through simulated links and queues.
//
// A packet carries addressing, a wire size (what queues and links account
// for), and an optional protocol-specific body (e.g. an RUDP segment or TCP
// header) as a shared immutable object. Payload contents are not materialized
// in simulation — only sizes matter to the network — which keeps multi-
// million-packet runs cheap.

#include <cstdint>
#include <memory>
#include <string>

#include "iq/common/time.hpp"

namespace iq::net {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = 0xffffffff;

struct Endpoint {
  NodeId node = kNoNode;
  std::uint16_t port = 0;
  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

/// Base for protocol-specific packet bodies (RUDP segments, TCP headers).
struct PacketBody {
  virtual ~PacketBody() = default;
};

/// Per-packet fixed overhead we charge for UDP/IP encapsulation.
inline constexpr std::int64_t kUdpIpHeaderBytes = 28;

struct Packet {
  std::uint64_t id = 0;          ///< unique per network, for tracing
  Endpoint src;
  Endpoint dst;
  std::uint32_t flow = 0;        ///< flow label for stats/tracing
  std::int64_t wire_bytes = 0;   ///< total size on the wire, headers included
  TimePoint created;             ///< when the packet entered the network
  /// Set by fault injection: delivered with bit errors. Receivers must treat
  /// the body/payload as garbage — in simulation the wire layers reject it
  /// the way a real checksum would.
  bool corrupted = false;
  std::shared_ptr<const PacketBody> body;

  std::string describe() const;
};

using PacketPtr = std::shared_ptr<const Packet>;

/// Anything that accepts packets (link endpoint, local socket, sink app).
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void deliver(PacketPtr packet) = 0;
};

}  // namespace iq::net
