#include "iq/net/pool.hpp"

#include <new>

#include "iq/common/check.hpp"

namespace iq::net::detail {

ArenaState::~ArenaState() {
  // Every control block holds a reference to this arena, so reaching the
  // destructor means every block has been deallocated back into the
  // freelist; free_blocks_ is the complete block set.
  for (void* p : free_blocks_) ::operator delete(p);
}

void* ArenaState::allocate(std::size_t bytes) {
  if (block_size_ == 0) block_size_ = bytes;
  IQ_CHECK_MSG(bytes == block_size_, "pool arena serves one block size");
  ++outstanding_;
  if (!free_blocks_.empty()) {
    void* p = free_blocks_.back();
    free_blocks_.pop_back();
    ++reuses_;
    return p;
  }
  ++fresh_allocations_;
  return ::operator new(bytes);
}

void ArenaState::deallocate(void* p, std::size_t bytes) {
  IQ_CHECK(bytes == block_size_ && outstanding_ > 0);
  --outstanding_;
  free_blocks_.push_back(p);
}

PoolStats ArenaState::stats() const {
  return PoolStats{fresh_allocations_, reuses_, outstanding_,
                   free_blocks_.size()};
}

}  // namespace iq::net::detail
