#include "iq/net/pool.hpp"

#include <new>
#include <thread>

#include "iq/common/affinity.hpp"
#include "iq/common/check.hpp"

namespace iq::net::detail {

void ArenaState::check_affinity() {
  if (!affinity::strict()) return;
  const std::uint64_t gen = affinity::generation();
  if (owner_generation_ != gen) {
    // First touch this strict window binds the arena to the toucher; a pool
    // may migrate between lockstep runs, never within one.
    owner_generation_ = gen;
    owner_ = std::this_thread::get_id();
    return;
  }
  IQ_CHECK_MSG(owner_ == std::this_thread::get_id(),
               "ObjectPool touched from two threads inside one strict shard "
               "window — cross-shard packet handoff must go through the "
               "ShardedSim mailbox, not share pooled objects");
}

ArenaState::~ArenaState() {
  // Every control block holds a reference to this arena, so reaching the
  // destructor means every block has been deallocated back into the
  // freelist; free_blocks_ is the complete block set.
  for (void* p : free_blocks_) ::operator delete(p);
}

void* ArenaState::allocate(std::size_t bytes) {
  check_affinity();
  if (block_size_ == 0) block_size_ = bytes;
  IQ_CHECK_MSG(bytes == block_size_, "pool arena serves one block size");
  ++outstanding_;
  if (!free_blocks_.empty()) {
    void* p = free_blocks_.back();
    free_blocks_.pop_back();
    ++reuses_;
    return p;
  }
  ++fresh_allocations_;
  return ::operator new(bytes);
}

void ArenaState::deallocate(void* p, std::size_t bytes) {
  check_affinity();
  IQ_CHECK(bytes == block_size_ && outstanding_ > 0);
  --outstanding_;
  free_blocks_.push_back(p);
}

PoolStats ArenaState::stats() const {
  return PoolStats{fresh_allocations_, reuses_, outstanding_,
                   free_blocks_.size()};
}

}  // namespace iq::net::detail
