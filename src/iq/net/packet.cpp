#include "iq/net/packet.hpp"

#include <cstdio>

namespace iq::net {

std::string Packet::describe() const {
  char buf[128];
  const int n = std::snprintf(
      buf, sizeof(buf), "pkt#%llu %u:%u->%u:%u flow=%u %lldB",
      static_cast<unsigned long long>(id), src.node,
      static_cast<unsigned>(src.port), dst.node,
      static_cast<unsigned>(dst.port), flow,
      static_cast<long long>(wire_bytes));
  return std::string(buf, n > 0 ? static_cast<std::size_t>(n) : 0);
}

}  // namespace iq::net
