#include "iq/net/packet.hpp"

#include <sstream>

namespace iq::net {

std::string Packet::describe() const {
  std::ostringstream os;
  os << "pkt#" << id << " " << src.node << ":" << src.port << "->" << dst.node
     << ":" << dst.port << " flow=" << flow << " " << wire_bytes << "B";
  return os.str();
}

}  // namespace iq::net
