#pragma once
// Simple terminal sinks for raw (non-transport) packet flows: cross-traffic
// receivers and test endpoints.

#include <cstdint>
#include <functional>

#include "iq/net/packet.hpp"

namespace iq::net {

/// Swallows packets, counting them.
class CountingSink final : public PacketSink {
 public:
  void deliver(PacketPtr packet) override {
    ++packets_;
    bytes_ += packet->wire_bytes;
    last_arrival_ = packet->created;
  }
  std::uint64_t packets() const { return packets_; }
  std::int64_t bytes() const { return bytes_; }

 private:
  std::uint64_t packets_ = 0;
  std::int64_t bytes_ = 0;
  TimePoint last_arrival_;
};

/// Forwards packets to a callback.
class CallbackSink final : public PacketSink {
 public:
  using Fn = std::function<void(PacketPtr)>;
  explicit CallbackSink(Fn fn) : fn_(std::move(fn)) {}
  void deliver(PacketPtr packet) override { fn_(std::move(packet)); }

 private:
  Fn fn_;
};

}  // namespace iq::net
