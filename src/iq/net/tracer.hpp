#pragma once
// Optional observer of network-level packet events (transmit, drop, deliver).
//
// Links invoke the tracer when one is installed on the Network; experiments
// use it for per-flow loss accounting and time-series plots without touching
// protocol internals.

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

#include "iq/net/packet.hpp"

namespace iq::net {

class Link;

class Tracer {
 public:
  virtual ~Tracer() = default;
  /// Packet started transmission on a link.
  virtual void on_transmit(const Link& link, const Packet& p) = 0;
  /// Packet dropped at a link's queue.
  virtual void on_drop(const Link& link, const Packet& p) = 0;
  /// Packet handed to the link's destination sink.
  virtual void on_deliver(const Link& link, const Packet& p) = 0;

  /// True when this tracer consumes formatted text lines via on_text().
  /// Links check this once at set_tracer() time and skip all string
  /// formatting when nobody is listening, so text tracing is zero-cost on
  /// the hot path unless explicitly enabled.
  virtual bool wants_text() const { return false; }
  /// One formatted "time kind link packet" line per event; only invoked
  /// when wants_text() returned true at installation.
  virtual void on_text(const Link& link, const std::string& line);
};

/// A tracer that counts per-flow transmit/drop/deliver totals.
class CountingTracer final : public Tracer {
 public:
  struct FlowCounts {
    std::uint64_t transmitted = 0;
    std::uint64_t dropped = 0;
    std::uint64_t delivered = 0;
    std::int64_t transmitted_bytes = 0;
    std::int64_t dropped_bytes = 0;
  };

  void on_transmit(const Link& link, const Packet& p) override;
  void on_drop(const Link& link, const Packet& p) override;
  void on_deliver(const Link& link, const Packet& p) override;

  FlowCounts flow(std::uint32_t flow_id) const;
  FlowCounts total() const;

 private:
  FlowCounts& at(std::uint32_t flow_id);
  std::unordered_map<std::uint32_t, FlowCounts> flows_;
};

/// A tracer that keeps the formatted text line of every packet event, for
/// debugging and tests. Installing one is what turns text formatting on in
/// the links (wants_text() = true); every other tracer leaves the hot path
/// free of string work.
class TextTracer final : public Tracer {
 public:
  /// `capacity` bounds memory; the oldest lines are discarded once full.
  explicit TextTracer(std::size_t capacity = 1 << 16)
      : capacity_(capacity) {}

  void on_transmit(const Link&, const Packet&) override {}
  void on_drop(const Link&, const Packet&) override {}
  void on_deliver(const Link&, const Packet&) override {}
  bool wants_text() const override { return true; }
  void on_text(const Link& link, const std::string& line) override;

  const std::deque<std::string>& lines() const { return lines_; }
  std::size_t discarded() const { return discarded_; }

 private:
  std::size_t capacity_;
  std::deque<std::string> lines_;
  std::size_t discarded_ = 0;
};

}  // namespace iq::net
