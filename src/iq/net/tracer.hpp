#pragma once
// Optional observer of network-level packet events (transmit, drop, deliver).
//
// Links invoke the tracer when one is installed on the Network; experiments
// use it for per-flow loss accounting and time-series plots without touching
// protocol internals.

#include <cstdint>
#include <unordered_map>

#include "iq/net/packet.hpp"

namespace iq::net {

class Link;

class Tracer {
 public:
  virtual ~Tracer() = default;
  /// Packet started transmission on a link.
  virtual void on_transmit(const Link& link, const Packet& p) = 0;
  /// Packet dropped at a link's queue.
  virtual void on_drop(const Link& link, const Packet& p) = 0;
  /// Packet handed to the link's destination sink.
  virtual void on_deliver(const Link& link, const Packet& p) = 0;
};

/// A tracer that counts per-flow transmit/drop/deliver totals.
class CountingTracer final : public Tracer {
 public:
  struct FlowCounts {
    std::uint64_t transmitted = 0;
    std::uint64_t dropped = 0;
    std::uint64_t delivered = 0;
    std::int64_t transmitted_bytes = 0;
    std::int64_t dropped_bytes = 0;
  };

  void on_transmit(const Link& link, const Packet& p) override;
  void on_drop(const Link& link, const Packet& p) override;
  void on_deliver(const Link& link, const Packet& p) override;

  FlowCounts flow(std::uint32_t flow_id) const;
  FlowCounts total() const;

 private:
  FlowCounts& at(std::uint32_t flow_id);
  std::unordered_map<std::uint32_t, FlowCounts> flows_;
};

}  // namespace iq::net
