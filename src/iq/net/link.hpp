#pragma once
// Unidirectional link: serialization at a fixed bit rate, a drop-tail queue
// in front of the transmitter, and a fixed propagation delay. This is the
// same model Emulab's delay nodes impose, which is what the paper ran on.

#include <cstdint>
#include <optional>
#include <string>

#include "iq/common/rng.hpp"
#include "iq/fault/loss_model.hpp"
#include "iq/fault/target.hpp"
#include "iq/net/queue.hpp"
#include "iq/net/tracer.hpp"
#include "iq/sim/simulator.hpp"

namespace iq::net {

struct LinkConfig {
  std::int64_t rate_bps = 20'000'000;            ///< 20 Mb/s default (paper)
  Duration propagation = Duration::millis(5);
  std::int64_t queue_capacity_bytes = 100 * 1500;  ///< ~100 MTU-sized slots
  /// Random (non-congestive) loss: each packet is discarded with this
  /// probability *after* serialization — a lossy medium consumes bandwidth
  /// for packets it then corrupts. 0 keeps the link lossless.
  double drop_probability = 0.0;
  std::uint64_t drop_seed = 1;
};

class Link final : public PacketSink, public fault::FaultTarget {
 public:
  Link(sim::Simulator& sim, std::string name, LinkConfig cfg, PacketSink& dst);

  /// Enqueue for transmission; drops (drop-tail) when the queue is full.
  void deliver(PacketPtr packet) override;

  const std::string& name() const { return name_; }
  const LinkConfig& config() const { return cfg_; }
  const DropTailQueue& queue() const { return queue_; }
  bool busy() const { return busy_; }

  std::uint64_t transmitted() const { return transmitted_; }
  std::int64_t transmitted_bytes() const { return transmitted_bytes_; }
  std::uint64_t random_drops() const { return random_drops_; }

  // FaultTarget — effective for packets finishing serialization after the
  // call. Blackout/burst/corruption/duplication do not consume the i.i.d.
  // drop RNG, so enabling them leaves the base drop stream reproducible.
  void set_blackout(bool on) override { blackout_ = on; }
  void set_drop_probability(double p) override;
  void set_burst_loss(
      const std::optional<fault::GilbertElliottConfig>& cfg) override;
  void set_corrupt_probability(double p) override;
  void set_duplicate_probability(double p) override;
  void set_rate_bps(std::int64_t bps) override;
  void set_extra_delay(Duration d) override { extra_delay_ = d; }

  bool blackout() const { return blackout_; }
  std::uint64_t blackout_drops() const { return blackout_drops_; }
  std::uint64_t burst_drops() const { return burst_drops_; }
  std::uint64_t corrupt_deliveries() const { return corrupt_deliveries_; }
  std::uint64_t duplicates() const { return duplicates_; }

  void set_tracer(Tracer* tracer) {
    tracer_ = tracer;
    // Cache the answer so the per-packet path never pays a virtual call
    // (let alone string formatting) when nobody wants text.
    trace_text_ = tracer != nullptr && tracer->wants_text();
  }

 private:
  void start_transmission(PacketPtr p);
  void transmission_done(PacketPtr p);
  void propagate(PacketPtr p);
  void trace_text(const char* kind, const Packet& p);

  sim::Simulator& sim_;
  std::string name_;
  LinkConfig cfg_;
  PacketSink& dst_;
  DropTailQueue queue_;
  bool busy_ = false;
  std::uint64_t transmitted_ = 0;
  std::int64_t transmitted_bytes_ = 0;
  std::uint64_t random_drops_ = 0;
  Rng drop_rng_;
  // Fault state (see FaultTarget). The fault RNG is separate from drop_rng_
  // so corruption/duplication never perturb the i.i.d. drop stream.
  bool blackout_ = false;
  std::optional<fault::GilbertElliottModel> burst_;
  double corrupt_probability_ = 0.0;
  double duplicate_probability_ = 0.0;
  Duration extra_delay_ = Duration::zero();
  Rng fault_rng_;
  std::uint64_t blackout_drops_ = 0;
  std::uint64_t burst_drops_ = 0;
  std::uint64_t corrupt_deliveries_ = 0;
  std::uint64_t duplicates_ = 0;
  Tracer* tracer_ = nullptr;
  bool trace_text_ = false;
};

}  // namespace iq::net
