#include "iq/net/link.hpp"

#include <cstdio>

#include "iq/common/check.hpp"

namespace iq::net {

Link::Link(sim::Simulator& sim, std::string name, LinkConfig cfg,
           PacketSink& dst)
    : sim_(sim),
      name_(std::move(name)),
      cfg_(cfg),
      dst_(dst),
      queue_(cfg.queue_capacity_bytes),
      drop_rng_(cfg.drop_seed) {
  IQ_CHECK(cfg_.rate_bps > 0);
  IQ_CHECK(!cfg_.propagation.is_negative());
  IQ_CHECK(cfg_.drop_probability >= 0.0 && cfg_.drop_probability <= 1.0);
}

void Link::trace_text(const char* kind, const Packet& p) {
  char buf[192];
  const double t = static_cast<double>(sim_.now().ns()) * 1e-9;
  std::snprintf(buf, sizeof(buf), "%.6f %s %s %s", t, kind, name_.c_str(),
                p.describe().c_str());
  tracer_->on_text(*this, buf);
}

void Link::deliver(PacketPtr packet) {
  if (busy_) {
    if (!queue_.enqueue(packet)) {
      if (tracer_ != nullptr) {
        tracer_->on_drop(*this, *packet);
        if (trace_text_) trace_text("drop", *packet);
      }
    }
    return;
  }
  start_transmission(std::move(packet));
}

void Link::start_transmission(PacketPtr p) {
  busy_ = true;
  if (tracer_ != nullptr) {
    tracer_->on_transmit(*this, *p);
    if (trace_text_) trace_text("tx", *p);
  }
  const Duration tx = transmission_time(p->wire_bytes, cfg_.rate_bps);
  sim_.after(tx, [this, p = std::move(p)]() mutable {
    transmission_done(std::move(p));
  });
}

void Link::transmission_done(PacketPtr p) {
  ++transmitted_;
  transmitted_bytes_ += p->wire_bytes;
  // Random medium loss: the packet consumed its serialization time but is
  // corrupted in flight and never delivered.
  if (cfg_.drop_probability > 0.0 &&
      drop_rng_.chance(cfg_.drop_probability)) {
    ++random_drops_;
    if (tracer_ != nullptr) {
      tracer_->on_drop(*this, *p);
      if (trace_text_) trace_text("drop", *p);
    }
  } else {
    // Propagation: the packet is in flight; the transmitter is free now.
    sim_.after(cfg_.propagation, [this, p = std::move(p)]() mutable {
      if (tracer_ != nullptr) {
        tracer_->on_deliver(*this, *p);
        if (trace_text_) trace_text("rx", *p);
      }
      dst_.deliver(std::move(p));
    });
  }
  if (!queue_.empty()) {
    start_transmission(queue_.dequeue());
  } else {
    busy_ = false;
  }
}

}  // namespace iq::net
