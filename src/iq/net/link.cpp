#include "iq/net/link.hpp"

#include <cstdio>

#include "iq/common/check.hpp"

namespace iq::net {

Link::Link(sim::Simulator& sim, std::string name, LinkConfig cfg,
           PacketSink& dst)
    : sim_(sim),
      name_(std::move(name)),
      cfg_(cfg),
      dst_(dst),
      queue_(cfg.queue_capacity_bytes),
      drop_rng_(cfg.drop_seed),
      fault_rng_(cfg.drop_seed ^ 0x9e3779b97f4a7c15ull) {
  IQ_CHECK(cfg_.rate_bps > 0);
  IQ_CHECK(!cfg_.propagation.is_negative());
  IQ_CHECK(cfg_.drop_probability >= 0.0 && cfg_.drop_probability <= 1.0);
}

void Link::set_drop_probability(double p) {
  IQ_CHECK(p >= 0.0 && p <= 1.0);
  cfg_.drop_probability = p;
}

void Link::set_burst_loss(
    const std::optional<fault::GilbertElliottConfig>& cfg) {
  if (cfg.has_value()) {
    burst_.emplace(*cfg);
  } else {
    burst_.reset();
  }
}

void Link::set_corrupt_probability(double p) {
  IQ_CHECK(p >= 0.0 && p <= 1.0);
  corrupt_probability_ = p;
}

void Link::set_duplicate_probability(double p) {
  IQ_CHECK(p >= 0.0 && p <= 1.0);
  duplicate_probability_ = p;
}

void Link::set_rate_bps(std::int64_t bps) {
  IQ_CHECK(bps > 0);
  // Applies to the next serialization; an in-flight transmission keeps the
  // rate it started with, like a real NIC mid-frame.
  cfg_.rate_bps = bps;
}

void Link::trace_text(const char* kind, const Packet& p) {
  char buf[192];
  const double t = static_cast<double>(sim_.now().ns()) * 1e-9;
  std::snprintf(buf, sizeof(buf), "%.6f %s %s %s", t, kind, name_.c_str(),
                p.describe().c_str());
  tracer_->on_text(*this, buf);
}

void Link::deliver(PacketPtr packet) {
  if (busy_) {
    if (!queue_.enqueue(packet)) {
      if (tracer_ != nullptr) {
        tracer_->on_drop(*this, *packet);
        if (trace_text_) trace_text("drop", *packet);
      }
    }
    return;
  }
  start_transmission(std::move(packet));
}

void Link::start_transmission(PacketPtr p) {
  busy_ = true;
  if (tracer_ != nullptr) {
    tracer_->on_transmit(*this, *p);
    if (trace_text_) trace_text("tx", *p);
  }
  const Duration tx = transmission_time(p->wire_bytes, cfg_.rate_bps);
  sim_.after(tx, [this, p = std::move(p)]() mutable {
    transmission_done(std::move(p));
  });
}

void Link::transmission_done(PacketPtr p) {
  ++transmitted_;
  transmitted_bytes_ += p->wire_bytes;
  // Medium loss, in order of severity: an outage beats burst state beats the
  // i.i.d. drop coin. Every lost packet still consumed its serialization
  // time — a lossy medium burns bandwidth on packets it then destroys.
  const char* drop_kind = nullptr;
  if (blackout_) {
    ++blackout_drops_;
    drop_kind = "blackout";
  } else if (burst_.has_value() && burst_->lose()) {
    ++burst_drops_;
    drop_kind = "burst";
  } else if (cfg_.drop_probability > 0.0 &&
             drop_rng_.chance(cfg_.drop_probability)) {
    ++random_drops_;
    drop_kind = "drop";
  }
  if (drop_kind != nullptr) {
    if (tracer_ != nullptr) {
      tracer_->on_drop(*this, *p);
      if (trace_text_) trace_text(drop_kind, *p);
    }
  } else {
    if (corrupt_probability_ > 0.0 &&
        fault_rng_.chance(corrupt_probability_)) {
      // Delivered corruption: bit errors the receiver's checksum must catch.
      // PacketPtr aliases are shared, so flag a shallow copy, not the
      // original (a duplicate of this packet must stay clean).
      auto damaged = std::make_shared<Packet>(*p);
      damaged->corrupted = true;
      ++corrupt_deliveries_;
      propagate(std::move(damaged));
    } else {
      const bool duplicate =
          duplicate_probability_ > 0.0 &&
          fault_rng_.chance(duplicate_probability_);
      if (duplicate) {
        ++duplicates_;
        propagate(p);
      }
      propagate(std::move(p));
    }
  }
  if (!queue_.empty()) {
    start_transmission(queue_.dequeue());
  } else {
    busy_ = false;
  }
}

void Link::propagate(PacketPtr p) {
  // Propagation: the packet is in flight; the transmitter is free now.
  sim_.after(cfg_.propagation + extra_delay_,
             [this, p = std::move(p)]() mutable {
               if (tracer_ != nullptr) {
                 tracer_->on_deliver(*this, *p);
                 if (trace_text_) trace_text("rx", *p);
               }
               dst_.deliver(std::move(p));
             });
}

}  // namespace iq::net
