#pragma once
// RecordingTracer: a pcap-style per-packet event log for the simulated
// network — every transmit/drop/deliver with timestamp, link, flow and
// size. Bounded ring so multi-million-packet runs stay cheap; dumps CSV
// for offline analysis and powers per-flow loss accounting in tests.

#include <cstdint>
#include <string>
#include <vector>

#include "iq/common/time.hpp"
#include "iq/net/tracer.hpp"
#include "iq/sim/simulator.hpp"

namespace iq::net {

class RecordingTracer final : public Tracer {
 public:
  enum class EventKind : std::uint8_t { Transmit, Drop, Deliver };

  struct Event {
    TimePoint at;
    EventKind kind;
    std::uint32_t flow;
    std::uint64_t packet_id;
    std::int64_t wire_bytes;
    const Link* link;
  };

  /// `capacity` bounds memory; older events are discarded once full.
  explicit RecordingTracer(sim::Simulator& sim, std::size_t capacity = 1 << 20)
      : sim_(sim), capacity_(capacity) {}

  void on_transmit(const Link& link, const Packet& p) override {
    record(EventKind::Transmit, link, p);
  }
  void on_drop(const Link& link, const Packet& p) override {
    record(EventKind::Drop, link, p);
  }
  void on_deliver(const Link& link, const Packet& p) override {
    record(EventKind::Deliver, link, p);
  }

  const std::vector<Event>& events() const { return events_; }
  std::size_t discarded() const { return discarded_; }

  /// Events of one kind for one flow (0xffffffff = any flow).
  std::vector<Event> filter(EventKind kind,
                            std::uint32_t flow = 0xffffffff) const;

  /// "time_s,kind,flow,packet,bytes,link" rows with a header.
  std::string to_csv() const;

 private:
  void record(EventKind kind, const Link& link, const Packet& p);

  sim::Simulator& sim_;
  std::size_t capacity_;
  std::vector<Event> events_;
  std::size_t discarded_ = 0;
};

}  // namespace iq::net
