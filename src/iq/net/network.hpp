#pragma once
// Network: owner of nodes and links, route computation, packet factory.
//
// Topologies are built by adding nodes and (unidirectional) links, then
// calling compute_routes() which installs shortest-path (hop-count) static
// routes at every node — the equivalent of Emulab's static topology routing.

#include <memory>
#include <string>
#include <vector>

#include "iq/net/link.hpp"
#include "iq/net/node.hpp"
#include "iq/net/pool.hpp"
#include "iq/net/tracer.hpp"
#include "iq/sim/simulator.hpp"

namespace iq::net {

class Network {
 public:
  /// `node_id_base` offsets every node id this network assigns. Sharded
  /// scenarios build one Network per group; giving each a disjoint id range
  /// keeps node ids globally unique, so a packet addressed to a remote
  /// group's node can never collide with a local id (Node::send's
  /// local-delivery shortcut keys on the id).
  explicit Network(sim::Simulator& sim, NodeId node_id_base = 0)
      : sim_(sim), node_id_base_(node_id_base) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Node& add_node(const std::string& name);
  /// Add a one-way link from `from` to `to`. Returns the link for stats.
  Link& add_link(Node& from, Node& to, const LinkConfig& cfg);
  /// Add a symmetric pair of links with identical configs.
  void add_duplex_link(Node& a, Node& b, const LinkConfig& cfg);

  /// Add a one-way link from `from` into an arbitrary sink that is NOT a
  /// node of this network — the egress half of a cross-shard portal. The
  /// link is excluded from route computation (install it explicitly via
  /// Node::set_route / set_default_route). Zero propagation is typical:
  /// the portal itself accounts for cross-shard latency.
  Link& add_portal_link(Node& from, PacketSink& sink, const std::string& name,
                        const LinkConfig& cfg);

  /// Install hop-count shortest-path routes at every node (BFS per node).
  void compute_routes();

  /// Create a packet stamped with a fresh id and the current sim time.
  /// Packets come from a freelist pool: steady-state traffic performs no
  /// heap allocation per packet. `corrupted` lets a portal re-materializing
  /// a packet from another shard carry the in-flight corruption flag over.
  PacketPtr make_packet(Endpoint src, Endpoint dst, std::uint32_t flow,
                        std::int64_t wire_bytes,
                        std::shared_ptr<const PacketBody> body = nullptr,
                        bool corrupted = false);

  PoolStats packet_pool_stats() const { return packet_pool_.stats(); }

  /// Install a tracer on every link (and future links).
  void set_tracer(Tracer* tracer);

  sim::Simulator& sim() { return sim_; }
  Node& node(NodeId id);
  const std::vector<std::unique_ptr<Node>>& nodes() const { return nodes_; }
  const std::vector<std::unique_ptr<Link>>& links() const { return links_; }

 private:
  struct Edge {
    NodeId from;
    NodeId to;
    Link* link;
  };

  sim::Simulator& sim_;
  NodeId node_id_base_ = 0;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<Edge> edges_;
  std::uint64_t next_packet_id_ = 1;
  ObjectPool<Packet> packet_pool_;
  Tracer* tracer_ = nullptr;
};

}  // namespace iq::net
