#pragma once
// Parking-lot topology: a chain of routers with one bottleneck per hop, an
// end-to-end flow crossing every hop, and per-hop cross flows that each
// traverse exactly one bottleneck.
//
//   S ── R0 ══b0══ R1 ══b1══ R2 ══b2══ R3 ── D
//         ▲ x0 ▼    ▲ x1 ▼    ▲ x2 ▼
//
// The classic multi-bottleneck stress for end-to-end congestion control:
// the through flow competes at every hop, the cross flows at one. Used by
// the multi-bottleneck extension experiments.

#include <cstdint>
#include <vector>

#include "iq/net/network.hpp"

namespace iq::net {

struct ParkingLotConfig {
  std::size_t hops = 3;  ///< number of bottleneck links
  std::int64_t bottleneck_bps = 20'000'000;
  std::int64_t access_bps = 100'000'000;
  Duration hop_delay = Duration::millis(5);
  Duration access_delay = Duration::millis(1);
  std::int64_t bottleneck_queue_bytes = 64 * 1500;
  std::int64_t access_queue_bytes = 256 * 1500;
};

class ParkingLot {
 public:
  ParkingLot(Network& net, const ParkingLotConfig& cfg);

  /// End-to-end endpoints (cross every bottleneck).
  Node& src() { return *src_; }
  Node& dst() { return *dst_; }

  /// Cross-flow endpoints for hop i (enter before b_i, exit after it).
  Node& cross_src(std::size_t hop) { return *cross_src_.at(hop); }
  Node& cross_dst(std::size_t hop) { return *cross_dst_.at(hop); }

  Link& bottleneck(std::size_t hop) { return *bottlenecks_.at(hop); }
  std::size_t hops() const { return cfg_.hops; }
  const ParkingLotConfig& config() const { return cfg_; }

 private:
  ParkingLotConfig cfg_;
  Node* src_ = nullptr;
  Node* dst_ = nullptr;
  std::vector<Node*> routers_;
  std::vector<Node*> cross_src_;
  std::vector<Node*> cross_dst_;
  std::vector<Link*> bottlenecks_;
};

}  // namespace iq::net
