#include "iq/net/parking_lot.hpp"

#include "iq/common/check.hpp"

namespace iq::net {

ParkingLot::ParkingLot(Network& net, const ParkingLotConfig& cfg)
    : cfg_(cfg) {
  IQ_CHECK(cfg.hops >= 1);

  for (std::size_t i = 0; i <= cfg.hops; ++i) {
    routers_.push_back(&net.add_node("R" + std::to_string(i)));
  }

  const LinkConfig bottleneck_cfg{
      .rate_bps = cfg.bottleneck_bps,
      .propagation = cfg.hop_delay,
      .queue_capacity_bytes = cfg.bottleneck_queue_bytes,
  };
  for (std::size_t i = 0; i < cfg.hops; ++i) {
    bottlenecks_.push_back(
        &net.add_link(*routers_[i], *routers_[i + 1], bottleneck_cfg));
    // Reverse direction (acks) at the same rate, separate queue.
    net.add_link(*routers_[i + 1], *routers_[i], bottleneck_cfg);
  }

  const LinkConfig access_cfg{
      .rate_bps = cfg.access_bps,
      .propagation = cfg.access_delay,
      .queue_capacity_bytes = cfg.access_queue_bytes,
  };
  src_ = &net.add_node("S");
  dst_ = &net.add_node("D");
  net.add_duplex_link(*src_, *routers_.front(), access_cfg);
  net.add_duplex_link(*dst_, *routers_.back(), access_cfg);

  for (std::size_t i = 0; i < cfg.hops; ++i) {
    Node& xs = net.add_node("X" + std::to_string(i) + "s");
    Node& xd = net.add_node("X" + std::to_string(i) + "d");
    net.add_duplex_link(xs, *routers_[i], access_cfg);
    net.add_duplex_link(xd, *routers_[i + 1], access_cfg);
    cross_src_.push_back(&xs);
    cross_dst_.push_back(&xd);
  }
  net.compute_routes();
}

}  // namespace iq::net
