#pragma once
// Scenario runner: executes one ScenarioConfig end to end and scores it.
//
// Builds the dumbbell, arms the FaultPlan on both bottleneck directions,
// runs one survivable FTP transfer per sender (plus the optional echo video
// flow), and samples cumulative delivered bytes on a fixed clock for the
// recovery score.
//
// Survivability: every FTP flow watches its connections for terminal
// failure. When one dies (RTO streak / keepalive timeout during a
// blackout), the runner waits a reconnect backoff, builds a fresh
// connection pair on the next port generation, re-attaches the sender and
// receiver (carrying all transfer bookkeeping and the dead connection's
// receiver-side drop count), and the transfer resumes via the FTP resume
// query. Receivers that complete with abandoned blocks get a reliable
// second pass (fill_holes) so every scenario ends byte-identical — the
// per-block CRCs are checked against the generating FileImage.
//
// Every connection runs with the invariant auditor armed (non-fatal);
// `audits_clean` reports whether any connection tripped an invariant.

#include <cstdint>
#include <string>

#include "iq/scenario/profile.hpp"
#include "iq/scenario/score.hpp"

namespace iq::scenario {

struct ScenarioResult {
  std::string name;

  // Transfer outcome (summed over all senders).
  bool completed = false;       ///< every transfer byte-complete (post fill)
  bool wedged = false;          ///< stalled without finishing or shedding
  bool crc_ok = false;          ///< every block digest matches the image
  bool critical_complete = false;  ///< no critical block was lost
  std::uint64_t blocks_total = 0;
  std::uint64_t blocks_received = 0;
  std::uint64_t blocks_on_time = 0;
  double deadline_hit_ratio = 0.0;
  /// Deadline hits restricted to critical (marked) blocks — the
  /// coordination story: shedding unmarked blocks keeps these timely.
  std::uint64_t critical_blocks_total = 0;
  std::uint64_t critical_on_time = 0;
  double critical_deadline_hit_ratio = 0.0;

  // Survival bookkeeping (summed over all connections + generations).
  std::uint64_t reconnects = 0;   ///< fresh connection pairs after failure
  std::uint64_t failures = 0;     ///< terminal connection failures observed
  std::uint64_t messages_shed = 0;
  std::uint64_t blackout_recoveries = 0;

  // Blackout recovery score (delivered-byte rate, all flows).
  RateScore recovery;

  // Video side channel (zero when the profile runs none).
  std::uint64_t video_frames_delivered = 0;
  std::uint64_t video_frames_offered = 0;

  bool audits_clean = true;
  double sim_seconds = 0.0;
  std::uint64_t events_executed = 0;
};

ScenarioResult run_scenario(const ScenarioConfig& cfg);

}  // namespace iq::scenario
