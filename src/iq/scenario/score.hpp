#pragma once
// Graceful-degradation scoring over delivered-byte samples.
//
// The runner samples the scenario's cumulative delivered bytes (all FTP
// receivers plus the video sink) on a fixed clock. From that one series the
// scorer derives the blackout-recovery metrics the golden suite gates:
//
//   prefault_rate  — mean delivery rate over the window before the fault
//   recovery_ratio — best post-restore sliding-window rate / prefault_rate
//   recovery_time  — how long after restore until a window first reaches
//                    the recovery threshold (negative = never)
//
// plus wedge detection: a run that is not complete and has delivered
// nothing for the trailing window is wedged (stalled without shedding) —
// the one outcome the suite hard-fails.

#include <cstddef>
#include <vector>

#include "iq/common/time.hpp"

namespace iq::scenario {

struct RateScoreConfig {
  Duration sample_every = Duration::millis(250);
  Duration prefault_window = Duration::seconds(5);
  Duration recovery_window = Duration::seconds(2);
  /// Post-restore windows are searched this far past the fault clearing.
  Duration recovery_horizon = Duration::seconds(10);
  double recovery_threshold = 0.8;  ///< fraction of prefault_rate
};

struct RateScore {
  double prefault_rate_bps = 0.0;  ///< bytes/s despite the name suffix
  double recovery_ratio = 1.0;
  double recovery_time_s = 0.0;  ///< -1 when the threshold is never reached
};

/// `cum_bytes[k]` is the cumulative delivered-byte count sampled at
/// t = (k + 1) * sample_every (the first sample lands one interval after
/// time zero). `fault_on` / `fault_off` are absolute sim times of the scored
/// outage window. A prefault rate of ~0 scores as fully recovered.
RateScore score_recovery(const std::vector<double>& cum_bytes,
                         Duration fault_on, Duration fault_off,
                         const RateScoreConfig& cfg = {});

/// True when the tail of the series shows zero delivered-byte progress over
/// `stall_window` (given `sample_every` spacing). Complete runs are never
/// wedged — callers guard on completion before asking.
bool is_wedged(const std::vector<double>& cum_bytes, Duration sample_every,
               Duration stall_window);

}  // namespace iq::scenario
