#include "iq/scenario/score.hpp"

#include <algorithm>
#include <cmath>

namespace iq::scenario {

namespace {

/// Index of the last sample taken at or before absolute time `t`, or -1.
std::ptrdiff_t sample_at_or_before(Duration t, Duration dt,
                                   std::size_t count) {
  if (dt <= Duration::zero() || count == 0) return -1;
  // Sample k is taken at (k + 1) * dt.
  const std::int64_t k = t.ns() / dt.ns() - 1;
  if (k < 0) return -1;
  return std::min<std::ptrdiff_t>(static_cast<std::ptrdiff_t>(k),
                                  static_cast<std::ptrdiff_t>(count) - 1);
}

}  // namespace

RateScore score_recovery(const std::vector<double>& cum_bytes,
                         Duration fault_on, Duration fault_off,
                         const RateScoreConfig& cfg) {
  RateScore score;
  const Duration dt = cfg.sample_every;
  const auto count = cum_bytes.size();
  const auto window =
      static_cast<std::ptrdiff_t>(cfg.recovery_window.ns() / dt.ns());
  const auto pre_span =
      static_cast<std::ptrdiff_t>(cfg.prefault_window.ns() / dt.ns());
  if (window <= 0 || pre_span <= 0) return score;

  const std::ptrdiff_t on = sample_at_or_before(fault_on, dt, count);
  if (on < 0) return score;
  const std::ptrdiff_t pre_begin = std::max<std::ptrdiff_t>(0, on - pre_span);
  const double pre_seconds =
      static_cast<double>(on - pre_begin) * dt.to_seconds();
  if (pre_seconds <= 0.0) return score;
  score.prefault_rate_bps =
      (cum_bytes[static_cast<std::size_t>(on)] -
       cum_bytes[static_cast<std::size_t>(pre_begin)]) /
      pre_seconds;
  // Nothing was flowing before the fault: recovery is trivially perfect.
  if (score.prefault_rate_bps < 1.0) return score;

  const std::ptrdiff_t off = sample_at_or_before(fault_off, dt, count);
  const std::ptrdiff_t horizon = sample_at_or_before(
      fault_off + cfg.recovery_horizon, dt, count);
  score.recovery_ratio = 0.0;
  score.recovery_time_s = -1.0;
  if (off < 0) return score;

  const double window_s = static_cast<double>(window) * dt.to_seconds();
  for (std::ptrdiff_t end = off + window; end <= horizon; ++end) {
    const double rate = (cum_bytes[static_cast<std::size_t>(end)] -
                         cum_bytes[static_cast<std::size_t>(end - window)]) /
                        window_s;
    const double ratio = rate / score.prefault_rate_bps;
    score.recovery_ratio = std::max(score.recovery_ratio, ratio);
    if (score.recovery_time_s < 0.0 && ratio >= cfg.recovery_threshold) {
      // Window `end` is sampled at (end + 1) * dt.
      score.recovery_time_s =
          static_cast<double>(end + 1) * dt.to_seconds() -
          fault_off.to_seconds();
    }
  }
  return score;
}

bool is_wedged(const std::vector<double>& cum_bytes, Duration sample_every,
               Duration stall_window) {
  if (sample_every <= Duration::zero()) return false;
  const auto span = static_cast<std::size_t>(
      stall_window.ns() / sample_every.ns());
  if (span == 0 || cum_bytes.size() < span + 1) return false;
  const double tail = cum_bytes.back();
  const double head = cum_bytes[cum_bytes.size() - 1 - span];
  return tail - head < 1.0;
}

}  // namespace iq::scenario
