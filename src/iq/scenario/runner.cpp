#include "iq/scenario/runner.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>
#include <vector>

#include "iq/audit/audit.hpp"
#include "iq/common/check.hpp"
#include "iq/echo/channel.hpp"
#include "iq/echo/sink.hpp"
#include "iq/echo/source.hpp"
#include "iq/fault/injector.hpp"
#include "iq/net/dumbbell.hpp"
#include "iq/sim/simulator.hpp"
#include "iq/sim/timer.hpp"
#include "iq/stats/metrics.hpp"
#include "iq/wire/sim_wire.hpp"

namespace iq::scenario {

namespace {

// Each flow gets a private port range; every reconnect generation binds the
// next port so a dead generation's wires never shadow the live one.
constexpr std::uint16_t kFtpPortBase = 2000;
constexpr std::uint16_t kPortsPerFlow = 64;
constexpr std::uint16_t kVideoPort = 1000;
constexpr std::uint32_t kFtpFlowBase = 10;
constexpr std::uint32_t kVideoFlow = 1;

/// One survivable transfer: sender on left(i), receiver on right(i), plus
/// the current connection generation underneath it.
struct FtpFlow {
  std::size_t index = 0;
  int generation = 0;
  bool reconnect_pending = false;
  std::uint64_t reconnects = 0;

  std::unique_ptr<ftp::FileImage> image;
  std::unique_ptr<wire::SimWire> wire_snd;
  std::unique_ptr<wire::SimWire> wire_rcv;
  std::unique_ptr<core::IqRudpConnection> conn_snd;
  std::unique_ptr<core::IqRudpConnection> conn_rcv;
  std::unique_ptr<ftp::IqFtpSender> sender;
  std::unique_ptr<ftp::IqFtpReceiver> receiver;
};

struct Run {
  explicit Run(const ScenarioConfig& scenario_cfg)
      : cfg(scenario_cfg), network(sim), injector(sim) {}

  const ScenarioConfig& cfg;
  sim::Simulator sim;
  net::Network network;
  std::unique_ptr<net::Dumbbell> dumbbell;
  fault::FaultInjector injector;

  std::vector<std::unique_ptr<FtpFlow>> flows;

  // Optional echo video flow on the last dumbbell pair.
  std::unique_ptr<wire::SimWire> video_wire_snd;
  std::unique_ptr<wire::SimWire> video_wire_rcv;
  std::unique_ptr<core::IqRudpConnection> video_conn_snd;
  std::unique_ptr<core::IqRudpConnection> video_conn_rcv;
  std::unique_ptr<echo::EventChannel> video_chan_snd;
  std::unique_ptr<echo::EventChannel> video_chan_rcv;
  std::unique_ptr<echo::AdaptiveSource> video_source;
  std::unique_ptr<echo::MetricSink> video_sink;
  stats::MessageMetrics video_metrics;

  std::unique_ptr<sim::PeriodicTask> sampler;
  std::vector<double> samples;

  // Accumulated over dead connection generations (live ones are harvested
  // at the end).
  std::uint64_t shed = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t failures = 0;
  bool audits_clean = true;
};

/// Arm the invariant auditor unless IQ_AUDIT already armed a (possibly
/// fatal) one at construction.
void arm_audit(core::IqRudpConnection& conn) {
  if (conn.audit()) return;
  audit::AuditConfig acfg;
  acfg.dump_on_violation = false;
  conn.enable_audit(std::move(acfg));
}

/// Fold a connection's lifetime counters and audit verdict into the run.
void harvest(Run& r, core::IqRudpConnection& conn, bool quiescent_check) {
  const auto& st = conn.transport().stats();
  r.shed += st.messages_shed;
  r.recoveries += st.blackout_recoveries;
  r.failures += st.failures;
  if (auto* a = conn.audit()) {
    if (quiescent_check && conn.transport().send_idle()) a->check_quiescent();
    if (!a->violations().empty()) r.audits_clean = false;
  }
}

rudp::RudpConfig flow_rudp_config(const Run& r, const FtpFlow& f,
                                  bool receiver_side) {
  rudp::RudpConfig rc = r.cfg.ftp_rudp;
  rc.conn_id = static_cast<std::uint32_t>(100 + f.index);
  if (receiver_side) rc.recv_loss_tolerance = r.cfg.recv_loss_tolerance;
  return rc;
}

core::CoordinatorConfig coordinator_config(const Run& r) {
  core::CoordinatorConfig cc;
  cc.mode = r.cfg.coordinated ? core::CoordinationMode::Coordinated
                              : core::CoordinationMode::Uncoordinated;
  return cc;
}

void schedule_reconnect(Run& r, FtpFlow& f);

/// Build connection generation `f.generation` and hand the transfer to it.
/// `resuming` distinguishes the first generation (fresh start) from a
/// reconnect after terminal failure.
void open_flow(Run& r, FtpFlow& f, bool resuming) {
  auto& db = *r.dumbbell;
  const std::uint16_t port = static_cast<std::uint16_t>(
      kFtpPortBase + f.index * kPortsPerFlow + f.generation);
  const net::Endpoint snd_ep{db.left(f.index).id(), port};
  const net::Endpoint rcv_ep{db.right(f.index).id(), port};
  const auto flow_label =
      static_cast<std::uint32_t>(kFtpFlowBase + f.index);

  auto wire_snd = std::make_unique<wire::SimWire>(r.network, snd_ep, rcv_ep,
                                                  flow_label);
  auto wire_rcv = std::make_unique<wire::SimWire>(r.network, rcv_ep, snd_ep,
                                                  flow_label);
  auto conn_snd = std::make_unique<core::IqRudpConnection>(
      *wire_snd, flow_rudp_config(r, f, false), rudp::Role::Client,
      coordinator_config(r));
  auto conn_rcv = std::make_unique<core::IqRudpConnection>(
      *wire_rcv, flow_rudp_config(r, f, true), rudp::Role::Server,
      coordinator_config(r));
  arm_audit(*conn_snd);
  arm_audit(*conn_rcv);

  if (resuming) {
    // Old connections are still alive here: the receiver folds their drop
    // counters into its completion bookkeeping, and we bank their stats.
    f.sender->attach(*conn_snd);
    f.receiver->attach(*conn_rcv);
    harvest(r, *f.conn_snd, /*quiescent_check=*/false);
    harvest(r, *f.conn_rcv, /*quiescent_check=*/false);
  }
  // Connections reference their wires: retire the old generation's
  // connections before its wires.
  f.conn_snd = std::move(conn_snd);
  f.conn_rcv = std::move(conn_rcv);
  f.wire_snd = std::move(wire_snd);
  f.wire_rcv = std::move(wire_rcv);

  auto on_error = [&r, &f](rudp::FailureReason) { schedule_reconnect(r, f); };
  f.conn_snd->set_error_observer(on_error);
  f.conn_rcv->set_error_observer(on_error);
  f.conn_snd->set_established_handler([&f] { f.sender->start(); });
  f.conn_rcv->listen();
  f.conn_snd->connect();
}

void schedule_reconnect(Run& r, FtpFlow& f) {
  // Both directions observe the same dead path; rebuild once.
  if (f.reconnect_pending) return;
  f.reconnect_pending = true;
  r.sim.schedule_after(r.cfg.reconnect_backoff, [&r, &f] {
    f.reconnect_pending = false;
    ++f.generation;
    ++f.reconnects;
    open_flow(r, f, /*resuming=*/true);
  });
}

void build_flow(Run& r, std::size_t index) {
  auto f = std::make_unique<FtpFlow>();
  f->index = index;
  f->image = std::make_unique<ftp::FileImage>(
      r.cfg.file, r.cfg.content_seed + index);

  // The transfer endpoints outlive every connection generation; they are
  // created against the first generation below.
  const std::uint64_t stride = std::max<std::uint64_t>(1, r.cfg.critical_stride);
  FtpFlow& flow = *f;
  r.flows.push_back(std::move(f));

  auto& db = *r.dumbbell;
  const std::uint16_t port =
      static_cast<std::uint16_t>(kFtpPortBase + index * kPortsPerFlow);
  const net::Endpoint snd_ep{db.left(index).id(), port};
  const net::Endpoint rcv_ep{db.right(index).id(), port};
  const auto flow_label = static_cast<std::uint32_t>(kFtpFlowBase + index);
  flow.wire_snd = std::make_unique<wire::SimWire>(r.network, snd_ep, rcv_ep,
                                                  flow_label);
  flow.wire_rcv = std::make_unique<wire::SimWire>(r.network, rcv_ep, snd_ep,
                                                  flow_label);
  flow.conn_snd = std::make_unique<core::IqRudpConnection>(
      *flow.wire_snd, flow_rudp_config(r, flow, false), rudp::Role::Client,
      coordinator_config(r));
  flow.conn_rcv = std::make_unique<core::IqRudpConnection>(
      *flow.wire_rcv, flow_rudp_config(r, flow, true), rudp::Role::Server,
      coordinator_config(r));
  arm_audit(*flow.conn_snd);
  arm_audit(*flow.conn_rcv);

  flow.sender = std::make_unique<ftp::IqFtpSender>(
      *flow.conn_snd, r.cfg.file,
      [stride](std::uint64_t i) { return i % stride == 0; },
      flow.image.get());
  flow.receiver = std::make_unique<ftp::IqFtpReceiver>(*flow.conn_rcv);
  flow.receiver->set_deadline_policy(r.cfg.deadline);
  // Graceful degradation, not data loss: blocks abandoned within the
  // receiver's tolerance are re-sent reliably once the bulk pass is done.
  flow.receiver->set_complete_handler(
      [&flow](const ftp::IqFtpReceiver::Report& rep) {
        if (!rep.missing.empty()) flow.sender->fill_holes(rep.missing);
      });

  auto on_error = [&r, &flow](rudp::FailureReason) {
    schedule_reconnect(r, flow);
  };
  flow.conn_snd->set_error_observer(on_error);
  flow.conn_rcv->set_error_observer(on_error);
  flow.conn_snd->set_established_handler([&flow] { flow.sender->start(); });

  r.sim.at(TimePoint::zero() + r.cfg.start_at, [&flow] {
    flow.conn_rcv->listen();
    flow.conn_snd->connect();
  });
}

void build_video(Run& r) {
  if (!r.cfg.video) return;
  auto& db = *r.dumbbell;
  // The video rides the last dumbbell pair, after the FTP senders.
  const std::size_t pair = r.cfg.net.pairs - 1;
  IQ_CHECK(pair >= r.cfg.senders);
  const net::Endpoint snd_ep{db.left(pair).id(), kVideoPort};
  const net::Endpoint rcv_ep{db.right(pair).id(), kVideoPort};
  r.video_wire_snd = std::make_unique<wire::SimWire>(r.network, snd_ep,
                                                     rcv_ep, kVideoFlow);
  r.video_wire_rcv = std::make_unique<wire::SimWire>(r.network, rcv_ep,
                                                     snd_ep, kVideoFlow);

  rudp::RudpConfig rc;
  rc.conn_id = 1;
  rudp::RudpConfig rc_rcv = rc;
  if (r.cfg.coordinated) rc_rcv.recv_loss_tolerance = 0.3;

  r.video_conn_snd = std::make_unique<core::IqRudpConnection>(
      *r.video_wire_snd, rc, rudp::Role::Client, coordinator_config(r));
  r.video_conn_rcv = std::make_unique<core::IqRudpConnection>(
      *r.video_wire_rcv, rc_rcv, rudp::Role::Server, coordinator_config(r));
  arm_audit(*r.video_conn_snd);
  arm_audit(*r.video_conn_rcv);

  r.video_chan_snd =
      std::make_unique<echo::EventChannel>("video", *r.video_conn_snd);
  r.video_chan_rcv =
      std::make_unique<echo::EventChannel>("video", *r.video_conn_rcv);
  r.video_sink =
      std::make_unique<echo::MetricSink>(*r.video_chan_rcv, r.video_metrics);

  echo::AdaptiveSourceConfig sc;
  sc.frame_rate = r.cfg.video_frame_rate;
  sc.total_frames = static_cast<std::uint64_t>(
      r.cfg.video_frame_rate * r.cfg.run_for.to_seconds());
  sc.fixed_frame_bytes = r.cfg.video_frame_bytes;
  // Coordinated runs adapt via marking; uncoordinated video is rigid. In
  // both cases a bounded backlog sheds stale frames through a blackout
  // instead of wedging behind it.
  sc.adaptation = r.cfg.coordinated ? echo::AdaptKind::Marking
                                    : echo::AdaptKind::None;
  sc.backlog_limit_segments = 256;
  r.video_source = std::make_unique<echo::AdaptiveSource>(
      *r.video_chan_snd, nullptr, sc, &r.video_metrics);

  r.video_conn_snd->set_established_handler([&r] { r.video_source->start(); });
  r.sim.at(TimePoint::zero() + r.cfg.start_at, [&r] {
    r.video_conn_rcv->listen();
    r.video_conn_snd->connect();
  });
}

double total_delivered_bytes(const Run& r) {
  double total = static_cast<double>(r.video_metrics.delivered_bytes());
  for (const auto& f : r.flows) {
    total += static_cast<double>(f->receiver->report().bytes_received);
  }
  return total;
}

bool trace_enabled() {
  const char* v = std::getenv("IQ_SCN_TRACE");
  return v != nullptr && v[0] != '\0';
}

bool all_transfers_done(const Run& r) {
  for (const auto& f : r.flows) {
    if (!f->receiver->complete()) return false;
    if (!f->receiver->report().missing.empty()) return false;
  }
  return true;
}

}  // namespace

ScenarioResult run_scenario(const ScenarioConfig& cfg) {
  IQ_CHECK(cfg.senders >= 1 && cfg.net.pairs >= cfg.senders);
  Run r(cfg);
  r.dumbbell = std::make_unique<net::Dumbbell>(r.network, cfg.net);

  // Target 0 = forward bottleneck, 1 = reverse (the profile convention).
  r.injector.add_target(r.dumbbell->bottleneck());
  r.injector.add_target(r.dumbbell->bottleneck_reverse());
  r.injector.arm(cfg.plan);

  for (std::size_t i = 0; i < cfg.senders; ++i) build_flow(r, i);
  build_video(r);

  r.sampler = std::make_unique<sim::PeriodicTask>(
      r.sim, cfg.rate_score.sample_every,
      [&r] { r.samples.push_back(total_delivered_bytes(r)); });
  r.sampler->start();

  const TimePoint stop = TimePoint::zero() + cfg.run_for;
  const TimePoint earliest_finish = TimePoint::zero() + cfg.blackout_at +
                                    cfg.blackout_dur +
                                    cfg.settle_after_blackout;
  const bool trace = trace_enabled();
  double last_total = 0.0;
  while (r.sim.now() < stop) {
    r.sim.run_for(Duration::millis(250));
    if (trace) {
      const double total = total_delivered_bytes(r);
      std::uint64_t blocks = 0;
      for (const auto& f : r.flows) blocks += f->receiver->report().blocks_received;
      std::fprintf(stderr, "  [%s t=%6.2fs] %10.0fB (+%6.0fB) blocks %llu%s\n",
                   cfg.name.c_str(), r.sim.now().to_seconds(), total,
                   total - last_total, static_cast<unsigned long long>(blocks),
                   all_transfers_done(r) ? " done" : "");
      last_total = total;
    }
    if (r.sim.now() >= earliest_finish && all_transfers_done(r)) break;
  }

  ScenarioResult result;
  result.name = cfg.name;
  result.completed = all_transfers_done(r);
  result.wedged = !result.completed &&
                  is_wedged(r.samples, cfg.rate_score.sample_every,
                            Duration::seconds(5));
  result.crc_ok = true;
  result.critical_complete = true;
  for (const auto& f : r.flows) {
    const auto& rep = f->receiver->report();
    result.blocks_total += rep.blocks_total;
    result.blocks_received += rep.blocks_received;
    result.blocks_on_time += rep.blocks_on_time;
    result.critical_blocks_total += f->sender->critical_blocks();
    result.critical_on_time += rep.critical_on_time;
    result.reconnects += f->reconnects;
    if (!f->receiver->matches(*f->image)) result.crc_ok = false;
    // Hole fills arrive marked, so delivered criticals can exceed the
    // sender's first-pass count — never fall short.
    if (rep.critical_received < f->sender->critical_blocks()) {
      result.critical_complete = false;
    }
    harvest(r, *f->conn_snd, /*quiescent_check=*/true);
    harvest(r, *f->conn_rcv, /*quiescent_check=*/true);
  }
  if (cfg.video) {
    harvest(r, *r.video_conn_snd, /*quiescent_check=*/true);
    harvest(r, *r.video_conn_rcv, /*quiescent_check=*/true);
  }
  result.deadline_hit_ratio =
      result.blocks_total == 0
          ? 1.0
          : static_cast<double>(result.blocks_on_time) /
                static_cast<double>(result.blocks_total);
  // Hole fills arrive marked, so clamp: the ratio reads "fraction of truly
  // critical blocks that met their deadline".
  result.critical_deadline_hit_ratio =
      result.critical_blocks_total == 0
          ? 1.0
          : std::min(1.0, static_cast<double>(result.critical_on_time) /
                              static_cast<double>(result.critical_blocks_total));
  result.messages_shed = r.shed;
  result.blackout_recoveries = r.recoveries;
  result.failures = r.failures;
  result.audits_clean = r.audits_clean;
  result.recovery = score_recovery(r.samples, cfg.blackout_at,
                                   cfg.blackout_at + cfg.blackout_dur,
                                   cfg.rate_score);
  result.video_frames_delivered = r.video_metrics.delivered();
  result.video_frames_offered = r.video_metrics.offered_count();
  result.sim_seconds = r.sim.now().to_seconds();
  result.events_executed = r.sim.events_executed();
  return result;
}

}  // namespace iq::scenario
