#include "iq/scenario/profile.hpp"

namespace iq::scenario {

const char* profile_name(Profile p) {
  switch (p) {
    case Profile::Satellite: return "satellite";
    case Profile::Cellular: return "cellular";
    case Profile::Incast: return "incast";
  }
  return "?";
}

namespace {

// Target indices used by every profile plan (registration order in the
// runner): 0 = forward bottleneck (data), 1 = reverse bottleneck (acks).
constexpr int kFwd = 0;
constexpr int kRev = 1;

void blackout_both(ScenarioConfig& cfg, Duration at, Duration dur) {
  cfg.blackout_at = at;
  cfg.blackout_dur = dur;
  cfg.plan.blackout(at, dur, kFwd);
  cfg.plan.blackout(at, dur, kRev);
}

// Shared degraded-mode knobs: coordinated runs use IQ (receiver loss
// tolerance + marked/unmarked FTP blocks + adaptive video); uncoordinated
// runs are fully reliable with non-adaptive video.
void apply_mode(ScenarioConfig& cfg, bool coordinated) {
  cfg.coordinated = coordinated;
  if (!coordinated) {
    cfg.recv_loss_tolerance = 0.0;
    cfg.critical_stride = 1;
  }
  cfg.name = std::string(profile_name(cfg.profile)) +
             (coordinated ? "_coord" : "_uncoord");
}

ScenarioConfig satellite() {
  ScenarioConfig cfg;
  cfg.profile = Profile::Satellite;

  // GEO path: 500 ms RTT, 10 Mb/s, a deep (BDP-ish) bottleneck queue.
  cfg.net.pairs = 2;  // flow 0 = ftp, flow 1 = video
  cfg.net.bottleneck_bps = 10'000'000;
  cfg.net.path_rtt = Duration::millis(500);
  cfg.net.bottleneck_queue_bytes = 256 * 1500;

  // A sub-RTT keepalive clock (the false-trip regression for this path
  // lives in failure_test): the effective interval is max(200 ms, RTO)
  // ≈ 600 ms here, and a 6-miss budget (~3.6 s of silence) rides out the
  // 2 s rain fade — the satellite scenario survives *in place*; only the
  // cellular tunnel is long enough to kill a connection terminally.
  cfg.ftp_rudp.keepalive = Duration::millis(200);
  cfg.ftp_rudp.max_keepalive_misses = 6;
  cfg.ftp_rudp.initial_cwnd = 4.0;
  cfg.ftp_rudp.max_pending_segments = 4096;

  cfg.file = ftp::FileSpec{3 * 1024 * 1024, 16 * 1024};
  cfg.critical_stride = 4;
  cfg.recv_loss_tolerance = 0.3;
  // Long-haul deadlines sized to the AIMD ramp at 500 ms RTT: the window
  // grows one segment per RTT, so the transfer is a ~65 s affair and the
  // per-block budget must track the achievable catch-up rate, not the
  // 10 Mb/s line rate.
  cfg.deadline.grace = Duration::seconds(5);
  cfg.deadline.per_block = Duration::millis(400);

  cfg.video = true;
  cfg.video_frame_rate = 30.0;

  // Rain fade: 2 s full outage both directions mid-run. Recovery is scored
  // on the total delivered-byte rate (ftp + video) over a horizon matched
  // to the path: the 2 s outage backs the RTO off to multiple seconds and
  // the window re-grows at one segment per 500 ms RTT, so reclaiming the
  // pre-fade rate takes ~40 s of sim time — physics, not a wedge.
  blackout_both(cfg, Duration::seconds(20), Duration::seconds(2));
  cfg.rate_score.recovery_window = Duration::seconds(5);
  cfg.rate_score.recovery_horizon = Duration::seconds(45);
  cfg.run_for = Duration::seconds(150);
  cfg.settle_after_blackout = Duration::seconds(45);
  return cfg;
}

ScenarioConfig cellular() {
  ScenarioConfig cfg;
  cfg.profile = Profile::Cellular;

  cfg.net.pairs = 2;
  cfg.net.bottleneck_bps = 8'000'000;
  cfg.net.path_rtt = Duration::millis(80);
  cfg.net.bottleneck_queue_bytes = 32 * 1500;

  // Aggressive dead-path detection so the 6 s tunnel blackout is a
  // TERMINAL failure (~3.0 s of backed-off RTOs from min_rto) — the ftp
  // flow must reconnect and resume, not ride it out.
  cfg.ftp_rudp.max_rto_streak = 4;
  cfg.ftp_rudp.max_pending_segments = 2048;

  cfg.file = ftp::FileSpec{4 * 1024 * 1024, 16 * 1024};
  cfg.critical_stride = 4;
  cfg.recv_loss_tolerance = 0.3;
  cfg.deadline.grace = Duration::seconds(3);
  cfg.deadline.per_block = Duration::millis(90);

  cfg.video = true;

  fault::GilbertElliottConfig ge;
  ge.p_good_to_bad = 0.02;
  ge.p_bad_to_good = 0.25;
  ge.loss_bad = 0.7;
  ge.seed = 77;

  // Handover burst phase, then a rate flap down to 2 Mb/s while the
  // burst chain is still open (rate persists through it — precedence).
  cfg.plan.burst_loss(Duration::seconds(4), Duration::seconds(6), ge, kFwd);
  cfg.plan.rate_change(Duration::seconds(6), 2'000'000, kFwd);
  cfg.plan.rate_change(Duration::seconds(10), 8'000'000, kFwd);

  // Tunnel: 6 s dark both ways → terminal failure → reconnect + resume.
  blackout_both(cfg, Duration::seconds(12), Duration::seconds(6));

  // Second burst phase with a link flap overlapping it: flap off-edges
  // must not clear the burst chain (nesting fix), and the extra delay
  // installed mid-phase persists after it.
  fault::GilbertElliottConfig ge2 = ge;
  ge2.seed = 78;
  cfg.plan.burst_loss(Duration::seconds(25), Duration::seconds(7), ge2, kFwd);
  cfg.plan.flap(Duration::seconds(26), Duration::millis(300),
                Duration::millis(300), 3, kFwd);
  cfg.plan.delay_change(Duration::seconds(27), Duration::millis(60), kFwd);
  cfg.plan.delay_change(Duration::seconds(40), Duration::zero(), kFwd);

  cfg.run_for = Duration::seconds(90);
  return cfg;
}

ScenarioConfig incast() {
  ScenarioConfig cfg;
  cfg.profile = Profile::Incast;

  // Fan-in: 6 synchronized senders through one shallow-queue bottleneck.
  cfg.senders = 6;
  cfg.net.pairs = 6;
  cfg.net.bottleneck_bps = 50'000'000;
  cfg.net.access_bps = 1'000'000'000;
  cfg.net.path_rtt = Duration::millis(2);
  cfg.net.bottleneck_queue_bytes = 16 * 1500;
  cfg.net.access_queue_bytes = 64 * 1500;

  cfg.ftp_rudp.max_pending_segments = 4096;
  cfg.ftp_rudp.rtt.min_rto = Duration::millis(10);

  cfg.file = ftp::FileSpec{8 * 1024 * 1024, 16 * 1024};
  cfg.critical_stride = 4;
  cfg.recv_loss_tolerance = 0.3;
  cfg.deadline.grace = Duration::seconds(2);
  cfg.deadline.per_block = Duration::millis(30);

  cfg.video = false;

  // Short blackout; the restore re-synchronizes every sender's
  // retransmission clock into a second incast burst.
  blackout_both(cfg, Duration::seconds(5), Duration::millis(1500));
  cfg.run_for = Duration::seconds(60);
  cfg.settle_after_blackout = Duration::seconds(10);
  return cfg;
}

}  // namespace

ScenarioConfig make_profile(Profile p, bool coordinated) {
  ScenarioConfig cfg;
  switch (p) {
    case Profile::Satellite: cfg = satellite(); break;
    case Profile::Cellular: cfg = cellular(); break;
    case Profile::Incast: cfg = incast(); break;
  }
  apply_mode(cfg, coordinated);
  return cfg;
}

}  // namespace iq::scenario
