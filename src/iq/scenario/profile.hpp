#pragma once
// Hostile-network scenario profiles (docs/SCENARIOS.md).
//
// A ScenarioConfig is declarative: topology, workload (survivable FTP
// transfers with per-chunk deadlines, optionally mixed with echo video),
// transport knobs, and a scripted FaultPlan — everything the runner needs
// to replay one hostile path deterministically. make_profile() builds the
// three canonical profiles the regression suite pins:
//
//   Satellite — high-BDP GEO path: 500 ms RTT, 10 Mb/s, deep queues, a
//     rain-fade blackout mid-run. Exercises the RTO/keepalive bounds (a
//     sub-RTT probe clock must not false-trip) and long-RTT slow start.
//   Cellular — 8 Mb/s with Gilbert–Elliott burst phases, scripted rate
//     flaps and delay excursions, and a 6 s tunnel blackout long enough to
//     kill the connection terminally (aggressive RTO streak): the transfer
//     must resume over a fresh connection and still finish byte-identical.
//   Incast — datacenter fan-in: N senders → one receiver through a shallow
//     bottleneck queue, synchronized start burst, plus a short blackout
//     whose restore re-synchronizes all senders into a second burst.
//
// Every profile runs twice — coordinated (IQ: receiver loss tolerance,
// criticality marking, adaptive video) and uncoordinated (plain reliable
// transport) — and the golden metrics pin the delta.

#include <cstdint>
#include <string>

#include "iq/fault/plan.hpp"
#include "iq/ftp/iq_ftp.hpp"
#include "iq/net/dumbbell.hpp"
#include "iq/rudp/connection.hpp"
#include "iq/scenario/score.hpp"

namespace iq::scenario {

enum class Profile { Satellite, Cellular, Incast };

const char* profile_name(Profile p);

struct ScenarioConfig {
  Profile profile = Profile::Satellite;
  std::string name = "satellite";
  bool coordinated = true;

  net::DumbbellConfig net;
  /// FTP transport knobs (client side; the receiver copy additionally
  /// advertises recv_loss_tolerance when coordinated).
  rudp::RudpConfig ftp_rudp;
  double recv_loss_tolerance = 0.3;

  // FTP workload: one transfer per sender.
  ftp::FileSpec file;
  std::uint64_t content_seed = 11;
  /// Block i is critical iff i % critical_stride == 0 (1 = every block).
  /// Uncoordinated runs force stride 1 + tolerance 0 (fully reliable).
  std::uint64_t critical_stride = 1;
  ftp::DeadlinePolicy deadline;
  std::size_t senders = 1;

  // Echo video mixed onto the same bottleneck (satellite/cellular).
  bool video = false;
  double video_frame_rate = 30.0;
  std::int64_t video_frame_bytes = 1400;

  /// Scripted disturbances. Target indices: 0 = forward bottleneck,
  /// 1 = reverse bottleneck. Offsets are absolute sim time (armed at 0).
  fault::FaultPlan plan;
  /// The scored blackout window (also present in `plan`, both directions):
  /// recovery is judged against the delivered-byte rate before `at` and
  /// after `at + dur`.
  Duration blackout_at = Duration::seconds(20);
  Duration blackout_dur = Duration::seconds(2);
  /// Recovery scoring knobs. Per-profile: a 500 ms-RTT path cannot re-grow
  /// its window in the default 10 s horizon — the satellite profile scores
  /// over a horizon matched to its congestion-control physics.
  RateScoreConfig rate_score;

  Duration start_at = Duration::seconds(1);
  Duration run_for = Duration::seconds(60);
  /// Earliest finish: recovery windows need this much time after restore.
  Duration settle_after_blackout = Duration::seconds(15);
  Duration reconnect_backoff = Duration::millis(500);
};

/// The canonical, seeded profile configs the golden metrics pin.
ScenarioConfig make_profile(Profile p, bool coordinated);

}  // namespace iq::scenario
