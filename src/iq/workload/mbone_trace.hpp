#pragma once
// Synthetic MBone membership-dynamics trace (substitute for the paper's
// Figure 1 trace, which is not available).
//
// The paper drives both the application's frame sizes (group × 3000 B) and
// the VBR cross traffic (group × 2000 B) from an MBone multicast-group
// membership trace: a bursty series of member counts with sharp joins and
// leaves on top of slower drift. We synthesize a series with that shape —
// a mean-reverting random walk plus Poisson-ish join/leave bursts — from a
// fixed seed, so every experiment sees the identical "trace file".

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "iq/common/rng.hpp"
#include "iq/common/time.hpp"

namespace iq::workload {

struct MboneTraceConfig {
  std::uint64_t seed = 0x1b0e5;   ///< default trace identity
  std::size_t samples = 2048;     ///< series length (1 sample per second)
  int min_group = 2;
  int max_group = 60;
  int start_group = 20;
  double burst_probability = 0.06;  ///< chance per step of a join/leave burst
  int max_burst = 25;               ///< largest single burst magnitude
  double drift_sigma = 1.6;         ///< stddev of the per-step random walk
  double mean_reversion = 0.02;     ///< pull toward the series midpoint
};

class MboneTrace {
 public:
  explicit MboneTrace(const MboneTraceConfig& cfg = {});
  /// Build from an explicit series (e.g. loaded from a trace file).
  explicit MboneTrace(std::vector<int> groups);

  /// Load a one-sample-per-line trace file ("# comments" and blank lines
  /// ignored; a trailing "index,value" CSV form is also accepted).
  /// Returns nullopt if the file is unreadable or contains no samples.
  static std::optional<MboneTrace> load(const std::string& path);
  /// Write the series, one sample per line, with a header comment.
  bool save(const std::string& path) const;

  /// Group size at sample index (cycled when past the end).
  int group_at(std::size_t index) const;
  /// Group size at an elapsed time, with 1 s per sample.
  int group_at_time(Duration elapsed) const;

  std::size_t size() const { return groups_.size(); }
  const std::vector<int>& groups() const { return groups_; }

  int min_seen() const;
  int max_seen() const;
  double mean() const;

 private:
  std::vector<int> groups_;
};

}  // namespace iq::workload
