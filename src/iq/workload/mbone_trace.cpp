#include "iq/workload/mbone_trace.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <numeric>
#include <sstream>

#include "iq/common/check.hpp"

namespace iq::workload {

MboneTrace::MboneTrace(const MboneTraceConfig& cfg) {
  IQ_CHECK(cfg.samples > 0);
  IQ_CHECK(cfg.min_group >= 1 && cfg.max_group > cfg.min_group);
  Rng rng(cfg.seed);
  groups_.reserve(cfg.samples);

  const double mid = 0.5 * (cfg.min_group + cfg.max_group);
  double g = std::clamp<double>(cfg.start_group, cfg.min_group, cfg.max_group);
  for (std::size_t i = 0; i < cfg.samples; ++i) {
    // Slow drift with mean reversion.
    g += rng.normal(0.0, cfg.drift_sigma);
    g += cfg.mean_reversion * (mid - g);
    // Occasional sharp join/leave burst, as MBone sessions show.
    if (rng.chance(cfg.burst_probability)) {
      const int magnitude = static_cast<int>(rng.uniform_int(3, cfg.max_burst));
      g += rng.chance(0.5) ? magnitude : -magnitude;
    }
    g = std::clamp<double>(g, cfg.min_group, cfg.max_group);
    groups_.push_back(static_cast<int>(std::lround(g)));
  }
}

MboneTrace::MboneTrace(std::vector<int> groups) : groups_(std::move(groups)) {
  IQ_CHECK_MSG(!groups_.empty(), "empty trace");
}

std::optional<MboneTrace> MboneTrace::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::vector<int> groups;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    // Accept "value" or "index,value".
    const auto comma = line.find(',');
    const std::string field =
        comma == std::string::npos ? line : line.substr(comma + 1);
    try {
      groups.push_back(std::max(1, std::stoi(field)));
    } catch (...) {
      return std::nullopt;  // malformed line
    }
  }
  if (groups.empty()) return std::nullopt;
  return MboneTrace(std::move(groups));
}

bool MboneTrace::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << "# MBone-style membership trace: one group size per second\n";
  for (int g : groups_) out << g << "\n";
  return static_cast<bool>(out);
}

int MboneTrace::group_at(std::size_t index) const {
  return groups_[index % groups_.size()];
}

int MboneTrace::group_at_time(Duration elapsed) const {
  const auto idx = static_cast<std::size_t>(
      std::max<std::int64_t>(0, elapsed.ns() / 1'000'000'000));
  return group_at(idx);
}

int MboneTrace::min_seen() const {
  return *std::min_element(groups_.begin(), groups_.end());
}

int MboneTrace::max_seen() const {
  return *std::max_element(groups_.begin(), groups_.end());
}

double MboneTrace::mean() const {
  return std::accumulate(groups_.begin(), groups_.end(), 0.0) /
         static_cast<double>(groups_.size());
}

}  // namespace iq::workload
