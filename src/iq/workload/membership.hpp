#pragma once
// GroupMembership: turns an MboneTrace member-count series into explicit
// join/leave churn over a fixed roster of subscribers.
//
// The trace says *how many* members the multicast group has at each instant;
// a fan-out scenario needs to know *which* subscribers those are. The rule
// here is prefix membership: with target count n, exactly subscribers
// 0..n-1 are members. That keeps churn deterministic and makes the edge
// cases crisp — when the trace dips and recovers within one epoch the same
// subscriber leaves and rejoins; when it dips to the configured floor the
// group can empty entirely.
//
// advance_to(target) emits the leave/join callbacks for the delta and
// returns how many of each fired. Callbacks fire in subscriber order
// (joins ascending, leaves descending — peeling the prefix back), so replay
// under a fixed trace is bit-identical.

#include <cstdint>
#include <functional>

#include "iq/common/time.hpp"
#include "iq/workload/mbone_trace.hpp"

namespace iq::workload {

class GroupMembership {
 public:
  using MemberFn = std::function<void(std::size_t subscriber)>;

  /// `roster` is the subscriber universe; targets are clamped to [0, roster].
  GroupMembership(std::size_t roster, MemberFn on_join, MemberFn on_leave)
      : roster_(roster),
        on_join_(std::move(on_join)),
        on_leave_(std::move(on_leave)) {}

  std::size_t roster() const { return roster_; }
  std::size_t active() const { return active_; }
  bool is_member(std::size_t subscriber) const { return subscriber < active_; }

  /// Move membership to `target` members, firing callbacks for the delta.
  void advance_to(std::size_t target);

  /// Move membership to the trace's count at `elapsed` (1 s per sample),
  /// scaled by `scale` and clamped to the roster.
  void advance_to_trace(const MboneTrace& trace, Duration elapsed,
                        double scale = 1.0);

  std::uint64_t joins() const { return joins_; }
  std::uint64_t leaves() const { return leaves_; }

 private:
  std::size_t roster_;
  MemberFn on_join_;
  MemberFn on_leave_;
  std::size_t active_ = 0;
  std::uint64_t joins_ = 0;
  std::uint64_t leaves_ = 0;
};

}  // namespace iq::workload
