#include "iq/workload/frame_schedule.hpp"

// FrameSchedule is header-only today; this translation unit anchors the
// library target and keeps a stable home for future out-of-line logic.
