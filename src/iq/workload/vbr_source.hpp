#pragma once
// Variable-bit-rate UDP source used as cross traffic in the paper's
// "changing network" experiments: a fixed frame rate (500 frames/s) whose
// frame size follows the MBone trace (group × 2000 bytes), each frame split
// into MTU-sized datagrams sent back to back.

#include <cstdint>

#include "iq/net/network.hpp"
#include "iq/sim/timer.hpp"
#include "iq/workload/frame_schedule.hpp"

namespace iq::workload {

struct VbrConfig {
  double frames_per_sec = 500.0;
  std::int64_t mtu_payload = 1400;
  std::uint32_t flow = 901;
  std::uint16_t src_port = 9001;
  std::uint16_t dst_port = 9001;
};

class VbrSource {
 public:
  VbrSource(net::Network& net, net::Node& src, net::Node& dst,
            const FrameSchedule& schedule, const VbrConfig& cfg);

  void start();
  void stop();

  std::uint64_t frames_sent() const { return frames_; }
  std::uint64_t packets_sent() const { return packets_; }
  std::int64_t sent_bytes() const { return sent_bytes_; }

 private:
  void emit_frame();

  net::Network& net_;
  net::Node& src_;
  net::Node& dst_;
  const FrameSchedule& schedule_;
  VbrConfig cfg_;
  sim::PeriodicTask task_;
  TimePoint started_;
  std::uint64_t frames_ = 0;
  std::uint64_t packets_ = 0;
  std::int64_t sent_bytes_ = 0;
};

}  // namespace iq::workload
