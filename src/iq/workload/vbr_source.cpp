#include "iq/workload/vbr_source.hpp"

#include "iq/common/check.hpp"

namespace iq::workload {

VbrSource::VbrSource(net::Network& net, net::Node& src, net::Node& dst,
                     const FrameSchedule& schedule, const VbrConfig& cfg)
    : net_(net),
      src_(src),
      dst_(dst),
      schedule_(schedule),
      cfg_(cfg),
      task_(net.sim(), Duration::from_seconds(1.0 / cfg.frames_per_sec),
            [this] { emit_frame(); }) {
  IQ_CHECK(cfg.frames_per_sec > 0 && cfg.mtu_payload > 0);
}

void VbrSource::start() {
  started_ = net_.sim().now();
  task_.start(/*fire_now=*/true);
}

void VbrSource::stop() { task_.stop(); }

void VbrSource::emit_frame() {
  const Duration elapsed = net_.sim().now() - started_;
  std::int64_t remaining = schedule_.frame_bytes_at(elapsed);
  ++frames_;
  while (remaining > 0) {
    const std::int64_t payload = std::min(remaining, cfg_.mtu_payload);
    const std::int64_t wire = payload + net::kUdpIpHeaderBytes;
    auto p = net_.make_packet({src_.id(), cfg_.src_port},
                              {dst_.id(), cfg_.dst_port}, cfg_.flow, wire);
    ++packets_;
    sent_bytes_ += wire;
    src_.send(std::move(p));
    remaining -= payload;
  }
}

}  // namespace iq::workload
