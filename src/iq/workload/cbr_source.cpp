#include "iq/workload/cbr_source.hpp"

#include "iq/common/check.hpp"

namespace iq::workload {

CbrSource::CbrSource(net::Network& net, net::Node& src, net::Node& dst,
                     const CbrConfig& cfg)
    : net_(net),
      src_(src),
      dst_(dst),
      cfg_(cfg),
      task_(net.sim(),
            transmission_time(cfg.payload_bytes + net::kUdpIpHeaderBytes,
                              cfg.rate_bps),
            [this] { emit(); }) {
  IQ_CHECK(cfg.rate_bps > 0 && cfg.payload_bytes > 0);
}

void CbrSource::start() { task_.start(/*fire_now=*/true); }

void CbrSource::stop() { task_.stop(); }

void CbrSource::emit() {
  const std::int64_t wire = cfg_.payload_bytes + net::kUdpIpHeaderBytes;
  auto p = net_.make_packet({src_.id(), cfg_.src_port},
                            {dst_.id(), cfg_.dst_port}, cfg_.flow, wire);
  ++sent_;
  sent_bytes_ += wire;
  src_.send(std::move(p));
}

}  // namespace iq::workload
