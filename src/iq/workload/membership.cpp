#include "iq/workload/membership.hpp"

#include <algorithm>
#include <cmath>

namespace iq::workload {

void GroupMembership::advance_to(std::size_t target) {
  target = std::min(target, roster_);
  while (active_ < target) {
    const std::size_t sub = active_++;
    ++joins_;
    if (on_join_) on_join_(sub);
  }
  while (active_ > target) {
    const std::size_t sub = --active_;
    ++leaves_;
    if (on_leave_) on_leave_(sub);
  }
}

void GroupMembership::advance_to_trace(const MboneTrace& trace,
                                       Duration elapsed, double scale) {
  const double raw = trace.group_at_time(elapsed) * scale;
  const auto target =
      static_cast<std::size_t>(std::max(0.0, std::llround(raw) * 1.0));
  advance_to(target);
}

}  // namespace iq::workload
