#pragma once
// FrameSchedule: maps elapsed time to an application frame size, driven by
// the MBone trace. The paper's "changing application" experiments send
// frames of size (group × multiplier) bytes at a fixed frame rate.

#include <cstdint>

#include "iq/common/time.hpp"
#include "iq/workload/mbone_trace.hpp"

namespace iq::workload {

class FrameSchedule {
 public:
  FrameSchedule(const MboneTrace& trace, std::int64_t bytes_per_member)
      : trace_(trace), bytes_per_member_(bytes_per_member) {}

  std::int64_t frame_bytes_at(Duration elapsed) const {
    return static_cast<std::int64_t>(trace_.group_at_time(elapsed)) *
           bytes_per_member_;
  }

  std::int64_t bytes_per_member() const { return bytes_per_member_; }
  const MboneTrace& trace() const { return trace_; }

 private:
  const MboneTrace& trace_;
  std::int64_t bytes_per_member_;
};

}  // namespace iq::workload
