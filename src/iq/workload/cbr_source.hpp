#pragma once
// Constant-bit-rate UDP source — the simulation stand-in for `iperf -u -b N`
// cross traffic used throughout the paper's evaluation.
//
// Sends fixed-size datagrams at evenly spaced intervals so that the offered
// load equals `rate_bps` including per-packet UDP/IP overhead.

#include <cstdint>

#include "iq/net/network.hpp"
#include "iq/sim/timer.hpp"

namespace iq::workload {

struct CbrConfig {
  std::int64_t rate_bps = 10'000'000;
  std::int64_t payload_bytes = 1400;
  std::uint32_t flow = 900;
  std::uint16_t src_port = 9000;
  std::uint16_t dst_port = 9000;
};

class CbrSource {
 public:
  CbrSource(net::Network& net, net::Node& src, net::Node& dst,
            const CbrConfig& cfg);

  void start();
  void stop();
  bool running() const { return task_.running(); }

  std::uint64_t sent() const { return sent_; }
  std::int64_t sent_bytes() const { return sent_bytes_; }
  const CbrConfig& config() const { return cfg_; }

 private:
  void emit();

  net::Network& net_;
  net::Node& src_;
  net::Node& dst_;
  CbrConfig cfg_;
  sim::PeriodicTask task_;
  std::uint64_t sent_ = 0;
  std::int64_t sent_bytes_ = 0;
};

}  // namespace iq::workload
