#include "iq/ftp/iq_ftp.hpp"

#include <algorithm>

#include "iq/common/check.hpp"

namespace iq::ftp {

const std::string kFtpManifest = "FTP_MANIFEST";
const std::string kFtpBlockBytes = "FTP_BLOCK_BYTES";
const std::string kFtpBlock = "FTP_BLOCK";

std::int64_t FileSpec::bytes_of_block(std::uint64_t index) const {
  const std::uint64_t count = block_count();
  IQ_CHECK(index < count);
  if (index + 1 < count) return block_bytes;
  const std::int64_t rem = total_bytes % block_bytes;
  return rem == 0 ? block_bytes : rem;
}

// --------------------------------------------------------------- sender ---

IqFtpSender::IqFtpSender(core::IqRudpConnection& conn, const FileSpec& file,
                         CriticalFn critical)
    : conn_(conn),
      file_(file),
      critical_(std::move(critical)),
      refill_task_(conn.transport().executor(), Duration::millis(1),
                   [this] { refill(); }) {
  IQ_CHECK(file_.total_bytes > 0 && file_.block_bytes > 0);
}

void IqFtpSender::start() { refill_task_.start(/*fire_now=*/true); }

void IqFtpSender::stop() { refill_task_.stop(); }

bool IqFtpSender::done() const {
  return manifest_sent_ && next_block_ >= file_.block_count() &&
         hole_queue_.empty() && conn_.transport().send_idle();
}

void IqFtpSender::fill_holes(const std::vector<std::uint64_t>& blocks) {
  for (std::uint64_t b : blocks) {
    if (b < file_.block_count()) hole_queue_.push_back(b);
  }
  if (!hole_queue_.empty()) refill_task_.start(/*fire_now=*/true);
}

void IqFtpSender::refill() {
  auto& transport = conn_.transport();
  if (!transport.established()) return;

  if (!manifest_sent_) {
    rudp::MessageSpec manifest;
    manifest.bytes = 64;  // small control message
    manifest.marked = true;
    manifest.attrs.set(kFtpManifest,
                       static_cast<std::int64_t>(file_.block_count()));
    manifest.attrs.set(kFtpBlockBytes, file_.block_bytes);
    transport.send_message(manifest);
    manifest_sent_ = true;
  }

  const std::uint64_t total = file_.block_count();
  while (next_block_ < total && transport.queued_segments() < 64) {
    const std::uint64_t index = next_block_++;
    const bool is_critical = critical_(index);
    if (is_critical) ++critical_count_;
    rudp::MessageSpec block;
    block.bytes = file_.bytes_of_block(index);
    block.marked = is_critical;
    block.attrs.set(kFtpBlock, static_cast<std::int64_t>(index));
    auto result = transport.send_message(block);
    if (result.discarded) ++discarded_;
  }
  // Second pass: hole fills go out fully reliable.
  while (next_block_ >= total && !hole_queue_.empty() &&
         transport.queued_segments() < 64) {
    const std::uint64_t index = hole_queue_.back();
    hole_queue_.pop_back();
    rudp::MessageSpec block;
    block.bytes = file_.bytes_of_block(index);
    block.marked = true;
    block.attrs.set(kFtpBlock, static_cast<std::int64_t>(index));
    transport.send_message(block);
  }
  if (next_block_ >= total && hole_queue_.empty()) refill_task_.stop();
}

// ------------------------------------------------------------- receiver ---

IqFtpReceiver::IqFtpReceiver(core::IqRudpConnection& conn)
    : conn_(conn), poll_(conn.transport().executor(), Duration::millis(50),
                         [this] { check_complete(); }) {
  conn_.set_message_handler(
      [this](const rudp::DeliveredMessage& msg) { on_message(msg); });
  poll_.start();
}

void IqFtpReceiver::on_message(const rudp::DeliveredMessage& msg) {
  if (auto blocks = msg.attrs.get_int(kFtpManifest)) {
    if (!manifest_seen_) {
      manifest_seen_ = true;
      report_.blocks_total = static_cast<std::uint64_t>(*blocks);
      have_.assign(report_.blocks_total, false);
      report_.started = msg.delivered;
      // Drops that happened before the manifest cannot be blocks (the
      // manifest goes first and is marked); start the baseline here.
      dropped_baseline_ = conn_.transport().stats().messages_dropped;
    }
    return;
  }
  auto index = msg.attrs.get_int(kFtpBlock);
  if (!index || !manifest_seen_) return;
  const auto i = static_cast<std::uint64_t>(*index);
  if (i >= have_.size() || have_[i]) return;
  have_[i] = true;
  ++report_.blocks_received;
  if (msg.marked) ++report_.critical_received;
  report_.bytes_received += msg.bytes;
  report_.finished = msg.delivered;
  if (complete_) {
    // A second-pass hole fill: keep the report's hole list current.
    std::erase(report_.missing, i);
    return;
  }
  check_complete();
}

void IqFtpReceiver::check_complete() {
  if (complete_ || !manifest_seen_) return;
  const std::uint64_t dropped =
      conn_.transport().stats().messages_dropped - dropped_baseline_;
  if (report_.blocks_received + dropped < report_.blocks_total) return;

  complete_ = true;
  poll_.stop();
  report_.missing.clear();
  for (std::uint64_t i = 0; i < have_.size(); ++i) {
    if (!have_[i]) report_.missing.push_back(i);
  }
  if (on_complete_) on_complete_(report_);
}

}  // namespace iq::ftp
