#include "iq/ftp/iq_ftp.hpp"

#include <algorithm>
#include <cstring>

#include "iq/common/bytes.hpp"
#include "iq/common/check.hpp"

namespace iq::ftp {

const std::string kFtpManifest = "FTP_MANIFEST";
const std::string kFtpBlockBytes = "FTP_BLOCK_BYTES";
const std::string kFtpBlock = "FTP_BLOCK";
const std::string kFtpBlockCrc = "FTP_BLOCK_CRC";
const std::string kFtpResumeQuery = "FTP_RESUME_QUERY";
const std::string kFtpResumeFrom = "FTP_RESUME_FROM";

std::int64_t FileSpec::bytes_of_block(std::uint64_t index) const {
  const std::uint64_t count = block_count();
  IQ_CHECK(index < count);
  if (index + 1 < count) return block_bytes;
  const std::int64_t rem = total_bytes % block_bytes;
  return rem == 0 ? block_bytes : rem;
}

// ----------------------------------------------------------- file image ---

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

FileImage::FileImage(const FileSpec& spec, std::uint64_t seed)
    : spec_(spec), seed_(seed) {
  IQ_CHECK(spec_.block_bytes > 0 && spec_.total_bytes >= 0);
  const std::uint64_t count = spec_.block_count();
  crcs_.reserve(count);
  std::vector<std::uint8_t> block(
      static_cast<std::size_t>(spec_.block_bytes));
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto bytes = static_cast<std::size_t>(spec_.bytes_of_block(i));
    // Each block's content stream is keyed independently so digests do not
    // depend on generation order.
    std::uint64_t state = seed_ ^ (i * 0x2545f4914f6cdd1dull);
    std::size_t off = 0;
    while (off < bytes) {
      const std::uint64_t word = splitmix64(state);
      const std::size_t n = std::min<std::size_t>(8, bytes - off);
      std::memcpy(block.data() + off, &word, n);
      off += n;
    }
    crcs_.push_back(iq::crc32(BytesView(block.data(), bytes)));
  }
}

// --------------------------------------------------------------- sender ---

IqFtpSender::IqFtpSender(core::IqRudpConnection& conn, const FileSpec& file,
                         CriticalFn critical, const FileImage* image)
    : conn_(&conn),
      file_(file),
      critical_(std::move(critical)),
      image_(image) {
  IQ_CHECK(file_.block_bytes > 0 && file_.total_bytes >= 0);
  if (image_) IQ_CHECK(image_->spec().block_count() == file_.block_count());
  refill_task_ = std::make_unique<sim::PeriodicTask>(
      conn_->transport().executor(), Duration::millis(1),
      [this] { refill(); });
  conn_->set_message_handler(
      [this](const rudp::DeliveredMessage& msg) { on_peer_message(msg); });
}

void IqFtpSender::start() { refill_task_->start(/*fire_now=*/true); }

void IqFtpSender::stop() { refill_task_->stop(); }

bool IqFtpSender::done() const {
  return manifest_sent_ && !awaiting_resume_ &&
         next_block_ >= file_.block_count() && hole_queue_.empty() &&
         conn_->transport().send_idle();
}

void IqFtpSender::attach(core::IqRudpConnection& conn) {
  conn_ = &conn;
  refill_task_ = std::make_unique<sim::PeriodicTask>(
      conn_->transport().executor(), Duration::millis(1),
      [this] { refill(); });
  conn_->set_message_handler(
      [this](const rudp::DeliveredMessage& msg) { on_peer_message(msg); });
  manifest_sent_ = false;
  // Anything already streamed may or may not have landed; ask the receiver
  // where to pick up instead of guessing. A transfer that never sent its
  // manifest just starts over.
  if (next_block_ > 0 || !hole_queue_.empty()) {
    awaiting_resume_ = true;
    ++resumes_;
  }
}

void IqFtpSender::fill_holes(const std::vector<std::uint64_t>& blocks) {
  for (std::uint64_t b : blocks) {
    if (b < file_.block_count()) hole_queue_.push_back(b);
  }
  if (!hole_queue_.empty()) refill_task_->start(/*fire_now=*/true);
}

void IqFtpSender::send_block(std::uint64_t index, bool marked) {
  rudp::MessageSpec block;
  block.bytes = file_.bytes_of_block(index);
  block.marked = marked;
  block.attrs.set(kFtpBlock, static_cast<std::int64_t>(index));
  if (image_) {
    block.attrs.set(kFtpBlockCrc,
                    static_cast<std::int64_t>(image_->block_crc(index)));
  }
  auto result = conn_->transport().send_message(block);
  // A discarded re-streamed block was already counted on its first pass.
  if (result.discarded && index >= streamed_high_) ++discarded_;
  if (index >= streamed_high_) streamed_high_ = index + 1;
}

void IqFtpSender::on_peer_message(const rudp::DeliveredMessage& msg) {
  auto from = msg.attrs.get_int(kFtpResumeFrom);
  if (!from || !awaiting_resume_) return;
  const auto resume =
      std::min<std::uint64_t>(static_cast<std::uint64_t>(std::max<std::int64_t>(*from, 0)),
                              file_.block_count());
  next_block_ = resume;
  awaiting_resume_ = false;
  refill_task_->start(/*fire_now=*/true);
}

void IqFtpSender::refill() {
  auto& transport = conn_->transport();
  if (!transport.established()) return;

  if (!manifest_sent_) {
    rudp::MessageSpec manifest;
    manifest.bytes = 64;  // small control message
    manifest.marked = true;
    manifest.attrs.set(kFtpManifest,
                       static_cast<std::int64_t>(file_.block_count()));
    manifest.attrs.set(kFtpBlockBytes, file_.block_bytes);
    if (awaiting_resume_) manifest.attrs.set(kFtpResumeQuery, std::int64_t{1});
    transport.send_message(manifest);
    manifest_sent_ = true;
  }
  // Resuming: hold streaming until the receiver reports its first hole.
  if (awaiting_resume_) {
    refill_task_->stop();
    return;
  }

  const std::uint64_t total = file_.block_count();
  while (next_block_ < total && transport.queued_segments() < 64) {
    const std::uint64_t index = next_block_++;
    const bool is_critical = critical_(index);
    // A resumed transfer re-streams blocks; count each block's criticality
    // only on its first pass.
    if (is_critical && index >= streamed_high_) ++critical_count_;
    send_block(index, is_critical);
  }
  // Second pass: hole fills go out fully reliable.
  while (next_block_ >= total && !hole_queue_.empty() &&
         transport.queued_segments() < 64) {
    const std::uint64_t index = hole_queue_.back();
    hole_queue_.pop_back();
    send_block(index, /*marked=*/true);
  }
  if (next_block_ >= total && hole_queue_.empty()) refill_task_->stop();
}

// ------------------------------------------------------------- receiver ---

IqFtpReceiver::IqFtpReceiver(core::IqRudpConnection& conn) : conn_(&conn) {
  poll_ = std::make_unique<sim::PeriodicTask>(
      conn_->transport().executor(), Duration::millis(50),
      [this] { check_complete(); });
  conn_->set_message_handler(
      [this](const rudp::DeliveredMessage& msg) { on_message(msg); });
  poll_->start();
}

void IqFtpReceiver::attach(core::IqRudpConnection& conn) {
  // Fold the failed connection's receiver-side drops into the carry so
  // blocks it abandoned stay counted toward completion.
  dropped_carry_ +=
      conn_->transport().stats().messages_dropped - dropped_baseline_;
  conn_ = &conn;
  dropped_baseline_ = conn_->transport().stats().messages_dropped;
  poll_ = std::make_unique<sim::PeriodicTask>(
      conn_->transport().executor(), Duration::millis(50),
      [this] { check_complete(); });
  conn_->set_message_handler(
      [this](const rudp::DeliveredMessage& msg) { on_message(msg); });
  if (!complete_) poll_->start();
}

bool IqFtpReceiver::matches(const FileImage& image) const {
  if (!complete_ || !report_.missing.empty()) return false;
  if (have_.size() != image.spec().block_count()) return false;
  for (std::uint64_t i = 0; i < have_.size(); ++i) {
    if (!have_[i] || crcs_[i] != image.block_crc(i)) return false;
  }
  return true;
}

void IqFtpReceiver::on_message(const rudp::DeliveredMessage& msg) {
  if (auto blocks = msg.attrs.get_int(kFtpManifest)) {
    if (!manifest_seen_) {
      manifest_seen_ = true;
      report_.blocks_total = static_cast<std::uint64_t>(*blocks);
      have_.assign(report_.blocks_total, false);
      crcs_.assign(report_.blocks_total, 0);
      report_.started = msg.delivered;
      // Drops that happened before the manifest cannot be blocks (the
      // manifest goes first and is marked); start the baseline here.
      dropped_baseline_ = conn_->transport().stats().messages_dropped;
    }
    if (msg.attrs.get_int(kFtpResumeQuery)) {
      // Resume negotiation: answer with the first block still missing so
      // the sender restarts streaming there (we dedup anything re-sent).
      std::uint64_t first_hole = report_.blocks_total;
      for (std::uint64_t i = 0; i < have_.size(); ++i) {
        if (!have_[i]) {
          first_hole = i;
          break;
        }
      }
      rudp::MessageSpec reply;
      reply.bytes = 32;
      reply.marked = true;
      reply.attrs.set(kFtpResumeFrom, static_cast<std::int64_t>(first_hole));
      conn_->send(reply);
    }
    check_complete();
    return;
  }
  auto index = msg.attrs.get_int(kFtpBlock);
  if (!index || !manifest_seen_) return;
  const auto i = static_cast<std::uint64_t>(*index);
  if (i >= have_.size() || have_[i]) return;
  have_[i] = true;
  ++report_.blocks_received;
  if (msg.marked) ++report_.critical_received;
  report_.bytes_received += msg.bytes;
  report_.finished = msg.delivered;
  if (auto crc = msg.attrs.get_int(kFtpBlockCrc)) {
    crcs_[i] = static_cast<std::uint32_t>(*crc);
  }
  if (track_deadlines_) {
    const TimePoint deadline = report_.started + policy_.grace +
                               policy_.per_block * static_cast<int>(i + 1);
    if (msg.delivered <= deadline) {
      ++report_.blocks_on_time;
      if (msg.marked) ++report_.critical_on_time;
    }
  }
  if (complete_) {
    // A second-pass hole fill: keep the report's hole list current.
    std::erase(report_.missing, i);
    return;
  }
  check_complete();
}

void IqFtpReceiver::check_complete() {
  if (complete_ || !manifest_seen_) return;
  const std::uint64_t dropped =
      dropped_carry_ +
      (conn_->transport().stats().messages_dropped - dropped_baseline_);
  if (report_.blocks_received + dropped < report_.blocks_total) return;

  complete_ = true;
  poll_->stop();
  // A zero-block file completes on its manifest alone.
  if (report_.blocks_total == 0) report_.finished = report_.started;
  report_.missing.clear();
  for (std::uint64_t i = 0; i < have_.size(); ++i) {
    if (!have_[i]) report_.missing.push_back(i);
  }
  if (on_complete_) on_complete_(report_);
}

}  // namespace iq::ftp
