#pragma once
// IQ-FTP: selectively lossy bulk file transfer over IQ-RUDP — the concrete
// system the paper's conclusion announces ("end users can dynamically
// select, with user-provided functions, the most critical file contents to
// be transferred").
//
// The file is divided into fixed-size blocks. A user-supplied criticality
// function marks the blocks that must arrive; the rest ride unmarked and
// may be abandoned under congestion within the receiver's loss tolerance.
// The receiver reassembles a block map and reports completion with the
// exact set of holes, so a later pass (or a different channel) can fill
// them.
//
// Transfers are *survivable*: when a connection dies terminally (blackout →
// RTO streak / keepalive timeout), both endpoints can be re-attached to a
// fresh connection and the transfer resumes where it left off. The sender's
// first manifest on the new connection carries a resume query; the receiver
// answers with the first block it is still missing, and streaming restarts
// from that offset (the receiver's block bitmap dedups anything re-sent).
//
// Messages in the simulator carry virtual payload sizes, not content bytes,
// so byte-identity across a resumed transfer is modeled by FileImage: a
// seeded deterministic content generator whose per-block CRC-32 digests
// ride each block message as an attribute. A transfer is byte-identical
// exactly when every received block's digest matches a freshly generated
// image — resume bookkeeping that replayed the wrong offsets would show up
// as digest mismatches.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "iq/core/iq_connection.hpp"
#include "iq/sim/timer.hpp"

namespace iq::ftp {

struct FileSpec {
  std::int64_t total_bytes = 0;
  std::int64_t block_bytes = 16 * 1024;

  std::uint64_t block_count() const {
    if (total_bytes <= 0) return 0;
    return static_cast<std::uint64_t>((total_bytes + block_bytes - 1) /
                                      block_bytes);
  }
  std::int64_t bytes_of_block(std::uint64_t index) const;
};

/// Deterministic file content: a seeded generator fills each block and the
/// per-block CRC-32 digests are precomputed. Same spec + seed → the same
/// image on any machine, so sender and verifier never need to share bytes.
class FileImage {
 public:
  FileImage(const FileSpec& spec, std::uint64_t seed);

  const FileSpec& spec() const { return spec_; }
  std::uint64_t seed() const { return seed_; }
  std::uint32_t block_crc(std::uint64_t index) const {
    return crcs_.at(index);
  }
  const std::vector<std::uint32_t>& block_crcs() const { return crcs_; }

 private:
  FileSpec spec_;
  std::uint64_t seed_;
  std::vector<std::uint32_t> crcs_;
};

/// True for blocks that must be delivered reliably.
using CriticalFn = std::function<bool(std::uint64_t block_index)>;

// Attribute names used by the IQ-FTP framing.
extern const std::string kFtpManifest;   ///< int: block count (manifest msg)
extern const std::string kFtpBlockBytes; ///< int: nominal block size
extern const std::string kFtpBlock;      ///< int: block index (data msg)
extern const std::string kFtpBlockCrc;   ///< int: CRC-32 of block content
extern const std::string kFtpResumeQuery;///< int(1): manifest asks to resume
extern const std::string kFtpResumeFrom; ///< int: receiver's first hole

/// Per-chunk deadline policy: block i must arrive by
///   transfer start (manifest delivery) + grace + per_block * (i + 1).
/// Blocks that arrive later still count as received — the hit ratio is the
/// graceful-degradation score, not a correctness gate.
struct DeadlinePolicy {
  Duration grace = Duration::seconds(2);
  Duration per_block = Duration::millis(50);
};

class IqFtpSender {
 public:
  /// `image` may be null (no content digests ride the blocks). When set, it
  /// must outlive the sender.
  IqFtpSender(core::IqRudpConnection& conn, const FileSpec& file,
              CriticalFn critical, const FileImage* image = nullptr);

  /// Send the manifest, then stream blocks (paced by transport backlog).
  void start();
  void stop();
  /// All blocks handed over and the transport drained.
  bool done() const;

  /// Rebind to a fresh connection after the previous one failed terminally.
  /// Keeps all transfer bookkeeping; the next start() sends a resume-query
  /// manifest and streaming waits for the receiver's resume offset. Safe to
  /// call with the old connection already destroyed (the sender holds no
  /// dangling state), but must not race a live refill — stop() first.
  void attach(core::IqRudpConnection& conn);

  std::uint64_t blocks_sent() const { return next_block_; }
  std::uint64_t blocks_discarded_at_send() const { return discarded_; }
  std::uint64_t critical_blocks() const { return critical_count_; }
  /// Times attach() restarted an in-progress transfer.
  std::uint64_t resumes() const { return resumes_; }
  bool awaiting_resume() const { return awaiting_resume_; }

  /// Second pass: re-send specific blocks (the receiver's hole report)
  /// fully reliably, regardless of their original criticality. May be
  /// called after done(); restarts the pacing task.
  void fill_holes(const std::vector<std::uint64_t>& blocks);

 private:
  void refill();
  void on_peer_message(const rudp::DeliveredMessage& msg);
  void send_block(std::uint64_t index, bool marked);

  core::IqRudpConnection* conn_;
  FileSpec file_;
  CriticalFn critical_;
  const FileImage* image_;
  std::unique_ptr<sim::PeriodicTask> refill_task_;
  bool manifest_sent_ = false;
  bool awaiting_resume_ = false;
  std::uint64_t resumes_ = 0;
  std::uint64_t next_block_ = 0;
  /// High-water mark of first-time streamed blocks: resume re-streams count
  /// neither as new criticals nor as fresh discards.
  std::uint64_t streamed_high_ = 0;
  std::uint64_t discarded_ = 0;
  std::uint64_t critical_count_ = 0;
  std::vector<std::uint64_t> hole_queue_;  ///< reliable second-pass blocks
};

class IqFtpReceiver {
 public:
  struct Report {
    std::uint64_t blocks_total = 0;
    std::uint64_t blocks_received = 0;
    std::uint64_t blocks_on_time = 0;   ///< met their per-chunk deadline
    std::uint64_t critical_on_time = 0; ///< marked blocks that met theirs
    std::uint64_t critical_received = 0;
    std::int64_t bytes_received = 0;
    std::vector<std::uint64_t> missing;  ///< abandoned block indices
    TimePoint started;
    TimePoint finished;

    double received_fraction() const {
      return blocks_total == 0
                 ? 0.0
                 : static_cast<double>(blocks_received) /
                       static_cast<double>(blocks_total);
    }
    /// Abandoned blocks count as deadline misses; an empty file trivially
    /// hits every deadline.
    double deadline_hit_ratio() const {
      return blocks_total == 0
                 ? 1.0
                 : static_cast<double>(blocks_on_time) /
                       static_cast<double>(blocks_total);
    }
    double duration_s() const { return (finished - started).to_seconds(); }
  };

  using CompleteFn = std::function<void(const Report&)>;

  explicit IqFtpReceiver(core::IqRudpConnection& conn);

  void set_complete_handler(CompleteFn fn) { on_complete_ = std::move(fn); }
  void set_deadline_policy(const DeadlinePolicy& policy) {
    policy_ = policy;
    track_deadlines_ = true;
  }
  bool complete() const { return complete_; }
  const Report& report() const { return report_; }

  /// Rebind to a fresh connection after the previous one failed terminally.
  /// The *old* connection must still be alive: its receiver-side drop
  /// counter is folded into the completion bookkeeping here, so blocks the
  /// old connection already abandoned stay accounted for.
  void attach(core::IqRudpConnection& conn);

  /// Per-block CRC-32 digests as delivered (0 where absent / not received).
  const std::vector<std::uint32_t>& block_crcs() const { return crcs_; }
  /// Byte-identity: the transfer is complete with no holes and every
  /// block's delivered digest equals the image's.
  bool matches(const FileImage& image) const;

 private:
  void on_message(const rudp::DeliveredMessage& msg);
  void check_complete();

  core::IqRudpConnection* conn_;
  std::unique_ptr<sim::PeriodicTask> poll_;
  std::vector<bool> have_;
  std::vector<std::uint32_t> crcs_;
  std::uint64_t dropped_baseline_ = 0;
  /// Receiver-side drops accumulated on prior (failed) connections.
  std::uint64_t dropped_carry_ = 0;
  bool manifest_seen_ = false;
  bool complete_ = false;
  bool track_deadlines_ = false;
  DeadlinePolicy policy_;
  Report report_;
  CompleteFn on_complete_;
};

}  // namespace iq::ftp
