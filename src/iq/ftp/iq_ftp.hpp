#pragma once
// IQ-FTP: selectively lossy bulk file transfer over IQ-RUDP — the concrete
// system the paper's conclusion announces ("end users can dynamically
// select, with user-provided functions, the most critical file contents to
// be transferred").
//
// The file is divided into fixed-size blocks. A user-supplied criticality
// function marks the blocks that must arrive; the rest ride unmarked and
// may be abandoned under congestion within the receiver's loss tolerance.
// The receiver reassembles a block map and reports completion with the
// exact set of holes, so a later pass (or a different channel) can fill
// them.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "iq/core/iq_connection.hpp"
#include "iq/sim/timer.hpp"

namespace iq::ftp {

struct FileSpec {
  std::int64_t total_bytes = 0;
  std::int64_t block_bytes = 16 * 1024;

  std::uint64_t block_count() const {
    if (total_bytes <= 0) return 0;
    return static_cast<std::uint64_t>((total_bytes + block_bytes - 1) /
                                      block_bytes);
  }
  std::int64_t bytes_of_block(std::uint64_t index) const;
};

/// True for blocks that must be delivered reliably.
using CriticalFn = std::function<bool(std::uint64_t block_index)>;

// Attribute names used by the IQ-FTP framing.
extern const std::string kFtpManifest;   ///< int: block count (manifest msg)
extern const std::string kFtpBlockBytes; ///< int: nominal block size
extern const std::string kFtpBlock;      ///< int: block index (data msg)

class IqFtpSender {
 public:
  IqFtpSender(core::IqRudpConnection& conn, const FileSpec& file,
              CriticalFn critical);

  /// Send the manifest, then stream blocks (paced by transport backlog).
  void start();
  void stop();
  /// All blocks handed over and the transport drained.
  bool done() const;

  std::uint64_t blocks_sent() const { return next_block_; }
  std::uint64_t blocks_discarded_at_send() const { return discarded_; }
  std::uint64_t critical_blocks() const { return critical_count_; }

  /// Second pass: re-send specific blocks (the receiver's hole report)
  /// fully reliably, regardless of their original criticality. May be
  /// called after done(); restarts the pacing task.
  void fill_holes(const std::vector<std::uint64_t>& blocks);

 private:
  void refill();

  core::IqRudpConnection& conn_;
  FileSpec file_;
  CriticalFn critical_;
  sim::PeriodicTask refill_task_;
  bool manifest_sent_ = false;
  std::uint64_t next_block_ = 0;
  std::uint64_t discarded_ = 0;
  std::uint64_t critical_count_ = 0;
  std::vector<std::uint64_t> hole_queue_;  ///< reliable second-pass blocks
};

class IqFtpReceiver {
 public:
  struct Report {
    std::uint64_t blocks_total = 0;
    std::uint64_t blocks_received = 0;
    std::uint64_t critical_received = 0;
    std::int64_t bytes_received = 0;
    std::vector<std::uint64_t> missing;  ///< abandoned block indices
    TimePoint started;
    TimePoint finished;

    double received_fraction() const {
      return blocks_total == 0
                 ? 0.0
                 : static_cast<double>(blocks_received) /
                       static_cast<double>(blocks_total);
    }
    double duration_s() const { return (finished - started).to_seconds(); }
  };

  using CompleteFn = std::function<void(const Report&)>;

  explicit IqFtpReceiver(core::IqRudpConnection& conn);

  void set_complete_handler(CompleteFn fn) { on_complete_ = std::move(fn); }
  bool complete() const { return complete_; }
  const Report& report() const { return report_; }

 private:
  void on_message(const rudp::DeliveredMessage& msg);
  void check_complete();

  core::IqRudpConnection& conn_;
  sim::PeriodicTask poll_;
  std::vector<bool> have_;
  std::uint64_t dropped_baseline_ = 0;
  bool manifest_seen_ = false;
  bool complete_ = false;
  Report report_;
  CompleteFn on_complete_;
};

}  // namespace iq::ftp
