#pragma once
// TCP baseline: a Reno-style byte-stream model on the simulated network.
//
// Implements the mechanisms that give TCP its characteristic behaviour in
// the paper's comparisons — slow start, congestion avoidance, 3-dupack fast
// retransmit + fast recovery, RTO with exponential backoff and go-back to
// slow start — at segment granularity. It is a model of kernel TCP adequate
// for throughput/fairness/burstiness comparisons, not a full TCP (no
// window scaling negotiation, no SACK, no Nagle).
//
// Simulation-only: it talks straight to a Node/port, no SegmentWire.

#include <cstdint>
#include <functional>
#include <map>

#include "iq/net/network.hpp"
#include "iq/net/pool.hpp"
#include "iq/rudp/rtt_estimator.hpp"
#include "iq/sim/timer.hpp"

namespace iq::tcp {

struct TcpHeader final : net::PacketBody {
  enum class Type : std::uint8_t { Syn, SynAck, Data, Ack };
  Type type = Type::Data;
  std::uint32_t conn_id = 0;
  std::uint64_t seq = 0;        ///< byte offset of first payload byte
  std::uint64_t ack = 0;        ///< next expected byte
  std::int32_t payload_bytes = 0;
  std::uint64_t ts_us = 0;
  std::uint64_t ts_echo_us = 0;
};

/// TCP header + IP header wire overhead per segment.
inline constexpr std::int64_t kTcpIpHeaderBytes = 40;

struct TcpConfig {
  std::uint32_t conn_id = 1;
  std::int64_t mss = 1400;
  double initial_cwnd_segments = 2.0;
  double initial_ssthresh_segments = 64.0;
  int dup_ack_threshold = 3;
  rudp::RttConfig rtt;
  Duration connect_retry = Duration::millis(500);
};

enum class TcpRole { Client, Server };

struct TcpStats {
  std::uint64_t segments_sent = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t acks_received = 0;
  std::int64_t bytes_acked = 0;
};

class TcpConnection final : public net::PacketSink {
 public:
  TcpConnection(net::Network& net, net::Endpoint local, net::Endpoint remote,
                std::uint32_t flow, const TcpConfig& cfg, TcpRole role);
  ~TcpConnection() override;
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  void connect();
  void listen();
  bool established() const { return established_; }

  /// Append `n` bytes to the outgoing stream.
  void send_bytes(std::int64_t n);
  /// Bytes written but not yet acknowledged.
  std::int64_t unacked_bytes() const {
    return static_cast<std::int64_t>(write_limit_ - snd_una_);
  }
  bool send_idle() const { return snd_una_ == write_limit_; }

  using EstablishedFn = std::function<void()>;
  /// Receiver side: the in-order delivered prefix advanced to `offset`.
  using DeliveredFn = std::function<void(std::uint64_t offset, TimePoint now)>;
  void set_established_handler(EstablishedFn fn) {
    on_established_ = std::move(fn);
  }
  void set_delivered_handler(DeliveredFn fn) { on_delivered_ = std::move(fn); }
  /// Receiver side: invoked for every arriving data segment (packet-level
  /// inter-arrival measurement).
  using DataPacketFn = std::function<void(TimePoint now)>;
  void set_data_packet_observer(DataPacketFn fn) {
    on_data_packet_ = std::move(fn);
  }

  net::Network& network() { return net_; }
  double cwnd_bytes() const { return cwnd_; }
  double cwnd_segments() const {
    return cwnd_ / static_cast<double>(cfg_.mss);
  }
  Duration srtt() const { return rtt_.srtt(); }
  const TcpStats& stats() const { return stats_; }
  std::uint64_t delivered_offset() const { return rcv_nxt_; }

  // PacketSink.
  void deliver(net::PacketPtr packet) override;

 private:
  void on_syn(const TcpHeader& h);
  void on_syn_ack(const TcpHeader& h);
  void on_data(const TcpHeader& h);
  void on_ack(const TcpHeader& h);

  void pump();
  void send_segment(std::uint64_t seq, std::int64_t len, bool retransmission);
  void send_control(TcpHeader::Type type);
  void send_ack(std::uint64_t ts_echo);
  void retransmit_head();
  void on_rto();
  void enter_recovery();

  std::uint64_t now_us() const;

  net::Network& net_;
  net::ObjectPool<TcpHeader> header_pool_;
  net::Endpoint local_;
  net::Endpoint remote_;
  std::uint32_t flow_;
  TcpConfig cfg_;
  TcpRole role_;

  bool established_ = false;
  bool listening_ = false;
  bool syn_sent_ = false;

  // Sender.
  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;
  std::uint64_t write_limit_ = 0;
  double cwnd_;      ///< bytes
  double ssthresh_;  ///< bytes
  int dup_acks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recovery_point_ = 0;
  rudp::RttEstimator rtt_;
  sim::Timer rto_timer_;
  sim::Timer connect_timer_;

  // Receiver: out-of-order byte ranges [start, end).
  std::uint64_t rcv_nxt_ = 0;
  std::map<std::uint64_t, std::uint64_t> ooo_;

  TcpStats stats_;
  EstablishedFn on_established_;
  DeliveredFn on_delivered_;
  DataPacketFn on_data_packet_;
};

}  // namespace iq::tcp
