#include "iq/tcp/tcp_connection.hpp"

#include <algorithm>

#include "iq/common/check.hpp"

namespace iq::tcp {

TcpConnection::TcpConnection(net::Network& net, net::Endpoint local,
                             net::Endpoint remote, std::uint32_t flow,
                             const TcpConfig& cfg, TcpRole role)
    : net_(net),
      local_(local),
      remote_(remote),
      flow_(flow),
      cfg_(cfg),
      role_(role),
      cwnd_(cfg.initial_cwnd_segments * static_cast<double>(cfg.mss)),
      ssthresh_(cfg.initial_ssthresh_segments * static_cast<double>(cfg.mss)),
      rtt_(cfg.rtt),
      rto_timer_(net.sim(), [this] { on_rto(); }),
      connect_timer_(net.sim(), [this] {
        if (!established_ && syn_sent_) {
          send_control(TcpHeader::Type::Syn);
          connect_timer_.start(cfg_.connect_retry);
        }
      }) {
  net_.node(local_.node).bind(local_.port, this);
}

TcpConnection::~TcpConnection() {
  net_.node(local_.node).unbind(local_.port);
}

std::uint64_t TcpConnection::now_us() const {
  return static_cast<std::uint64_t>(net_.sim().now().ns() / 1000);
}

void TcpConnection::connect() {
  IQ_CHECK(role_ == TcpRole::Client);
  syn_sent_ = true;
  send_control(TcpHeader::Type::Syn);
  connect_timer_.start(cfg_.connect_retry);
}

void TcpConnection::listen() {
  IQ_CHECK(role_ == TcpRole::Server);
  listening_ = true;
}

void TcpConnection::send_bytes(std::int64_t n) {
  IQ_CHECK(n >= 0);
  write_limit_ += static_cast<std::uint64_t>(n);
  pump();
}

// -------------------------------------------------------------- output ----

void TcpConnection::pump() {
  if (!established_) return;
  for (;;) {
    const std::int64_t inflight =
        static_cast<std::int64_t>(snd_nxt_ - snd_una_);
    const std::int64_t window = static_cast<std::int64_t>(cwnd_);
    if (snd_nxt_ >= write_limit_) return;
    const std::int64_t len = std::min<std::int64_t>(
        cfg_.mss, static_cast<std::int64_t>(write_limit_ - snd_nxt_));
    if (inflight + len > window) return;
    send_segment(snd_nxt_, len, /*retransmission=*/false);
    snd_nxt_ += static_cast<std::uint64_t>(len);
  }
}

void TcpConnection::send_segment(std::uint64_t seq, std::int64_t len,
                                 bool retransmission) {
  auto h = header_pool_.make();
  h->type = TcpHeader::Type::Data;
  h->conn_id = cfg_.conn_id;
  h->seq = seq;
  h->ack = rcv_nxt_;
  h->payload_bytes = static_cast<std::int32_t>(len);
  h->ts_us = now_us();
  ++stats_.segments_sent;
  if (retransmission) ++stats_.retransmissions;
  auto p = net_.make_packet(local_, remote_, flow_, len + kTcpIpHeaderBytes,
                            std::move(h));
  net_.node(local_.node).send(std::move(p));
  rto_timer_.start_if_idle(rtt_.rto());
}

void TcpConnection::send_control(TcpHeader::Type type) {
  auto h = header_pool_.make();
  h->type = type;
  h->conn_id = cfg_.conn_id;
  h->ack = rcv_nxt_;
  h->ts_us = now_us();
  auto p = net_.make_packet(local_, remote_, flow_, kTcpIpHeaderBytes,
                            std::move(h));
  net_.node(local_.node).send(std::move(p));
}

void TcpConnection::send_ack(std::uint64_t ts_echo) {
  auto h = header_pool_.make();
  h->type = TcpHeader::Type::Ack;
  h->conn_id = cfg_.conn_id;
  h->ack = rcv_nxt_;
  h->ts_us = now_us();
  h->ts_echo_us = ts_echo;
  auto p = net_.make_packet(local_, remote_, flow_, kTcpIpHeaderBytes,
                            std::move(h));
  net_.node(local_.node).send(std::move(p));
}

// -------------------------------------------------------------- input -----

void TcpConnection::deliver(net::PacketPtr packet) {
  const auto* h = dynamic_cast<const TcpHeader*>(packet->body.get());
  IQ_CHECK_MSG(h != nullptr, "non-TCP packet delivered to TcpConnection");
  if (h->conn_id != cfg_.conn_id) return;
  switch (h->type) {
    case TcpHeader::Type::Syn: on_syn(*h); break;
    case TcpHeader::Type::SynAck: on_syn_ack(*h); break;
    case TcpHeader::Type::Data: on_data(*h); break;
    case TcpHeader::Type::Ack: on_ack(*h); break;
  }
}

void TcpConnection::on_syn(const TcpHeader&) {
  if (role_ != TcpRole::Server || !listening_) return;
  send_control(TcpHeader::Type::SynAck);
  if (!established_) {
    established_ = true;
    if (on_established_) on_established_();
  }
}

void TcpConnection::on_syn_ack(const TcpHeader&) {
  if (role_ != TcpRole::Client || !syn_sent_) return;
  connect_timer_.stop();
  if (!established_) {
    established_ = true;
    if (on_established_) on_established_();
    pump();
  }
}

void TcpConnection::on_data(const TcpHeader& h) {
  if (!established_) return;
  if (on_data_packet_) on_data_packet_(net_.sim().now());
  const std::uint64_t start = h.seq;
  const std::uint64_t end = h.seq + static_cast<std::uint64_t>(h.payload_bytes);
  if (end > rcv_nxt_) {
    // Insert/merge [max(start, rcv_nxt_), end) into the out-of-order set.
    std::uint64_t s = std::max(start, rcv_nxt_);
    std::uint64_t e = end;
    auto it = ooo_.lower_bound(s);
    if (it != ooo_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= s) {
        s = prev->first;
        e = std::max(e, prev->second);
        it = ooo_.erase(prev);
      }
    }
    while (it != ooo_.end() && it->first <= e) {
      e = std::max(e, it->second);
      it = ooo_.erase(it);
    }
    ooo_[s] = e;
    // Advance the in-order point over any now-contiguous prefix.
    auto head = ooo_.begin();
    if (head != ooo_.end() && head->first <= rcv_nxt_) {
      rcv_nxt_ = std::max(rcv_nxt_, head->second);
      ooo_.erase(head);
      if (on_delivered_) on_delivered_(rcv_nxt_, net_.sim().now());
    }
  }
  send_ack(h.ts_us);
}

void TcpConnection::on_ack(const TcpHeader& h) {
  if (!established_) return;
  ++stats_.acks_received;
  if (h.ts_echo_us > 0) {
    rtt_.add_sample(net_.sim().now() -
                    TimePoint::from_ns(
                        static_cast<std::int64_t>(h.ts_echo_us) * 1000));
  }
  const double mss = static_cast<double>(cfg_.mss);

  if (h.ack > snd_una_) {
    const std::int64_t newly =
        static_cast<std::int64_t>(h.ack - snd_una_);
    snd_una_ = h.ack;
    stats_.bytes_acked += newly;
    dup_acks_ = 0;
    if (in_recovery_) {
      if (snd_una_ >= recovery_point_) {
        in_recovery_ = false;
        cwnd_ = ssthresh_;  // deflate
      } else {
        // Partial ack: retransmit the next hole (NewReno-style).
        retransmit_head();
      }
    } else if (cwnd_ < ssthresh_) {
      cwnd_ += static_cast<double>(newly);  // slow start
    } else {
      cwnd_ += mss * static_cast<double>(newly) / cwnd_;  // CA
    }
    if (snd_una_ == snd_nxt_) {
      rto_timer_.stop();
    } else {
      rto_timer_.start(rtt_.rto());
    }
  } else if (h.ack == snd_una_ && snd_nxt_ > snd_una_) {
    ++dup_acks_;
    if (in_recovery_) {
      cwnd_ += mss;  // inflate per dupack
    } else if (dup_acks_ >= cfg_.dup_ack_threshold) {
      enter_recovery();
    }
  }
  pump();
}

void TcpConnection::enter_recovery() {
  in_recovery_ = true;
  recovery_point_ = snd_nxt_;
  const double mss = static_cast<double>(cfg_.mss);
  const double flight = static_cast<double>(snd_nxt_ - snd_una_);
  ssthresh_ = std::max(flight / 2.0, 2.0 * mss);
  cwnd_ = ssthresh_ + 3.0 * mss;
  ++stats_.fast_retransmits;
  retransmit_head();
}

void TcpConnection::retransmit_head() {
  const std::int64_t len = std::min<std::int64_t>(
      cfg_.mss, static_cast<std::int64_t>(write_limit_ - snd_una_));
  if (len <= 0) return;
  send_segment(snd_una_, len, /*retransmission=*/true);
  rto_timer_.start(rtt_.rto());
}

void TcpConnection::on_rto() {
  if (!established_ || snd_una_ == snd_nxt_) return;
  ++stats_.timeouts;
  rtt_.backoff();
  const double mss = static_cast<double>(cfg_.mss);
  const double flight = static_cast<double>(snd_nxt_ - snd_una_);
  ssthresh_ = std::max(flight / 2.0, 2.0 * mss);
  cwnd_ = mss;
  in_recovery_ = false;
  dup_acks_ = 0;
  // Go-back-N: rewind and resend from the hole.
  snd_nxt_ = snd_una_;
  retransmit_head();
  snd_nxt_ = snd_una_ + static_cast<std::uint64_t>(std::min<std::int64_t>(
                            cfg_.mss,
                            static_cast<std::int64_t>(write_limit_ - snd_una_)));
  rto_timer_.start(rtt_.rto());
}

}  // namespace iq::tcp
