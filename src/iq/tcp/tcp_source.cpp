#include "iq/tcp/tcp_source.hpp"

namespace iq::tcp {

BulkTcpSource::BulkTcpSource(TcpConnection& conn, std::int64_t chunk,
                             std::int64_t backlog_target)
    : conn_(conn),
      chunk_(chunk),
      backlog_target_(backlog_target),
      task_(conn.network().sim(), Duration::millis(5), [this] { refill(); }) {}

void BulkTcpSource::start() { task_.start(/*fire_now=*/true); }

void BulkTcpSource::stop() { task_.stop(); }

void BulkTcpSource::refill() {
  if (!conn_.established()) return;
  while (conn_.unacked_bytes() < backlog_target_) {
    conn_.send_bytes(chunk_);
    offered_ += chunk_;
  }
}

TcpMessageStream::TcpMessageStream(TcpConnection& sender) : sender_(sender) {}

std::uint32_t TcpMessageStream::send_message(std::int64_t bytes) {
  const std::uint32_t id = next_id_++;
  stream_offset_ += static_cast<std::uint64_t>(bytes);
  boundaries_.push_back(Boundary{stream_offset_, id, bytes});
  sender_.send_bytes(bytes);
  return id;
}

void TcpMessageStream::on_delivered(std::uint64_t offset, TimePoint now) {
  while (!boundaries_.empty() && boundaries_.front().end_offset <= offset) {
    const Boundary b = boundaries_.front();
    boundaries_.pop_front();
    ++delivered_;
    if (on_message_) on_message_(b.msg_id, b.bytes, now);
  }
}

}  // namespace iq::tcp
