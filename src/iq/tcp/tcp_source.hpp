#pragma once
// Application adapters over the TCP byte stream.
//
// BulkTcpSource keeps the pipe full (cross traffic / fairness tests).
// TcpMessageStream frames application messages onto the stream: the sender
// records byte boundaries, the receiver reports a message delivered when the
// in-order point passes its end — how a real receiver with length-prefixed
// framing would behave.

#include <cstdint>
#include <deque>
#include <functional>

#include "iq/tcp/tcp_connection.hpp"

namespace iq::tcp {

/// Writes `chunk` bytes whenever the unacked backlog falls below
/// `backlog_target`, emulating a greedy bulk sender.
class BulkTcpSource {
 public:
  BulkTcpSource(TcpConnection& conn, std::int64_t chunk = 64 * 1400,
                std::int64_t backlog_target = 128 * 1400);

  void start();
  void stop();
  std::int64_t offered_bytes() const { return offered_; }

 private:
  void refill();

  TcpConnection& conn_;
  std::int64_t chunk_;
  std::int64_t backlog_target_;
  std::int64_t offered_ = 0;
  sim::PeriodicTask task_;
};

/// Sender half: frames messages as byte ranges on the stream.
/// Receiver half: turns in-order delivery offsets back into messages.
class TcpMessageStream {
 public:
  /// Attach to the *receiving* connection to observe message completions.
  using MessageFn = std::function<void(std::uint32_t msg_id,
                                       std::int64_t bytes, TimePoint now)>;

  explicit TcpMessageStream(TcpConnection& sender);

  /// Queue one message of `bytes` onto the stream; returns its id.
  std::uint32_t send_message(std::int64_t bytes);

  /// Call from the receiver connection's delivered handler.
  void on_delivered(std::uint64_t offset, TimePoint now);
  void set_message_handler(MessageFn fn) { on_message_ = std::move(fn); }

  std::uint64_t messages_sent() const { return next_id_ - 1; }
  std::uint64_t messages_delivered() const { return delivered_; }

 private:
  struct Boundary {
    std::uint64_t end_offset;
    std::uint32_t msg_id;
    std::int64_t bytes;
  };

  TcpConnection& sender_;
  std::deque<Boundary> boundaries_;
  std::uint64_t stream_offset_ = 0;
  std::uint32_t next_id_ = 1;
  std::uint64_t delivered_ = 0;
  MessageFn on_message_;
};

}  // namespace iq::tcp
