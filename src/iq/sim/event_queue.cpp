#include "iq/sim/event_queue.hpp"

#include "iq/common/check.hpp"

namespace iq::sim {

EventId EventQueue::schedule(TimePoint at, EventFn fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{at, next_seq_++, id, std::move(fn)});
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  // Only record ids that might still be in the heap.
  auto [_, inserted] = cancelled_.insert(id);
  if (!inserted) return false;
  IQ_CHECK(live_count_ > 0);
  --live_count_;
  return true;
}

void EventQueue::drop_cancelled() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

TimePoint EventQueue::next_time() {
  drop_cancelled();
  if (heap_.empty()) return TimePoint::max();
  return heap_.top().at;
}

EventQueue::Popped EventQueue::pop() {
  drop_cancelled();
  IQ_CHECK_MSG(!heap_.empty(), "pop() on empty EventQueue");
  // priority_queue::top() is const; the Entry must be copied-out before pop.
  // Move the function out via const_cast — safe because we pop immediately.
  Entry& top = const_cast<Entry&>(heap_.top());
  Popped out{top.at, std::move(top.fn)};
  heap_.pop();
  --live_count_;
  return out;
}

}  // namespace iq::sim
