#include "iq/sim/event_queue.hpp"

#include <algorithm>

#include "iq/common/check.hpp"

namespace iq::sim {

namespace {
// An EventId packs (slot index + 1) in the high 32 bits and the slot's
// generation at schedule time in the low 32. The +1 keeps 0 out of the id
// space; the generation makes handles single-use.
constexpr EventId make_id(std::uint32_t slot, std::uint32_t generation) {
  return (static_cast<EventId>(slot) + 1) << 32 | generation;
}
}  // namespace

EventId EventQueue::schedule(TimePoint at, EventFn fn) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    IQ_CHECK_MSG(slot != kNotInHeap, "event queue slot space exhausted");
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);

  heap_.emplace_back();  // room for the sift-up hole migration
  sift_up(static_cast<std::uint32_t>(heap_.size() - 1),
          HeapEntry{at, next_seq_++, slot});
  return make_id(slot, s.generation);
}

bool EventQueue::cancel(EventId id) {
  const std::uint64_t hi = id >> 32;
  if (hi == 0 || hi > slots_.size()) return false;
  const auto slot = static_cast<std::uint32_t>(hi - 1);
  Slot& s = slots_[slot];
  // Generation mismatch = the handle's event already fired or was cancelled;
  // stale handles are rejected without touching any accounting.
  if (s.generation != static_cast<std::uint32_t>(id) ||
      s.heap_pos == kNotInHeap) {
    return false;
  }
  remove_at(s.heap_pos);
  release(slot);
  return true;
}

TimePoint EventQueue::next_time() const {
  if (heap_.empty()) return TimePoint::max();
  return heap_.front().at;
}

EventQueue::Popped EventQueue::pop() {
  IQ_CHECK_MSG(!heap_.empty(), "pop() on empty EventQueue");
  const HeapEntry top = heap_.front();
  Slot& s = slots_[top.slot];
  Popped out{top.at, std::move(s.fn)};
  remove_at(0);
  release(top.slot);
  return out;
}

void EventQueue::place(std::uint32_t pos, const HeapEntry& e) {
  heap_[pos] = e;
  slots_[e.slot].heap_pos = pos;
}

// Hole migration: walk the hole at `pos` toward the root, moving parents
// down, and drop `e` into its final position — one store per level instead
// of a swap.
void EventQueue::sift_up(std::uint32_t pos, HeapEntry e) {
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / 4;
    if (!before(e, heap_[parent])) break;
    place(pos, heap_[parent]);
    pos = parent;
  }
  place(pos, e);
}

void EventQueue::sift_down(std::uint32_t pos, HeapEntry e) {
  const auto n = static_cast<std::uint32_t>(heap_.size());
  for (;;) {
    const std::uint64_t first = static_cast<std::uint64_t>(pos) * 4 + 1;
    if (first >= n) break;
    auto best = static_cast<std::uint32_t>(first);
    const auto last = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(first + 3, n - 1));
    for (std::uint32_t c = best + 1; c <= last; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], e)) break;
    place(pos, heap_[best]);
    pos = best;
  }
  place(pos, e);
}

void EventQueue::remove_at(std::uint32_t pos) {
  const auto last = static_cast<std::uint32_t>(heap_.size() - 1);
  const HeapEntry moved = heap_[last];
  heap_.pop_back();
  if (pos == last) return;
  // The migrated entry may violate order in either direction.
  if (pos > 0 && before(moved, heap_[(pos - 1) / 4])) {
    sift_up(pos, moved);
  } else {
    sift_down(pos, moved);
  }
}

void EventQueue::release(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.heap_pos = kNotInHeap;
  ++s.generation;
  s.fn.reset();
  free_slots_.push_back(slot);
}

}  // namespace iq::sim
