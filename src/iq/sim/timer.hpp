#pragma once
// RAII timers on top of an Executor.
//
// Timer: one-shot, restartable; cancels itself on destruction so protocol
// objects can own timers without leak-on-teardown hazards.
// PeriodicTask: fixed-interval repeating callback (sources, samplers).

#include <functional>

#include "iq/sim/executor.hpp"

namespace iq::sim {

class Timer {
 public:
  Timer(Executor& exec, EventFn fn) : exec_(exec), fn_(std::move(fn)) {}
  ~Timer() { stop(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// (Re)arm to fire `d` from now; a pending shot is cancelled first.
  void start(Duration d);
  /// Arm only if not already pending.
  void start_if_idle(Duration d);
  void stop();
  bool pending() const { return id_ != 0; }
  /// Absolute expiry of the pending shot (only valid when pending()).
  TimePoint expiry() const { return expiry_; }

 private:
  Executor& exec_;
  EventFn fn_;
  EventId id_ = 0;
  TimePoint expiry_;
};

class PeriodicTask {
 public:
  /// fn is called every `interval`, first firing `interval` after start()
  /// (or immediately at start when `fire_now`).
  PeriodicTask(Executor& exec, Duration interval, EventFn fn)
      : exec_(exec), interval_(interval), fn_(std::move(fn)) {}
  ~PeriodicTask() { stop(); }
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void start(bool fire_now = false);
  void stop();
  bool running() const { return id_ != 0; }
  void set_interval(Duration interval) { interval_ = interval; }
  Duration interval() const { return interval_; }

 private:
  void fire();

  Executor& exec_;
  Duration interval_;
  EventFn fn_;
  EventId id_ = 0;
};

}  // namespace iq::sim
