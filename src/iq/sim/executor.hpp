#pragma once
// Executor: the clock + scheduler interface protocol code is written against.
//
// The RUDP engine, congestion controllers and middleware never touch the
// Simulator directly; they see an Executor. In simulation the Executor is the
// Simulator itself (virtual time); over real sockets it is a poll-loop with a
// timer heap (iq/wire/udp_wire). This is what lets one protocol engine run
// both in the deterministic testbed and on a live network.

#include <cstdint>

#include "iq/common/inline_fn.hpp"
#include "iq/common/time.hpp"

namespace iq::sim {

/// Move-only small-buffer callable — see iq/common/inline_fn.hpp. Using it
/// for every scheduled event keeps the simulator hot path allocation-free.
using EventFn = InlineFn<void()>;
using EventId = std::uint64_t;

class Executor {
 public:
  virtual ~Executor() = default;

  virtual TimePoint now() const = 0;
  virtual EventId schedule_at(TimePoint t, EventFn fn) = 0;
  virtual bool cancel_event(EventId id) = 0;

  EventId schedule_after(Duration d, EventFn fn) {
    return schedule_at(now() + d, std::move(fn));
  }
};

}  // namespace iq::sim
