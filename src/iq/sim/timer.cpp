#include "iq/sim/timer.hpp"

namespace iq::sim {

void Timer::start(Duration d) {
  stop();
  expiry_ = exec_.now() + d;
  id_ = exec_.schedule_at(expiry_, [this] {
    id_ = 0;
    fn_();
  });
}

void Timer::start_if_idle(Duration d) {
  if (!pending()) start(d);
}

void Timer::stop() {
  if (id_ != 0) {
    exec_.cancel_event(id_);
    id_ = 0;
  }
}

void PeriodicTask::start(bool fire_now) {
  stop();
  if (fire_now) {
    id_ = exec_.schedule_after(Duration::zero(), [this] { fire(); });
  } else {
    id_ = exec_.schedule_after(interval_, [this] { fire(); });
  }
}

void PeriodicTask::stop() {
  if (id_ != 0) {
    exec_.cancel_event(id_);
    id_ = 0;
  }
}

void PeriodicTask::fire() {
  // Re-arm before invoking so the callback may call stop() to end the task.
  id_ = exec_.schedule_after(interval_, [this] { fire(); });
  fn_();
}

}  // namespace iq::sim
