#pragma once
// Sharded discrete-event simulation with deterministic cross-shard delivery.
//
// A ShardedSim runs K independent Simulators (shards) in lockstep windows of
// length `lookahead` — classic conservative parallel DES. Within a window
// every shard executes its own events with no locks; at the window boundary
// the shards exchange *parcels* (timestamped closures) through a mailbox and
// advance together. The conservative bound: a parcel posted while window
// [T, T+Δ) executes must be due no earlier than T+Δ, so no shard can receive
// work for sim-time it has already passed. In the packet layer this Δ is the
// minimum inter-shard link latency (see wire::ShardPortal).
//
// Determinism contract — results are bit-identical at every shard count:
//
//   1. The unit of partitioning is the *group*, not the shard. A scenario
//      registers a fixed set of groups (independent of K); group g always
//      lives on shard g mod K. Groups share no mutable state.
//   2. ALL cross-group traffic goes through post(), even when src and dst
//      land on the same shard (including K=1). The code path never depends
//      on placement.
//   3. Parcels execute in the canonical total order (due, src_group, seq),
//      where seq is a per-source-group counter — an order computed from
//      logical identity, never from shard packing or thread timing.
//   4. At equal timestamps a shard runs parcels before local events — a
//      fixed tie rule that cannot depend on which shard the sender shares.
//
// With those rules each group observes the identical event sequence whether
// the scenario runs on 1 shard or N, threaded or inline — which is exactly
// what the determinism matrix (tests + ci.sh --scale) pins.
//
// While a lockstep run executes, the ShardedSim holds a strict affinity
// window (iq/common/affinity.hpp): pooled objects leaking across shards
// abort instead of racing. Parcels therefore carry plain values (e.g. a
// rudp::Segment copied by value), and the destination re-materializes any
// pooled state from its own arenas.

#include <barrier>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "iq/common/inline_fn.hpp"
#include "iq/common/time.hpp"
#include "iq/sim/simulator.hpp"

namespace iq::sim {

/// A cross-shard message: a closure run on the destination shard's thread at
/// its due time. The capacity is sized so a rudp::Segment copied by value
/// (plus a few pointers) stays inline — the mailbox never touches malloc in
/// steady state.
using ParcelFn = InlineFn<void(), 1536>;

class ShardedSim {
 public:
  struct Config {
    std::size_t shards = 1;
    /// Conservative lookahead Δ: lockstep window length, and the lower
    /// bound every parcel's (due − post-time-window-end) must respect.
    /// Must not exceed the minimum cross-group latency of the scenario.
    Duration lookahead = Duration::millis(10);
    /// When true (and shards > 1) each shard runs on its own persistent
    /// worker thread; when false all shards run inline on the caller, with
    /// the identical window/exchange protocol. Results are bit-identical.
    bool threaded = true;
  };

  explicit ShardedSim(const Config& cfg);
  ~ShardedSim();
  ShardedSim(const ShardedSim&) = delete;
  ShardedSim& operator=(const ShardedSim&) = delete;

  std::size_t shard_count() const { return shards_.size(); }
  bool threaded() const { return !workers_.empty(); }
  Duration lookahead() const { return lookahead_; }

  /// Register a logical group and return its id. Call once per group during
  /// scenario construction; the group count must not depend on the shard
  /// count, or determinism across shard counts is forfeit.
  std::uint32_t add_group();
  std::size_t group_count() const { return groups_.size(); }

  std::size_t shard_of(std::uint32_t group) const {
    return group % shards_.size();
  }
  /// The Simulator the given group's components must schedule on.
  Simulator& group_sim(std::uint32_t group) {
    return shards_[shard_of(group)]->sim;
  }
  Simulator& shard_sim(std::size_t shard) { return shards_[shard]->sim; }
  const Simulator& shard_sim(std::size_t shard) const {
    return shards_[shard]->sim;
  }

  /// Post a parcel from src_group to dst_group, due at `due`. Must be called
  /// either outside a run (setup) or from the src group's shard while it
  /// executes a window; `due` must lie at or beyond the current window's
  /// end (the conservative bound — aborts otherwise).
  void post(std::uint32_t src_group, std::uint32_t dst_group, TimePoint due,
            ParcelFn fn);

  /// Advance all shards in lockstep to `deadline` (whole windows of
  /// `lookahead`, plus one short final window if needed).
  void run_until(TimePoint deadline);
  void run_for(Duration d) { run_until(now() + d); }
  /// Keep running windows until every queue and mailbox is empty or
  /// `hard_deadline` is reached; returns idle().
  bool run_until_idle(TimePoint hard_deadline);

  /// Global sim clock: the start of the next lockstep window. Every shard's
  /// own clock equals this between runs.
  TimePoint now() const { return window_start_; }

  bool idle() const;
  std::uint64_t events_executed() const;   ///< sum of shard event counts
  std::uint64_t parcels_delivered() const;
  std::uint64_t parcels_posted() const;
  std::uint64_t epochs() const { return epochs_; }

 private:
  struct Parcel {
    TimePoint due;
    std::uint32_t src_group = 0;
    std::uint64_t seq = 0;
    ParcelFn fn;
  };
  /// Min-heap comparator for the canonical (due, src_group, seq) order.
  struct ParcelAfter {
    bool operator()(const Parcel& a, const Parcel& b) const {
      if (a.due != b.due) return a.due > b.due;
      if (a.src_group != b.src_group) return a.src_group > b.src_group;
      return a.seq > b.seq;
    }
  };

  struct Shard {
    Simulator sim;
    /// Pending inbound parcels, heap-ordered by ParcelAfter.
    std::vector<Parcel> inbox;
    /// Outbound parcels staged per destination shard; written only by this
    /// shard's thread during a window (and by the caller during setup).
    std::vector<std::vector<Parcel>> outbox;
    std::uint64_t parcels_executed = 0;
  };

  struct Group {
    std::uint64_t next_seq = 0;
  };

  void run_shard_window(Shard& sh, TimePoint end);
  /// Move every shard's staged outbox for `dst` into dst's inbox heap.
  void collect_inbox(std::size_t dst);
  void run_window_serial(TimePoint end);
  void worker_main(std::size_t shard_index);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<Group> groups_;
  Duration lookahead_;

  TimePoint window_start_ = TimePoint::zero();
  /// End of the window currently (or most recently) executing; equals
  /// window_start_ while no run is in progress. Synchronized with the
  /// workers by the lockstep barriers.
  TimePoint window_end_ = TimePoint::zero();
  std::uint64_t epochs_ = 0;

  // Threaded mode: persistent workers, one per shard, stepped through each
  // window by three barriers (start -> run -> exchange -> end).
  std::vector<std::thread> workers_;
  std::unique_ptr<std::barrier<>> start_barrier_;
  std::unique_ptr<std::barrier<>> mid_barrier_;
  std::unique_ptr<std::barrier<>> end_barrier_;
  bool stop_ = false;  // read by workers after the start barrier
};

}  // namespace iq::sim
