#pragma once
// Cancellable priority event queue for the discrete-event simulator.
//
// Events at equal timestamps fire in insertion order (a strictly increasing
// sequence number breaks ties) so runs are deterministic.
//
// Implementation: an indexed 4-ary heap over a slot table. Each scheduled
// event owns a slot; the heap orders slot indices by (time, seq) and every
// slot knows its heap position, so cancel() removes the entry in place in
// O(log n) — no tombstone set to grow, no dead entries for pop() to skip.
// A 4-ary layout halves the tree depth of a binary heap and keeps children
// in one cache line of the heap array, which measurably speeds the
// sift-down on pop for queues with thousands of pending timers.
//
// Handles are validated by generation: an EventId encodes (slot, generation)
// and the slot's generation bumps every time it is freed, so cancelling an
// id that already fired or was already cancelled is rejected without any
// bookkeeping — the accounting bug where cancel-after-fire corrupted the
// live count is structurally impossible.
//
// EventFn is a small-buffer-optimized move-only callable (iq::InlineFn), so
// scheduling a typical timer or delivery lambda performs no heap allocation
// at all once the queue's arrays have warmed up.

#include <cstdint>
#include <vector>

#include "iq/common/inline_fn.hpp"
#include "iq/common/time.hpp"

namespace iq::sim {

using EventFn = InlineFn<void()>;

/// Opaque handle identifying a scheduled event; 0 is never used.
using EventId = std::uint64_t;

class EventQueue {
 public:
  EventId schedule(TimePoint at, EventFn fn);
  /// Cancel a pending event; returns false (and does nothing) if it already
  /// fired or was cancelled before — stale handles are rejected by the
  /// generation check.
  bool cancel(EventId id);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  /// Timestamp of the earliest live event; max() when empty.
  TimePoint next_time() const;

  struct Popped {
    TimePoint at;
    EventFn fn;
  };
  /// Remove and return the earliest live event. Queue must not be empty.
  Popped pop();

 private:
  static constexpr std::uint32_t kNotInHeap = 0xffffffff;

  /// Sort keys live inside the heap array so sift comparisons never chase a
  /// pointer into the slot table; the slot only holds the callable and the
  /// handle-validation state.
  struct HeapEntry {
    TimePoint at;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  struct Slot {
    std::uint32_t generation = 1;
    std::uint32_t heap_pos = kNotInHeap;
    EventFn fn;
  };

  static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  void place(std::uint32_t pos, const HeapEntry& e);
  void sift_up(std::uint32_t pos, HeapEntry e);
  void sift_down(std::uint32_t pos, HeapEntry e);
  /// Remove heap_[pos], restoring heap order.
  void remove_at(std::uint32_t pos);
  /// Return a slot to the freelist and invalidate its outstanding handles.
  void release(std::uint32_t slot);

  std::vector<Slot> slots_;
  std::vector<HeapEntry> heap_;            ///< 4-ary min-heap by (at, seq)
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace iq::sim
