#pragma once
// Cancellable priority event queue for the discrete-event simulator.
//
// Events at equal timestamps fire in insertion order (a strictly increasing
// sequence number breaks ties) so runs are deterministic. Cancellation is
// lazy: a cancelled entry stays in the heap and is skipped on pop, which
// keeps cancel O(1) — important because retransmission timers are cancelled
// far more often than they fire.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "iq/common/time.hpp"

namespace iq::sim {

using EventFn = std::function<void()>;

/// Opaque handle identifying a scheduled event; 0 is never used.
using EventId = std::uint64_t;

class EventQueue {
 public:
  EventId schedule(TimePoint at, EventFn fn);
  /// Cancel a pending event; returns false if it already fired or was
  /// cancelled before.
  bool cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }
  /// Timestamp of the earliest live event; max() when empty.
  TimePoint next_time();

  struct Popped {
    TimePoint at;
    EventFn fn;
  };
  /// Remove and return the earliest live event. Queue must not be empty.
  Popped pop();

 private:
  struct Entry {
    TimePoint at;
    std::uint64_t seq;
    EventId id;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::size_t live_count_ = 0;
};

}  // namespace iq::sim
