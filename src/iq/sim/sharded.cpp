#include "iq/sim/sharded.hpp"

#include <algorithm>

#include "iq/common/affinity.hpp"
#include "iq/common/check.hpp"

namespace iq::sim {

ShardedSim::ShardedSim(const Config& cfg) : lookahead_(cfg.lookahead) {
  IQ_CHECK_MSG(cfg.shards >= 1, "at least one shard");
  IQ_CHECK_MSG(cfg.lookahead > Duration::zero(), "lookahead must be positive");
  shards_.reserve(cfg.shards);
  for (std::size_t s = 0; s < cfg.shards; ++s) {
    auto sh = std::make_unique<Shard>();
    sh->outbox.resize(cfg.shards);
    shards_.push_back(std::move(sh));
  }
  if (cfg.threaded && cfg.shards > 1) {
    const auto n = static_cast<std::ptrdiff_t>(cfg.shards + 1);
    start_barrier_ = std::make_unique<std::barrier<>>(n);
    mid_barrier_ = std::make_unique<std::barrier<>>(n);
    end_barrier_ = std::make_unique<std::barrier<>>(n);
    workers_.reserve(cfg.shards);
    for (std::size_t s = 0; s < cfg.shards; ++s) {
      workers_.emplace_back([this, s] { worker_main(s); });
    }
  }
}

ShardedSim::~ShardedSim() {
  if (!workers_.empty()) {
    stop_ = true;
    start_barrier_->arrive_and_wait();
    for (auto& w : workers_) w.join();
  }
}

std::uint32_t ShardedSim::add_group() {
  groups_.emplace_back();
  return static_cast<std::uint32_t>(groups_.size() - 1);
}

void ShardedSim::post(std::uint32_t src_group, std::uint32_t dst_group,
                      TimePoint due, ParcelFn fn) {
  IQ_CHECK(src_group < groups_.size() && dst_group < groups_.size());
  IQ_CHECK_MSG(fn, "empty parcel");
  IQ_CHECK_MSG(due >= window_end_,
               "parcel due inside the current lockstep window — cross-group "
               "latency must be >= the ShardedSim lookahead");
  Shard& src = *shards_[shard_of(src_group)];
  src.outbox[shard_of(dst_group)].push_back(
      Parcel{due, src_group, groups_[src_group].next_seq++, std::move(fn)});
}

void ShardedSim::run_shard_window(Shard& sh, TimePoint end) {
  for (;;) {
    const TimePoint tp =
        sh.inbox.empty() ? TimePoint::max() : sh.inbox.front().due;
    const TimePoint te = sh.sim.next_event_time();
    if (tp >= end && te >= end) break;
    if (tp <= te) {
      // Canonical tie rule: parcels run before local events at the same
      // timestamp, in (due, src_group, seq) order — placement-independent.
      sh.sim.advance_to(tp);
      std::pop_heap(sh.inbox.begin(), sh.inbox.end(), ParcelAfter{});
      Parcel p = std::move(sh.inbox.back());
      sh.inbox.pop_back();
      ++sh.parcels_executed;
      p.fn();
    } else {
      sh.sim.step();
    }
  }
  sh.sim.advance_to(end);
}

void ShardedSim::collect_inbox(std::size_t dst) {
  Shard& d = *shards_[dst];
  for (auto& src : shards_) {
    auto& staged = src->outbox[dst];
    for (auto& p : staged) {
      d.inbox.push_back(std::move(p));
      std::push_heap(d.inbox.begin(), d.inbox.end(), ParcelAfter{});
    }
    staged.clear();  // keeps capacity — the steady state stays malloc-free
  }
}

void ShardedSim::run_window_serial(TimePoint end) {
  // Same protocol as the threaded path: every shard finishes the window
  // before any exchange happens, so results are bit-identical.
  for (auto& sh : shards_) run_shard_window(*sh, end);
  for (std::size_t d = 0; d < shards_.size(); ++d) collect_inbox(d);
}

void ShardedSim::worker_main(std::size_t shard_index) {
  for (;;) {
    start_barrier_->arrive_and_wait();
    if (stop_) return;
    run_shard_window(*shards_[shard_index], window_end_);
    mid_barrier_->arrive_and_wait();
    collect_inbox(shard_index);
    end_barrier_->arrive_and_wait();
  }
}

void ShardedSim::run_until(TimePoint deadline) {
  IQ_CHECK_MSG(deadline >= window_start_, "cannot run into the past");
  affinity::StrictAffinityGuard strict;
  // Posts staged outside a run (scenario setup, or between chunked runs)
  // sit in outboxes; exchange them up front so they are deliverable in the
  // very first window — workers are parked at the start barrier, so the
  // main thread may touch every mailbox here.
  for (std::size_t d = 0; d < shards_.size(); ++d) collect_inbox(d);
  while (window_start_ < deadline) {
    const TimePoint end = std::min(deadline, window_start_ + lookahead_);
    window_end_ = end;
    if (workers_.empty()) {
      run_window_serial(end);
    } else {
      start_barrier_->arrive_and_wait();
      mid_barrier_->arrive_and_wait();
      end_barrier_->arrive_and_wait();
    }
    window_start_ = end;
    ++epochs_;
  }
  // Between runs, setup-time posts only need to clear the next window start.
  window_end_ = window_start_;
}

bool ShardedSim::run_until_idle(TimePoint hard_deadline) {
  while (!idle() && window_start_ < hard_deadline) {
    run_until(std::min(hard_deadline, window_start_ + lookahead_));
  }
  return idle();
}

bool ShardedSim::idle() const {
  for (const auto& sh : shards_) {
    if (!sh->sim.idle() || !sh->inbox.empty()) return false;
    for (const auto& staged : sh->outbox) {
      if (!staged.empty()) return false;
    }
  }
  return true;
}

std::uint64_t ShardedSim::events_executed() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) n += sh->sim.events_executed();
  return n;
}

std::uint64_t ShardedSim::parcels_delivered() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) n += sh->parcels_executed;
  return n;
}

std::uint64_t ShardedSim::parcels_posted() const {
  std::uint64_t n = 0;
  for (const auto& g : groups_) n += g.next_seq;
  return n;
}

}  // namespace iq::sim
