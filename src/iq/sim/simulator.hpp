#pragma once
// The discrete-event simulator: a virtual clock plus an event queue.
//
// Components schedule callbacks at absolute or relative times; run() advances
// the clock event by event. A single Simulator instance is single-threaded by
// design — determinism comes from total event ordering, not locks.

#include <cstdint>
#include <functional>

#include "iq/common/time.hpp"
#include "iq/sim/executor.hpp"
#include "iq/sim/timer_wheel.hpp"

namespace iq::sim {

class Simulator final : public Executor {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const override { return now_; }

  EventId at(TimePoint t, EventFn fn);
  EventId after(Duration d, EventFn fn);
  bool cancel(EventId id) { return queue_.cancel(id); }

  // Executor interface (aliases of the above).
  EventId schedule_at(TimePoint t, EventFn fn) override {
    return at(t, std::move(fn));
  }
  bool cancel_event(EventId id) override { return cancel(id); }

  /// Run until the queue empties or the event budget is exhausted.
  void run();
  /// Run events with timestamp <= deadline; the clock ends at `deadline`
  /// even if no event lies exactly there.
  void run_until(TimePoint deadline);
  /// Run for `d` of simulated time from now.
  void run_for(Duration d) { run_until(now() + d); }
  /// Execute at most one event; returns false if none are pending.
  bool step();

  bool idle() const { return queue_.empty(); }
  std::uint64_t events_executed() const { return executed_; }

  /// Timestamp of the earliest pending event, or TimePoint::max() when the
  /// queue is empty. Lets an external scheduler (the sharded lockstep loop)
  /// interleave its own timestamped work with this queue's events.
  TimePoint next_event_time() const {
    return queue_.empty() ? TimePoint::max() : queue_.next_time();
  }

  /// Jump the clock forward to `t` without executing anything. Used by the
  /// sharded engine to land the clock on a window boundary and to position
  /// it at a cross-shard parcel's due time before running the parcel.
  void advance_to(TimePoint t);

  /// Safety valve: stop the run loop after this many events (0 = unlimited).
  void set_event_budget(std::uint64_t budget) { event_budget_ = budget; }

 private:
  void execute_next();

  /// Hierarchical timing wheel (O(1) schedule/rearm/cancel) with the same
  /// (time, seq) fire order as the 4-ary EventQueue it replaced — see
  /// iq/sim/timer_wheel.hpp for the determinism contract.
  TimerWheel queue_;
  TimePoint now_ = TimePoint::zero();
  std::uint64_t executed_ = 0;
  std::uint64_t event_budget_ = 0;
};

}  // namespace iq::sim
