#include "iq/sim/timer_wheel.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "iq/common/check.hpp"

namespace iq::sim {

namespace {
// An EventId packs (slot index + 1) in the high 32 bits and the slot's
// generation at schedule time in the low 32 — the same encoding as the
// event heap's, so handles behave identically across both schedulers.
constexpr EventId make_id(std::uint32_t slot, std::uint32_t generation) {
  return (static_cast<EventId>(slot) + 1) << 32 | generation;
}
}  // namespace

TimerWheel::TimerWheel() { heads_.fill(kNil); }

std::uint32_t TimerWheel::alloc_slot() {
  if (free_head_ != kNil) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next;
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(slots_.size());
  IQ_CHECK_MSG(slot != kNil, "timer wheel slot space exhausted");
  slots_.emplace_back();
  return slot;
}

void TimerWheel::release(std::uint32_t slot) {
  Entry& e = slots_[slot];
  ++e.generation;
  e.fn.reset();
  e.bucket = kBucketFree;
  e.prev = kNil;
  e.next = free_head_;
  free_head_ = slot;
}

void TimerWheel::place(std::uint32_t slot) {
  Entry& e = slots_[slot];
  // Late deadlines (at or before the wheel position — legal on the realtime
  // path) are clamped into the current bucket; e.at_ns stays the sort key.
  std::uint64_t d = cur_;
  if (e.at_ns > 0 && static_cast<std::uint64_t>(e.at_ns) > cur_) {
    d = static_cast<std::uint64_t>(e.at_ns);
  }
  const std::uint64_t diff = d ^ cur_;
  const std::uint32_t level =
      diff == 0
          ? 0u
          : static_cast<std::uint32_t>(63 - std::countl_zero(diff)) /
                kLevelBits;
  const auto idx = static_cast<std::uint32_t>(d >> (level * kLevelBits)) &
                   (kSlotsPerLevel - 1);
  const std::uint32_t bucket = level * kSlotsPerLevel + idx;
  std::uint32_t& head = heads_[bucket];
  if (head == kNil) {
    head = slot;
    e.prev = e.next = slot;
    occupied_[level] |= 1ull << idx;
  } else {
    const std::uint32_t tail = slots_[head].prev;
    e.prev = tail;
    e.next = head;
    slots_[tail].next = slot;
    slots_[head].prev = slot;
  }
  e.bucket = static_cast<std::uint16_t>(bucket);
}

void TimerWheel::unlink(std::uint32_t slot) {
  Entry& e = slots_[slot];
  const std::uint32_t bucket = e.bucket;
  if (e.next == slot) {
    heads_[bucket] = kNil;
    occupied_[bucket / kSlotsPerLevel] &=
        ~(1ull << (bucket % kSlotsPerLevel));
  } else {
    slots_[e.prev].next = e.next;
    slots_[e.next].prev = e.prev;
    if (heads_[bucket] == slot) heads_[bucket] = e.next;
  }
  e.prev = e.next = kNil;
  e.bucket = kBucketFree;
}

void TimerWheel::advance_to(std::uint64_t t) {
  const std::uint64_t old = cur_;
  if (t <= old) return;
  cur_ = t;
  // Every level whose slot address changed may leave the wheel standing
  // inside a bucket that still holds entries placed when that bucket was
  // "the future"; drain those buckets top-down — each entry re-places at a
  // strictly lower level (its deadline now agrees with cur_ on this level's
  // field, see the header proof), so one pass settles everything.
  const std::uint64_t diff = old ^ t;
  const std::uint32_t top =
      static_cast<std::uint32_t>(63 - std::countl_zero(diff)) / kLevelBits;
  for (std::uint32_t level = top; level >= 1; --level) {
    const auto idx = static_cast<std::uint32_t>(t >> (level * kLevelBits)) &
                     (kSlotsPerLevel - 1);
    const std::uint32_t bucket = level * kSlotsPerLevel + idx;
    while (heads_[bucket] != kNil) {
      const std::uint32_t slot = heads_[bucket];
      unlink(slot);
      place(slot);
    }
  }
}

std::uint32_t TimerWheel::earliest_bucket() const {
  // Levels partition pending time ranges in ascending order (level 0 is the
  // wheel's own 64 ns block, level 1 the rest of its 4096 ns block, ...), so
  // the lowest occupied level's lowest set bit is the earliest range.
  for (std::uint32_t level = 0; level < kLevels; ++level) {
    if (occupied_[level] != 0) {
      return level * kSlotsPerLevel +
             static_cast<std::uint32_t>(std::countr_zero(occupied_[level]));
    }
  }
  IQ_CHECK_MSG(false, "earliest_bucket() on empty wheel");
  return 0;
}

std::uint32_t TimerWheel::bucket_min(std::uint32_t bucket) const {
  const std::uint32_t head = heads_[bucket];
  std::uint32_t best = head;
  for (std::uint32_t s = slots_[head].next; s != head; s = slots_[s].next) {
    const Entry& e = slots_[s];
    const Entry& b = slots_[best];
    if (e.at_ns < b.at_ns || (e.at_ns == b.at_ns && e.seq < b.seq)) best = s;
  }
  return best;
}

bool TimerWheel::fire_buffer_front() const {
  const auto later = [](const FireRef& a, const FireRef& b) {
    return ref_before(b, a);
  };
  while (!fire_.empty()) {
    const FireRef& top = fire_.front();
    if (slots_[top.slot].generation == top.generation) return true;
    // A cancel invalidated this reference after it was buffered; discard.
    std::pop_heap(fire_.begin(), fire_.end(), later);
    fire_.pop_back();
  }
  return false;
}

void TimerWheel::drain_bucket(std::uint32_t bucket) {
  const auto later = [](const FireRef& a, const FireRef& b) {
    return ref_before(b, a);
  };
  while (heads_[bucket] != kNil) {
    const std::uint32_t slot = heads_[bucket];
    unlink(slot);
    Entry& e = slots_[slot];
    e.bucket = kBucketFireBuf;
    fire_.push_back(FireRef{e.at_ns, e.seq, slot, e.generation});
    std::push_heap(fire_.begin(), fire_.end(), later);
    ++buffered_live_;
  }
}

EventId TimerWheel::schedule(TimePoint at, EventFn fn) {
  const std::uint32_t slot = alloc_slot();
  Entry& e = slots_[slot];
  e.at_ns = at.ns();
  e.seq = next_seq_++;
  e.fn = std::move(fn);
  place(slot);
  ++live_;
  return make_id(slot, e.generation);
}

bool TimerWheel::cancel(EventId id) {
  const std::uint64_t hi = id >> 32;
  if (hi == 0 || hi > slots_.size()) return false;
  const auto slot = static_cast<std::uint32_t>(hi - 1);
  Entry& e = slots_[slot];
  // Generation mismatch = the handle's event already fired or was cancelled;
  // stale handles are rejected without touching any accounting.
  if (e.generation != static_cast<std::uint32_t>(id) ||
      e.bucket == kBucketFree) {
    return false;
  }
  if (e.bucket == kBucketFireBuf) {
    // Already staged for firing: the generation bump below turns its
    // buffered reference stale; fire_buffer_front() will discard it.
    --buffered_live_;
  } else {
    unlink(slot);
  }
  release(slot);
  --live_;
  return true;
}

TimePoint TimerWheel::next_time() const {
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  bool any = false;
  if (fire_buffer_front()) {
    best = fire_.front().at_ns;
    any = true;
  }
  if (live_ - buffered_live_ > 0) {
    const std::uint32_t m = bucket_min(earliest_bucket());
    if (!any || slots_[m].at_ns < best) best = slots_[m].at_ns;
    any = true;
  }
  return any ? TimePoint::from_ns(best) : TimePoint::max();
}

TimerWheel::Popped TimerWheel::pop() {
  IQ_CHECK_MSG(live_ > 0, "pop() on empty TimerWheel");
  const bool have_buffered = fire_buffer_front();
  if (live_ - buffered_live_ > 0) {
    // Walk the wheel position to the earliest pending bucket, cascading
    // higher-level buckets down to exact lower-level slots as it enters
    // them, until the earliest work sits in a one-nanosecond level-0 bucket.
    std::uint32_t bucket = earliest_bucket();
    while (bucket >= kSlotsPerLevel) {
      const std::uint32_t level = bucket / kSlotsPerLevel;
      const std::uint32_t idx = bucket % kSlotsPerLevel;
      const std::uint32_t shift = level * kLevelBits;
      const std::uint32_t above = shift + kLevelBits;
      const std::uint64_t high =
          above >= 64 ? 0ull : cur_ & ~((1ull << above) - 1);
      advance_to(high | (static_cast<std::uint64_t>(idx) << shift));
      bucket = earliest_bucket();
    }
    advance_to((cur_ & ~static_cast<std::uint64_t>(kSlotsPerLevel - 1)) |
               bucket);
    // The linked minimum lives in this bucket (clamped entries always sit in
    // the wheel's own bucket, which is the earliest whenever occupied). Move
    // the batch into the fire heap unless a leftover buffered entry still
    // precedes it.
    bool absorb = !have_buffered;
    if (!absorb) {
      const Entry& m = slots_[bucket_min(bucket)];
      const FireRef& top = fire_.front();
      absorb = m.at_ns < top.at_ns ||
               (m.at_ns == top.at_ns && m.seq < top.seq);
    }
    if (absorb) drain_bucket(bucket);
  }
  // The fire heap's top is now the global (at, seq) minimum.
  const auto later = [](const FireRef& a, const FireRef& b) {
    return ref_before(b, a);
  };
  std::pop_heap(fire_.begin(), fire_.end(), later);
  const FireRef ref = fire_.back();
  fire_.pop_back();
  Entry& e = slots_[ref.slot];
  Popped out{TimePoint::from_ns(ref.at_ns), std::move(e.fn)};
  release(ref.slot);
  --buffered_live_;
  --live_;
  return out;
}

}  // namespace iq::sim
