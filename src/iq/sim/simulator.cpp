#include "iq/sim/simulator.hpp"

#include "iq/common/check.hpp"

namespace iq::sim {

EventId Simulator::at(TimePoint t, EventFn fn) {
  IQ_CHECK_MSG(t >= now_, "cannot schedule into the past");
  return queue_.schedule(t, std::move(fn));
}

EventId Simulator::after(Duration d, EventFn fn) {
  IQ_CHECK_MSG(!d.is_negative(), "negative delay");
  return queue_.schedule(now_ + d, std::move(fn));
}

void Simulator::execute_next() {
  auto ev = queue_.pop();
  IQ_CHECK(ev.at >= now_);
  now_ = ev.at;
  ++executed_;
  ev.fn();
}

void Simulator::run() {
  while (!queue_.empty()) {
    if (event_budget_ != 0 && executed_ >= event_budget_) return;
    execute_next();
  }
}

void Simulator::run_until(TimePoint deadline) {
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    if (event_budget_ != 0 && executed_ >= event_budget_) return;
    execute_next();
  }
  if (now_ < deadline) now_ = deadline;
}

void Simulator::advance_to(TimePoint t) {
  IQ_CHECK_MSG(t >= now_, "cannot advance the clock backwards");
  IQ_CHECK_MSG(queue_.empty() || queue_.next_time() >= t,
               "advance_to would skip pending events");
  now_ = t;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  execute_next();
  return true;
}

}  // namespace iq::sim
