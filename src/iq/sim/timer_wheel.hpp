#pragma once
// Hierarchical timing wheel: the O(1) successor to the 4-ary event heap.
//
// The RUDP hot path is timer *churn*: every connection owns five timers
// (rto, connect, keepalive, ack, fec_flush) that are rearmed on nearly
// every segment and almost never allowed to fire. Through the heap each
// rearm costs two O(log n) sift passes, and at CityScale's 10k flows the
// heap is the dominant cost of the whole simulation. A timing wheel makes
// schedule, rearm and cancel O(1): an entry is appended to the bucket its
// deadline hashes to and unlinked in place by handle.
//
// Structure (classic Varghese–Lauck hierarchy): 11 levels of 64 buckets.
// Level k buckets span 2^(6k) ns, so level 0 buckets are a single
// nanosecond wide and the top level covers the whole int64 time range —
// no overflow list, every representable deadline has a bucket. An entry
// whose deadline is d lands at the lowest level whose bucket resolution
// separates d from the wheel's current time (level = highest differing
// bit of d ^ cur, divided by 6 — one XOR and a count-leading-zeros, no
// loop). As the wheel's time advances into a higher-level bucket, that
// bucket's entries cascade down to their exact lower-level position; an
// entry cascades at most 10 times over its whole life, so the amortized
// cost per event stays O(1) regardless of how far out it was scheduled.
//
// Determinism contract — the wheel fires in EXACTLY the event heap's
// order, which is what keeps CityScale's FNV-1a digests bit-identical at
// every shard count:
//
//   1. Total order is (deadline, schedule-seq): a strictly increasing
//      sequence number breaks same-nanosecond ties in insertion order,
//      identical to EventQueue.
//   2. Level-0 buckets are one nanosecond wide, so all entries in a
//      bucket share a deadline and only the seq decides among them. A
//      bucket with several entries is drained through a sort-once fire
//      buffer (O(m log m) for an m-entry pileup, not the O(m^2) a
//      rescan-per-pop would cost when thousands of flows share a tick).
//   3. Late schedules — a deadline at or before the wheel's current time
//      (legal on the realtime path) — are clamped into the current
//      bucket but keep their original deadline as the sort key, so they
//      order against pending work exactly as the heap would order them.
//
// tests/timer_wheel_property_test.cpp drives random schedule/rearm/
// cancel/fire interleavings (seeds 1–24) against the EventQueue as a
// reference model and requires identical fire order, identical cancel
// results (stale and double cancels structurally rejected by the same
// generation-validated handle scheme) and identical next_time().
//
// The wheel is allocation-free at steady state: entries live in a pooled
// slot table (freelist reuse, InlineFn callables), buckets are intrusive
// circular doubly-linked lists threaded through the slots, and the fire
// buffer is a reused vector that keeps its high-water capacity.

#include <array>
#include <cstdint>
#include <vector>

#include "iq/common/inline_fn.hpp"
#include "iq/common/time.hpp"

namespace iq::sim {

using EventFn = InlineFn<void()>;

/// Opaque handle identifying a scheduled event; 0 is never used.
using EventId = std::uint64_t;

class TimerWheel {
 public:
  TimerWheel();

  /// Schedule `fn` at absolute time `at`. O(1). Deadlines at or before
  /// the wheel's current position fire as soon as possible but keep `at`
  /// as their ordering key (see header contract, rule 3).
  EventId schedule(TimePoint at, EventFn fn);
  /// Cancel a pending event; returns false (and does nothing) if it
  /// already fired or was cancelled before — stale handles are rejected
  /// by the generation check. O(1): unlink from the bucket in place.
  bool cancel(EventId id);

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }
  /// Exact timestamp of the earliest live event; max() when empty.
  TimePoint next_time() const;

  struct Popped {
    TimePoint at;
    EventFn fn;
  };
  /// Remove and return the earliest live event (order contract above).
  /// Wheel must not be empty.
  Popped pop();

 private:
  static constexpr std::uint32_t kLevelBits = 6;
  static constexpr std::uint32_t kSlotsPerLevel = 1u << kLevelBits;  // 64
  static constexpr std::uint32_t kLevels = 11;  // 2^66 ns > any int64
  static constexpr std::uint32_t kBuckets = kLevels * kSlotsPerLevel;
  static constexpr std::uint32_t kNil = 0xffffffff;
  /// Bucket markers for entries not linked into any bucket list.
  static constexpr std::uint16_t kBucketFree = 0xffff;
  static constexpr std::uint16_t kBucketFireBuf = 0xfffe;

  struct Entry {
    std::int64_t at_ns = 0;    ///< original deadline (ordering key)
    std::uint64_t seq = 0;
    std::uint32_t generation = 1;
    std::uint32_t prev = kNil;  ///< intrusive bucket links (slot indices)
    std::uint32_t next = kNil;  ///< doubles as the freelist link
    std::uint16_t bucket = kBucketFree;  ///< owning bucket, or marker
    EventFn fn;
  };

  /// A fire-buffer reference: the sort keys plus a generation-validated
  /// slot reference, so a cancel between buffering and draining turns
  /// the reference stale instead of corrupting the batch.
  struct FireRef {
    std::int64_t at_ns;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
  };

  std::uint32_t alloc_slot();
  void release(std::uint32_t slot);
  /// Link `slot` into the bucket its (clamped) deadline belongs to,
  /// relative to the wheel's current time. O(1).
  void place(std::uint32_t slot);
  void unlink(std::uint32_t slot);
  /// Move the wheel's position to `t` (start of a bucket about to fire),
  /// cascading every higher-level bucket the new position lands in down
  /// to its exact lower-level location.
  void advance_to(std::uint64_t t);
  /// Earliest occupied bucket: lowest occupied level, lowest index.
  /// Precondition: at least one linked entry.
  std::uint32_t earliest_bucket() const;
  /// Scan a bucket's list for its (at, seq)-minimal entry. O(length).
  std::uint32_t bucket_min(std::uint32_t bucket) const;
  /// Move the cancelled references that bubbled to the fire heap's top
  /// out of the way; returns true if a live buffered entry remains.
  /// Lazily mutates fire_ (benign under const — order is unaffected).
  bool fire_buffer_front() const;
  /// Move the earliest linked bucket's entries into the fire heap.
  void drain_bucket(std::uint32_t bucket);
  /// (at, seq) ordering — identical to EventQueue::before.
  static bool ref_before(const FireRef& a, const FireRef& b) {
    if (a.at_ns != b.at_ns) return a.at_ns < b.at_ns;
    return a.seq < b.seq;
  }

  std::array<std::uint32_t, kBuckets> heads_;  ///< kNil when empty
  std::array<std::uint64_t, kLevels> occupied_{};
  std::vector<Entry> slots_;
  std::uint32_t free_head_ = kNil;
  std::uint64_t cur_ = 0;        ///< wheel position, ns (only advances)
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;         ///< live entries (linked + buffered)
  std::size_t buffered_live_ = 0;

  /// Min-heap by (at, seq) — the same-ns batch currently being drained,
  /// plus any not-yet-fired leftovers. Cancelled entries are invalidated
  /// lazily and skipped when they surface at the top.
  mutable std::vector<FireRef> fire_;
};

}  // namespace iq::sim
