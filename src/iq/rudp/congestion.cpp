#include "iq/rudp/congestion.hpp"

#include <algorithm>
#include <cmath>

#include "iq/common/check.hpp"

namespace iq::rudp {

// ---------------------------------------------------------------- LDA ----

LdaController::LdaController(const LdaConfig& cfg)
    : cfg_(cfg), cwnd_(cfg.initial_cwnd) {
  IQ_CHECK(cfg.min_cwnd >= 1.0 && cfg.max_cwnd >= cfg.min_cwnd);
}

void LdaController::clamp() {
  cwnd_ = std::clamp(cwnd_, cfg_.min_cwnd, cfg_.max_cwnd);
}

void LdaController::on_ack(int newly_acked, TimePoint) {
  // +additive_per_rtt per window's worth of acks ≈ +additive_per_rtt / RTT.
  cwnd_ += cfg_.additive_per_rtt * static_cast<double>(newly_acked) / cwnd_;
  clamp();
}

void LdaController::on_loss(TimePoint) {
  // Individual losses are absorbed into the epoch ratio; the decrease is
  // applied once per epoch in on_epoch() — this is what keeps the window
  // evolution smooth relative to TCP.
}

void LdaController::on_timeout(TimePoint) {
  cwnd_ *= cfg_.timeout_factor;
  clamp();
}

void LdaController::on_epoch(double loss_ratio, TimePoint) {
  if (loss_ratio <= 0.0) return;
  double factor = 1.0 - cfg_.decrease_beta * loss_ratio;
  factor = std::max(factor, cfg_.min_decrease_factor);
  double next = cwnd_ * factor;
  if (cfg_.tcp_friendly_floor) {
    next = std::max(next, std::min(cwnd_, tcp_friendly_window(loss_ratio)));
  }
  cwnd_ = next;
  clamp();
}

void LdaController::scale_window(double factor) {
  IQ_CHECK_MSG(factor > 0.0, "window scale factor must be positive");
  cwnd_ *= factor;
  clamp();
}

double LdaController::tcp_friendly_window(double loss_ratio) {
  // W = sqrt(3 / (2p)) packets — the simple TCP throughput equation
  // (Mahdavi & Floyd) expressed as a window.
  if (loss_ratio <= 0.0) return 4096.0;
  return std::sqrt(1.5 / loss_ratio);
}

// --------------------------------------------------------------- AIMD ----

AimdController::AimdController(const AimdConfig& cfg)
    : cfg_(cfg), cwnd_(cfg.initial_cwnd), ssthresh_(cfg.initial_ssthresh) {}

void AimdController::clamp() {
  cwnd_ = std::clamp(cwnd_, cfg_.min_cwnd, cfg_.max_cwnd);
}

void AimdController::on_ack(int newly_acked, TimePoint) {
  if (cwnd_ < ssthresh_) {
    cwnd_ += static_cast<double>(newly_acked);  // slow start
  } else {
    cwnd_ += static_cast<double>(newly_acked) / cwnd_;  // CA
  }
  clamp();
}

void AimdController::on_loss(TimePoint now) {
  // One multiplicative decrease per RTT, mirroring Reno's once-per-window
  // halving.
  if (decreased_once_ && now - last_decrease_ < srtt_) return;
  last_decrease_ = now;
  decreased_once_ = true;
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
  cwnd_ = ssthresh_;
  clamp();
}

void AimdController::on_timeout(TimePoint now) {
  last_decrease_ = now;
  decreased_once_ = true;
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
  cwnd_ = cfg_.min_cwnd;
  clamp();
}

void AimdController::on_epoch(double, TimePoint) {}

void AimdController::scale_window(double factor) {
  IQ_CHECK_MSG(factor > 0.0, "window scale factor must be positive");
  cwnd_ *= factor;
  ssthresh_ = std::max(ssthresh_, cwnd_);
  clamp();
}

// -------------------------------------------------------------- Fixed ----

void FixedWindowController::scale_window(double factor) {
  IQ_CHECK_MSG(factor > 0.0, "window scale factor must be positive");
  cwnd_ = std::clamp(cwnd_ * factor, 1.0, 65536.0);
}

// ------------------------------------------------------------- factory ---

std::unique_ptr<CongestionController> make_controller(CcKind kind,
                                                      double initial_or_fixed) {
  switch (kind) {
    case CcKind::Lda: {
      LdaConfig cfg;
      if (initial_or_fixed > 0) cfg.initial_cwnd = initial_or_fixed;
      return std::make_unique<LdaController>(cfg);
    }
    case CcKind::Aimd: {
      AimdConfig cfg;
      if (initial_or_fixed > 0) cfg.initial_cwnd = initial_or_fixed;
      return std::make_unique<AimdController>(cfg);
    }
    case CcKind::Fixed:
      return std::make_unique<FixedWindowController>(
          initial_or_fixed > 0 ? initial_or_fixed : 64.0);
  }
  IQ_CHECK_MSG(false, "unknown CcKind");
  return nullptr;
}

}  // namespace iq::rudp
