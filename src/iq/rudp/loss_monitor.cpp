#include "iq/rudp/loss_monitor.hpp"

#include "iq/common/check.hpp"

namespace iq::rudp {

LossMonitor::LossMonitor(std::uint32_t epoch_packets, double ewma_gain)
    : epoch_packets_(epoch_packets), ewma_gain_(ewma_gain) {
  IQ_CHECK(epoch_packets_ > 0);
}

void LossMonitor::on_acked(std::uint32_t count, std::int64_t payload_bytes,
                           TimePoint now) {
  if (count == 0) return;
  acked_ += count;
  total_acked_ += count;
  acked_bytes_ += payload_bytes;
  resolve(now);
}

void LossMonitor::on_lost(std::uint32_t count, TimePoint now) {
  if (count == 0) return;
  lost_ += count;
  total_lost_ += count;
  resolve(now);
}

void LossMonitor::resolve(TimePoint now) {
  if (!epoch_started_) {
    epoch_start_ = now;
    epoch_started_ = true;
  }
  if (acked_ + lost_ >= epoch_packets_) close_epoch(now);
}

void LossMonitor::close_epoch(TimePoint now) {
  EpochReport report;
  report.epoch = ++epoch_;
  report.acked = acked_;
  report.lost = lost_;
  report.acked_payload_bytes = acked_bytes_;
  report.loss_ratio =
      static_cast<double>(lost_) / static_cast<double>(acked_ + lost_);
  smoothed_ = epoch_ == 1
                  ? report.loss_ratio
                  : (1.0 - ewma_gain_) * smoothed_ + ewma_gain_ * report.loss_ratio;
  report.smoothed_loss_ratio = smoothed_;
  report.elapsed = now - epoch_start_;
  if (!report.elapsed.is_zero()) {
    report.delivered_rate_bps = static_cast<double>(acked_bytes_) * 8.0 /
                                report.elapsed.to_seconds();
  }
  report.at = now;
  last_ratio_ = report.loss_ratio;

  acked_ = 0;
  lost_ = 0;
  acked_bytes_ = 0;
  epoch_start_ = now;

  if (on_epoch_) on_epoch_(report);
}

double LossMonitor::lifetime_loss_ratio() const {
  const std::uint64_t total = total_acked_ + total_lost_;
  if (total == 0) return 0.0;
  return static_cast<double>(total_lost_) / static_cast<double>(total);
}

}  // namespace iq::rudp
