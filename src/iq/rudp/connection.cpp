#include "iq/rudp/connection.hpp"

#include <algorithm>

#include "iq/common/check.hpp"
#include "iq/common/log.hpp"

namespace iq::rudp {

const char* failure_reason_name(FailureReason r) {
  switch (r) {
    case FailureReason::None: return "none";
    case FailureReason::HandshakeTimeout: return "handshake-timeout";
    case FailureReason::RtoStreak: return "rto-streak";
    case FailureReason::KeepaliveTimeout: return "keepalive-timeout";
  }
  return "?";
}

RudpConnection::RudpConnection(SegmentWire& wire, RudpConfig cfg, Role role)
    : wire_(wire),
      cfg_(cfg),
      role_(role),
      cc_(make_controller(cfg.cc_kind, cfg.cc_kind == CcKind::Fixed
                                           ? cfg.fixed_cwnd
                                           : cfg.initial_cwnd)),
      rtt_(cfg.rtt),
      loss_(cfg.loss_epoch_packets),
      recv_buf_(cfg.recv_window_packets, cfg.initial_seq),
      budget_(0.0),
      fec_enc_(fec::FecConfig{cfg.fec_group_size, cfg.fec_interleave}),
      rto_timer_(wire.executor(), [this] { on_rto(); }),
      connect_timer_(wire.executor(), [this] { send_syn(); }),
      keepalive_timer_(wire.executor(), [this] { on_keepalive_tick(); }),
      ack_timer_(wire.executor(), [this] {
        if (unacked_arrivals_ > 0) send_ack(last_ts_to_echo_);
      }),
      fec_flush_timer_(wire.executor(), [this] { flush_fec(); }) {
  IQ_CHECK(cfg_.max_segment_payload > 0);
  IQ_CHECK(cfg_.initial_seq >= 1);
  next_seq_ = cfg_.initial_seq;
  wire_.set_receiver([this](const Segment& seg) { on_segment(seg); });
  wire_.set_corruption_handler([this] { ++stats_.checksum_rejects; });
  wire_.set_send_drop_handler([this] { ++stats_.sends_dropped; });
  loss_.set_epoch_handler(
      [this](const EpochReport& report) { on_epoch_report(report); });
  // IQ_AUDIT=1 arms every connection in the process (scripts/ci.sh --audit
  // runs the whole ctest suite and chaos matrix this way).
  if (const audit::AuditConfig* env = audit::env_audit_config()) {
    enable_audit(*env);
  }
}

// --------------------------------------------------------------- audit ----

audit::AuditContext* RudpConnection::enable_audit(audit::AuditConfig acfg) {
  audit_ = std::make_unique<audit::AuditContext>(cfg_.conn_id,
                                                 std::move(acfg));
  audit::InvariantAuditor::CwndBounds bounds;
  bounds.min_cwnd = active_cc()->min_cwnd();
  bounds.max_cwnd = active_cc()->max_cwnd();
  audit_->auditor().set_cwnd_bounds(bounds);
  audit_emit(audit::EventType::ConnOpen, 0,
             role_ == Role::Server ? 1u : 0u);
  return audit_.get();
}

void RudpConnection::audit_emit(audit::EventType type, Seq seq,
                                std::uint64_t a, std::uint64_t b,
                                std::uint64_t c, std::uint64_t d, double x,
                                double y, std::uint8_t flag) {
  if (!audit_) return;
  audit::Event e;
  e.t_us = now_us();
  e.conn_id = cfg_.conn_id;
  e.type = type;
  e.seq = seq;
  e.a = a;
  e.b = b;
  e.c = c;
  e.d = d;
  e.x = x;
  e.y = y;
  e.flag = flag;
  audit_->record(e);
}

void RudpConnection::audit_coord_rescale(double factor, double eratio,
                                         std::uint8_t scheme) {
  audit_emit(audit::EventType::CoordRescale, 0, 0, 0, 0, 0, factor, eratio,
             scheme);
}

void RudpConnection::audit_cwnd(audit::CwndCause cause, double before) {
  if (!audit_) return;
  const double after = active_cc()->cwnd();
  if (after == before) return;
  audit_emit(audit::EventType::CwndChange, 0, 0, 0, 0, 0, before, after,
             static_cast<std::uint8_t>(cause));
}

RudpConnection::~RudpConnection() = default;

std::uint64_t RudpConnection::now_us() const {
  return static_cast<std::uint64_t>(wire_.executor().now().ns() / 1000);
}

// ------------------------------------------------------------- control ----

void RudpConnection::connect() {
  IQ_CHECK_MSG(role_ == Role::Client, "connect() on a server connection");
  IQ_CHECK(state_ == ConnState::Closed);
  state_ = ConnState::SynSent;
  connect_attempts_ = 0;
  send_syn();
}

void RudpConnection::listen() {
  IQ_CHECK_MSG(role_ == Role::Server, "listen() on a client connection");
  IQ_CHECK(state_ == ConnState::Closed);
  state_ = ConnState::Listening;
}

void RudpConnection::close() {
  if (state_ == ConnState::Established || state_ == ConnState::SynSent) {
    // From Failed the peer is presumed dead; no farewell RST.
    send_control(SegmentType::Rst);
  }
  state_ = ConnState::Closed;
  rto_timer_.stop();
  connect_timer_.stop();
  keepalive_timer_.stop();
  ack_timer_.stop();
  fec_flush_timer_.stop();
}

void RudpConnection::enter_failed(FailureReason reason) {
  if (state_ == ConnState::Failed || state_ == ConnState::Closed) return;
  log_warn("rudp conn ", cfg_.conn_id, ": failed (",
           failure_reason_name(reason), ")");
  state_ = ConnState::Failed;
  failure_reason_ = reason;
  ++stats_.failures;
  audit_emit(audit::EventType::Failed, 0,
             static_cast<std::uint64_t>(reason));
  rto_timer_.stop();
  connect_timer_.stop();
  keepalive_timer_.stop();
  ack_timer_.stop();
  fec_flush_timer_.stop();
  if (on_error_) on_error_(reason);
}

void RudpConnection::send_syn() {
  if (state_ != ConnState::SynSent) return;
  if (connect_attempts_ >= cfg_.max_connect_attempts) {
    log_warn("rudp conn ", cfg_.conn_id, ": connect gave up after ",
             connect_attempts_, " attempts");
    enter_failed(FailureReason::HandshakeTimeout);
    return;
  }
  if (connect_attempts_ > 0) ++stats_.connect_retries;
  ++connect_attempts_;
  send_control(SegmentType::Syn);
  // Exponential backoff: connect_retry, 2x, 4x, ... capped. Attempt k waits
  // min(connect_retry * 2^(k-1), connect_retry_cap) before retrying.
  Duration wait = cfg_.connect_retry;
  const Duration cap = std::max(cfg_.connect_retry, cfg_.connect_retry_cap);
  for (int i = 1; i < connect_attempts_ && wait < cap; ++i) wait = wait * 2;
  connect_timer_.start(std::min(wait, cap));
}

void RudpConnection::on_keepalive_tick() {
  if (established()) {
    if (recv_activity_) {
      keepalive_miss_streak_ = 0;
    } else if (keepalive_probe_outstanding_) {
      // A probe went out last interval and nothing at all came back.
      ++keepalive_miss_streak_;
      ++stats_.keepalive_misses;
      if (cfg_.max_keepalive_misses > 0 &&
          keepalive_miss_streak_ >= cfg_.max_keepalive_misses) {
        enter_failed(FailureReason::KeepaliveTimeout);
        return;
      }
    }
    recv_activity_ = false;
    if (send_idle()) {
      send_control(SegmentType::Nul);
      ++stats_.nuls_sent;
      keepalive_probe_outstanding_ = true;
    } else {
      // Data (with its RTO machinery) is in flight; it owns dead-peer
      // detection until the connection goes idle again.
      keepalive_probe_outstanding_ = false;
    }
  }
  if (!cfg_.keepalive.is_zero()) keepalive_timer_.start(keepalive_interval());
}

Duration RudpConnection::keepalive_interval() const {
  // Never judge a probe on an interval shorter than the retransmission
  // timeout: RTO = SRTT + 4·RTTVAR already is the engine's "a reply should
  // have arrived by now" bound. The configured interval still sets the pace
  // on short paths; the RTO only stretches it when the path is slower than
  // the probe clock (high-BDP satellite profiles).
  return std::max(cfg_.keepalive, rtt_.rto());
}

void RudpConnection::become_established() {
  if (state_ == ConnState::Established) return;
  state_ = ConnState::Established;
  audit_emit(audit::EventType::Established);
  if (!cfg_.keepalive.is_zero()) keepalive_timer_.start(keepalive_interval());
  if (on_established_) on_established_();
}

// ------------------------------------------------------------- sending ----

RudpConnection::SendResult RudpConnection::send_message(
    const MessageSpec& spec) {
  IQ_CHECK_MSG(spec.bytes >= 0, "negative message size");
  const std::uint32_t msg_id = next_msg_id_++;
  ++stats_.messages_offered;
  budget_.on_message_offered();

  // IQ coordination scheme 1: while the application trades reliability for
  // timeliness, unmarked data is discarded *before* it enters the network,
  // within the receiver's loss tolerance. The FEC class is exempt: it asked
  // for strengthened delivery, not relaxed.
  if (discard_unmarked_ && !spec.marked && !spec.fec &&
      budget_.may_skip_message()) {
    budget_.on_message_skipped(msg_id);
    ++stats_.messages_discarded_at_send;
    audit_emit(audit::EventType::MsgDiscarded, msg_id);
    return SendResult{msg_id, /*discarded=*/true};
  }

  const std::int64_t mss = cfg_.max_segment_payload;
  const auto frag_count = static_cast<std::uint16_t>(
      std::max<std::int64_t>(1, (spec.bytes + mss - 1) / mss));
  std::int64_t remaining = spec.bytes;
  for (std::uint16_t i = 0; i < frag_count; ++i) {
    PendingSegment p;
    p.msg_id = msg_id;
    p.frag_index = i;
    p.frag_count = frag_count;
    p.payload_bytes = static_cast<std::int32_t>(std::min(remaining, mss));
    p.marked = spec.marked;
    p.fec = spec.fec;
    if (i == 0) p.attrs = spec.attrs;
    remaining -= p.payload_bytes;
    pending_.push_back(std::move(p));
  }
  ++stats_.messages_enqueued;
  audit_emit(audit::EventType::MsgEnqueued, msg_id, frag_count,
             static_cast<std::uint64_t>(spec.bytes));
  shed_pending();
  pump();
  return SendResult{msg_id, /*discarded=*/false};
}

void RudpConnection::set_max_pending_segments(std::size_t limit) {
  cfg_.max_pending_segments = limit;
  shed_pending();
}

void RudpConnection::shed_pending() {
  if (cfg_.max_pending_segments == 0) return;
  while (pending_.size() > cfg_.max_pending_segments) {
    // Only whole messages still entirely unsent may be shed: a message with
    // fragments already on the wire must keep its tail or the receiver's
    // reassembly wedges. pump() consumes in order, so any partially-sent
    // message is a frag_index>0 run at the front; the first frag_index==0
    // starts the oldest evictable message.
    std::size_t j = 0;
    while (j < pending_.size() && pending_[j].frag_index != 0) ++j;
    if (j >= pending_.size()) return;  // nothing evictable
    const auto n = static_cast<std::size_t>(pending_[j].frag_count);
    audit_emit(audit::EventType::MsgShed, pending_[j].msg_id, n);
    pending_.erase(j, n);
    ++stats_.messages_shed;
  }
}

void RudpConnection::emit(Segment&& seg) {
  if (tap_) tap_(TapDirection::Out, seg);
  wire_.send(std::move(seg));
}

void RudpConnection::pump() {
  if (state_ != ConnState::Established) return;
  for (;;) {
    if (pending_.empty()) {
      window_limited_ = false;
      return;
    }
    const int wnd = std::max(1, static_cast<int>(active_cc()->cwnd()));
    const int limit = std::min<int>(wnd, static_cast<int>(
                                             std::max(1u, peer_rwnd_)));
    if (send_buf_.inflight() >= limit) {
      window_limited_ = true;
      return;
    }
    PendingSegment p = std::move(pending_.front());
    pending_.pop_front();

    Outstanding o;
    o.seq = next_seq_++;
    o.msg_id = p.msg_id;
    o.frag_index = p.frag_index;
    o.frag_count = p.frag_count;
    o.payload_bytes = p.payload_bytes;
    o.marked = p.marked;
    o.fec = p.fec;
    o.attrs = std::move(p.attrs);
    o.first_sent = wire_.executor().now();
    o.last_sent = o.first_sent;
    send_buf_.add(o);
    audit_emit(audit::EventType::SegSent, o.seq, o.msg_id,
               static_cast<std::uint64_t>(o.payload_bytes), 0, 0, 0.0, 0.0,
               static_cast<std::uint8_t>((o.marked ? 1 : 0) |
                                         (o.fec ? 2 : 0)));
    transmit(*send_buf_.find(o.seq), /*retransmission=*/false);
  }
}

void RudpConnection::transmit(Outstanding& o, bool retransmission) {
  Segment seg;
  seg.type = SegmentType::Data;
  seg.conn_id = cfg_.conn_id;
  seg.seq = to_wire(o.seq);
  seg.msg_id = o.msg_id;
  seg.frag_index = o.frag_index;
  seg.frag_count = o.frag_count;
  seg.marked = o.marked;
  seg.fec_protected = o.fec;
  seg.payload_bytes = o.payload_bytes;
  seg.cum_ack = to_wire(recv_buf_.cum());
  seg.ts_us = now_us();
  seg.attrs = o.attrs;

  ++stats_.segments_sent;
  stats_.payload_bytes_sent += o.payload_bytes;
  if (retransmission) ++stats_.segments_retransmitted;

  o.last_sent = wire_.executor().now();
  // Enrolling first transmissions in a parity group needs the segment after
  // it goes out, so FEC traffic keeps the copying emit; everything else
  // moves its vectors/attrs straight into the wire.
  const bool enroll = o.fec && !retransmission;
  if (enroll) {
    emit(Segment(seg));
    // Retransmissions are already covered by the descriptor captured the
    // first time around.
    if (auto parity = fec_enc_.add(seg)) send_parity(std::move(*parity));
    if (fec_enc_.open_groups() > 0) {
      fec_flush_timer_.start_if_idle(cfg_.fec_flush);
    }
  } else {
    emit(std::move(seg));
  }
  rto_timer_.start_if_idle(rtt_.rto());
}

void RudpConnection::send_parity(Segment parity) {
  parity.conn_id = cfg_.conn_id;
  parity.cum_ack = to_wire(recv_buf_.cum());
  parity.ts_us = now_us();
  ++stats_.parities_sent;
  emit(std::move(parity));
}

void RudpConnection::flush_fec() {
  if (state_ != ConnState::Established) return;
  for (Segment& parity : fec_enc_.flush()) send_parity(std::move(parity));
}

void RudpConnection::send_ack(std::uint64_t ts_echo_us) {
  unacked_arrivals_ = 0;
  ack_timer_.stop();
  Segment seg;
  seg.type = SegmentType::Ack;
  seg.conn_id = cfg_.conn_id;
  seg.cum_ack = to_wire(recv_buf_.cum());
  for (Seq e : recv_buf_.eacks(cfg_.max_eacks_per_ack)) {
    seg.eacks.push_back(to_wire(e));
  }
  seg.rwnd_packets = recv_buf_.rwnd();
  seg.ts_us = now_us();
  seg.ts_echo_us = ts_echo_us;
  ++stats_.acks_sent;
  emit(std::move(seg));
}

void RudpConnection::send_advance(std::span<const SkippedSeq> skipped) {
  Segment seg;
  seg.type = SegmentType::Advance;
  seg.conn_id = cfg_.conn_id;
  seg.skipped.assign(skipped.begin(), skipped.end());
  seg.cum_ack = to_wire(recv_buf_.cum());
  seg.ts_us = now_us();
  ++stats_.advances_sent;
  emit(std::move(seg));
  // ADVANCE is not individually acked; keep a timer alive so lost ones are
  // re-advertised from on_rto().
  rto_timer_.start_if_idle(rtt_.rto());
}

void RudpConnection::resend_outstanding_skips() {
  if (skip_outstanding_.empty()) return;
  iq::InlineVec<SkippedSeq, 8> skips;
  for (const auto& [_, rec] : skip_outstanding_) skips.push_back(rec);
  last_skip_resend_ = wire_.executor().now();
  send_advance(skips);
}

void RudpConnection::send_control(SegmentType type) {
  Segment seg;
  seg.type = type;
  seg.conn_id = cfg_.conn_id;
  seg.cum_ack = to_wire(recv_buf_.cum());
  seg.ts_us = now_us();
  if (type == SegmentType::SynAck) {
    seg.recv_loss_tolerance = cfg_.recv_loss_tolerance;
  }
  emit(std::move(seg));
}

// -------------------------------------------------------------- inbound ---

void RudpConnection::on_segment(const Segment& seg) {
  if (seg.conn_id != cfg_.conn_id) return;  // not ours
  if (state_ == ConnState::Failed) return;  // dead until re-connected
  recv_activity_ = true;
  keepalive_probe_outstanding_ = false;
  // ANY inbound segment proves the path is alive, so it ends an RTO streak:
  // the streak-based failure detector is for dead paths (blackouts), not for
  // heavily lossy ones, where acks for other segments keep trickling in.
  // Coming out of a sustained streak (a blackout), discard the in-progress
  // loss epoch: it is a wall of outage losses that would close as a
  // ~100%-loss report and slam the window shut just as the path comes back.
  if (rto_streak_ >= cfg_.rto_streak_for_epoch_reset) {
    const std::uint64_t pending_acked = loss_.pending_acked();
    const std::uint64_t pending_lost = loss_.pending_lost();
    loss_.reset_epoch();
    audit_emit(audit::EventType::EpochReset, 0, pending_acked, pending_lost,
               loss_.discarded_acked(), loss_.discarded_lost());
    ++stats_.blackout_recoveries;
  }
  rto_streak_ = 0;
  if (tap_) tap_(TapDirection::In, seg);
  switch (seg.type) {
    case SegmentType::Syn:
      on_syn(seg);
      break;
    case SegmentType::SynAck:
      on_syn_ack(seg);
      break;
    case SegmentType::Data:
      on_data(seg);
      break;
    case SegmentType::Ack:
      on_ack(seg);
      break;
    case SegmentType::Advance:
      on_advance(seg);
      break;
    case SegmentType::Parity:
      on_parity(seg);
      break;
    case SegmentType::Nul:
      if (established()) send_ack(seg.ts_us);
      break;
    case SegmentType::Rst:
      if (state_ != ConnState::Closed) {
        state_ = ConnState::Closed;
        rto_timer_.stop();
        keepalive_timer_.stop();
        if (on_closed_) on_closed_();
      }
      break;
  }
}

void RudpConnection::on_syn(const Segment&) {
  if (role_ != Role::Server) return;
  if (state_ != ConnState::Listening && state_ != ConnState::Established) {
    return;
  }
  // Duplicate SYNs simply re-elicit the SYN-ACK.
  send_control(SegmentType::SynAck);
  become_established();
}

void RudpConnection::on_syn_ack(const Segment& seg) {
  if (role_ != Role::Client) return;
  if (state_ == ConnState::Established) {
    // The receiver re-advertised its loss tolerance mid-connection.
    budget_.set_tolerance(seg.recv_loss_tolerance);
    return;
  }
  if (state_ != ConnState::SynSent) return;
  budget_.set_tolerance(seg.recv_loss_tolerance);
  connect_timer_.stop();
  become_established();
  pump();
}

void RudpConnection::on_data(const Segment& seg) {
  if (!established()) {
    // Data racing ahead of the handshake: for a listening server the SYN
    // was lost; ignore, the client will retry.
    return;
  }
  RecvSegment rs;
  rs.seq = unwrap(seg.seq, recv_buf_.cum());
  rs.msg_id = seg.msg_id;
  rs.frag_index = seg.frag_index;
  rs.frag_count = seg.frag_count;
  rs.payload_bytes = seg.payload_bytes;
  rs.marked = seg.marked;
  rs.fec = seg.fec_protected;
  rs.ts_us = seg.ts_us;
  rs.attrs = seg.attrs;

  recv_buf_.on_data(rs, wire_.executor().now(), recv_scratch_);
  // The FEC injection below reuses the scratch; latch the flag first.
  const bool duplicate = recv_scratch_.duplicate;
  if (duplicate) ++stats_.duplicates_received;
  deliver(recv_scratch_);

  // A (possibly late) FEC member arrival may make a held parity group
  // solvable — or settle it outright.
  if (seg.fec_protected && fec_dec_.held_groups() > 0) {
    inject_recovered(fec_dec_.on_data(
        rs.seq, [this](Seq s) { return recv_buf_.has(s); }));
  }

  // Delayed acks: in-order arrivals may be batched; anything unusual
  // (duplicate, reordering hole) acks immediately so the sender's loss
  // detection stays sharp.
  ++unacked_arrivals_;
  last_ts_to_echo_ = seg.ts_us;
  const bool unusual = duplicate || recv_buf_.buffered() > 0;
  if (cfg_.ack_every <= 1 || unacked_arrivals_ >= cfg_.ack_every || unusual) {
    send_ack(seg.ts_us);
  } else {
    ack_timer_.start_if_idle(cfg_.ack_delay);
  }
}

void RudpConnection::on_advance(const Segment& seg) {
  if (!established()) return;
  iq::InlineVec<RecvBuffer::SkipInfo, 8> skips;
  for (const SkippedSeq& s : seg.skipped) {
    skips.push_back(RecvBuffer::SkipInfo{unwrap(s.seq, recv_buf_.cum()),
                                         s.msg_id, s.frag_count});
  }
  recv_buf_.on_skip(skips, wire_.executor().now(), recv_scratch_);
  deliver(recv_scratch_);
  send_ack(seg.ts_us);
}

void RudpConnection::on_parity(const Segment& seg) {
  if (!established()) return;
  ++stats_.parities_received;
  // Unwrap every member against the current cumulative point *before* any
  // recovery shifts it.
  std::vector<RecvSegment> members;
  members.reserve(seg.fec_members.size());
  for (const FecMember& m : seg.fec_members) {
    RecvSegment rs;
    rs.seq = unwrap(m.seq, recv_buf_.cum());
    rs.msg_id = m.msg_id;
    rs.frag_index = m.frag_index;
    rs.frag_count = m.frag_count;
    rs.payload_bytes = m.payload_bytes;
    rs.marked = true;  // recovery normalizes: the FEC class is never skipped
    rs.fec = true;
    rs.ts_us = seg.ts_us;  // reconstruction time stands in for send time
    rs.attrs = m.attrs;
    members.push_back(std::move(rs));
  }
  inject_recovered(fec_dec_.on_parity(
      seg.fec_group, std::move(members),
      [this](Seq s) { return recv_buf_.has(s); }));
  // Ack unconditionally: if recovery advanced the cumulative point, this is
  // what lets the sender resolve the deferred segment without retransmit.
  send_ack(seg.ts_us);
}

void RudpConnection::inject_recovered(std::vector<RecvSegment> recovered) {
  const TimePoint now = wire_.executor().now();
  for (RecvSegment& rs : recovered) {
    ++stats_.segments_recovered;
    recv_buf_.on_data(rs, now, recv_scratch_);
    deliver(recv_scratch_);
  }
  fec_dec_.prune_below(recv_buf_.cum());
}

void RudpConnection::deliver(RecvBuffer::Result& result) {
  stats_.messages_dropped += result.dropped_messages;
  stats_.messages_delivered += result.delivered.size();
  for (const DeliveredMessage& msg : result.delivered) {
    stats_.payload_bytes_delivered += msg.bytes;
    if (on_message_) on_message_(msg);
  }
}

void RudpConnection::on_ack(const Segment& seg) {
  ++stats_.acks_received;
  if (seg.rwnd_packets > 0) peer_rwnd_ = seg.rwnd_packets;

  const TimePoint now = wire_.executor().now();
  if (seg.ts_echo_us > 0) {
    const Duration sample =
        now - TimePoint::from_ns(static_cast<std::int64_t>(seg.ts_echo_us) * 1000);
    rtt_.add_sample(sample);
    active_cc()->set_srtt(rtt_.srtt());
  }

  const Seq ref = send_buf_.lowest_or(next_seq_);
  const Seq cum = unwrap(seg.cum_ack, ref);
  iq::InlineVec<Seq, 16> eacks;
  for (WireSeq e : seg.eacks) eacks.push_back(unwrap(e, cum));

  // Skips the peer's cumulative ack has passed are settled; if the peer is
  // stuck exactly on a skipped sequence, the ADVANCE was lost — resend it
  // (at most once per RTO interval).
  skip_outstanding_.erase(skip_outstanding_.begin(),
                          skip_outstanding_.lower_bound(cum));
  if (!skip_outstanding_.empty() &&
      cum >= skip_outstanding_.begin()->first &&
      now - last_skip_resend_ >= rtt_.rto()) {
    resend_outstanding_skips();
  }

  audit_acked_scratch_.clear();
  auto outcome = send_buf_.on_ack(cum, eacks, cfg_.dup_threshold,
                                  audit_ ? &audit_acked_scratch_ : nullptr);
  if (audit_) {
    // Per-seq terminal evidence first, then the batch summary the auditor
    // cross-checks against it; both precede the LossMonitor update so a
    // resulting epoch-close event lands after the acks that closed it.
    for (Seq s : audit_acked_scratch_) {
      audit_emit(audit::EventType::SegAcked, s);
    }
    audit_emit(audit::EventType::AckReceived, cum,
               static_cast<std::uint64_t>(outcome.newly_acked),
               static_cast<std::uint64_t>(outcome.newly_acked_bytes),
               eacks.size());
  }
  if (outcome.newly_acked > 0) {
    stats_.payload_bytes_acked += outcome.newly_acked_bytes;
    // Grow the window only when the window is what limits us; an
    // application-limited sender must not inflate cwnd (window validation).
    if (window_limited_) {
      const double cwnd_before = active_cc()->cwnd();
      active_cc()->on_ack(outcome.newly_acked, now);
      audit_cwnd(audit::CwndCause::Ack, cwnd_before);
    }
    loss_.on_acked(static_cast<std::uint32_t>(outcome.newly_acked),
                   outcome.newly_acked_bytes, now);
  }
  handle_lost_segments(outcome.lost);

  if (send_buf_.empty() && skip_outstanding_.empty()) {
    rto_timer_.stop();
  } else if (outcome.cum_advanced) {
    rto_timer_.start(rtt_.rto());
  } else {
    rto_timer_.start_if_idle(rtt_.rto());
  }
  pump();
}

// ---------------------------------------------------------------- loss ----

void RudpConnection::handle_lost_segments(std::span<const Seq> lost) {
  if (lost.empty()) return;
  iq::InlineVec<SkippedSeq, 8> skips;
  for (Seq seq : lost) {
    if (auto skip = resolve_loss(seq, /*from_timeout=*/false)) {
      skips.push_back(*skip);
    }
  }
  if (!skips.empty()) send_advance(skips);
}

std::optional<SkippedSeq> RudpConnection::resolve_loss(Seq seq,
                                                       bool from_timeout) {
  Outstanding* o = send_buf_.find(seq);
  if (o == nullptr || o->counted_received) return std::nullopt;
  const TimePoint now = wire_.executor().now();

  // FEC class, first condemnation: defer the fast retransmit one RTO —
  // receiver-side parity recovery (and its ack) usually resolves the
  // segment first. The loss itself still counts, once; if the RTO later
  // fires for a deferred segment, recovery failed and we retransmit
  // without re-counting the same loss.
  const bool recovery_wait = o->fec && !from_timeout && !o->fec_deferred;
  const bool recovery_failed = o->fec && from_timeout && o->fec_deferred;
  if (!recovery_failed) {
    audit_emit(audit::EventType::LossCondemned, seq, 0, 0, 0, 0, 0.0, 0.0,
               from_timeout ? 1 : 0);
    loss_.on_lost(1, now);
    if (!from_timeout) {
      const double cwnd_before = active_cc()->cwnd();
      active_cc()->on_loss(now);
      audit_cwnd(audit::CwndCause::Loss, cwnd_before);
    }
  }
  if (recovery_wait) {
    o->loss_reported = true;
    o->fec_deferred = true;
    ++stats_.fec_deferrals;
    return std::nullopt;
  }
  if (recovery_failed) o->fec_deferred = false;

  const bool can_skip =
      !o->marked && !o->fec &&
      (budget_.is_skipped(o->msg_id) || budget_.may_skip_message());
  if (can_skip) {
    SkippedSeq rec{to_wire(seq), o->msg_id, o->frag_count};
    if (budget_.on_message_skipped(o->msg_id)) ++stats_.messages_skipped;
    ++stats_.segments_skipped;
    audit_emit(audit::EventType::SegSkipped, seq, o->msg_id);
    send_buf_.remove(seq);
    skip_outstanding_.emplace(seq, rec);
    return rec;
  }

  o->loss_reported = true;
  ++o->transmissions;
  if (!from_timeout) ++stats_.fast_retransmits;
  audit_emit(audit::EventType::SegRetransmit, seq, 0, 0, 0, 0, 0.0, 0.0,
             from_timeout ? 1 : 0);
  transmit(*o, /*retransmission=*/true);
  return std::nullopt;
}

void RudpConnection::on_rto() {
  if (!established()) return;
  if (send_buf_.empty()) {
    // Only skips outstanding: the ADVANCE (or its ack) was lost.
    if (!skip_outstanding_.empty()) {
      rtt_.backoff();
      ++stats_.rto_backoffs;
      resend_outstanding_skips();
      arm_rto();
    }
    return;
  }
  Outstanding* o = send_buf_.first_unacked();
  if (o == nullptr) {
    // Everything still buffered is sacked — the cumulative ack is blocked.
    // If a skipped sequence is the blocker, its ADVANCE was lost; resend.
    if (!skip_outstanding_.empty()) {
      rtt_.backoff();
      ++stats_.rto_backoffs;
      resend_outstanding_skips();
    }
    arm_rto();
    return;
  }
  ++stats_.timeouts;
  rtt_.backoff();
  ++stats_.rto_backoffs;
  // Dead-peer detection: consecutive expirations stuck on the same head
  // segment mean nothing — not even a window update — is getting through.
  if (o->seq == rto_streak_seq_) {
    ++rto_streak_;
  } else {
    rto_streak_seq_ = o->seq;
    rto_streak_ = 1;
  }
  audit_emit(audit::EventType::Rto, o->seq,
             static_cast<std::uint64_t>(rto_streak_), 0, 0, 0,
             rtt_.rto().to_seconds());
  if (cfg_.max_rto_streak > 0 && rto_streak_ >= cfg_.max_rto_streak) {
    enter_failed(FailureReason::RtoStreak);
    return;
  }
  if (cfg_.max_rto_streak > 0 && rto_streak_ >= 2) {
    // Dead-path probing: with exponential backoff, a streak interval carries
    // a single head retransmission — too little evidence to distinguish a
    // dead path from a merely lossy one (at 40% i.i.d. loss each interval
    // stays silent with p ≈ 0.64, so 8 in a row is a real possibility).
    // Send extra NUL probes alongside the retransmission; each one a peer
    // receives is acked immediately, and any inbound segment resets the
    // streak. A live-but-lossy path now almost surely produces evidence
    // before max_rto_streak, while a dead one stays silent regardless.
    const int probes = std::min<int>(static_cast<int>(rto_streak_), 3);
    for (int i = 0; i < probes; ++i) send_control(SegmentType::Nul);
    stats_.rto_probe_nuls += static_cast<std::uint64_t>(probes);
  }
  {
    const double cwnd_before = active_cc()->cwnd();
    active_cc()->on_timeout(wire_.executor().now());
    audit_cwnd(audit::CwndCause::Timeout, cwnd_before);
  }
  if (auto skip = resolve_loss(o->seq, /*from_timeout=*/true)) {
    iq::InlineVec<SkippedSeq, 8> skips{*skip};
    // Consecutive unmarked losses are common under a burst; sweep the rest
    // of the timed-out window head in the same ADVANCE.
    while (Outstanding* next = send_buf_.first_unacked()) {
      if (next->marked || next->counted_received) break;
      auto more = resolve_loss(next->seq, /*from_timeout=*/true);
      if (!more) break;
      skips.push_back(*more);
    }
    send_advance(skips);
  }
  if (!send_buf_.empty() || !skip_outstanding_.empty()) arm_rto();
  pump();
}

void RudpConnection::arm_rto() { rto_timer_.start(rtt_.rto()); }

// --------------------------------------------------------- adaptation -----

void RudpConnection::scale_congestion_window(double factor) {
  const double cwnd_before = active_cc()->cwnd();
  active_cc()->scale_window(factor);
  audit_cwnd(audit::CwndCause::Scale, cwnd_before);
  pump();
}

void RudpConnection::set_external_congestion(CongestionController* external) {
  ext_cc_ = external;
  // The auditor's cwnd bounds must follow the controller in charge: a CM
  // flow's share may legitimately sit below the built-in controller's
  // minimum (its min_cwnd() is 0) and above it up to the aggregate maximum.
  if (audit_) {
    audit::InvariantAuditor::CwndBounds bounds;
    bounds.min_cwnd = active_cc()->min_cwnd();
    bounds.max_cwnd = active_cc()->max_cwnd();
    audit_->auditor().set_cwnd_bounds(bounds);
  }
  pump();
}

void RudpConnection::set_fec_group_size(std::uint16_t k) {
  cfg_.fec_group_size = k;
  fec_enc_.set_group_size(k);
}

void RudpConnection::set_local_recv_tolerance(double tolerance) {
  cfg_.recv_loss_tolerance = tolerance;
  if (role_ == Role::Server && established()) {
    // Re-advertise so the sender's budget tracks the change.
    send_control(SegmentType::SynAck);
  }
}

void RudpConnection::on_epoch_report(const EpochReport& report) {
  audit_emit(audit::EventType::EpochClose, report.epoch, report.acked,
             report.lost, loss_.total_acked(), loss_.total_lost(),
             report.loss_ratio, report.smoothed_loss_ratio);
  const double cwnd_before = active_cc()->cwnd();
  active_cc()->on_epoch(report.loss_ratio, report.at);
  audit_cwnd(audit::CwndCause::Epoch, cwnd_before);
  if (on_epoch_) on_epoch_(report);
  pump();
}

}  // namespace iq::rudp
