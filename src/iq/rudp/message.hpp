#pragma once
// Application-facing message types for RUDP.
//
// A "message" is the application's unit (a frame, an event): it is
// fragmented into <= MSS segments for transmission and reassembled in order
// at the receiver. Reliability is per message: unmarked messages may be
// abandoned under loss (within the receiver's tolerance), and a message is
// either delivered whole or counted dropped.

#include <cstdint>

#include "iq/attr/list.hpp"
#include "iq/common/time.hpp"

namespace iq::rudp {

struct MessageSpec {
  std::int64_t bytes = 0;   ///< application payload size
  bool marked = true;       ///< tagged: must be delivered reliably
  /// Third reliability class: never skipped or discarded; segments are
  /// enrolled in XOR parity groups so single losses are recovered at the
  /// receiver without retransmission (fast retransmit is deferred).
  bool fec = false;
  attr::AttrList attrs;     ///< in-band attributes (ride the first fragment)
};

struct DeliveredMessage {
  std::uint32_t msg_id = 0;
  std::int64_t bytes = 0;
  bool marked = true;
  bool fec = false;         ///< sent in the FEC-protected class
  TimePoint first_sent;     ///< sender clock at first fragment's transmission
  TimePoint delivered;      ///< receiver clock at in-order completion
  attr::AttrList attrs;
};

}  // namespace iq::rudp
