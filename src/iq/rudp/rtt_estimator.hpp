#pragma once
// Jacobson/Karels RTT estimation with exponential RTO backoff.
//
// Samples come from the timestamp-echo mechanism (the ACK echoes the ts of
// the segment that triggered it), so every sample is unambiguous and Karn's
// rule is unnecessary — retransmitted segments carry a fresh timestamp.

#include "iq/common/time.hpp"

namespace iq::rudp {

struct RttConfig {
  Duration initial_rto = Duration::millis(1000);
  Duration min_rto = Duration::millis(200);
  Duration max_rto = Duration::seconds(60);
  double alpha = 1.0 / 8.0;  ///< SRTT gain
  double beta = 1.0 / 4.0;   ///< RTTVAR gain
  double k = 4.0;            ///< RTO = SRTT + k·RTTVAR
};

class RttEstimator {
 public:
  explicit RttEstimator(const RttConfig& cfg = {});

  void add_sample(Duration rtt);
  /// Double the RTO (called on retransmission timeout), capped at max_rto.
  void backoff();
  /// Reset the backoff multiplier (called when a fresh sample arrives).
  void reset_backoff() { backoff_multiplier_ = 1; }

  bool has_sample() const { return samples_ > 0; }
  Duration srtt() const { return srtt_; }
  Duration rttvar() const { return rttvar_; }
  Duration rto() const;
  std::uint64_t samples() const { return samples_; }

 private:
  RttConfig cfg_;
  Duration srtt_ = Duration::zero();
  Duration rttvar_ = Duration::zero();
  std::uint64_t samples_ = 0;
  int backoff_multiplier_ = 1;
};

}  // namespace iq::rudp
