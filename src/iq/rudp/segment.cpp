#include "iq/rudp/segment.hpp"

#include <sstream>

#include "iq/common/bytes.hpp"

namespace iq::rudp {

const char* segment_type_name(SegmentType t) {
  switch (t) {
    case SegmentType::Syn: return "SYN";
    case SegmentType::SynAck: return "SYN-ACK";
    case SegmentType::Data: return "DATA";
    case SegmentType::Ack: return "ACK";
    case SegmentType::Advance: return "ADVANCE";
    case SegmentType::Nul: return "NUL";
    case SegmentType::Rst: return "RST";
    case SegmentType::Parity: return "PARITY";
  }
  return "?";
}

std::int64_t Segment::header_bytes() const {
  // Fixed part (wire format v2): magic(2) + type(1) + flags(1) +
  // checksum(4) + conn(4) + seq(4) + cum_ack(4) + rwnd(4) + ts(8) +
  // ts_echo(8) = 40 bytes.
  std::int64_t n = 40;
  switch (type) {
    case SegmentType::Data:
      n += 4 /*msg_id*/ + 2 /*frag_index*/ + 2 /*frag_count*/ +
           4 /*payload len*/;
      break;
    case SegmentType::Ack:
      n += 2 + static_cast<std::int64_t>(eacks.size()) * 4;
      break;
    case SegmentType::Advance:
      n += 2 + static_cast<std::int64_t>(skipped.size()) * 10;
      break;
    case SegmentType::SynAck:
      n += 8 /*tolerance*/;
      break;
    case SegmentType::Parity:
      // fec_group(4) + payload len(4) + count(2), then per member
      // seq(4) + msg_id(4) + frag_index(2) + frag_count(2) +
      // payload len(4) + has-attrs(1) [+ attrs].
      n += 4 + 4 + 2;
      for (const FecMember& m : fec_members) {
        n += 17;
        if (!m.attrs.empty()) {
          n += static_cast<std::int64_t>(m.attrs.encoded_size());
        }
      }
      break;
    default:
      break;
  }
  if (!attrs.empty()) {
    n += static_cast<std::int64_t>(attrs.encoded_size());
  }
  return n;
}

std::string Segment::describe() const {
  std::ostringstream os;
  os << segment_type_name(type) << " conn=" << conn_id;
  switch (type) {
    case SegmentType::Data:
      os << " seq=" << seq << " msg=" << msg_id << " frag=" << frag_index
         << "/" << frag_count
         << (fec_protected ? " fec" : (marked ? " marked" : " unmarked"))
         << " " << payload_bytes << "B";
      break;
    case SegmentType::Ack:
      os << " cum=" << cum_ack << " eacks=" << eacks.size();
      break;
    case SegmentType::Advance:
      os << " skipped=" << skipped.size();
      break;
    case SegmentType::Parity:
      os << " group=" << fec_group << " members=" << fec_members.size()
         << " " << payload_bytes << "B";
      break;
    default:
      break;
  }
  return os.str();
}

}  // namespace iq::rudp
