#pragma once
// RudpConnection: the RUDP protocol engine.
//
// A connection-oriented, datagram-based transport providing in-order
// reliable message delivery with flow control and window-based congestion
// control (draft-ietf-sigtran-reliable-udp mechanics), extended with the
// paper's adaptive-reliability features:
//   * per-message marked/unmarked reliability (sender priority marking),
//   * receiver loss tolerance (advertised at handshake, enforced by the
//     sender's SkipBudget),
//   * ADVANCE segments that abandon lost unmarked data,
//   * send-side discard of unmarked messages (enabled by the IQ
//     coordinator, §3.3),
//   * an external window-rescale hook (used by coordination schemes 2/3).
//
// The same engine runs over the simulator (iq::wire::SimWire) and over real
// UDP sockets (iq::wire::UdpWire); it is written against SegmentWire and
// Executor only. Single-threaded: all entry points must be called from the
// wire's executor context.

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "iq/audit/audit.hpp"
#include "iq/common/ring_queue.hpp"
#include "iq/fec/group.hpp"
#include "iq/rudp/congestion.hpp"
#include "iq/rudp/loss_monitor.hpp"
#include "iq/rudp/message.hpp"
#include "iq/rudp/recv_buffer.hpp"
#include "iq/rudp/reliability.hpp"
#include "iq/rudp/rtt_estimator.hpp"
#include "iq/rudp/segment_wire.hpp"
#include "iq/rudp/send_buffer.hpp"
#include "iq/sim/timer.hpp"

namespace iq::rudp {

struct RudpConfig {
  std::uint32_t conn_id = 1;
  std::int64_t max_segment_payload = 1400;  ///< paper's maximum segment size
  std::uint32_t recv_window_packets = 4096;
  std::uint32_t loss_epoch_packets = 100;
  std::size_t max_eacks_per_ack = 64;
  int dup_threshold = 3;

  CcKind cc_kind = CcKind::Lda;
  double initial_cwnd = 2.0;
  /// Window when cc_kind == Fixed (the "congestion control disabled" rows).
  double fixed_cwnd = 256.0;

  /// This endpoint's loss tolerance *as a receiver*, advertised in SYN-ACK.
  double recv_loss_tolerance = 0.0;

  RttConfig rtt;
  Duration connect_retry = Duration::millis(500);
  int max_connect_attempts = 20;
  /// Handshake retries back off exponentially from connect_retry up to this
  /// cap; set equal to connect_retry for a fixed retry interval.
  Duration connect_retry_cap = Duration::seconds(4);
  /// NUL keepalive interval; zero disables keepalives.
  Duration keepalive = Duration::zero();
  /// Dead-peer detection: enter Failed after this many keepalive intervals
  /// with an outstanding probe and no inbound traffic. 0 disables (probes
  /// are still sent if `keepalive` is set).
  int max_keepalive_misses = 0;
  /// Enter Failed after this many consecutive RTO expirations during total
  /// inbound silence — any arriving segment resets the streak, so this
  /// detects dead paths (blackouts), not heavy loss. RTO itself backs off
  /// exponentially: N=8 ≈ 200ms+400ms+...+25.6s ≈ 51s of silence at the
  /// default min RTO. 0 disables RTO-based failure.
  int max_rto_streak = 8;
  /// After an RTO streak at least this long, the first forward progress is
  /// treated as blackout recovery: the in-progress loss epoch is reset so
  /// outage losses don't keep the congestion window collapsed.
  int rto_streak_for_epoch_reset = 3;
  /// Backpressure: bound on queued-but-unsent segments. When exceeded, the
  /// oldest whole not-yet-transmitted messages are shed (drop-oldest) so a
  /// stalled connection degrades instead of growing memory. 0 = unbounded.
  std::size_t max_pending_segments = 0;
  /// First data sequence number (must match on both endpoints); set close
  /// to 2^32 to exercise wire-sequence wraparound.
  Seq initial_seq = 1;

  /// Delayed acks: acknowledge every Nth in-order data segment (1 = every
  /// segment, the default). Out-of-order arrivals, duplicates and skips
  /// always ack immediately; a flush timer bounds ack latency.
  std::uint32_t ack_every = 1;
  Duration ack_delay = Duration::millis(100);

  /// FEC reliability class: XOR parity group size (members per parity) and
  /// interleaving depth (concurrent open groups, round-robin enrolment).
  std::uint16_t fec_group_size = 4;
  std::uint16_t fec_interleave = 1;
  /// Partially filled parity groups are closed after this long so a lull in
  /// FEC traffic cannot leave the last segments unprotected.
  Duration fec_flush = Duration::millis(30);
};

enum class Role { Client, Server };

enum class ConnState { Closed, SynSent, Listening, Established, Failed };

/// Why a connection entered ConnState::Failed.
enum class FailureReason {
  None,
  HandshakeTimeout,  ///< max_connect_attempts SYNs went unanswered
  RtoStreak,         ///< max_rto_streak consecutive RTOs without progress
  KeepaliveTimeout,  ///< max_keepalive_misses probe intervals without input
};

const char* failure_reason_name(FailureReason r);

struct RudpStats {
  std::uint64_t messages_offered = 0;
  std::uint64_t messages_enqueued = 0;
  std::uint64_t messages_discarded_at_send = 0;
  std::uint64_t messages_skipped = 0;       ///< via ADVANCE after loss
  std::uint64_t segments_sent = 0;          ///< data transmissions incl. rexmit
  std::uint64_t segments_retransmitted = 0;
  std::uint64_t segments_skipped = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t advances_sent = 0;
  std::uint64_t nuls_sent = 0;
  std::int64_t payload_bytes_sent = 0;
  std::int64_t payload_bytes_acked = 0;
  std::uint64_t duplicates_received = 0;
  std::uint64_t messages_delivered = 0;     ///< as a receiver
  std::uint64_t messages_dropped = 0;       ///< as a receiver (skipped)
  std::int64_t payload_bytes_delivered = 0; ///< as a receiver
  std::uint64_t parities_sent = 0;          ///< PARITY segments emitted
  std::uint64_t parities_received = 0;      ///< as a receiver
  std::uint64_t segments_recovered = 0;     ///< rebuilt from parity, no rexmit
  std::uint64_t fec_deferrals = 0;          ///< fast retransmits held back
  // Failure / robustness.
  std::uint64_t connect_retries = 0;        ///< SYNs after the first
  std::uint64_t rto_backoffs = 0;           ///< exponential RTO escalations
  std::uint64_t keepalive_misses = 0;       ///< probe intervals w/o input
  std::uint64_t rto_probe_nuls = 0;         ///< dead-path probes during streaks
  std::uint64_t checksum_rejects = 0;       ///< corrupted datagrams rejected
  std::uint64_t sends_dropped = 0;          ///< datagrams the wire refused
  std::uint64_t blackout_recoveries = 0;    ///< epoch resets after RTO streaks
  std::uint64_t messages_shed = 0;          ///< dropped by backpressure bound
  std::uint64_t failures = 0;               ///< times Failed was entered
};

class RudpConnection {
 public:
  RudpConnection(SegmentWire& wire, RudpConfig cfg, Role role);
  ~RudpConnection();
  RudpConnection(const RudpConnection&) = delete;
  RudpConnection& operator=(const RudpConnection&) = delete;

  // ------------------------------------------------------------ control --
  /// Client: begin the SYN handshake.
  void connect();
  /// Server: accept the first matching SYN.
  void listen();
  /// Send RST and drop all state.
  void close();

  ConnState state() const { return state_; }
  bool established() const { return state_ == ConnState::Established; }
  bool failed() const { return state_ == ConnState::Failed; }
  FailureReason failure_reason() const { return failure_reason_; }

  // ------------------------------------------------------------- sending --
  struct SendResult {
    std::uint32_t msg_id = 0;
    bool discarded = false;  ///< dropped before send (IQ scheme 1)
  };
  /// Queue a message for transmission (fragmented to MSS). When send-side
  /// discard is active and the message is unmarked, it may be dropped here
  /// within the receiver's loss tolerance.
  SendResult send_message(const MessageSpec& spec);

  std::size_t queued_segments() const { return pending_.size(); }
  bool send_idle() const {
    return pending_.empty() && send_buf_.empty() && skip_outstanding_.empty();
  }

  // ----------------------------------------------------------- callbacks --
  using MessageFn = std::function<void(const DeliveredMessage&)>;
  using EstablishedFn = std::function<void()>;
  using EpochFn = std::function<void(const EpochReport&)>;
  using ClosedFn = std::function<void()>;
  using ErrorFn = std::function<void(FailureReason)>;

  /// Protocol tap: observes every segment leaving and entering this
  /// endpoint (before loss — taps see what the engine does, not what the
  /// network delivers). For debugging, tracing and tests.
  enum class TapDirection { Out, In };
  using SegmentTap = std::function<void(TapDirection, const Segment&)>;
  void set_segment_tap(SegmentTap fn) { tap_ = std::move(fn); }

  void set_message_handler(MessageFn fn) { on_message_ = std::move(fn); }
  void set_established_handler(EstablishedFn fn) {
    on_established_ = std::move(fn);
  }
  /// Fires once per loss-measuring epoch with transport metrics — the feed
  /// for quality attributes and application callbacks.
  void set_epoch_handler(EpochFn fn) { on_epoch_ = std::move(fn); }
  void set_closed_handler(ClosedFn fn) { on_closed_ = std::move(fn); }
  /// Fires once when the connection gives up and enters ConnState::Failed
  /// (handshake exhaustion, RTO streak, or dead-peer keepalive timeout).
  void set_error_handler(ErrorFn fn) { on_error_ = std::move(fn); }

  // ----------------------------------------- coordination / adaptation ---
  /// IQ scheme 1: discard unmarked messages at send time while true.
  void set_discard_unmarked(bool enabled) { discard_unmarked_ = enabled; }
  bool discard_unmarked() const { return discard_unmarked_; }
  /// IQ schemes 2/3: multiply the congestion window.
  void scale_congestion_window(double factor);
  /// Update this endpoint's receiver tolerance (advertised value is from
  /// the handshake; the sender-side budget follows the peer's SYN-ACK).
  void set_local_recv_tolerance(double tolerance);
  /// Retune the FEC parity ratio (1/k); applies to the next parity group.
  void set_fec_group_size(std::uint16_t k);
  std::uint16_t fec_group_size() const { return fec_enc_.group_size(); }
  /// Retune the backpressure bound at runtime (0 = unbounded); sheds
  /// immediately if the queue already exceeds the new bound.
  void set_max_pending_segments(std::size_t limit);

  /// Delegate congestion control to an external controller (non-owning) —
  /// the congestion-manager hook: a cm::FlowHandle plugged in here makes
  /// this connection's window its apportioned share of a per-destination
  /// aggregate (docs/CM.md). nullptr restores the built-in controller.
  /// The caller keeps `external` alive until it is unset or the connection
  /// is destroyed.
  void set_external_congestion(CongestionController* external);
  CongestionController* external_congestion() { return ext_cc_; }
  /// External notification that the active controller's window grew (e.g.
  /// a sibling flow left the macro-flow and this flow's share rose):
  /// re-enter the send loop to fill the freed window immediately.
  void window_updated() { pump(); }

  // --------------------------------------------------------------- audit --
  /// Arm the flight recorder + invariant auditor on this connection. Every
  /// protocol event (send/ack/loss/RTO/cwnd-change/epoch-close/rescale)
  /// flows into a fixed-size binary ring and through the conservation and
  /// monotonicity checks (docs/AUDIT.md). Near-zero cost while disarmed:
  /// every emission site is a single null-pointer test. Also armed
  /// process-wide by exporting IQ_AUDIT=1 (scripts/ci.sh --audit).
  audit::AuditContext* enable_audit(audit::AuditConfig acfg = {});
  /// nullptr while audit is disarmed.
  audit::AuditContext* audit() { return audit_.get(); }
  const audit::AuditContext* audit() const { return audit_.get(); }
  /// Loss-epoch accounting (exposed for the auditor's seed tests).
  const LossMonitor& loss_monitor() const { return loss_; }
  /// Coordinator hook: record a CoordRescale audit event describing the
  /// upcoming scale_congestion_window call (no-op while disarmed).
  /// `scheme`: 1 = resolution rescale, 2 = frequency ablation, 3 = FEC debit.
  void audit_coord_rescale(double factor, double eratio, std::uint8_t scheme);

  // -------------------------------------------------------------- status --
  /// The controller actually in charge: the external one when attached
  /// (set_external_congestion), the built-in otherwise.
  CongestionController& congestion() { return *active_cc(); }
  const CongestionController& congestion() const { return *active_cc(); }
  const RudpStats& stats() const { return stats_; }
  Duration srtt() const { return rtt_.srtt(); }
  Duration rto() const { return rtt_.rto(); }
  double last_loss_ratio() const { return loss_.last_loss_ratio(); }
  double lifetime_loss_ratio() const { return loss_.lifetime_loss_ratio(); }
  double peer_recv_tolerance() const { return budget_.tolerance(); }
  int inflight() const { return send_buf_.inflight(); }
  const SkipBudget& skip_budget() const { return budget_; }
  sim::Executor& executor() { return wire_.executor(); }

 private:
  struct PendingSegment {
    std::uint32_t msg_id;
    std::uint16_t frag_index;
    std::uint16_t frag_count;
    std::int32_t payload_bytes;
    bool marked;
    bool fec;
    attr::AttrList attrs;  ///< only on frag 0
  };

  // Inbound dispatch.
  void on_segment(const Segment& seg);
  void on_syn(const Segment& seg);
  void on_syn_ack(const Segment& seg);
  void on_data(const Segment& seg);
  void on_ack(const Segment& seg);
  void on_advance(const Segment& seg);
  void on_parity(const Segment& seg);

  // Outbound helpers.
  void emit(Segment&& seg);
  void pump();
  void transmit(Outstanding& o, bool retransmission);
  void send_ack(std::uint64_t ts_echo_us);
  void send_advance(std::span<const SkippedSeq> skipped);
  /// Re-advertise every still-unacknowledged skip (lost-ADVANCE recovery).
  void resend_outstanding_skips();
  void send_syn();
  void send_control(SegmentType type);
  /// Emit one parity segment (fire-and-forget: no seq, never buffered).
  void send_parity(Segment parity);
  /// Close and emit any partially filled parity groups (flush timer).
  void flush_fec();
  /// Feed segments rebuilt by the FEC decoder into reassembly as if the
  /// lost DATA had arrived, then drop groups the cumulative point passed.
  void inject_recovered(std::vector<RecvSegment> recovered);

  // Loss handling.
  void handle_lost_segments(std::span<const Seq> lost);
  /// Retransmit or skip one condemned segment; returns a skip record if the
  /// segment was abandoned.
  std::optional<SkippedSeq> resolve_loss(Seq seq, bool from_timeout);
  void on_rto();
  void arm_rto();

  void on_epoch_report(const EpochReport& report);
  void deliver(RecvBuffer::Result& result);

  // Audit emission helpers — no-ops (single branch) while disarmed.
  void audit_emit(audit::EventType type, Seq seq = 0, std::uint64_t a = 0,
                  std::uint64_t b = 0, std::uint64_t c = 0,
                  std::uint64_t d = 0, double x = 0.0, double y = 0.0,
                  std::uint8_t flag = 0);
  /// Emit a CwndChange event if cwnd moved relative to `before`.
  void audit_cwnd(audit::CwndCause cause, double before);
  void become_established();
  void enter_failed(FailureReason reason);
  void on_keepalive_tick();
  /// Probe-judgment interval: the configured keepalive, bounded below by
  /// the current RTO so a probe's reply has a full round trip (plus
  /// variance margin) to arrive before the next tick judges it. Without
  /// the bound, a keepalive shorter than the path RTT (satellite: 500 ms)
  /// accumulates phantom misses into a false KeepaliveTimeout.
  Duration keepalive_interval() const;
  /// Enforce max_pending_segments by shedding oldest whole unsent messages.
  void shed_pending();

  std::uint64_t now_us() const;

  CongestionController* active_cc() { return ext_cc_ ? ext_cc_ : cc_.get(); }
  const CongestionController* active_cc() const {
    return ext_cc_ ? ext_cc_ : cc_.get();
  }

  SegmentWire& wire_;
  RudpConfig cfg_;
  Role role_;
  ConnState state_ = ConnState::Closed;

  std::unique_ptr<CongestionController> cc_;
  CongestionController* ext_cc_ = nullptr;  ///< non-owning override
  RttEstimator rtt_;
  LossMonitor loss_;
  SendBuffer send_buf_;
  RecvBuffer recv_buf_;
  /// Reused across every on_data/on_skip call: a gap fill can release a
  /// large delivery backlog at once, and the scratch keeps that high-water
  /// capacity instead of reallocating it per segment.
  RecvBuffer::Result recv_scratch_;
  SkipBudget budget_;  ///< sender-side budget; tolerance = peer's advertised
  fec::FecEncoder fec_enc_;
  fec::FecDecoder fec_dec_;

  /// Unsent fragment queue. A ring buffer, not a deque: deques allocate a
  /// chunk per chunk-worth of push/pop traffic, which would break the
  /// zero-allocation steady state of the segment path.
  iq::RingQueue<PendingSegment> pending_;
  /// Skips announced via ADVANCE but not yet covered by the peer's
  /// cumulative ack; ADVANCE itself can be lost, so these are
  /// re-advertised until acknowledged (keyed by unwrapped seq).
  net::PooledMap<Seq, SkippedSeq> skip_outstanding_ =
      net::make_pooled_map<Seq, SkippedSeq>();
  TimePoint last_skip_resend_;
  Seq next_seq_ = 1;
  std::uint32_t next_msg_id_ = 1;
  std::uint32_t peer_rwnd_ = 4096;
  bool window_limited_ = false;
  bool discard_unmarked_ = false;
  int connect_attempts_ = 0;
  FailureReason failure_reason_ = FailureReason::None;
  /// Consecutive RTO expirations without forward progress; the timed-out
  /// head sequence pins the streak so separate stalls don't accumulate.
  int rto_streak_ = 0;
  Seq rto_streak_seq_ = 0;
  // Dead-peer probing: inbound activity since the last keepalive tick, and
  // whether a probe is awaiting any response.
  bool recv_activity_ = false;
  bool keepalive_probe_outstanding_ = false;
  int keepalive_miss_streak_ = 0;

  sim::Timer rto_timer_;
  sim::Timer connect_timer_;
  sim::Timer keepalive_timer_;
  sim::Timer ack_timer_;
  sim::Timer fec_flush_timer_;
  std::uint32_t unacked_arrivals_ = 0;
  std::uint64_t last_ts_to_echo_ = 0;

  RudpStats stats_;

  std::unique_ptr<audit::AuditContext> audit_;
  std::vector<Seq> audit_acked_scratch_;

  MessageFn on_message_;
  EstablishedFn on_established_;
  EpochFn on_epoch_;
  ClosedFn on_closed_;
  ErrorFn on_error_;
  SegmentTap tap_;
};

}  // namespace iq::rudp
