#include "iq/rudp/rtt_estimator.hpp"

#include <algorithm>
#include <cmath>

namespace iq::rudp {

RttEstimator::RttEstimator(const RttConfig& cfg) : cfg_(cfg) {}

void RttEstimator::add_sample(Duration rtt) {
  if (rtt.is_negative()) return;
  if (samples_ == 0) {
    srtt_ = rtt;
    rttvar_ = rtt / 2;
  } else {
    const Duration err = rtt - srtt_;
    const Duration abs_err = err.is_negative() ? -err : err;
    rttvar_ = rttvar_.scaled(1.0 - cfg_.beta) + abs_err.scaled(cfg_.beta);
    srtt_ = srtt_.scaled(1.0 - cfg_.alpha) + rtt.scaled(cfg_.alpha);
  }
  ++samples_;
  backoff_multiplier_ = 1;
}

void RttEstimator::backoff() {
  if (backoff_multiplier_ < 64) backoff_multiplier_ *= 2;
}

Duration RttEstimator::rto() const {
  Duration base = samples_ == 0
                      ? cfg_.initial_rto
                      : srtt_ + rttvar_.scaled(cfg_.k);
  base = std::clamp(base, cfg_.min_rto, cfg_.max_rto);
  Duration backed = base * backoff_multiplier_;
  return std::min(backed, cfg_.max_rto);
}

}  // namespace iq::rudp
