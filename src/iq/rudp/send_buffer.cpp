#include "iq/rudp/send_buffer.hpp"

#include <algorithm>

#include "iq/common/check.hpp"

namespace iq::rudp {

void SendBuffer::add(Outstanding o) {
  auto [it, inserted] = segments_.insert_or_assign(o.seq, std::move(o));
  if (inserted) ++inflight_;
}

SendBuffer::AckOutcome SendBuffer::on_ack(Seq cum_ack,
                                          std::span<const Seq> eacks,
                                          int dup_threshold,
                                          std::vector<Seq>* newly_acked_out) {
  AckOutcome out;

  auto evidence = [&](Outstanding& o) {
    if (!o.counted_received) {
      o.counted_received = true;
      ++out.newly_acked;
      out.newly_acked_bytes += o.payload_bytes;
      if (newly_acked_out != nullptr) newly_acked_out->push_back(o.seq);
      --inflight_;
      IQ_CHECK(inflight_ >= 0);
    }
    if (!any_evidence_ || o.seq > high_water_) {
      high_water_ = o.seq;
      any_evidence_ = true;
    }
  };

  // Selective acks: receipt evidence without removal.
  for (Seq e : eacks) {
    auto it = segments_.find(e);
    if (it == segments_.end()) continue;
    it->second.sacked = true;
    evidence(it->second);
  }

  // Cumulative ack: everything below cum_ack is received; remove it.
  while (!segments_.empty() && segments_.begin()->first < cum_ack) {
    evidence(segments_.begin()->second);
    segments_.erase(segments_.begin());
    out.cum_advanced = true;
  }

  // SACK-style loss detection: unevidenced segments sufficiently far below
  // the high-water mark are condemned (once).
  if (any_evidence_) {
    for (auto& [seq, o] : segments_) {
      if (seq + static_cast<Seq>(dup_threshold) > high_water_) break;
      if (o.counted_received || o.loss_reported) continue;
      o.loss_reported = true;
      out.lost.push_back(seq);
    }
  }
  return out;
}

Outstanding* SendBuffer::find(Seq seq) {
  auto it = segments_.find(seq);
  return it == segments_.end() ? nullptr : &it->second;
}

const Outstanding* SendBuffer::find(Seq seq) const {
  auto it = segments_.find(seq);
  return it == segments_.end() ? nullptr : &it->second;
}

bool SendBuffer::remove(Seq seq) {
  auto it = segments_.find(seq);
  if (it == segments_.end()) return false;
  if (!it->second.counted_received) {
    --inflight_;
    IQ_CHECK(inflight_ >= 0);
  }
  segments_.erase(it);
  return true;
}

Outstanding* SendBuffer::first_unacked() {
  for (auto& [seq, o] : segments_) {
    if (!o.counted_received) return &o;
  }
  return nullptr;
}

Seq SendBuffer::lowest_or(Seq fallback) const {
  if (segments_.empty()) return fallback;
  return segments_.begin()->first;
}

}  // namespace iq::rudp
