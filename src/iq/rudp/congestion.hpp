#pragma once
// Window-based congestion controllers for RUDP.
//
// LdaController (the default, per the paper: "TCP-like congestion control
// using an algorithm resembling Loss-Delay Adjustment"): additive increase
// of ~1 packet per RTT — the same average rate of increase as TCP (§3.2) —
// but a *loss-proportional* multiplicative decrease applied once per
// measuring epoch, which produces the smoother window evolution the paper
// credits for IQ-RUDP's better delay/jitter. The decrease is bounded below
// by a TCP-friendly window so the flow never takes more than a TCP-fair
// share under sustained loss.
//
// AimdController: classic Reno-style slow start + AIMD (halve per loss
// event), provided as an ablation baseline.
//
// FixedWindowController: a constant window; used for the paper's
// "application adaptation only" row, where IQ-RUDP's adaptive congestion
// window is instrumented off but metrics still flow to the application.
//
// All controllers expose scale_window(), the hook the IQ coordinator uses to
// re-adapt the transport after an application adaptation (§3.4, §3.5).

#include <memory>
#include <string>

#include "iq/common/time.hpp"

namespace iq::rudp {

class CongestionController {
 public:
  virtual ~CongestionController() = default;

  /// A cumulative/selective ack newly covered `newly_acked` segments.
  virtual void on_ack(int newly_acked, TimePoint now) = 0;
  /// Fast-retransmit-detected loss of one segment.
  virtual void on_loss(TimePoint now) = 0;
  /// Retransmission timeout.
  virtual void on_timeout(TimePoint now) = 0;
  /// Close of a loss-measuring epoch with the epoch's loss ratio.
  virtual void on_epoch(double loss_ratio, TimePoint now) = 0;
  /// The smoothed RTT, needed by per-RTT guards and TCP-friendly bounds.
  virtual void set_srtt(Duration srtt) = 0;

  /// Congestion window, in packets (fractional internally).
  virtual double cwnd() const = 0;
  /// IQ coordination hook: multiply the window by `factor` (clamped).
  virtual void scale_window(double factor) = 0;

  /// The clamp bounds every mutation must respect — the invariant auditor
  /// verifies cwnd() stays within [min_cwnd(), max_cwnd()] through every
  /// ack/loss/timeout/epoch/scale transition.
  virtual double min_cwnd() const = 0;
  virtual double max_cwnd() const = 0;

  virtual std::string name() const = 0;
};

struct LdaConfig {
  double initial_cwnd = 2.0;
  double min_cwnd = 1.0;
  double max_cwnd = 4096.0;
  double additive_per_rtt = 1.0;   ///< packets added per RTT when loss-free
  double decrease_beta = 1.0;      ///< factor = 1 - beta * loss_ratio
  double min_decrease_factor = 0.5;
  double timeout_factor = 0.5;     ///< multiplier on RTO (smoother than Reno)
  bool tcp_friendly_floor = true;  ///< never shrink below the TCP-fair window
};

class LdaController final : public CongestionController {
 public:
  explicit LdaController(const LdaConfig& cfg = {});

  void on_ack(int newly_acked, TimePoint now) override;
  void on_loss(TimePoint now) override;
  void on_timeout(TimePoint now) override;
  void on_epoch(double loss_ratio, TimePoint now) override;
  void set_srtt(Duration srtt) override { srtt_ = srtt; }
  double cwnd() const override { return cwnd_; }
  void scale_window(double factor) override;
  double min_cwnd() const override { return cfg_.min_cwnd; }
  double max_cwnd() const override { return cfg_.max_cwnd; }
  std::string name() const override { return "lda"; }

  /// TCP-throughput-equation window for the given loss ratio (packets).
  static double tcp_friendly_window(double loss_ratio);

 private:
  void clamp();

  LdaConfig cfg_;
  double cwnd_;
  Duration srtt_ = Duration::millis(100);
};

struct AimdConfig {
  double initial_cwnd = 2.0;
  double min_cwnd = 1.0;
  double max_cwnd = 4096.0;
  double initial_ssthresh = 64.0;
};

class AimdController final : public CongestionController {
 public:
  explicit AimdController(const AimdConfig& cfg = {});

  void on_ack(int newly_acked, TimePoint now) override;
  void on_loss(TimePoint now) override;
  void on_timeout(TimePoint now) override;
  void on_epoch(double loss_ratio, TimePoint now) override;
  void set_srtt(Duration srtt) override { srtt_ = srtt; }
  double cwnd() const override { return cwnd_; }
  void scale_window(double factor) override;
  double min_cwnd() const override { return cfg_.min_cwnd; }
  double max_cwnd() const override { return cfg_.max_cwnd; }
  std::string name() const override { return "aimd"; }

  double ssthresh() const { return ssthresh_; }
  bool in_slow_start() const { return cwnd_ < ssthresh_; }

 private:
  void clamp();

  AimdConfig cfg_;
  double cwnd_;
  double ssthresh_;
  Duration srtt_ = Duration::millis(100);
  TimePoint last_decrease_;
  bool decreased_once_ = false;
};

class FixedWindowController final : public CongestionController {
 public:
  explicit FixedWindowController(double window) : cwnd_(window) {}

  void on_ack(int, TimePoint) override {}
  void on_loss(TimePoint) override {}
  void on_timeout(TimePoint) override {}
  void on_epoch(double, TimePoint) override {}
  void set_srtt(Duration) override {}
  double cwnd() const override { return cwnd_; }
  void scale_window(double factor) override;
  // scale_window clamps to [1, 65536] around the configured fixed window.
  double min_cwnd() const override { return 1.0; }
  double max_cwnd() const override { return 65536.0; }
  std::string name() const override { return "fixed"; }

 private:
  double cwnd_;
};

enum class CcKind { Lda, Aimd, Fixed };

std::unique_ptr<CongestionController> make_controller(CcKind kind,
                                                      double initial_or_fixed);

}  // namespace iq::rudp
