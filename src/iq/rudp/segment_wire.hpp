#pragma once
// SegmentWire: the boundary between the RUDP protocol engine and whatever
// carries its datagrams.
//
// The engine pushes Segments out and receives Segments in; it gets its clock
// and timers from the wire's Executor. Implementations: iq/wire/sim_wire
// (simulated network), iq/wire/udp_wire (real UDP sockets via the codec),
// iq/wire/lossy_wire (failure injection for tests).

#include <functional>

#include "iq/rudp/segment.hpp"
#include "iq/sim/executor.hpp"

namespace iq::rudp {

class SegmentWire {
 public:
  virtual ~SegmentWire() = default;

  using RecvFn = std::function<void(const Segment&)>;

  /// Transmit a segment toward the peer (may be silently lost en route).
  virtual void send(const Segment& segment) = 0;
  /// Move-transmit: wires that materialize a body object (sim_wire) take
  /// ownership and skip the deep copy of eacks/skipped/attrs vectors.
  /// Default forwards to the copying overload.
  virtual void send(Segment&& segment) { send(segment); }
  /// Install the handler invoked for each segment arriving from the peer.
  virtual void set_receiver(RecvFn fn) = 0;
  /// Install a handler invoked each time an inbound datagram is rejected as
  /// corrupted (wire checksum failure / corrupted-delivery flag). Wires
  /// without a corruption path ignore it.
  using CorruptionFn = std::function<void()>;
  virtual void set_corruption_handler(CorruptionFn /*fn*/) {}
  /// Install a handler invoked each time the wire fails to transmit a
  /// segment it was handed (real-socket backends: the kernel refused the
  /// datagram — EWOULDBLOCK/ENOBUFS/EMSGSIZE). Simulated wires model loss
  /// in the network instead and ignore it. The transport counts these in
  /// RudpStats::sends_dropped (exported as NET_SENDS_DROPPED); recovery is
  /// the protocol's job — a dropped send looks like loss to the peer.
  using SendDropFn = std::function<void()>;
  virtual void set_send_drop_handler(SendDropFn /*fn*/) {}
  /// The clock/timer service this wire lives on.
  virtual sim::Executor& executor() = 0;
};

}  // namespace iq::rudp
