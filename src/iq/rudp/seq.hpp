#pragma once
// 32-bit serial sequence-number arithmetic (RFC 1982 style) and unwrapping.
//
// On the wire RUDP carries 32-bit sequence numbers; internally the connection
// works with 64-bit "unwrapped" values so ordered containers and arithmetic
// are straightforward. unwrap() maps a wire seq to the 64-bit value closest
// to a reference point, which is exact while the reordering window stays
// under 2^31 packets (always true in practice).

#include <cstdint>

namespace iq::rudp {

using WireSeq = std::uint32_t;
using Seq = std::uint64_t;  ///< unwrapped, monotonically increasing

/// a < b in serial arithmetic.
constexpr bool wire_seq_lt(WireSeq a, WireSeq b) {
  return static_cast<std::int32_t>(a - b) < 0;
}

constexpr bool wire_seq_gt(WireSeq a, WireSeq b) { return wire_seq_lt(b, a); }

/// Signed distance b - a in serial arithmetic.
constexpr std::int32_t wire_seq_diff(WireSeq b, WireSeq a) {
  return static_cast<std::int32_t>(b - a);
}

constexpr WireSeq to_wire(Seq s) { return static_cast<WireSeq>(s); }

/// Unwrap `wire` to the 64-bit sequence closest to `reference`.
Seq unwrap(WireSeq wire, Seq reference);

}  // namespace iq::rudp
