#pragma once
// Receiver-side reassembly with adaptive-reliability skips.
//
// Segments arrive out of order; the cumulative point advances over
// contiguous received-or-skipped sequences. Messages occupy contiguous
// sequence ranges, so as the point advances, per-message accumulators fill
// up; a message completes as *delivered* when all fragments were received,
// or as *dropped* when any fragment was skipped (sender ADVANCE). Messages
// therefore finalize in order — the in-order delivery RUDP promises.

#include <cstdint>
#include <functional>
#include <span>

#include "iq/common/inline_vec.hpp"
#include "iq/net/pool.hpp"
#include "iq/rudp/message.hpp"
#include "iq/rudp/seq.hpp"

namespace iq::rudp {

struct RecvSegment {
  Seq seq = 0;
  std::uint32_t msg_id = 0;
  std::uint16_t frag_index = 0;
  std::uint16_t frag_count = 1;
  std::int32_t payload_bytes = 0;
  bool marked = true;
  bool fec = false;          ///< FEC-protected class (or reconstructed)
  std::uint64_t ts_us = 0;   ///< sender timestamp of this transmission
  attr::AttrList attrs;      ///< non-empty only on the first fragment
};

class RecvBuffer {
 public:
  explicit RecvBuffer(std::uint32_t max_buffered_packets = 4096,
                      Seq initial_seq = 1);

  struct Result {
    iq::InlineVec<DeliveredMessage, 2> delivered;
    std::uint32_t dropped_messages = 0;
    bool duplicate = false;
    bool advanced = false;   ///< cumulative point moved

    /// Clear for reuse. `delivered` keeps its capacity, so a caller that
    /// passes the same Result to every on_data/on_skip call stops
    /// allocating once it has seen its largest delivery batch (a gap fill
    /// can release a whole reorder backlog at once).
    void reset();
  };

  /// One abandoned sequence, with the owning message's identity and size.
  struct SkipInfo {
    Seq seq = 0;
    std::uint32_t msg_id = 0;
    std::uint16_t frag_count = 1;
  };

  Result on_data(const RecvSegment& seg, TimePoint now);
  /// Sender abandoned these sequences (ADVANCE segment contents).
  Result on_skip(std::span<const SkipInfo> skipped, TimePoint now);

  // Allocation-free variants: fill a caller-owned Result (reset first).
  // The connection reuses one scratch Result so delivery batches stop
  // allocating once it has grown to the high-water batch size.
  void on_data(const RecvSegment& seg, TimePoint now, Result& out);
  void on_skip(std::span<const SkipInfo> skipped, TimePoint now, Result& out);

  /// Next expected sequence (the cumulative ack we advertise).
  Seq cum() const { return cum_; }
  /// True if `seq` is already accounted for: finalized below the cumulative
  /// point, buffered out of order, or pending as a sender skip. The FEC
  /// decoder's "does the group still miss this member" predicate.
  bool has(Seq seq) const {
    return seq < cum_ || buffered_.contains(seq) || skip_pending_.contains(seq);
  }
  /// Out-of-order sequences currently buffered, ascending, at most `max_n`.
  /// Inline capacity matches Segment::EackList — callers that cap max_n at
  /// 16 never allocate.
  iq::InlineVec<Seq, 16> eacks(std::size_t max_n) const;
  /// Advertised receive window, packets.
  std::uint32_t rwnd() const;

  std::uint64_t duplicates() const { return duplicates_; }
  std::uint64_t delivered_messages() const { return delivered_count_; }
  std::uint64_t dropped_messages() const { return dropped_count_; }
  std::size_t buffered() const { return buffered_.size(); }

 private:
  struct MsgAccumulator {
    std::uint16_t frag_count = 1;
    std::uint16_t received = 0;
    std::uint16_t skipped = 0;
    std::int64_t bytes = 0;
    bool marked = true;
    bool fec = false;
    std::uint64_t first_ts_us = 0;
    attr::AttrList attrs;
  };

  void advance(Result& out, TimePoint now);
  void account(Result& out, Seq seq, TimePoint now);

  std::uint32_t max_buffered_;
  Seq cum_;
  // Pooled nodes: reassembly churns these maps once per segment/message;
  // after warmup every insert is served from the arena freelist.
  net::PooledMap<Seq, RecvSegment> buffered_ =
      net::make_pooled_map<Seq, RecvSegment>();  ///< received, >= cum_
  net::PooledMap<Seq, SkipInfo> skip_pending_ =
      net::make_pooled_map<Seq, SkipInfo>();
  net::PooledMap<std::uint32_t, MsgAccumulator> accumulators_ =
      net::make_pooled_map<std::uint32_t, MsgAccumulator>();
  std::uint64_t duplicates_ = 0;
  std::uint64_t delivered_count_ = 0;
  std::uint64_t dropped_count_ = 0;
};

}  // namespace iq::rudp
