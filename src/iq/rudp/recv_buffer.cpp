#include "iq/rudp/recv_buffer.hpp"

#include "iq/common/check.hpp"

namespace iq::rudp {

RecvBuffer::RecvBuffer(std::uint32_t max_buffered_packets, Seq initial_seq)
    : max_buffered_(max_buffered_packets), cum_(initial_seq) {}

void RecvBuffer::Result::reset() {
  delivered.clear();  // InlineVec keeps its high-water capacity
  dropped_messages = 0;
  duplicate = false;
  advanced = false;
}

RecvBuffer::Result RecvBuffer::on_data(const RecvSegment& seg, TimePoint now) {
  Result out;
  on_data(seg, now, out);
  return out;
}

void RecvBuffer::on_data(const RecvSegment& seg, TimePoint now, Result& out) {
  out.reset();
  if (seg.seq < cum_ || buffered_.contains(seg.seq)) {
    ++duplicates_;
    out.duplicate = true;
    return;
  }
  if (buffered_.size() >= max_buffered_) {
    // Receive window exhausted; drop silently (sender respects rwnd, so
    // this only happens under pathological reordering).
    return;
  }
  // A late arrival for a sequence the sender abandoned supersedes the skip.
  skip_pending_.erase(seg.seq);
  buffered_.emplace(seg.seq, seg);
  advance(out, now);
}

RecvBuffer::Result RecvBuffer::on_skip(std::span<const SkipInfo> skipped,
                                       TimePoint now) {
  Result out;
  on_skip(skipped, now, out);
  return out;
}

void RecvBuffer::on_skip(std::span<const SkipInfo> skipped, TimePoint now,
                         Result& out) {
  out.reset();
  for (const SkipInfo& info : skipped) {
    if (info.seq < cum_ || buffered_.contains(info.seq)) continue;  // resolved
    skip_pending_[info.seq] = info;
  }
  advance(out, now);
}

void RecvBuffer::advance(Result& out, TimePoint now) {
  for (;;) {
    if (buffered_.contains(cum_) || skip_pending_.contains(cum_)) {
      account(out, cum_, now);
      ++cum_;
      out.advanced = true;
    } else {
      break;
    }
  }
}

void RecvBuffer::account(Result& out, Seq seq, TimePoint now) {
  if (auto it = buffered_.find(seq); it != buffered_.end()) {
    const RecvSegment& seg = it->second;
    MsgAccumulator& acc = accumulators_[seg.msg_id];
    acc.frag_count = seg.frag_count;
    acc.marked = seg.marked;
    acc.fec = acc.fec || seg.fec;
    ++acc.received;
    acc.bytes += seg.payload_bytes;
    if (seg.frag_index == 0) {
      acc.first_ts_us = seg.ts_us;
      acc.attrs = seg.attrs;
    }
    if (acc.received + acc.skipped >= acc.frag_count) {
      if (acc.skipped == 0) {
        DeliveredMessage msg;
        msg.msg_id = seg.msg_id;
        msg.bytes = acc.bytes;
        msg.marked = acc.marked;
        msg.fec = acc.fec;
        msg.first_sent =
            TimePoint::from_ns(static_cast<std::int64_t>(acc.first_ts_us) * 1000);
        msg.delivered = now;
        msg.attrs = std::move(acc.attrs);
        out.delivered.push_back(std::move(msg));
        ++delivered_count_;
      } else {
        ++out.dropped_messages;
        ++dropped_count_;
      }
      accumulators_.erase(seg.msg_id);
    }
    buffered_.erase(it);
    return;
  }

  auto sk = skip_pending_.find(seq);
  IQ_CHECK(sk != skip_pending_.end());
  const SkipInfo info = sk->second;
  skip_pending_.erase(sk);
  MsgAccumulator& acc = accumulators_[info.msg_id];
  acc.frag_count = info.frag_count;
  ++acc.skipped;
  if (acc.received + acc.skipped >= acc.frag_count) {
    ++out.dropped_messages;
    ++dropped_count_;
    accumulators_.erase(info.msg_id);
  }
}

iq::InlineVec<Seq, 16> RecvBuffer::eacks(std::size_t max_n) const {
  iq::InlineVec<Seq, 16> out;
  for (const auto& [seq, _] : buffered_) {
    if (out.size() >= max_n) break;
    out.push_back(seq);
  }
  return out;
}

std::uint32_t RecvBuffer::rwnd() const {
  return max_buffered_ - static_cast<std::uint32_t>(buffered_.size());
}

}  // namespace iq::rudp
