#include "iq/rudp/seq.hpp"

namespace iq::rudp {

Seq unwrap(WireSeq wire, Seq reference) {
  // Candidate in the same 2^32 era as the reference, then shift to whichever
  // neighbouring era is closest.
  const Seq era = reference >> 32;
  const WireSeq ref_wire = static_cast<WireSeq>(reference);
  const std::int64_t delta = static_cast<std::int32_t>(wire - ref_wire);
  const std::int64_t candidate =
      static_cast<std::int64_t>((era << 32) | ref_wire) + delta;
  return candidate < 0 ? 0 : static_cast<Seq>(candidate);
}

}  // namespace iq::rudp
