#include "iq/rudp/codec.hpp"

#include <algorithm>

namespace iq::rudp {

namespace {
constexpr std::uint8_t kFlagMarked = 0x01;
constexpr std::uint8_t kFlagAttrs = 0x02;
constexpr std::uint8_t kFlagFec = 0x04;

bool valid_type(std::uint8_t t) {
  return t >= kSegmentTypeMin && t <= kSegmentTypeMax;
}

std::optional<SegmentView> fail(DecodeStatus why, DecodeStatus* status) {
  if (status != nullptr) *status = why;
  return std::nullopt;
}
}  // namespace

std::uint32_t segment_checksum(BytesView datagram) {
  // CRC over the datagram with the checksum field zeroed, so the stored
  // value doesn't feed its own computation.
  static constexpr std::uint8_t kZeros[4] = {0, 0, 0, 0};
  // Too short to even hold the field (never produced by encode, but tests
  // may probe): checksum over what's there.
  if (datagram.size() < kChecksumOffset + 4) return crc32(datagram);
  std::uint32_t s = kCrc32Init;
  s = crc32_update(s, datagram.subspan(0, kChecksumOffset));
  s = crc32_update(s, BytesView(kZeros, 4));
  s = crc32_update(s, datagram.subspan(kChecksumOffset + 4));
  return s ^ kCrc32Init;
}

void seal_segment(Bytes& datagram) {
  const std::uint32_t c = segment_checksum(datagram);
  for (int i = 0; i < 4; ++i) {
    datagram[kChecksumOffset + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(c >> (24 - 8 * i));
  }
}

BytesView encode_segment_into(ByteWriter& w, const Segment& seg,
                              BytesView payload) {
  w.clear();
  // header_bytes() mirrors this format exactly, so one reservation covers
  // the whole datagram and the writer never reallocates.
  w.reserve(static_cast<std::size_t>(seg.header_bytes()) +
            ((seg.type == SegmentType::Data || seg.type == SegmentType::Parity)
                 ? static_cast<std::size_t>(std::max<std::int32_t>(
                       seg.payload_bytes, 0))
                 : 0));
  w.u16(kWireMagic);
  w.u8(static_cast<std::uint8_t>(seg.type));
  std::uint8_t flags = 0;
  if (seg.marked) flags |= kFlagMarked;
  if (!seg.attrs.empty()) flags |= kFlagAttrs;
  if (seg.fec_protected) flags |= kFlagFec;
  w.u8(flags);
  w.u32(0);  // checksum placeholder; sealed below once the bytes are final
  w.u32(seg.conn_id);
  w.u32(seg.seq);
  w.u32(seg.cum_ack);
  w.u32(seg.rwnd_packets);
  w.u64(seg.ts_us);
  w.u64(seg.ts_echo_us);

  switch (seg.type) {
    case SegmentType::Data:
      w.u32(seg.msg_id);
      w.u16(seg.frag_index);
      w.u16(seg.frag_count);
      w.u32(static_cast<std::uint32_t>(seg.payload_bytes));
      break;
    case SegmentType::Ack:
      w.u16(static_cast<std::uint16_t>(seg.eacks.size()));
      for (WireSeq e : seg.eacks) w.u32(e);
      break;
    case SegmentType::Advance:
      w.u16(static_cast<std::uint16_t>(seg.skipped.size()));
      for (const SkippedSeq& s : seg.skipped) {
        w.u32(s.seq);
        w.u32(s.msg_id);
        w.u16(s.frag_count);
      }
      break;
    case SegmentType::SynAck:
      w.f64(seg.recv_loss_tolerance);
      break;
    case SegmentType::Parity:
      w.u32(seg.fec_group);
      w.u32(static_cast<std::uint32_t>(seg.payload_bytes));
      w.u16(static_cast<std::uint16_t>(seg.fec_members.size()));
      for (const FecMember& m : seg.fec_members) {
        w.u32(m.seq);
        w.u32(m.msg_id);
        w.u16(m.frag_index);
        w.u16(m.frag_count);
        w.u32(static_cast<std::uint32_t>(m.payload_bytes));
        w.u8(m.attrs.empty() ? 0 : 1);
        if (!m.attrs.empty()) m.attrs.encode(w);
      }
      break;
    default:
      break;
  }

  if (!seg.attrs.empty()) seg.attrs.encode(w);

  if ((seg.type == SegmentType::Data || seg.type == SegmentType::Parity) &&
      seg.payload_bytes > 0) {
    const auto want = static_cast<std::size_t>(seg.payload_bytes);
    const std::size_t real = std::min(payload.size(), want);
    w.raw(payload.subspan(0, real));
    // Virtual remainder: zeros() skips the fill for any tail the arena
    // already guarantees zero, so steady-state virtual-payload encodes
    // write ~a header, not ~a datagram.
    w.zeros(want - real);
  }
  w.poke_u32(kChecksumOffset, segment_checksum(w.view()));
  return w.view();
}

Bytes encode_segment(const Segment& seg, BytesView payload) {
  ByteWriter w;
  encode_segment_into(w, seg, payload);
  return w.take();
}

std::optional<SegmentView> decode_segment_view(BytesView datagram,
                                               DecodeStatus* status) {
  if (status != nullptr) *status = DecodeStatus::Ok;
  ByteReader r(datagram);
  auto magic = r.u16();
  if (!magic || *magic != kWireMagic) {
    return fail(DecodeStatus::BadMagic, status);
  }
  auto type = r.u8();
  auto flags = r.u8();
  auto stored_checksum = r.u32();
  if (!type || !flags || !stored_checksum) {
    return fail(DecodeStatus::Malformed, status);
  }
  // Integrity before semantics: a flipped bit anywhere — type byte included
  // — reads as corruption, not as a different (malformed) segment.
  if (*stored_checksum != segment_checksum(datagram)) {
    return fail(DecodeStatus::BadChecksum, status);
  }
  if (!valid_type(*type)) return fail(DecodeStatus::Malformed, status);
  auto conn = r.u32();
  auto seq = r.u32();
  auto cum = r.u32();
  auto rwnd = r.u32();
  auto ts = r.u64();
  auto ts_echo = r.u64();
  if (!conn || !seq || !cum || !rwnd || !ts || !ts_echo) {
    return fail(DecodeStatus::Malformed, status);
  }

  SegmentView out;
  Segment& seg = out.segment;
  seg.type = static_cast<SegmentType>(*type);
  seg.marked = (*flags & kFlagMarked) != 0;
  seg.fec_protected = (*flags & kFlagFec) != 0;
  seg.conn_id = *conn;
  seg.seq = *seq;
  seg.cum_ack = *cum;
  seg.rwnd_packets = *rwnd;
  seg.ts_us = *ts;
  seg.ts_echo_us = *ts_echo;

  switch (seg.type) {
    case SegmentType::Data: {
      auto msg = r.u32();
      auto fi = r.u16();
      auto fc = r.u16();
      auto len = r.u32();
      if (!msg || !fi || !fc || !len) return fail(DecodeStatus::Malformed, status);
      if (*fc == 0 || *fi >= *fc) return fail(DecodeStatus::Malformed, status);
      seg.msg_id = *msg;
      seg.frag_index = *fi;
      seg.frag_count = *fc;
      seg.payload_bytes = static_cast<std::int32_t>(*len);
      break;
    }
    case SegmentType::Ack: {
      auto n = r.u16();
      if (!n) return fail(DecodeStatus::Malformed, status);
      for (std::uint16_t i = 0; i < *n; ++i) {
        auto e = r.u32();
        if (!e) return fail(DecodeStatus::Malformed, status);
        seg.eacks.push_back(*e);
      }
      break;
    }
    case SegmentType::Advance: {
      auto n = r.u16();
      if (!n) return fail(DecodeStatus::Malformed, status);
      for (std::uint16_t i = 0; i < *n; ++i) {
        auto s = r.u32();
        auto m = r.u32();
        auto fc = r.u16();
        if (!s || !m || !fc || *fc == 0) return fail(DecodeStatus::Malformed, status);
        seg.skipped.push_back(SkippedSeq{*s, *m, *fc});
      }
      break;
    }
    case SegmentType::SynAck: {
      auto tol = r.f64();
      if (!tol) return fail(DecodeStatus::Malformed, status);
      seg.recv_loss_tolerance = *tol;
      break;
    }
    case SegmentType::Parity: {
      auto group = r.u32();
      auto len = r.u32();
      auto n = r.u16();
      if (!group || !len || !n) return fail(DecodeStatus::Malformed, status);
      seg.fec_group = *group;
      seg.payload_bytes = static_cast<std::int32_t>(*len);
      for (std::uint16_t i = 0; i < *n; ++i) {
        FecMember m;
        auto s = r.u32();
        auto msg = r.u32();
        auto fi = r.u16();
        auto fc = r.u16();
        auto plen = r.u32();
        auto has_attrs = r.u8();
        if (!s || !msg || !fi || !fc || !plen || !has_attrs) {
          return fail(DecodeStatus::Malformed, status);
        }
        if (*fc == 0 || *fi >= *fc) return fail(DecodeStatus::Malformed, status);
        m.seq = *s;
        m.msg_id = *msg;
        m.frag_index = *fi;
        m.frag_count = *fc;
        m.payload_bytes = static_cast<std::int32_t>(*plen);
        if (*has_attrs != 0) {
          auto attrs = attr::AttrList::decode(r);
          if (!attrs) return fail(DecodeStatus::Malformed, status);
          m.attrs = std::move(*attrs);
        }
        seg.fec_members.push_back(std::move(m));
      }
      break;
    }
    default:
      break;
  }

  if ((*flags & kFlagAttrs) != 0) {
    auto attrs = attr::AttrList::decode(r);
    if (!attrs) return fail(DecodeStatus::Malformed, status);
    seg.attrs = std::move(*attrs);
  }

  if ((seg.type == SegmentType::Data || seg.type == SegmentType::Parity) &&
      seg.payload_bytes > 0) {
    const auto want = static_cast<std::size_t>(seg.payload_bytes);
    auto view = r.view(want);
    if (!view) return fail(DecodeStatus::Malformed, status);
    out.payload = *view;  // borrows `datagram`; the caller owns the lifetime
  }
  return out;
}

std::optional<DecodedSegment> decode_segment(BytesView datagram,
                                             DecodeStatus* status) {
  auto view = decode_segment_view(datagram, status);
  if (!view) return std::nullopt;
  DecodedSegment out;
  out.segment = std::move(view->segment);
  out.payload.assign(view->payload.begin(), view->payload.end());
  return out;
}

}  // namespace iq::rudp
