#pragma once
// Per-epoch loss-ratio measurement — the "error ratio as seen by the end
// system" that drives every adaptation in the paper.
//
// An epoch closes after `epoch_packets` data segments have been resolved
// (acknowledged or declared lost). The epoch's loss ratio
// lost / (lost + acked) is the eratio reported to callbacks, and a smoothed
// EWMA is kept for consumers that want stability.

#include <cstdint>
#include <functional>

#include "iq/common/time.hpp"

namespace iq::rudp {

struct EpochReport {
  std::uint64_t epoch = 0;
  double loss_ratio = 0.0;         ///< eratio for this epoch
  double smoothed_loss_ratio = 0.0;
  std::uint64_t acked = 0;
  std::uint64_t lost = 0;
  std::int64_t acked_payload_bytes = 0;
  Duration elapsed = Duration::zero();  ///< wall span of the epoch
  double delivered_rate_bps = 0.0;
  TimePoint at;
};

class LossMonitor {
 public:
  using EpochFn = std::function<void(const EpochReport&)>;

  explicit LossMonitor(std::uint32_t epoch_packets = 100,
                       double ewma_gain = 0.3);

  void set_epoch_handler(EpochFn fn) { on_epoch_ = std::move(fn); }

  void on_acked(std::uint32_t count, std::int64_t payload_bytes,
                TimePoint now);
  void on_lost(std::uint32_t count, TimePoint now);

  /// Drop the in-progress epoch's counters without closing the epoch. Used
  /// when a connection recovers from a blackout: the wall of outage losses
  /// would otherwise poison the first post-recovery report and keep the
  /// congestion window collapsed. Lifetime totals, the smoothed ratio and
  /// the epoch count are preserved; the dropped counts are accounted in
  /// discarded_acked()/discarded_lost() so the conservation identity
  ///   total == Σ closed-epoch counts + discards + pending
  /// holds at all times (the invariant auditor checks it).
  void reset_epoch() {
    discarded_acked_ += acked_;
    discarded_lost_ += lost_;
    ++epoch_resets_;
    acked_ = 0;
    lost_ = 0;
    acked_bytes_ = 0;
    epoch_started_ = false;
  }

  double last_loss_ratio() const { return last_ratio_; }
  double smoothed_loss_ratio() const { return smoothed_; }
  std::uint64_t epochs_closed() const { return epoch_; }
  std::uint64_t total_acked() const { return total_acked_; }
  std::uint64_t total_lost() const { return total_lost_; }
  /// Lifetime loss ratio across all epochs.
  double lifetime_loss_ratio() const;

  /// In-progress (not yet closed) epoch counters.
  std::uint64_t pending_acked() const { return acked_; }
  std::uint64_t pending_lost() const { return lost_; }
  /// Counts dropped by reset_epoch() over the monitor's lifetime.
  std::uint64_t discarded_acked() const { return discarded_acked_; }
  std::uint64_t discarded_lost() const { return discarded_lost_; }
  std::uint64_t epoch_resets() const { return epoch_resets_; }

 private:
  void resolve(TimePoint now);
  void close_epoch(TimePoint now);

  std::uint32_t epoch_packets_;
  double ewma_gain_;
  EpochFn on_epoch_;

  std::uint64_t acked_ = 0;
  std::uint64_t lost_ = 0;
  std::int64_t acked_bytes_ = 0;
  TimePoint epoch_start_;
  bool epoch_started_ = false;

  double last_ratio_ = 0.0;
  double smoothed_ = 0.0;
  std::uint64_t epoch_ = 0;
  std::uint64_t total_acked_ = 0;
  std::uint64_t total_lost_ = 0;
  std::uint64_t discarded_acked_ = 0;
  std::uint64_t discarded_lost_ = 0;
  std::uint64_t epoch_resets_ = 0;
};

}  // namespace iq::rudp
