#pragma once
// Sender-side retransmission buffer: every transmitted-but-unresolved
// segment, ordered by (unwrapped) sequence. Performs SACK-based loss
// detection: a segment is reported lost once `dup_threshold` later segments
// have receipt evidence (the SACK/FACK rule), each segment at most once —
// after a fast retransmission, only the RTO can condemn it again.

#include <cstdint>
#include <span>
#include <vector>

#include "iq/attr/list.hpp"
#include "iq/common/inline_vec.hpp"
#include "iq/common/time.hpp"
#include "iq/net/pool.hpp"
#include "iq/rudp/seq.hpp"

namespace iq::rudp {

struct Outstanding {
  Seq seq = 0;
  std::uint32_t msg_id = 0;
  std::uint16_t frag_index = 0;
  std::uint16_t frag_count = 1;
  std::int32_t payload_bytes = 0;
  bool marked = true;
  bool fec = false;              ///< FEC-protected reliability class
  bool fec_deferred = false;     ///< fast retransmit skipped once, awaiting
                                 ///< receiver-side parity recovery
  attr::AttrList attrs;          ///< first fragment carries message attrs
  TimePoint first_sent;
  TimePoint last_sent;
  int transmissions = 1;
  bool sacked = false;           ///< receipt evidence via EACK
  bool counted_received = false; ///< already counted toward newly_acked
  bool loss_reported = false;    ///< already reported lost (fast path used)
};

class SendBuffer {
 public:
  /// Record a (re)transmitted segment; seq must exceed all current entries
  /// on first add.
  void add(Outstanding o);

  struct AckOutcome {
    int newly_acked = 0;                ///< segments first evidenced received
    std::int64_t newly_acked_bytes = 0; ///< their payload bytes
    iq::InlineVec<Seq, 8> lost;         ///< newly condemned (still buffered)
    bool cum_advanced = false;
  };
  /// Process a cumulative ack + selective acks. Removes segments the
  /// cumulative ack covers; marks eacked ones; performs loss detection.
  /// When `newly_acked_out` is non-null (audit armed), the sequences first
  /// evidenced by this ack are appended to it — the per-seq view the
  /// invariant auditor cross-checks against newly_acked.
  AckOutcome on_ack(Seq cum_ack, std::span<const Seq> eacks,
                    int dup_threshold,
                    std::vector<Seq>* newly_acked_out = nullptr);

  Outstanding* find(Seq seq);
  const Outstanding* find(Seq seq) const;
  /// Abandon a segment (adaptive-reliability skip).
  bool remove(Seq seq);

  /// Lowest-seq segment with no receipt evidence; nullptr when none.
  Outstanding* first_unacked();

  /// Count of segments with no receipt evidence (the window the congestion
  /// controller constrains).
  int inflight() const { return inflight_; }
  std::size_t size() const { return segments_.size(); }
  bool empty() const { return segments_.empty(); }

  /// Lowest buffered seq; `fallback` when empty.
  Seq lowest_or(Seq fallback) const;
  /// Highest receipt-evidenced seq seen so far (+1 semantics not applied).
  Seq high_water() const { return high_water_; }

 private:
  // Pooled nodes: retransmission-buffer churn is the sender's hottest
  // map traffic and must not reach malloc at steady state.
  net::PooledMap<Seq, Outstanding> segments_ =
      net::make_pooled_map<Seq, Outstanding>();
  Seq high_water_ = 0;  ///< max seq with receipt evidence; 0 = none yet
  bool any_evidence_ = false;
  int inflight_ = 0;
};

}  // namespace iq::rudp
