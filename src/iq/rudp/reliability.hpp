#pragma once
// Adaptive-reliability policy pieces (§2.1 (3)).
//
// SkipBudget enforces the *receiver loss tolerance*: the fraction of offered
// messages the sender may abandon (skip on loss, or discard before send when
// the IQ coordinator enables send-side discard). Once the skipped share
// would exceed the advertised tolerance, unmarked traffic is handled
// reliably again — this is what keeps §3.3's undelivered percentage "within
// the loss tolerance".

#include <cstdint>
#include <unordered_set>

namespace iq::rudp {

class SkipBudget {
 public:
  explicit SkipBudget(double tolerance = 0.0) : tolerance_(tolerance) {}

  void set_tolerance(double tolerance) { tolerance_ = tolerance; }
  double tolerance() const { return tolerance_; }

  /// Count a message entering the system (called once per send_message).
  void on_message_offered() { ++offered_; }

  /// Would skipping (one more) message stay within tolerance?
  bool may_skip_message() const;

  /// Record that `msg_id` was abandoned; idempotent per message (a message
  /// with several skipped fragments counts once). Returns true if this call
  /// newly counted the message.
  bool on_message_skipped(std::uint32_t msg_id);
  /// True if this message was already counted as skipped.
  bool is_skipped(std::uint32_t msg_id) const {
    return skipped_ids_.contains(msg_id);
  }

  std::uint64_t offered() const { return offered_; }
  std::uint64_t skipped() const { return skipped_; }
  double skipped_fraction() const;

 private:
  double tolerance_;
  std::uint64_t offered_ = 0;
  std::uint64_t skipped_ = 0;
  std::unordered_set<std::uint32_t> skipped_ids_;
};

}  // namespace iq::rudp
