#include "iq/rudp/reliability.hpp"

namespace iq::rudp {

bool SkipBudget::may_skip_message() const {
  if (tolerance_ <= 0.0) return false;
  if (offered_ == 0) return false;
  return static_cast<double>(skipped_ + 1) / static_cast<double>(offered_) <=
         tolerance_;
}

bool SkipBudget::on_message_skipped(std::uint32_t msg_id) {
  auto [_, inserted] = skipped_ids_.insert(msg_id);
  if (inserted) ++skipped_;
  return inserted;
}

double SkipBudget::skipped_fraction() const {
  if (offered_ == 0) return 0.0;
  return static_cast<double>(skipped_) / static_cast<double>(offered_);
}

}  // namespace iq::rudp
