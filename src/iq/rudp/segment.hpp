#pragma once
// RUDP segment model.
//
// Follows the shape of draft-ietf-sigtran-reliable-udp-00: SYN handshake,
// sequence-numbered DATA, cumulative ACK with extended (selective) acks,
// NUL keepalive, RST teardown — extended with the paper's adaptive
// reliability: a per-segment marked/unmarked bit and an ADVANCE segment (in
// the spirit of PR-SCTP forward-TSN) that tells the receiver which unmarked
// sequence numbers the sender has abandoned.
//
// Segments exist as structs in simulation (only sizes hit the simulated
// wire) and serialize to a real byte format via codec.hpp for the UDP-socket
// backend. Payload bytes are virtual in simulation: `payload_bytes` is the
// length the wire accounts for.

#include <cstdint>
#include <string>

#include "iq/attr/list.hpp"
#include "iq/common/inline_vec.hpp"
#include "iq/common/time.hpp"
#include "iq/net/packet.hpp"
#include "iq/rudp/seq.hpp"

namespace iq::rudp {

enum class SegmentType : std::uint8_t {
  Syn = 1,
  SynAck = 2,
  Data = 3,
  Ack = 4,
  Advance = 5,
  Nul = 6,
  Rst = 7,
  Parity = 8,
};

/// Wire-valid type range — the single source of truth for codec validation
/// and fuzz tests. Keep in sync when adding segment types.
inline constexpr std::uint8_t kSegmentTypeMin =
    static_cast<std::uint8_t>(SegmentType::Syn);
inline constexpr std::uint8_t kSegmentTypeMax =
    static_cast<std::uint8_t>(SegmentType::Parity);

const char* segment_type_name(SegmentType t);

/// A sequence abandoned by the sender, with the message it belonged to and
/// that message's fragment count, so the receiver can finalize partially- or
/// fully-skipped messages as dropped exactly once.
struct SkippedSeq {
  WireSeq seq = 0;
  std::uint32_t msg_id = 0;
  std::uint16_t frag_count = 1;
  friend bool operator==(const SkippedSeq&, const SkippedSeq&) = default;
};

/// One DATA segment covered by a PARITY group: enough metadata to
/// reconstruct the segment at the receiver when it is the group's only
/// missing member (the parity payload is the XOR of the member payloads; a
/// member's attrs ride the descriptor so a recovered first fragment keeps
/// its in-band attributes).
struct FecMember {
  WireSeq seq = 0;
  std::uint32_t msg_id = 0;
  std::uint16_t frag_index = 0;
  std::uint16_t frag_count = 1;
  std::int32_t payload_bytes = 0;
  attr::AttrList attrs;
  friend bool operator==(const FecMember&, const FecMember&) = default;
};

// Small-buffer list types for the per-segment containers. Inline capacities
// are sized to the protocol's steady-state caps so segment copies through
// the sim wires and object pools never allocate: eacks spill only past 16
// out-of-order holes per ack (connections that must never spill set
// max_eacks_per_ack accordingly), skip batches past 8 abandoned sequences,
// FEC descriptors past 4 group members.
using EackList = iq::InlineVec<WireSeq, 16>;
using SkippedList = iq::InlineVec<SkippedSeq, 8>;
using FecMemberList = iq::InlineVec<FecMember, 4>;

struct Segment : net::PacketBody {
  SegmentType type = SegmentType::Data;
  std::uint32_t conn_id = 0;

  // Data.
  WireSeq seq = 0;
  std::uint32_t msg_id = 0;
  std::uint16_t frag_index = 0;
  std::uint16_t frag_count = 1;
  bool marked = true;
  /// Third reliability class: never skipped, protected by XOR parity groups;
  /// the sender defers fast retransmission to give recovery a chance.
  bool fec_protected = false;
  std::int32_t payload_bytes = 0;

  // Ack.
  WireSeq cum_ack = 0;               ///< next expected sequence
  EackList eacks;                    ///< out-of-order sequences held
  std::uint32_t rwnd_packets = 0;    ///< advertised receive window
  /// Echo of the sender timestamp that triggered this ack (µs since run
  /// start, 0 = none) — RTT measurement without Karn ambiguity.
  std::uint64_t ts_echo_us = 0;

  // Advance.
  SkippedList skipped;

  // Parity: XOR group descriptor; payload_bytes is the parity payload
  // length (the largest member payload).
  std::uint32_t fec_group = 0;
  FecMemberList fec_members;

  // Handshake.
  double recv_loss_tolerance = 0.0;  ///< SynAck: receiver's tolerance

  /// Sender clock at transmission, µs since run start (also the ts that
  /// ts_echo_us echoes back).
  std::uint64_t ts_us = 0;

  /// Optional in-band quality attributes (first fragment of a message).
  attr::AttrList attrs;

  /// Header size on the wire (excl. payload, excl. UDP/IP encapsulation).
  std::int64_t header_bytes() const;
  /// Full wire footprint: header + payload + UDP/IP.
  std::int64_t wire_bytes() const {
    return header_bytes() + payload_bytes + net::kUdpIpHeaderBytes;
  }

  std::string describe() const;
};

}  // namespace iq::rudp
