#pragma once
// Byte-level wire codec for RUDP segments.
//
// Used by the real-socket backend (iq/wire/udp_wire) and by codec round-trip
// property tests. The simulation backend carries Segment structs directly
// and only charges Segment::wire_bytes() to the links, so encode/decode stay
// off the simulation hot path.
//
// Layout (big-endian):
//   magic  u16  = 0x4951 ("IQ")
//   type   u8
//   flags  u8   bit0 = marked, bit1 = has-attrs, bit2 = fec-protected
//   conn   u32
//   seq    u32
//   cum    u32
//   rwnd   u32
//   ts     u64  (µs)
//   ts_echo u64 (µs)
//   [type-specific fields, then optional attrs, then payload]

#include <optional>

#include "iq/common/bytes.hpp"
#include "iq/rudp/segment.hpp"

namespace iq::rudp {

inline constexpr std::uint16_t kWireMagic = 0x4951;

/// Serialize. `payload` supplies real payload bytes for the socket backend;
/// when it is shorter than seg.payload_bytes the remainder is zero-filled
/// (virtual payload), when longer it is truncated.
Bytes encode_segment(const Segment& seg, BytesView payload = {});

struct DecodedSegment {
  Segment segment;
  Bytes payload;
};

/// Parse; nullopt on truncation, bad magic, or malformed fields.
std::optional<DecodedSegment> decode_segment(BytesView datagram);

}  // namespace iq::rudp
