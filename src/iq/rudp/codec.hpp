#pragma once
// Byte-level wire codec for RUDP segments.
//
// Used by the real-socket backend (iq/wire/udp_wire) and by codec round-trip
// property tests. The simulation backend carries Segment structs directly
// and only charges Segment::wire_bytes() to the links, so encode/decode stay
// off the simulation hot path.
//
// Layout (big-endian), wire format v2:
//   magic    u16  = 0x4951 ("IQ")
//   type     u8
//   flags    u8   bit0 = marked, bit1 = has-attrs, bit2 = fec-protected
//   checksum u32  CRC-32 of the datagram with this field zeroed (v2)
//   conn     u32
//   seq      u32
//   cum      u32
//   rwnd     u32
//   ts       u64  (µs)
//   ts_echo  u64 (µs)
//   [type-specific fields, then optional attrs, then payload]
//
// v1 (pre-checksum) had no checksum field; v2 receivers reject v1 datagrams
// (the CRC cannot match) — see docs/PROTOCOL.md for the versioning story.

#include <optional>

#include "iq/common/bytes.hpp"
#include "iq/rudp/segment.hpp"

namespace iq::rudp {

inline constexpr std::uint16_t kWireMagic = 0x4951;
/// Byte offset of the checksum field within a datagram.
inline constexpr std::size_t kChecksumOffset = 4;
/// Fixed header size (v2), before type-specific fields.
inline constexpr std::size_t kFixedHeaderBytes = 40;

/// CRC-32 of `datagram` with its checksum field treated as zero. Exposed so
/// tests that mutate encoded bytes can re-seal them.
std::uint32_t segment_checksum(BytesView datagram);
/// Recompute and store the checksum of an encoded datagram in place.
void seal_segment(Bytes& datagram);

/// Serialize into a caller-owned writer (checksum sealed in place) and
/// return a view of the finished datagram. The writer is cleared first, so
/// a per-connection arena writer can be reused across sends without
/// allocating: after the first encode its buffer holds the high-water
/// datagram size, and virtual-payload zero-fill is skipped for any tail the
/// arena already keeps zeroed. The returned view aliases the writer and is
/// invalidated by its next use.
///
/// `payload` supplies real payload bytes for the socket backend; when it is
/// shorter than seg.payload_bytes the remainder is zero-filled (virtual
/// payload), when longer it is truncated.
BytesView encode_segment_into(ByteWriter& w, const Segment& seg,
                              BytesView payload = {});

/// Owning convenience wrapper over encode_segment_into (tests, one-shot
/// callers).
Bytes encode_segment(const Segment& seg, BytesView payload = {});

struct DecodedSegment {
  Segment segment;
  Bytes payload;
};

/// Zero-copy decode result: `payload` aliases the datagram that was passed
/// to decode_segment_view and MUST NOT outlive or outlast mutations of it.
struct SegmentView {
  Segment segment;
  BytesView payload;
};

enum class DecodeStatus {
  Ok,
  BadMagic,     ///< not an IQ datagram (or truncated before the magic)
  BadChecksum,  ///< framed as IQ but failed the CRC — corrupted in flight
  Malformed,    ///< CRC passed but fields are invalid/truncated
};

/// Parse in place; nullopt on bad magic, checksum mismatch, or malformed
/// fields. `status` (optional) reports which, so transports can count
/// corruption rejects separately from noise. The returned payload view
/// borrows `datagram` — copy it before the datagram buffer is reused.
std::optional<SegmentView> decode_segment_view(BytesView datagram,
                                               DecodeStatus* status = nullptr);

/// Owning wrapper over decode_segment_view: copies the payload out so the
/// result is independent of the datagram buffer.
std::optional<DecodedSegment> decode_segment(BytesView datagram,
                                             DecodeStatus* status = nullptr);

}  // namespace iq::rudp
