#pragma once
// Gilbert–Elliott two-state burst loss model.
//
// The i.i.d. drop probability on net::Link models a memoryless lossy medium;
// real wireless and congested paths lose packets in *bursts*. The classic
// Gilbert–Elliott chain captures that with two states — Good (rare loss) and
// Bad (heavy loss) — and per-packet transition probabilities. Mean burst
// length is 1/p_bad_to_good packets; stationary loss ratio is
//   pi_bad * loss_bad + pi_good * loss_good,
// with pi_bad = p_g2b / (p_g2b + p_b2g).
//
// Like every stochastic component in the codebase the model is explicitly
// seeded and steps deterministically, so fault timelines replay bit-exactly.

#include <cstdint>

#include "iq/common/rng.hpp"

namespace iq::fault {

struct GilbertElliottConfig {
  double p_good_to_bad = 0.01;  ///< per-packet P(Good → Bad)
  double p_bad_to_good = 0.2;   ///< per-packet P(Bad → Good); 1/x = burst len
  double loss_good = 0.0;       ///< loss probability while Good
  double loss_bad = 0.8;        ///< loss probability while Bad
  std::uint64_t seed = 1;

  /// Long-run expected loss ratio of the chain.
  double stationary_loss_ratio() const;
};

class GilbertElliottModel {
 public:
  explicit GilbertElliottModel(const GilbertElliottConfig& cfg);

  /// Advance one packet through the chain; true = the packet is lost.
  bool lose();

  bool in_bad_state() const { return bad_; }
  std::uint64_t steps() const { return steps_; }
  std::uint64_t losses() const { return losses_; }
  std::uint64_t bursts_entered() const { return bursts_; }
  const GilbertElliottConfig& config() const { return cfg_; }

 private:
  GilbertElliottConfig cfg_;
  Rng rng_;
  bool bad_ = false;
  std::uint64_t steps_ = 0;
  std::uint64_t losses_ = 0;
  std::uint64_t bursts_ = 0;
};

}  // namespace iq::fault
