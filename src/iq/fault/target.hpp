#pragma once
// FaultTarget: the interface a FaultInjector drives.
//
// Anything that carries traffic can opt into fault injection by implementing
// this: net::Link (the simulated network path) and wire::LossyWirePair (the
// in-memory protocol-test pipe) both do. All setters are idempotent and take
// effect for traffic *after* the call; an injector flips them on the plan's
// schedule.

#include <cstdint>
#include <optional>

#include "iq/common/time.hpp"
#include "iq/fault/loss_model.hpp"

namespace iq::fault {

class FaultTarget {
 public:
  virtual ~FaultTarget() = default;

  /// Blackout: 100% loss while on (an outage / link-down window).
  virtual void set_blackout(bool on) = 0;
  /// Memoryless random loss probability.
  virtual void set_drop_probability(double p) = 0;
  /// Burst loss: install (or clear, with nullopt) a Gilbert–Elliott chain.
  virtual void set_burst_loss(const std::optional<GilbertElliottConfig>& cfg) = 0;
  /// Probability that a packet is *delivered corrupted* (bit errors the
  /// receiver's checksum must catch) instead of dropped silently.
  virtual void set_corrupt_probability(double p) = 0;
  /// Probability that a delivered packet is duplicated.
  virtual void set_duplicate_probability(double p) = 0;

  // Optional capabilities — default no-ops for targets without a serializer
  // or an adjustable path delay.
  /// Change the serialization rate (link capacity) mid-run.
  virtual void set_rate_bps(std::int64_t /*bps*/) {}
  /// Extra one-way delay added on top of the target's base propagation.
  virtual void set_extra_delay(Duration /*d*/) {}
};

}  // namespace iq::fault
