#include "iq/fault/loss_model.hpp"

#include "iq/common/check.hpp"

namespace iq::fault {

double GilbertElliottConfig::stationary_loss_ratio() const {
  const double denom = p_good_to_bad + p_bad_to_good;
  if (denom <= 0.0) return loss_good;
  const double pi_bad = p_good_to_bad / denom;
  return pi_bad * loss_bad + (1.0 - pi_bad) * loss_good;
}

GilbertElliottModel::GilbertElliottModel(const GilbertElliottConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed) {
  IQ_CHECK(cfg.p_good_to_bad >= 0.0 && cfg.p_good_to_bad <= 1.0);
  IQ_CHECK(cfg.p_bad_to_good >= 0.0 && cfg.p_bad_to_good <= 1.0);
  IQ_CHECK(cfg.loss_good >= 0.0 && cfg.loss_good <= 1.0);
  IQ_CHECK(cfg.loss_bad >= 0.0 && cfg.loss_bad <= 1.0);
}

bool GilbertElliottModel::lose() {
  ++steps_;
  // Transition first, then sample the loss in the (possibly new) state: a
  // packet that *enters* the bad state is already exposed to burst loss.
  if (bad_) {
    if (rng_.chance(cfg_.p_bad_to_good)) bad_ = false;
  } else if (rng_.chance(cfg_.p_good_to_bad)) {
    bad_ = true;
    ++bursts_;
  }
  const bool lost = rng_.chance(bad_ ? cfg_.loss_bad : cfg_.loss_good);
  if (lost) ++losses_;
  return lost;
}

}  // namespace iq::fault
