#pragma once
// FaultPlan: a scripted timeline of network disturbances.
//
// A plan is a time-ordered list of actions against numbered targets (links
// or test wires): blackout windows, link flaps, Gilbert–Elliott burst-loss
// phases, i.i.d. loss / corruption / duplication probability changes, and
// mid-run bandwidth or delay changes. Plans are plain data — build one with
// the fluent helpers, or generate a reproducible random one from a seed —
// and hand it to a FaultInjector to execute against live targets.

#include <cstdint>
#include <string>
#include <vector>

#include "iq/common/time.hpp"
#include "iq/fault/loss_model.hpp"

namespace iq::fault {

enum class FaultKind : std::uint8_t {
  Blackout,        ///< on/off outage (flag `on`)
  DropProbability, ///< i.i.d. loss probability := value
  BurstLossOn,     ///< install a Gilbert–Elliott chain (field `burst`)
  BurstLossOff,    ///< remove the chain
  Corruption,      ///< delivered-corrupted probability := value
  Duplication,     ///< duplication probability := value
  RateChange,      ///< serialization rate := rate_bps
  DelayChange,     ///< extra one-way delay := delay
};

const char* fault_kind_name(FaultKind k);

struct FaultAction {
  Duration at = Duration::zero();  ///< offset from FaultInjector::arm()
  int target = 0;                  ///< injector target index
  FaultKind kind = FaultKind::Blackout;
  bool on = false;                 ///< Blackout
  double value = 0.0;              ///< probabilities
  std::int64_t rate_bps = 0;       ///< RateChange
  Duration delay = Duration::zero();  ///< DelayChange
  GilbertElliottConfig burst;      ///< BurstLossOn

  std::string describe() const;
};

/// Knobs for FaultPlan::random(): how violent a generated timeline is.
struct RandomFaultProfile {
  Duration run_length = Duration::seconds(120);
  int blackouts = 1;
  Duration blackout_min = Duration::millis(500);
  Duration blackout_max = Duration::seconds(5);
  int bursts = 2;
  Duration burst_min = Duration::seconds(2);
  Duration burst_max = Duration::seconds(10);
  double corruption_max = 0.05;   ///< 0 disables corruption phases
  double duplication_max = 0.1;   ///< 0 disables duplication phases
  bool rate_changes = false;      ///< only meaningful for Link targets
};

class FaultPlan {
 public:
  // Fluent builders; every `at` is an offset from injector arm time.
  FaultPlan& blackout(Duration at, Duration duration, int target = 0);
  /// `cycles` down/up transitions: down for `down`, back up for `up`, ....
  FaultPlan& flap(Duration at, Duration down, Duration up, int cycles,
                  int target = 0);
  FaultPlan& burst_loss(Duration at, Duration duration,
                        const GilbertElliottConfig& cfg, int target = 0);
  FaultPlan& drop_probability(Duration at, double p, int target = 0);
  FaultPlan& corruption(Duration at, double p, int target = 0);
  FaultPlan& duplication(Duration at, double p, int target = 0);
  FaultPlan& rate_change(Duration at, std::int64_t bps, int target = 0);
  FaultPlan& delay_change(Duration at, Duration extra, int target = 0);
  FaultPlan& add(const FaultAction& action);

  /// Actions, time-ordered (ties keep insertion order).
  const std::vector<FaultAction>& actions() const { return actions_; }
  bool empty() const { return actions_.empty(); }
  std::size_t size() const { return actions_.size(); }
  /// Time of the last action (zero for an empty plan).
  Duration horizon() const;
  std::string describe() const;

  /// A reproducible random timeline: same seed + profile → same plan.
  /// Faults are spread over [10% .. 90%] of the run so the connection has
  /// time to establish before and recover after.
  static FaultPlan random(std::uint64_t seed,
                          const RandomFaultProfile& profile = {},
                          int target = 0);

 private:
  std::vector<FaultAction> actions_;
};

}  // namespace iq::fault
