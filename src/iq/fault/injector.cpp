#include "iq/fault/injector.hpp"

#include <optional>

#include "iq/common/check.hpp"

namespace iq::fault {

int FaultInjector::add_target(FaultTarget& target) {
  targets_.push_back(&target);
  state_.emplace_back();
  return static_cast<int>(targets_.size()) - 1;
}

int FaultInjector::blackout_depth(int target) const {
  return state_.at(static_cast<std::size_t>(target)).blackout_depth;
}

int FaultInjector::burst_depth(int target) const {
  return state_.at(static_cast<std::size_t>(target)).burst_depth;
}

void FaultInjector::arm(const FaultPlan& plan) {
  for (const FaultAction& action : plan.actions()) {
    IQ_CHECK(action.target >= 0 &&
             static_cast<std::size_t>(action.target) < targets_.size());
    ++scheduled_;
    exec_.schedule_after(action.at, [this, action] { apply(action); });
  }
}

void FaultInjector::apply(const FaultAction& action) {
  IQ_CHECK(action.target >= 0 &&
           static_cast<std::size_t>(action.target) < targets_.size());
  FaultTarget& t = *targets_[static_cast<std::size_t>(action.target)];
  TargetFaultState& st = state_[static_cast<std::size_t>(action.target)];
  switch (action.kind) {
    case FaultKind::Blackout:
      // Overlapping windows nest: dark while any window is open.
      if (action.on) {
        if (++st.blackout_depth == 1) t.set_blackout(true);
      } else if (st.blackout_depth > 0 && --st.blackout_depth == 0) {
        t.set_blackout(false);
      }
      break;
    case FaultKind::DropProbability:
      t.set_drop_probability(action.value);
      break;
    case FaultKind::BurstLossOn:
      // Nested phases: the newest chain config wins while any is open.
      ++st.burst_depth;
      t.set_burst_loss(action.burst);
      break;
    case FaultKind::BurstLossOff:
      if (st.burst_depth > 0 && --st.burst_depth == 0) {
        t.set_burst_loss(std::nullopt);
      }
      break;
    case FaultKind::Corruption:
      t.set_corrupt_probability(action.value);
      break;
    case FaultKind::Duplication:
      t.set_duplicate_probability(action.value);
      break;
    case FaultKind::RateChange:
      t.set_rate_bps(action.rate_bps);
      break;
    case FaultKind::DelayChange:
      t.set_extra_delay(action.delay);
      break;
  }
  ++applied_;
}

}  // namespace iq::fault
