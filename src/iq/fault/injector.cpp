#include "iq/fault/injector.hpp"

#include <optional>

#include "iq/common/check.hpp"

namespace iq::fault {

int FaultInjector::add_target(FaultTarget& target) {
  targets_.push_back(&target);
  return static_cast<int>(targets_.size()) - 1;
}

void FaultInjector::arm(const FaultPlan& plan) {
  for (const FaultAction& action : plan.actions()) {
    IQ_CHECK(action.target >= 0 &&
             static_cast<std::size_t>(action.target) < targets_.size());
    ++scheduled_;
    exec_.schedule_after(action.at, [this, action] { apply(action); });
  }
}

void FaultInjector::apply(const FaultAction& action) {
  IQ_CHECK(action.target >= 0 &&
           static_cast<std::size_t>(action.target) < targets_.size());
  FaultTarget& t = *targets_[static_cast<std::size_t>(action.target)];
  switch (action.kind) {
    case FaultKind::Blackout:
      t.set_blackout(action.on);
      break;
    case FaultKind::DropProbability:
      t.set_drop_probability(action.value);
      break;
    case FaultKind::BurstLossOn:
      t.set_burst_loss(action.burst);
      break;
    case FaultKind::BurstLossOff:
      t.set_burst_loss(std::nullopt);
      break;
    case FaultKind::Corruption:
      t.set_corrupt_probability(action.value);
      break;
    case FaultKind::Duplication:
      t.set_duplicate_probability(action.value);
      break;
    case FaultKind::RateChange:
      t.set_rate_bps(action.rate_bps);
      break;
    case FaultKind::DelayChange:
      t.set_extra_delay(action.delay);
      break;
  }
  ++applied_;
}

}  // namespace iq::fault
