#pragma once
// FaultInjector: executes a FaultPlan against live FaultTargets.
//
// The injector owns no network state — it schedules each planned action on
// the executor (offsets relative to arm() time) and applies it to the
// registered target by index. Targets are borrowed references and must
// outlive the injector's scheduled events; in practice both live for the
// whole simulation. Arm the same plan on differently-seeded targets to
// replay one disturbance timeline across a parameter sweep.

#include <cstddef>
#include <vector>

#include "iq/fault/plan.hpp"
#include "iq/fault/target.hpp"
#include "iq/sim/executor.hpp"

namespace iq::fault {

class FaultInjector {
 public:
  explicit FaultInjector(sim::Executor& exec) : exec_(exec) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Register a target; returns its index for FaultAction::target.
  int add_target(FaultTarget& target);
  std::size_t target_count() const { return targets_.size(); }

  /// Schedule every action of `plan` relative to now. May be called more
  /// than once (e.g. to chain plans); actions accumulate.
  void arm(const FaultPlan& plan);

  /// Apply one action immediately (also used by scheduled events).
  void apply(const FaultAction& action);

  std::uint64_t actions_scheduled() const { return scheduled_; }
  std::uint64_t actions_applied() const { return applied_; }

 private:
  sim::Executor& exec_;
  std::vector<FaultTarget*> targets_;
  std::uint64_t scheduled_ = 0;
  std::uint64_t applied_ = 0;
};

}  // namespace iq::fault
