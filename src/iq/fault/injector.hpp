#pragma once
// FaultInjector: executes a FaultPlan against live FaultTargets.
//
// The injector owns no network state — it schedules each planned action on
// the executor (offsets relative to arm() time) and applies it to the
// registered target by index. Targets are borrowed references and must
// outlive the injector's scheduled events; in practice both live for the
// whole simulation. Arm the same plan on differently-seeded targets to
// replay one disturbance timeline across a parameter sweep.
//
// Overlap precedence. Scripted windows can overlap (a flap cycling through
// a blackout, two burst phases sharing time); the injector resolves them
// per target:
//   * Blackout windows NEST: the target is dark while any window is open
//     (a depth counter), so an off-edge from one window cannot prematurely
//     restore a target another window still holds down.
//   * Burst-loss phases nest the same way; while nested, the most recently
//     installed Gilbert–Elliott config wins (last-install-wins), and the
//     chain is removed only when the last phase ends.
//   * Rate, delay and probability changes are level-triggered and
//     orthogonal: they apply immediately and persist through any blackout
//     or burst phase they overlap (a rate change mid-blackout is in force
//     when the blackout lifts).
// Stray off-edges (no matching on-edge) are ignored.

#include <cstddef>
#include <vector>

#include "iq/fault/plan.hpp"
#include "iq/fault/target.hpp"
#include "iq/sim/executor.hpp"

namespace iq::fault {

class FaultInjector {
 public:
  explicit FaultInjector(sim::Executor& exec) : exec_(exec) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Register a target; returns its index for FaultAction::target.
  int add_target(FaultTarget& target);
  std::size_t target_count() const { return targets_.size(); }

  /// Schedule every action of `plan` relative to now. May be called more
  /// than once (e.g. to chain plans); actions accumulate.
  void arm(const FaultPlan& plan);

  /// Apply one action immediately (also used by scheduled events).
  void apply(const FaultAction& action);

  std::uint64_t actions_scheduled() const { return scheduled_; }
  std::uint64_t actions_applied() const { return applied_; }

  /// Open blackout windows on a target (overlap bookkeeping, for tests).
  int blackout_depth(int target) const;
  /// Open burst-loss phases on a target.
  int burst_depth(int target) const;

 private:
  /// Per-target overlap bookkeeping (see precedence rules above).
  struct TargetFaultState {
    int blackout_depth = 0;
    int burst_depth = 0;
  };

  sim::Executor& exec_;
  std::vector<FaultTarget*> targets_;
  std::vector<TargetFaultState> state_;
  std::uint64_t scheduled_ = 0;
  std::uint64_t applied_ = 0;
};

}  // namespace iq::fault
