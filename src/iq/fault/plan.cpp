#include "iq/fault/plan.hpp"

#include <algorithm>
#include <sstream>

#include "iq/common/check.hpp"
#include "iq/common/rng.hpp"

namespace iq::fault {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::Blackout: return "blackout";
    case FaultKind::DropProbability: return "drop";
    case FaultKind::BurstLossOn: return "burst-on";
    case FaultKind::BurstLossOff: return "burst-off";
    case FaultKind::Corruption: return "corrupt";
    case FaultKind::Duplication: return "duplicate";
    case FaultKind::RateChange: return "rate";
    case FaultKind::DelayChange: return "delay";
  }
  return "?";
}

std::string FaultAction::describe() const {
  std::ostringstream os;
  os << "t+" << at.ms() << "ms target " << target << " "
     << fault_kind_name(kind);
  switch (kind) {
    case FaultKind::Blackout:
      os << (on ? " on" : " off");
      break;
    case FaultKind::DropProbability:
    case FaultKind::Corruption:
    case FaultKind::Duplication:
      os << " p=" << value;
      break;
    case FaultKind::BurstLossOn:
      os << " loss~" << burst.stationary_loss_ratio();
      break;
    case FaultKind::BurstLossOff:
      break;
    case FaultKind::RateChange:
      os << " " << rate_bps << "bps";
      break;
    case FaultKind::DelayChange:
      os << " +" << delay.ms() << "ms";
      break;
  }
  return os.str();
}

FaultPlan& FaultPlan::add(const FaultAction& action) {
  IQ_CHECK(action.at >= Duration::zero());
  IQ_CHECK(action.target >= 0);
  // Keep the list time-sorted; upper_bound preserves insertion order for
  // equal-time actions so plans replay deterministically.
  auto it = std::upper_bound(
      actions_.begin(), actions_.end(), action,
      [](const FaultAction& a, const FaultAction& b) { return a.at < b.at; });
  actions_.insert(it, action);
  return *this;
}

FaultPlan& FaultPlan::blackout(Duration at, Duration duration, int target) {
  IQ_CHECK(duration > Duration::zero());
  FaultAction down;
  down.at = at;
  down.target = target;
  down.kind = FaultKind::Blackout;
  down.on = true;
  add(down);
  FaultAction up = down;
  up.at = at + duration;
  up.on = false;
  return add(up);
}

FaultPlan& FaultPlan::flap(Duration at, Duration down, Duration up, int cycles,
                           int target) {
  IQ_CHECK(cycles > 0);
  Duration t = at;
  for (int i = 0; i < cycles; ++i) {
    blackout(t, down, target);
    t = t + down + up;
  }
  return *this;
}

FaultPlan& FaultPlan::burst_loss(Duration at, Duration duration,
                                 const GilbertElliottConfig& cfg, int target) {
  IQ_CHECK(duration > Duration::zero());
  FaultAction on;
  on.at = at;
  on.target = target;
  on.kind = FaultKind::BurstLossOn;
  on.burst = cfg;
  add(on);
  FaultAction off;
  off.at = at + duration;
  off.target = target;
  off.kind = FaultKind::BurstLossOff;
  return add(off);
}

FaultPlan& FaultPlan::drop_probability(Duration at, double p, int target) {
  IQ_CHECK(p >= 0.0 && p <= 1.0);
  FaultAction a;
  a.at = at;
  a.target = target;
  a.kind = FaultKind::DropProbability;
  a.value = p;
  return add(a);
}

FaultPlan& FaultPlan::corruption(Duration at, double p, int target) {
  IQ_CHECK(p >= 0.0 && p <= 1.0);
  FaultAction a;
  a.at = at;
  a.target = target;
  a.kind = FaultKind::Corruption;
  a.value = p;
  return add(a);
}

FaultPlan& FaultPlan::duplication(Duration at, double p, int target) {
  IQ_CHECK(p >= 0.0 && p <= 1.0);
  FaultAction a;
  a.at = at;
  a.target = target;
  a.kind = FaultKind::Duplication;
  a.value = p;
  return add(a);
}

FaultPlan& FaultPlan::rate_change(Duration at, std::int64_t bps, int target) {
  IQ_CHECK(bps > 0);
  FaultAction a;
  a.at = at;
  a.target = target;
  a.kind = FaultKind::RateChange;
  a.rate_bps = bps;
  return add(a);
}

FaultPlan& FaultPlan::delay_change(Duration at, Duration extra, int target) {
  IQ_CHECK(extra >= Duration::zero());
  FaultAction a;
  a.at = at;
  a.target = target;
  a.kind = FaultKind::DelayChange;
  a.delay = extra;
  return add(a);
}

Duration FaultPlan::horizon() const {
  return actions_.empty() ? Duration::zero() : actions_.back().at;
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  os << "FaultPlan{" << actions_.size() << " actions";
  for (const auto& a : actions_) os << "; " << a.describe();
  os << "}";
  return os.str();
}

FaultPlan FaultPlan::random(std::uint64_t seed,
                            const RandomFaultProfile& profile, int target) {
  Rng rng(seed);
  FaultPlan plan;
  const double run_ms = static_cast<double>(profile.run_length.ms());
  // Keep the first/last 10% quiet so the connection can establish and drain.
  const double lo = 0.1 * run_ms;
  const double hi = 0.9 * run_ms;
  auto pick_at = [&](double max_extent_ms) {
    const double span = std::max(0.0, hi - lo - max_extent_ms);
    return Duration::millis(
        static_cast<std::int64_t>(lo + rng.uniform01() * span));
  };
  auto pick_len = [&](Duration min, Duration max) {
    const double min_ms = static_cast<double>(min.ms());
    const double max_ms = static_cast<double>(max.ms());
    return Duration::millis(static_cast<std::int64_t>(
        min_ms + rng.uniform01() * std::max(0.0, max_ms - min_ms)));
  };
  for (int i = 0; i < profile.blackouts; ++i) {
    const Duration len = pick_len(profile.blackout_min, profile.blackout_max);
    plan.blackout(pick_at(static_cast<double>(len.ms())), len, target);
  }
  for (int i = 0; i < profile.bursts; ++i) {
    const Duration len = pick_len(profile.burst_min, profile.burst_max);
    GilbertElliottConfig ge;
    ge.p_good_to_bad = 0.005 + 0.02 * rng.uniform01();
    ge.p_bad_to_good = 0.1 + 0.3 * rng.uniform01();
    ge.loss_bad = 0.5 + 0.4 * rng.uniform01();
    ge.seed = rng.engine()();
    plan.burst_loss(pick_at(static_cast<double>(len.ms())), len, ge,
                    target);
  }
  // Corruption/duplication phases last 20% of the run; reserve that extent
  // when picking the start so the off-edge still lands inside the window.
  const double phase_ms = 0.2 * run_ms;
  if (profile.corruption_max > 0.0) {
    const Duration at = pick_at(phase_ms);
    plan.corruption(at, profile.corruption_max * rng.uniform01(), target);
    plan.corruption(
        at + Duration::millis(static_cast<std::int64_t>(phase_ms)), 0.0,
        target);
  }
  if (profile.duplication_max > 0.0) {
    const Duration at = pick_at(phase_ms);
    plan.duplication(at, profile.duplication_max * rng.uniform01(), target);
    plan.duplication(
        at + Duration::millis(static_cast<std::int64_t>(phase_ms)), 0.0,
        target);
  }
  if (profile.rate_changes) {
    // Halve the rate mid-run, restore near the end.
    plan.rate_change(pick_at(0.0), 10'000'000, target);
  }
  return plan;
}

}  // namespace iq::fault
