#include "iq/cm/manager.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <fstream>

#include "iq/cm/apportion.hpp"
#include "iq/common/check.hpp"
#include "iq/common/log.hpp"

namespace iq::cm {

namespace {

std::atomic<std::uint64_t> cm_dump_counter{0};

}  // namespace

const char* apportion_cause_name(ApportionCause c) {
  switch (c) {
    case ApportionCause::Join: return "join";
    case ApportionCause::Leave: return "leave";
    case ApportionCause::Weight: return "weight";
    case ApportionCause::Donation: return "donation";
    case ApportionCause::Aggregate: return "aggregate";
    case ApportionCause::Ack: return "ack";
    case ApportionCause::Loss: return "loss";
    case ApportionCause::Timeout: return "timeout";
    case ApportionCause::Epoch: return "epoch";
  }
  return "?";
}

// ---------------------------------------------------------------- FlowHandle

void FlowHandle::on_ack(int newly_acked, TimePoint now) {
  mgr_->on_flow_ack(this, newly_acked, now);
}

void FlowHandle::on_loss(TimePoint now) {
  mgr_->on_flow_loss(this, now, /*timeout=*/false);
}

void FlowHandle::on_timeout(TimePoint now) {
  mgr_->on_flow_loss(this, now, /*timeout=*/true);
}

void FlowHandle::on_epoch(double loss_ratio, TimePoint now) {
  mgr_->on_flow_epoch(this, loss_ratio, now);
}

void FlowHandle::set_srtt(Duration srtt) { mgr_->on_flow_srtt(srtt); }

double FlowHandle::max_cwnd() const { return mgr_->aggregate_max_cwnd(); }

void FlowHandle::scale_window(double factor) {
  // Donation: the coordinator shrank (or grew) *this application's* demand,
  // not the path's capacity — so reweight the flow and let the freed window
  // flow to its siblings instead of returning it to the network. The
  // aggregate is untouched.
  if (!std::isfinite(factor) || factor < 0.0) factor = 0.0;
  ++mgr_->stats_.donation_rescales;
  mgr_->set_flow_weight(this, weight_ * factor, ApportionCause::Donation);
}

void FlowHandle::set_weight(double w) {
  mgr_->set_flow_weight(this, w, ApportionCause::Weight);
}

// --------------------------------------------------------- CongestionManager

CongestionManager::CongestionManager(const CmConfig& cfg)
    : cfg_(cfg),
      cc_(std::make_unique<rudp::LdaController>(cfg_.aggregate)),
      rtt_(cfg_.rtt) {
  if (const audit::AuditConfig* env = audit::env_audit_config()) {
    enable_audit(*env);
  }
}

CongestionManager::~CongestionManager() {
  IQ_CHECK_MSG(flows_.empty(),
               "CongestionManager destroyed with flows still registered");
}

FlowHandle* CongestionManager::register_flow(double weight) {
  if (!std::isfinite(weight) || weight < 0.0) weight = 0.0;
  auto flow = std::unique_ptr<FlowHandle>(
      new FlowHandle(this, next_flow_id_++, weight));
  FlowHandle* ptr = flow.get();
  flows_.push_back(std::move(flow));
  weights_scratch_.reserve(flows_.size());
  shares_scratch_.reserve(flows_.size());
  ++stats_.flows_joined;
  audit_emit(audit::EventType::CmFlowJoin, ptr->id(), flows_.size(), 0, 0, 0,
             weight, 0.0, 0, /*record=*/true);
  reapportion(ApportionCause::Join, nullptr);
  return ptr;
}

void CongestionManager::unregister_flow(FlowHandle* flow) {
  auto it = std::find_if(
      flows_.begin(), flows_.end(),
      [flow](const std::unique_ptr<FlowHandle>& f) { return f.get() == flow; });
  IQ_CHECK_MSG(it != flows_.end(), "unregister_flow: unknown flow");
  const std::uint32_t id = flow->id();
  flows_.erase(it);
  ++stats_.flows_left;
  audit_emit(audit::EventType::CmFlowLeave, id, flows_.size(), 0, 0, 0, 0.0,
             0.0, 0, /*record=*/true);
  reapportion(ApportionCause::Leave, nullptr);
}

void CongestionManager::scale_aggregate(double factor) {
  cc_->scale_window(factor);
  ++stats_.aggregate_rescales;
  audit_emit(audit::EventType::CmAggregateScale, 0, 0, 0, 0, 0, factor,
             cc_->cwnd(), 0, /*record=*/true);
  reapportion(ApportionCause::Aggregate, nullptr);
}

void CongestionManager::on_flow_ack(FlowHandle* flow, int newly_acked,
                                    TimePoint now) {
  // All flows' acks feed the one macro-flow, so the aggregate grows at the
  // same ~1 packet/RTT a single connection would — not N packets/RTT.
  cc_->on_ack(newly_acked, now);
  reapportion(ApportionCause::Ack, flow);
}

void CongestionManager::on_flow_loss(FlowHandle* flow, TimePoint now,
                                     bool timeout) {
  // One path loss seen through several flows is one congestion signal:
  // penalize the aggregate once per dedup window, count the rest.
  const bool penalize =
      !penalty_seen_ || (now - last_penalty_) >= dedup_window();
  if (timeout) {
    ++stats_.timeouts_reported;
    if (penalize) ++stats_.timeouts_penalized; else ++stats_.timeouts_deduped;
  } else {
    ++stats_.losses_reported;
    if (penalize) ++stats_.losses_penalized; else ++stats_.losses_deduped;
  }
  if (penalize) {
    penalty_seen_ = true;
    last_penalty_ = now;
    if (timeout) cc_->on_timeout(now); else cc_->on_loss(now);
  }
  const std::uint8_t flag = static_cast<std::uint8_t>(
      (timeout ? 0x1 : 0x0) | (penalize ? 0x2 : 0x0));
  audit_emit(audit::EventType::CmLoss, 0,
             stats_.losses_reported + stats_.timeouts_reported,
             stats_.losses_penalized + stats_.timeouts_penalized,
             stats_.losses_deduped + stats_.timeouts_deduped, 0, 0.0, 0.0,
             flag, /*record=*/true);
  reapportion(timeout ? ApportionCause::Timeout : ApportionCause::Loss, flow);
}

void CongestionManager::on_flow_epoch(FlowHandle* flow, double loss_ratio,
                                      TimePoint now) {
  // Per-flow loss epochs close independently; within one dedup window they
  // are observations of the same path interval, so collapse them into a
  // single aggregate application with their mean ratio.
  ++stats_.epochs_reported;
  pending_epoch_sum_ += loss_ratio;
  ++pending_epoch_n_;
  if (epoch_seen_ && (now - last_epoch_applied_) < dedup_window()) return;
  epoch_seen_ = true;
  last_epoch_applied_ = now;
  cc_->on_epoch(pending_epoch_sum_ / static_cast<double>(pending_epoch_n_),
                now);
  pending_epoch_sum_ = 0.0;
  pending_epoch_n_ = 0;
  ++stats_.epochs_applied;
  reapportion(ApportionCause::Epoch, flow);
}

void CongestionManager::on_flow_srtt(Duration srtt) {
  // The connection hands us its smoothed estimate; fold it into the shared
  // estimator so every flow (and the dedup window) sees one path RTT.
  rtt_.add_sample(srtt);
  cc_->set_srtt(rtt_.srtt());
}

void CongestionManager::set_flow_weight(FlowHandle* flow, double weight,
                                        ApportionCause cause) {
  if (!std::isfinite(weight) || weight < 0.0) weight = 0.0;
  flow->weight_ = weight;
  reapportion(cause, flow);
}

Duration CongestionManager::dedup_window() const {
  const Duration rtt_based = rtt_.srtt().scaled(cfg_.dedup_rtt_multiple);
  return std::max(cfg_.min_dedup_window, rtt_based);
}

void CongestionManager::reapportion(ApportionCause cause, FlowHandle* exclude) {
  ++stats_.reapportions;
  const bool structural = cause == ApportionCause::Join ||
                          cause == ApportionCause::Leave ||
                          cause == ApportionCause::Weight ||
                          cause == ApportionCause::Donation ||
                          cause == ApportionCause::Aggregate;
  if (structural) ++stats_.apportion_changes;

  const std::size_t n = flows_.size();
  weights_scratch_.resize(n);
  shares_scratch_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    weights_scratch_[i] = flows_[i]->weight_;
  }
  const ApportionResult r =
      apportion(cc_->cwnd(), weights_scratch_, cfg_.share_floor,
                shares_scratch_);

  // Apply every share before notifying anyone, so a listener that pumps
  // observes a fully consistent apportionment.
  for (std::size_t i = 0; i < n; ++i) {
    const double prev = flows_[i]->share_;
    flows_[i]->share_ = shares_scratch_[i];
    // Stash "grew" in the weight scratch slot — no longer needed this pass.
    weights_scratch_[i] = (shares_scratch_[i] > prev) ? 1.0 : 0.0;
  }

  if (auditor_) {
    const bool record = cause != ApportionCause::Ack;
    audit_emit(audit::EventType::CmApportion, 0, n, 0,
               stats_.apportion_changes,
               static_cast<std::uint64_t>(std::max(0.0, r.min_share) * 1e6),
               r.sum, cc_->cwnd(), static_cast<std::uint8_t>(cause), record);
  }

  // Notify flows whose share grew — their connection may have been window
  // limited and should pump now. The triggering flow is mid-event inside
  // its own connection (which pumps on its return path), so skip it.
  for (std::size_t i = 0; i < n; ++i) {
    FlowHandle* f = flows_[i].get();
    if (f == exclude || weights_scratch_[i] == 0.0) continue;
    if (f->on_share_) f->on_share_();
  }
}

// -------------------------------------------------------------------- audit

audit::CmAuditor* CongestionManager::enable_audit(audit::AuditConfig acfg) {
  audit_cfg_ = std::move(acfg);
  recorder_ = std::make_unique<audit::FlightRecorder>(audit_cfg_.ring_capacity);
  auditor_ = std::make_unique<audit::CmAuditor>();
  audit::CmAuditor::Policy policy;
  policy.share_floor = cfg_.share_floor;
  policy.min_cwnd = cc_->min_cwnd();
  policy.max_cwnd = cc_->max_cwnd();
  auditor_->set_policy(policy);
  return auditor_.get();
}

void CongestionManager::audit_emit(audit::EventType type, std::uint64_t seq,
                                   std::uint64_t a, std::uint64_t b,
                                   std::uint64_t c, std::uint64_t d, double x,
                                   double y, std::uint8_t flag, bool record) {
  if (!auditor_) return;
  audit::Event e;
  e.seq = seq;
  e.a = a;
  e.b = b;
  e.c = c;
  e.d = d;
  e.x = x;
  e.y = y;
  e.conn_id = cfg_.id;
  e.type = type;
  e.flag = flag;
  // Per-ack apportionments are checked but not ring-recorded: they would
  // flood the recorder window with steady-state noise and evict the
  // structural events a post-mortem actually needs.
  if (record) recorder_->record(e);
  auditor_->on_event(e);
  if (auditor_->violations().size() != violations_handled_) {
    handle_violations();
  }
}

void CongestionManager::handle_violations() {
  const auto& all = auditor_->violations();
  if (audit_cfg_.dump_on_violation && dump_path_.empty()) {
    dump_path_ = dump_to_file();
  }
  while (violations_handled_ < all.size()) {
    const audit::Violation& v = all[violations_handled_++];
    log_warn("audit cm ", cfg_.id, ": invariant '", v.invariant,
             "' violated — ", v.detail,
             dump_path_.empty() ? "" : (" (dump: " + dump_path_ + ")"));
    if (audit_cfg_.on_violation) audit_cfg_.on_violation(v);
    if (audit_cfg_.fatal) {
      std::fprintf(stderr,
                   "IQ_AUDIT violation: cm %u invariant '%s' — %s\n"
                   "flight-recorder dump: %s\n",
                   cfg_.id, v.invariant.c_str(), v.detail.c_str(),
                   dump_path_.empty() ? "(no dump)" : dump_path_.c_str());
      std::abort();
    }
  }
}

std::string CongestionManager::dump_to_file() const {
  const std::uint64_t n = cm_dump_counter.fetch_add(1);
  std::string path = audit_cfg_.dump_dir.empty() ? "." : audit_cfg_.dump_dir;
  path += "/iq_cm_audit_dump_" + std::to_string(cfg_.id) + "_" +
          std::to_string(n) + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    log_warn("audit cm ", cfg_.id, ": cannot write dump to ", path);
    return "";
  }
  out << "{\"cm_id\":" << cfg_.id << ",\"violations\":[";
  bool first = true;
  for (const audit::Violation& v : auditor_->violations()) {
    if (!first) out << ',';
    first = false;
    std::string ev;
    audit::append_event_json(ev, v.event);
    out << "{\"invariant\":\"" << v.invariant << "\",\"detail\":\""
        << v.detail << "\",\"event_index\":" << v.event_index
        << ",\"event\":" << ev << '}';
  }
  out << "],\"flight_recorder\":" << recorder_->to_json() << "}\n";
  return path;
}

}  // namespace iq::cm
