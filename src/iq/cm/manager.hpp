#pragma once
// Per-destination Congestion Manager (docs/CM.md).
//
// Every RudpConnection normally probes its path alone; concurrent flows to
// the same destination then fight each other and each re-learns loss and
// RTT from scratch. Following the Congestion-Manager line of work
// (Balakrishnan et al.; Andersen et al.'s bandwidth management, PAPERS.md),
// a CongestionManager owns ONE macro-flow of shared path state per host
// pair — aggregate congestion window (an LDA controller, the paper's §3.2
// control), a shared RTT estimator, and loss-epoch statistics — and splits
// the aggregate window among the live flows by application-declared
// priority weights, with an anti-starvation floor (iq/cm/apportion.hpp).
//
// Integration: a flow joins with register_flow(), which returns a
// FlowHandle implementing rudp::CongestionController. The connection
// delegates to it via RudpConnection::set_external_congestion(): its
// cwnd() is the flow's apportioned *share*, and every ack/loss/timeout/
// epoch event funnels into the shared aggregate controller — so N flows'
// acks grow the macro-flow at the same ~1 packet/RTT a single flow would,
// and one shared path loss is penalized once (dedup window = one smoothed
// RTT). FlowHandle::scale_window() — the coordinator's adaptation hook —
// becomes a *donation*: it reweights this flow within the unchanged
// aggregate, so a down-sampling video flow hands its window to a bulk
// sibling instead of returning it to the network. scale_aggregate() is the
// macro-flow rescale (Coordinator::cm_aggregate_rescale routes there).
//
// Re-apportionment is instant on every join/leave/weight change/aggregate
// mutation, O(flows) and allocation-free in steady state (scratch arrays
// are grown only at registration; zero_alloc_test pins this with a CM
// attached). Single-threaded, like the rest of the stack.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "iq/audit/audit.hpp"
#include "iq/audit/cm_auditor.hpp"
#include "iq/audit/flight_recorder.hpp"
#include "iq/rudp/congestion.hpp"
#include "iq/rudp/rtt_estimator.hpp"

namespace iq::cm {

class CongestionManager;

/// Why shares were recomputed (CmApportion.flag).
enum class ApportionCause : std::uint8_t {
  Join = 0,
  Leave,
  Weight,     ///< set_weight (priority attribute update)
  Donation,   ///< FlowHandle::scale_window — adaptation reweights one flow
  Aggregate,  ///< scale_aggregate — macro-flow rescale
  Ack,
  Loss,
  Timeout,
  Epoch,
};

const char* apportion_cause_name(ApportionCause c);

/// One flow's registration with a CongestionManager. Implements the
/// transport's CongestionController interface so a RudpConnection can
/// delegate to it wholesale: cwnd() is the apportioned share; every
/// congestion event feeds the shared aggregate. Created by
/// CongestionManager::register_flow(), destroyed by unregister_flow().
class FlowHandle final : public rudp::CongestionController {
 public:
  void on_ack(int newly_acked, TimePoint now) override;
  void on_loss(TimePoint now) override;
  void on_timeout(TimePoint now) override;
  void on_epoch(double loss_ratio, TimePoint now) override;
  void set_srtt(Duration srtt) override;
  /// The flow's current share of the aggregate window.
  double cwnd() const override { return share_; }
  /// Donation semantics: reweight this flow, aggregate untouched.
  void scale_window(double factor) override;
  /// A share may legitimately drop toward zero when many siblings exceed
  /// the aggregate; the transport's ≥1-packet pump floor keeps it live.
  double min_cwnd() const override { return 0.0; }
  double max_cwnd() const override;
  std::string name() const override { return "cm-flow"; }

  std::uint32_t id() const { return id_; }
  double weight() const { return weight_; }
  /// Set the priority weight directly (the attr-layer path arrives here via
  /// the coordinator parsing FLOW_PRIORITY). Re-apportions immediately.
  void set_weight(double w);
  double share() const { return share_; }
  CongestionManager& manager() { return *mgr_; }
  const CongestionManager& manager() const { return *mgr_; }

  /// Fires when this flow's share *grows* because of someone else's event
  /// (a sibling left, donated, or the aggregate was rescaled) — the
  /// connection hooks RudpConnection::window_updated() here so freed window
  /// is filled immediately instead of on the next ack.
  using ShareListener = std::function<void()>;
  void set_share_listener(ShareListener fn) { on_share_ = std::move(fn); }

 private:
  friend class CongestionManager;
  FlowHandle(CongestionManager* mgr, std::uint32_t id, double weight)
      : mgr_(mgr), id_(id), weight_(weight) {}

  CongestionManager* mgr_;
  std::uint32_t id_;
  double weight_;
  double share_ = 0.0;
  ShareListener on_share_;
};

struct CmConfig {
  /// Identifies this manager in audit events (the conn_id slot).
  std::uint32_t id = 1;
  /// Aggregate macro-flow controller (LDA, §3.2). initial_cwnd is the whole
  /// aggregate — size it for the expected flow count.
  rudp::LdaConfig aggregate;
  /// Anti-starvation floor, packets per flow (when the aggregate covers it).
  double share_floor = 1.0;
  /// Shared RTT estimation across the macro-flow.
  rudp::RttConfig rtt;
  /// Loss/timeout dedup: a congestion penalty within this many smoothed
  /// RTTs of the previous one is the same path event seen through another
  /// flow — counted, but not applied to the aggregate again.
  double dedup_rtt_multiple = 1.0;
  /// Dedup window lower bound (covers the no-RTT-sample-yet start).
  Duration min_dedup_window = Duration::millis(10);
};

struct CmStats {
  std::uint64_t flows_joined = 0;
  std::uint64_t flows_left = 0;
  std::uint64_t reapportions = 0;        ///< every share recomputation
  std::uint64_t apportion_changes = 0;   ///< structural: join/leave/weight/
                                         ///< donation/aggregate rescale
  std::uint64_t losses_reported = 0;
  std::uint64_t losses_penalized = 0;
  std::uint64_t losses_deduped = 0;
  std::uint64_t timeouts_reported = 0;
  std::uint64_t timeouts_penalized = 0;
  std::uint64_t timeouts_deduped = 0;
  std::uint64_t epochs_reported = 0;
  std::uint64_t epochs_applied = 0;      ///< aggregated applications
  std::uint64_t donation_rescales = 0;
  std::uint64_t aggregate_rescales = 0;
};

/// Shared congestion state for all flows between one host pair.
/// Flows must be unregistered (and connections detached via
/// set_external_congestion(nullptr)) before the manager is destroyed.
class CongestionManager {
 public:
  explicit CongestionManager(const CmConfig& cfg = {});
  ~CongestionManager();
  CongestionManager(const CongestionManager&) = delete;
  CongestionManager& operator=(const CongestionManager&) = delete;

  /// Join the macro-flow with a priority weight; re-apportions instantly.
  FlowHandle* register_flow(double weight = 1.0);
  /// Leave (also the failure path: a failed connection's share returns to
  /// its siblings instantly); re-apportions.
  void unregister_flow(FlowHandle* flow);

  /// Macro-flow rescale: multiply the aggregate window (clamped by the
  /// aggregate controller) and re-apportion every flow.
  void scale_aggregate(double factor);

  double aggregate_cwnd() const { return cc_->cwnd(); }
  double aggregate_max_cwnd() const { return cc_->max_cwnd(); }
  Duration srtt() const { return rtt_.srtt(); }
  std::size_t flow_count() const { return flows_.size(); }
  double share_floor() const { return cfg_.share_floor; }
  const CmStats& stats() const { return stats_; }
  const CmConfig& config() const { return cfg_; }

  // --------------------------------------------------------------- audit --
  /// Arm the flight recorder + CmAuditor on this manager (docs/CM.md).
  /// Also armed process-wide via IQ_AUDIT=1, like connections.
  audit::CmAuditor* enable_audit(audit::AuditConfig acfg = {});
  /// nullptr while disarmed.
  const audit::CmAuditor* auditor() const { return auditor_.get(); }
  const audit::FlightRecorder* recorder() const { return recorder_.get(); }

 private:
  friend class FlowHandle;

  void on_flow_ack(FlowHandle* flow, int newly_acked, TimePoint now);
  void on_flow_loss(FlowHandle* flow, TimePoint now, bool timeout);
  void on_flow_epoch(FlowHandle* flow, double loss_ratio, TimePoint now);
  void on_flow_srtt(Duration srtt);
  void set_flow_weight(FlowHandle* flow, double weight, ApportionCause cause);

  Duration dedup_window() const;
  /// Recompute every share from the current aggregate and weights, then
  /// notify grown flows (except `exclude`, whose connection is mid-event
  /// and pumps on its own return path).
  void reapportion(ApportionCause cause, FlowHandle* exclude);
  void audit_emit(audit::EventType type, std::uint64_t seq, std::uint64_t a,
                  std::uint64_t b, std::uint64_t c, std::uint64_t d,
                  double x, double y, std::uint8_t flag, bool record);
  void handle_violations();
  std::string dump_to_file() const;

  CmConfig cfg_;
  std::unique_ptr<rudp::CongestionController> cc_;  ///< the aggregate
  rudp::RttEstimator rtt_;
  std::vector<std::unique_ptr<FlowHandle>> flows_;
  std::uint32_t next_flow_id_ = 1;

  // Apportionment scratch — reserved at registration so the per-ack
  // recompute never allocates.
  std::vector<double> weights_scratch_;
  std::vector<double> shares_scratch_;

  // Loss/timeout dedup clock.
  bool penalty_seen_ = false;
  TimePoint last_penalty_;

  // Epoch aggregation: flow epoch reports within one dedup window collapse
  // into a single aggregate on_epoch with their mean loss ratio.
  bool epoch_seen_ = false;
  TimePoint last_epoch_applied_;
  double pending_epoch_sum_ = 0.0;
  std::uint64_t pending_epoch_n_ = 0;

  CmStats stats_;

  audit::AuditConfig audit_cfg_;
  std::unique_ptr<audit::FlightRecorder> recorder_;
  std::unique_ptr<audit::CmAuditor> auditor_;
  std::size_t violations_handled_ = 0;
  std::string dump_path_;
};

}  // namespace iq::cm
