#include "iq/cm/apportion.hpp"

#include <algorithm>

#include "iq/common/check.hpp"

namespace iq::cm {

ApportionResult apportion(double aggregate, std::span<const double> weights,
                          double floor, std::span<double> shares_out) {
  IQ_CHECK(weights.size() == shares_out.size());
  ApportionResult r;
  const std::size_t n = weights.size();
  if (n == 0) return r;

  const double nd = static_cast<double>(n);
  if (aggregate < floor * nd) {
    // Degenerate regime: the window cannot cover every floor. An equal split
    // keeps conservation exact and starves nobody relative to anyone else.
    const double each = aggregate / nd;
    std::fill(shares_out.begin(), shares_out.end(), each);
    r.sum = aggregate;
    r.min_share = each;
    return r;
  }

  double total_w = 0.0;
  for (double w : weights) total_w += std::max(w, 0.0);
  const double surplus = aggregate - floor * nd;
  r.min_share = aggregate;  // running min below
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = std::max(weights[i], 0.0);
    // total_w == 0 (all weights zero): the surplus splits equally.
    const double extra = total_w > 0.0 ? surplus * (w / total_w) : surplus / nd;
    shares_out[i] = floor + extra;
    sum += shares_out[i];
    r.min_share = std::min(r.min_share, shares_out[i]);
  }
  // Pin conservation tight: rounding drift in the proportional terms is
  // absorbed by the largest share, then the result is re-summed so callers
  // (and the auditor) see the true total, not the intended one.
  const double drift = aggregate - sum;
  if (drift != 0.0) {
    auto largest = std::max_element(shares_out.begin(), shares_out.end());
    *largest += drift;
    sum = 0.0;
    r.min_share = aggregate;
    for (double s : shares_out) {
      sum += s;
      r.min_share = std::min(r.min_share, s);
    }
  }
  r.sum = sum;
  return r;
}

}  // namespace iq::cm
