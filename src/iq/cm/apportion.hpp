#pragma once
// Weighted apportionment of an aggregate congestion window (docs/CM.md).
//
// Pure policy, separated from the CongestionManager so it can be property
// tested in isolation: given the macro-flow's aggregate window and the live
// flows' priority weights, compute each flow's share such that
//   * conservation: the shares sum to exactly the aggregate (the auditor's
//     share-conservation invariant is an equality, not a bound);
//   * anti-starvation: every flow gets at least min(floor, aggregate / n)
//     packets regardless of its weight — a zero-weight flow still drains;
//   * proportionality: window above the floors is split w_i / Σw;
//   * determinism: same inputs, bit-identical outputs (no internal state).

#include <span>

namespace iq::cm {

struct ApportionResult {
  double sum = 0.0;        ///< Σ shares (== aggregate when n > 0)
  double min_share = 0.0;  ///< smallest share granted
};

/// Split `aggregate` across `weights.size()` flows into `shares_out`
/// (same length, caller-provided — the hot path must not allocate).
/// Negative weights are treated as zero. When the aggregate cannot cover
/// every floor, it degrades to an equal split (aggregate / n).
ApportionResult apportion(double aggregate, std::span<const double> weights,
                          double floor, std::span<double> shares_out);

}  // namespace iq::cm
