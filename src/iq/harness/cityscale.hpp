#pragma once
// City-scale fan-out scenario: one IQ-ECho publisher, thousands of
// subscribers, on the sharded simulator.
//
// Topology (application-level multicast, the shape of the paper's MBone
// experiments scaled up):
//
//   hub group (shard A)          site group s (shard B)
//   ┌──────────┐  trunk, portal  ┌─────────┐      ┌────────┐ access ┌─────┐
//   │ publisher ├────────────────► repeater├──────┤ router ├────────┤ sub │
//   └──────────┘  ≥ lookahead    └─────────┘ back └────────┘  ...   └─────┘
//
// Every group (the hub plus each site) owns its own Network and pools on
// its group's Simulator; the only cross-group channel is the trunk through
// a wire::ShardPortal, whose latency is the ShardedSim lookahead bound.
// The publisher streams frames sized by an MboneTrace member count; each
// site repeater fans the frame out to its subscribers over per-subscriber
// RUDP connections with heterogeneous access links. Site membership is
// churned by a per-site MboneTrace via workload::GroupMembership; each
// fan-out flow adapts resolution from error-ratio threshold callbacks
// (coordinated or uncoordinated — the paper's comparison, in aggregate),
// optionally under a per-site congestion manager.
//
// Determinism: the group set, all identities (node ids, ports, seeds,
// rates) and all per-group schedules are independent of the shard count,
// so results — including the FNV-1a digest over every per-subscriber
// record — are bit-identical at any shard count, threaded or inline.
// ci.sh --scale pins exactly that.

#include <cstdint>
#include <memory>
#include <vector>

#include "iq/core/coordinator.hpp"
#include "iq/sim/sharded.hpp"

namespace iq::harness {

struct CityScaleConfig {
  std::size_t sites = 64;
  std::size_t subs_per_site = 160;  ///< 64 × 160 = 10240 subscriber flows
  std::size_t shards = 1;
  bool threaded = false;  ///< worker threads per shard (false: inline lockstep)

  core::CoordinationMode mode = core::CoordinationMode::Coordinated;
  /// Attach every site's fan-out flows to a per-site CongestionManager
  /// (shared repeater-uplink state, docs/CM.md).
  bool attach_cm = false;

  Duration sim_time = Duration::seconds(20);
  Duration drain_time = Duration::seconds(2);  ///< publisher stops, net drains
  double publisher_fps = 10.0;
  std::int64_t bytes_per_member = 150;  ///< trunk frame = member count × this
  std::int64_t min_fanout_bytes = 256;
  Duration deadline = Duration::millis(250);  ///< frames-on-time budget

  Duration trunk_latency = Duration::millis(10);  ///< = lookahead bound
  std::int64_t trunk_rate_bps = 50'000'000;
  std::int64_t site_backbone_bps = 100'000'000;

  Duration churn_interval = Duration::millis(500);
  std::uint64_t trace_seed = 0x1b0e5;

  double adapt_upper = 0.05;  ///< error-ratio threshold: shrink resolution
  double adapt_lower = 0.01;  ///< error-ratio threshold: grow resolution
};

struct CityScaleResult {
  std::uint64_t flows = 0;             ///< subscriber fan-out connections
  std::uint64_t frames_published = 0;  ///< trunk submits (ticks × sites)
  std::uint64_t fanout_forwarded = 0;
  std::uint64_t fanout_delivered = 0;
  std::uint64_t fanout_on_time = 0;
  std::uint64_t fanout_discarded = 0;  ///< shed by coordination/backpressure
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;

  double on_time_ratio = 0.0;    ///< on_time / delivered
  double delivery_ratio = 0.0;   ///< delivered / forwarded
  double mean_latency_ms = 0.0;  ///< publish → subscriber delivery
  /// Jain fairness over per-subscriber access-link utilization
  /// (delivered bits / access rate), across subscribers that ever received.
  double jain_utilization = 0.0;
  double goodput_mbps = 0.0;  ///< aggregate subscriber goodput
  double mean_scale = 0.0;    ///< mean final resolution scale across subs

  std::uint64_t events_executed = 0;
  std::uint64_t parcels_delivered = 0;
  std::uint64_t epochs = 0;

  /// FNV-1a over every per-subscriber record (plus per-site and aggregate
  /// counters) in canonical order — the bit-identical-across-shard-counts
  /// witness.
  std::uint64_t digest = 0;
};

class CityScale {
 public:
  explicit CityScale(const CityScaleConfig& cfg);
  ~CityScale();
  CityScale(const CityScale&) = delete;
  CityScale& operator=(const CityScale&) = delete;

  /// Run to sim_time + drain_time and collect.
  CityScaleResult run();
  /// Step the clock (for alloc-window instrumentation in benches).
  void run_for(Duration d) { sharded_->run_for(d); }
  CityScaleResult collect() const;

  sim::ShardedSim& sharded() { return *sharded_; }

 private:
  struct Hub;
  struct Site;
  void build_hub();
  void build_site(std::size_t s);
  void start();

  CityScaleConfig cfg_;
  std::unique_ptr<sim::ShardedSim> sharded_;
  std::uint32_t hub_group_ = 0;
  std::unique_ptr<Hub> hub_;
  std::vector<std::unique_ptr<Site>> sites_;
};

/// Build, run, tear down.
CityScaleResult run_cityscale(const CityScaleConfig& cfg);

/// Default shard count for city-scale runs: IQ_HARNESS_THREADS when set
/// (the same override the experiment runner honors, so CI forces serial and
/// sharded runs on any machine), else hardware concurrency, else 1.
std::size_t cityscale_shards();

}  // namespace iq::harness
