#include "iq/harness/experiment.hpp"

#include <memory>

#include "iq/common/check.hpp"
#include "iq/echo/sink.hpp"
#include "iq/net/sinks.hpp"
#include "iq/sim/timer.hpp"
#include "iq/tcp/tcp_source.hpp"
#include "iq/wire/sim_wire.hpp"
#include "iq/workload/cbr_source.hpp"
#include "iq/workload/vbr_source.hpp"

namespace iq::harness {

namespace {
constexpr std::uint16_t kAppPort = 1000;
constexpr std::uint16_t kCrossPort = 2000;
constexpr std::uint32_t kAppFlow = 1;
constexpr std::uint32_t kCbrFlow = 900;
constexpr std::uint32_t kVbrFlow = 901;
constexpr std::uint32_t kTcpCrossFlow = 902;
}  // namespace

SchemeSpec SchemeSpec::tcp() {
  return SchemeSpec{.label = "TCP", .use_tcp = true};
}

SchemeSpec SchemeSpec::rudp() {
  return SchemeSpec{.label = "RUDP",
                    .cc = rudp::CcKind::Lda,
                    .mode = core::CoordinationMode::Uncoordinated};
}

SchemeSpec SchemeSpec::iq_rudp() {
  return SchemeSpec{.label = "IQ-RUDP",
                    .cc = rudp::CcKind::Lda,
                    .mode = core::CoordinationMode::Coordinated};
}

SchemeSpec SchemeSpec::iq_rudp_no_cond() {
  SchemeSpec s = iq_rudp();
  s.label = "IQ-RUDP w/o ADAPT_COND";
  s.enable_cond = false;
  return s;
}

SchemeSpec SchemeSpec::app_only(double) {
  return SchemeSpec{.label = "App adaptation only",
                    .cc = rudp::CcKind::Fixed,
                    .mode = core::CoordinationMode::Uncoordinated};
}

namespace {

/// Everything a running scenario owns; kept alive for the run's duration.
struct Scenario {
  sim::Simulator sim;
  net::Network network{sim};
  std::unique_ptr<net::Dumbbell> dumbbell;

  workload::MboneTrace trace;
  std::unique_ptr<workload::FrameSchedule> app_schedule;
  std::unique_ptr<workload::FrameSchedule> vbr_schedule;

  // Cross traffic.
  net::CountingSink cbr_sink;
  net::CountingSink vbr_sink;
  std::unique_ptr<workload::CbrSource> cbr;
  std::unique_ptr<workload::VbrSource> vbr;
  std::unique_ptr<tcp::TcpConnection> tcp_cross_snd;
  std::unique_ptr<tcp::TcpConnection> tcp_cross_rcv;
  std::unique_ptr<tcp::BulkTcpSource> tcp_cross_bulk;

  // RUDP app flow.
  std::unique_ptr<wire::SimWire> wire_snd;
  std::unique_ptr<wire::SimWire> wire_rcv;
  std::unique_ptr<core::IqRudpConnection> conn_snd;
  std::unique_ptr<core::IqRudpConnection> conn_rcv;
  std::unique_ptr<echo::EventChannel> chan_snd;
  std::unique_ptr<echo::EventChannel> chan_rcv;
  std::unique_ptr<echo::AdaptiveSource> source;
  std::unique_ptr<echo::MetricSink> sink;

  // TCP app flow.
  std::unique_ptr<tcp::TcpConnection> tcp_snd;
  std::unique_ptr<tcp::TcpConnection> tcp_rcv;
  std::unique_ptr<tcp::TcpMessageStream> tcp_stream;
  std::unique_ptr<sim::PeriodicTask> tcp_frames;
  std::uint64_t tcp_frames_sent = 0;

  stats::MessageMetrics metrics;
  stats::TimeSeries jitter{"jitter_ms"};
  stats::TimeSeries cwnd{"cwnd_pkts"};
  std::unique_ptr<sim::PeriodicTask> cwnd_sampler;

  std::uint64_t epochs = 0;
  double max_epoch_loss = 0.0;
  double sum_epoch_loss = 0.0;
  stats::InterarrivalTracker pkt_arrivals;

  explicit Scenario(const ExperimentConfig& cfg)
      : trace(workload::MboneTraceConfig{.seed = cfg.trace_seed}) {}
};

void start_cross_traffic(Scenario& s, const ExperimentConfig& cfg) {
  auto& db = *s.dumbbell;
  if (cfg.cbr_rate_bps > 0) {
    db.right(1).bind(kCrossPort, &s.cbr_sink);
    workload::CbrConfig cc;
    cc.rate_bps = cfg.cbr_rate_bps;
    cc.flow = kCbrFlow;
    cc.src_port = kCrossPort;
    cc.dst_port = kCrossPort;
    s.cbr = std::make_unique<workload::CbrSource>(s.network, db.left(1),
                                                  db.right(1), cc);
    s.sim.at(TimePoint::zero() + cfg.cross_start, [&s] { s.cbr->start(); });
  }
  if (cfg.vbr_cross) {
    s.vbr_schedule = std::make_unique<workload::FrameSchedule>(
        s.trace, cfg.vbr_bytes_per_member);
    db.right(2).bind(kCrossPort, &s.vbr_sink);
    workload::VbrConfig vc;
    vc.frames_per_sec = cfg.vbr_frames_per_sec;
    vc.flow = kVbrFlow;
    vc.src_port = kCrossPort;
    vc.dst_port = kCrossPort;
    s.vbr = std::make_unique<workload::VbrSource>(
        s.network, db.left(2), db.right(2), *s.vbr_schedule, vc);
    s.sim.at(TimePoint::zero() + cfg.cross_start, [&s] { s.vbr->start(); });
  }
  if (cfg.tcp_cross) {
    tcp::TcpConfig tc;
    tc.conn_id = 77;
    s.tcp_cross_snd = std::make_unique<tcp::TcpConnection>(
        s.network, net::Endpoint{db.left(1).id(), kCrossPort + 1},
        net::Endpoint{db.right(1).id(), kCrossPort + 1}, kTcpCrossFlow, tc,
        tcp::TcpRole::Client);
    s.tcp_cross_rcv = std::make_unique<tcp::TcpConnection>(
        s.network, net::Endpoint{db.right(1).id(), kCrossPort + 1},
        net::Endpoint{db.left(1).id(), kCrossPort + 1}, kTcpCrossFlow, tc,
        tcp::TcpRole::Server);
    s.tcp_cross_rcv->listen();
    s.tcp_cross_bulk = std::make_unique<tcp::BulkTcpSource>(*s.tcp_cross_snd);
    s.sim.at(TimePoint::zero() + cfg.cross_start, [&s] {
      s.tcp_cross_snd->connect();
      s.tcp_cross_bulk->start();
    });
  }
}

void build_rudp_flow(Scenario& s, const ExperimentConfig& cfg) {
  auto& db = *s.dumbbell;
  const net::Endpoint snd_ep{db.left(0).id(), kAppPort};
  const net::Endpoint rcv_ep{db.right(0).id(), kAppPort};
  s.wire_snd = std::make_unique<wire::SimWire>(s.network, snd_ep, rcv_ep,
                                               kAppFlow);
  s.wire_rcv = std::make_unique<wire::SimWire>(s.network, rcv_ep, snd_ep,
                                               kAppFlow);

  rudp::RudpConfig rc;
  rc.conn_id = 1;
  rc.cc_kind = cfg.scheme.cc;
  rc.loss_epoch_packets = cfg.loss_epoch_packets;
  rc.initial_cwnd = cfg.initial_cwnd;
  rc.fixed_cwnd = cfg.fixed_cwnd;
  rudp::RudpConfig rc_rcv = rc;
  rc_rcv.recv_loss_tolerance = cfg.recv_loss_tolerance;

  core::CoordinatorConfig cc;
  cc.mode = cfg.scheme.mode;
  cc.enable_cond_compensation = cfg.scheme.enable_cond;
  cc.enable_conflict_scheme = cfg.scheme.enable_conflict;
  cc.enable_overreaction_scheme = cfg.scheme.enable_overreaction;
  cc.rescale_on_frequency = cfg.scheme.rescale_on_frequency;

  s.conn_snd = std::make_unique<core::IqRudpConnection>(
      *s.wire_snd, rc, rudp::Role::Client, cc);
  s.conn_rcv = std::make_unique<core::IqRudpConnection>(
      *s.wire_rcv, rc_rcv, rudp::Role::Server, cc);

  s.chan_snd = std::make_unique<echo::EventChannel>("viz", *s.conn_snd);
  s.chan_rcv = std::make_unique<echo::EventChannel>("viz", *s.conn_rcv);
  s.sink = std::make_unique<echo::MetricSink>(
      *s.chan_rcv, s.metrics, cfg.collect_jitter_series ? &s.jitter : nullptr);

  if (cfg.fixed_frame_bytes == 0) {
    s.app_schedule = std::make_unique<workload::FrameSchedule>(
        s.trace, cfg.trace_bytes_per_member);
  }
  echo::AdaptiveSourceConfig sc;
  sc.frame_rate = cfg.frame_rate;
  sc.total_frames = cfg.total_frames;
  sc.fixed_frame_bytes = cfg.fixed_frame_bytes;
  sc.adaptation = cfg.adaptation;
  sc.upper_threshold = cfg.upper_threshold;
  sc.lower_threshold = cfg.lower_threshold;
  sc.adapt_granularity = cfg.adapt_granularity;
  sc.attach_cond = cfg.attach_cond;
  sc.marking = cfg.marking;
  sc.resolution = cfg.resolution;
  sc.firing = cfg.firing;
  sc.seed = cfg.seed;
  s.source = std::make_unique<echo::AdaptiveSource>(
      *s.chan_snd, s.app_schedule.get(), sc, &s.metrics);

  // Packet-level arrival tracking at the receiver (paper Table 1/2 metric).
  s.conn_rcv->transport().set_segment_tap(
      [&s](rudp::RudpConnection::TapDirection dir, const rudp::Segment& seg) {
        if (dir == rudp::RudpConnection::TapDirection::In &&
            seg.type == rudp::SegmentType::Data) {
          s.pkt_arrivals.arrival(s.sim.now());
        }
      });
  s.conn_snd->set_epoch_observer([&s](const rudp::EpochReport& r) {
    ++s.epochs;
    s.max_epoch_loss = std::max(s.max_epoch_loss, r.loss_ratio);
    s.sum_epoch_loss += r.loss_ratio;
  });
  s.conn_rcv->listen();
  s.conn_snd->set_established_handler([&s] { s.source->start(); });
  s.conn_snd->connect();

  if (cfg.collect_cwnd_series) {
    s.cwnd_sampler = std::make_unique<sim::PeriodicTask>(
        s.sim, Duration::millis(100), [&s] {
          s.cwnd.add(s.sim.now(),
                     s.conn_snd->transport().congestion().cwnd());
        });
    s.cwnd_sampler->start();
  }
}

void build_tcp_flow(Scenario& s, const ExperimentConfig& cfg) {
  auto& db = *s.dumbbell;
  tcp::TcpConfig tc;
  tc.conn_id = 1;
  s.tcp_snd = std::make_unique<tcp::TcpConnection>(
      s.network, net::Endpoint{db.left(0).id(), kAppPort},
      net::Endpoint{db.right(0).id(), kAppPort}, kAppFlow, tc,
      tcp::TcpRole::Client);
  s.tcp_rcv = std::make_unique<tcp::TcpConnection>(
      s.network, net::Endpoint{db.right(0).id(), kAppPort},
      net::Endpoint{db.left(0).id(), kAppPort}, kAppFlow, tc,
      tcp::TcpRole::Server);
  s.tcp_stream = std::make_unique<tcp::TcpMessageStream>(*s.tcp_snd);

  s.tcp_rcv->set_data_packet_observer(
      [&s](TimePoint now) { s.pkt_arrivals.arrival(now); });
  // Receiver: stream offsets back into per-message records.
  s.tcp_rcv->set_delivered_handler(
      [&s](std::uint64_t offset, TimePoint now) {
        s.tcp_stream->on_delivered(offset, now);
      });
  s.tcp_stream->set_message_handler(
      [&s](std::uint32_t, std::int64_t bytes, TimePoint now) {
        stats::MessageRecord rec;
        rec.arrival = now;
        rec.bytes = bytes;
        rec.tagged = true;
        s.metrics.on_message(rec);
      });

  auto frame_bytes = [&s, &cfg]() -> std::int64_t {
    if (cfg.fixed_frame_bytes > 0) return cfg.fixed_frame_bytes;
    const Duration elapsed = s.sim.now() - TimePoint::zero();
    return static_cast<std::int64_t>(s.trace.group_at_time(elapsed)) *
           cfg.trace_bytes_per_member;
  };

  const bool asap = cfg.frame_rate <= 0;
  const Duration interval =
      asap ? Duration::millis(1)
           : Duration::from_seconds(1.0 / cfg.frame_rate);
  s.tcp_frames = std::make_unique<sim::PeriodicTask>(
      s.sim, interval, [&s, frame_bytes, asap, &cfg] {
        if (s.tcp_frames_sent >= cfg.total_frames) {
          s.tcp_frames->stop();
          return;
        }
        if (!s.tcp_snd->established()) return;
        if (asap) {
          // Keep a modest backlog so TCP is congestion-limited, like the
          // RUDP ASAP source.
          while (s.tcp_frames_sent < cfg.total_frames &&
                 s.tcp_snd->unacked_bytes() < 64 * 1400) {
            s.tcp_stream->send_message(frame_bytes());
            ++s.tcp_frames_sent;
            s.metrics.offered();
          }
        } else {
          s.tcp_stream->send_message(frame_bytes());
          ++s.tcp_frames_sent;
          s.metrics.offered();
        }
      });

  s.tcp_rcv->listen();
  s.tcp_snd->set_established_handler([&s] {
    s.metrics.start(s.sim.now());
    s.tcp_frames->start(/*fire_now=*/true);
  });
  s.tcp_snd->connect();
}

bool workload_finished(const Scenario& s, const ExperimentConfig& cfg) {
  if (cfg.scheme.use_tcp) {
    return s.tcp_frames_sent >= cfg.total_frames && s.tcp_snd->send_idle();
  }
  return s.source->done() && s.conn_snd->transport().send_idle();
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  Scenario s(cfg);
  s.dumbbell = std::make_unique<net::Dumbbell>(s.network, cfg.net);

  start_cross_traffic(s, cfg);
  if (cfg.scheme.use_tcp) {
    build_tcp_flow(s, cfg);
  } else {
    build_rudp_flow(s, cfg);
  }

  const TimePoint deadline = TimePoint::zero() + cfg.max_sim_time;
  bool completed = false;
  while (s.sim.now() < deadline) {
    s.sim.run_for(Duration::millis(200));
    if (workload_finished(s, cfg)) {
      completed = true;
      break;
    }
  }
  // Let in-flight data land (one extra RTT's worth of events).
  s.sim.run_for(cfg.net.path_rtt * 4);

  ExperimentResult result;
  result.summary = s.metrics.summary();
  result.completed = completed;
  result.sim_seconds = s.sim.now().to_seconds();
  result.events_executed = s.sim.events_executed();
  if (!cfg.scheme.use_tcp) {
    result.rudp = s.conn_snd->transport().stats();
    // Receiver-side delivery/drop counters live on the other endpoint.
    result.rudp.messages_delivered =
        s.conn_rcv->transport().stats().messages_delivered;
    result.rudp.messages_dropped =
        s.conn_rcv->transport().stats().messages_dropped;
    result.coordination = s.conn_snd->coordinator().stats();
    result.app_lifetime_loss_ratio =
        s.conn_snd->transport().lifetime_loss_ratio();
    result.epochs = s.epochs;
    result.max_epoch_loss = s.max_epoch_loss;
    result.mean_epoch_loss =
        s.epochs > 0 ? s.sum_epoch_loss / static_cast<double>(s.epochs) : 0.0;
  }
  result.pkt_interarrival_s = s.pkt_arrivals.mean_seconds();
  result.pkt_jitter_s = s.pkt_arrivals.jitter_seconds();
  result.jitter_series = std::move(s.jitter);
  result.cwnd_series = std::move(s.cwnd);
  return result;
}

}  // namespace iq::harness
