#include "iq/harness/json.hpp"

#include <cmath>
#include <cstdio>

namespace iq::harness {

void JsonWriter::comma_if_needed() {
  if (need_comma_) out_ += ',';
  need_comma_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  comma_if_needed();
  out_ += '{';
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  comma_if_needed();
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma_if_needed();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma_if_needed();
  if (std::isfinite(v)) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    out_ += buf;
  } else {
    out_ += "null";
  }
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma_if_needed();
  out_ += std::to_string(v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma_if_needed();
  out_ += std::to_string(v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma_if_needed();
  out_ += v ? "true" : "false";
  need_comma_ = true;
  return *this;
}

std::string JsonWriter::take() { return std::move(out_); }

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string result_to_json(const ExperimentConfig& cfg,
                           const ExperimentResult& r) {
  JsonWriter w;
  w.begin_object();

  w.key("config").begin_object();
  w.field("scheme", cfg.scheme.label);
  w.field("bottleneck_bps", static_cast<std::int64_t>(cfg.net.bottleneck_bps));
  w.field("rtt_ms", static_cast<std::int64_t>(cfg.net.path_rtt.ms()));
  w.field("cbr_bps", static_cast<std::int64_t>(cfg.cbr_rate_bps));
  w.field("vbr_cross", cfg.vbr_cross);
  w.field("tcp_cross", cfg.tcp_cross);
  w.field("frame_rate", cfg.frame_rate);
  w.field("total_frames", static_cast<std::uint64_t>(cfg.total_frames));
  w.field("upper_threshold", cfg.upper_threshold);
  w.field("lower_threshold", cfg.lower_threshold);
  w.field("adapt_granularity",
          static_cast<std::uint64_t>(cfg.adapt_granularity));
  w.field("recv_loss_tolerance", cfg.recv_loss_tolerance);
  w.field("seed", static_cast<std::uint64_t>(cfg.seed));
  w.end_object();

  w.key("summary").begin_object();
  w.field("completed", r.completed);
  w.field("duration_s", r.summary.duration_s);
  w.field("throughput_kBps", r.summary.throughput_kBps);
  w.field("delivered_pct", r.summary.delivered_pct);
  w.field("messages", r.summary.messages);
  w.field("interarrival_s", r.summary.interarrival_s);
  w.field("jitter_s", r.summary.jitter_s);
  w.field("tagged_delay_ms", r.summary.tagged_delay_ms);
  w.field("tagged_jitter_ms", r.summary.tagged_jitter_ms);
  w.field("owd_mean_ms", r.summary.owd_mean_ms);
  w.field("owd_p50_ms", r.summary.owd_p50_ms);
  w.field("owd_p95_ms", r.summary.owd_p95_ms);
  w.end_object();

  w.key("transport").begin_object();
  w.field("segments_sent", r.rudp.segments_sent);
  w.field("segments_retransmitted", r.rudp.segments_retransmitted);
  w.field("segments_skipped", r.rudp.segments_skipped);
  w.field("timeouts", r.rudp.timeouts);
  w.field("messages_skipped", r.rudp.messages_skipped);
  w.field("messages_discarded_at_send", r.rudp.messages_discarded_at_send);
  w.field("lifetime_loss_ratio", r.app_lifetime_loss_ratio);
  w.field("epochs", r.epochs);
  w.field("max_epoch_loss", r.max_epoch_loss);
  w.field("mean_epoch_loss", r.mean_epoch_loss);
  w.end_object();

  w.key("coordination").begin_object();
  w.field("window_rescales", r.coordination.window_rescales);
  w.field("discard_enables", r.coordination.discard_enables);
  w.field("deferrals_noted", r.coordination.deferrals_noted);
  w.field("deferred_resolved", r.coordination.deferred_resolved);
  w.field("cond_compensations", r.coordination.cond_compensations);
  w.field("freq_adaptations", r.coordination.freq_adaptations);
  w.end_object();

  w.end_object();
  return w.take();
}

}  // namespace iq::harness
