#include "iq/harness/cityscale.hpp"

#include <algorithm>
#include <bit>
#include <thread>

#include "iq/cm/manager.hpp"
#include "iq/common/check.hpp"
#include "iq/core/iq_connection.hpp"
#include "iq/echo/channel.hpp"
#include "iq/echo/policies.hpp"
#include "iq/harness/runner.hpp"
#include "iq/net/network.hpp"
#include "iq/sim/timer.hpp"
#include "iq/stats/jain.hpp"
#include "iq/wire/shard_portal.hpp"
#include "iq/wire/sim_wire.hpp"
#include "iq/workload/membership.hpp"

namespace iq::harness {

namespace {

// Identity scheme (all independent of the shard count):
//   node ids:  hub group at base 0, site s at base (s+1) * kIdStride
//   ports:     publisher 1000+s per trunk; repeater 1000 (trunk) and
//              2000+i (fan-out to sub i); subscriber 100
//   flows:     trunk s+1; fan-out kFanFlowBase + global sub index
constexpr net::NodeId kIdStride = 100'000;
constexpr std::uint16_t kTrunkPortBase = 1000;
constexpr std::uint16_t kRepTrunkPort = 1000;
constexpr std::uint16_t kFanPortBase = 2000;
constexpr std::uint16_t kSubPort = 100;
constexpr std::uint32_t kFanFlowBase = 1000;
constexpr const char* kPubTsAttr = "city.pub_ts";

// Heterogeneous access links, cycled by global subscriber index: the mix of
// modem-to-broadband bottlenecks the fan-out adapts across.
constexpr std::int64_t kAccessRates[] = {4'000'000, 2'000'000, 1'000'000,
                                         512'000, 256'000};
constexpr std::int64_t kAccessPropMs[] = {2, 5, 10, 20};

struct Fnv1a {
  std::uint64_t h = 1469598103934665603ull;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  void mix_double(double d) { mix(std::bit_cast<std::uint64_t>(d)); }
};

struct SubStats {
  std::uint64_t forwarded = 0;
  std::uint64_t discarded = 0;
  std::uint64_t delivered = 0;
  std::uint64_t on_time = 0;
  std::uint64_t bytes = 0;
  std::int64_t latency_ns = 0;
};

}  // namespace

struct CityScale::Hub {
  net::Network net;
  net::Node* pub = nullptr;
  workload::MboneTrace trace;
  std::vector<std::unique_ptr<wire::ShardPortal>> to_site;
  std::vector<std::unique_ptr<wire::SimWire>> trunk_wire;
  std::vector<std::unique_ptr<core::IqRudpConnection>> trunk_conn;
  std::vector<std::unique_ptr<echo::EventChannel>> trunk_chan;
  std::unique_ptr<sim::PeriodicTask> ticker;
  TimePoint publish_until;
  std::uint64_t frames = 0;

  Hub(sim::Simulator& sim, std::uint64_t trace_seed)
      : net(sim, 0),
        trace(workload::MboneTraceConfig{.seed = trace_seed}) {}
};

struct CityScale::Site {
  std::uint32_t group = 0;
  net::Network net;
  net::Node* rep = nullptr;
  net::Node* router = nullptr;
  std::vector<net::Node*> subs;

  std::unique_ptr<wire::ShardPortal> to_hub;

  // Trunk receiver endpoint.
  std::unique_ptr<wire::SimWire> trunk_wire;
  std::unique_ptr<core::IqRudpConnection> trunk_conn;
  std::unique_ptr<echo::EventChannel> trunk_chan;

  // Per-site congestion manager: declared before the fan-out connections so
  // they detach (at destruction) while the manager is still alive.
  std::unique_ptr<cm::CongestionManager> cmgr;

  // Fan-out flows, one per subscriber.
  std::vector<std::unique_ptr<wire::SimWire>> fan_snd_wire;
  std::vector<std::unique_ptr<wire::SimWire>> fan_rcv_wire;
  std::vector<std::unique_ptr<core::IqRudpConnection>> fan_snd;
  std::vector<std::unique_ptr<core::IqRudpConnection>> fan_rcv;
  std::vector<std::unique_ptr<echo::EventChannel>> fan_chan_snd;
  std::vector<std::unique_ptr<echo::EventChannel>> fan_chan_rcv;
  std::vector<echo::ResolutionPolicy> policy;
  std::vector<SubStats> stats;

  workload::MboneTrace trace;
  std::unique_ptr<workload::GroupMembership> membership;
  std::unique_ptr<sim::PeriodicTask> churn;

  Site(std::uint32_t g, sim::Simulator& sim, net::NodeId id_base,
       const workload::MboneTraceConfig& tcfg)
      : group(g), net(sim, id_base), trace(tcfg) {}
};

std::size_t cityscale_shards() {
  const char* serial = std::getenv("IQ_HARNESS_SERIAL");
  if (serial != nullptr && serial[0] != '\0' && serial[0] != '0') return 1;
  const std::size_t env = harness_threads_env();
  if (env != 0) return env;
  const std::size_t hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

CityScale::CityScale(const CityScaleConfig& cfg) : cfg_(cfg) {
  IQ_CHECK_MSG(cfg_.sites >= 1 && cfg_.sites <= 60'000, "sites out of range");
  IQ_CHECK_MSG(cfg_.subs_per_site >= 1 && cfg_.subs_per_site <= 60'000,
               "subs_per_site out of range");
  sim::ShardedSim::Config scfg;
  scfg.shards = cfg_.shards == 0 ? cityscale_shards() : cfg_.shards;
  scfg.lookahead = cfg_.trunk_latency;
  scfg.threaded = cfg_.threaded;
  sharded_ = std::make_unique<sim::ShardedSim>(scfg);

  // Fixed group set — one hub plus one group per site, independent of K.
  hub_group_ = sharded_->add_group();
  std::vector<std::uint32_t> site_groups;
  site_groups.reserve(cfg_.sites);
  for (std::size_t s = 0; s < cfg_.sites; ++s) {
    site_groups.push_back(sharded_->add_group());
  }

  hub_ = std::make_unique<Hub>(sharded_->group_sim(hub_group_),
                               cfg_.trace_seed);
  hub_->pub = &hub_->net.add_node("pub");

  sites_.reserve(cfg_.sites);
  for (std::size_t s = 0; s < cfg_.sites; ++s) {
    workload::MboneTraceConfig tcfg;
    tcfg.seed = cfg_.trace_seed + 7919 * (s + 1);
    tcfg.min_group = 1;
    tcfg.max_group = static_cast<int>(cfg_.subs_per_site);
    tcfg.start_group = static_cast<int>(cfg_.subs_per_site / 2);
    sites_.push_back(std::make_unique<Site>(
        site_groups[s], sharded_->group_sim(site_groups[s]),
        static_cast<net::NodeId>(s + 1) * kIdStride, tcfg));
    build_site(s);
  }
  build_hub();
  start();
}

CityScale::~CityScale() = default;

void CityScale::build_site(std::size_t s) {
  Site& site = *sites_[s];
  site.rep = &site.net.add_node("rep");
  site.router = &site.net.add_node("router");

  net::LinkConfig backbone;
  backbone.rate_bps = cfg_.site_backbone_bps;
  backbone.propagation = Duration::millis(1);
  backbone.queue_capacity_bytes = 256 * 1500;
  site.net.add_duplex_link(*site.rep, *site.router, backbone);

  site.subs.reserve(cfg_.subs_per_site);
  for (std::size_t i = 0; i < cfg_.subs_per_site; ++i) {
    const std::size_t global = s * cfg_.subs_per_site + i;
    net::Node& sub = site.net.add_node("sub" + std::to_string(i));
    site.subs.push_back(&sub);
    net::LinkConfig access;
    access.rate_bps = kAccessRates[global % std::size(kAccessRates)];
    access.propagation =
        Duration::millis(kAccessPropMs[global % std::size(kAccessPropMs)]);
    access.queue_capacity_bytes = 24 * 1500;
    site.net.add_duplex_link(*site.router, sub, access);
  }
  site.net.compute_routes();

  // Return path to the hub: everything not local leaves through the portal.
  site.to_hub = std::make_unique<wire::ShardPortal>(
      *sharded_, hub_->net,
      wire::ShardPortal::Config{.src_group = site.group,
                                .dst_group = hub_group_,
                                .latency = cfg_.trunk_latency});
  net::LinkConfig trunk;
  trunk.rate_bps = cfg_.trunk_rate_bps;
  trunk.propagation = Duration::zero();  // the portal carries the latency
  trunk.queue_capacity_bytes = 256 * 1500;
  net::Link& up =
      site.net.add_portal_link(*site.rep, *site.to_hub, "hub", trunk);
  site.rep->set_default_route(&up);

  // Trunk receiver (server side).
  const net::Endpoint rep_ep{site.rep->id(), kRepTrunkPort};
  const net::Endpoint pub_ep{hub_->pub->id(),
                             static_cast<std::uint16_t>(kTrunkPortBase + s)};
  site.trunk_wire = std::make_unique<wire::SimWire>(
      site.net, rep_ep, pub_ep, static_cast<std::uint32_t>(s + 1));
  rudp::RudpConfig rcfg;
  rcfg.conn_id = static_cast<std::uint32_t>(s + 1);
  site.trunk_conn = std::make_unique<core::IqRudpConnection>(
      *site.trunk_wire, rcfg, rudp::Role::Server,
      core::CoordinatorConfig{.mode = cfg_.mode});
  site.trunk_conn->listen();
  site.trunk_chan = std::make_unique<echo::EventChannel>(
      "trunk" + std::to_string(s), *site.trunk_conn);

  if (cfg_.attach_cm) {
    cm::CmConfig mcfg;
    mcfg.id = 900'000 + static_cast<std::uint32_t>(s);
    site.cmgr = std::make_unique<cm::CongestionManager>(mcfg);
  }

  // Fan-out flows.
  site.policy.assign(cfg_.subs_per_site, echo::ResolutionPolicy{});
  site.stats.assign(cfg_.subs_per_site, SubStats{});
  for (std::size_t i = 0; i < cfg_.subs_per_site; ++i) {
    const std::size_t global = s * cfg_.subs_per_site + i;
    const net::Endpoint snd_ep{
        site.rep->id(), static_cast<std::uint16_t>(kFanPortBase + i)};
    const net::Endpoint rcv_ep{site.subs[i]->id(), kSubPort};
    const auto flow = static_cast<std::uint32_t>(kFanFlowBase + global);

    site.fan_snd_wire.push_back(
        std::make_unique<wire::SimWire>(site.net, snd_ep, rcv_ep, flow));
    site.fan_rcv_wire.push_back(
        std::make_unique<wire::SimWire>(site.net, rcv_ep, snd_ep, flow));

    rudp::RudpConfig fcfg;
    fcfg.conn_id = static_cast<std::uint32_t>(kFanFlowBase + global);
    fcfg.loss_epoch_packets = 50;  // adapt on a few seconds of slow flows
    site.fan_snd.push_back(std::make_unique<core::IqRudpConnection>(
        *site.fan_snd_wire[i], fcfg, rudp::Role::Client,
        core::CoordinatorConfig{.mode = cfg_.mode}));
    site.fan_rcv.push_back(std::make_unique<core::IqRudpConnection>(
        *site.fan_rcv_wire[i], fcfg, rudp::Role::Server,
        core::CoordinatorConfig{.mode = cfg_.mode}));
    site.fan_rcv[i]->listen();
    site.fan_snd[i]->connect();
    if (site.cmgr) site.fan_snd[i]->attach_cm(*site.cmgr, 1.0);

    site.fan_chan_snd.push_back(std::make_unique<echo::EventChannel>(
        "fan" + std::to_string(global), *site.fan_snd[i]));
    site.fan_chan_rcv.push_back(std::make_unique<echo::EventChannel>(
        "fan" + std::to_string(global), *site.fan_rcv[i]));

    // Application adaptation: resolution policy on error-ratio thresholds.
    // The returned attrs describe the step; the coordinator consumes them
    // when Coordinated and ignores them when Uncoordinated — the app
    // adapts identically either way, which is the paper's comparison.
    Site* sp = &site;
    site.fan_snd[i]->register_error_ratio_callbacks(
        cfg_.adapt_upper, cfg_.adapt_lower,
        [sp, i](const attr::CallbackContext& ctx) {
          return sp->policy[i].shrink(ctx.value).to_attrs();
        },
        [sp, i](const attr::CallbackContext&) {
          return sp->policy[i].grow().to_attrs();
        });

    // Subscriber delivery accounting.
    site.fan_chan_rcv[i]->set_event_handler(
        [this, sp, i](const echo::ReceivedEvent& re) {
          SubStats& st = sp->stats[i];
          ++st.delivered;
          st.bytes += static_cast<std::uint64_t>(re.event.bytes);
          const auto ts = re.event.meta.get_int(kPubTsAttr);
          const std::int64_t lat =
              re.delivered.ns() - (ts ? *ts : re.sent.ns());
          st.latency_ns += lat;
          if (lat <= cfg_.deadline.ns()) ++st.on_time;
        });
  }

  // Repeater: fan every trunk frame out to the current members, scaled by
  // each subscriber's resolution policy.
  Site* sp = &site;
  site.trunk_chan->set_event_handler([this, sp](const echo::ReceivedEvent& re) {
    const std::size_t n = sp->membership->active();
    for (std::size_t i = 0; i < n; ++i) {
      echo::Event fev;
      fev.bytes = std::max<std::int64_t>(cfg_.min_fanout_bytes,
                                         sp->policy[i].apply(re.event.bytes));
      fev.tagged = true;
      fev.meta = re.event.meta;  // carries the publish timestamp onward
      const auto r = sp->fan_chan_snd[i]->submit(fev);
      SubStats& st = sp->stats[i];
      ++st.forwarded;
      if (r.discarded) ++st.discarded;
    }
  });

  // Membership churn from the site's own trace.
  site.membership = std::make_unique<workload::GroupMembership>(
      cfg_.subs_per_site, nullptr, nullptr);
  sim::Simulator& ssim = sharded_->group_sim(site.group);
  site.churn = std::make_unique<sim::PeriodicTask>(
      ssim, cfg_.churn_interval, [this, sp, &ssim] {
        sp->membership->advance_to_trace(
            sp->trace, ssim.now() - TimePoint::zero(), 1.0);
      });
}

void CityScale::build_hub() {
  Hub& hub = *hub_;
  for (std::size_t s = 0; s < cfg_.sites; ++s) {
    Site& site = *sites_[s];
    // Egress: one portal (and portal link) per site, routed by the
    // repeater's node id.
    hub.to_site.push_back(std::make_unique<wire::ShardPortal>(
        *sharded_, site.net,
        wire::ShardPortal::Config{.src_group = hub_group_,
                                  .dst_group = site.group,
                                  .latency = cfg_.trunk_latency}));
    net::LinkConfig trunk;
    trunk.rate_bps = cfg_.trunk_rate_bps;
    trunk.propagation = Duration::zero();
    trunk.queue_capacity_bytes = 256 * 1500;
    net::Link& down = hub.net.add_portal_link(
        *hub.pub, *hub.to_site[s], "site" + std::to_string(s), trunk);
    hub.pub->set_route(site.rep->id(), &down);

    const net::Endpoint pub_ep{
        hub.pub->id(), static_cast<std::uint16_t>(kTrunkPortBase + s)};
    const net::Endpoint rep_ep{site.rep->id(), kRepTrunkPort};
    hub.trunk_wire.push_back(std::make_unique<wire::SimWire>(
        hub.net, pub_ep, rep_ep, static_cast<std::uint32_t>(s + 1)));
    rudp::RudpConfig rcfg;
    rcfg.conn_id = static_cast<std::uint32_t>(s + 1);
    hub.trunk_conn.push_back(std::make_unique<core::IqRudpConnection>(
        *hub.trunk_wire[s], rcfg, rudp::Role::Client,
        core::CoordinatorConfig{.mode = cfg_.mode}));
    hub.trunk_conn[s]->connect();
    hub.trunk_chan.push_back(std::make_unique<echo::EventChannel>(
        "trunk" + std::to_string(s), *hub.trunk_conn[s]));
  }
}

void CityScale::start() {
  // Publisher: frame per tick per site, sized by the hub trace's member
  // count (the paper's group × bytes rule), stamped with the publish time.
  hub_->publish_until = TimePoint::zero() + cfg_.sim_time;
  sim::Simulator& hsim = sharded_->group_sim(hub_group_);
  const auto period = Duration::from_seconds(1.0 / cfg_.publisher_fps);
  hub_->ticker =
      std::make_unique<sim::PeriodicTask>(hsim, period, [this, &hsim] {
        if (hsim.now() >= hub_->publish_until) return;  // drain phase
        const int members =
            hub_->trace.group_at_time(hsim.now() - TimePoint::zero());
        echo::Event ev;
        ev.bytes = cfg_.bytes_per_member * members;
        ev.tagged = true;
        ev.meta.set(kPubTsAttr, hsim.now().ns());
        for (auto& chan : hub_->trunk_chan) {
          chan->submit(ev);
          ++hub_->frames;
        }
      });
  hub_->ticker->start(false);
  for (auto& site : sites_) site->churn->start(true);
}

CityScaleResult CityScale::run() {
  sharded_->run_until(TimePoint::zero() + cfg_.sim_time + cfg_.drain_time);
  return collect();
}

CityScaleResult CityScale::collect() const {
  CityScaleResult r;
  r.flows = cfg_.sites * cfg_.subs_per_site;
  r.frames_published = hub_->frames;
  Fnv1a digest;
  std::vector<double> utilization;
  utilization.reserve(r.flows);
  double scale_sum = 0.0;
  const double seconds = (cfg_.sim_time + cfg_.drain_time).to_seconds();

  for (std::size_t s = 0; s < sites_.size(); ++s) {
    const Site& site = *sites_[s];
    r.joins += site.membership->joins();
    r.leaves += site.membership->leaves();
    digest.mix(site.membership->joins());
    digest.mix(site.membership->leaves());
    digest.mix(site.trunk_chan->events_received());
    for (std::size_t i = 0; i < site.stats.size(); ++i) {
      const SubStats& st = site.stats[i];
      const std::size_t global = s * cfg_.subs_per_site + i;
      r.fanout_forwarded += st.forwarded;
      r.fanout_discarded += st.discarded;
      r.fanout_delivered += st.delivered;
      r.fanout_on_time += st.on_time;
      if (st.delivered > 0) {
        const auto rate = kAccessRates[global % std::size(kAccessRates)];
        utilization.push_back(static_cast<double>(st.bytes) * 8.0 /
                              (static_cast<double>(rate) * seconds));
        r.goodput_mbps += static_cast<double>(st.bytes) * 8.0 / seconds / 1e6;
        r.mean_latency_ms += static_cast<double>(st.latency_ns) / 1e6;
      }
      scale_sum += site.policy[i].scale();
      digest.mix(st.forwarded);
      digest.mix(st.discarded);
      digest.mix(st.delivered);
      digest.mix(st.on_time);
      digest.mix(st.bytes);
      digest.mix(static_cast<std::uint64_t>(st.latency_ns));
      digest.mix_double(site.policy[i].scale());
    }
  }
  if (r.fanout_delivered > 0) {
    r.mean_latency_ms /= static_cast<double>(r.fanout_delivered);
  }
  r.on_time_ratio = r.fanout_delivered > 0
                        ? static_cast<double>(r.fanout_on_time) /
                              static_cast<double>(r.fanout_delivered)
                        : 0.0;
  r.delivery_ratio = r.fanout_forwarded > 0
                         ? static_cast<double>(r.fanout_delivered) /
                               static_cast<double>(r.fanout_forwarded)
                         : 0.0;
  r.jain_utilization = stats::jain_index(utilization);
  r.mean_scale = scale_sum / static_cast<double>(r.flows);

  r.events_executed = sharded_->events_executed();
  r.parcels_delivered = sharded_->parcels_delivered();
  r.epochs = sharded_->epochs();
  digest.mix(r.frames_published);
  digest.mix(r.events_executed);
  digest.mix(r.parcels_delivered);
  r.digest = digest.h;
  return r;
}

CityScaleResult run_cityscale(const CityScaleConfig& cfg) {
  CityScale scenario(cfg);
  return scenario.run();
}

}  // namespace iq::harness
