#include "iq/harness/scenarios.hpp"

namespace iq::harness::scenarios {

ExperimentConfig base() {
  ExperimentConfig cfg;
  cfg.net.pairs = 3;
  cfg.net.bottleneck_bps = 20'000'000;
  cfg.net.path_rtt = Duration::millis(30);
  return cfg;
}

ExperimentConfig table1(const SchemeSpec& scheme, bool app_adaptation) {
  ExperimentConfig cfg = base();
  cfg.scheme = scheme;
  cfg.cbr_rate_bps = 18'000'000;
  cfg.frame_rate = 10.0;
  cfg.total_frames = 300;
  cfg.trace_bytes_per_member = 3000;
  if (app_adaptation) {
    cfg.adaptation = echo::AdaptKind::Resolution;
    cfg.upper_threshold = 0.15;
    cfg.lower_threshold = 0.01;
  }
  cfg.max_sim_time = Duration::seconds(900);
  return cfg;
}

ExperimentConfig table2(const SchemeSpec& scheme) {
  ExperimentConfig cfg = base();
  cfg.scheme = scheme;
  cfg.tcp_cross = true;
  cfg.cross_start = Duration::millis(100);
  cfg.frame_rate = 0.0;  // as fast as the transport allows
  cfg.fixed_frame_bytes = 1400;
  cfg.total_frames = 8000;
  cfg.max_sim_time = Duration::seconds(300);
  return cfg;
}

ExperimentConfig table3(const SchemeSpec& scheme) {
  ExperimentConfig cfg = base();
  cfg.scheme = scheme;
  // Calibration substitution (see DESIGN.md): the paper used 10 Mb cross
  // traffic with 30 %/5 % thresholds on Emulab; our LDA controller keeps
  // epoch loss ratios below ~25 % in any drop-tail configuration, so the
  // same adaptation dynamics are induced with heavier cross traffic and
  // proportionally scaled thresholds. Re-scaled once more for wire-format
  // v2 (PROTOCOL.md): the 4-byte checksum per segment shifts the queue's
  // operating point enough that epoch loss hovers just under the old
  // activation threshold, so the thresholds drop with it.
  cfg.cbr_rate_bps = 16'000'000;
  cfg.frame_rate = 20.0;
  cfg.total_frames = 600;
  cfg.trace_bytes_per_member = 3000;
  cfg.adaptation = echo::AdaptKind::Marking;
  cfg.upper_threshold = 0.05;
  cfg.lower_threshold = 0.01;
  cfg.recv_loss_tolerance = 0.40;
  cfg.max_sim_time = Duration::seconds(900);
  return cfg;
}

ExperimentConfig table4(const SchemeSpec& scheme) {
  ExperimentConfig cfg = base();
  cfg.scheme = scheme;
  cfg.cbr_rate_bps = 14'000'000;
  cfg.vbr_cross = true;
  cfg.vbr_bytes_per_member = 500;   // scaled: mean ≈ 6 Mb/s, bursty
  cfg.vbr_frames_per_sec = 50.0;
  cfg.frame_rate = 0.0;
  cfg.fixed_frame_bytes = 1400;
  cfg.total_frames = 6000;
  cfg.adaptation = echo::AdaptKind::Marking;
  // Thresholds scaled to the loss ratios an ASAP LDA flow actually sees
  // here (see the table3 note on threshold calibration).
  cfg.upper_threshold = 0.08;
  cfg.lower_threshold = 0.01;
  cfg.recv_loss_tolerance = 0.40;
  cfg.max_sim_time = Duration::seconds(600);
  return cfg;
}

ExperimentConfig fig23(const SchemeSpec& scheme) {
  ExperimentConfig cfg = table3(scheme);
  cfg.collect_jitter_series = true;
  return cfg;
}

ExperimentConfig table5(const SchemeSpec& scheme) {
  ExperimentConfig cfg = base();
  cfg.scheme = scheme;
  // Calibration substitution: the window rescale only applies to frames
  // below the segment size (§3.4), so this scenario scales the trace-driven
  // frames to straddle the MSS once downsampled (100 B per group member
  // instead of 3000), keeps the app rate-based slightly above the residual
  // capacity, and scales thresholds to the observed loss ratios.
  cfg.cbr_rate_bps = 16'000'000;
  cfg.frame_rate = 400.0;
  cfg.total_frames = 8000;
  cfg.trace_bytes_per_member = 100;
  cfg.loss_epoch_packets = 50;
  cfg.adaptation = echo::AdaptKind::Resolution;
  cfg.upper_threshold = 0.04;
  cfg.lower_threshold = 0.003;
  cfg.resolution.min_scale = 0.5;
  cfg.firing = attr::FiringMode::EdgeTriggered;
  cfg.max_sim_time = Duration::seconds(900);
  return cfg;
}

ExperimentConfig table6(const SchemeSpec& scheme, std::int64_t iperf_bps) {
  ExperimentConfig cfg = base();
  cfg.scheme = scheme;
  cfg.cbr_rate_bps = iperf_bps;
  cfg.vbr_cross = true;
  cfg.vbr_bytes_per_member = 300;   // scaled VBR share on top of the sweep
  cfg.vbr_frames_per_sec = 50.0;
  cfg.frame_rate = 0.0;
  cfg.fixed_frame_bytes = 1400;
  cfg.total_frames = 6000;
  cfg.adaptation = echo::AdaptKind::Resolution;
  cfg.upper_threshold = 0.15;
  cfg.lower_threshold = 0.01;
  cfg.max_sim_time = Duration::seconds(600);
  return cfg;
}

ExperimentConfig table7(const SchemeSpec& scheme) {
  // Same changing-application workload as table5, with the application
  // only able to adapt at every 20th frame.
  ExperimentConfig cfg = table5(scheme);
  cfg.adapt_granularity = 20;
  return cfg;
}

ExperimentConfig table8(const SchemeSpec& scheme) {
  ExperimentConfig cfg = base();
  cfg.scheme = scheme;
  cfg.net.path_rtt = Duration::millis(250);  // paper: 125 ms one-way
  // Calibration substitution: the paper's 14 Mb cross traffic leaves the
  // long-RTT LDA flow loss-free in our simulator (its slow 1-pkt/RTT ramp
  // never fills the pipe), so congestion is induced with 18 Mb cross
  // traffic, a rate-based app slightly above the residual capacity, and a
  // larger initial window; thresholds are scaled to the loss ratios this
  // actually produces.
  cfg.cbr_rate_bps = 18'000'000;
  cfg.frame_rate = 200.0;  // rate-based app offering ≈ 2.3 Mb/s vs 2 Mb/s
  cfg.fixed_frame_bytes = 1400;
  cfg.total_frames = 12000;
  cfg.initial_cwnd = 64;
  cfg.loss_epoch_packets = 50;
  cfg.adaptation = echo::AdaptKind::Resolution;
  cfg.upper_threshold = 0.08;
  cfg.lower_threshold = 0.004;
  cfg.adapt_granularity = 20;
  cfg.attach_cond = scheme.enable_cond;
  cfg.max_sim_time = Duration::seconds(600);
  return cfg;
}

}  // namespace iq::harness::scenarios
