#include "iq/harness/runner.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>

namespace iq::harness {

namespace {

double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool serial_forced() {
  const char* v = std::getenv("IQ_HARNESS_SERIAL");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

}  // namespace

std::size_t harness_threads_env() {
  const char* v = std::getenv("IQ_HARNESS_THREADS");
  if (v == nullptr || v[0] == '\0') return 0;
  char* end = nullptr;
  const long n = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || n < 1 || n > 1024) return 0;
  return static_cast<std::size_t>(n);
}

std::size_t runner_threads(std::size_t jobs, std::size_t threads) {
  if (jobs <= 1 || serial_forced()) return 1;
  if (threads == 0) threads = harness_threads_env();
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  return threads < jobs ? threads : jobs;
}

std::vector<TimedResult> run_experiments(
    const std::vector<ExperimentConfig>& configs, std::size_t threads) {
  std::vector<TimedResult> results(configs.size());
  const std::size_t workers = runner_threads(configs.size(), threads);

  std::atomic<std::size_t> next{0};
  auto work = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= configs.size()) return;
      const double start = wall_now();
      results[i].result = run_experiment(configs[i]);
      results[i].wall_seconds = wall_now() - start;
    }
  };

  if (workers <= 1) {
    work();
    return results;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t) pool.emplace_back(work);
  for (auto& th : pool) th.join();
  return results;
}

}  // namespace iq::harness
