#include "iq/harness/paper.hpp"

#include <sstream>

#include "iq/stats/table.hpp"

namespace iq::harness {

Comparison::Comparison(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Comparison::add_paper_row(const std::string& label,
                               std::vector<double> values) {
  rows_.push_back(Row{label, /*measured=*/false, std::move(values)});
}

void Comparison::add_measured_row(const std::string& label,
                                  std::vector<double> values) {
  rows_.push_back(Row{label, /*measured=*/true, std::move(values)});
}

void Comparison::add_note(std::string note) {
  notes_.push_back(std::move(note));
}

std::string Comparison::render() const {
  std::vector<std::string> headers;
  headers.push_back("scheme");
  headers.push_back("source");
  for (const auto& c : columns_) headers.push_back(c);

  stats::Table table(headers);
  for (const Row& row : rows_) {
    std::vector<std::string> cells;
    cells.push_back(row.label);
    cells.push_back(row.measured ? "measured" : "paper");
    for (double v : row.values) {
      // Pick precision by magnitude so small jitters stay readable.
      const double a = v < 0 ? -v : v;
      cells.push_back(stats::Table::num(v, a >= 100 ? 0 : (a >= 1 ? 1 : 3)));
    }
    table.add_row(std::move(cells));
  }

  std::ostringstream os;
  os << "== " << title_ << " ==\n" << table.render();
  for (const auto& n : notes_) os << "note: " << n << "\n";
  return os.str();
}

std::vector<double> basic_metrics(const ExperimentResult& r) {
  return {r.summary.duration_s, r.summary.throughput_kBps,
          r.summary.interarrival_s, r.summary.jitter_s};
}

}  // namespace iq::harness
