#pragma once
// Paper-vs-measured reporting: renders each reproduced table with the
// published values next to the values this build measured, so the shape of
// every claim can be checked at a glance.

#include <string>
#include <vector>

#include "iq/harness/experiment.hpp"

namespace iq::harness {

class Comparison {
 public:
  /// `columns` are the metric names (e.g. "Time(s)", "Thr(KB/s)").
  Comparison(std::string title, std::vector<std::string> columns);

  /// A published row (from the paper's table).
  void add_paper_row(const std::string& label, std::vector<double> values);
  /// A measured row (from this run).
  void add_measured_row(const std::string& label, std::vector<double> values);
  void add_note(std::string note);

  std::string render() const;

 private:
  struct Row {
    std::string label;
    bool measured;
    std::vector<double> values;
  };
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
  std::vector<std::string> notes_;
};

/// The standard four metrics most tables report, from a result.
std::vector<double> basic_metrics(const ExperimentResult& r);

}  // namespace iq::harness
