#pragma once
// Canned experiment configurations — one per table/figure of the paper.
//
// Parameters follow §3.1 where they transfer directly (20 Mb/s bottleneck,
// 30 ms RTT, 1400 B MSS, iperf-style CBR rates, threshold values); workload
// sizes are scaled so each scenario runs in seconds of wall time, and the
// VBR cross-traffic volume is scaled to fit a 20 Mb/s link (the paper's
// literal group×2000 B × 500 fps would exceed the link many times over —
// see DESIGN.md). Every scheme variant of a scenario shares the same seeds,
// so deltas isolate the coordination effect.

#include "iq/harness/experiment.hpp"

namespace iq::harness::scenarios {

/// Shared baseline: dumbbell, 20 Mb/s / 30 ms RTT, trace seed.
ExperimentConfig base();

/// Table 1: trace-driven frames vs 18 Mb CBR cross traffic.
/// Rows: TCP / IQ-RUDP (no app adapt) / app-only / IQ-RUDP + app adapt.
ExperimentConfig table1(const SchemeSpec& scheme, bool app_adaptation);

/// Table 2: fairness — bulk-ish app flow vs one TCP cross flow.
ExperimentConfig table2(const SchemeSpec& scheme);

/// Table 3: conflicting interests, changing application (marking
/// adaptation, 10 Mb CBR, 40 % receiver tolerance).
ExperimentConfig table3(const SchemeSpec& scheme);

/// Table 4: conflicting interests, changing network (ASAP fixed-size
/// frames, VBR + 10 Mb CBR cross).
ExperimentConfig table4(const SchemeSpec& scheme);

/// Figures 2/3: Table 3 scenario with per-packet jitter collection.
ExperimentConfig fig23(const SchemeSpec& scheme);

/// Table 5: over-reaction, changing application (resolution adaptation).
ExperimentConfig table5(const SchemeSpec& scheme);

/// Table 6 / Figure 4: over-reaction, changing network; CBR swept
/// {12, 16, 18} Mb/s on top of VBR cross traffic.
ExperimentConfig table6(const SchemeSpec& scheme, std::int64_t iperf_bps);

/// Table 7: limited granularity, changing application (defer to frame
/// index % 20 == 0).
ExperimentConfig table7(const SchemeSpec& scheme);

/// Table 8: limited granularity, changing network — 125 ms one-way delay,
/// rate-based app, 14 Mb CBR; three schemes (RUDP / IQ w/o COND / IQ w/).
ExperimentConfig table8(const SchemeSpec& scheme);

}  // namespace iq::harness::scenarios
