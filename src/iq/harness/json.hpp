#pragma once
// Minimal JSON emission for experiment results — machine-readable output
// for scripting around the lab CLI and benches. Writer only (the library
// never consumes JSON); no external dependencies.

#include <string>

#include "iq/harness/experiment.hpp"

namespace iq::harness {

/// A tiny ordered-object JSON writer with correct string escaping.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& key(const std::string& name);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  /// Non-finite doubles (NaN, ±inf) are emitted as `null` — JSON has no
  /// representation for them, and a bare `nan`/`inf` token renders the whole
  /// document unparseable. Consumers must treat a null metric as "not
  /// computable", not 0. (Pinned by JsonWriterTest.NonFiniteDoublesAreNull.)
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);

  /// key + value in one call.
  template <typename T>
  JsonWriter& field(const std::string& name, T v) {
    key(name);
    return value(v);
  }

  std::string take();

 private:
  void comma_if_needed();
  static std::string escape(const std::string& s);

  std::string out_;
  bool need_comma_ = false;
};

/// Serialize an experiment's configuration summary and full result set.
std::string result_to_json(const ExperimentConfig& cfg,
                           const ExperimentResult& result);

}  // namespace iq::harness
