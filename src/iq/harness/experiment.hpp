#pragma once
// Experiment harness: builds the paper's Emulab scenario — a dumbbell with a
// 20 Mb/s, 30 ms-RTT bottleneck, the application flow, and configurable
// cross traffic — runs one transport scheme over it, and returns the metrics
// the paper's tables report.
//
// Every scheme sees the *identical* workload (same trace seed, same cross
// traffic), so scheme-vs-scheme deltas isolate the coordination effect.

#include <optional>
#include <string>

#include "iq/core/coordinator.hpp"
#include "iq/echo/source.hpp"
#include "iq/net/dumbbell.hpp"
#include "iq/rudp/connection.hpp"
#include "iq/stats/metrics.hpp"
#include "iq/stats/timeseries.hpp"

namespace iq::harness {

/// Which transport runs the application flow.
struct SchemeSpec {
  std::string label;
  bool use_tcp = false;
  rudp::CcKind cc = rudp::CcKind::Lda;
  core::CoordinationMode mode = core::CoordinationMode::Uncoordinated;
  bool enable_cond = true;
  bool enable_conflict = true;      ///< scheme 1 toggle (ablation)
  bool enable_overreaction = true;  ///< scheme 2/3 rescale toggle (ablation)
  bool rescale_on_frequency = false;  ///< counterfactual ablation (§3.4)

  /// TCP baseline (Table 1 row 1, Table 2).
  static SchemeSpec tcp();
  /// Plain RUDP: transport and application adapt independently.
  static SchemeSpec rudp();
  /// Coordinated IQ-RUDP.
  static SchemeSpec iq_rudp();
  /// IQ-RUDP with eq. (1) compensation disabled (Table 8 middle row).
  static SchemeSpec iq_rudp_no_cond();
  /// Congestion window instrumented off — application adaptation only
  /// (Table 1 row 3).
  static SchemeSpec app_only(double fixed_cwnd = 256.0);
};

struct ExperimentConfig {
  // --- network ---------------------------------------------------------
  net::DumbbellConfig net{.pairs = 3};

  // --- cross traffic ---------------------------------------------------
  std::int64_t cbr_rate_bps = 0;       ///< iperf-style CBR; 0 = none
  Duration cross_start = Duration::seconds(1);
  bool vbr_cross = false;              ///< trace-driven VBR UDP
  std::int64_t vbr_bytes_per_member = 2000;
  double vbr_frames_per_sec = 500.0;
  bool tcp_cross = false;              ///< TCP bulk flow (fairness test)

  // --- application workload -------------------------------------------
  double frame_rate = 30.0;            ///< 0 = as fast as transport allows
  std::uint64_t total_frames = 2000;
  /// 0 = trace-driven (group × trace_bytes_per_member).
  std::int64_t fixed_frame_bytes = 0;
  std::int64_t trace_bytes_per_member = 3000;

  // --- adaptation ------------------------------------------------------
  echo::AdaptKind adaptation = echo::AdaptKind::None;
  double upper_threshold = 0.15;
  double lower_threshold = 0.01;
  std::uint64_t adapt_granularity = 0;
  bool attach_cond = false;
  double recv_loss_tolerance = 0.0;
  echo::MarkingPolicyConfig marking{};
  echo::ResolutionPolicyConfig resolution{};
  attr::FiringMode firing = attr::FiringMode::EveryEpoch;

  // --- run control -----------------------------------------------------
  SchemeSpec scheme = SchemeSpec::iq_rudp();
  Duration max_sim_time = Duration::seconds(600);
  std::uint64_t seed = 1;
  std::uint64_t trace_seed = 0x1b0e5;  ///< shared across schemes
  std::uint32_t loss_epoch_packets = 100;
  double initial_cwnd = 2.0;  ///< larger for long-RTT scenarios (Table 8)
  /// Window used when the scheme disables congestion control (app-only).
  double fixed_cwnd = 32.0;
  bool collect_jitter_series = false;
  /// Sample cwnd over time (window-evolution figures / ablations).
  bool collect_cwnd_series = false;
};

struct ExperimentResult {
  stats::FlowSummary summary;
  rudp::RudpStats rudp;             ///< zeroed for TCP runs
  core::CoordinatorStats coordination;
  double app_lifetime_loss_ratio = 0.0;
  std::uint64_t epochs = 0;         ///< loss-measuring epochs closed
  double max_epoch_loss = 0.0;
  double mean_epoch_loss = 0.0;
  /// Packet-level inter-arrival at the receiver (what the paper's Table 1/2
  /// report), as opposed to the message-level numbers in `summary`.
  double pkt_interarrival_s = 0.0;
  double pkt_jitter_s = 0.0;
  double sim_seconds = 0.0;         ///< simulated span of the run
  std::uint64_t events_executed = 0;
  stats::TimeSeries jitter_series{"jitter_ms"};
  stats::TimeSeries cwnd_series{"cwnd_pkts"};
  bool completed = false;           ///< workload finished before max time
};

/// Run one configuration to completion and return its metrics.
ExperimentResult run_experiment(const ExperimentConfig& cfg);

}  // namespace iq::harness
