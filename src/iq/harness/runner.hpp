#pragma once
// Parallel experiment runner: executes a batch of ExperimentConfigs across a
// thread pool and returns results in input order.
//
// Each run builds its own Simulator/Network/Scenario, so runs share no
// mutable state and the results are bit-identical to running the same
// configs serially — the pool only changes wall-clock time. Set the
// environment variable IQ_HARNESS_SERIAL=1 (or pass threads = 1) to force
// serial execution, e.g. when profiling a single run, or
// IQ_HARNESS_THREADS=N to pin the pool width on any machine (CI uses it to
// force both serial and parallel runs regardless of core count). Explicit
// `threads` arguments beat IQ_HARNESS_THREADS; IQ_HARNESS_SERIAL beats
// both. The same override is the default shard count of the city-scale
// scenario (harness::cityscale_shards).

#include <cstddef>
#include <vector>

#include "iq/harness/experiment.hpp"

namespace iq::harness {

/// One entry of run_experiments(): the experiment's metrics plus how long
/// that run took on the wall clock.
struct TimedResult {
  ExperimentResult result;
  double wall_seconds = 0.0;
};

/// Number of worker threads run_experiments() will use for `jobs` runs when
/// `threads` = 0: IQ_HARNESS_THREADS if set, else hardware concurrency;
/// capped by the job count (and 1 if IQ_HARNESS_SERIAL is set).
std::size_t runner_threads(std::size_t jobs, std::size_t threads = 0);

/// The IQ_HARNESS_THREADS override (0 when unset/invalid). Valid values are
/// 1..1024; anything else is treated as unset.
std::size_t harness_threads_env();

/// Run every config to completion, `threads` at a time (0 = pick
/// automatically), and return results in the same order as `configs`.
std::vector<TimedResult> run_experiments(
    const std::vector<ExperimentConfig>& configs, std::size_t threads = 0);

}  // namespace iq::harness
