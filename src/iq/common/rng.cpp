#include "iq/common/rng.hpp"

#include <algorithm>

namespace iq {

double Rng::uniform01() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

bool Rng::chance(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

double Rng::normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

Rng Rng::fork() {
  // Draw a fresh seed; the child stream is effectively independent.
  return Rng(engine_());
}

}  // namespace iq
