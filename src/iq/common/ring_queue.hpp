#pragma once
// Ring-buffer FIFO for the connection's pending-segment queue.
//
// std::deque allocates and frees a ~512-byte chunk roughly every
// chunk-worth of push_back/pop_front traffic, which breaks the
// zero-allocation steady state the segment path aims for. RingQueue keeps
// one flat buffer with head/size modular indexing: once the buffer has
// grown to the high-water mark of the queue, pushes and pops never touch
// the heap again. Popped slots are reset to T{} so element-owned resources
// are released eagerly.
//
// Supports exactly what the connection needs: push_back, pop_front, random
// access, and erase of a middle run (backpressure shedding).

#include <cstddef>
#include <utility>
#include <vector>

namespace iq {

template <typename T>
class RingQueue {
 public:
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  T& operator[](std::size_t i) { return buf_[slot(i)]; }
  const T& operator[](std::size_t i) const { return buf_[slot(i)]; }
  T& front() { return buf_[head_]; }
  const T& front() const { return buf_[head_]; }
  T& back() { return buf_[slot(size_ - 1)]; }
  const T& back() const { return buf_[slot(size_ - 1)]; }

  void push_back(T v) {
    if (size_ == buf_.size()) grow();
    buf_[slot(size_)] = std::move(v);
    ++size_;
  }

  void pop_front() {
    buf_[head_] = T{};
    head_ = next(head_);
    --size_;
  }

  /// Erase `count` elements starting at logical index `first`, preserving
  /// the order of the rest.
  void erase(std::size_t first, std::size_t count) {
    for (std::size_t i = first; i + count < size_; ++i) {
      (*this)[i] = std::move((*this)[i + count]);
    }
    for (std::size_t i = size_ - count; i < size_; ++i) (*this)[i] = T{};
    size_ -= count;
  }

  void clear() {
    for (std::size_t i = 0; i < size_; ++i) (*this)[i] = T{};
    head_ = 0;
    size_ = 0;
  }

  /// Physical slots owned (high-water capacity; diagnostics/tests).
  std::size_t capacity() const noexcept { return buf_.size(); }

 private:
  std::size_t slot(std::size_t i) const {
    std::size_t s = head_ + i;
    if (s >= buf_.size()) s -= buf_.size();
    return s;
  }
  std::size_t next(std::size_t s) const {
    return s + 1 == buf_.size() ? 0 : s + 1;
  }

  void grow() {
    const std::size_t new_cap = buf_.empty() ? 16 : buf_.size() * 2;
    std::vector<T> nb(new_cap);
    for (std::size_t i = 0; i < size_; ++i) nb[i] = std::move((*this)[i]);
    buf_ = std::move(nb);
    head_ = 0;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace iq
