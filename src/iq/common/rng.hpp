#pragma once
// Seeded random number generation for deterministic experiments.
//
// Every stochastic component takes an explicit Rng (or a seed), never a
// global generator, so experiments replay bit-exactly and components can be
// re-seeded independently.

#include <cstdint>
#include <random>

namespace iq {

/// Thin wrapper over mt19937_64 with the distributions the codebase needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform01();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);
  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);
  /// Normal with given mean and stddev.
  double normal(double mean, double stddev);

  /// Derive an independent child generator (splitmix-style).
  Rng fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace iq
