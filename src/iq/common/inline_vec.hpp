#pragma once
// Small-buffer vector: the container companion to InlineFn.
//
// InlineVec<T, N> stores up to N elements in-place and spills to the heap
// only beyond that. The RUDP hot path keeps short, bounded lists per
// segment — eacks capped by max_eacks_per_ack, skip batches, FEC group
// members, one or two attributes — so with N sized to the protocol caps a
// segment (and every copy of it made by the sim wires and object pools)
// never touches the heap at steady state.
//
// Deliberate differences from std::vector:
//  - capacity never shrinks, and a moved-from InlineVec is empty();
//  - insert() takes its element by value so inserting an element of the
//    same container is safe without vector's aliasing gymnastics;
//  - iterators are plain T* (contiguous; convertible to std::span).

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <new>
#include <type_traits>
#include <utility>

namespace iq {

template <typename T, std::size_t N>
class InlineVec {
  static_assert(N > 0, "InlineVec needs at least one inline slot");
  static_assert(alignof(T) <= alignof(std::max_align_t),
                "over-aligned element types are not supported");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;
  using size_type = std::size_t;

  static constexpr std::size_t inline_capacity = N;

  InlineVec() noexcept : data_(inline_ptr()) {}

  InlineVec(std::initializer_list<T> init) : InlineVec() {
    assign(init.begin(), init.end());
  }

  InlineVec(const InlineVec& other) : InlineVec() {
    assign(other.begin(), other.end());
  }

  InlineVec(InlineVec&& other) noexcept(
      std::is_nothrow_move_constructible_v<T>)
      : InlineVec() {
    steal(std::move(other));
  }

  InlineVec& operator=(const InlineVec& other) {
    if (this != &other) assign(other.begin(), other.end());
    return *this;
  }

  InlineVec& operator=(InlineVec&& other) noexcept(
      std::is_nothrow_move_constructible_v<T>) {
    if (this != &other) {
      clear();
      release_heap();
      steal(std::move(other));
    }
    return *this;
  }

  InlineVec& operator=(std::initializer_list<T> init) {
    assign(init.begin(), init.end());
    return *this;
  }

  ~InlineVec() {
    clear();
    release_heap();
  }

  // ------------------------------------------------------------- access --
  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t capacity() const noexcept { return cap_; }
  /// True once the elements live on the heap (diagnostics/tests).
  bool spilled() const noexcept { return data_ != inline_ptr(); }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  iterator begin() noexcept { return data_; }
  iterator end() noexcept { return data_ + size_; }
  const_iterator begin() const noexcept { return data_; }
  const_iterator end() const noexcept { return data_ + size_; }
  const_iterator cbegin() const noexcept { return data_; }
  const_iterator cend() const noexcept { return data_ + size_; }

  // ---------------------------------------------------------- modifiers --
  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == cap_) return grow_emplace(std::forward<Args>(args)...);
    T* slot = data_ + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    --size_;
    data_[size_].~T();
  }

  void clear() noexcept {
    for (std::size_t i = 0; i < size_; ++i) data_[i].~T();
    size_ = 0;
  }

  void reserve(std::size_t n) {
    if (n > cap_) regrow(n);
  }

  void resize(std::size_t n) {
    if (n < size_) {
      while (size_ > n) pop_back();
      return;
    }
    reserve(n);
    while (size_ < n) emplace_back();
  }

  /// By value on purpose: `v.insert(v.begin(), v[0])` stays well-defined.
  iterator insert(const_iterator cpos, T value) {
    const std::size_t idx = static_cast<std::size_t>(cpos - data_);
    if (size_ == cap_) regrow(cap_ * 2);
    if (idx == size_) {
      ::new (static_cast<void*>(data_ + size_)) T(std::move(value));
    } else {
      ::new (static_cast<void*>(data_ + size_)) T(std::move(data_[size_ - 1]));
      for (std::size_t i = size_ - 1; i > idx; --i) {
        data_[i] = std::move(data_[i - 1]);
      }
      data_[idx] = std::move(value);
    }
    ++size_;
    return data_ + idx;
  }

  iterator erase(const_iterator cpos) { return erase(cpos, cpos + 1); }

  iterator erase(const_iterator cfirst, const_iterator clast) {
    const std::size_t first = static_cast<std::size_t>(cfirst - data_);
    const std::size_t last = static_cast<std::size_t>(clast - data_);
    const std::size_t n = last - first;
    // n == 0 must not reach the shift loop: it would self-move-assign
    // every trailing element.
    if (n == 0) return data_ + first;
    for (std::size_t i = last; i < size_; ++i) {
      data_[i - n] = std::move(data_[i]);
    }
    for (std::size_t i = size_ - n; i < size_; ++i) data_[i].~T();
    size_ -= n;
    return data_ + first;
  }

  template <typename It>
  void assign(It first, It last) {
    clear();
    for (; first != last; ++first) emplace_back(*first);
  }

  void assign(std::initializer_list<T> init) {
    assign(init.begin(), init.end());
  }

  friend bool operator==(const InlineVec& a, const InlineVec& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (!(a.data_[i] == b.data_[i])) return false;
    }
    return true;
  }

 private:
  T* inline_ptr() noexcept { return reinterpret_cast<T*>(storage_); }
  const T* inline_ptr() const noexcept {
    return reinterpret_cast<const T*>(storage_);
  }

  static T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void release_heap() noexcept {
    if (spilled()) {
      ::operator delete(static_cast<void*>(data_));
      data_ = inline_ptr();
      cap_ = N;
    }
  }

  /// Move elements (or the whole heap block) out of `other`, leaving it
  /// empty and inline. Precondition: *this is empty and inline.
  void steal(InlineVec&& other) noexcept(
      std::is_nothrow_move_constructible_v<T>) {
    if (other.spilled()) {
      data_ = other.data_;
      cap_ = other.cap_;
      size_ = other.size_;
      other.data_ = other.inline_ptr();
      other.cap_ = N;
      other.size_ = 0;
      return;
    }
    for (std::size_t i = 0; i < other.size_; ++i) {
      ::new (static_cast<void*>(data_ + i)) T(std::move(other.data_[i]));
    }
    size_ = other.size_;
    other.clear();
  }

  /// Relocate into a fresh block of `new_cap` slots (never shrinks).
  void regrow(std::size_t new_cap) {
    T* nd = allocate(new_cap);
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(nd + i)) T(std::move(data_[i]));
      data_[i].~T();
    }
    release_heap();
    data_ = nd;
    cap_ = new_cap;
  }

  /// Grow-path emplace: construct the new element into the new block
  /// *before* relocating, so `args` may alias existing elements.
  template <typename... Args>
  T& grow_emplace(Args&&... args) {
    const std::size_t new_cap = cap_ * 2;
    T* nd = allocate(new_cap);
    T* slot = nd + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(nd + i)) T(std::move(data_[i]));
      data_[i].~T();
    }
    release_heap();
    data_ = nd;
    cap_ = new_cap;
    ++size_;
    return *slot;
  }

  alignas(T) unsigned char storage_[N * sizeof(T)];
  T* data_;
  std::size_t size_ = 0;
  std::size_t cap_ = N;
};

}  // namespace iq
