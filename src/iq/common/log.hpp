#pragma once
// Minimal leveled logger.
//
// Experiments are driven by metrics, not logs; logging exists for debugging
// protocol traces. Off (Warn) by default so benchmark output stays clean.

#include <sstream>
#include <string>

namespace iq {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4 };

/// Global minimum level; messages below it are discarded cheaply.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

template <typename... Args>
void log(LogLevel level, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  (os << ... << args);
  detail::log_emit(level, os.str());
}

template <typename... Args>
void log_debug(const Args&... args) { log(LogLevel::Debug, args...); }
template <typename... Args>
void log_info(const Args&... args) { log(LogLevel::Info, args...); }
template <typename... Args>
void log_warn(const Args&... args) { log(LogLevel::Warn, args...); }

}  // namespace iq
