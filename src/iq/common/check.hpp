#pragma once
// Lightweight always-on invariant checks.
//
// Protocol state machines are full of invariants that, if broken, produce
// silently-wrong experiment numbers; these checks stay on in release builds.

#include <cstdio>
#include <cstdlib>

namespace iq::detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "IQ_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}
}  // namespace iq::detail

#define IQ_CHECK(expr)                                                \
  do {                                                                \
    if (!(expr)) ::iq::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define IQ_CHECK_MSG(expr, msg)                                         \
  do {                                                                  \
    if (!(expr))                                                        \
      ::iq::detail::check_failed(#expr, __FILE__, __LINE__, (msg));     \
  } while (0)
