#pragma once
// Strong time types for simulation and measurement.
//
// All simulation logic uses TimePoint/Duration in integer nanoseconds so that
// experiments are bit-exact across runs and platforms. Wall-clock time never
// enters protocol or simulator code.

#include <cstdint>
#include <limits>
#include <string>

namespace iq {

/// A span of simulated time, in nanoseconds. Signed so differences are safe.
class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration nanos(std::int64_t n) { return Duration{n}; }
  static constexpr Duration micros(std::int64_t u) { return Duration{u * 1000}; }
  static constexpr Duration millis(std::int64_t m) { return Duration{m * 1'000'000}; }
  static constexpr Duration seconds(std::int64_t s) { return Duration{s * 1'000'000'000}; }
  /// Fractional seconds, rounded to the nearest nanosecond.
  static Duration from_seconds(double s);
  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr std::int64_t us() const { return ns_ / 1000; }
  constexpr std::int64_t ms() const { return ns_ / 1'000'000; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double to_millis() const { return static_cast<double>(ns_) * 1e-6; }

  constexpr bool is_zero() const { return ns_ == 0; }
  constexpr bool is_negative() const { return ns_ < 0; }

  constexpr Duration operator+(Duration o) const { return Duration{ns_ + o.ns_}; }
  constexpr Duration operator-(Duration o) const { return Duration{ns_ - o.ns_}; }
  constexpr Duration operator-() const { return Duration{-ns_}; }
  constexpr Duration operator*(std::int64_t k) const { return Duration{ns_ * k}; }
  constexpr Duration operator/(std::int64_t k) const { return Duration{ns_ / k}; }
  /// Scale by a double (used by RTO backoff and smoothing); rounds to ns.
  Duration scaled(double f) const;
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }
  constexpr auto operator<=>(const Duration&) const = default;

  /// Human-readable rendering, e.g. "30ms", "1.5s".
  std::string str() const;

 private:
  constexpr explicit Duration(std::int64_t n) : ns_(n) {}
  std::int64_t ns_ = 0;
};

/// An instant of simulated time: nanoseconds since the start of a run.
class TimePoint {
 public:
  constexpr TimePoint() = default;
  static constexpr TimePoint from_ns(std::int64_t n) { return TimePoint{n}; }
  static constexpr TimePoint zero() { return TimePoint{0}; }
  static constexpr TimePoint max() {
    return TimePoint{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }

  constexpr TimePoint operator+(Duration d) const { return TimePoint{ns_ + d.ns()}; }
  constexpr TimePoint operator-(Duration d) const { return TimePoint{ns_ - d.ns()}; }
  constexpr Duration operator-(TimePoint o) const { return Duration::nanos(ns_ - o.ns_); }
  constexpr TimePoint& operator+=(Duration d) { ns_ += d.ns(); return *this; }
  constexpr auto operator<=>(const TimePoint&) const = default;

  std::string str() const;

 private:
  constexpr explicit TimePoint(std::int64_t n) : ns_(n) {}
  std::int64_t ns_ = 0;
};

/// Wire-transmission helpers ---------------------------------------------

/// Time to serialize `bytes` onto a link of `bits_per_sec`.
Duration transmission_time(std::int64_t bytes, std::int64_t bits_per_sec);

/// Bytes that fit through `bits_per_sec` in `d` (floor).
std::int64_t bytes_in(Duration d, std::int64_t bits_per_sec);

}  // namespace iq
