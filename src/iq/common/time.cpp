#include "iq/common/time.hpp"

#include <cmath>
#include <sstream>

namespace iq {

Duration Duration::from_seconds(double s) {
  return Duration{static_cast<std::int64_t>(std::llround(s * 1e9))};
}

Duration Duration::scaled(double f) const {
  return Duration{static_cast<std::int64_t>(
      std::llround(static_cast<double>(ns_) * f))};
}

std::string Duration::str() const {
  std::ostringstream os;
  const std::int64_t n = ns_;
  if (n % 1'000'000'000 == 0) {
    os << n / 1'000'000'000 << "s";
  } else if (n % 1'000'000 == 0) {
    os << n / 1'000'000 << "ms";
  } else if (n % 1000 == 0) {
    os << n / 1000 << "us";
  } else {
    os << n << "ns";
  }
  return os.str();
}

std::string TimePoint::str() const {
  std::ostringstream os;
  os << to_seconds() << "s";
  return os.str();
}

Duration transmission_time(std::int64_t bytes, std::int64_t bits_per_sec) {
  // ns = bytes*8 * 1e9 / bps, computed without overflow for realistic sizes.
  const long double ns =
      static_cast<long double>(bytes) * 8.0L * 1e9L /
      static_cast<long double>(bits_per_sec);
  return Duration::nanos(static_cast<std::int64_t>(ns + 0.5L));
}

std::int64_t bytes_in(Duration d, std::int64_t bits_per_sec) {
  const long double b = static_cast<long double>(d.ns()) *
                        static_cast<long double>(bits_per_sec) / (8.0L * 1e9L);
  return static_cast<std::int64_t>(b);
}

}  // namespace iq
