#pragma once
// Process-global strict shard-affinity mode.
//
// The sharded simulator (iq/sim/sharded.hpp) runs one Simulator per shard on
// its own worker thread. Everything a shard owns — its pools, connections,
// networks — must be touched only from that shard's thread while a lockstep
// window is executing; the only legal cross-shard channel is the ShardedSim
// mailbox. This header provides the switch that turns those ownership rules
// from documentation into an enforced check:
//
//   - While no strict window is open (construction, teardown, ordinary
//     single-threaded tests) affinity is unrestricted: owners rebind freely,
//     so scenarios can be built on the main thread and destroyed there.
//   - Inside a strict window (a StrictAffinityGuard is alive, i.e. a
//     ShardedSim is running a lockstep epoch), the first thread to touch an
//     owned resource in the current strict generation binds it; any other
//     thread touching it afterwards is a cross-shard leak and aborts.
//
// The check stays on in release builds (the default RelWithDebInfo build
// defines NDEBUG, so assert() would vanish); the cost outside strict windows
// is one relaxed atomic load.

#include <atomic>
#include <cstdint>

namespace iq::affinity {

namespace detail {
// Depth of nested strict windows and the generation counter. Generation
// bumps on every 0 -> 1 transition so owner bindings from a previous window
// are forgiven: a resource may migrate between runs, never within one.
inline std::atomic<int> strict_depth{0};
inline std::atomic<std::uint64_t> strict_generation{0};
}  // namespace detail

/// Is a strict window currently open?
inline bool strict() {
  return detail::strict_depth.load(std::memory_order_relaxed) > 0;
}

/// Current strict generation (only meaningful while strict() is true).
inline std::uint64_t generation() {
  return detail::strict_generation.load(std::memory_order_relaxed);
}

inline void enter_strict() {
  if (detail::strict_depth.fetch_add(1, std::memory_order_relaxed) == 0) {
    detail::strict_generation.fetch_add(1, std::memory_order_relaxed);
  }
}

inline void exit_strict() {
  detail::strict_depth.fetch_sub(1, std::memory_order_relaxed);
}

/// RAII strict window. The ShardedSim holds one across each lockstep run.
class StrictAffinityGuard {
 public:
  StrictAffinityGuard() { enter_strict(); }
  ~StrictAffinityGuard() { exit_strict(); }
  StrictAffinityGuard(const StrictAffinityGuard&) = delete;
  StrictAffinityGuard& operator=(const StrictAffinityGuard&) = delete;
};

}  // namespace iq::affinity
