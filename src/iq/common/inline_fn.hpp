#pragma once
// InlineFn: a move-only callable with small-buffer optimization.
//
// The discrete-event hot path schedules millions of short-lived closures
// (timer shots, link deliveries); std::function heap-allocates most of them
// because its inline buffer is small and it must support copying. InlineFn
// drops copyability — events fire exactly once or are cancelled, nothing
// ever needs two copies of one closure — which lets any callable that fits
// the inline buffer and is nothrow-move-constructible live entirely inside
// the object. Larger or throwing-move callables fall back to one heap box.
//
// The move constructor is noexcept, so containers (the event queue's slot
// vector) relocate without copies.

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace iq {

template <typename Signature, std::size_t Capacity = 48>
class InlineFn;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFn<R(Args...), Capacity> {
 public:
  InlineFn() noexcept = default;
  InlineFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InlineFn> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor)
    construct(std::forward<F>(f));
  }

  InlineFn(InlineFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(&other.storage_, &storage_);
      other.ops_ = nullptr;
    }
  }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(&other.storage_, &storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(&storage_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(&storage_, std::forward<Args>(args)...);
  }

  /// True when the wrapped callable lives in the inline buffer (no heap).
  bool is_inline() const noexcept {
    return ops_ != nullptr && ops_->inline_stored;
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    /// Move-construct into `to` from `from`, then destroy `from`'s value.
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void*) noexcept;
    bool inline_stored;
  };

  template <typename D>
  static constexpr bool stores_inline() {
    return sizeof(D) <= Capacity &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename F>
  void construct(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (stores_inline<D>()) {
      static constexpr Ops ops = {
          +[](void* s, Args&&... args) -> R {
            return (*std::launder(reinterpret_cast<D*>(s)))(
                std::forward<Args>(args)...);
          },
          +[](void* from, void* to) noexcept {
            D* src = std::launder(reinterpret_cast<D*>(from));
            ::new (to) D(std::move(*src));
            src->~D();
          },
          +[](void* s) noexcept {
            std::launder(reinterpret_cast<D*>(s))->~D();
          },
          /*inline_stored=*/true,
      };
      ::new (&storage_) D(std::forward<F>(f));
      ops_ = &ops;
    } else {
      static constexpr Ops ops = {
          +[](void* s, Args&&... args) -> R {
            return (**std::launder(reinterpret_cast<D**>(s)))(
                std::forward<Args>(args)...);
          },
          +[](void* from, void* to) noexcept {
            D** src = std::launder(reinterpret_cast<D**>(from));
            ::new (to) D*(*src);
          },
          +[](void* s) noexcept {
            delete *std::launder(reinterpret_cast<D**>(s));
          },
          /*inline_stored=*/false,
      };
      ::new (&storage_) D*(new D(std::forward<F>(f)));
      ops_ = &ops;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace iq
