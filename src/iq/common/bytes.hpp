#pragma once
// Byte-order-safe serialization helpers for wire formats.
//
// All multi-byte fields are big-endian (network order). ByteWriter is a
// reusable arena: it keeps a logical size separate from the physical
// buffer, so clear() + re-encode into the same writer reuses the storage
// (and any still-zero tail) without reallocating or re-zeroing. ByteReader
// is a bounds-checked cursor over a span and reports truncation instead of
// crashing, since readers face untrusted input.

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace iq {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum the
/// RUDP wire format uses to reject corrupted datagrams.
std::uint32_t crc32(BytesView data);
/// Incremental form: seed with kCrc32Init, feed chunks, finish by XOR with
/// kCrc32Init. crc32(d) == crc32_update(kCrc32Init, d) ^ kCrc32Init.
/// Chunk boundaries do not affect the result.
///
/// Runtime-dispatched: the first call selects the fastest kernel the CPU
/// supports — a PCLMULQDQ carry-less-multiply folding kernel where CPUID
/// reports it, otherwise slice-by-8 tables — and every tier produces
/// bit-identical output (tests/crc_dispatch_test.cpp pins this against the
/// sealed-v2 golden datagram and a fuzzed bytewise oracle). The env var
/// IQ_CRC_IMPL=pclmul|slice8|bytewise forces a tier for tests and benches.
inline constexpr std::uint32_t kCrc32Init = 0xffffffffu;
std::uint32_t crc32_update(std::uint32_t state, BytesView chunk);
/// Byte-at-a-time reference implementation of the same polynomial. Kept as
/// the oracle the dispatched fast paths are tested and benchmarked against.
std::uint32_t crc32_update_bytewise(std::uint32_t state, BytesView chunk);
/// Slice-by-8 table kernel (8 bytes per round) — the portable fast tier.
std::uint32_t crc32_update_slice8(std::uint32_t state, BytesView chunk);
/// PCLMULQDQ folding kernel (x86). Callable only when
/// crc32_pclmul_supported(); elsewhere it delegates to slice-by-8.
std::uint32_t crc32_update_pclmul(std::uint32_t state, BytesView chunk);
/// True when this build and CPU can run the carry-less-multiply kernel.
bool crc32_pclmul_supported();
/// Name of the tier crc32_update currently dispatches to
/// ("pclmul" | "slice8" | "bytewise").
const char* crc32_impl_name();
/// Force a dispatch tier by name (test/bench hook; same names as
/// IQ_CRC_IMPL). Returns false — leaving the selection unchanged — for an
/// unknown name or an unsupported tier.
bool crc32_select_impl(const char* name);

class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  /// Length-prefixed (u16) byte string.
  void bytes16(BytesView v);
  /// Length-prefixed (u16) UTF-8 string.
  void str16(const std::string& s);
  /// Raw bytes, no prefix.
  void raw(BytesView v);
  /// Append `n` zero bytes. Skips the memset for any part of the run the
  /// arena already guarantees to be zero — after the first encode of a
  /// mostly-virtual payload, re-encoding through the same writer zeroes
  /// nothing at all.
  void zeros(std::size_t n);
  /// Overwrite 4 already-written bytes at `offset` (big-endian) — how the
  /// codec seals a checksum into a header it wrote earlier.
  void poke_u32(std::size_t offset, std::uint32_t v);

  /// Reset the logical size to zero. Storage (and the knowledge of which
  /// tail bytes are still zero) is retained for the next encode.
  void clear() { size_ = 0; }

  /// Pre-size the buffer when the caller can compute the wire size up
  /// front; writes then append without reallocating.
  void reserve(std::size_t bytes) { buf_.reserve(bytes); }

  std::size_t size() const { return size_; }
  /// View of the bytes written since the last clear(). Invalidated by any
  /// subsequent write into this writer.
  BytesView view() const { return {buf_.data(), size_}; }
  BytesView data() const { return view(); }
  /// Move the written bytes out as an owned buffer; the writer resets.
  Bytes take();

 private:
  /// Make room for `n` more bytes and return the write cursor.
  std::uint8_t* grow(std::size_t n);

  Bytes buf_;              ///< physical storage; buf_[dirty_end_..) is zero
  std::size_t size_ = 0;   ///< logical bytes written since clear()
  std::size_t dirty_end_ = 0;  ///< watermark of possibly-nonzero bytes
};

class ByteReader {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}

  std::optional<std::uint8_t> u8();
  std::optional<std::uint16_t> u16();
  std::optional<std::uint32_t> u32();
  std::optional<std::uint64_t> u64();
  std::optional<std::int64_t> i64();
  std::optional<double> f64();
  std::optional<Bytes> bytes16();
  std::optional<std::string> str16();
  /// Borrow `n` bytes from the cursor without copying. The view aliases
  /// the reader's underlying buffer.
  std::optional<BytesView> view(std::size_t n);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return remaining() == 0; }
  std::size_t position() const { return pos_; }

 private:
  bool need(std::size_t n) const { return remaining() >= n; }
  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace iq
