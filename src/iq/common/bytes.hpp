#pragma once
// Byte-order-safe serialization helpers for wire formats.
//
// All multi-byte fields are big-endian (network order). ByteWriter grows an
// owned buffer; ByteReader is a bounds-checked cursor over a span and reports
// truncation instead of crashing, since readers face untrusted input.

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace iq {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum the
/// RUDP wire format uses to reject corrupted datagrams.
std::uint32_t crc32(BytesView data);
/// Incremental form: seed with kCrc32Init, feed chunks, finish by XOR with
/// kCrc32Init. crc32(d) == crc32_update(kCrc32Init, d) ^ kCrc32Init.
inline constexpr std::uint32_t kCrc32Init = 0xffffffffu;
std::uint32_t crc32_update(std::uint32_t state, BytesView chunk);

class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  /// Length-prefixed (u16) byte string.
  void bytes16(BytesView v);
  /// Length-prefixed (u16) UTF-8 string.
  void str16(const std::string& s);
  /// Raw bytes, no prefix.
  void raw(BytesView v);

  /// Pre-size the buffer when the caller can compute the wire size up
  /// front; writes then append without reallocating.
  void reserve(std::size_t bytes) { buf_.reserve(bytes); }

  std::size_t size() const { return buf_.size(); }
  const Bytes& data() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

class ByteReader {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}

  std::optional<std::uint8_t> u8();
  std::optional<std::uint16_t> u16();
  std::optional<std::uint32_t> u32();
  std::optional<std::uint64_t> u64();
  std::optional<std::int64_t> i64();
  std::optional<double> f64();
  std::optional<Bytes> bytes16();
  std::optional<std::string> str16();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return remaining() == 0; }
  std::size_t position() const { return pos_; }

 private:
  bool need(std::size_t n) const { return remaining() >= n; }
  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace iq
