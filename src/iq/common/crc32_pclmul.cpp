// PCLMULQDQ folding kernel for the IEEE CRC-32 (reflected poly 0xEDB88320).
//
// Technique (Gopal et al., "Fast CRC Computation for Generic Polynomials
// Using PCLMULQDQ Instruction", the scheme zlib and the Linux kernel use):
// the CRC state is carried in 128-bit lanes and "folded" forward across the
// input with carry-less multiplies. Folding a lane by the constant pair
// (x^(8n-32) mod P, x^(8n-96) mod P) is congruent to shifting its
// polynomial n bytes toward the end of the message, so four independent
// lanes eat 64 bytes per iteration with no serial dependency — the
// throughput limit becomes the pclmulqdq issue rate, not a table lookup
// chain. Constants below are the standard reflected-IEEE pair set:
//   k1/k2 (64-byte fold)  = x^544 mod P, x^480 mod P  (bit-reflected form)
//   k3/k4 (16-byte fold)  = x^160 mod P, x^96  mod P
//
// Final reduction: instead of the 128→64→32 Barrett step, the folded
// 16-byte accumulator is streamed through the slice-by-8 table kernel with
// a zero seed. The fold invariant is exactly
//     crc_raw(state, message) == crc_raw(0, accumulator_bytes ++ tail)
// so the table pass finishes the job with code already proven against the
// bytewise oracle; tests/crc_dispatch_test.cpp fuzzes every length and
// alignment across tiers to pin bit-identity.
//
// This file is the only TU compiled with pclmul/sse4.1 codegen (via target
// attributes, not global -m flags), so the binary still boots on CPUs
// without the instructions — iq/common/bytes.cpp selects this kernel at
// startup only when __builtin_cpu_supports says it can run.

#include "iq/common/bytes.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>

namespace iq {

bool crc32_pclmul_supported() {
  return __builtin_cpu_supports("pclmul") && __builtin_cpu_supports("sse4.1");
}

__attribute__((target("pclmul,sse4.1"))) std::uint32_t crc32_update_pclmul(
    std::uint32_t state, BytesView chunk) {
  const std::uint8_t* p = chunk.data();
  std::size_t n = chunk.size();
  // Folding needs four full lanes to start; short inputs (most RUDP
  // headers) go straight to the table kernel — same result, no SIMD
  // spin-up cost.
  if (n < 64) return crc32_update_slice8(state, chunk);

  const __m128i k1k2 = _mm_set_epi64x(0x00000001c6e41596,   // k2: x^480
                                      0x0000000154442bd4);  // k1: x^544
  const __m128i k3k4 = _mm_set_epi64x(0x00000000ccaa009e,   // k4: x^96
                                      0x00000001751997d0);  // k3: x^160

  const auto* blocks = reinterpret_cast<const __m128i*>(p);
  __m128i x1 = _mm_loadu_si128(blocks + 0);
  __m128i x2 = _mm_loadu_si128(blocks + 1);
  __m128i x3 = _mm_loadu_si128(blocks + 2);
  __m128i x4 = _mm_loadu_si128(blocks + 3);
  // Seed: the running state XORs into the first four message bytes (the
  // low 32 bits of the little-endian lane), the same identity the table
  // kernels apply byte by byte.
  x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(state)));
  p += 64;
  n -= 64;

  while (n >= 64) {
    const auto* in = reinterpret_cast<const __m128i*>(p);
    __m128i t;
    t = _mm_clmulepi64_si128(x1, k1k2, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k1k2, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, t), _mm_loadu_si128(in + 0));
    t = _mm_clmulepi64_si128(x2, k1k2, 0x00);
    x2 = _mm_clmulepi64_si128(x2, k1k2, 0x11);
    x2 = _mm_xor_si128(_mm_xor_si128(x2, t), _mm_loadu_si128(in + 1));
    t = _mm_clmulepi64_si128(x3, k1k2, 0x00);
    x3 = _mm_clmulepi64_si128(x3, k1k2, 0x11);
    x3 = _mm_xor_si128(_mm_xor_si128(x3, t), _mm_loadu_si128(in + 2));
    t = _mm_clmulepi64_si128(x4, k1k2, 0x00);
    x4 = _mm_clmulepi64_si128(x4, k1k2, 0x11);
    x4 = _mm_xor_si128(_mm_xor_si128(x4, t), _mm_loadu_si128(in + 3));
    p += 64;
    n -= 64;
  }

  // Fold the four lanes into one (each step shifts 16 bytes forward).
  __m128i t;
  t = _mm_clmulepi64_si128(x1, k3k4, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
  x2 = _mm_xor_si128(x2, _mm_xor_si128(x1, t));
  t = _mm_clmulepi64_si128(x2, k3k4, 0x00);
  x2 = _mm_clmulepi64_si128(x2, k3k4, 0x11);
  x3 = _mm_xor_si128(x3, _mm_xor_si128(x2, t));
  t = _mm_clmulepi64_si128(x3, k3k4, 0x00);
  x3 = _mm_clmulepi64_si128(x3, k3k4, 0x11);
  x4 = _mm_xor_si128(x4, _mm_xor_si128(x3, t));

  // Single-lane folds over whatever 16-byte blocks remain.
  while (n >= 16) {
    t = _mm_clmulepi64_si128(x4, k3k4, 0x00);
    x4 = _mm_clmulepi64_si128(x4, k3k4, 0x11);
    x4 = _mm_xor_si128(_mm_xor_si128(x4, t),
                       _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
    p += 16;
    n -= 16;
  }

  // Reduce: stream the accumulator bytes, then the sub-16-byte tail,
  // through the table kernel (see the invariant in the header comment).
  alignas(16) std::uint8_t acc[16];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(acc), x4);
  const std::uint32_t mid = crc32_update_slice8(0, BytesView{acc, 16});
  return crc32_update_slice8(mid, BytesView{p, n});
}

}  // namespace iq

#else  // non-x86 build: keep the symbols, report unsupported.

namespace iq {

bool crc32_pclmul_supported() { return false; }

std::uint32_t crc32_update_pclmul(std::uint32_t state, BytesView chunk) {
  return crc32_update_slice8(state, chunk);
}

}  // namespace iq

#endif
