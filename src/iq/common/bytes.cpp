#include "iq/common/bytes.hpp"

#include <array>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "iq/common/check.hpp"

namespace iq {

std::uint8_t* ByteWriter::grow(std::size_t n) {
  if (size_ + n > buf_.size()) {
    // resize() value-initializes, so new physical bytes are zero and the
    // dirty_end_ invariant (buf_[dirty_end_..) == 0) is preserved.
    buf_.resize(std::max(size_ + n, buf_.size() * 2));
  }
  std::uint8_t* cursor = buf_.data() + size_;
  size_ += n;
  if (size_ > dirty_end_) dirty_end_ = size_;
  return cursor;
}

void ByteWriter::u8(std::uint8_t v) { *grow(1) = v; }

void ByteWriter::u16(std::uint16_t v) {
  std::uint8_t* p = grow(2);
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v);
}

void ByteWriter::u32(std::uint32_t v) {
  std::uint8_t* p = grow(4);
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (24 - 8 * i));
}

void ByteWriter::u64(std::uint64_t v) {
  std::uint8_t* p = grow(8);
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
}

void ByteWriter::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::bytes16(BytesView v) {
  u16(static_cast<std::uint16_t>(v.size()));
  raw(v);
}

void ByteWriter::str16(const std::string& s) {
  u16(static_cast<std::uint16_t>(s.size()));
  std::uint8_t* p = grow(s.size());
  std::memcpy(p, s.data(), s.size());
}

void ByteWriter::raw(BytesView v) {
  if (v.empty()) return;  // empty views may carry a null data pointer
  std::uint8_t* p = grow(v.size());
  std::memcpy(p, v.data(), v.size());
}

void ByteWriter::zeros(std::size_t n) {
  const std::size_t start = size_;
  const std::size_t end = start + n;
  if (end > buf_.size()) buf_.resize(std::max(end, buf_.size() * 2));
  // Only the overlap with the dirty region can hold stale nonzero bytes;
  // everything past dirty_end_ is zero by invariant.
  if (start < dirty_end_) {
    std::memset(buf_.data() + start, 0, std::min(dirty_end_, end) - start);
  }
  // If the zero run reaches the dirty watermark, everything from `start`
  // to the end of physical storage is now zero — lower the watermark so
  // the next encode of the same shape skips the memset entirely.
  if (end >= dirty_end_) dirty_end_ = std::min(dirty_end_, start);
  size_ = end;
}

void ByteWriter::poke_u32(std::size_t offset, std::uint32_t v) {
  IQ_CHECK_MSG(offset + 4 <= size_, "poke_u32 past written bytes");
  std::uint8_t* p = buf_.data() + offset;
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (24 - 8 * i));
  if (offset + 4 > dirty_end_) dirty_end_ = offset + 4;
}

Bytes ByteWriter::take() {
  buf_.resize(size_);
  Bytes out = std::move(buf_);
  buf_ = Bytes();
  size_ = 0;
  dirty_end_ = 0;
  return out;
}

std::optional<std::uint8_t> ByteReader::u8() {
  if (!need(1)) return std::nullopt;
  return data_[pos_++];
}

std::optional<std::uint16_t> ByteReader::u16() {
  if (!need(2)) return std::nullopt;
  std::uint16_t v = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::optional<std::uint32_t> ByteReader::u32() {
  if (!need(4)) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 4;
  return v;
}

std::optional<std::uint64_t> ByteReader::u64() {
  if (!need(8)) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 8;
  return v;
}

std::optional<std::int64_t> ByteReader::i64() {
  auto v = u64();
  if (!v) return std::nullopt;
  return static_cast<std::int64_t>(*v);
}

std::optional<double> ByteReader::f64() {
  auto v = u64();
  if (!v) return std::nullopt;
  return std::bit_cast<double>(*v);
}

std::optional<Bytes> ByteReader::bytes16() {
  auto len = u16();
  if (!len || !need(*len)) return std::nullopt;
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + *len));
  pos_ += *len;
  return out;
}

std::optional<std::string> ByteReader::str16() {
  auto len = u16();
  if (!len || !need(*len)) return std::nullopt;
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), *len);
  pos_ += *len;
  return out;
}

std::optional<BytesView> ByteReader::view(std::size_t n) {
  if (!need(n)) return std::nullopt;
  BytesView out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

}  // namespace iq

namespace iq {

namespace {

// Slice-by-8 tables for the reflected IEEE polynomial. Row 0 is the
// classic byte-at-a-time table; row k advances a byte's contribution k
// extra positions, so one round folds 8 input bytes into the state with
// eight independent table lookups instead of an 8-iteration dependency
// chain.
struct Crc32Tables {
  std::uint32_t t[8][256];
};

const Crc32Tables& crc32_tables() {
  static const Crc32Tables tables = [] {
    Crc32Tables tb{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
      }
      tb.t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = tb.t[0][i];
      for (int k = 1; k < 8; ++k) {
        c = tb.t[0][c & 0xffu] ^ (c >> 8);
        tb.t[k][i] = c;
      }
    }
    return tb;
  }();
  return tables;
}

}  // namespace

std::uint32_t crc32_update_bytewise(std::uint32_t state, BytesView chunk) {
  const std::uint32_t* table = crc32_tables().t[0];
  for (std::uint8_t b : chunk) {
    state = table[(state ^ b) & 0xffu] ^ (state >> 8);
  }
  return state;
}

std::uint32_t crc32_update_slice8(std::uint32_t state, BytesView chunk) {
  const std::uint8_t* p = chunk.data();
  std::size_t n = chunk.size();
  if constexpr (std::endian::native == std::endian::little) {
    const auto& tb = crc32_tables();
    while (n >= 8) {
      std::uint64_t word;
      std::memcpy(&word, p, 8);
      word ^= state;
      state = tb.t[7][word & 0xffu] ^ tb.t[6][(word >> 8) & 0xffu] ^
              tb.t[5][(word >> 16) & 0xffu] ^ tb.t[4][(word >> 24) & 0xffu] ^
              tb.t[3][(word >> 32) & 0xffu] ^ tb.t[2][(word >> 40) & 0xffu] ^
              tb.t[1][(word >> 48) & 0xffu] ^
              tb.t[0][(word >> 56) & 0xffu];
      p += 8;
      n -= 8;
    }
  }
  return crc32_update_bytewise(state, {p, n});
}

namespace {

using CrcKernel = std::uint32_t (*)(std::uint32_t, BytesView);

struct CrcDispatch {
  CrcKernel fn;
  const char* name;
};

/// Map a tier name to its kernel; nullptr for unknown/unsupported names.
/// "pclmul" is only honoured when CPUID reports the instructions — callers
/// forcing tiers (tests, IQ_CRC_IMPL) get a hard refusal, not a silent
/// downgrade, so a "pclmul" result always measured the pclmul kernel.
CrcDispatch resolve_crc_impl(const char* name) {
  const std::string_view want{name == nullptr ? "" : name};
  if (want == "pclmul" && crc32_pclmul_supported()) {
    return {&crc32_update_pclmul, "pclmul"};
  }
  if (want == "slice8") return {&crc32_update_slice8, "slice8"};
  if (want == "bytewise") return {&crc32_update_bytewise, "bytewise"};
  return {nullptr, nullptr};
}

/// Startup selection: IQ_CRC_IMPL override first, then the fastest kernel
/// the CPU supports. Resolved once (magic static) and cached.
CrcDispatch& crc_dispatch() {
  static CrcDispatch active = [] {
    if (const char* env = std::getenv("IQ_CRC_IMPL")) {
      const CrcDispatch forced = resolve_crc_impl(env);
      if (forced.fn != nullptr) return forced;
      std::fprintf(stderr, "IQ_CRC_IMPL=%s unknown/unsupported; using auto\n",
                   env);
    }
    if (crc32_pclmul_supported()) {
      return CrcDispatch{&crc32_update_pclmul, "pclmul"};
    }
    return CrcDispatch{&crc32_update_slice8, "slice8"};
  }();
  return active;
}

}  // namespace

std::uint32_t crc32_update(std::uint32_t state, BytesView chunk) {
  return crc_dispatch().fn(state, chunk);
}

const char* crc32_impl_name() { return crc_dispatch().name; }

bool crc32_select_impl(const char* name) {
  const CrcDispatch want = resolve_crc_impl(name);
  if (want.fn == nullptr) return false;
  crc_dispatch() = want;
  return true;
}

std::uint32_t crc32(BytesView data) {
  return crc32_update(kCrc32Init, data) ^ kCrc32Init;
}

}  // namespace iq
