#include "iq/common/bytes.hpp"

#include <array>
#include <bit>

namespace iq {

void ByteWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void ByteWriter::u64(std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void ByteWriter::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::bytes16(BytesView v) {
  u16(static_cast<std::uint16_t>(v.size()));
  raw(v);
}

void ByteWriter::str16(const std::string& s) {
  u16(static_cast<std::uint16_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::raw(BytesView v) { buf_.insert(buf_.end(), v.begin(), v.end()); }

std::optional<std::uint8_t> ByteReader::u8() {
  if (!need(1)) return std::nullopt;
  return data_[pos_++];
}

std::optional<std::uint16_t> ByteReader::u16() {
  if (!need(2)) return std::nullopt;
  std::uint16_t v = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::optional<std::uint32_t> ByteReader::u32() {
  if (!need(4)) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 4;
  return v;
}

std::optional<std::uint64_t> ByteReader::u64() {
  if (!need(8)) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 8;
  return v;
}

std::optional<std::int64_t> ByteReader::i64() {
  auto v = u64();
  if (!v) return std::nullopt;
  return static_cast<std::int64_t>(*v);
}

std::optional<double> ByteReader::f64() {
  auto v = u64();
  if (!v) return std::nullopt;
  return std::bit_cast<double>(*v);
}

std::optional<Bytes> ByteReader::bytes16() {
  auto len = u16();
  if (!len || !need(*len)) return std::nullopt;
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + *len));
  pos_ += *len;
  return out;
}

std::optional<std::string> ByteReader::str16() {
  auto len = u16();
  if (!len || !need(*len)) return std::nullopt;
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), *len);
  pos_ += *len;
  return out;
}

}  // namespace iq

namespace iq {

namespace {
// Table for the reflected IEEE polynomial, built once on first use.
const std::uint32_t* crc32_table() {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table.data();
}
}  // namespace

std::uint32_t crc32_update(std::uint32_t state, BytesView chunk) {
  const std::uint32_t* table = crc32_table();
  for (std::uint8_t b : chunk) {
    state = table[(state ^ b) & 0xffu] ^ (state >> 8);
  }
  return state;
}

std::uint32_t crc32(BytesView data) {
  return crc32_update(kCrc32Init, data) ^ kCrc32Init;
}

}  // namespace iq
