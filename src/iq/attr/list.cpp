#include "iq/attr/list.hpp"

#include <algorithm>
#include <sstream>

namespace iq::attr {

AttrList::AttrList(
    std::initializer_list<std::pair<std::string, AttrValue>> init) {
  for (const auto& [name, value] : init) set(name, value);
}

AttrList& AttrList::set(const std::string& name, AttrValue value) {
  for (auto& [n, v] : entries_) {
    if (n == name) {
      v = std::move(value);
      return *this;
    }
  }
  entries_.emplace_back(name, std::move(value));
  return *this;
}

std::optional<AttrValue> AttrList::get(const std::string& name) const {
  for (const auto& [n, v] : entries_) {
    if (n == name) return v;
  }
  return std::nullopt;
}

bool AttrList::has(const std::string& name) const {
  return get(name).has_value();
}

bool AttrList::remove(const std::string& name) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const auto& e) { return e.first == name; });
  if (it == entries_.end()) return false;
  entries_.erase(it);
  return true;
}

std::optional<double> AttrList::get_double(const std::string& name) const {
  auto v = get(name);
  return v ? v->as_double() : std::nullopt;
}

std::optional<std::int64_t> AttrList::get_int(const std::string& name) const {
  auto v = get(name);
  return v ? v->as_int() : std::nullopt;
}

std::optional<bool> AttrList::get_bool(const std::string& name) const {
  auto v = get(name);
  return v ? v->as_bool() : std::nullopt;
}

std::optional<std::string> AttrList::get_string(const std::string& name) const {
  auto v = get(name);
  return v ? v->as_string() : std::nullopt;
}

void AttrList::merge(const AttrList& other) {
  for (const auto& [n, v] : other.entries_) set(n, v);
}

std::string AttrList::describe() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [n, v] : entries_) {
    if (!first) os << ", ";
    first = false;
    os << n << "=" << v.describe();
  }
  os << "}";
  return os.str();
}

void AttrList::encode(ByteWriter& w) const {
  w.u16(static_cast<std::uint16_t>(entries_.size()));
  for (const auto& [n, v] : entries_) {
    w.str16(n);
    v.encode(w);
  }
}

std::size_t AttrList::encoded_size() const {
  std::size_t n = 2;  // entry count
  for (const auto& [name, value] : entries_) {
    n += 2 + name.size() + value.encoded_size();
  }
  return n;
}

std::optional<AttrList> AttrList::decode(ByteReader& r) {
  auto count = r.u16();
  if (!count) return std::nullopt;
  AttrList list;
  for (std::uint16_t i = 0; i < *count; ++i) {
    auto name = r.str16();
    if (!name) return std::nullopt;
    auto value = AttrValue::decode(r);
    if (!value) return std::nullopt;
    list.set(*name, std::move(*value));
  }
  return list;
}

}  // namespace iq::attr
