#include "iq/attr/names.hpp"

namespace iq::attr {

const std::string kAdaptFreq = "ADAPT_FREQ";
const std::string kAdaptPktSize = "ADAPT_PKTSIZE";
const std::string kAdaptMark = "ADAPT_MARK";
const std::string kAdaptWhen = "ADAPT_WHEN";
const std::string kAdaptCondErrorRatio = "ADAPT_COND_ERATIO";
const std::string kAdaptCondRate = "ADAPT_COND_RATE";

const std::string kMsgMarked = "MSG_MARKED";
const std::string kMsgDeadline = "MSG_DEADLINE";

const std::string kAppFrameBytes = "APP_FRAME_BYTES";

const std::string kRecvLossTolerance = "RECV_LOSS_TOLERANCE";

const std::string kFlowPriority = "FLOW_PRIORITY";
const std::string kCmShare = "iq.cm.share";
const std::string kCmWeight = "iq.cm.weight";
const std::string kCmAggregateCwnd = "iq.cm.aggregate_cwnd";
const std::string kCmFlows = "iq.cm.flows";
const std::string kCmApportionChanges = "iq.cm.apportion_changes";

const std::string kNetLossRatio = "NET_LOSS_RATIO";
const std::string kNetRttMs = "NET_RTT_MS";
const std::string kNetRateBps = "NET_RATE_BPS";
const std::string kNetCwndPkts = "NET_CWND_PKTS";
const std::string kNetEpoch = "NET_EPOCH";
const std::string kNetConnectRetries = "NET_CONNECT_RETRIES";
const std::string kNetRtoBackoffs = "NET_RTO_BACKOFFS";
const std::string kNetKeepaliveMisses = "NET_KEEPALIVE_MISSES";
const std::string kNetChecksumRejects = "NET_CHECKSUM_REJECTS";
const std::string kNetSendsDropped = "NET_SENDS_DROPPED";
const std::string kNetFailed = "NET_FAILED";

const std::string kRecvRateBps = "RECV_RATE_BPS";
const std::string kRecvMsgsDelivered = "RECV_MSGS_DELIVERED";
const std::string kRecvMsgsDropped = "RECV_MSGS_DROPPED";

const std::string kFecEnabled = "iq.fec.enabled";
const std::string kFecGroupSize = "iq.fec.group_size";
const std::string kFecRedundancy = "iq.fec.redundancy";
const std::string kFecParitiesSent = "iq.fec.parities_sent";
const std::string kFecRecovered = "iq.fec.recovered";

}  // namespace iq::attr
