#pragma once
// Well-known quality attribute names (§2.3.2 of the paper).
//
// Application → transport (describing an application adaptation):
//   ADAPT_FREQ     degree of a frequency adaptation (new_rate / old_rate)
//   ADAPT_PKTSIZE  degree of a resolution adaptation (fraction removed,
//                  i.e. rate_chg: new_size = old_size * (1 - rate_chg))
//   ADAPT_MARK     degree of a reliability adaptation (unmark probability)
//   ADAPT_WHEN     timing: kAdaptNow | kAdaptDeferred | kAdaptNone
//   ADAPT_COND_*   the network conditions the adaptation was based on
//
// Transport → application (network performance metrics):
//   NET_*          loss ratio, RTT, rate, cwnd, etc.

#include <string>

namespace iq::attr {

// Application adaptation description.
extern const std::string kAdaptFreq;
extern const std::string kAdaptPktSize;
extern const std::string kAdaptMark;
extern const std::string kAdaptWhen;
extern const std::string kAdaptCondErrorRatio;
extern const std::string kAdaptCondRate;

// Values of kAdaptWhen.
inline constexpr std::int64_t kAdaptNow = 0;
inline constexpr std::int64_t kAdaptDeferred = 1;
inline constexpr std::int64_t kAdaptNone = 2;

// Per-message attributes.
extern const std::string kMsgMarked;      ///< bool: tagged (must deliver)
extern const std::string kMsgDeadline;    ///< double: seconds, soft deadline

// Application state descriptions.
extern const std::string kAppFrameBytes;  ///< int: current app frame size

// Connection-level reliability settings.
extern const std::string kRecvLossTolerance;  ///< double in [0,1]

// Congestion-manager coordination (docs/CM.md).
// Application → transport: priority weight for this flow's share of the
// per-destination aggregate window (≥ 0; carried in adaptation attrs).
extern const std::string kFlowPriority;       ///< double, apportionment weight
// Transport → application: macro-flow state exported per epoch while a
// congestion manager is attached.
extern const std::string kCmShare;            ///< double, this flow's share
extern const std::string kCmWeight;           ///< double, current weight
extern const std::string kCmAggregateCwnd;    ///< double, macro-flow window
extern const std::string kCmFlows;            ///< int, live flows on the path
extern const std::string kCmApportionChanges; ///< int, structural changes

// Network performance metrics exported by the transport (sender side).
extern const std::string kNetLossRatio;   ///< double in [0,1], per epoch
extern const std::string kNetRttMs;       ///< double, smoothed RTT
extern const std::string kNetRateBps;     ///< double, delivered rate estimate
extern const std::string kNetCwndPkts;    ///< double, congestion window
extern const std::string kNetEpoch;       ///< int, measuring-period counter
// Failure / robustness counters (cumulative, exported per epoch and on
// failure events).
extern const std::string kNetConnectRetries;   ///< int, SYN retransmissions
extern const std::string kNetRtoBackoffs;      ///< int, RTO escalations
extern const std::string kNetKeepaliveMisses;  ///< int, unanswered probes
extern const std::string kNetChecksumRejects;  ///< int, corrupt datagrams
extern const std::string kNetSendsDropped;     ///< int, wire-refused sends
extern const std::string kNetFailed;           ///< int, FailureReason (0=ok)

// Receiver-side delivery metrics (published periodically).
extern const std::string kRecvRateBps;       ///< double, delivery rate
extern const std::string kRecvMsgsDelivered; ///< int, lifetime total
extern const std::string kRecvMsgsDropped;   ///< int, lifetime total

// FEC reliability class (published once per epoch while enabled).
extern const std::string kFecEnabled;       ///< int: 0/1
extern const std::string kFecGroupSize;     ///< int: members per parity (k)
extern const std::string kFecRedundancy;    ///< double: parity overhead 1/k
extern const std::string kFecParitiesSent;  ///< int, lifetime total
extern const std::string kFecRecovered;     ///< int, segments rebuilt

}  // namespace iq::attr
