#pragma once
// AttrValue: the value half of an ECho quality attribute <name, value> tuple.
//
// Attributes carry small scalars (rates, ratios, flags) across the
// application/transport boundary; the variant covers everything the paper's
// coordination schemes exchange. Values serialize to a tagged wire format so
// attributes can also travel inside segments (receiver-side adaptations).

#include <cstdint>
#include <optional>
#include <string>
#include <variant>

#include "iq/common/bytes.hpp"

namespace iq::attr {

class AttrValue {
 public:
  AttrValue() : v_(std::int64_t{0}) {}
  AttrValue(std::int64_t v) : v_(v) {}          // NOLINT(google-explicit-constructor)
  AttrValue(int v) : v_(std::int64_t{v}) {}     // NOLINT
  AttrValue(double v) : v_(v) {}                // NOLINT
  AttrValue(bool v) : v_(v) {}                  // NOLINT
  AttrValue(std::string v) : v_(std::move(v)) {}  // NOLINT
  AttrValue(const char* v) : v_(std::string(v)) {}  // NOLINT

  bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  std::optional<std::int64_t> as_int() const;
  /// Numeric coercion: int or double both convert.
  std::optional<double> as_double() const;
  std::optional<bool> as_bool() const;
  std::optional<std::string> as_string() const;

  std::string describe() const;

  void encode(ByteWriter& w) const;
  static std::optional<AttrValue> decode(ByteReader& r);
  /// Exact number of bytes encode() will write (tag byte included).
  std::size_t encoded_size() const;

  friend bool operator==(const AttrValue&, const AttrValue&) = default;

 private:
  std::variant<std::int64_t, double, bool, std::string> v_;
};

}  // namespace iq::attr
