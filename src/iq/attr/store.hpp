#pragma once
// AttrStore: the "distributed service" through which attributes are
// registered, updated and queried (§2.2). In this library-level build it is
// a per-connection shared store: the transport publishes NET_* metrics into
// it, the application publishes its reliability settings, and either side
// can subscribe to updates.

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "iq/attr/list.hpp"

namespace iq::attr {

class AttrStore {
 public:
  using SubscriptionId = std::uint64_t;
  using UpdateFn =
      std::function<void(const std::string& name, const AttrValue& value)>;

  /// Insert or overwrite; notifies subscribers (even on equal value — a
  /// fresh measurement of an unchanged metric is still a new epoch).
  void update(const std::string& name, AttrValue value);
  void update_all(const AttrList& list);

  std::optional<AttrValue> query(const std::string& name) const;
  std::optional<double> query_double(const std::string& name) const;
  bool has(const std::string& name) const;

  /// Snapshot of every attribute.
  AttrList snapshot() const;

  /// Subscribe to updates of one attribute name ("" = all names).
  SubscriptionId subscribe(const std::string& name, UpdateFn fn);
  bool unsubscribe(SubscriptionId id);

  std::uint64_t updates_seen() const { return updates_; }

 private:
  struct Subscription {
    SubscriptionId id;
    std::string name;  // empty = wildcard
    UpdateFn fn;
  };

  std::unordered_map<std::string, AttrValue> values_;
  std::vector<Subscription> subs_;
  SubscriptionId next_id_ = 1;
  std::uint64_t updates_ = 0;
};

}  // namespace iq::attr
