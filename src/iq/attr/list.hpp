#pragma once
// AttrList: an ordered collection of <name, value> quality attributes.
//
// This is the object handed to CMwritev_attr-style send calls and returned
// from callbacks; it is small (a handful of entries), so a flat vector beats
// a map. Encodes to a length-prefixed wire form for in-band transport.

#include <optional>
#include <string>
#include <utility>

#include "iq/attr/value.hpp"
#include "iq/common/inline_vec.hpp"

namespace iq::attr {

class AttrList {
 public:
  AttrList() = default;
  AttrList(std::initializer_list<std::pair<std::string, AttrValue>> init);

  /// Insert or overwrite.
  AttrList& set(const std::string& name, AttrValue value);
  std::optional<AttrValue> get(const std::string& name) const;
  bool has(const std::string& name) const;
  bool remove(const std::string& name);

  /// Typed getters; nullopt when absent or the wrong type.
  std::optional<double> get_double(const std::string& name) const;
  std::optional<std::int64_t> get_int(const std::string& name) const;
  std::optional<bool> get_bool(const std::string& name) const;
  std::optional<std::string> get_string(const std::string& name) const;

  /// Copy every entry of `other` into this list (overwriting collisions).
  void merge(const AttrList& other);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

  std::string describe() const;

  void encode(ByteWriter& w) const;
  static std::optional<AttrList> decode(ByteReader& r);
  /// Exact number of bytes encode() will write. Lets wire-size accounting
  /// (Segment::header_bytes) and encoder pre-sizing avoid a scratch encode.
  std::size_t encoded_size() const;

  friend bool operator==(const AttrList&, const AttrList&) = default;

 private:
  // Two inline slots cover the data-path fast case (a marked flag plus one
  // channel/quality attribute); the occasional adaptation message with a
  // full report spills once and is off the per-segment path anyway.
  iq::InlineVec<std::pair<std::string, AttrValue>, 2> entries_;
};

}  // namespace iq::attr
