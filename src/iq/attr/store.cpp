#include "iq/attr/store.hpp"

#include <algorithm>

namespace iq::attr {

void AttrStore::update(const std::string& name, AttrValue value) {
  values_[name] = value;
  ++updates_;
  // Copy matching callbacks first: a subscriber may (un)subscribe from
  // within its callback.
  std::vector<UpdateFn> to_call;
  for (const auto& sub : subs_) {
    if (sub.name.empty() || sub.name == name) to_call.push_back(sub.fn);
  }
  for (auto& fn : to_call) fn(name, value);
}

void AttrStore::update_all(const AttrList& list) {
  for (const auto& [n, v] : list) update(n, v);
}

std::optional<AttrValue> AttrStore::query(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::optional<double> AttrStore::query_double(const std::string& name) const {
  auto v = query(name);
  return v ? v->as_double() : std::nullopt;
}

bool AttrStore::has(const std::string& name) const {
  return values_.contains(name);
}

AttrList AttrStore::snapshot() const {
  AttrList list;
  for (const auto& [n, v] : values_) list.set(n, v);
  return list;
}

AttrStore::SubscriptionId AttrStore::subscribe(const std::string& name,
                                               UpdateFn fn) {
  subs_.push_back(Subscription{next_id_, name, std::move(fn)});
  return next_id_++;
}

bool AttrStore::unsubscribe(SubscriptionId id) {
  auto it = std::find_if(subs_.begin(), subs_.end(),
                         [&](const Subscription& s) { return s.id == id; });
  if (it == subs_.end()) return false;
  subs_.erase(it);
  return true;
}

}  // namespace iq::attr
