#pragma once
// Application-registered callbacks on network-metric thresholds (§2.1 (2)).
//
// The application registers a pair of thresholds on a transport metric
// (typically the per-epoch error ratio). On every metric update the registry
// evaluates: value ≥ upper fires the upper callback, value ≤ lower fires the
// lower callback. The paper's applications act on *every* measuring period
// that satisfies the condition ("increases frame size by 10% in each call"),
// so per-epoch firing is the default; edge-triggered mode is available for
// applications that want one shot per excursion.
//
// A callback returns an AttrList describing the adaptation the application
// performs (ADAPT_MARK / ADAPT_PKTSIZE / ADAPT_FREQ / ADAPT_WHEN / ...);
// the transport's Coordinator consumes that result.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "iq/attr/list.hpp"
#include "iq/common/time.hpp"

namespace iq::attr {

enum class ThresholdKind { Upper, Lower };
enum class FiringMode { EveryEpoch, EdgeTriggered };

struct CallbackContext {
  std::string metric;
  double value = 0;          ///< metric value that triggered the callback
  ThresholdKind kind = ThresholdKind::Upper;
  TimePoint when;
};

/// Result of an application callback: the adaptation description. An empty
/// list means "no adaptation".
using ThresholdCallback = std::function<AttrList(const CallbackContext&)>;

class CallbackRegistry {
 public:
  using RegistrationId = std::uint64_t;

  struct ThresholdPair {
    std::string metric;
    double upper = 1.0;
    double lower = 0.0;
    FiringMode mode = FiringMode::EveryEpoch;
  };

  RegistrationId register_threshold(ThresholdPair thresholds,
                                    ThresholdCallback on_upper,
                                    ThresholdCallback on_lower);
  bool unregister(RegistrationId id);

  /// Consumer of callback results (the transport's coordinator).
  using ResultFn =
      std::function<void(const AttrList&, const CallbackContext&)>;
  void set_result_consumer(ResultFn fn) { consumer_ = std::move(fn); }

  /// Called by the transport on each metric measurement epoch.
  void on_metric(const std::string& metric, double value, TimePoint now);

  std::uint64_t fired_upper() const { return fired_upper_; }
  std::uint64_t fired_lower() const { return fired_lower_; }

 private:
  enum class Region { Normal, High, Low };

  struct Registration {
    RegistrationId id;
    ThresholdPair thresholds;
    ThresholdCallback on_upper;
    ThresholdCallback on_lower;
    Region last_region = Region::Normal;
  };

  std::vector<Registration> regs_;
  RegistrationId next_id_ = 1;
  ResultFn consumer_;
  std::uint64_t fired_upper_ = 0;
  std::uint64_t fired_lower_ = 0;
};

}  // namespace iq::attr
