#include "iq/attr/callbacks.hpp"

#include <algorithm>

#include "iq/common/check.hpp"

namespace iq::attr {

CallbackRegistry::RegistrationId CallbackRegistry::register_threshold(
    ThresholdPair thresholds, ThresholdCallback on_upper,
    ThresholdCallback on_lower) {
  IQ_CHECK_MSG(thresholds.lower <= thresholds.upper,
               "lower threshold above upper");
  regs_.push_back(Registration{next_id_, std::move(thresholds),
                               std::move(on_upper), std::move(on_lower),
                               Region::Normal});
  return next_id_++;
}

bool CallbackRegistry::unregister(RegistrationId id) {
  auto it = std::find_if(regs_.begin(), regs_.end(),
                         [&](const Registration& r) { return r.id == id; });
  if (it == regs_.end()) return false;
  regs_.erase(it);
  return true;
}

void CallbackRegistry::on_metric(const std::string& metric, double value,
                                 TimePoint now) {
  for (auto& reg : regs_) {
    if (reg.thresholds.metric != metric) continue;

    Region region = Region::Normal;
    if (value >= reg.thresholds.upper) {
      region = Region::High;
    } else if (value <= reg.thresholds.lower) {
      region = Region::Low;
    }

    const bool edge = reg.thresholds.mode == FiringMode::EdgeTriggered;
    const bool fire = region != Region::Normal &&
                      (!edge || region != reg.last_region);
    reg.last_region = region;
    if (!fire) continue;

    CallbackContext ctx{metric, value,
                        region == Region::High ? ThresholdKind::Upper
                                               : ThresholdKind::Lower,
                        now};
    ThresholdCallback& cb =
        region == Region::High ? reg.on_upper : reg.on_lower;
    if (!cb) continue;
    if (region == Region::High) {
      ++fired_upper_;
    } else {
      ++fired_lower_;
    }
    AttrList result = cb(ctx);
    if (consumer_ && !result.empty()) consumer_(result, ctx);
  }
}

}  // namespace iq::attr
