#include "iq/attr/value.hpp"

#include <sstream>

namespace iq::attr {

namespace {
enum Tag : std::uint8_t { kInt = 1, kDouble = 2, kBool = 3, kString = 4 };
}

std::optional<std::int64_t> AttrValue::as_int() const {
  if (auto* p = std::get_if<std::int64_t>(&v_)) return *p;
  return std::nullopt;
}

std::optional<double> AttrValue::as_double() const {
  if (auto* p = std::get_if<double>(&v_)) return *p;
  if (auto* p = std::get_if<std::int64_t>(&v_)) {
    return static_cast<double>(*p);
  }
  return std::nullopt;
}

std::optional<bool> AttrValue::as_bool() const {
  if (auto* p = std::get_if<bool>(&v_)) return *p;
  return std::nullopt;
}

std::optional<std::string> AttrValue::as_string() const {
  if (auto* p = std::get_if<std::string>(&v_)) return *p;
  return std::nullopt;
}

std::string AttrValue::describe() const {
  std::ostringstream os;
  if (auto* p = std::get_if<std::int64_t>(&v_)) {
    os << *p;
  } else if (auto* p2 = std::get_if<double>(&v_)) {
    os << *p2;
  } else if (auto* p3 = std::get_if<bool>(&v_)) {
    os << (*p3 ? "true" : "false");
  } else if (auto* p4 = std::get_if<std::string>(&v_)) {
    os << '"' << *p4 << '"';
  }
  return os.str();
}

void AttrValue::encode(ByteWriter& w) const {
  if (auto* p = std::get_if<std::int64_t>(&v_)) {
    w.u8(kInt);
    w.i64(*p);
  } else if (auto* p2 = std::get_if<double>(&v_)) {
    w.u8(kDouble);
    w.f64(*p2);
  } else if (auto* p3 = std::get_if<bool>(&v_)) {
    w.u8(kBool);
    w.u8(*p3 ? 1 : 0);
  } else if (auto* p4 = std::get_if<std::string>(&v_)) {
    w.u8(kString);
    w.str16(*p4);
  }
}

std::size_t AttrValue::encoded_size() const {
  if (std::holds_alternative<std::int64_t>(v_)) return 1 + 8;
  if (std::holds_alternative<double>(v_)) return 1 + 8;
  if (std::holds_alternative<bool>(v_)) return 1 + 1;
  return 1 + 2 + std::get<std::string>(v_).size();
}

std::optional<AttrValue> AttrValue::decode(ByteReader& r) {
  auto tag = r.u8();
  if (!tag) return std::nullopt;
  switch (*tag) {
    case kInt: {
      auto v = r.i64();
      if (!v) return std::nullopt;
      return AttrValue(*v);
    }
    case kDouble: {
      auto v = r.f64();
      if (!v) return std::nullopt;
      return AttrValue(*v);
    }
    case kBool: {
      auto v = r.u8();
      if (!v) return std::nullopt;
      return AttrValue(*v != 0);
    }
    case kString: {
      auto v = r.str16();
      if (!v) return std::nullopt;
      return AttrValue(std::move(*v));
    }
    default:
      return std::nullopt;
  }
}

}  // namespace iq::attr
