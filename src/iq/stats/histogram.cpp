#include "iq/stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "iq/common/check.hpp"

namespace iq::stats {

Histogram::Histogram(double min_value, double max_value, std::size_t buckets)
    : min_value_(min_value),
      log_min_(std::log(min_value)),
      log_step_((std::log(max_value) - std::log(min_value)) /
                static_cast<double>(buckets)),
      counts_(buckets, 0) {
  IQ_CHECK(min_value > 0 && max_value > min_value && buckets >= 2);
}

std::size_t Histogram::bucket_for(double value) const {
  // Negated comparison so NaN (for which every comparison is false) takes
  // the early return instead of reaching the float→size_t cast below, which
  // is undefined for NaN/inf. add() filters non-finite values, but keep
  // this defensive: bucket_for must be total over doubles.
  if (!(value > min_value_)) return 0;
  if (std::isinf(value)) return counts_.size() - 1;
  const double idx = (std::log(value) - log_min_) / log_step_;
  const auto i = static_cast<std::size_t>(std::max(idx, 0.0));
  return std::min(i, counts_.size() - 1);
}

double Histogram::bucket_lower(std::size_t i) const {
  return std::exp(log_min_ + log_step_ * static_cast<double>(i));
}

double Histogram::bucket_upper(std::size_t i) const {
  return std::exp(log_min_ + log_step_ * static_cast<double>(i + 1));
}

void Histogram::add(double value) {
  if (!std::isfinite(value)) {
    ++nonfinite_;  // a NaN here would poison min/max/sum and UB the bucket
    return;
  }
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++counts_[bucket_for(value)];
}

void Histogram::merge(const Histogram& other) {
  IQ_CHECK_MSG(counts_.size() == other.counts_.size(),
               "merging differently-shaped histograms");
  nonfinite_ += other.nonfinite_;
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += counts_[i];
    if (static_cast<double>(seen) >= target) {
      // Interpolate within the bucket, clamped to observed extremes.
      const double frac =
          counts_[i] == 0
              ? 0.0
              : (target - before) / static_cast<double>(counts_[i]);
      const double lo = std::max(bucket_lower(i), min_);
      const double hi = std::min(bucket_upper(i), max_);
      return std::clamp(lo + (hi - lo) * std::clamp(frac, 0.0, 1.0), min_,
                        max_);
    }
  }
  return max_;
}

std::string Histogram::summary(const std::string& unit) const {
  std::ostringstream os;
  os.precision(3);
  os << "n=" << count_ << " mean=" << mean() << unit << " p50=" << p50()
     << unit << " p95=" << p95() << unit << " p99=" << p99() << unit
     << " max=" << max() << unit;
  return os.str();
}

}  // namespace iq::stats
