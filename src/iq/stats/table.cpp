#include "iq/stats/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "iq/common/check.hpp"

namespace iq::stats {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  IQ_CHECK_MSG(cells.size() == headers_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << " " << std::setw(static_cast<int>(widths[c]))
         << (c == 0 ? std::left : std::right) << cells[c] << " |";
      os << std::right;
    }
    os << "\n";
  };
  emit_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace iq::stats
