#include "iq/stats/jain.hpp"

#include "iq/stats/running_stats.hpp"

namespace iq::stats {

double jain_index(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  double sumsq = 0.0;
  for (double x : xs) {
    sum += x;
    sumsq += x * x;
  }
  if (sumsq <= 0.0) return 0.0;
  return (sum * sum) / (static_cast<double>(xs.size()) * sumsq);
}

double jain_index(const RunningStats& s) {
  if (s.empty()) return 0.0;
  const double m2 = s.mean() * s.mean();
  const double denom = m2 + s.variance();
  if (denom <= 0.0) return 0.0;
  return m2 / denom;
}

}  // namespace iq::stats
