#pragma once
// Time series collection for figure reproduction (per-packet jitter traces,
// window evolution). Stores (t, value) points and renders CSV or a coarse
// ASCII sparkline for terminal output.

#include <string>
#include <vector>

#include "iq/common/time.hpp"

namespace iq::stats {

class TimeSeries {
 public:
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  void add(TimePoint t, double value);
  void add_indexed(double index, double value);

  const std::string& name() const { return name_; }
  std::size_t size() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }
  const std::vector<double>& xs() const { return xs_; }
  const std::vector<double>& values() const { return vs_; }

  /// Average of values whose x lies in [lo, hi).
  double mean_in(double lo, double hi) const;
  double max_value() const;

  /// "x,value" lines, preceded by a header.
  std::string to_csv() const;
  /// Coarse terminal plot: `buckets` columns, bucket means scaled to
  /// `height` rows.
  std::string ascii_plot(std::size_t buckets = 72, std::size_t height = 12) const;

 private:
  std::string name_;
  std::vector<double> xs_;
  std::vector<double> vs_;
};

}  // namespace iq::stats
