#pragma once
// Streaming summary statistics (Welford) — numerically stable mean/variance
// without storing samples, plus min/max. Used for inter-arrival, delay and
// jitter metrics over runs of hundreds of thousands of packets.

#include <cstdint>

namespace iq::stats {

class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::uint64_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  /// *Population* variance (M2/n); 0 with fewer than 2 samples. The metrics
  /// here summarize the complete packet trace of a run — the whole
  /// population, not a sample of a larger one — so no Bessel correction is
  /// applied. Chan's parallel-merge formula used by merge() keeps M2 exact,
  /// so merged shards and a serial pass agree to rounding (pinned by
  /// RunningStatsTest.MergeMatchesSerial).
  double variance() const;
  /// Sample variance (M2/(n-1), Bessel-corrected), for comparisons against
  /// external tools that default to it; 0 with fewer than 2 samples.
  double sample_variance() const;
  /// sqrt of the population variance().
  double stddev() const;
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace iq::stats
