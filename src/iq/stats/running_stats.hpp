#pragma once
// Streaming summary statistics (Welford) — numerically stable mean/variance
// without storing samples, plus min/max. Used for inter-arrival, delay and
// jitter metrics over runs of hundreds of thousands of packets.

#include <cstdint>

namespace iq::stats {

class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::uint64_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  /// Population variance; 0 with fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace iq::stats
