#pragma once
// Jain's fairness index: J(x) = (Σx)² / (n · Σx²), in (0, 1].
//
// 1.0 means perfectly equal allocations; k equally-served flows out of n
// (the rest starved) score k/n. The fairness benches report it over
// per-flow goodputs — for weighted (priority) scenarios, normalize each
// flow's goodput by its weight first so a perfect 2:1 split still scores 1.

#include <span>

namespace iq::stats {

class RunningStats;

/// Index over explicit allocations. Empty input, or all-zero/non-positive
/// sums of squares, return 0 (no traffic is maximally unfair, and it keeps
/// the bench math total-order-safe).
double jain_index(std::span<const double> xs);

/// Index from streaming moments: J = mean² / (mean² + Var) with the
/// *population* variance — Jain's denominator is n·Σx² over the complete
/// set of flows, exactly M2/n + mean²; Bessel-corrected sample_variance()
/// would overstate unfairness for small n (and disagree with the span
/// overload, which JainIndexTest pins).
double jain_index(const RunningStats& s);

}  // namespace iq::stats
