#include "iq/stats/interarrival.hpp"

namespace iq::stats {

void InterarrivalTracker::arrival(TimePoint t) {
  ++arrivals_;
  if (last_.has_value()) {
    gaps_.add((t - *last_).to_seconds());
  }
  last_ = t;
}

void InterarrivalTracker::reset() { *this = InterarrivalTracker{}; }

}  // namespace iq::stats
