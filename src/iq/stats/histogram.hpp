#pragma once
// Log-bucketed histogram with quantile estimates, for latency-style
// distributions (inter-arrival, one-way delay) where tails matter and the
// range spans decades. Buckets grow geometrically between configurable
// bounds; quantiles interpolate within a bucket.

#include <cstdint>
#include <string>
#include <vector>

namespace iq::stats {

class Histogram {
 public:
  /// Buckets span [min_value, max_value] geometrically; values outside are
  /// clamped into the edge buckets.
  Histogram(double min_value = 1e-6, double max_value = 1e3,
            std::size_t buckets = 128);

  /// Non-finite values (NaN, ±inf) are counted in nonfinite() and excluded
  /// from count/min/max/mean/quantiles — previously a NaN slipped past the
  /// edge clamp and indexed the bucket array through an undefined
  /// float→size_t cast.
  void add(double value);
  void merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  /// Values rejected by add() because they were NaN or ±inf.
  std::uint64_t nonfinite() const { return nonfinite_; }
  bool empty() const { return count_ == 0; }
  double min() const { return empty() ? 0.0 : min_; }
  double max() const { return empty() ? 0.0 : max_; }
  double mean() const { return empty() ? 0.0 : sum_ / static_cast<double>(count_); }

  /// Quantile in [0, 1]; interpolated within the containing bucket.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  /// One-line summary, e.g. "n=100 mean=3.1 p50=2.9 p95=8.2 p99=12".
  std::string summary(const std::string& unit = "") const;

 private:
  std::size_t bucket_for(double value) const;
  double bucket_lower(std::size_t i) const;
  double bucket_upper(std::size_t i) const;

  double min_value_;
  double log_min_;
  double log_step_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t nonfinite_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace iq::stats
