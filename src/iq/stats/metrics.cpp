#include "iq/stats/metrics.hpp"

#include <algorithm>

#include "iq/common/check.hpp"

namespace iq::stats {

void MessageMetrics::start(TimePoint t) {
  start_ = t;
  started_ = true;
}

void MessageMetrics::on_message(const MessageRecord& rec) {
  ++delivered_;
  delivered_bytes_ += rec.bytes;
  all_.arrival(rec.arrival);
  if (rec.tagged) {
    ++tagged_delivered_;
    tagged_.arrival(rec.arrival);
  }
  if (rec.sent.ns() > 0) {
    one_way_delay_.add((rec.arrival - rec.sent).to_seconds());
    one_way_delay_hist_.add((rec.arrival - rec.sent).to_millis());
  }
  end_ = std::max(end_, rec.arrival);
  finished_ = true;
}

void MessageMetrics::finish(TimePoint t) {
  end_ = std::max(end_, t);
  finished_ = true;
}

FlowSummary MessageMetrics::summary() const {
  FlowSummary s;
  s.messages = delivered_;
  s.tagged_messages = tagged_delivered_;
  if (started_ && finished_ && end_ > start_) {
    s.duration_s = (end_ - start_).to_seconds();
    s.throughput_kBps =
        static_cast<double>(delivered_bytes_) / 1000.0 / s.duration_s;
  }
  s.interarrival_s = all_.mean_seconds();
  s.jitter_s = all_.jitter_seconds();
  s.delay_ms = all_.mean_millis();
  s.jitter_ms = all_.jitter_millis();
  s.tagged_delay_ms = tagged_.mean_millis();
  s.tagged_jitter_ms = tagged_.jitter_millis();
  s.owd_mean_ms = one_way_delay_hist_.mean();
  s.owd_p50_ms = one_way_delay_hist_.p50();
  s.owd_p95_ms = one_way_delay_hist_.p95();
  if (offered_ > 0) {
    s.delivered_pct =
        100.0 * static_cast<double>(delivered_) / static_cast<double>(offered_);
  }
  return s;
}

}  // namespace iq::stats
