#include "iq/stats/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace iq::stats {

void TimeSeries::add(TimePoint t, double value) {
  add_indexed(t.to_seconds(), value);
}

void TimeSeries::add_indexed(double index, double value) {
  xs_.push_back(index);
  vs_.push_back(value);
}

double TimeSeries::mean_in(double lo, double hi) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    if (xs_[i] >= lo && xs_[i] < hi) {
      sum += vs_[i];
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double TimeSeries::max_value() const {
  if (vs_.empty()) return 0.0;
  return *std::max_element(vs_.begin(), vs_.end());
}

std::string TimeSeries::to_csv() const {
  std::ostringstream os;
  os << "x," << name_ << "\n";
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    os << xs_[i] << "," << vs_[i] << "\n";
  }
  return os.str();
}

std::string TimeSeries::ascii_plot(std::size_t buckets, std::size_t height) const {
  if (xs_.empty() || buckets == 0 || height == 0) return "(empty series)\n";

  const double xlo = xs_.front();
  const double xhi = xs_.back();
  const double span = std::max(xhi - xlo, 1e-12);

  std::vector<double> sums(buckets, 0.0);
  std::vector<std::size_t> counts(buckets, 0);
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    auto b = static_cast<std::size_t>((xs_[i] - xlo) / span * static_cast<double>(buckets));
    b = std::min(b, buckets - 1);
    sums[b] += vs_[i];
    ++counts[b];
  }
  std::vector<double> means(buckets, 0.0);
  double vmax = 0.0;
  for (std::size_t b = 0; b < buckets; ++b) {
    if (counts[b] > 0) means[b] = sums[b] / static_cast<double>(counts[b]);
    vmax = std::max(vmax, means[b]);
  }
  if (vmax <= 0.0) vmax = 1.0;

  std::ostringstream os;
  os << name_ << " (max " << vmax << ")\n";
  for (std::size_t row = height; row-- > 0;) {
    const double threshold =
        vmax * (static_cast<double>(row) + 0.5) / static_cast<double>(height);
    os << "|";
    for (std::size_t b = 0; b < buckets; ++b) {
      os << (means[b] >= threshold ? '*' : ' ');
    }
    os << "\n";
  }
  os << "+" << std::string(buckets, '-') << "\n";
  os << " x: " << xlo << " .. " << xhi << "\n";
  return os.str();
}

}  // namespace iq::stats
