#pragma once
// Inter-arrival tracker: feeds receiver-side arrival timestamps and produces
// the paper's delay/jitter metrics — mean packet inter-arrival ("delay") and
// the standard deviation of inter-arrival ("jitter", per §3).

#include <optional>

#include "iq/common/time.hpp"
#include "iq/stats/running_stats.hpp"

namespace iq::stats {

class InterarrivalTracker {
 public:
  void arrival(TimePoint t);
  void reset();

  std::uint64_t arrivals() const { return arrivals_; }
  /// Mean inter-arrival, seconds. 0 until two arrivals have been seen.
  double mean_seconds() const { return gaps_.mean(); }
  double mean_millis() const { return gaps_.mean() * 1e3; }
  /// Std-dev of inter-arrival, seconds.
  double jitter_seconds() const { return gaps_.stddev(); }
  double jitter_millis() const { return gaps_.stddev() * 1e3; }
  const RunningStats& gaps() const { return gaps_; }
  std::optional<TimePoint> last_arrival() const { return last_; }

 private:
  std::optional<TimePoint> last_;
  RunningStats gaps_;
  std::uint64_t arrivals_ = 0;
};

}  // namespace iq::stats
