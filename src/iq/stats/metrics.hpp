#pragma once
// Experiment-level metrics: the quantities every table in the paper reports.
//
// A MessageMetrics instance lives at the receiving application and is fed a
// record per delivered message; it derives duration, goodput, inter-arrival
// delay/jitter, delivery percentage and the tagged-only variants used by the
// conflicting-interests experiments (§3.3).

#include <cstdint>
#include <string>

#include "iq/common/time.hpp"
#include "iq/stats/histogram.hpp"
#include "iq/stats/interarrival.hpp"
#include "iq/stats/running_stats.hpp"

namespace iq::stats {

struct MessageRecord {
  TimePoint arrival;
  std::int64_t bytes = 0;
  bool tagged = false;
  /// Sender timestamp, for one-way delay when available.
  TimePoint sent;
};

/// Snapshot of the table metrics for one flow/run.
struct FlowSummary {
  double duration_s = 0;          ///< first send → last delivery
  double throughput_kBps = 0;     ///< delivered bytes / duration
  double interarrival_s = 0;      ///< mean gap between deliveries
  double jitter_s = 0;            ///< stddev of delivery gaps
  double delivered_pct = 0;       ///< messages delivered / offered
  double tagged_delay_ms = 0;     ///< mean gap between *tagged* deliveries
  double tagged_jitter_ms = 0;
  double delay_ms = 0;            ///< mean gap, in ms (paper tables 3/4)
  double jitter_ms = 0;
  /// One-way delay distribution (sender clock → delivery), milliseconds.
  double owd_mean_ms = 0;
  double owd_p50_ms = 0;
  double owd_p95_ms = 0;
  std::uint64_t messages = 0;
  std::uint64_t tagged_messages = 0;
};

class MessageMetrics {
 public:
  /// Call when the sender starts offering load (duration starts here).
  void start(TimePoint t);
  /// Count a message offered by the sender (delivered or not).
  void offered(std::uint64_t n = 1) { offered_ += n; }
  void on_message(const MessageRecord& rec);
  /// Freeze the end of the run; later calls to summary() use this.
  void finish(TimePoint t);

  FlowSummary summary() const;

  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t offered_count() const { return offered_; }
  std::int64_t delivered_bytes() const { return delivered_bytes_; }
  const InterarrivalTracker& all_gaps() const { return all_; }
  const InterarrivalTracker& tagged_gaps() const { return tagged_; }
  const Histogram& one_way_delay() const { return one_way_delay_hist_; }

 private:
  TimePoint start_;
  TimePoint end_;
  bool started_ = false;
  bool finished_ = false;
  std::uint64_t offered_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t tagged_delivered_ = 0;
  std::int64_t delivered_bytes_ = 0;
  InterarrivalTracker all_;
  InterarrivalTracker tagged_;
  RunningStats one_way_delay_;
  /// Milliseconds, 1 µs .. 100 s log buckets.
  Histogram one_way_delay_hist_{1e-3, 1e5, 160};
};

}  // namespace iq::stats
