#pragma once
// Plain-text table rendering for benchmark output: fixed column widths,
// right-aligned numbers, a header rule — the same look as the paper's tables
// so measured rows can be eyeballed against published ones.

#include <string>
#include <vector>

namespace iq::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 1);

  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace iq::stats
