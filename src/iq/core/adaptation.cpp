#include "iq/core/adaptation.hpp"

#include <sstream>

namespace iq::core {

AdaptationRecord AdaptationRecord::from_attrs(const attr::AttrList& attrs) {
  AdaptationRecord rec;
  rec.freq_ratio = attrs.get_double(attr::kAdaptFreq);
  rec.resolution_change = attrs.get_double(attr::kAdaptPktSize);
  rec.mark_degree = attrs.get_double(attr::kAdaptMark);
  if (auto when = attrs.get_int(attr::kAdaptWhen)) rec.when = *when;
  rec.cond_error_ratio = attrs.get_double(attr::kAdaptCondErrorRatio);
  rec.cond_rate_bps = attrs.get_double(attr::kAdaptCondRate);
  rec.frame_bytes = attrs.get_int(attr::kAppFrameBytes);
  rec.priority = attrs.get_double(attr::kFlowPriority);
  return rec;
}

attr::AttrList AdaptationRecord::to_attrs() const {
  attr::AttrList attrs;
  if (freq_ratio) attrs.set(attr::kAdaptFreq, *freq_ratio);
  if (resolution_change) attrs.set(attr::kAdaptPktSize, *resolution_change);
  if (mark_degree) attrs.set(attr::kAdaptMark, *mark_degree);
  if (when != attr::kAdaptNow) attrs.set(attr::kAdaptWhen, when);
  if (cond_error_ratio) {
    attrs.set(attr::kAdaptCondErrorRatio, *cond_error_ratio);
  }
  if (cond_rate_bps) attrs.set(attr::kAdaptCondRate, *cond_rate_bps);
  if (frame_bytes) attrs.set(attr::kAppFrameBytes, *frame_bytes);
  if (priority) attrs.set(attr::kFlowPriority, *priority);
  return attrs;
}

std::string AdaptationRecord::describe() const {
  std::ostringstream os;
  os << "adaptation{";
  if (freq_ratio) os << " freq=" << *freq_ratio;
  if (resolution_change) os << " pktsize=" << *resolution_change;
  if (mark_degree) os << " mark=" << *mark_degree;
  os << " when=" << when;
  if (cond_error_ratio) os << " cond_eratio=" << *cond_error_ratio;
  if (frame_bytes) os << " frame=" << *frame_bytes;
  if (priority) os << " priority=" << *priority;
  os << " }";
  return os.str();
}

}  // namespace iq::core
