#include "iq/core/coordinator.hpp"

#include <algorithm>

#include "iq/cm/manager.hpp"
#include "iq/common/check.hpp"
#include "iq/common/log.hpp"

namespace iq::core {

Coordinator::Coordinator(rudp::RudpConnection& conn,
                         const CoordinatorConfig& cfg)
    : conn_(conn), cfg_(cfg) {}

void Coordinator::on_callback_result(const attr::AttrList& result,
                                     const attr::CallbackContext&) {
  apply(AdaptationRecord::from_attrs(result), /*from_send_call=*/false);
}

void Coordinator::on_send_attrs(const attr::AttrList& attrs) {
  AdaptationRecord rec = AdaptationRecord::from_attrs(attrs);
  if (!rec.any()) return;
  apply(rec, /*from_send_call=*/true);
}

void Coordinator::on_epoch(const rudp::EpochReport& report) {
  current_eratio_ = report.loss_ratio;
}

void Coordinator::on_fec_redundancy(double redundancy) {
  IQ_CHECK(redundancy >= 0.0);
  const double old_rho = stats_.fec_redundancy;
  if (redundancy == old_rho) return;
  stats_.fec_redundancy = redundancy;
  if (cfg_.mode != CoordinationMode::Coordinated || !cfg_.enable_fec_scheme) {
    return;  // experimental control: parity rides on top of the fair share
  }
  const double factor = (1.0 + old_rho) / (1.0 + redundancy);
  ++stats_.fec_rescales;
  conn_.audit_coord_rescale(factor, current_eratio_, /*scheme=*/3);
  rescale_window(factor);
}

void Coordinator::attach_cm(cm::CongestionManager& mgr, cm::FlowHandle& flow) {
  cm_mgr_ = &mgr;
  cm_flow_ = &flow;
}

void Coordinator::detach_cm() {
  cm_mgr_ = nullptr;
  cm_flow_ = nullptr;
}

void Coordinator::rescale_window(double factor) {
  if (cm_mgr_ != nullptr && cfg_.cm_aggregate_rescale) {
    // Macro-flow semantics: resize the whole aggregate, then pump this
    // connection — the manager notifies the grown siblings itself.
    ++stats_.aggregate_rescales;
    cm_mgr_->scale_aggregate(factor);
    conn_.window_updated();
    return;
  }
  // Single-flow semantics; with a CM attached the flow's scale_window is a
  // donation (the freed window goes to siblings, not back to the network).
  conn_.scale_congestion_window(factor);
}

void Coordinator::cancel_deferral() {
  if (!deferral_pending_) return;
  deferral_pending_ = false;
  ++stats_.deferrals_cancelled;
}

double Coordinator::rescale_factor(double rate_chg, double eratio_then,
                                   double eratio_now, bool compensate) {
  double factor = 1.0 / (1.0 - rate_chg);
  if (compensate) {
    const double then_term = std::clamp(1.0 - eratio_then, 0.05, 1.0);
    const double now_term = std::clamp(1.0 - eratio_now, 0.05, 1.0);
    factor *= now_term / then_term;
  }
  return factor;
}

void Coordinator::apply(const AdaptationRecord& rec, bool from_send_call) {
  ++stats_.records_seen;
  const bool coordinated = cfg_.mode == CoordinationMode::Coordinated;

  // FLOW_PRIORITY: the application's apportionment weight for this flow
  // within the per-destination congestion manager. Applied regardless of
  // coordination mode — it is a sharing policy between this host's own
  // flows, not one of the paper's application/transport schemes — and
  // silently ignored when no CM is attached.
  if (rec.priority.has_value() && cm_flow_ != nullptr) {
    ++stats_.priority_updates;
    cm_flow_->set_weight(*rec.priority);
  }

  // Scheme 3 bookkeeping: a deferred announcement means the application
  // will adapt on a later send call; the transport keeps adapting alone
  // until then.
  if (rec.deferred() && !from_send_call) {
    ++stats_.deferrals_noted;
    deferral_pending_ = true;
    return;
  }

  // Scheme 3 resolution: any *concrete* adaptation — resolution or
  // frequency, from either path — closes an open deferral. On the send path
  // this is the deferred adaptation landing (the CMwritev_attr path); on
  // the callback path a newer concrete adaptation supersedes the deferred
  // one. Previously only a send-path resolution_change cleared the flag, so
  // a deferral followed by a frequency adaptation (or a superseding
  // callback) left deferral_pending_ stuck forever. Reliability (mark)
  // adaptations deliberately do not touch deferral state: they are
  // orthogonal to the rate adaptation the deferral announced.
  if (deferral_pending_ &&
      (rec.resolution_change.has_value() || rec.freq_ratio.has_value())) {
    deferral_pending_ = false;
    if (from_send_call) {
      ++stats_.deferred_resolved;
    } else {
      ++stats_.deferrals_superseded;
    }
  }

  // Scheme 1: reliability adaptation → send-side discard of unmarked data.
  if (rec.mark_degree.has_value() && coordinated &&
      cfg_.enable_conflict_scheme) {
    const bool enable = *rec.mark_degree > 0.0;
    if (enable != conn_.discard_unmarked()) {
      conn_.set_discard_unmarked(enable);
      if (enable) {
        ++stats_.discard_enables;
      } else {
        ++stats_.discard_disables;
      }
    }
  }

  // Frequency adaptation: explicitly no window change — the reduced message
  // frequency already reduces the offered bit rate. (The ablation flag
  // applies the rescale anyway, to measure why the paper forbids it.)
  if (rec.freq_ratio.has_value()) {
    ++stats_.freq_adaptations;
    if (coordinated && cfg_.rescale_on_frequency && *rec.freq_ratio > 0.0) {
      const double factor =
          std::clamp(1.0 / *rec.freq_ratio, 1.0 / 8.0, 8.0);
      stats_.last_rescale_factor = factor;
      ++stats_.window_rescales;
      conn_.audit_coord_rescale(factor, current_eratio_, /*scheme=*/2);
      rescale_window(factor);
    }
  }

  // Schemes 2/3: resolution adaptation → packet-window rescale.
  if (rec.resolution_change.has_value()) {
    if (coordinated && cfg_.enable_overreaction_scheme) {
      // Rescale only when the (post-adaptation) frame is below the segment
      // size; above it, packets stay MSS-sized and the bit rate is already
      // governed by the packet window.
      const bool frame_small =
          !rec.frame_bytes.has_value() || *rec.frame_bytes < cfg_.mss;
      const double rate_chg =
          std::clamp(*rec.resolution_change, -cfg_.max_resolution_change,
                     cfg_.max_resolution_change);
      const bool compensate = cfg_.enable_cond_compensation &&
                              rec.cond_error_ratio.has_value();
      if (frame_small) {
        const double factor = rescale_factor(
            rate_chg, rec.cond_error_ratio.value_or(current_eratio_),
            current_eratio_, compensate);
        if (compensate) ++stats_.cond_compensations;
        stats_.last_rescale_factor = factor;
        ++stats_.window_rescales;
        conn_.audit_coord_rescale(factor, current_eratio_, /*scheme=*/1);
        rescale_window(factor);
      }
    }
  }
}

}  // namespace iq::core
