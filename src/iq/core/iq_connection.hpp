#pragma once
// IqRudpConnection: the public facade of the library — RUDP plus the IQ
// coordination machinery, assembled.
//
// Owns the transport connection, the shared attribute store, the callback
// registry, the metrics exporter and the coordinator, and wires them
// together:
//
//        application
//      ┌───────────────────────────────────────────────┐
//      │  send_with_attrs(msg, attrs)   callbacks(fn)  │
//      └───────┬───────────────────────────▲───────────┘
//              │ ADAPT_*                   │ NET_* thresholds
//        ┌─────▼────────┐   results  ┌─────┴──────────┐
//        │ Coordinator  │◄───────────┤CallbackRegistry│
//        └─────┬────────┘            └─────▲──────────┘
//              │ rescale/discard           │ epochs
//        ┌─────▼────────────────────-──────┴──────┐
//        │           RudpConnection               │
//        └────────────────────────────────────────┘
//
// Constructed Coordinated (IQ-RUDP) or Uncoordinated (plain RUDP); every
// experiment in the paper compares the two.

#include <memory>
#include <optional>
#include <utility>

#include "iq/attr/callbacks.hpp"
#include "iq/attr/store.hpp"
#include "iq/core/coordinator.hpp"
#include "iq/core/metrics_export.hpp"
#include "iq/fec/redundancy.hpp"
#include "iq/rudp/connection.hpp"
#include "iq/sim/timer.hpp"

namespace iq::core {

class IqRudpConnection {
 public:
  IqRudpConnection(rudp::SegmentWire& wire, const rudp::RudpConfig& rcfg,
                   rudp::Role role, const CoordinatorConfig& ccfg = {});
  ~IqRudpConnection();
  IqRudpConnection(const IqRudpConnection&) = delete;
  IqRudpConnection& operator=(const IqRudpConnection&) = delete;

  // ------------------------------------------------------------ control --
  void connect() { conn_.connect(); }
  void listen() { conn_.listen(); }
  void close() { conn_.close(); }
  bool established() const { return conn_.established(); }

  // ------------------------------------------------------------- sending --
  /// CMwritev_attr analog: send a message, passing quality attributes that
  /// describe any application adaptation taking effect with this message.
  /// The coordinator consumes the attributes *before* the message is
  /// queued, so a window rescale applies to this very send.
  rudp::RudpConnection::SendResult send_with_attrs(
      const rudp::MessageSpec& spec, const attr::AttrList& adaptation_attrs);
  /// Plain send (no adaptation description).
  rudp::RudpConnection::SendResult send(const rudp::MessageSpec& spec) {
    return conn_.send_message(spec);
  }

  // ------------------------------------------------------------------ fec --
  /// Enable the FEC reliability class on the sender: every epoch the
  /// adaptive redundancy controller retunes the parity group size from the
  /// observed loss ratio, the coordinator debits the parity overhead from
  /// the congestion window (goodput + parity stays at the pre-FEC bit-rate
  /// fair share), and iq.fec.* attributes are published.
  void enable_fec(const fec::RedundancyConfig& rcfg = {});
  void disable_fec();
  bool fec_enabled() const { return fec_ctrl_.has_value(); }
  /// nullptr while FEC is disabled.
  const fec::AdaptiveRedundancyController* fec_controller() const {
    return fec_ctrl_ ? &*fec_ctrl_ : nullptr;
  }

  // ----------------------------------------------------------- callbacks --
  /// Register upper/lower error-ratio threshold callbacks (the common case;
  /// arbitrary metrics can be registered directly on callbacks()).
  attr::CallbackRegistry::RegistrationId register_error_ratio_callbacks(
      double upper, double lower, attr::ThresholdCallback on_upper,
      attr::ThresholdCallback on_lower,
      attr::FiringMode mode = attr::FiringMode::EveryEpoch);

  // ------------------------------------------------- congestion manager ---
  /// Join a per-destination CongestionManager (docs/CM.md) with the given
  /// priority weight: the transport's congestion control is delegated to
  /// the returned flow handle (its window becomes the apportioned share of
  /// the shared aggregate), share growth pumps the connection immediately,
  /// the coordinator applies FLOW_PRIORITY attrs to the flow's weight, and
  /// iq.cm.* metrics are exported each epoch. One CM at a time; detached
  /// automatically on connection failure and at destruction.
  cm::FlowHandle* attach_cm(cm::CongestionManager& mgr, double priority = 1.0);
  /// Leave the CM: the share returns to the siblings and the built-in
  /// controller takes over again. No-op when not attached.
  void detach_cm();
  /// nullptr while not attached.
  cm::FlowHandle* cm_flow() { return cm_flow_; }
  const cm::FlowHandle* cm_flow() const { return cm_flow_; }

  // -------------------------------------------------------------- audit ---
  /// Arm the flight recorder + invariant auditor on the underlying
  /// transport (see docs/AUDIT.md). Also armed process-wide via IQ_AUDIT=1.
  audit::AuditContext* enable_audit(audit::AuditConfig acfg = {}) {
    return conn_.enable_audit(std::move(acfg));
  }
  /// nullptr while audit is disarmed.
  audit::AuditContext* audit() { return conn_.audit(); }
  const audit::AuditContext* audit() const { return conn_.audit(); }

  // ------------------------------------------------------------- access ---
  rudp::RudpConnection& transport() { return conn_; }
  const rudp::RudpConnection& transport() const { return conn_; }
  attr::AttrStore& attributes() { return store_; }
  attr::CallbackRegistry& callbacks() { return registry_; }
  Coordinator& coordinator() { return coordinator_; }
  const Coordinator& coordinator() const { return coordinator_; }

  void set_message_handler(rudp::RudpConnection::MessageFn fn) {
    conn_.set_message_handler(std::move(fn));
  }
  void set_established_handler(rudp::RudpConnection::EstablishedFn fn) {
    conn_.set_established_handler(std::move(fn));
  }
  /// Observe epoch reports (in addition to the internal export pipeline).
  void set_epoch_observer(rudp::RudpConnection::EpochFn fn) {
    epoch_observer_ = std::move(fn);
  }
  /// Observe terminal connection failures (in addition to the internal
  /// export pipeline, which always publishes NET_FAILED and the failure
  /// counters when the transport enters Failed).
  void set_error_observer(rudp::RudpConnection::ErrorFn fn) {
    error_observer_ = std::move(fn);
  }

 private:
  void on_epoch(const rudp::EpochReport& report);
  void on_failure(rudp::FailureReason reason);
  void export_recv_metrics();
  void export_fec_attrs();

  rudp::RudpConnection conn_;
  attr::AttrStore store_;
  attr::CallbackRegistry registry_;
  Coordinator coordinator_;
  MetricsExporter exporter_;
  std::optional<fec::AdaptiveRedundancyController> fec_ctrl_;
  cm::CongestionManager* cm_mgr_ = nullptr;  ///< non-owning, while attached
  cm::FlowHandle* cm_flow_ = nullptr;
  rudp::RudpConnection::EpochFn epoch_observer_;
  rudp::RudpConnection::ErrorFn error_observer_;
  /// Receiver-side delivery metrics, published once per second.
  sim::PeriodicTask recv_export_;
  std::int64_t last_recv_bytes_ = 0;
};

}  // namespace iq::core
