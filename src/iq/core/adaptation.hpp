#pragma once
// AdaptationRecord: the parsed form of an application adaptation described
// through quality attributes (§2.3.2).
//
// An application adaptation affects the traffic it hands to IQ-RUDP along
// three axes — message frequency (ADAPT_FREQ), message size / resolution
// (ADAPT_PKTSIZE), reliability (ADAPT_MARK) — plus two meta aspects: when
// the adaptation happens (ADAPT_WHEN) and the network conditions it was
// based on (ADAPT_COND_*). The Coordinator consumes these records.

#include <optional>
#include <string>

#include "iq/attr/list.hpp"
#include "iq/attr/names.hpp"

namespace iq::core {

struct AdaptationRecord {
  /// ADAPT_FREQ: new_rate / old_rate (0.5 = half the message frequency).
  std::optional<double> freq_ratio;
  /// ADAPT_PKTSIZE: rate_chg — fraction of resolution removed
  /// (new_size = old_size * (1 - rate_chg); negative = size increase).
  std::optional<double> resolution_change;
  /// ADAPT_MARK: unmark probability now applied by the application
  /// (0 = everything marked again).
  std::optional<double> mark_degree;
  /// ADAPT_WHEN: kAdaptNow | kAdaptDeferred | kAdaptNone.
  std::int64_t when = attr::kAdaptNow;
  /// ADAPT_COND_ERATIO: the error ratio the application based this
  /// adaptation on (may be stale by the time the adaptation lands).
  std::optional<double> cond_error_ratio;
  /// ADAPT_COND_RATE: the data rate the application assumed, bps.
  std::optional<double> cond_rate_bps;
  /// APP_FRAME_BYTES: the application's frame size after the adaptation —
  /// the window rescale only applies when this is below the segment size.
  std::optional<std::int64_t> frame_bytes;
  /// FLOW_PRIORITY: the flow's apportionment weight within a per-host
  /// congestion manager (docs/CM.md); ignored when no CM is attached.
  std::optional<double> priority;

  /// True if any adaptation axis is present.
  bool any() const {
    return freq_ratio || resolution_change || mark_degree || priority ||
           when != attr::kAdaptNow;
  }
  bool deferred() const { return when == attr::kAdaptDeferred; }

  static AdaptationRecord from_attrs(const attr::AttrList& attrs);
  attr::AttrList to_attrs() const;
  std::string describe() const;
};

}  // namespace iq::core
