#include "iq/core/iq_connection.hpp"

#include "iq/cm/manager.hpp"
#include "iq/common/check.hpp"

namespace iq::core {

IqRudpConnection::IqRudpConnection(rudp::SegmentWire& wire,
                                   const rudp::RudpConfig& rcfg,
                                   rudp::Role role,
                                   const CoordinatorConfig& ccfg)
    : conn_(wire, rcfg, role),
      coordinator_(conn_, [&] {
        CoordinatorConfig c = ccfg;
        c.mss = rcfg.max_segment_payload;
        return c;
      }()),
      exporter_(conn_, store_, registry_),
      recv_export_(conn_.executor(), Duration::seconds(1),
                   [this] { export_recv_metrics(); }) {
  conn_.set_epoch_handler(
      [this](const rudp::EpochReport& report) { on_epoch(report); });
  conn_.set_error_handler(
      [this](rudp::FailureReason reason) { on_failure(reason); });
  registry_.set_result_consumer(
      [this](const attr::AttrList& result, const attr::CallbackContext& ctx) {
        coordinator_.on_callback_result(result, ctx);
      });
  recv_export_.start();
}

IqRudpConnection::~IqRudpConnection() { detach_cm(); }

cm::FlowHandle* IqRudpConnection::attach_cm(cm::CongestionManager& mgr,
                                            double priority) {
  IQ_CHECK_MSG(cm_flow_ == nullptr, "attach_cm: already attached");
  cm_mgr_ = &mgr;
  cm_flow_ = mgr.register_flow(priority);
  // Share growth caused by someone else's event (a sibling left, donated,
  // or the aggregate was rescaled) re-enters this connection's send loop.
  cm_flow_->set_share_listener([this] { conn_.window_updated(); });
  conn_.set_external_congestion(cm_flow_);
  coordinator_.attach_cm(mgr, *cm_flow_);
  return cm_flow_;
}

void IqRudpConnection::detach_cm() {
  if (cm_flow_ == nullptr) return;
  coordinator_.detach_cm();
  conn_.set_external_congestion(nullptr);
  cm_mgr_->unregister_flow(cm_flow_);
  cm_mgr_ = nullptr;
  cm_flow_ = nullptr;
}

void IqRudpConnection::export_recv_metrics() {
  const auto& st = conn_.stats();
  const std::int64_t bytes = st.payload_bytes_delivered;
  store_.update(attr::kRecvRateBps,
                static_cast<double>(bytes - last_recv_bytes_) * 8.0);
  last_recv_bytes_ = bytes;
  store_.update(attr::kRecvMsgsDelivered,
                static_cast<std::int64_t>(st.messages_delivered));
  store_.update(attr::kRecvMsgsDropped,
                static_cast<std::int64_t>(st.messages_dropped));
}

void IqRudpConnection::enable_fec(const fec::RedundancyConfig& rcfg) {
  fec_ctrl_.emplace(rcfg);
  conn_.set_fec_group_size(fec_ctrl_->group_size());
  coordinator_.on_fec_redundancy(fec_ctrl_->redundancy());
  export_fec_attrs();
}

void IqRudpConnection::disable_fec() {
  if (!fec_ctrl_) return;
  fec_ctrl_.reset();
  coordinator_.on_fec_redundancy(0.0);
  export_fec_attrs();
}

void IqRudpConnection::export_fec_attrs() {
  const auto& st = conn_.stats();
  store_.update(attr::kFecEnabled,
                static_cast<std::int64_t>(fec_ctrl_ ? 1 : 0));
  store_.update(attr::kFecGroupSize,
                static_cast<std::int64_t>(conn_.fec_group_size()));
  store_.update(attr::kFecRedundancy,
                fec_ctrl_ ? fec_ctrl_->redundancy() : 0.0);
  store_.update(attr::kFecParitiesSent,
                static_cast<std::int64_t>(st.parities_sent));
  store_.update(attr::kFecRecovered,
                static_cast<std::int64_t>(st.segments_recovered));
}

rudp::RudpConnection::SendResult IqRudpConnection::send_with_attrs(
    const rudp::MessageSpec& spec, const attr::AttrList& adaptation_attrs) {
  coordinator_.on_send_attrs(adaptation_attrs);
  rudp::MessageSpec enriched = spec;
  enriched.attrs.merge(adaptation_attrs);
  return conn_.send_message(enriched);
}

attr::CallbackRegistry::RegistrationId
IqRudpConnection::register_error_ratio_callbacks(
    double upper, double lower, attr::ThresholdCallback on_upper,
    attr::ThresholdCallback on_lower, attr::FiringMode mode) {
  attr::CallbackRegistry::ThresholdPair thresholds;
  thresholds.metric = attr::kNetLossRatio;
  thresholds.upper = upper;
  thresholds.lower = lower;
  thresholds.mode = mode;
  return registry_.register_threshold(thresholds, std::move(on_upper),
                                      std::move(on_lower));
}

void IqRudpConnection::on_failure(rudp::FailureReason reason) {
  // A Failed connection produces no further epochs, so push the terminal
  // counters out immediately; the periodic receiver export is also stopped
  // to keep the attribute store frozen at the failure snapshot.
  exporter_.on_failure(reason, conn_.executor().now());
  recv_export_.stop();
  // A failed connection sends nothing more: leave the congestion manager so
  // its share returns to the surviving siblings immediately.
  detach_cm();
  if (error_observer_) error_observer_(reason);
}

void IqRudpConnection::on_epoch(const rudp::EpochReport& report) {
  coordinator_.on_epoch(report);
  if (fec_ctrl_) {
    const std::uint16_t k = fec_ctrl_->on_epoch(report);
    if (k != conn_.fec_group_size()) conn_.set_fec_group_size(k);
    coordinator_.on_fec_redundancy(fec_ctrl_->redundancy());
    export_fec_attrs();
  }
  if (cm_flow_ != nullptr) exporter_.export_cm(*cm_flow_, report.at);
  exporter_.on_epoch(report);
  if (epoch_observer_) epoch_observer_(report);
}

}  // namespace iq::core
