#include "iq/core/iq_connection.hpp"

namespace iq::core {

IqRudpConnection::IqRudpConnection(rudp::SegmentWire& wire,
                                   const rudp::RudpConfig& rcfg,
                                   rudp::Role role,
                                   const CoordinatorConfig& ccfg)
    : conn_(wire, rcfg, role),
      coordinator_(conn_, [&] {
        CoordinatorConfig c = ccfg;
        c.mss = rcfg.max_segment_payload;
        return c;
      }()),
      exporter_(conn_, store_, registry_),
      recv_export_(conn_.executor(), Duration::seconds(1),
                   [this] { export_recv_metrics(); }) {
  conn_.set_epoch_handler(
      [this](const rudp::EpochReport& report) { on_epoch(report); });
  registry_.set_result_consumer(
      [this](const attr::AttrList& result, const attr::CallbackContext& ctx) {
        coordinator_.on_callback_result(result, ctx);
      });
  recv_export_.start();
}

void IqRudpConnection::export_recv_metrics() {
  const auto& st = conn_.stats();
  const std::int64_t bytes = st.payload_bytes_delivered;
  store_.update(attr::kRecvRateBps,
                static_cast<double>(bytes - last_recv_bytes_) * 8.0);
  last_recv_bytes_ = bytes;
  store_.update(attr::kRecvMsgsDelivered,
                static_cast<std::int64_t>(st.messages_delivered));
  store_.update(attr::kRecvMsgsDropped,
                static_cast<std::int64_t>(st.messages_dropped));
}

rudp::RudpConnection::SendResult IqRudpConnection::send_with_attrs(
    const rudp::MessageSpec& spec, const attr::AttrList& adaptation_attrs) {
  coordinator_.on_send_attrs(adaptation_attrs);
  rudp::MessageSpec enriched = spec;
  enriched.attrs.merge(adaptation_attrs);
  return conn_.send_message(enriched);
}

attr::CallbackRegistry::RegistrationId
IqRudpConnection::register_error_ratio_callbacks(
    double upper, double lower, attr::ThresholdCallback on_upper,
    attr::ThresholdCallback on_lower, attr::FiringMode mode) {
  attr::CallbackRegistry::ThresholdPair thresholds;
  thresholds.metric = attr::kNetLossRatio;
  thresholds.upper = upper;
  thresholds.lower = lower;
  thresholds.mode = mode;
  return registry_.register_threshold(thresholds, std::move(on_upper),
                                      std::move(on_lower));
}

void IqRudpConnection::on_epoch(const rudp::EpochReport& report) {
  coordinator_.on_epoch(report);
  exporter_.on_epoch(report);
  if (epoch_observer_) epoch_observer_(report);
}

}  // namespace iq::core
