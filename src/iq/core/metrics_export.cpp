#include "iq/core/metrics_export.hpp"

#include "iq/cm/manager.hpp"

namespace iq::core {

void MetricsExporter::on_epoch(const rudp::EpochReport& report) {
  ++epochs_;
  store_.update(attr::kNetLossRatio, report.loss_ratio);
  store_.update(attr::kNetRttMs, conn_.srtt().to_millis());
  store_.update(attr::kNetRateBps, report.delivered_rate_bps);
  store_.update(attr::kNetCwndPkts, conn_.congestion().cwnd());
  store_.update(attr::kNetEpoch,
                static_cast<std::int64_t>(report.epoch));
  // Feed every exported metric through the callback registry, not just the
  // loss ratio — thresholds registered on RTT, rate or cwnd must fire too.
  registry_.on_metric(attr::kNetLossRatio, report.loss_ratio, report.at);
  registry_.on_metric(attr::kNetRttMs, conn_.srtt().to_millis(), report.at);
  registry_.on_metric(attr::kNetRateBps, report.delivered_rate_bps,
                      report.at);
  registry_.on_metric(attr::kNetCwndPkts, conn_.congestion().cwnd(),
                      report.at);
  export_failure_counters(report.at);
}

void MetricsExporter::export_failure_counters(TimePoint at) {
  const rudp::RudpStats& s = conn_.stats();
  const auto retries = static_cast<std::int64_t>(s.connect_retries);
  const auto backoffs = static_cast<std::int64_t>(s.rto_backoffs);
  const auto misses = static_cast<std::int64_t>(s.keepalive_misses);
  const auto rejects = static_cast<std::int64_t>(s.checksum_rejects);
  const auto send_drops = static_cast<std::int64_t>(s.sends_dropped);
  const auto failed = static_cast<std::int64_t>(conn_.failure_reason());
  store_.update(attr::kNetConnectRetries, retries);
  store_.update(attr::kNetRtoBackoffs, backoffs);
  store_.update(attr::kNetKeepaliveMisses, misses);
  store_.update(attr::kNetChecksumRejects, rejects);
  store_.update(attr::kNetSendsDropped, send_drops);
  store_.update(attr::kNetFailed, failed);
  registry_.on_metric(attr::kNetConnectRetries,
                      static_cast<double>(retries), at);
  registry_.on_metric(attr::kNetRtoBackoffs, static_cast<double>(backoffs),
                      at);
  registry_.on_metric(attr::kNetKeepaliveMisses,
                      static_cast<double>(misses), at);
  registry_.on_metric(attr::kNetChecksumRejects,
                      static_cast<double>(rejects), at);
  registry_.on_metric(attr::kNetSendsDropped,
                      static_cast<double>(send_drops), at);
  registry_.on_metric(attr::kNetFailed, static_cast<double>(failed), at);
}

void MetricsExporter::on_failure(rudp::FailureReason /*reason*/,
                                 TimePoint at) {
  export_failure_counters(at);
}

void MetricsExporter::export_cm(const cm::FlowHandle& flow, TimePoint at) {
  const cm::CongestionManager& mgr = flow.manager();
  const auto changes =
      static_cast<std::int64_t>(mgr.stats().apportion_changes);
  store_.update(attr::kCmShare, flow.share());
  store_.update(attr::kCmWeight, flow.weight());
  store_.update(attr::kCmAggregateCwnd, mgr.aggregate_cwnd());
  store_.update(attr::kCmFlows, static_cast<std::int64_t>(mgr.flow_count()));
  store_.update(attr::kCmApportionChanges, changes);
  registry_.on_metric(attr::kCmShare, flow.share(), at);
  registry_.on_metric(attr::kCmAggregateCwnd, mgr.aggregate_cwnd(), at);
  registry_.on_metric(attr::kCmApportionChanges,
                      static_cast<double>(changes), at);
}

}  // namespace iq::core
