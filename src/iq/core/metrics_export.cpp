#include "iq/core/metrics_export.hpp"

namespace iq::core {

void MetricsExporter::on_epoch(const rudp::EpochReport& report) {
  ++epochs_;
  store_.update(attr::kNetLossRatio, report.loss_ratio);
  store_.update(attr::kNetRttMs, conn_.srtt().to_millis());
  store_.update(attr::kNetRateBps, report.delivered_rate_bps);
  store_.update(attr::kNetCwndPkts, conn_.congestion().cwnd());
  store_.update(attr::kNetEpoch,
                static_cast<std::int64_t>(report.epoch));
  // Feed every exported metric through the callback registry, not just the
  // loss ratio — thresholds registered on RTT, rate or cwnd must fire too.
  registry_.on_metric(attr::kNetLossRatio, report.loss_ratio, report.at);
  registry_.on_metric(attr::kNetRttMs, conn_.srtt().to_millis(), report.at);
  registry_.on_metric(attr::kNetRateBps, report.delivered_rate_bps,
                      report.at);
  registry_.on_metric(attr::kNetCwndPkts, conn_.congestion().cwnd(),
                      report.at);
}

}  // namespace iq::core
