#pragma once
// Coordinator: the paper's contribution — transport re-adaptation driven by
// application adaptation descriptions (§2.3).
//
// The transport is "the final point of regulation before data is sent onto
// the network", so coordination lives here. Application adaptations reach
// the coordinator through two paths:
//   * callback results — the return value of a threshold callback
//     (asynchronous notification), and
//   * send-call attributes — the AttrList parameter of
//     IqRudpConnection::send_with_attrs (the CMwritev_attr path), which is
//     how deferred adaptations announce that they have actually landed.
//
// Schemes implemented:
//   1. Conflicting interests (§3.3): a reliability adaptation
//      (ADAPT_MARK > 0) switches the transport to *discarding unmarked
//      messages before they enter the network* so tagged traffic sees the
//      freed bandwidth; ADAPT_MARK == 0 switches back.
//   2. Over-reaction (§3.4): a resolution adaptation that shrinks frames by
//      rate_chg gets the packet window rescaled by 1/(1 − rate_chg) —
//      applied only when the application frame is below the segment size,
//      because larger frames still fill MSS-sized packets. Frequency
//      adaptations get *no* rescale (the paper is explicit about this).
//   3. Limited granularity (§3.5): ADAPT_WHEN = deferred from a callback
//      means "the application will adapt later"; the transport keeps
//      adapting on its own. When the adaptation lands on a send call, the
//      window is rescaled immediately; if ADAPT_COND carries the error
//      ratio the application based its decision on, the rescale also
//      compensates for network drift during the deferral (eq. 1):
//        w ← w · 1/(1 − rate_chg) · (1 − eratio_now)/(1 − eratio_then).
//
// In Uncoordinated mode (plain RUDP) every record is parsed and counted but
// no transport re-adaptation happens — the experimental control.

#include <cstdint>

#include "iq/attr/callbacks.hpp"
#include "iq/core/adaptation.hpp"
#include "iq/rudp/connection.hpp"

namespace iq::cm {
class CongestionManager;
class FlowHandle;
}  // namespace iq::cm

namespace iq::core {

enum class CoordinationMode { Uncoordinated, Coordinated };

struct CoordinatorConfig {
  CoordinationMode mode = CoordinationMode::Coordinated;
  bool enable_conflict_scheme = true;      ///< scheme 1
  bool enable_overreaction_scheme = true;  ///< schemes 2/3 window rescale
  bool enable_cond_compensation = true;    ///< eq. (1) drift compensation
  /// FEC coordination: debit the parity overhead from the packet window so
  /// goodput + parity stays at the pre-FEC bit-rate fair share (the §3.4
  /// argument applied to transport-added redundancy: the window is rescaled
  /// by (1 + rho_old)/(1 + rho_new) whenever the parity ratio rho changes).
  bool enable_fec_scheme = true;
  /// Ablation of the paper's design decision that frequency adaptations
  /// need NO window change (§3.4): when set, a frequency adaptation gets
  /// the same 1/ratio rescale a resolution adaptation would — the paper
  /// argues this double-compensates; the ablation bench measures it.
  bool rescale_on_frequency = false;
  /// rate_chg is clamped to this to keep 1/(1-rate_chg) sane.
  double max_resolution_change = 0.9;
  /// When a congestion manager is attached (docs/CM.md), route window
  /// rescales to the macro-flow aggregate instead of this flow's share: the
  /// §3.4/§3.5 argument is about the *path's* fair share, which the CM owns.
  /// Off by default — the per-flow donation semantics (a rescale reweights
  /// this flow within the unchanged aggregate) are usually what multi-flow
  /// coordination wants.
  bool cm_aggregate_rescale = false;
  /// Maximum segment payload; window rescale applies only to frames below
  /// it (§3.4). Keep in sync with RudpConfig::max_segment_payload.
  std::int64_t mss = 1400;
};

struct CoordinatorStats {
  std::uint64_t records_seen = 0;
  std::uint64_t window_rescales = 0;
  std::uint64_t discard_enables = 0;
  std::uint64_t discard_disables = 0;
  std::uint64_t deferrals_noted = 0;
  std::uint64_t deferred_resolved = 0;      ///< landed on a later send call
  std::uint64_t deferrals_superseded = 0;   ///< replaced by a newer callback
                                            ///< adaptation before landing
  std::uint64_t deferrals_cancelled = 0;    ///< cancel_deferral() calls
  std::uint64_t cond_compensations = 0;
  std::uint64_t freq_adaptations = 0;  ///< seen, intentionally no rescale
  double last_rescale_factor = 1.0;
  std::uint64_t fec_rescales = 0;      ///< window adjustments for parity
  double fec_redundancy = 0.0;         ///< current parity ratio rho (0 = off)
  std::uint64_t aggregate_rescales = 0;  ///< rescales routed to the CM
  std::uint64_t priority_updates = 0;    ///< FLOW_PRIORITY attrs applied
};

class Coordinator {
 public:
  Coordinator(rudp::RudpConnection& conn, const CoordinatorConfig& cfg);

  /// Asynchronous path: the AttrList a threshold callback returned.
  void on_callback_result(const attr::AttrList& result,
                          const attr::CallbackContext& ctx);
  /// Send path: attributes passed with a send call.
  void on_send_attrs(const attr::AttrList& attrs);
  /// Track the transport's current error ratio for eq. (1).
  void on_epoch(const rudp::EpochReport& report);
  /// FEC path: the parity ratio rho changed (0 disables FEC). Rescales the
  /// window by (1 + rho_old)/(1 + rho_new) so cwnd·(1 + rho) — the bit rate
  /// including parity — is invariant across retunes.
  void on_fec_redundancy(double redundancy);

  /// The application abandoned a deferred adaptation (ADAPT_WHEN = deferred
  /// with no later concrete adaptation). Clears the pending flag so eq. (1)
  /// compensation is not applied to an unrelated future adaptation. No-op
  /// when nothing is pending.
  void cancel_deferral();

  const CoordinatorStats& stats() const { return stats_; }
  const CoordinatorConfig& config() const { return cfg_; }
  /// True between a deferred announcement and its resolution — resolved by
  /// the deferred adaptation landing on a send call, superseded by a newer
  /// concrete callback adaptation, or cancelled via cancel_deferral().
  bool deferral_pending() const { return deferral_pending_; }
  double current_error_ratio() const { return current_eratio_; }

  /// The window factor eq. (1) prescribes (exposed for tests).
  static double rescale_factor(double rate_chg, double eratio_then,
                               double eratio_now, bool compensate);

  // ---------------------------------------------- congestion manager -----
  /// Attach the connection's CM registration so the coordinator can (a)
  /// apply FLOW_PRIORITY adaptation attrs as apportionment weights and (b)
  /// optionally route window rescales to the aggregate
  /// (cm_aggregate_rescale). Both non-owning.
  void attach_cm(cm::CongestionManager& mgr, cm::FlowHandle& flow);
  void detach_cm();
  bool cm_attached() const { return cm_flow_ != nullptr; }

 private:
  void apply(const AdaptationRecord& rec, bool from_send_call);
  /// Route a coordination rescale to the flow (default) or, when attached
  /// with cm_aggregate_rescale, to the CM aggregate.
  void rescale_window(double factor);

  rudp::RudpConnection& conn_;
  CoordinatorConfig cfg_;
  CoordinatorStats stats_;
  bool deferral_pending_ = false;
  double current_eratio_ = 0.0;
  cm::CongestionManager* cm_mgr_ = nullptr;
  cm::FlowHandle* cm_flow_ = nullptr;
};

}  // namespace iq::core
