#pragma once
// MetricsExporter: the transport → application half of the quality-attribute
// flow (§2.1 (1)).
//
// On every loss-measuring epoch it publishes the transport's performance
// metrics (NET_*) into the shared AttrStore — queryable by the application
// at any time — and feeds the CallbackRegistry so threshold callbacks fire.

#include "iq/attr/callbacks.hpp"
#include "iq/attr/names.hpp"
#include "iq/attr/store.hpp"
#include "iq/rudp/connection.hpp"

namespace iq::cm {
class FlowHandle;
}  // namespace iq::cm

namespace iq::core {

class MetricsExporter {
 public:
  MetricsExporter(rudp::RudpConnection& conn, attr::AttrStore& store,
                  attr::CallbackRegistry& registry)
      : conn_(conn), store_(store), registry_(registry) {}

  /// Install as (or call from) the connection's epoch handler.
  void on_epoch(const rudp::EpochReport& report);

  /// Install as (or call from) the connection's error handler: publishes
  /// the terminal failure counters and NET_FAILED immediately — a Failed
  /// connection produces no further epochs to carry them.
  void on_failure(rudp::FailureReason reason, TimePoint at);

  /// Publish congestion-manager state (iq.cm.*) for an attached flow: its
  /// share and weight, the macro-flow aggregate, the live flow count and
  /// the structural apportionment-change counter. Called per epoch by the
  /// facade while a CM is attached (docs/CM.md).
  void export_cm(const cm::FlowHandle& flow, TimePoint at);

  std::uint64_t epochs_exported() const { return epochs_; }

 private:
  void export_failure_counters(TimePoint at);

 private:
  rudp::RudpConnection& conn_;
  attr::AttrStore& store_;
  attr::CallbackRegistry& registry_;
  std::uint64_t epochs_ = 0;
};

}  // namespace iq::core
