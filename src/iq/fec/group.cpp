#include "iq/fec/group.hpp"

#include <algorithm>

#include "iq/common/check.hpp"

namespace iq::fec {

// --------------------------------------------------------------- encoder --

FecEncoder::FecEncoder(FecConfig cfg) : cfg_(cfg) {
  IQ_CHECK(cfg_.group_size >= 1);
  IQ_CHECK(cfg_.interleave >= 1);
  lanes_.resize(cfg_.interleave);
}

void FecEncoder::set_group_size(std::uint16_t k) {
  IQ_CHECK(k >= 1);
  cfg_.group_size = k;
}

std::optional<rudp::Segment> FecEncoder::add(const rudp::Segment& data) {
  Lane& lane = lanes_[next_lane_];
  next_lane_ = (next_lane_ + 1) % lanes_.size();

  if (lane.members.empty()) {
    lane.group_id = next_group_++;
    lane.target = std::max<std::uint16_t>(1, cfg_.group_size);
    lane.parity_bytes = 0;
  }
  rudp::FecMember m;
  m.seq = data.seq;
  m.msg_id = data.msg_id;
  m.frag_index = data.frag_index;
  m.frag_count = data.frag_count;
  m.payload_bytes = data.payload_bytes;
  m.attrs = data.attrs;
  lane.parity_bytes = std::max(lane.parity_bytes, data.payload_bytes);
  lane.members.push_back(std::move(m));

  if (lane.members.size() >= lane.target) return close(lane);
  return std::nullopt;
}

std::vector<rudp::Segment> FecEncoder::flush() {
  std::vector<rudp::Segment> out;
  for (Lane& lane : lanes_) {
    if (!lane.members.empty()) out.push_back(close(lane));
  }
  return out;
}

std::size_t FecEncoder::open_groups() const {
  std::size_t n = 0;
  for (const Lane& lane : lanes_) {
    if (!lane.members.empty()) ++n;
  }
  return n;
}

rudp::Segment FecEncoder::close(Lane& lane) {
  rudp::Segment p;
  p.type = rudp::SegmentType::Parity;
  p.fec_protected = true;
  p.fec_group = lane.group_id;
  p.fec_members = std::move(lane.members);
  p.payload_bytes = lane.parity_bytes;
  lane.members.clear();
  ++groups_closed_;
  return p;
}

// --------------------------------------------------------------- decoder --

namespace {

/// Split `members` into have/missing under the predicate; returns indices
/// of the missing members.
std::vector<std::size_t> missing_members(
    const std::vector<rudp::RecvSegment>& members,
    const FecDecoder::HaveFn& have) {
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (!have(members[i].seq)) missing.push_back(i);
  }
  return missing;
}

}  // namespace

std::vector<rudp::RecvSegment> FecDecoder::on_parity(
    std::uint32_t group_id, std::vector<rudp::RecvSegment> members,
    const HaveFn& have) {
  ++parities_seen_;
  std::vector<rudp::RecvSegment> out;
  const auto missing = missing_members(members, have);
  if (missing.empty()) {
    held_.erase(group_id);  // duplicate parity for a settled group
    return out;
  }
  if (missing.size() == 1) {
    ++recovered_;
    out.push_back(std::move(members[missing.front()]));
    held_.erase(group_id);
    return out;
  }
  // More than one member missing: XOR cannot reconstruct yet. Hold the
  // group — a reordered late arrival may make it recoverable.
  held_[group_id] = std::move(members);
  return out;
}

std::vector<rudp::RecvSegment> FecDecoder::on_data(rudp::Seq seq,
                                                   const HaveFn& have) {
  std::vector<rudp::RecvSegment> out;
  for (auto it = held_.begin(); it != held_.end();) {
    auto& members = it->second;
    const bool contains =
        std::any_of(members.begin(), members.end(),
                    [seq](const rudp::RecvSegment& m) { return m.seq == seq; });
    if (!contains) {
      ++it;
      continue;
    }
    const auto missing = missing_members(members, have);
    if (missing.empty()) {
      it = held_.erase(it);
    } else if (missing.size() == 1) {
      ++recovered_;
      out.push_back(std::move(members[missing.front()]));
      it = held_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

void FecDecoder::prune_below(rudp::Seq cum) {
  for (auto it = held_.begin(); it != held_.end();) {
    const auto& members = it->second;
    const bool stale =
        std::all_of(members.begin(), members.end(),
                    [cum](const rudp::RecvSegment& m) { return m.seq < cum; });
    it = stale ? held_.erase(it) : std::next(it);
  }
}

}  // namespace iq::fec
