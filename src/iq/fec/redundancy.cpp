#include "iq/fec/redundancy.hpp"

#include <algorithm>
#include <cmath>

#include "iq/common/check.hpp"

namespace iq::fec {

AdaptiveRedundancyController::AdaptiveRedundancyController(
    const RedundancyConfig& cfg)
    : cfg_(cfg) {
  IQ_CHECK(cfg_.min_group_size >= 1);
  IQ_CHECK(cfg_.max_group_size >= cfg_.min_group_size);
  IQ_CHECK(cfg_.min_redundancy > 0.0);
  IQ_CHECK(cfg_.max_redundancy >= cfg_.min_redundancy);
  // Start at the cheapest protection; the first lossy epochs tighten it.
  group_size_ = cfg_.max_group_size;
}

std::uint16_t AdaptiveRedundancyController::on_epoch(
    const rudp::EpochReport& report) {
  ++epochs_;
  smoothed_loss_ = (1.0 - cfg_.ewma_gain) * smoothed_loss_ +
                   cfg_.ewma_gain * std::clamp(report.loss_ratio, 0.0, 1.0);
  const double target = std::clamp(cfg_.gain * smoothed_loss_,
                                   cfg_.min_redundancy, cfg_.max_redundancy);
  const auto k = static_cast<std::uint16_t>(std::clamp<long>(
      std::lround(1.0 / target), cfg_.min_group_size, cfg_.max_group_size));
  if (k != group_size_) {
    group_size_ = k;
    ++retunes_;
  }
  return group_size_;
}

}  // namespace iq::fec
