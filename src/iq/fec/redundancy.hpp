#pragma once
// AdaptiveRedundancyController: retunes the XOR parity ratio from the
// transport's per-epoch loss measurements (Media-TCP-style quality-driven
// reliability: redundancy follows observed loss, not a fixed budget).
//
// The controller tracks a smoothed loss ratio and targets a parity
// redundancy of `gain` times it, clamped to [min, max]; with one parity per
// group of k members the redundancy is 1/k, so the target maps to
// k = round(1/target) clamped to [min_group_size, max_group_size]. Higher
// loss ⇒ smaller groups (more parity); a quiet network decays back to the
// cheapest protection.

#include <cstdint>

#include "iq/rudp/loss_monitor.hpp"

namespace iq::fec {

struct RedundancyConfig {
  /// Target redundancy ≈ gain × smoothed loss ratio (XOR recovers one loss
  /// per group, so headroom above the raw loss ratio is needed).
  double gain = 3.0;
  double min_redundancy = 1.0 / 16.0;
  double max_redundancy = 0.5;
  double ewma_gain = 0.3;
  std::uint16_t min_group_size = 2;
  std::uint16_t max_group_size = 16;
};

class AdaptiveRedundancyController {
 public:
  explicit AdaptiveRedundancyController(const RedundancyConfig& cfg = {});

  /// Digest one epoch; returns the group size to use from now on.
  std::uint16_t on_epoch(const rudp::EpochReport& report);

  std::uint16_t group_size() const { return group_size_; }
  double redundancy() const { return 1.0 / group_size_; }
  double smoothed_loss() const { return smoothed_loss_; }
  std::uint64_t epochs() const { return epochs_; }
  /// Epochs whose digest changed the group size.
  std::uint64_t retunes() const { return retunes_; }

 private:
  RedundancyConfig cfg_;
  std::uint16_t group_size_;
  double smoothed_loss_ = 0.0;
  std::uint64_t epochs_ = 0;
  std::uint64_t retunes_ = 0;
};

}  // namespace iq::fec
