#pragma once
// XOR parity groups — the "recover without retransmitting" reliability
// class (FlEC-style forward error correction on top of RUDP).
//
// The sender enrolls every freshly transmitted FEC-protected DATA segment
// into an open group; when a group reaches its configured size k (or is
// flushed on idle) a PARITY segment is emitted carrying the group's member
// descriptors plus a parity payload (the XOR of the member payloads — sized
// as the largest member, virtual in simulation). Interleaving depth d
// round-robins consecutive segments over d open groups so a loss burst of
// up to d consecutive segments stays recoverable (one loss per group).
//
// The receiver holds PARITY segments whose groups still miss more than one
// member; as soon as exactly one member is missing, that member is
// reconstructed from its descriptor and handed to the reassembly buffer as
// if the DATA segment had arrived. Parity is fire-and-forget: it is never
// acknowledged, retransmitted, or sequenced.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "iq/rudp/recv_buffer.hpp"
#include "iq/rudp/segment.hpp"

namespace iq::fec {

struct FecConfig {
  /// Members per parity group (k): redundancy overhead ≈ 1/k.
  std::uint16_t group_size = 4;
  /// Open groups filled round-robin; > 1 tolerates short loss bursts.
  std::uint16_t interleave = 1;
};

class FecEncoder {
 public:
  explicit FecEncoder(FecConfig cfg = {});

  /// Enroll a freshly transmitted FEC-protected DATA segment; returns the
  /// PARITY segment when this completes its group. Retransmissions must not
  /// be enrolled (the original descriptor still covers them).
  std::optional<rudp::Segment> add(const rudp::Segment& data);

  /// Close every non-empty group (idle flush); partial groups still protect
  /// the members they cover.
  std::vector<rudp::Segment> flush();

  /// Retune the group size; applies to groups opened from now on.
  void set_group_size(std::uint16_t k);
  std::uint16_t group_size() const { return cfg_.group_size; }
  /// Parity overhead fraction at the current group size.
  double redundancy() const { return 1.0 / cfg_.group_size; }

  std::size_t open_groups() const;
  std::uint64_t groups_closed() const { return groups_closed_; }

 private:
  struct Lane {
    std::uint32_t group_id = 0;
    std::uint16_t target = 0;  ///< group size captured when the group opened
    rudp::FecMemberList members;  ///< moves straight into Segment::fec_members
    std::int32_t parity_bytes = 0;  ///< max member payload so far
  };

  rudp::Segment close(Lane& lane);

  FecConfig cfg_;
  std::vector<Lane> lanes_;
  std::size_t next_lane_ = 0;
  std::uint32_t next_group_ = 1;
  std::uint64_t groups_closed_ = 0;
};

class FecDecoder {
 public:
  /// Receiver-side predicate: does the reassembly buffer already account
  /// for this (unwrapped) sequence — received, recovered, or finalized?
  using HaveFn = std::function<bool(rudp::Seq)>;

  /// Digest a PARITY segment whose member seqs were already unwrapped into
  /// RecvSegments by the caller. Returns the reconstructed segment when
  /// exactly one member is missing; holds the group while more are missing.
  std::vector<rudp::RecvSegment> on_parity(
      std::uint32_t group_id, std::vector<rudp::RecvSegment> members,
      const HaveFn& have);

  /// A DATA segment arrived (possibly late, after its parity): re-check any
  /// held group it belongs to. Returns newly reconstructable segments.
  std::vector<rudp::RecvSegment> on_data(rudp::Seq seq, const HaveFn& have);

  /// Drop held groups entirely below the cumulative point (already
  /// finalized by the reassembly buffer).
  void prune_below(rudp::Seq cum);

  std::size_t held_groups() const { return held_.size(); }
  std::uint64_t parities_seen() const { return parities_seen_; }
  std::uint64_t recovered() const { return recovered_; }

 private:
  std::map<std::uint32_t, std::vector<rudp::RecvSegment>> held_;
  std::uint64_t parities_seen_ = 0;
  std::uint64_t recovered_ = 0;
};

}  // namespace iq::fec
