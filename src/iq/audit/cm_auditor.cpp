#include "iq/audit/cm_auditor.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace iq::audit {

namespace {

std::string fmt(const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}

constexpr std::size_t kMaxRecordedViolations = 256;

}  // namespace

void CmAuditor::violate(const Event& e, const char* invariant,
                        std::string detail) {
  if (violations_.size() >= kMaxRecordedViolations) return;
  Violation v;
  v.invariant = invariant;
  v.detail = std::move(detail);
  v.event = e;
  v.event_index = events_;
  violations_.push_back(std::move(v));
}

void CmAuditor::check_apportion(const Event& e) {
  ++checks_;
  apportion_due_ = false;
  const auto n = e.a;
  if (n != flow_count_) {
    violate(e, "cm-membership",
            fmt("apportionment over %llu flows but %llu joined - left",
                (unsigned long long)n, (unsigned long long)flow_count_));
  }
  const double sum = e.x;
  const double aggregate = e.y;
  if (!std::isfinite(sum) || !std::isfinite(aggregate)) {
    violate(e, "cm-share-conservation",
            fmt("non-finite apportionment: sum %g aggregate %g", sum,
                aggregate));
    return;
  }
  if (n == 0) {
    if (sum != 0.0) {
      violate(e, "cm-share-conservation",
              fmt("no flows but shares sum to %g", sum));
    }
    return;
  }
  // Conservation is an equality (so "Σ shares ≤ aggregate" holds a
  // fortiori); the tolerance covers drift-absorption rounding only.
  const double slack = 1e-9 * std::max(1.0, std::fabs(aggregate));
  if (std::fabs(sum - aggregate) > slack) {
    violate(e, "cm-share-conservation",
            fmt("shares sum to %.12g but aggregate cwnd is %.12g", sum,
                aggregate));
  }
  const double min_share = static_cast<double>(e.d) * 1e-6;
  const double entitled =
      std::min(policy_.share_floor, aggregate / static_cast<double>(n));
  // The millionths encoding truncates, so allow one ulp of it as slack.
  if (min_share < entitled - 2e-6) {
    violate(e, "cm-anti-starvation",
            fmt("min share %g below entitlement min(floor %g, %g/%llu)",
                min_share, policy_.share_floor, aggregate,
                (unsigned long long)n));
  }
  const double bound_slack =
      1e-9 * std::max({1.0, std::fabs(policy_.min_cwnd),
                       std::fabs(policy_.max_cwnd)});
  if (aggregate < policy_.min_cwnd - bound_slack ||
      aggregate > policy_.max_cwnd + bound_slack) {
    violate(e, "cm-aggregate-bounds",
            fmt("aggregate cwnd %g escapes [%g, %g]", aggregate,
                policy_.min_cwnd, policy_.max_cwnd));
  }
}

void CmAuditor::on_event(const Event& e) {
  ++events_;
  // Membership changes must re-apportion before anything else happens.
  if (apportion_due_ && e.type != EventType::CmApportion) {
    ++checks_;
    violate(e, "cm-reapportion-ordering",
            "flow join/leave not followed immediately by an apportionment");
    apportion_due_ = false;
  }
  switch (e.type) {
    case EventType::CmFlowJoin:
      ++checks_;
      ++flow_count_;
      if (e.a != flow_count_) {
        violate(e, "cm-membership",
                fmt("join reports %llu flows, audited count is %llu",
                    (unsigned long long)e.a,
                    (unsigned long long)flow_count_));
      }
      apportion_due_ = true;
      break;
    case EventType::CmFlowLeave:
      ++checks_;
      if (flow_count_ == 0) {
        violate(e, "cm-membership", "flow left an empty manager");
      } else {
        --flow_count_;
      }
      if (e.a != flow_count_) {
        violate(e, "cm-membership",
                fmt("leave reports %llu flows, audited count is %llu",
                    (unsigned long long)e.a,
                    (unsigned long long)flow_count_));
      }
      apportion_due_ = true;
      break;
    case EventType::CmApportion:
      check_apportion(e);
      break;
    case EventType::CmLoss: {
      ++checks_;
      if (e.a != e.b + e.c) {
        violate(e, "cm-loss-dedup",
                fmt("reported %llu != penalized %llu + deduped %llu",
                    (unsigned long long)e.a, (unsigned long long)e.b,
                    (unsigned long long)e.c));
      }
      if (e.a < last_reported_ || e.b < last_penalized_ ||
          e.c < last_deduped_) {
        violate(e, "cm-loss-dedup",
                fmt("dedup counters regressed: %llu/%llu/%llu after "
                    "%llu/%llu/%llu",
                    (unsigned long long)e.a, (unsigned long long)e.b,
                    (unsigned long long)e.c,
                    (unsigned long long)last_reported_,
                    (unsigned long long)last_penalized_,
                    (unsigned long long)last_deduped_));
      }
      const bool penalized_now = (e.flag & 0x2) != 0;
      if (penalized_now != (e.b > last_penalized_)) {
        violate(e, "cm-loss-dedup",
                penalized_now
                    ? std::string("event flagged penalized but the "
                                  "penalized counter did not advance")
                    : std::string("penalized counter advanced on a "
                                  "deduped event"));
      }
      last_reported_ = e.a;
      last_penalized_ = e.b;
      last_deduped_ = e.c;
      break;
    }
    case EventType::CmAggregateScale:
      ++checks_;
      if (!std::isfinite(e.x) || e.x <= 0.0) {
        violate(e, "cm-rescale-factor",
                fmt("aggregate rescale factor %g is not finite-positive",
                    e.x));
      }
      break;
    default:
      break;
  }
}

}  // namespace iq::audit
