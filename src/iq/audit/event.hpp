#pragma once
// Structured protocol events for the flight recorder and invariant auditor.
//
// One fixed-size POD per protocol action. Producers (RudpConnection, the
// Coordinator) fill the generic payload slots seq/a/b/c/d/x/y with
// per-type meanings documented in docs/AUDIT.md; keeping the record binary
// and flat is what makes steady-state recording a memcpy into a ring.

#include <cstdint>

namespace iq::audit {

enum class EventType : std::uint8_t {
  ConnOpen = 0,     ///< audit armed on a connection; a = role (0 cli, 1 srv)
  Established,      ///< handshake completed
  Failed,           ///< entered ConnState::Failed; a = FailureReason
  MsgEnqueued,      ///< seq = msg_id, a = frag_count, b = bytes
  MsgDiscarded,     ///< send-side discard of unmarked data; seq = msg_id
  MsgShed,          ///< backpressure shed before send; seq = msg_id, a = frags
  SegSent,          ///< first transmission; seq, a = msg_id, b = payload bytes
  SegRetransmit,    ///< retransmission; seq, flag bit0 = from RTO
  SegAcked,         ///< first receipt evidence for seq (terminal)
  SegSkipped,       ///< abandoned via ADVANCE (terminal); seq, a = msg_id
  LossCondemned,    ///< counted toward the loss epoch; seq, flag bit0 = RTO
  AckReceived,      ///< seq = unwrapped cum, a = newly_acked, b = bytes,
                    ///< c = eack count
  Rto,              ///< timeout fired; a = streak length, x = rto seconds
  CwndChange,       ///< x = cwnd before, y = after, flag = CwndCause
  EpochClose,       ///< seq = epoch index, a = acked, b = lost,
                    ///< c = lifetime acked, d = lifetime lost,
                    ///< x = loss ratio, y = smoothed ratio
  EpochReset,       ///< blackout-recovery discard; a = pending acked dropped,
                    ///< b = pending lost dropped, c/d = lifetime discards
  CoordRescale,     ///< coordinator window rescale; x = factor, y = eratio
  Probe,            ///< test-only injected event (seeded-violation hook)
  // Congestion-manager events (docs/CM.md). conn_id carries the manager id.
  CmFlowJoin,       ///< seq = flow id, a = flow count after, x = weight
  CmFlowLeave,      ///< seq = flow id, a = flow count after
  CmApportion,      ///< a = flow count, c = structural change counter,
                    ///< d = min share in millionths, x = Σ shares,
                    ///< y = aggregate cwnd, flag = ApportionCause
  CmLoss,           ///< a = reported, b = penalized, c = deduped (all
                    ///< cumulative, losses + timeouts); flag bit0 = timeout,
                    ///< bit1 = this event was penalized (not deduped)
  CmAggregateScale, ///< x = factor, y = aggregate cwnd after
};

/// Which code path mutated the congestion window (CwndChange.flag).
enum class CwndCause : std::uint8_t {
  Ack = 0,
  Loss,
  Timeout,
  Epoch,
  Scale,  ///< coordinator / FEC-debit scale_congestion_window
};

struct Event {
  std::uint64_t t_us = 0;   ///< executor clock, microseconds
  std::uint64_t seq = 0;    ///< unwrapped sequence / msg_id / epoch index
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::uint64_t d = 0;
  double x = 0.0;
  double y = 0.0;
  std::uint32_t conn_id = 0;
  EventType type = EventType::ConnOpen;
  std::uint8_t flag = 0;
  std::uint16_t reserved = 0;
};
static_assert(sizeof(Event) == 72, "Event is a fixed binary record");

const char* event_type_name(EventType t);
const char* cwnd_cause_name(CwndCause c);

}  // namespace iq::audit
