#include "iq/audit/auditor.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace iq::audit {

namespace {

std::string fmt(const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}

constexpr std::size_t kMaxRecordedViolations = 256;

}  // namespace

void InvariantAuditor::violate(const Event& e, const char* invariant,
                               std::string detail) {
  if (violations_.size() >= kMaxRecordedViolations) return;
  Violation v;
  v.invariant = invariant;
  v.detail = std::move(detail);
  v.event = e;
  v.event_index = events_;
  violations_.push_back(std::move(v));
}

void InvariantAuditor::on_event(const Event& e) {
  ++events_;
  switch (e.type) {
    case EventType::SegSent: {
      ++checks_;
      if (any_sent_ && e.seq <= last_sent_seq_) {
        violate(e, "seq-monotonicity",
                fmt("first transmission of seq %llu after seq %llu",
                    (unsigned long long)e.seq,
                    (unsigned long long)last_sent_seq_));
      }
      last_sent_seq_ = e.seq;
      any_sent_ = true;
      if (live_.count(e.seq) || terminal_.count(e.seq)) {
        violate(e, "seg-exactly-once",
                fmt("seq %llu transmitted fresh twice",
                    (unsigned long long)e.seq));
      }
      live_[e.seq] = SegState::Live;
      break;
    }
    case EventType::SegRetransmit:
      ++checks_;
      if (!live_.count(e.seq)) {
        violate(e, "seg-exactly-once",
                fmt("retransmission of %s seq %llu",
                    terminal_.count(e.seq) ? "resolved" : "never-sent",
                    (unsigned long long)e.seq));
      }
      break;
    case EventType::SegAcked: {
      ++checks_;
      auto it = live_.find(e.seq);
      if (it == live_.end()) {
        violate(e, "seg-exactly-once",
                fmt("ack evidence for %s seq %llu",
                    terminal_.count(e.seq) ? "already-resolved" : "never-sent",
                    (unsigned long long)e.seq));
      } else {
        live_.erase(it);
        terminal_[e.seq] = SegState::Acked;
      }
      ++batch_acked_;
      ++epoch_acked_accum_;
      break;
    }
    case EventType::SegSkipped: {
      ++checks_;
      auto it = live_.find(e.seq);
      if (it == live_.end()) {
        violate(e, "seg-exactly-once",
                fmt("skip of %s seq %llu",
                    terminal_.count(e.seq) ? "already-resolved" : "never-sent",
                    (unsigned long long)e.seq));
      } else {
        live_.erase(it);
        terminal_[e.seq] = SegState::Skipped;
      }
      break;
    }
    case EventType::LossCondemned:
      ++checks_;
      if (!live_.count(e.seq)) {
        violate(e, "seg-exactly-once",
                fmt("loss condemnation of non-live seq %llu",
                    (unsigned long long)e.seq));
      }
      ++epoch_lost_accum_;
      break;
    case EventType::AckReceived:
      ++checks_;
      if (e.a != batch_acked_) {
        violate(e, "ack-batch",
                fmt("ack reported %llu newly acked but %llu SegAcked events "
                    "were emitted for the batch",
                    (unsigned long long)e.a,
                    (unsigned long long)batch_acked_));
      }
      batch_acked_ = 0;
      break;
    case EventType::CwndChange: {
      ++checks_;
      if (!std::isfinite(e.x) || !std::isfinite(e.y) || e.y <= 0.0) {
        violate(e, "cwnd-bounds",
                fmt("cwnd %g -> %g (cause %s) is not finite-positive", e.x,
                    e.y, cwnd_cause_name(static_cast<CwndCause>(e.flag))));
        break;
      }
      const double slack =
          1e-9 * std::max({1.0, std::fabs(bounds_.min_cwnd),
                           std::fabs(bounds_.max_cwnd)});
      if (e.y < bounds_.min_cwnd - slack || e.y > bounds_.max_cwnd + slack) {
        violate(e, "cwnd-bounds",
                fmt("cwnd %g -> %g (cause %s) escapes [%g, %g]", e.x, e.y,
                    cwnd_cause_name(static_cast<CwndCause>(e.flag)),
                    bounds_.min_cwnd, bounds_.max_cwnd));
      }
      break;
    }
    case EventType::CoordRescale:
      ++checks_;
      if (!std::isfinite(e.x) || e.x <= 0.0) {
        violate(e, "rescale-factor",
                fmt("coordinator rescale factor %g is not finite-positive",
                    e.x));
      }
      break;
    case EventType::EpochClose: {
      ++checks_;
      if (e.seq != last_epoch_ + 1) {
        violate(e, "epoch-ordering",
                fmt("epoch %llu closed after epoch %llu",
                    (unsigned long long)e.seq,
                    (unsigned long long)last_epoch_));
      }
      last_epoch_ = e.seq;
      if (e.a != epoch_acked_accum_ || e.b != epoch_lost_accum_) {
        violate(e, "epoch-conservation",
                fmt("epoch %llu reports acked=%llu lost=%llu but the stream "
                    "counted acked=%llu lost=%llu",
                    (unsigned long long)e.seq, (unsigned long long)e.a,
                    (unsigned long long)e.b,
                    (unsigned long long)epoch_acked_accum_,
                    (unsigned long long)epoch_lost_accum_));
      }
      const auto resolved = static_cast<double>(e.a + e.b);
      if (e.a + e.b == 0) {
        violate(e, "epoch-conservation", "epoch closed with zero segments");
      } else {
        const double expect = static_cast<double>(e.b) / resolved;
        if (!std::isfinite(e.x) || std::fabs(e.x - expect) > 1e-9) {
          violate(e, "epoch-ratio",
                  fmt("epoch %llu loss ratio %g != lost/(acked+lost) = %g",
                      (unsigned long long)e.seq, e.x, expect));
        }
      }
      sum_epoch_acked_ += e.a;
      sum_epoch_lost_ += e.b;
      if (e.c != sum_epoch_acked_ + discarded_acked_ ||
          e.d != sum_epoch_lost_ + discarded_lost_) {
        violate(e, "lifetime-conservation",
                fmt("lifetime totals acked=%llu lost=%llu != closed epochs "
                    "(%llu/%llu) + reset discards (%llu/%llu)",
                    (unsigned long long)e.c, (unsigned long long)e.d,
                    (unsigned long long)sum_epoch_acked_,
                    (unsigned long long)sum_epoch_lost_,
                    (unsigned long long)discarded_acked_,
                    (unsigned long long)discarded_lost_));
      }
      epoch_acked_accum_ = 0;
      epoch_lost_accum_ = 0;
      break;
    }
    case EventType::EpochReset: {
      ++checks_;
      if (e.a != epoch_acked_accum_ || e.b != epoch_lost_accum_) {
        violate(e, "epoch-conservation",
                fmt("epoch reset discards acked=%llu lost=%llu but the "
                    "stream counted acked=%llu lost=%llu pending",
                    (unsigned long long)e.a, (unsigned long long)e.b,
                    (unsigned long long)epoch_acked_accum_,
                    (unsigned long long)epoch_lost_accum_));
      }
      discarded_acked_ += e.a;
      discarded_lost_ += e.b;
      if (e.c != discarded_acked_ || e.d != discarded_lost_) {
        violate(e, "lifetime-conservation",
                fmt("monitor lifetime discards %llu/%llu != audited %llu/%llu",
                    (unsigned long long)e.c, (unsigned long long)e.d,
                    (unsigned long long)discarded_acked_,
                    (unsigned long long)discarded_lost_));
      }
      epoch_acked_accum_ = 0;
      epoch_lost_accum_ = 0;
      break;
    }
    case EventType::ConnOpen:
    case EventType::Established:
    case EventType::Failed:
    case EventType::MsgEnqueued:
    case EventType::MsgDiscarded:
    case EventType::MsgShed:
    case EventType::Rto:
    case EventType::Probe:
    // Congestion-manager events carry a manager's stream, not a
    // connection's; CmAuditor owns their invariants (docs/CM.md).
    case EventType::CmFlowJoin:
    case EventType::CmFlowLeave:
    case EventType::CmApportion:
    case EventType::CmLoss:
    case EventType::CmAggregateScale:
      break;
  }
}

void InvariantAuditor::check_quiescent() {
  ++checks_;
  if (live_.empty()) return;
  Event e;
  e.type = EventType::Probe;
  e.seq = live_.begin()->first;
  violate(e, "seg-conservation",
          fmt("%llu transmitted segments never resolved (first seq %llu)",
              (unsigned long long)live_.size(),
              (unsigned long long)live_.begin()->first));
}

}  // namespace iq::audit
