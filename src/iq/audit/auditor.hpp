#pragma once
// Invariant auditor: consumes one endpoint's event stream and continuously
// cross-checks the accounting identities the adaptation schemes depend on
// (docs/AUDIT.md lists them with their rationale):
//
//   * sequence monotonicity — first transmissions carry strictly
//     increasing unwrapped sequence numbers;
//   * exactly-once resolution — every transmitted segment reaches at most
//     one terminal state (acked or skipped), retransmissions and loss
//     condemnations only touch live segments, and check_quiescent()
//     verifies a drained sender resolved everything;
//   * ack-batch consistency — SendBuffer's newly_acked counter equals the
//     per-sequence SegAcked events of the same batch;
//   * epoch conservation — each EpochClose reports exactly the acked/lost
//     events counted since the previous epoch boundary, its loss ratio is
//     lost/(acked+lost), and the LossMonitor lifetime totals equal the sum
//     of closed epochs plus reset_epoch() discards;
//   * cwnd sanity — the congestion window stays finite, positive and
//     within [min_cwnd, max_cwnd] through every mutation, including
//     coordinator rescales and FEC debits; rescale factors are finite and
//     positive.
//
// The auditor models a single endpoint (one RudpConnection's stream); each
// audited connection owns its own instance via audit::AuditContext.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "iq/audit/event.hpp"

namespace iq::audit {

struct Violation {
  std::string invariant;  ///< short identifier, e.g. "epoch-conservation"
  std::string detail;     ///< human-readable specifics
  Event event;            ///< the event that exposed the violation
  std::uint64_t event_index = 0;  ///< ordinal in the stream (1-based)
};

class InvariantAuditor {
 public:
  struct CwndBounds {
    double min_cwnd = 0.0;
    double max_cwnd = 1e18;
  };

  void set_cwnd_bounds(const CwndBounds& b) { bounds_ = b; }

  void on_event(const Event& e);

  /// Call once the sender has drained (send_idle): every transmitted
  /// segment must have resolved; leftovers are reported as violations.
  void check_quiescent();

  const std::vector<Violation>& violations() const { return violations_; }
  std::uint64_t events_seen() const { return events_; }
  std::uint64_t live_segments() const { return live_.size(); }
  std::uint64_t checks_performed() const { return checks_; }

 private:
  enum class SegState : std::uint8_t { Live, Acked, Skipped };

  void violate(const Event& e, const char* invariant, std::string detail);

  CwndBounds bounds_;
  std::uint64_t events_ = 0;
  std::uint64_t checks_ = 0;
  std::vector<Violation> violations_;

  // Segment lifecycle. `live_` holds transmitted-but-unresolved sequences;
  // resolved ones move to `terminal_` (kept so a double resolution or a
  // retransmit of a resolved segment is detected, bounded by the run).
  std::map<std::uint64_t, SegState> live_;
  std::map<std::uint64_t, SegState> terminal_;
  std::uint64_t last_sent_seq_ = 0;
  bool any_sent_ = false;

  // Ack-batch cross-check.
  std::uint64_t batch_acked_ = 0;

  // Epoch accounting.
  std::uint64_t epoch_acked_accum_ = 0;
  std::uint64_t epoch_lost_accum_ = 0;
  std::uint64_t sum_epoch_acked_ = 0;
  std::uint64_t sum_epoch_lost_ = 0;
  std::uint64_t discarded_acked_ = 0;
  std::uint64_t discarded_lost_ = 0;
  std::uint64_t last_epoch_ = 0;
};

}  // namespace iq::audit
