#pragma once
// Flight recorder: a fixed-size ring of binary protocol events.
//
// Recording is a struct copy into a preallocated vector — no allocation, no
// formatting — so it can stay armed through full-length chaos runs. The
// JSON rendering only happens on demand (a dump after a violation or an
// explicit request), never on the record path.

#include <cstdint>
#include <string>
#include <vector>

#include "iq/audit/event.hpp"

namespace iq::audit {

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 4096);

  void record(const Event& e);
  void clear();

  std::size_t capacity() const { return ring_.size(); }
  /// Events currently held (≤ capacity).
  std::size_t size() const;
  /// Events recorded over the recorder's lifetime.
  std::uint64_t total_recorded() const { return total_; }
  /// Events overwritten because the ring was full.
  std::uint64_t overwritten() const;

  /// Visit held events oldest → newest.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const std::size_t n = size();
    const std::size_t cap = ring_.size();
    const std::size_t start = (head_ + cap - n) % cap;
    for (std::size_t i = 0; i < n; ++i) fn(ring_[(start + i) % cap]);
  }

  /// Render the held window as a JSON object:
  ///   {"capacity":..,"recorded":..,"overwritten":..,"events":[...]}
  /// Non-finite doubles are emitted as null (never bare nan/inf tokens).
  std::string to_json() const;

 private:
  std::vector<Event> ring_;
  std::size_t head_ = 0;  ///< next write slot
  std::uint64_t total_ = 0;
};

/// Append one event as a JSON object to `out` (shared with dump files).
void append_event_json(std::string& out, const Event& e);

}  // namespace iq::audit
