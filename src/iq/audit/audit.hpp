#pragma once
// AuditContext: one armed connection's flight recorder + invariant auditor.
//
// RudpConnection::enable_audit() creates one; every protocol event the
// connection (and its coordinator) emits flows through record(), which
// appends to the ring and feeds the auditor. A violation triggers, in
// order: a flight-recorder JSON dump to disk (once per context), the
// user's violation handler, and — in fatal mode, the CI default — an
// abort whose message carries the dump path.
//
// Process-wide arming: exporting IQ_AUDIT=1 arms every RudpConnection
// constructed afterwards (fatal mode), which is how scripts/ci.sh --audit
// turns the whole ctest suite and the chaos matrix into an audited run.
// IQ_AUDIT_RING overrides the ring capacity, IQ_AUDIT_DUMP_DIR the dump
// directory (default: current working directory).

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "iq/audit/auditor.hpp"
#include "iq/audit/flight_recorder.hpp"

namespace iq::audit {

struct AuditConfig {
  std::size_t ring_capacity = 4096;
  /// Directory for violation dumps; empty = current working directory.
  std::string dump_dir;
  bool dump_on_violation = true;
  /// Abort the process on the first violation (after dumping). This is the
  /// CI mode: a tripped invariant fails the run with the dump path in the
  /// message. Tests exercising seeded violations leave it off and inspect
  /// violations() instead.
  bool fatal = false;
  /// Invoked for each violation, after any dump and before any abort.
  std::function<void(const Violation&)> on_violation;
};

class AuditContext {
 public:
  AuditContext(std::uint32_t conn_id, AuditConfig cfg);

  /// Feed one event to the ring and the auditor; reacts to any violation
  /// the auditor raises. The hot path when nothing is wrong is one struct
  /// copy plus the auditor's map updates.
  void record(const Event& e);

  /// Run the drained-sender conservation check (see
  /// InvariantAuditor::check_quiescent).
  void check_quiescent();

  const FlightRecorder& recorder() const { return recorder_; }
  const InvariantAuditor& auditor() const { return auditor_; }
  InvariantAuditor& auditor() { return auditor_; }
  const std::vector<Violation>& violations() const {
    return auditor_.violations();
  }

  /// Full dump: recorder window + violations, as one JSON object.
  std::string dump_json() const;
  /// Write dump_json() to `<dump_dir>/iq_audit_dump_<conn>_<n>.json`;
  /// returns the path ("" on I/O failure).
  std::string dump_to_file() const;
  /// Path of the automatic violation dump, if one was written.
  const std::string& violation_dump_path() const { return dump_path_; }

 private:
  void handle_violations();

  std::uint32_t conn_id_;
  AuditConfig cfg_;
  FlightRecorder recorder_;
  InvariantAuditor auditor_;
  std::size_t violations_handled_ = 0;
  std::string dump_path_;
};

/// Process-wide arming from the environment (IQ_AUDIT=1): non-null when
/// armed, pointing at the shared config parsed once per process.
const AuditConfig* env_audit_config();

}  // namespace iq::audit
