#include "iq/audit/flight_recorder.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "iq/common/check.hpp"

namespace iq::audit {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

// Mirrors harness::JsonWriter's contract: a non-finite double must never
// leak into the output as a bare nan/inf token.
void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out += buf;
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(std::max<std::size_t>(capacity, 16)) {}

void FlightRecorder::record(const Event& e) {
  ring_[head_] = e;
  head_ = (head_ + 1) % ring_.size();
  ++total_;
}

void FlightRecorder::clear() {
  head_ = 0;
  total_ = 0;
}

std::size_t FlightRecorder::size() const {
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(total_, ring_.size()));
}

std::uint64_t FlightRecorder::overwritten() const {
  return total_ - size();
}

void append_event_json(std::string& out, const Event& e) {
  out += "{\"t_us\":";
  append_u64(out, e.t_us);
  out += ",\"type\":\"";
  out += event_type_name(e.type);
  out += "\",\"conn\":";
  append_u64(out, e.conn_id);
  out += ",\"seq\":";
  append_u64(out, e.seq);
  out += ",\"a\":";
  append_u64(out, e.a);
  out += ",\"b\":";
  append_u64(out, e.b);
  out += ",\"c\":";
  append_u64(out, e.c);
  out += ",\"d\":";
  append_u64(out, e.d);
  out += ",\"x\":";
  append_double(out, e.x);
  out += ",\"y\":";
  append_double(out, e.y);
  out += ",\"flag\":";
  append_u64(out, e.flag);
  out += '}';
}

std::string FlightRecorder::to_json() const {
  std::string out;
  out.reserve(size() * 160 + 128);
  out += "{\"capacity\":";
  append_u64(out, ring_.size());
  out += ",\"recorded\":";
  append_u64(out, total_);
  out += ",\"overwritten\":";
  append_u64(out, overwritten());
  out += ",\"events\":[";
  bool first = true;
  for_each([&](const Event& e) {
    if (!first) out += ',';
    first = false;
    append_event_json(out, e);
  });
  out += "]}";
  return out;
}

}  // namespace iq::audit
