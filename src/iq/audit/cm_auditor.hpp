#pragma once
// CmAuditor: invariant checks for a CongestionManager's event stream
// (docs/CM.md), the macro-flow counterpart of InvariantAuditor:
//
//   * share conservation — after every apportionment the per-flow shares
//     sum to the aggregate window (so in particular never exceed it), and
//     a flow join/leave is followed immediately by a re-apportionment;
//   * anti-starvation — the smallest share is at least
//     min(floor, aggregate / n);
//   * loss-event dedup accounting — reported == penalized + deduped, all
//     three cumulative counters monotone (one shared path loss is never
//     multiply penalized, and never silently dropped either);
//   * aggregate sanity — the aggregate window stays finite and within its
//     controller bounds; aggregate rescale factors are finite-positive.
//
// One instance audits one manager's stream; the CongestionManager owns it
// (armed explicitly or via IQ_AUDIT=1) alongside a FlightRecorder ring.

#include <cstdint>
#include <string>
#include <vector>

#include "iq/audit/auditor.hpp"
#include "iq/audit/event.hpp"

namespace iq::audit {

class CmAuditor {
 public:
  struct Policy {
    double share_floor = 1.0;
    double min_cwnd = 0.0;
    double max_cwnd = 1e18;
  };

  void set_policy(const Policy& p) { policy_ = p; }

  void on_event(const Event& e);

  const std::vector<Violation>& violations() const { return violations_; }
  std::uint64_t events_seen() const { return events_; }
  std::uint64_t checks_performed() const { return checks_; }

 private:
  void violate(const Event& e, const char* invariant, std::string detail);
  void check_apportion(const Event& e);

  Policy policy_;
  std::uint64_t events_ = 0;
  std::uint64_t checks_ = 0;
  std::vector<Violation> violations_;

  // Membership cross-check, and the join/leave → apportion ordering flag.
  std::uint64_t flow_count_ = 0;
  bool apportion_due_ = false;

  // Dedup accounting monotonicity.
  std::uint64_t last_reported_ = 0;
  std::uint64_t last_penalized_ = 0;
  std::uint64_t last_deduped_ = 0;
};

}  // namespace iq::audit
