#include "iq/audit/event.hpp"

namespace iq::audit {

const char* event_type_name(EventType t) {
  switch (t) {
    case EventType::ConnOpen: return "conn-open";
    case EventType::Established: return "established";
    case EventType::Failed: return "failed";
    case EventType::MsgEnqueued: return "msg-enqueued";
    case EventType::MsgDiscarded: return "msg-discarded";
    case EventType::MsgShed: return "msg-shed";
    case EventType::SegSent: return "seg-sent";
    case EventType::SegRetransmit: return "seg-retransmit";
    case EventType::SegAcked: return "seg-acked";
    case EventType::SegSkipped: return "seg-skipped";
    case EventType::LossCondemned: return "loss-condemned";
    case EventType::AckReceived: return "ack-received";
    case EventType::Rto: return "rto";
    case EventType::CwndChange: return "cwnd-change";
    case EventType::EpochClose: return "epoch-close";
    case EventType::EpochReset: return "epoch-reset";
    case EventType::CoordRescale: return "coord-rescale";
    case EventType::Probe: return "probe";
    case EventType::CmFlowJoin: return "cm-flow-join";
    case EventType::CmFlowLeave: return "cm-flow-leave";
    case EventType::CmApportion: return "cm-apportion";
    case EventType::CmLoss: return "cm-loss";
    case EventType::CmAggregateScale: return "cm-aggregate-scale";
  }
  return "?";
}

const char* cwnd_cause_name(CwndCause c) {
  switch (c) {
    case CwndCause::Ack: return "ack";
    case CwndCause::Loss: return "loss";
    case CwndCause::Timeout: return "timeout";
    case CwndCause::Epoch: return "epoch";
    case CwndCause::Scale: return "scale";
  }
  return "?";
}

}  // namespace iq::audit
