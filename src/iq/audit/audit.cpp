#include "iq/audit/audit.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "iq/common/log.hpp"

namespace iq::audit {

namespace {

std::atomic<std::uint64_t> dump_counter{0};

}  // namespace

AuditContext::AuditContext(std::uint32_t conn_id, AuditConfig cfg)
    : conn_id_(conn_id),
      cfg_(std::move(cfg)),
      recorder_(cfg_.ring_capacity) {}

void AuditContext::record(const Event& e) {
  recorder_.record(e);
  auditor_.on_event(e);
  if (auditor_.violations().size() != violations_handled_) {
    handle_violations();
  }
}

void AuditContext::check_quiescent() {
  auditor_.check_quiescent();
  if (auditor_.violations().size() != violations_handled_) {
    handle_violations();
  }
}

void AuditContext::handle_violations() {
  const auto& all = auditor_.violations();
  // Dump once, when the first violation appears, so the recorder window
  // still shows the lead-up to it.
  if (cfg_.dump_on_violation && dump_path_.empty()) {
    dump_path_ = dump_to_file();
  }
  while (violations_handled_ < all.size()) {
    const Violation& v = all[violations_handled_++];
    log_warn("audit conn ", conn_id_, ": invariant '", v.invariant,
             "' violated — ", v.detail,
             dump_path_.empty() ? "" : (" (dump: " + dump_path_ + ")"));
    if (cfg_.on_violation) cfg_.on_violation(v);
    if (cfg_.fatal) {
      std::fprintf(stderr,
                   "IQ_AUDIT violation: conn %u invariant '%s' — %s\n"
                   "flight-recorder dump: %s\n",
                   conn_id_, v.invariant.c_str(), v.detail.c_str(),
                   dump_path_.empty() ? "(no dump)" : dump_path_.c_str());
      std::abort();
    }
  }
}

std::string AuditContext::dump_json() const {
  std::string out;
  out += "{\"conn_id\":";
  out += std::to_string(conn_id_);
  out += ",\"violations\":[";
  bool first = true;
  for (const Violation& v : auditor_.violations()) {
    if (!first) out += ',';
    first = false;
    out += "{\"invariant\":\"";
    out += v.invariant;
    out += "\",\"detail\":\"";
    // Details are generated from fixed format strings (no quotes or
    // backslashes), so a plain copy is JSON-safe.
    out += v.detail;
    out += "\",\"event_index\":";
    out += std::to_string(v.event_index);
    out += ",\"event\":";
    append_event_json(out, v.event);
    out += '}';
  }
  out += "],\"flight_recorder\":";
  out += recorder_.to_json();
  out += '}';
  return out;
}

std::string AuditContext::dump_to_file() const {
  const std::uint64_t n = dump_counter.fetch_add(1);
  std::string path = cfg_.dump_dir.empty() ? "." : cfg_.dump_dir;
  path += "/iq_audit_dump_" + std::to_string(conn_id_) + "_" +
          std::to_string(n) + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    log_warn("audit conn ", conn_id_, ": cannot write dump to ", path);
    return "";
  }
  out << dump_json() << '\n';
  return path;
}

const AuditConfig* env_audit_config() {
  static const std::unique_ptr<AuditConfig> cfg = [] {
    std::unique_ptr<AuditConfig> c;
    const char* armed = std::getenv("IQ_AUDIT");
    if (armed == nullptr || *armed == '\0' || *armed == '0') return c;
    c = std::make_unique<AuditConfig>();
    c->fatal = true;
    if (const char* ring = std::getenv("IQ_AUDIT_RING");
        ring != nullptr && *ring != '\0') {
      const long v = std::strtol(ring, nullptr, 10);
      if (v > 0) c->ring_capacity = static_cast<std::size_t>(v);
    }
    if (const char* dir = std::getenv("IQ_AUDIT_DUMP_DIR");
        dir != nullptr && *dir != '\0') {
      c->dump_dir = dir;
    }
    return c;
  }();
  return cfg.get();
}

}  // namespace iq::audit
