#include "iq/echo/mux.hpp"

namespace iq::echo {

const std::string kChannelAttr = "ECHO_CHANNEL";

MuxChannel::SubmitResult MuxChannel::submit(
    const Event& ev, const attr::AttrList& adaptation) {
  rudp::MessageSpec spec;
  spec.bytes = ev.bytes;
  spec.marked = ev.tagged;
  spec.attrs = ev.meta;
  spec.attrs.set(kChannelAttr, name_);

  auto result = mux_.conn_.send_with_attrs(spec, adaptation);
  ++submitted_;
  if (result.discarded) ++discarded_;
  return SubmitResult{result.discarded};
}

ChannelMux::ChannelMux(core::IqRudpConnection& conn) : conn_(conn) {
  conn_.set_message_handler(
      [this](const rudp::DeliveredMessage& msg) { on_message(msg); });
}

MuxChannel& ChannelMux::channel(const std::string& name) {
  auto it = channels_.find(name);
  if (it == channels_.end()) {
    it = channels_
             .emplace(name, std::unique_ptr<MuxChannel>(
                                new MuxChannel(*this, name)))
             .first;
  }
  return *it->second;
}

void ChannelMux::subscribe(const std::string& name, EventFn fn) {
  subscribers_[name] = std::move(fn);
}

bool ChannelMux::unsubscribe(const std::string& name) {
  return subscribers_.erase(name) > 0;
}

std::uint64_t ChannelMux::delivered_on(const std::string& name) const {
  auto it = delivered_per_channel_.find(name);
  return it == delivered_per_channel_.end() ? 0 : it->second;
}

void ChannelMux::on_message(const rudp::DeliveredMessage& msg) {
  auto name = msg.attrs.get_string(kChannelAttr);
  if (!name) {
    ++unrouted_;
    return;
  }
  auto sub = subscribers_.find(*name);
  if (sub == subscribers_.end()) {
    ++unrouted_;
    return;
  }
  ++delivered_;
  ++delivered_per_channel_[*name];

  ReceivedEvent rx;
  rx.event.id = msg.msg_id;
  rx.event.bytes = msg.bytes;
  rx.event.tagged = msg.marked;
  rx.event.meta = msg.attrs;
  rx.event.meta.remove(kChannelAttr);
  rx.sent = msg.first_sent;
  rx.delivered = msg.delivered;
  sub->second(rx);
}

}  // namespace iq::echo
