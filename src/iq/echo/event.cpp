#include "iq/echo/event.hpp"

// Event is a plain aggregate; this translation unit anchors the library.
