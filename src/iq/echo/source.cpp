#include "iq/echo/source.hpp"

#include "iq/common/check.hpp"

namespace iq::echo {

AdaptiveSource::AdaptiveSource(EventChannel& channel,
                               const workload::FrameSchedule* schedule,
                               const AdaptiveSourceConfig& cfg,
                               stats::MessageMetrics* metrics)
    : channel_(channel),
      schedule_(schedule),
      cfg_(cfg),
      metrics_(metrics),
      resolution_(cfg.resolution),
      marking_(cfg.marking, cfg.seed),
      frequency_(cfg.frequency),
      task_(channel.transport().transport().executor(),
            cfg.frame_rate > 0 ? Duration::from_seconds(1.0 / cfg.frame_rate)
                               : cfg.asap_poll,
            [this] {
              if (cfg_.frame_rate > 0) {
                tick();
              } else {
                refill();
              }
            }) {
  channel.transport().transport().set_max_pending_segments(
      cfg.backlog_limit_segments);
  register_callbacks();
}

void AdaptiveSource::start() {
  started_ = channel_.transport().transport().executor().now();
  if (metrics_ != nullptr) metrics_->start(started_);
  task_.start(/*fire_now=*/true);
}

void AdaptiveSource::stop() { task_.stop(); }

void AdaptiveSource::register_callbacks() {
  if (cfg_.adaptation == AdaptKind::None) return;
  channel_.transport().register_error_ratio_callbacks(
      cfg_.upper_threshold, cfg_.lower_threshold,
      [this](const attr::CallbackContext& ctx) { return on_threshold(ctx); },
      [this](const attr::CallbackContext& ctx) { return on_threshold(ctx); },
      cfg_.firing);
}

attr::AttrList AdaptiveSource::on_threshold(
    const attr::CallbackContext& ctx) {
  // Limited granularity: defer to the next aligned frame; tell the
  // transport so it can keep adapting alone meanwhile (scheme 3).
  if (cfg_.adapt_granularity > 0) {
    if (!pending_.has_value()) {
      pending_ = PendingAdaptation{ctx.kind, ctx.value};
      ++deferrals_;
    }
    attr::AttrList out;
    out.set(attr::kAdaptWhen, attr::kAdaptDeferred);
    return out;
  }
  core::AdaptationRecord rec;
  return adapt_now(ctx.kind, ctx.value, &rec);
}

attr::AttrList AdaptiveSource::adapt_now(attr::ThresholdKind kind,
                                         double eratio,
                                         core::AdaptationRecord* out_rec) {
  core::AdaptationRecord rec;
  switch (cfg_.adaptation) {
    case AdaptKind::Resolution:
      rec = kind == attr::ThresholdKind::Upper ? resolution_.shrink(eratio)
                                               : resolution_.grow();
      rec.frame_bytes = resolution_.apply(nominal_frame_bytes());
      break;
    case AdaptKind::Marking:
      rec = kind == attr::ThresholdKind::Upper ? marking_.on_upper(eratio)
                                               : marking_.on_lower();
      break;
    case AdaptKind::Frequency:
      rec = kind == attr::ThresholdKind::Upper ? frequency_.reduce(eratio)
                                               : frequency_.restore();
      break;
    case AdaptKind::None:
      break;
  }
  if (out_rec != nullptr) *out_rec = rec;
  return rec.to_attrs();
}

std::int64_t AdaptiveSource::nominal_frame_bytes() const {
  if (schedule_ != nullptr) {
    const Duration elapsed =
        channel_.transport().transport().executor().now() - started_;
    return schedule_->frame_bytes_at(elapsed);
  }
  return cfg_.fixed_frame_bytes;
}

void AdaptiveSource::tick() {
  if (done()) {
    task_.stop();
    return;
  }
  submit_frame(frame_index_++);
}

void AdaptiveSource::refill() {
  if (done()) {
    task_.stop();
    return;
  }
  auto& transport = channel_.transport().transport();
  if (!transport.established()) return;
  while (!done() &&
         transport.queued_segments() < cfg_.asap_backlog_segments) {
    submit_frame(frame_index_++);
  }
}

void AdaptiveSource::submit_frame(std::uint64_t index) {
  // Frequency adaptation thins the schedule itself.
  if (cfg_.adaptation == AdaptKind::Frequency &&
      !frequency_.should_send(index)) {
    ++frames_thinned_;
    ++frames_submitted_;  // the frame existed; it was adapted away
    if (metrics_ != nullptr) metrics_->offered();
    return;
  }

  attr::AttrList adaptation_attrs;
  // A deferred adaptation lands on the next aligned frame: perform it now,
  // announce it on this send, and (optionally) say what conditions it was
  // based on — the possibly-obsolete eratio from trigger time.
  if (pending_.has_value() && cfg_.adapt_granularity > 0 &&
      index % cfg_.adapt_granularity == 0) {
    const PendingAdaptation p = *pending_;
    pending_.reset();
    core::AdaptationRecord rec;
    adaptation_attrs = adapt_now(p.kind, p.eratio, &rec);
    if (cfg_.attach_cond) {
      adaptation_attrs.set(attr::kAdaptCondErrorRatio, p.eratio);
    }
  }

  Event ev;
  ev.bytes = resolution_.apply(nominal_frame_bytes());
  ev.tagged = marking_.decide_tagged(index);

  ++frames_submitted_;
  if (metrics_ != nullptr) metrics_->offered();
  channel_.submit(ev, adaptation_attrs);
}

}  // namespace iq::echo
