#include "iq/echo/channel.hpp"

namespace iq::echo {

EventChannel::EventChannel(std::string name,
                           core::IqRudpConnection& transport)
    : name_(std::move(name)), transport_(transport) {}

void EventChannel::set_priority(double weight) {
  priority_ = weight;
  priority_pending_ = true;
}

EventChannel::SubmitResult EventChannel::submit(
    const Event& ev, const attr::AttrList& adaptation) {
  rudp::MessageSpec spec;
  spec.bytes = ev.bytes;
  spec.marked = ev.tagged;
  spec.fec = ev.fec;
  spec.attrs = ev.meta;
  spec.attrs.set(attr::kMsgMarked, ev.tagged);

  auto result = [&] {
    if (priority_pending_) {
      // Ride the declared priority on this send's adaptation attrs (the
      // CMwritev_attr path) so the coordinator applies it in-band.
      priority_pending_ = false;
      attr::AttrList with_priority = adaptation;
      with_priority.set(attr::kFlowPriority, priority_);
      return transport_.send_with_attrs(spec, with_priority);
    }
    return transport_.send_with_attrs(spec, adaptation);
  }();
  ++submitted_;
  SubmitResult out;
  out.event_id = next_event_id_++;
  out.discarded = result.discarded;
  if (result.discarded) ++discarded_;
  return out;
}

void EventChannel::set_event_handler(EventFn fn) {
  on_event_ = std::move(fn);
  transport_.set_message_handler([this](const rudp::DeliveredMessage& msg) {
    ++received_;
    if (!on_event_) return;
    ReceivedEvent rx;
    rx.event.id = msg.msg_id;
    rx.event.bytes = msg.bytes;
    rx.event.tagged = msg.marked;
    rx.event.fec = msg.fec;
    rx.event.meta = msg.attrs;
    rx.sent = msg.first_sent;
    rx.delivered = msg.delivered;
    on_event_(rx);
  });
}

}  // namespace iq::echo
