#include "iq/echo/policies.hpp"

#include <algorithm>
#include <cmath>

namespace iq::echo {

// ------------------------------------------------------------ resolution --

ResolutionPolicy::ResolutionPolicy(const ResolutionPolicyConfig& cfg)
    : cfg_(cfg) {}

core::AdaptationRecord ResolutionPolicy::shrink(double eratio) {
  const double rate_chg =
      std::clamp(eratio, 0.0, cfg_.max_shrink_per_step);
  const double new_scale = std::max(scale_ * (1.0 - rate_chg), cfg_.min_scale);
  // The effective change may be limited by the scale floor.
  const double effective = scale_ > 0 ? 1.0 - new_scale / scale_ : 0.0;
  scale_ = new_scale;
  ++shrinks_;

  core::AdaptationRecord rec;
  rec.resolution_change = effective;
  return rec;
}

core::AdaptationRecord ResolutionPolicy::grow() {
  const double new_scale = std::min(scale_ * (1.0 + cfg_.grow_step), 1.0);
  const double effective = scale_ > 0 ? 1.0 - new_scale / scale_ : 0.0;
  scale_ = new_scale;
  ++grows_;

  core::AdaptationRecord rec;
  rec.resolution_change = effective;  // negative: size increase
  return rec;
}

std::int64_t ResolutionPolicy::apply(std::int64_t nominal_bytes) const {
  const double scaled = static_cast<double>(nominal_bytes) * scale_;
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(scaled));
}

// --------------------------------------------------------------- marking --

MarkingPolicy::MarkingPolicy(const MarkingPolicyConfig& cfg,
                             std::uint64_t seed)
    : cfg_(cfg), rng_(seed) {}

core::AdaptationRecord MarkingPolicy::on_upper(double eratio) {
  unmark_p_ = std::clamp(
      std::max(cfg_.min_unmark_probability, cfg_.eratio_gain * eratio), 0.0,
      0.95);
  active_ = true;

  core::AdaptationRecord rec;
  rec.mark_degree = unmark_p_;
  return rec;
}

core::AdaptationRecord MarkingPolicy::on_lower() {
  unmark_p_ *= (1.0 - cfg_.lower_decay);
  if (unmark_p_ < cfg_.deactivate_below) {
    unmark_p_ = 0.0;
    active_ = false;
  }

  core::AdaptationRecord rec;
  rec.mark_degree = unmark_p_;
  return rec;
}

bool MarkingPolicy::decide_tagged(std::uint64_t index) {
  if (!active_) return true;
  // Every tag_every-th message is control information: always tagged.
  if (cfg_.tag_every > 0 &&
      index % static_cast<std::uint64_t>(cfg_.tag_every) == 0) {
    return true;
  }
  return !rng_.chance(unmark_p_);
}

// ------------------------------------------------------------------- fec --

FecPolicy::FecPolicy(const FecPolicyConfig& cfg) : cfg_(cfg) {}

bool FecPolicy::update(double eratio) {
  const bool was = active_;
  if (!active_ && eratio > cfg_.activate_above) {
    active_ = true;
    ++activations_;
  } else if (active_ && eratio < cfg_.deactivate_below) {
    active_ = false;
  }
  return active_ != was;
}

Event& FecPolicy::protect(Event& ev) const {
  ev.fec = active_ && (cfg_.protect_tagged || !ev.tagged);
  return ev;
}

// ------------------------------------------------------------- frequency --

FrequencyPolicy::FrequencyPolicy(const FrequencyPolicyConfig& cfg)
    : cfg_(cfg) {}

core::AdaptationRecord FrequencyPolicy::reduce(double eratio) {
  const double new_ratio = std::max(
      ratio_ * (1.0 - cfg_.reduce_gain * std::clamp(eratio, 0.0, 0.9)),
      cfg_.min_ratio);
  const double rel = ratio_ > 0 ? new_ratio / ratio_ : 1.0;
  ratio_ = new_ratio;

  core::AdaptationRecord rec;
  rec.freq_ratio = rel;
  return rec;
}

core::AdaptationRecord FrequencyPolicy::restore() {
  const double new_ratio = std::min(ratio_ * (1.0 + cfg_.restore_step), 1.0);
  const double rel = ratio_ > 0 ? new_ratio / ratio_ : 1.0;
  ratio_ = new_ratio;

  core::AdaptationRecord rec;
  rec.freq_ratio = rel;
  return rec;
}

bool FrequencyPolicy::should_send(std::uint64_t index) const {
  if (ratio_ >= 1.0) return true;
  // Bresenham-style thinning: send frame i iff the integer count of kept
  // frames increases at i.
  const double before = std::floor(static_cast<double>(index) * ratio_);
  const double after = std::floor(static_cast<double>(index + 1) * ratio_);
  return after > before;
}

}  // namespace iq::echo
