#pragma once
// ChannelMux: many named event channels over one IQ-RUDP connection.
//
// Real collaborations move several streams between the same pair of hosts —
// control, geometry, diagnostics — and ECho multiplexes its channels over
// shared transport. The mux stamps each event with its channel name (an
// in-band attribute riding the first fragment) and dispatches deliveries to
// per-channel subscribers on the far side. Marked/unmarked reliability and
// coordination work per event exactly as on a bare channel; all streams
// share the connection's congestion state, so one hot channel cannot
// out-compete its siblings at the transport level.

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "iq/core/iq_connection.hpp"
#include "iq/echo/event.hpp"

namespace iq::echo {

/// Attribute carrying the channel name.
extern const std::string kChannelAttr;

class ChannelMux;

/// Sender-side handle to one named channel of a mux.
class MuxChannel {
 public:
  struct SubmitResult {
    bool discarded = false;
  };
  SubmitResult submit(const Event& ev, const attr::AttrList& adaptation = {});

  const std::string& name() const { return name_; }
  std::uint64_t submitted() const { return submitted_; }
  std::uint64_t discarded() const { return discarded_; }

 private:
  friend class ChannelMux;
  MuxChannel(ChannelMux& mux, std::string name)
      : mux_(mux), name_(std::move(name)) {}

  ChannelMux& mux_;
  std::string name_;
  std::uint64_t submitted_ = 0;
  std::uint64_t discarded_ = 0;
};

class ChannelMux {
 public:
  /// Takes over the connection's message handler.
  explicit ChannelMux(core::IqRudpConnection& conn);
  ChannelMux(const ChannelMux&) = delete;
  ChannelMux& operator=(const ChannelMux&) = delete;

  /// Sender side: create or fetch the handle for a named channel.
  MuxChannel& channel(const std::string& name);

  /// Receiver side: deliver events of `name` to `fn`.
  using EventFn = std::function<void(const ReceivedEvent&)>;
  void subscribe(const std::string& name, EventFn fn);
  bool unsubscribe(const std::string& name);

  core::IqRudpConnection& transport() { return conn_; }

  std::uint64_t delivered() const { return delivered_; }
  /// Deliveries with no subscriber (or no channel attribute).
  std::uint64_t unrouted() const { return unrouted_; }
  std::uint64_t delivered_on(const std::string& name) const;

 private:
  friend class MuxChannel;
  void on_message(const rudp::DeliveredMessage& msg);

  core::IqRudpConnection& conn_;
  std::map<std::string, std::unique_ptr<MuxChannel>> channels_;
  std::map<std::string, EventFn> subscribers_;
  std::map<std::string, std::uint64_t> delivered_per_channel_;
  std::uint64_t delivered_ = 0;
  std::uint64_t unrouted_ = 0;
};

}  // namespace iq::echo
