#pragma once
// MetricSink: the receiving application — feeds every delivered event into
// a MessageMetrics collector and optionally into per-packet time series
// (the figures' jitter traces).

#include "iq/echo/channel.hpp"
#include "iq/stats/metrics.hpp"
#include "iq/stats/timeseries.hpp"

namespace iq::echo {

class MetricSink {
 public:
  /// `jitter_series` may be null; when set, records |gap - prev_gap| per
  /// delivery indexed by packet number (the paper's Figures 2/3).
  MetricSink(EventChannel& channel, stats::MessageMetrics& metrics,
             stats::TimeSeries* jitter_series = nullptr);

  std::uint64_t events() const { return events_; }
  TimePoint last_arrival() const { return last_arrival_; }

 private:
  void on_event(const ReceivedEvent& ev);

  stats::MessageMetrics& metrics_;
  stats::TimeSeries* jitter_series_;
  std::uint64_t events_ = 0;
  TimePoint last_arrival_;
  Duration prev_gap_ = Duration::zero();
  bool have_prev_gap_ = false;
  bool have_last_ = false;
};

}  // namespace iq::echo
