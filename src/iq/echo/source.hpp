#pragma once
// AdaptiveSource: the paper's evaluation application.
//
// Streams frames over an EventChannel either at a fixed frame rate or as
// fast as the transport allows (ASAP), with frame sizes taken from the
// MBone-trace schedule or fixed. Registers the paper's error-ratio
// threshold callbacks and runs one of the adaptation policies:
//   Resolution (§3.4)  — shrink/grow frame size; record via callback result
//                        (immediate) or via send attrs (deferred, §3.5).
//   Marking (§3.3)     — tag every 5th frame, unmark the rest with
//                        probability tracking the error ratio.
//   Frequency          — thin the frame schedule.
//
// The limited-granularity experiments (§3.5) set adapt_granularity = N: a
// triggered adaptation is deferred until the next frame whose index is
// divisible by N; the callback answers ADAPT_WHEN=deferred and the actual
// change is announced with attributes on that frame's submit — with
// ADAPT_COND_ERATIO attached when attach_cond is set.

#include <cstdint>
#include <optional>

#include "iq/echo/channel.hpp"
#include "iq/echo/policies.hpp"
#include "iq/sim/timer.hpp"
#include "iq/stats/metrics.hpp"
#include "iq/workload/frame_schedule.hpp"

namespace iq::echo {

enum class AdaptKind { None, Resolution, Marking, Frequency };

struct AdaptiveSourceConfig {
  /// Frames per second; 0 = send as fast as the transport allows.
  double frame_rate = 0.0;
  std::uint64_t total_frames = 1000;
  /// Frame size when no schedule is given.
  std::int64_t fixed_frame_bytes = 1400;

  AdaptKind adaptation = AdaptKind::None;
  double upper_threshold = 0.15;
  double lower_threshold = 0.01;
  /// 0 = adapt immediately in the callback; N = only at frames with
  /// index % N == 0 (the paper's "limited granularity").
  std::uint64_t adapt_granularity = 0;
  /// Attach ADAPT_COND_ERATIO to deferred adaptations (scheme 3 full).
  bool attach_cond = false;
  /// EveryEpoch fires a threshold callback on each qualifying measuring
  /// period (the paper's default); EdgeTriggered fires once per excursion.
  attr::FiringMode firing = attr::FiringMode::EveryEpoch;

  MarkingPolicyConfig marking{};
  ResolutionPolicyConfig resolution{};
  FrequencyPolicyConfig frequency{};

  std::uint64_t seed = 7;
  /// ASAP mode: refill when fewer than this many segments are queued.
  std::size_t asap_backlog_segments = 64;
  Duration asap_poll = Duration::millis(1);
  /// Bound on the transport's unsent backlog: when a timed source outruns a
  /// degraded link (blackout, heavy loss) the transport sheds the oldest
  /// whole queued messages instead of growing without bound. 0 = unbounded.
  std::size_t backlog_limit_segments = 4096;
};

class AdaptiveSource {
 public:
  /// `schedule` may be null (fixed frame size). `metrics` may be null.
  AdaptiveSource(EventChannel& channel,
                 const workload::FrameSchedule* schedule,
                 const AdaptiveSourceConfig& cfg,
                 stats::MessageMetrics* metrics);

  void start();
  void stop();
  bool done() const { return frames_submitted_ >= cfg_.total_frames; }

  std::uint64_t frames_submitted() const { return frames_submitted_; }
  std::uint64_t frames_thinned() const { return frames_thinned_; }
  std::uint64_t deferrals() const { return deferrals_; }
  const ResolutionPolicy& resolution_policy() const { return resolution_; }
  const MarkingPolicy& marking_policy() const { return marking_; }
  const FrequencyPolicy& frequency_policy() const { return frequency_; }

 private:
  struct PendingAdaptation {
    attr::ThresholdKind kind;
    double eratio;
  };

  void register_callbacks();
  attr::AttrList on_threshold(const attr::CallbackContext& ctx);
  attr::AttrList adapt_now(attr::ThresholdKind kind, double eratio,
                           core::AdaptationRecord* out_rec);
  void tick();
  void refill();
  void submit_frame(std::uint64_t index);
  std::int64_t nominal_frame_bytes() const;

  EventChannel& channel_;
  const workload::FrameSchedule* schedule_;
  AdaptiveSourceConfig cfg_;
  stats::MessageMetrics* metrics_;

  ResolutionPolicy resolution_;
  MarkingPolicy marking_;
  FrequencyPolicy frequency_;

  sim::PeriodicTask task_;
  TimePoint started_;
  std::uint64_t frames_submitted_ = 0;
  std::uint64_t frame_index_ = 0;
  std::uint64_t frames_thinned_ = 0;
  std::uint64_t deferrals_ = 0;
  std::optional<PendingAdaptation> pending_;
};

}  // namespace iq::echo
