#include "iq/echo/derived.hpp"

#include <algorithm>

namespace iq::echo {

void DerivedChannel::add_transform(std::string stage_name, EventTransform fn) {
  transforms_.push_back(std::move(fn));
  StageStats s;
  s.name = std::move(stage_name);
  stats_.push_back(std::move(s));
}

std::optional<EventChannel::SubmitResult> DerivedChannel::submit(
    Event ev, const attr::AttrList& adaptation) {
  for (std::size_t i = 0; i < transforms_.size(); ++i) {
    StageStats& st = stats_[i];
    ++st.seen;
    st.bytes_in += ev.bytes;
    std::optional<Event> out = transforms_[i](std::move(ev));
    if (!out.has_value()) {
      ++st.suppressed;
      return std::nullopt;
    }
    ev = std::move(*out);
    st.bytes_out += ev.bytes;
  }
  return base_.submit(ev, adaptation);
}

EventTransform DerivedChannel::filter(
    std::function<bool(const Event&)> pred) {
  return [pred = std::move(pred)](Event ev) -> std::optional<Event> {
    if (!pred(ev)) return std::nullopt;
    return ev;
  };
}

EventTransform DerivedChannel::downsample(double factor) {
  return [factor](Event ev) -> std::optional<Event> {
    const double scaled = static_cast<double>(ev.bytes) * factor;
    ev.bytes = std::max<std::int64_t>(1, static_cast<std::int64_t>(scaled));
    return ev;
  };
}

EventTransform DerivedChannel::prioritize(
    std::function<bool(const Event&)> critical) {
  return [critical = std::move(critical)](Event ev) -> std::optional<Event> {
    ev.tagged = critical(ev);
    return ev;
  };
}

EventTransform DerivedChannel::thin(std::uint64_t keep_one_in) {
  auto counter = std::make_shared<std::uint64_t>(0);
  return [keep_one_in, counter](Event ev) -> std::optional<Event> {
    const std::uint64_t index = (*counter)++;
    if (keep_one_in == 0 || index % keep_one_in != 0) return std::nullopt;
    return ev;
  };
}

}  // namespace iq::echo
