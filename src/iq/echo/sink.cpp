#include "iq/echo/sink.hpp"

#include <cmath>

namespace iq::echo {

MetricSink::MetricSink(EventChannel& channel, stats::MessageMetrics& metrics,
                       stats::TimeSeries* jitter_series)
    : metrics_(metrics), jitter_series_(jitter_series) {
  channel.set_event_handler(
      [this](const ReceivedEvent& ev) { on_event(ev); });
}

void MetricSink::on_event(const ReceivedEvent& ev) {
  ++events_;
  stats::MessageRecord rec;
  rec.arrival = ev.delivered;
  rec.bytes = ev.event.bytes;
  rec.tagged = ev.event.tagged;
  rec.sent = ev.sent;
  metrics_.on_message(rec);

  if (jitter_series_ != nullptr) {
    if (have_last_) {
      const Duration gap = ev.delivered - last_arrival_;
      if (have_prev_gap_) {
        const double jitter_ms =
            std::abs((gap - prev_gap_).to_seconds()) * 1e3;
        jitter_series_->add_indexed(static_cast<double>(events_), jitter_ms);
      }
      prev_gap_ = gap;
      have_prev_gap_ = true;
    }
    have_last_ = true;
  } else {
    have_last_ = true;
  }
  last_arrival_ = ev.delivered;
}

}  // namespace iq::echo
