#pragma once
// EventChannel: the IQ-ECho channel abstraction over an IQ-RUDP connection.
//
// A channel is named and directional here (the paper's experiments are all
// single-producer streams to remote collaborators): the source process
// constructs a channel over its sending connection and submits events; the
// sink process constructs a channel over its receiving connection and
// installs an event handler. Quality attributes passed to submit() are the
// CMwritev_attr path into the coordinator.

#include <functional>
#include <string>

#include "iq/core/iq_connection.hpp"
#include "iq/echo/event.hpp"

namespace iq::echo {

class EventChannel {
 public:
  EventChannel(std::string name, core::IqRudpConnection& transport);

  const std::string& name() const { return name_; }
  core::IqRudpConnection& transport() { return transport_; }

  // ---------------------------------------------------------- source side --
  struct SubmitResult {
    std::uint64_t event_id = 0;
    bool discarded = false;  ///< dropped before send by coordination
  };
  /// Submit an event, optionally with attributes describing an application
  /// adaptation taking effect now.
  SubmitResult submit(const Event& ev,
                      const attr::AttrList& adaptation = {});

  /// Declare this channel's priority among the host's flows: carried as a
  /// FLOW_PRIORITY attribute on the next submit, where the coordinator
  /// applies it as the flow's congestion-manager apportionment weight
  /// (docs/CM.md). No-op for the transport when no CM is attached.
  void set_priority(double weight);
  double priority() const { return priority_; }

  // ------------------------------------------------------------ sink side --
  using EventFn = std::function<void(const ReceivedEvent&)>;
  /// Install the sink handler (translates transport deliveries to events).
  void set_event_handler(EventFn fn);

  std::uint64_t events_submitted() const { return submitted_; }
  std::uint64_t events_discarded() const { return discarded_; }
  std::uint64_t events_received() const { return received_; }

 private:
  std::string name_;
  core::IqRudpConnection& transport_;
  double priority_ = 1.0;
  bool priority_pending_ = false;
  std::uint64_t next_event_id_ = 1;
  std::uint64_t submitted_ = 0;
  std::uint64_t discarded_ = 0;
  std::uint64_t received_ = 0;
  EventFn on_event_;
};

}  // namespace iq::echo
