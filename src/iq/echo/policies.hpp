#pragma once
// Application adaptation policies — the exact algorithms the paper's
// evaluation applications run, packaged as reusable policy objects. Each
// adaptation step returns the AdaptationRecord describing it, which the
// application hands to the transport (directly from a callback, or attached
// to the next send) so the coordinator can react.

#include <cstdint>

#include "iq/common/rng.hpp"
#include "iq/core/adaptation.hpp"
#include "iq/echo/event.hpp"

namespace iq::echo {

// ------------------------------------------------------------ resolution --
// §3.4: on the upper threshold, reduce frame size by a fraction equal to
// the error ratio; on the lower threshold, grow it by 10 %.

struct ResolutionPolicyConfig {
  double grow_step = 0.10;
  double min_scale = 0.05;
  double max_shrink_per_step = 0.8;
};

class ResolutionPolicy {
 public:
  explicit ResolutionPolicy(const ResolutionPolicyConfig& cfg = {});

  /// Upper-threshold adaptation: scale *= (1 - eratio).
  core::AdaptationRecord shrink(double eratio);
  /// Lower-threshold adaptation: scale *= (1 + grow_step), capped at 1.
  core::AdaptationRecord grow();

  /// Current frame size for a nominal (full-resolution) size.
  std::int64_t apply(std::int64_t nominal_bytes) const;
  double scale() const { return scale_; }
  std::uint64_t shrinks() const { return shrinks_; }
  std::uint64_t grows() const { return grows_; }

 private:
  ResolutionPolicyConfig cfg_;
  double scale_ = 1.0;
  std::uint64_t shrinks_ = 0;
  std::uint64_t grows_ = 0;
};

// --------------------------------------------------------------- marking --
// §3.3: when active, every `tag_every`-th message is tagged (control data);
// the rest are unmarked with probability max(min_unmark, gain · eratio) so
// the overall unmarked share tracks the error ratio. The lower threshold
// decays the unmark probability by 20 % per call.

struct MarkingPolicyConfig {
  int tag_every = 5;
  double min_unmark_probability = 0.40;
  double eratio_gain = 1.25;
  double lower_decay = 0.20;  ///< probability reduced by this fraction
  double deactivate_below = 0.01;
};

class MarkingPolicy {
 public:
  MarkingPolicy(const MarkingPolicyConfig& cfg, std::uint64_t seed);
  explicit MarkingPolicy(std::uint64_t seed) : MarkingPolicy({}, seed) {}

  /// Upper threshold: activate with p = max(min_unmark, gain · eratio).
  core::AdaptationRecord on_upper(double eratio);
  /// Lower threshold: decay p; deactivates when p falls below the floor.
  core::AdaptationRecord on_lower();

  /// Decide whether message number `index` (0-based) is tagged.
  bool decide_tagged(std::uint64_t index);

  bool active() const { return active_; }
  double unmark_probability() const { return unmark_p_; }

 private:
  MarkingPolicyConfig cfg_;
  Rng rng_;
  bool active_ = false;
  double unmark_p_ = 0.0;
};

// ------------------------------------------------------------------- fec --
// Publishers opt events into the FEC-protected reliability class when the
// network is lossy enough that retransmission latency hurts but the data is
// too important to unmark. Hysteresis keeps the class from flapping around
// a threshold: it activates above `activate_above` error ratio and
// deactivates only below `deactivate_below`.

struct FecPolicyConfig {
  double activate_above = 0.005;
  double deactivate_below = 0.001;
  /// When true, events the marking policy already left tagged are enrolled
  /// too; when false only untagged events are upgraded to FEC.
  bool protect_tagged = true;
};

class FecPolicy {
 public:
  explicit FecPolicy(const FecPolicyConfig& cfg = {});

  /// Digest the epoch's error ratio; returns true if activation changed.
  bool update(double eratio);

  /// Stamp `ev.fec` according to the current activation; returns the event.
  Event& protect(Event& ev) const;

  bool active() const { return active_; }
  std::uint64_t activations() const { return activations_; }

 private:
  FecPolicyConfig cfg_;
  bool active_ = false;
  std::uint64_t activations_ = 0;
};

// ------------------------------------------------------------- frequency --
// A frequency adaptation sends the same-size messages less often; the paper
// notes the transport needs *no* window change for it. The policy thins the
// frame schedule deterministically by the keep ratio.

struct FrequencyPolicyConfig {
  double reduce_gain = 1.0;  ///< ratio *= (1 - gain·eratio) on reduce
  double restore_step = 0.10;
  double min_ratio = 0.05;
};

class FrequencyPolicy {
 public:
  explicit FrequencyPolicy(const FrequencyPolicyConfig& cfg = {});

  core::AdaptationRecord reduce(double eratio);
  core::AdaptationRecord restore();

  /// Deterministic decimation: true if frame `index` should be sent.
  bool should_send(std::uint64_t index) const;
  double keep_ratio() const { return ratio_; }

 private:
  FrequencyPolicyConfig cfg_;
  double ratio_ = 1.0;
  double accum_ = 0.0;  // unused placeholder for stateful thinning
};

}  // namespace iq::echo
