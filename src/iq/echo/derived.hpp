#pragma once
// Derived event channels — the ECho concept the paper's middleware builds
// on: a derived channel applies a user-supplied transform (filter,
// down-sampler, re-prioritizer) to every event before it reaches the
// underlying channel. Transforms compose; each keeps its own counters so
// an application can see what its adaptation pipeline is doing.
//
// This is how "user-provided functions select the most critical file
// contents" (the paper's IQ-FTP sketch) and focus-region filtering are
// expressed without touching transport code.

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "iq/echo/channel.hpp"

namespace iq::echo {

/// A transform takes an event and returns the event to forward, possibly
/// modified — or nullopt to suppress it entirely.
using EventTransform = std::function<std::optional<Event>(Event)>;

class DerivedChannel {
 public:
  DerivedChannel(std::string name, EventChannel& base)
      : name_(std::move(name)), base_(base) {}

  /// Append a transform stage; stages run in registration order.
  void add_transform(std::string stage_name, EventTransform fn);

  /// Run the event through the transform chain and submit the survivor.
  /// Returns nullopt if a stage suppressed the event.
  std::optional<EventChannel::SubmitResult> submit(
      Event ev, const attr::AttrList& adaptation = {});

  const std::string& name() const { return name_; }
  EventChannel& base() { return base_; }

  struct StageStats {
    std::string name;
    std::uint64_t seen = 0;
    std::uint64_t suppressed = 0;
    std::int64_t bytes_in = 0;
    std::int64_t bytes_out = 0;
  };
  const std::vector<StageStats>& stages() const { return stats_; }

  // ---- ready-made transforms ------------------------------------------

  /// Keep only events the predicate accepts.
  static EventTransform filter(std::function<bool(const Event&)> pred);
  /// Scale every event's size by `factor` (resolution down-sampling).
  static EventTransform downsample(double factor);
  /// Tag events the predicate marks critical; unmark the rest.
  static EventTransform prioritize(std::function<bool(const Event&)> critical);
  /// Keep every k-th event (frequency thinning).
  static EventTransform thin(std::uint64_t keep_one_in);

 private:
  std::string name_;
  EventChannel& base_;
  std::vector<EventTransform> transforms_;
  std::vector<StageStats> stats_;
};

}  // namespace iq::echo
