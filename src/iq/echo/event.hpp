#pragma once
// IQ-ECho events: the middleware's unit of exchange.
//
// An event is an application payload (a visualization frame, a data slice)
// plus metadata attributes. Payload contents are virtual in simulation —
// only sizes drive the network — mirroring how the rest of the stack works.

#include <cstdint>

#include "iq/attr/list.hpp"
#include "iq/common/time.hpp"

namespace iq::echo {

struct Event {
  std::uint64_t id = 0;       ///< source-assigned, monotonically increasing
  std::int64_t bytes = 0;     ///< payload size
  bool tagged = true;         ///< control/essential data (must deliver)
  bool fec = false;           ///< FEC-protected class: recovered, not resent
  attr::AttrList meta;        ///< application metadata, rides in-band
};

struct ReceivedEvent {
  Event event;
  TimePoint sent;
  TimePoint delivered;
};

}  // namespace iq::echo
