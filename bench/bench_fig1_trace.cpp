// Figure 1 reproduction: the MBone membership-dynamics trace that drives
// every trace-based workload. Prints the synthetic series as an ASCII plot
// plus its summary statistics, so its shape (range + burstiness) can be
// compared with the paper's figure.

#include <cstdio>

#include "iq/stats/timeseries.hpp"
#include "iq/workload/mbone_trace.hpp"

int main() {
  using namespace iq;
  std::printf("== Figure 1: membership dynamics (synthetic MBone trace) ==\n");

  workload::MboneTrace trace;
  stats::TimeSeries series("group size");
  for (std::size_t i = 0; i < trace.size(); ++i) {
    series.add_indexed(static_cast<double>(i),
                       static_cast<double>(trace.group_at(i)));
  }
  std::printf("%s", series.ascii_plot(96, 16).c_str());
  std::printf("samples=%zu  min=%d  max=%d  mean=%.1f\n", trace.size(),
              trace.min_seen(), trace.max_seen(), trace.mean());

  // Burstiness summary: distribution of step magnitudes.
  int steps_ge5 = 0, steps_ge10 = 0;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    const int d = std::abs(trace.group_at(i) - trace.group_at(i - 1));
    if (d >= 5) ++steps_ge5;
    if (d >= 10) ++steps_ge10;
  }
  std::printf("bursts: |step|>=5 in %.1f%% of samples, |step|>=10 in %.1f%%\n",
              100.0 * steps_ge5 / static_cast<double>(trace.size()),
              100.0 * steps_ge10 / static_cast<double>(trace.size()));
  std::printf(
      "note: the original 2002 MBone trace is unavailable; this seeded "
      "synthetic series reproduces its shape (see DESIGN.md).\n");
  return 0;
}
