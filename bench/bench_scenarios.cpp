// Hostile-network scenario matrix bench: runs the three path profiles
// (satellite rain fade, cellular burst/tunnel, datacenter incast) in both
// coordination modes and pins the graceful-degradation scores to
// BENCH_SCENARIOS.json (gated by perf_compare.py).
//
// Everything here is simulated and deterministic — two runs must be
// bit-identical, so any drift in the JSON is a behavior change, not noise.
// The gate enforces hard survivability floors on top of drift detection:
//
//   * no scenario may wedge, in either mode;
//   * every transfer ends complete and byte-identical (crc_ok), with all
//     critical blocks delivered;
//   * coordinated blackout recovery must reach >= 80% of the pre-fault
//     delivered-byte rate;
//   * per-profile coordinated deadline-hit floors.
//
// The coordinated-vs-uncoordinated deadline delta per profile is the
// paper's degradation story in one number and is pinned explicitly.
//
// Usage: bench_scenarios [output.json]  (default BENCH_SCENARIOS.json in CWD)

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "iq/harness/json.hpp"
#include "iq/scenario/profile.hpp"
#include "iq/scenario/runner.hpp"

namespace {

using namespace iq;
using scenario::Profile;
using scenario::ScenarioResult;

struct Row {
  Profile profile;
  ScenarioResult coord;
  ScenarioResult uncoord;
};

void print_result(const ScenarioResult& r) {
  std::printf(
      "  %-18s %s%s  blocks %llu/%llu  deadline %.3f (crit %.3f)"
      "  recovery %.3f"
      " (%.1fs)  shed %llu  fail %llu  reconn %llu  video %llu  %s\n",
      r.name.c_str(), r.completed ? "complete" : "INCOMPLETE",
      r.wedged ? " WEDGED" : "",
      static_cast<unsigned long long>(r.blocks_received),
      static_cast<unsigned long long>(r.blocks_total), r.deadline_hit_ratio,
      r.critical_deadline_hit_ratio,
      r.recovery.recovery_ratio, r.recovery.recovery_time_s,
      static_cast<unsigned long long>(r.messages_shed),
      static_cast<unsigned long long>(r.failures),
      static_cast<unsigned long long>(r.reconnects),
      static_cast<unsigned long long>(r.video_frames_delivered),
      r.audits_clean ? "audit-clean" : "** AUDIT VIOLATION **");
}

void emit(harness::JsonWriter& w, const std::string& prefix,
          const ScenarioResult& r) {
  w.field(prefix + "_completed", r.completed)
      .field(prefix + "_wedged", r.wedged)
      .field(prefix + "_crc_ok", r.crc_ok)
      .field(prefix + "_critical_complete", r.critical_complete)
      .field(prefix + "_audits_clean", r.audits_clean)
      .field(prefix + "_blocks_total", r.blocks_total)
      .field(prefix + "_blocks_received", r.blocks_received)
      .field(prefix + "_messages_shed", r.messages_shed)
      .field(prefix + "_reconnects", r.reconnects)
      .field(prefix + "_failures", r.failures)
      .field(prefix + "_video_delivered", r.video_frames_delivered)
      .field(prefix + "_events", r.events_executed)
      .field(prefix + "_deadline_hit", r.deadline_hit_ratio)
      .field(prefix + "_critical_deadline_hit", r.critical_deadline_hit_ratio)
      .field(prefix + "_recovery_ratio", r.recovery.recovery_ratio)
      .field(prefix + "_recovery_time_s", r.recovery.recovery_time_s);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_SCENARIOS.json";
  std::printf("== hostile-network scenario matrix ==\n");

  std::vector<Row> rows;
  bool floors_ok = true;
  for (Profile p :
       {Profile::Satellite, Profile::Cellular, Profile::Incast}) {
    Row row;
    row.profile = p;
    row.coord = scenario::run_scenario(scenario::make_profile(p, true));
    print_result(row.coord);
    row.uncoord = scenario::run_scenario(scenario::make_profile(p, false));
    print_result(row.uncoord);
    // Local floors mirror the gate so a broken baseline can't be committed.
    for (const ScenarioResult* r : {&row.coord, &row.uncoord}) {
      floors_ok = floors_ok && r->completed && !r->wedged && r->crc_ok &&
                  r->critical_complete && r->audits_clean;
    }
    rows.push_back(row);
  }

  harness::JsonWriter w;
  w.begin_object();
  w.field("schema", "iq-bench-scenarios-v1");
  for (const Row& row : rows) {
    const std::string base = std::string("scn_") +
                             scenario::profile_name(row.profile);
    emit(w, base + "_coord", row.coord);
    emit(w, base + "_uncoord", row.uncoord);
    // Coordination benefit: how much of the deadline story the IQ layer
    // buys. The critical delta is the paper's claim — shedding unmarked
    // blocks keeps the marked ones timely; the overall delta can go
    // negative on paths with spare capacity (full reliability is also
    // timely there), and the matrix pins both.
    w.field(base + "_delta_deadline_hit",
            row.coord.deadline_hit_ratio - row.uncoord.deadline_hit_ratio);
    w.field(base + "_delta_critical_deadline_hit",
            row.coord.critical_deadline_hit_ratio -
                row.uncoord.critical_deadline_hit_ratio);
  }
  w.end_object();

  std::ofstream out(out_path);
  out << w.take() << "\n";
  std::printf("  wrote %s\n", out_path.c_str());
  if (!floors_ok) std::printf("  ** survivability floor violated **\n");
  return floors_ok ? 0 : 1;
}
