// City-scale fan-out bench: the 10k-flow pub/sub scenario on the sharded
// simulator, with a machine-readable baseline.
//
// Three claims are pinned to BENCH_SCALE.json (gated by perf_compare.py):
//
//   1. Determinism: the full-scale scenario produces bit-identical results
//      (digest, event count, parcel count) at shard counts 1, 2 and 4 —
//      threaded for the multi-shard runs (scale_rows_identical).
//   2. The cross-shard mailbox adds no steady-state allocations: after
//      warm-up, parcel exchange runs malloc-free (scale_mailbox_steady_allocs).
//   3. Aggregate behavior of the coordinated city: on-time ratio, delivery
//      ratio, Jain utilization index, mean resolution scale — deterministic
//      simulated results, so drift means a behavior change, not noise.
//
// Event throughput (scale_events_per_s_*) is recorded but only warns: it
// swings with the machine. On a single-core container the multi-shard
// threaded run is *slower* than 1 shard (lockstep barriers, no parallel
// hardware) — the per-core scaling story lives in docs/PERFORMANCE.md; the
// verifiable local claim is bit-identical output.
//
// Usage: bench_cityscale [output.json]   (default BENCH_SCALE.json in CWD)
// Env:   IQ_SCALE_SIM_S=N   override simulated seconds (CI's audit pass
//                           uses a short run; the committed baseline must
//                           be produced with the default).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

// Count every global operator-new in this binary so the mailbox alloc
// metric is exact, not sampled.
#define IQ_COUNT_ALLOCS
#include "bench_util.hpp"
#include "iq/harness/cityscale.hpp"
#include "iq/harness/json.hpp"
#include "iq/sim/sharded.hpp"

namespace {

using namespace iq;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::int64_t scale_sim_seconds() {
  const char* v = std::getenv("IQ_SCALE_SIM_S");
  if (v == nullptr || v[0] == '\0') return 6;
  const long n = std::strtol(v, nullptr, 10);
  return n >= 1 ? n : 6;
}

harness::CityScaleConfig full_cfg() {
  harness::CityScaleConfig cfg;  // 64 sites x 160 subs = 10240 flows
  cfg.sim_time = Duration::seconds(scale_sim_seconds());
  cfg.drain_time = Duration::seconds(2);
  // Heavy enough that the slow access classes saturate and the resolution
  // policies actually shrink — the adaptation path is part of the digest.
  cfg.bytes_per_member = 400;
  return cfg;
}

struct TimedRun {
  harness::CityScaleResult r;
  double wall_s = 0.0;
};

TimedRun run_one(std::size_t shards, bool threaded,
                 core::CoordinationMode mode) {
  harness::CityScaleConfig cfg = full_cfg();
  cfg.shards = shards;
  cfg.threaded = threaded;
  cfg.mode = mode;
  const double t0 = now_s();
  TimedRun t;
  t.r = harness::run_cityscale(cfg);
  t.wall_s = now_s() - t0;
  std::fprintf(stderr,
               "  [shards=%zu%s %s] %.2fM events, %llu parcels, wall %.1fs "
               "(%.2fM ev/s), digest %016llx\n",
               shards, threaded ? " threaded" : "",
               mode == core::CoordinationMode::Coordinated ? "coord" : "unc",
               static_cast<double>(t.r.events_executed) / 1e6,
               static_cast<unsigned long long>(t.r.parcels_delivered),
               t.wall_s,
               static_cast<double>(t.r.events_executed) / t.wall_s / 1e6,
               static_cast<unsigned long long>(t.r.digest));
  return t;
}

/// Steady-state allocation count of the cross-shard mailbox: two groups
/// bounce self-reposting parcels for `measure` windows after a warm-up.
/// The parcels stay inline in ParcelFn and the mailbox vectors reuse their
/// capacity, so the delta must be zero.
std::uint64_t mailbox_steady_allocs() {
  sim::ShardedSim::Config cfg;
  cfg.shards = 2;
  cfg.lookahead = Duration::millis(10);
  cfg.threaded = false;  // worker startup would be counted; inline is the
                         // same code path through post/collect
  sim::ShardedSim ss(cfg);
  const auto a = ss.add_group();
  const auto b = ss.add_group();

  struct Bounce {
    sim::ShardedSim* ss;
    std::uint32_t from, to;
    void operator()() const {
      Bounce next{ss, to, from};
      ss->post(to, from, ss->group_sim(to).now() + Duration::millis(10),
               sim::ParcelFn(next));
    }
  };
  // Seed 32 tokens each way so the mailbox vectors see real occupancy.
  for (int i = 0; i < 32; ++i) {
    ss.post(a, b, TimePoint::zero() + Duration::millis(10), // due next window
            sim::ParcelFn(Bounce{&ss, b, a}));
    ss.post(b, a, TimePoint::zero() + Duration::millis(10),
            sim::ParcelFn(Bounce{&ss, a, b}));
  }
  ss.run_for(Duration::seconds(1));  // warm-up: vectors reach capacity
  const std::uint64_t before = iq::bench::alloc_count();
  ss.run_for(Duration::seconds(10));
  return iq::bench::alloc_count() - before;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_SCALE.json";
  std::printf("== city-scale fan-out (%d sites x %d subs = %d flows) ==\n", 64,
              160, 64 * 160);

  const std::uint64_t mailbox_allocs = mailbox_steady_allocs();
  std::printf("  mailbox steady-state allocs: %llu (must be 0)\n",
              static_cast<unsigned long long>(mailbox_allocs));

  const TimedRun s1 = run_one(1, false, core::CoordinationMode::Coordinated);
  const TimedRun s2 = run_one(2, true, core::CoordinationMode::Coordinated);
  const TimedRun s4 = run_one(4, true, core::CoordinationMode::Coordinated);
  const bool rows_identical =
      s1.r.digest == s2.r.digest && s1.r.digest == s4.r.digest &&
      s1.r.events_executed == s2.r.events_executed &&
      s1.r.events_executed == s4.r.events_executed &&
      s1.r.parcels_delivered == s2.r.parcels_delivered &&
      s1.r.parcels_delivered == s4.r.parcels_delivered;
  std::printf("  shard determinism (1 vs 2 vs 4): %s\n",
              rows_identical ? "bit-identical" : "** DIVERGED **");

  const TimedRun unc = run_one(1, false, core::CoordinationMode::Uncoordinated);

  const harness::CityScaleResult& r = s1.r;
  std::printf("  coordinated:   on-time %.3f, delivery %.3f, jain %.3f, "
              "mean scale %.3f, goodput %.1f Mbps\n",
              r.on_time_ratio, r.delivery_ratio, r.jain_utilization,
              r.mean_scale, r.goodput_mbps);
  std::printf("  uncoordinated: on-time %.3f, delivery %.3f, jain %.3f\n",
              unc.r.on_time_ratio, unc.r.delivery_ratio,
              unc.r.jain_utilization);

  iq::harness::JsonWriter w;
  w.begin_object()
      .field("scale_flows", r.flows)
      .field("scale_frames", r.frames_published)
      .field("scale_events", r.events_executed)
      .field("scale_parcels", r.parcels_delivered)
      .field("scale_epochs", r.epochs)
      .field("scale_joins", r.joins)
      .field("scale_leaves", r.leaves)
      .field("scale_rows_identical", rows_identical)
      .field("scale_mailbox_steady_allocs", mailbox_allocs)
      .field("scale_on_time_ratio", r.on_time_ratio)
      .field("scale_delivery_ratio", r.delivery_ratio)
      .field("scale_jain", r.jain_utilization)
      .field("scale_mean_scale", r.mean_scale)
      .field("scale_goodput_mbps", r.goodput_mbps)
      .field("scale_unc_on_time_ratio", unc.r.on_time_ratio)
      .field("scale_unc_delivery_ratio", unc.r.delivery_ratio)
      .field("scale_unc_jain", unc.r.jain_utilization)
      .field("scale_events_per_s_1shard",
             static_cast<double>(s1.r.events_executed) / s1.wall_s)
      .field("scale_events_per_s_2shard",
             static_cast<double>(s2.r.events_executed) / s2.wall_s)
      .field("scale_events_per_s_4shard",
             static_cast<double>(s4.r.events_executed) / s4.wall_s)
      .field("scale_sim_seconds",
             static_cast<std::uint64_t>(scale_sim_seconds()))
      .field("hardware_concurrency",
             static_cast<std::uint64_t>(std::thread::hardware_concurrency()))
      .end_object();
  std::ofstream out(out_path);
  out << w.take() << "\n";
  std::printf("  wrote %s\n", out_path.c_str());

  return rows_identical && mailbox_allocs == 0 ? 0 : 1;
}
