#pragma once
// Shared helpers for the table/figure reproduction benches.
//
// Each bench binary reproduces one table or figure: it runs every scheme of
// the scenario on the simulated testbed, prints the paper's published rows
// next to the measured ones, and exits nonzero if the scenario failed to
// complete (so bench runs catch regressions).

#include <chrono>
#include <cstdio>
#include <string>

#include "iq/harness/paper.hpp"
#include "iq/harness/scenarios.hpp"

namespace iq::bench {

inline harness::ExperimentResult run_and_report(
    const harness::ExperimentConfig& cfg) {
  const auto wall0 = std::chrono::steady_clock::now();
  harness::ExperimentResult r = harness::run_experiment(cfg);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  std::printf("  [%-24s] sim %.1fs, wall %.2fs, events %.2fM%s\n",
              cfg.scheme.label.c_str(), r.sim_seconds, wall,
              static_cast<double>(r.events_executed) / 1e6,
              r.completed ? "" : "  ** DID NOT COMPLETE **");
  std::fflush(stdout);
  return r;
}

/// Standard 4-metric row most tables use: duration, throughput,
/// inter-arrival, jitter.
inline std::vector<double> row4(const harness::ExperimentResult& r) {
  return {r.summary.duration_s, r.summary.throughput_kBps,
          r.summary.interarrival_s, r.summary.jitter_s};
}

/// Table 1/2 style: the paper reports *packet* inter-arrival there.
inline std::vector<double> row4_pkt(const harness::ExperimentResult& r) {
  return {r.summary.duration_s, r.summary.throughput_kBps,
          r.pkt_interarrival_s, r.pkt_jitter_s};
}

/// Table 3/4 style row: duration, %delivered, tagged delay/jitter,
/// overall delay/jitter (all delays in ms).
inline std::vector<double> conflict_row(const harness::ExperimentResult& r) {
  return {r.summary.duration_s,     r.summary.delivered_pct,
          r.summary.tagged_delay_ms, r.summary.tagged_jitter_ms,
          r.summary.delay_ms,        r.summary.jitter_ms};
}

/// Table 5-8 style row: throughput, duration, delay, jitter (ms).
inline std::vector<double> overreaction_row(
    const harness::ExperimentResult& r) {
  return {r.summary.throughput_kBps, r.summary.duration_s,
          r.summary.delay_ms, r.summary.jitter_ms};
}

}  // namespace iq::bench
