#pragma once
// Shared helpers for the table/figure reproduction benches.
//
// Each bench binary reproduces one table or figure: it runs every scheme of
// the scenario on the simulated testbed, prints the paper's published rows
// next to the measured ones, and exits nonzero if the scenario failed to
// complete (so bench runs catch regressions).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "iq/harness/paper.hpp"
#include "iq/harness/runner.hpp"
#include "iq/harness/scenarios.hpp"

namespace iq::bench {

inline harness::ExperimentResult run_and_report(
    const harness::ExperimentConfig& cfg) {
  const auto wall0 = std::chrono::steady_clock::now();
  harness::ExperimentResult r = harness::run_experiment(cfg);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  std::fprintf(stderr, "  [%-24s] sim %.1fs, wall %.2fs, events %.2fM%s\n",
               cfg.scheme.label.c_str(), r.sim_seconds, wall,
               static_cast<double>(r.events_executed) / 1e6,
               r.completed ? "" : "  ** DID NOT COMPLETE **");
  return r;
}

/// Run a whole table's configurations at once — across a thread pool unless
/// IQ_BENCH_SERIAL is set — and print one report line per run, in input
/// order. Each run owns its simulator and network, so the results (and the
/// tables built from them) are bit-identical to running serially; only the
/// wall-clock time changes.
inline std::vector<harness::ExperimentResult> run_all(
    const std::vector<harness::ExperimentConfig>& cfgs) {
  std::size_t threads = 0;
  if (const char* v = std::getenv("IQ_BENCH_SERIAL");
      v != nullptr && *v != '\0' && *v != '0') {
    threads = 1;
  }
  auto timed = harness::run_experiments(cfgs, threads);
  std::vector<harness::ExperimentResult> out;
  out.reserve(timed.size());
  for (std::size_t i = 0; i < timed.size(); ++i) {
    // Progress lines carry wall-clock time, so they go to stderr: stdout is
    // reserved for the bench's bit-reproducible table/JSON output.
    std::fprintf(stderr, "  [%-24s] sim %.1fs, wall %.2fs, events %.2fM%s\n",
                 cfgs[i].scheme.label.c_str(), timed[i].result.sim_seconds,
                 timed[i].wall_seconds,
                 static_cast<double>(timed[i].result.events_executed) / 1e6,
                 timed[i].result.completed ? "" : "  ** DID NOT COMPLETE **");
    out.push_back(std::move(timed[i].result));
  }
  return out;
}

/// Standard 4-metric row most tables use: duration, throughput,
/// inter-arrival, jitter.
inline std::vector<double> row4(const harness::ExperimentResult& r) {
  return {r.summary.duration_s, r.summary.throughput_kBps,
          r.summary.interarrival_s, r.summary.jitter_s};
}

/// Table 1/2 style: the paper reports *packet* inter-arrival there.
inline std::vector<double> row4_pkt(const harness::ExperimentResult& r) {
  return {r.summary.duration_s, r.summary.throughput_kBps,
          r.pkt_interarrival_s, r.pkt_jitter_s};
}

/// Table 3/4 style row: duration, %delivered, tagged delay/jitter,
/// overall delay/jitter (all delays in ms).
inline std::vector<double> conflict_row(const harness::ExperimentResult& r) {
  return {r.summary.duration_s,     r.summary.delivered_pct,
          r.summary.tagged_delay_ms, r.summary.tagged_jitter_ms,
          r.summary.delay_ms,        r.summary.jitter_ms};
}

/// Table 5-8 style row: throughput, duration, delay, jitter (ms).
inline std::vector<double> overreaction_row(
    const harness::ExperimentResult& r) {
  return {r.summary.throughput_kBps, r.summary.duration_s,
          r.summary.delay_ms, r.summary.jitter_ms};
}

}  // namespace iq::bench

// ---------------------------------------------------------------------------
// Counting allocator (opt-in).
//
// A binary that defines IQ_COUNT_ALLOCS before including this header (in
// exactly ONE translation unit — these are replacements of the global
// allocation functions) gets process-wide allocation counting:
// iq::bench::alloc_count() returns the number of operator-new calls since
// process start. The zero-allocation steady-state benches and tests
// snapshot it around a hot loop and assert the delta.
//
// All forms route through malloc/aligned_alloc so the matching deletes can
// free uniformly; only allocations are counted (frees are not interesting
// for the steady-state claim).
#ifdef IQ_COUNT_ALLOCS

#include <atomic>
#include <new>

namespace iq::bench {

inline std::atomic<std::uint64_t> g_alloc_calls{0};

/// Global operator-new calls since process start.
inline std::uint64_t alloc_count() {
  return g_alloc_calls.load(std::memory_order_relaxed);
}

inline void* counted_alloc(std::size_t n) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  if (n == 0) n = 1;
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

inline void* counted_alloc(std::size_t n, std::size_t align) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  if (n == 0) n = align;
  // aligned_alloc requires the size to be a multiple of the alignment.
  n = (n + align - 1) / align * align;
  void* p = std::aligned_alloc(align, n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace iq::bench

void* operator new(std::size_t n) { return iq::bench::counted_alloc(n); }
void* operator new[](std::size_t n) { return iq::bench::counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return iq::bench::counted_alloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return iq::bench::counted_alloc(n, static_cast<std::size_t>(a));
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  try {
    return iq::bench::counted_alloc(n);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  try {
    return iq::bench::counted_alloc(n);
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // IQ_COUNT_ALLOCS
