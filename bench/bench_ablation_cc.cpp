// Ablation: congestion-controller choice (DESIGN.md design decision).
//
// The paper adopts an LDA-resembling controller for its "smoother changes
// of congestion window" relative to TCP's AIMD. This bench runs the
// Table 6 scenario (16 Mb cross) under three controllers — LDA, classic
// AIMD (Reno-style halving), and a fixed window — and reports throughput,
// jitter and the window trace, quantifying the smoothness claim.

#include <cstdio>

#include "bench_util.hpp"
#include "iq/stats/table.hpp"

int main() {
  using namespace iq;
  using namespace iq::harness;
  std::printf("== Ablation: congestion controller (LDA vs AIMD vs fixed) ==\n");

  struct Variant {
    const char* name;
    rudp::CcKind cc;
  };
  const Variant variants[] = {
      {"LDA (paper)", rudp::CcKind::Lda},
      {"AIMD (Reno-style)", rudp::CcKind::Aimd},
      {"Fixed window", rudp::CcKind::Fixed},
  };

  stats::Table table({"controller", "thr(KB/s)", "duration(s)", "jitter(ms)",
                      "rexmit", "cwnd mean", "cwnd stddev"});
  std::vector<ExperimentConfig> cfgs;
  for (const Variant& v : variants) {
    SchemeSpec scheme = SchemeSpec::iq_rudp();
    scheme.label = v.name;
    scheme.cc = v.cc;
    ExperimentConfig cfg = scenarios::table6(scheme, 16'000'000);
    cfg.collect_cwnd_series = true;
    cfgs.push_back(cfg);
  }
  const auto results = bench::run_all(cfgs);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Variant& v = variants[i];
    const auto& r = results[i];

    stats::RunningStats w;
    for (double x : r.cwnd_series.values()) w.add(x);
    table.add_row({v.name, stats::Table::num(r.summary.throughput_kBps),
                   stats::Table::num(r.summary.duration_s),
                   stats::Table::num(r.summary.jitter_ms, 2),
                   std::to_string(r.rudp.segments_retransmitted),
                   stats::Table::num(w.mean(), 1),
                   stats::Table::num(w.stddev(), 2)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nexpectation: LDA's window varies less (smaller stddev "
              "relative to mean) than AIMD's, the smoothness the paper "
              "credits for IQ-RUDP's delay/jitter advantage.\n");
  return 0;
}
