// Table 5 reproduction: coordination against over-reaction, changing
// application. Resolution adaptation (shrink frames by the error ratio on
// the 15% upper threshold; grow 10% on the 1% lower threshold); the
// coordinated transport rescales its packet window by 1/(1 − rate_chg).

#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace iq;
  using namespace iq::harness;
  std::printf("== Table 5: over-reaction — changing application ==\n");

  const auto results = bench::run_all({
      scenarios::table5(SchemeSpec::iq_rudp()),
      scenarios::table5(SchemeSpec::rudp()),
  });
  const auto& iq = results[0];
  const auto& ru = results[1];

  Comparison cmp("Table 5: over-reaction, changing application",
                 {"Thr(KB/s)", "Duration(s)", "Delay(ms)", "Jitter(ms)"});
  cmp.add_paper_row("IQ-RUDP", {380, 39, 10.4, 0.78});
  cmp.add_measured_row("IQ-RUDP", bench::overreaction_row(iq));
  cmp.add_paper_row("RUDP", {367, 42, 15.2, 0.83});
  cmp.add_measured_row("RUDP", bench::overreaction_row(ru));
  cmp.add_note("shape target: IQ modestly better everywhere");
  std::printf("%s", cmp.render().c_str());

  std::printf("window rescales: IQ %llu, RUDP %llu\n",
              static_cast<unsigned long long>(iq.coordination.window_rescales),
              static_cast<unsigned long long>(ru.coordination.window_rescales));
  return (iq.completed && ru.completed) ? 0 : 1;
}
