// Table 6 + Figure 4 reproduction: coordination against over-reaction,
// changing network. CBR cross traffic swept over {12, 16, 18} Mb/s on top
// of VBR cross traffic; ASAP sub-MSS frames with resolution adaptation.
// Claim: IQ-RUDP's margin over RUDP grows with congestion — throughput
// +6→25 %, jitter −20→76 % in the paper.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"

int main() {
  using namespace iq;
  using namespace iq::harness;
  std::printf("== Table 6 / Figure 4: over-reaction — changing network ==\n");

  struct PaperRow {
    std::int64_t rate;
    std::vector<double> iq;
    std::vector<double> ru;
  };
  const std::vector<PaperRow> paper = {
      {12'000'000, {506, 9.5, 3.8, 0.20}, {478, 10.9, 4.6, 0.25}},
      {16'000'000, {131, 26.1, 10.2, 6.4}, {109, 31.0, 12.4, 10.3}},
      {18'000'000, {99, 51, 14, 19}, {79, 85, 22, 80}},
  };

  Comparison cmp("Table 6: over-reaction, changing network",
                 {"iperf(Mb)", "Thr(KB/s)", "Duration(s)", "Delay(ms)",
                  "Jitter(ms)"});
  std::vector<harness::ExperimentConfig> cfgs;
  for (const auto& row : paper) {
    cfgs.push_back(scenarios::table6(SchemeSpec::iq_rudp(), row.rate));
    cfgs.push_back(scenarios::table6(SchemeSpec::rudp(), row.rate));
  }
  const auto results = bench::run_all(cfgs);

  std::vector<double> thr_gain;
  std::vector<double> jit_gain;
  for (std::size_t i = 0; i < paper.size(); ++i) {
    const auto& row = paper[i];
    const auto& iq = results[2 * i];
    const auto& ru = results[2 * i + 1];
    const double mb = static_cast<double>(row.rate) / 1e6;
    auto with_rate = [mb](std::vector<double> v) {
      v.insert(v.begin(), mb);
      return v;
    };
    cmp.add_paper_row("IQ-RUDP", with_rate(row.iq));
    cmp.add_measured_row("IQ-RUDP", with_rate(bench::overreaction_row(iq)));
    cmp.add_paper_row("RUDP", with_rate(row.ru));
    cmp.add_measured_row("RUDP", with_rate(bench::overreaction_row(ru)));
    thr_gain.push_back(iq.summary.throughput_kBps /
                       std::max(ru.summary.throughput_kBps, 1e-9));
    jit_gain.push_back(ru.summary.jitter_ms /
                       std::max(iq.summary.jitter_ms, 1e-9));
  }
  cmp.add_note("shape target: IQ's margin grows with congestion");
  std::printf("%s", cmp.render().c_str());

  std::printf("\nFigure 4 (improvement vs congestion):\n");
  const char* labels[] = {"12Mb", "16Mb", "18Mb"};
  for (std::size_t i = 0; i < thr_gain.size(); ++i) {
    std::printf("  %s: throughput x%.2f, jitter reduction x%.2f\n", labels[i],
                thr_gain[i], jit_gain[i]);
  }
  std::printf("shape check: %s\n",
              (thr_gain.back() >= thr_gain.front() * 0.98) ? "PASS"
                                                           : "DIVERGES");
  return 0;
}
