// Hot-path microbenchmarks with a machine-readable baseline.
//
// Measures the layers the simulator spends its time in — event scheduling,
// packet forwarding, the wire codec, a full Table 1 scenario — plus a
// serial-vs-parallel comparison of the experiment runner, and writes the
// numbers to BENCH_PERF.json so CI can archive a perf baseline per commit.
// Every timed section reports best-of-N to shave scheduler noise; the JSON
// also records the core count so baselines from different machines aren't
// compared blindly.
//
// Usage: bench_perf [output.json]   (default BENCH_PERF.json in the CWD)

#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

// Count every global operator-new in this binary so the steady-state
// allocation metrics below are exact, not sampled.
#define IQ_COUNT_ALLOCS
#include "bench_util.hpp"
#include "iq/harness/json.hpp"
#include "iq/net/dumbbell.hpp"
#include "iq/rudp/codec.hpp"
#include "iq/sim/event_queue.hpp"
#include "iq/sim/simulator.hpp"
#include "iq/sim/timer_wheel.hpp"

namespace {

using namespace iq;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-N wrapper: runs `body` (which returns an ops count) `reps` times
/// and returns the highest observed ops/second.
double best_rate(int reps, const std::function<std::uint64_t()>& body) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_s();
    const std::uint64_t ops = body();
    const double secs = now_s() - t0;
    if (secs > 0.0) {
      const double rate = static_cast<double>(ops) / secs;
      if (rate > best) best = rate;
    }
  }
  return best;
}

/// Self-rescheduling timer churn: pure schedule+pop throughput through the
/// Simulator, the pattern every protocol timer and link event reduces to.
double bench_event_churn() {
  return best_rate(5, [] {
    sim::Simulator sim;
    constexpr int kTimers = 256;
    constexpr std::uint64_t kTotal = 1'000'000;
    std::uint64_t fired = 0;
    std::function<void()> tick[kTimers];
    for (int i = 0; i < kTimers; ++i) {
      tick[i] = [&, i] {
        if (++fired < kTotal) {
          sim.after(Duration::nanos(1 + (i * 37) % 977), tick[i]);
        }
      };
      sim.after(Duration::nanos(1 + i), tick[i]);
    }
    sim.run();
    return sim.events_executed();
  });
}

/// The retransmission-timer pattern: a standing population of events that
/// are almost always cancelled and rescheduled, almost never fired.
/// Templated so the 4-ary heap baseline and the timing wheel run the exact
/// same op mix — the wheel's O(1) schedule/cancel vs the heap's O(log n)
/// sifts is the whole point of the comparison.
template <typename Queue>
double bench_sched_cancel(std::size_t live) {
  return best_rate(5, [live] {
    Queue q;
    constexpr std::uint64_t kOps = 1'000'000;
    std::vector<sim::EventId> ids(live, 0);
    std::uint64_t ops = 0;
    std::int64_t t = 0;
    while (ops < kOps) {
      for (std::size_t i = 0; i < live; ++i) {
        if (ids[i] != 0) q.cancel(ids[i]);
        ids[i] = q.schedule(
            TimePoint::from_ns(t + static_cast<std::int64_t>(i * 131) % 4093),
            [] {});
        ++ops;
      }
      t += 64;
    }
    while (!q.empty()) q.pop();
    return ops;
  });
}

/// Steady-state allocation count of the wheel's rearm path: after warmup,
/// a full population of standing timers rearming forever must never touch
/// the heap (pooled slots + inline callables + retained fire buffer).
std::uint64_t bench_wheel_churn_allocs() {
  sim::TimerWheel q;
  constexpr std::size_t kLive = 1024;
  std::vector<sim::EventId> ids(kLive, 0);
  std::int64_t t = 0;
  const auto cycle = [&] {
    for (std::size_t i = 0; i < kLive; ++i) {
      if (ids[i] != 0) q.cancel(ids[i]);
      ids[i] = q.schedule(
          TimePoint::from_ns(t + static_cast<std::int64_t>(i * 131) % 4093),
          [] {});
    }
    t += 64;
  };
  // Warmup round has the exact shape of the measured round, so every pool
  // (slot table, freelist, fire buffer) reaches its high-water size first.
  const auto round = [&] {
    for (int r = 0; r < 100; ++r) cycle();
    for (int i = 0; i < 256 && !q.empty(); ++i) (void)q.pop();
  };
  round();
  const std::uint64_t before = iq::bench::alloc_count();
  round();
  return iq::bench::alloc_count() - before;
}

/// Raw packet pump: CBR packets through the dumbbell's four hops, no
/// transport on top — isolates make_packet + node forwarding + link events.
struct PumpResult {
  double events_per_s = 0.0;
  double packets_per_s = 0.0;
};

PumpResult bench_packet_pump() {
  constexpr std::uint64_t kPackets = 100'000;
  struct CountSink final : net::PacketSink {
    std::uint64_t got = 0;
    void deliver(net::PacketPtr) override { ++got; }
  };
  PumpResult out;
  for (int rep = 0; rep < 3; ++rep) {
    sim::Simulator sim;
    net::Network netw(sim);
    net::Dumbbell db(netw, net::DumbbellConfig{.pairs = 1});
    netw.compute_routes();
    CountSink sink;
    db.right(0).bind(7, &sink);
    const net::Endpoint src{db.left(0).id(), 9};
    const net::Endpoint dst{db.right(0).id(), 7};
    std::uint64_t sent = 0;
    // 1000 B every 500 µs = 16 Mb/s, comfortably under the 20 Mb/s
    // bottleneck so nothing queues or drops.
    std::function<void()> pump = [&] {
      netw.node(src.node).send(netw.make_packet(src, dst, 1, 1000));
      if (++sent < kPackets) sim.after(Duration::micros(500), pump);
    };
    sim.after(Duration::micros(1), pump);
    const double t0 = now_s();
    sim.run();
    const double secs = now_s() - t0;
    if (sink.got != kPackets) {
      std::fprintf(stderr, "pump lost packets: %llu/%llu\n",
                   static_cast<unsigned long long>(sink.got),
                   static_cast<unsigned long long>(kPackets));
    }
    if (secs > 0.0) {
      const double eps = static_cast<double>(sim.events_executed()) / secs;
      if (eps > out.events_per_s) {
        out.events_per_s = eps;
        out.packets_per_s = static_cast<double>(kPackets) / secs;
      }
    }
  }
  return out;
}

/// CRC throughput per dispatch tier over a streaming buffer (64 KiB):
/// crc_mb_s is whatever tier crc32_update dispatches to on this machine
/// (pclmul where CPUID allows), and each kernel is also measured directly
/// so the baseline records the pclmul-vs-slice8 speedup explicitly.
struct CrcResult {
  const char* impl = "";      ///< active crc32_update tier
  double dispatch_mb_s = 0.0; ///< through the dispatcher (= wire path)
  double pclmul_mb_s = 0.0;   ///< 0 when the CPU lacks the instructions
  double slice8_mb_s = 0.0;
  double bytewise_mb_s = 0.0;
};

CrcResult bench_crc() {
  constexpr std::size_t kBuf = 64 * 1024;
  constexpr std::uint64_t kPasses = 2'000;
  Bytes buf(kBuf);
  for (std::size_t i = 0; i < kBuf; ++i) {
    buf[i] = static_cast<std::uint8_t>(i * 2654435761u >> 24);
  }
  CrcResult out;
  out.impl = iq::crc32_impl_name();
  std::uint32_t sink = 0;
  const auto tier = [&](std::uint32_t (*kernel)(std::uint32_t, iq::BytesView),
                        std::uint64_t passes, int reps) {
    return best_rate(reps, [&, kernel, passes] {
             for (std::uint64_t p = 0; p < passes; ++p) {
               sink ^= kernel(iq::kCrc32Init, buf);
             }
             return passes * kBuf;
           }) /
           1e6;
  };
  out.dispatch_mb_s = tier(&iq::crc32_update, kPasses, 5);
  if (iq::crc32_pclmul_supported()) {
    out.pclmul_mb_s = tier(&iq::crc32_update_pclmul, kPasses * 4, 5);
  }
  out.slice8_mb_s = tier(&iq::crc32_update_slice8, kPasses, 5);
  // Fewer passes: the reference path is an order of magnitude slower.
  out.bytewise_mb_s = tier(&iq::crc32_update_bytewise, kPasses / 10, 3);
  if (sink == 0xdeadbeef) std::fprintf(stderr, "impossible\n");
  return out;
}

/// Codec round trip on a representative DATA segment (attrs + payload).
struct CodecResult {
  double encode_per_s = 0.0;
  double decode_per_s = 0.0;
  double arena_encode_per_s = 0.0;
  double inplace_decode_per_s = 0.0;
  /// operator-new calls across 10k arena-encode + in-place-decode round
  /// trips after warmup. The zero-allocation fast path claims exactly 0.
  std::uint64_t steady_roundtrip_allocs = 0;
};

CodecResult bench_codec() {
  rudp::Segment seg;
  seg.type = rudp::SegmentType::Data;
  seg.conn_id = 7;
  seg.seq = 123456;
  seg.cum_ack = 123400;
  seg.rwnd_packets = 4096;
  seg.ts_us = 1'000'000;
  seg.ts_echo_us = 999'000;
  seg.msg_id = 42;
  seg.frag_index = 1;
  seg.frag_count = 3;
  seg.payload_bytes = 1400;
  seg.marked = true;
  seg.attrs.set("IQ_ERROR_RATIO", 0.034);
  seg.attrs.set("IQ_RATE_CHG", -0.2);
  Bytes payload(1400, 0xab);

  constexpr std::uint64_t kIters = 200'000;
  CodecResult out;
  out.encode_per_s = best_rate(3, [&] {
    std::uint64_t bytes = 0;
    for (std::uint64_t i = 0; i < kIters; ++i) {
      bytes += rudp::encode_segment(seg, payload).size();
    }
    // Defeat dead-code elimination with a side effect the optimizer keeps.
    if (bytes == 0) std::fprintf(stderr, "impossible\n");
    return kIters;
  });
  const Bytes wire = rudp::encode_segment(seg, payload);
  out.decode_per_s = best_rate(3, [&] {
    std::uint64_t ok = 0;
    for (std::uint64_t i = 0; i < kIters; ++i) {
      ok += rudp::decode_segment(wire).has_value() ? 1 : 0;
    }
    if (ok != kIters) std::fprintf(stderr, "decode failures: %llu\n",
                                   static_cast<unsigned long long>(kIters - ok));
    return kIters;
  });

  // Zero-allocation fast path: encode into a reused arena, decode in place.
  ByteWriter arena;
  out.arena_encode_per_s = best_rate(3, [&] {
    std::uint64_t bytes = 0;
    for (std::uint64_t i = 0; i < kIters; ++i) {
      bytes += rudp::encode_segment_into(arena, seg, payload).size();
    }
    if (bytes == 0) std::fprintf(stderr, "impossible\n");
    return kIters;
  });
  out.inplace_decode_per_s = best_rate(3, [&] {
    std::uint64_t ok = 0;
    for (std::uint64_t i = 0; i < kIters; ++i) {
      ok += rudp::decode_segment_view(wire).has_value() ? 1 : 0;
    }
    if (ok != kIters) std::fprintf(stderr, "inplace decode failures: %llu\n",
                                   static_cast<unsigned long long>(kIters - ok));
    return kIters;
  });

  // Steady-state allocation count: after one warmup round trip the arena is
  // at its high-water size and every container stays inline/pooled.
  {
    const BytesView warm = rudp::encode_segment_into(arena, seg, payload);
    (void)rudp::decode_segment_view(warm);
    const std::uint64_t before = iq::bench::alloc_count();
    for (int i = 0; i < 10'000; ++i) {
      const BytesView v = rudp::encode_segment_into(arena, seg, payload);
      auto d = rudp::decode_segment_view(v);
      if (!d) std::fprintf(stderr, "steady decode failed\n");
    }
    out.steady_roundtrip_allocs = iq::bench::alloc_count() - before;
  }
  return out;
}

/// The acceptance metric: events/second on the full Table 1 IQ-RUDP
/// scenario (transport + FEC + adaptation + coordination all live).
struct ScenarioResult {
  double events_per_s = 0.0;
  std::uint64_t events = 0;
};

ScenarioResult bench_table1_scenario() {
  ScenarioResult out;
  for (int rep = 0; rep < 5; ++rep) {
    auto cfg = harness::scenarios::table1(harness::SchemeSpec::iq_rudp(), true);
    const double t0 = now_s();
    auto r = harness::run_experiment(cfg);
    const double secs = now_s() - t0;
    out.events = r.events_executed;
    if (secs > 0.0) {
      const double eps = static_cast<double>(r.events_executed) / secs;
      if (eps > out.events_per_s) out.events_per_s = eps;
    }
  }
  return out;
}

/// Serial vs pooled execution of a multi-scheme table; verifies the rows
/// are bit-identical before trusting the wall-clock comparison.
struct RunnerResult {
  double serial_s = 0.0;
  double parallel_s = 0.0;
  std::size_t threads = 0;
  bool identical = false;
};

RunnerResult bench_runner() {
  using namespace iq::harness;
  const std::vector<ExperimentConfig> cfgs = {
      scenarios::table1(SchemeSpec::tcp(), false),
      scenarios::table1(SchemeSpec::rudp(), false),
      scenarios::table1(SchemeSpec::app_only(), true),
      scenarios::table1(SchemeSpec::iq_rudp(), true),
  };
  RunnerResult out;
  out.threads = runner_threads(cfgs.size());

  double t0 = now_s();
  const auto serial = run_experiments(cfgs, 1);
  out.serial_s = now_s() - t0;

  t0 = now_s();
  const auto parallel = run_experiments(cfgs, 0);
  out.parallel_s = now_s() - t0;

  out.identical = serial.size() == parallel.size();
  for (std::size_t i = 0; out.identical && i < serial.size(); ++i) {
    const auto& a = serial[i].result;
    const auto& b = parallel[i].result;
    out.identical = a.events_executed == b.events_executed &&
                    a.summary.duration_s == b.summary.duration_s &&
                    a.summary.throughput_kBps == b.summary.throughput_kBps &&
                    a.summary.jitter_s == b.summary.jitter_s;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_PERF.json";
  std::printf("== perf microbenchmarks ==\n");

  const double churn = bench_event_churn();
  std::printf("  event churn:        %8.2f M events/s\n", churn / 1e6);
  const double sc_heap = bench_sched_cancel<sim::EventQueue>(1024);
  std::printf("  heap sched+cancel:  %8.2f M ops/s (1k live)\n",
              sc_heap / 1e6);
  const double sc_wheel_1k = bench_sched_cancel<sim::TimerWheel>(1024);
  const double sc_wheel_10k = bench_sched_cancel<sim::TimerWheel>(10240);
  std::printf("  wheel sched+cancel: %8.2f M ops/s (1k live), %.2f M (10k)\n",
              sc_wheel_1k / 1e6, sc_wheel_10k / 1e6);
  const std::uint64_t wheel_allocs = bench_wheel_churn_allocs();
  std::printf("  wheel churn allocs: %8llu per 100 rearm rounds\n",
              static_cast<unsigned long long>(wheel_allocs));
  const PumpResult pump = bench_packet_pump();
  std::printf("  packet pump:        %8.2f M events/s (%.0f pkts/s)\n",
              pump.events_per_s / 1e6, pump.packets_per_s);
  const CrcResult crc = bench_crc();
  std::printf("  crc32 dispatch:     %8.1f MB/s (impl=%s)\n",
              crc.dispatch_mb_s, crc.impl);
  if (crc.pclmul_mb_s > 0) {
    std::printf("  crc32 pclmul:       %8.1f MB/s (%.1fx slice8)\n",
                crc.pclmul_mb_s,
                crc.slice8_mb_s > 0 ? crc.pclmul_mb_s / crc.slice8_mb_s : 0.0);
  }
  std::printf("  crc32 slice-by-8:   %8.1f MB/s\n", crc.slice8_mb_s);
  std::printf("  crc32 bytewise:     %8.1f MB/s\n", crc.bytewise_mb_s);
  const CodecResult codec = bench_codec();
  std::printf("  codec encode:       %8.2f M segs/s\n",
              codec.encode_per_s / 1e6);
  std::printf("  codec decode:       %8.2f M segs/s\n",
              codec.decode_per_s / 1e6);
  std::printf("  codec arena encode: %8.2f M segs/s\n",
              codec.arena_encode_per_s / 1e6);
  std::printf("  codec view decode:  %8.2f M segs/s (%.1fx owning)\n",
              codec.inplace_decode_per_s / 1e6,
              codec.decode_per_s > 0
                  ? codec.inplace_decode_per_s / codec.decode_per_s
                  : 0.0);
  std::printf("  steady-state allocs: %llu per 10k codec round trips\n",
              static_cast<unsigned long long>(codec.steady_roundtrip_allocs));
  const ScenarioResult t1 = bench_table1_scenario();
  std::printf("  table1 scenario:    %8.2f M events/s (%llu events/run)\n",
              t1.events_per_s / 1e6,
              static_cast<unsigned long long>(t1.events));
  const RunnerResult runner = bench_runner();
  std::printf(
      "  runner (4 configs): serial %.2fs, parallel %.2fs (%zu threads), "
      "rows %s\n",
      runner.serial_s, runner.parallel_s, runner.threads,
      runner.identical ? "identical" : "** DIVERGED **");

  iq::harness::JsonWriter w;
  w.begin_object()
      .field("event_churn_eps", churn)
      .field("sched_cancel_ops", sc_heap)
      .field("wheel_sched_cancel_ops_1k", sc_wheel_1k)
      .field("wheel_sched_cancel_ops_10k", sc_wheel_10k)
      .field("wheel_churn_steady_allocs", wheel_allocs)
      .field("packet_pump_eps", pump.events_per_s)
      .field("packet_pump_pps", pump.packets_per_s)
      .field("crc_impl", crc.impl)
      .field("crc_mb_s", crc.dispatch_mb_s)
      .field("crc_pclmul_mb_s", crc.pclmul_mb_s)
      .field("crc_slice8_mb_s", crc.slice8_mb_s)
      .field("crc_pclmul_speedup",
             crc.slice8_mb_s > 0 ? crc.pclmul_mb_s / crc.slice8_mb_s : 0.0)
      .field("crc_bytewise_mb_s", crc.bytewise_mb_s)
      .field("codec_encode_per_s", codec.encode_per_s)
      .field("codec_decode_per_s", codec.decode_per_s)
      .field("codec_arena_encode_per_s", codec.arena_encode_per_s)
      .field("codec_inplace_decode_per_s", codec.inplace_decode_per_s)
      .field("codec_steady_roundtrip_allocs", codec.steady_roundtrip_allocs)
      .field("table1_eps", t1.events_per_s)
      .field("table1_events", t1.events)
      .field("runner_serial_s", runner.serial_s)
      .field("runner_parallel_s", runner.parallel_s)
      .field("runner_threads", static_cast<std::uint64_t>(runner.threads))
      .field("runner_rows_identical", runner.identical)
      .field("hardware_concurrency",
             static_cast<std::uint64_t>(std::thread::hardware_concurrency()))
      .end_object();
  std::ofstream f(out_path);
  f << w.take() << "\n";
  std::printf("wrote %s\n", out_path.c_str());

  // Invariant failures (not throughput — that is machine-dependent): the
  // parallel runner must reproduce serial rows, and both zero-alloc fast
  // paths (codec round trip, wheel rearm churn) must stay allocation-free.
  const bool ok = runner.identical && codec.steady_roundtrip_allocs == 0 &&
                  wheel_allocs == 0;
  return ok ? 0 : 1;
}
