// Extension experiment (beyond the paper): coordination across multiple
// bottlenecks.
//
// The paper evaluates on a single bottleneck; real WAN paths traverse
// several. This bench runs the over-reaction scenario on a parking-lot
// topology (2 hops, each congested by its own cross flow) and checks that
// the coordinated window rescale still helps when loss is contributed by
// more than one queue.

#include <cstdio>
#include <memory>

#include "iq/core/iq_connection.hpp"
#include "iq/echo/sink.hpp"
#include "iq/echo/source.hpp"
#include "iq/net/parking_lot.hpp"
#include "iq/net/sinks.hpp"
#include "iq/stats/table.hpp"
#include "iq/wire/sim_wire.hpp"
#include "iq/workload/cbr_source.hpp"

namespace {

using namespace iq;

struct Result {
  stats::FlowSummary summary;
  std::uint64_t rescales = 0;
};

Result run(core::CoordinationMode mode, std::int64_t cross_bps) {
  sim::Simulator sim;
  net::Network network(sim);
  net::ParkingLot pl(network, {.hops = 2});

  net::CountingSink cross_sinks[2];
  std::unique_ptr<workload::CbrSource> crosses[2];
  for (int i = 0; i < 2; ++i) {
    pl.cross_dst(i).bind(9, &cross_sinks[i]);
    workload::CbrConfig cc;
    cc.rate_bps = cross_bps;
    cc.flow = 900 + i;
    cc.src_port = 9;
    cc.dst_port = 9;
    crosses[i] = std::make_unique<workload::CbrSource>(
        network, pl.cross_src(i), pl.cross_dst(i), cc);
    crosses[i]->start();
  }

  wire::SimWire wsnd(network, {pl.src().id(), 21}, {pl.dst().id(), 21}, 1);
  wire::SimWire wrcv(network, {pl.dst().id(), 21}, {pl.src().id(), 21}, 1);
  rudp::RudpConfig rc;
  rc.loss_epoch_packets = 50;
  core::CoordinatorConfig cc;
  cc.mode = mode;
  core::IqRudpConnection snd(wsnd, rc, rudp::Role::Client, cc);
  core::IqRudpConnection rcv(wrcv, rc, rudp::Role::Server, cc);

  echo::EventChannel chan_s("viz", snd);
  echo::EventChannel chan_r("viz", rcv);
  stats::MessageMetrics metrics;
  echo::MetricSink sink(chan_r, metrics);

  echo::AdaptiveSourceConfig sc;
  sc.frame_rate = 0;  // ASAP
  sc.total_frames = 4000;
  sc.fixed_frame_bytes = 1400;
  sc.adaptation = echo::AdaptKind::Resolution;
  sc.upper_threshold = 0.08;
  sc.lower_threshold = 0.01;
  echo::AdaptiveSource source(chan_s, nullptr, sc, &metrics);

  rcv.listen();
  snd.set_established_handler([&] { source.start(); });
  snd.connect();

  const TimePoint deadline = TimePoint::zero() + Duration::seconds(300);
  while (sim.now() < deadline &&
         !(source.done() && snd.transport().send_idle())) {
    sim.run_for(Duration::millis(200));
  }
  metrics.finish(sim.now());
  return Result{metrics.summary(), snd.coordinator().stats().window_rescales};
}

}  // namespace

int main() {
  std::printf("== Extension: over-reaction coordination across 2 bottlenecks ==\n");
  iq::stats::Table table({"cross/hop", "scheme", "thr(KB/s)", "duration(s)",
                          "jitter(ms)", "rescales"});
  for (std::int64_t cross : {16'000'000LL, 18'000'000LL}) {
    for (auto mode : {iq::core::CoordinationMode::Coordinated,
                      iq::core::CoordinationMode::Uncoordinated}) {
      const Result r = run(mode, cross);
      table.add_row(
          {std::to_string(cross / 1'000'000) + " Mb/s",
           mode == iq::core::CoordinationMode::Coordinated ? "IQ-RUDP"
                                                           : "RUDP",
           iq::stats::Table::num(r.summary.throughput_kBps),
           iq::stats::Table::num(r.summary.duration_s),
           iq::stats::Table::num(r.summary.jitter_ms, 2),
           std::to_string(r.rescales)});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nfinding: with loss accumulating over two *unresponsive*-cross "
      "queues, the window rescale's extra aggressiveness is punished at the "
      "second queue — coordination lands at parity or slightly behind. The "
      "single-bottleneck assumption behind eq. 1/(1−rate_chg) matters; a "
      "multi-hop-aware rescale is an open extension.\n");
  return 0;
}
