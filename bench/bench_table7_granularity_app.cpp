// Table 7 reproduction: limited application adaptation granularity,
// changing application. The application can only adapt at frames whose
// index is divisible by 20; IQ-RUDP learns of the deferral (ADAPT_WHEN) and
// of the eventual adaptation (send-call attrs) and rescales immediately.

#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace iq;
  using namespace iq::harness;
  std::printf("== Table 7: limited granularity — changing application ==\n");

  const auto results = bench::run_all({
      scenarios::table7(SchemeSpec::iq_rudp_no_cond()),
      scenarios::table7(SchemeSpec::rudp()),
  });
  const auto& iq = results[0];
  const auto& ru = results[1];

  Comparison cmp("Table 7: limited granularity, changing application",
                 {"Duration(s)", "Thr(KB/s)", "Delay(s)", "Jitter(s)"});
  cmp.add_paper_row("IQ-RUDP w/o ADAPT_COND", {140, 97, 0.097, 0.047});
  cmp.add_measured_row(
      "IQ-RUDP w/o ADAPT_COND",
      {iq.summary.duration_s, iq.summary.throughput_kBps,
       iq.summary.interarrival_s, iq.summary.jitter_s});
  cmp.add_paper_row("RUDP", {144, 95.6, 0.113, 0.058});
  cmp.add_measured_row("RUDP",
                       {ru.summary.duration_s, ru.summary.throughput_kBps,
                        ru.summary.interarrival_s, ru.summary.jitter_s});
  cmp.add_note("shape target: IQ slightly ahead; delay/jitter most improved");
  std::printf("%s", cmp.render().c_str());

  std::printf("deferrals noted: IQ %llu (resolved %llu), RUDP %llu\n",
              static_cast<unsigned long long>(iq.coordination.deferrals_noted),
              static_cast<unsigned long long>(
                  iq.coordination.deferred_resolved),
              static_cast<unsigned long long>(
                  ru.coordination.deferrals_noted));
  return (iq.completed && ru.completed) ? 0 : 1;
}
