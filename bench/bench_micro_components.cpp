// Google-benchmark microbenchmarks for the hot components: event queue,
// link pipeline, segment codec, attribute lists, congestion controllers.
// These guard the simulator's capacity to run multi-million-event
// experiments in seconds.

#include <benchmark/benchmark.h>

#include "iq/attr/list.hpp"
#include "iq/common/bytes.hpp"
#include "iq/common/rng.hpp"
#include "iq/net/dumbbell.hpp"
#include "iq/net/sinks.hpp"
#include "iq/rudp/codec.hpp"
#include "iq/rudp/congestion.hpp"
#include "iq/sim/event_queue.hpp"
#include "iq/sim/simulator.hpp"
#include "iq/sim/timer_wheel.hpp"

namespace {

using namespace iq;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < state.range(0); ++i) {
      q.schedule(TimePoint::from_ns(i * 7919 % 1000), [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1024)->Arg(16384);

void BM_TimerWheelScheduleAndPop(benchmark::State& state) {
  for (auto _ : state) {
    sim::TimerWheel q;
    for (int i = 0; i < state.range(0); ++i) {
      q.schedule(TimePoint::from_ns(i * 7919 % 1000), [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TimerWheelScheduleAndPop)->Arg(1024)->Arg(16384);

/// The retransmission-timer mix both schedulers must serve: a standing
/// population of armed timers, each op a cancel + reschedule, almost no
/// fires. Arg = live-timer count (1k and 10k, the CityScale regime).
template <typename Queue>
void BM_SchedCancelChurn(benchmark::State& state) {
  const auto live = static_cast<std::size_t>(state.range(0));
  Queue q;
  std::vector<sim::EventId> ids(live, 0);
  std::int64_t t = 0;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < live; ++i) {
      if (ids[i] != 0) q.cancel(ids[i]);
      ids[i] = q.schedule(
          TimePoint::from_ns(t + static_cast<std::int64_t>(i * 131) % 4093),
          [] {});
      ++ops;
    }
    t += 64;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_SchedCancelChurn<sim::EventQueue>)->Arg(1024)->Arg(10240);
BENCHMARK(BM_SchedCancelChurn<sim::TimerWheel>)->Arg(1024)->Arg(10240);

void BM_SimulatorTimerChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    // Schedule + cancel churn mimicking retransmission timers.
    std::vector<sim::EventId> ids;
    for (int i = 0; i < state.range(0); ++i) {
      ids.push_back(sim.after(Duration::millis(100 + i), [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) sim.cancel(ids[i]);
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorTimerChurn)->Arg(4096);

void BM_LinkPacketPipeline(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    net::Network net(sim);
    net::Dumbbell db(net, {.pairs = 1});
    net::CountingSink sink;
    db.right(0).bind(7, &sink);
    for (int i = 0; i < state.range(0); ++i) {
      db.left(0).send(net.make_packet({db.left(0).id(), 7},
                                      {db.right(0).id(), 7}, 1, 1400));
    }
    sim.run();
    benchmark::DoNotOptimize(sink.packets());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LinkPacketPipeline)->Arg(10000);

void BM_SegmentEncode(benchmark::State& state) {
  rudp::Segment seg;
  seg.type = rudp::SegmentType::Data;
  seg.seq = 123456;
  seg.msg_id = 42;
  seg.payload_bytes = 1400;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rudp::encode_segment(seg));
  }
}
BENCHMARK(BM_SegmentEncode);

void BM_SegmentDecode(benchmark::State& state) {
  rudp::Segment seg;
  seg.type = rudp::SegmentType::Ack;
  for (int i = 0; i < 32; ++i) seg.eacks.push_back(1000 + i);
  const Bytes wire = rudp::encode_segment(seg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rudp::decode_segment(wire));
  }
}
BENCHMARK(BM_SegmentDecode);

/// Per-tier CRC-32 rows over an MTU-sized datagram (the codec's case) —
/// tier 0 = runtime dispatch, 1 = pclmul, 2 = slice8, 3 = bytewise.
void BM_Crc32Tier(benchmark::State& state) {
  using Kernel = std::uint32_t (*)(std::uint32_t, BytesView);
  static constexpr Kernel kTiers[] = {
      &crc32_update, &crc32_update_pclmul, &crc32_update_slice8,
      &crc32_update_bytewise};
  const Kernel kernel = kTiers[state.range(0)];
  if (state.range(0) == 1 && !crc32_pclmul_supported()) {
    state.SkipWithError("pclmul unsupported on this CPU");
    return;
  }
  Bytes buf(1400);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::uint8_t>(i * 2654435761u >> 24);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel(kCrc32Init, buf));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_Crc32Tier)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_AttrListSetGet(benchmark::State& state) {
  for (auto _ : state) {
    attr::AttrList list;
    list.set("NET_LOSS_RATIO", 0.1);
    list.set("NET_RTT_MS", 30.0);
    list.set("ADAPT_PKTSIZE", 0.2);
    benchmark::DoNotOptimize(list.get_double("ADAPT_PKTSIZE"));
  }
}
BENCHMARK(BM_AttrListSetGet);

void BM_LdaControllerEpochs(benchmark::State& state) {
  rudp::LdaController cc;
  Rng rng(1);
  TimePoint now;
  for (auto _ : state) {
    cc.on_ack(1, now);
    if (rng.chance(0.01)) cc.on_epoch(rng.uniform01() * 0.3, now);
    now += Duration::micros(100);
    benchmark::DoNotOptimize(cc.cwnd());
  }
}
BENCHMARK(BM_LdaControllerEpochs);

void BM_RngUniform(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(rng.uniform01());
}
BENCHMARK(BM_RngUniform);

}  // namespace

BENCHMARK_MAIN();
