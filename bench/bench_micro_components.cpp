// Google-benchmark microbenchmarks for the hot components: event queue,
// link pipeline, segment codec, attribute lists, congestion controllers.
// These guard the simulator's capacity to run multi-million-event
// experiments in seconds.

#include <benchmark/benchmark.h>

#include "iq/attr/list.hpp"
#include "iq/common/rng.hpp"
#include "iq/net/dumbbell.hpp"
#include "iq/net/sinks.hpp"
#include "iq/rudp/codec.hpp"
#include "iq/rudp/congestion.hpp"
#include "iq/sim/simulator.hpp"

namespace {

using namespace iq;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < state.range(0); ++i) {
      q.schedule(TimePoint::from_ns(i * 7919 % 1000), [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1024)->Arg(16384);

void BM_SimulatorTimerChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    // Schedule + cancel churn mimicking retransmission timers.
    std::vector<sim::EventId> ids;
    for (int i = 0; i < state.range(0); ++i) {
      ids.push_back(sim.after(Duration::millis(100 + i), [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) sim.cancel(ids[i]);
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorTimerChurn)->Arg(4096);

void BM_LinkPacketPipeline(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    net::Network net(sim);
    net::Dumbbell db(net, {.pairs = 1});
    net::CountingSink sink;
    db.right(0).bind(7, &sink);
    for (int i = 0; i < state.range(0); ++i) {
      db.left(0).send(net.make_packet({db.left(0).id(), 7},
                                      {db.right(0).id(), 7}, 1, 1400));
    }
    sim.run();
    benchmark::DoNotOptimize(sink.packets());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LinkPacketPipeline)->Arg(10000);

void BM_SegmentEncode(benchmark::State& state) {
  rudp::Segment seg;
  seg.type = rudp::SegmentType::Data;
  seg.seq = 123456;
  seg.msg_id = 42;
  seg.payload_bytes = 1400;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rudp::encode_segment(seg));
  }
}
BENCHMARK(BM_SegmentEncode);

void BM_SegmentDecode(benchmark::State& state) {
  rudp::Segment seg;
  seg.type = rudp::SegmentType::Ack;
  for (int i = 0; i < 32; ++i) seg.eacks.push_back(1000 + i);
  const Bytes wire = rudp::encode_segment(seg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rudp::decode_segment(wire));
  }
}
BENCHMARK(BM_SegmentDecode);

void BM_AttrListSetGet(benchmark::State& state) {
  for (auto _ : state) {
    attr::AttrList list;
    list.set("NET_LOSS_RATIO", 0.1);
    list.set("NET_RTT_MS", 30.0);
    list.set("ADAPT_PKTSIZE", 0.2);
    benchmark::DoNotOptimize(list.get_double("ADAPT_PKTSIZE"));
  }
}
BENCHMARK(BM_AttrListSetGet);

void BM_LdaControllerEpochs(benchmark::State& state) {
  rudp::LdaController cc;
  Rng rng(1);
  TimePoint now;
  for (auto _ : state) {
    cc.on_ack(1, now);
    if (rng.chance(0.01)) cc.on_epoch(rng.uniform01() * 0.3, now);
    now += Duration::micros(100);
    benchmark::DoNotOptimize(cc.cwnd());
  }
}
BENCHMARK(BM_LdaControllerEpochs);

void BM_RngUniform(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(rng.uniform01());
}
BENCHMARK(BM_RngUniform);

}  // namespace

BENCHMARK_MAIN();
