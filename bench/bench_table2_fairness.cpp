// Table 2 reproduction: fairness test — the application flow (no
// adaptation) over TCP vs over IQ-RUDP, each against one bulk TCP cross
// flow. The claim: throughputs are close, TCP somewhat ahead.

#include <cstdio>

#include "bench_util.hpp"
#include "iq/stats/jain.hpp"

int main() {
  using namespace iq;
  using namespace iq::harness;
  std::printf("== Table 2: fairness test (vs a TCP cross flow) ==\n");

  const auto results = bench::run_all({
      scenarios::table2(SchemeSpec::tcp()),
      scenarios::table2(SchemeSpec::rudp()),
  });
  const auto& tcp = results[0];
  const auto& iq = results[1];

  Comparison cmp("Table 2: fairness test",
                 {"Time(s)", "Thr(KB/s)", "Inter-arrival(s)", "Jitter(s)"});
  cmp.add_paper_row("TCP", {51, 118, 0.022, 0.0001});
  cmp.add_measured_row("TCP", bench::row4_pkt(tcp));
  cmp.add_paper_row("IQ-RUDP", {60, 99, 0.024, 0.0001});
  cmp.add_measured_row("IQ-RUDP", bench::row4_pkt(iq));
  cmp.add_note("shape target: throughputs within ~2x; TCP somewhat ahead");
  std::printf("%s", cmp.render().c_str());

  const double ratio =
      tcp.summary.throughput_kBps / std::max(iq.summary.throughput_kBps, 1.0);
  std::printf("measured TCP/IQ-RUDP throughput ratio: %.2f (paper: %.2f)\n",
              ratio, 118.0 / 99.0);
  // Same two throughputs as a fairness index (1.0 = perfectly equal;
  // the paper's own numbers score 0.992).
  const double throughputs[] = {tcp.summary.throughput_kBps,
                                iq.summary.throughput_kBps};
  const double paper[] = {118.0, 99.0};
  std::printf("Jain index over the two throughputs: %.3f (paper: %.3f)\n",
              stats::jain_index(throughputs), stats::jain_index(paper));
  return (tcp.completed && iq.completed) ? 0 : 1;
}
