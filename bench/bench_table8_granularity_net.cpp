// Table 8 reproduction: limited granularity, changing network — the
// flagship scheme-3 experiment. 125 ms one-way delay, rate-based
// application, 14 Mb CBR cross traffic, adaptation deferred to every 20th
// frame. Three schemes: RUDP, IQ-RUDP without ADAPT_COND, IQ-RUDP with
// ADAPT_COND (eq. 1 drift compensation). Claim: strict ordering
// RUDP < IQ w/o COND < IQ w/ COND, with jitter improved most.

#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace iq;
  using namespace iq::harness;
  std::printf("== Table 8: limited granularity — changing network ==\n");

  const auto results = bench::run_all({
      scenarios::table8(SchemeSpec::iq_rudp()),
      scenarios::table8(SchemeSpec::iq_rudp_no_cond()),
      scenarios::table8(SchemeSpec::rudp()),
  });
  const auto& iq_cond = results[0];
  const auto& iq_nc = results[1];
  const auto& ru = results[2];

  Comparison cmp("Table 8: limited granularity, changing network",
                 {"Duration(s)", "Thr(KB/s)", "Delay(ms)", "Jitter(ms)"});
  cmp.add_paper_row("IQ-RUDP w/ ADAPT_COND", {22.1, 37.8, 6.5, 0.8});
  cmp.add_measured_row("IQ-RUDP w/ ADAPT_COND",
                       {iq_cond.summary.duration_s,
                        iq_cond.summary.throughput_kBps,
                        iq_cond.summary.delay_ms, iq_cond.summary.jitter_ms});
  cmp.add_paper_row("IQ-RUDP w/o ADAPT_COND", {22.7, 33.8, 6.7, 1.1});
  cmp.add_measured_row("IQ-RUDP w/o ADAPT_COND",
                       {iq_nc.summary.duration_s,
                        iq_nc.summary.throughput_kBps,
                        iq_nc.summary.delay_ms, iq_nc.summary.jitter_ms});
  cmp.add_paper_row("RUDP", {23.2, 32.0, 6.8, 1.3});
  cmp.add_measured_row("RUDP",
                       {ru.summary.duration_s, ru.summary.throughput_kBps,
                        ru.summary.delay_ms, ru.summary.jitter_ms});
  cmp.add_note("shape target: RUDP <= IQ w/o COND <= IQ w/ COND in thr");
  std::printf("%s", cmp.render().c_str());

  const bool ordering =
      iq_cond.summary.throughput_kBps >= iq_nc.summary.throughput_kBps * 0.98 &&
      iq_nc.summary.throughput_kBps >= ru.summary.throughput_kBps * 0.98;
  std::printf("shape check (throughput ordering): %s\n",
              ordering ? "PASS" : "DIVERGES");
  std::printf("cond compensations applied: %llu\n",
              static_cast<unsigned long long>(
                  iq_cond.coordination.cond_compensations));
  return (iq_cond.completed && iq_nc.completed && ru.completed) ? 0 : 1;
}
