// Ablation: which coordination scheme buys what (DESIGN.md §5).
//
// Runs the conflict scenario (Table 4 shape) and the over-reaction scenario
// (Table 6 shape) with individual coordination schemes toggled off, plus
// the paper's counterfactual — rescaling the window on *frequency*
// adaptations, which §3.4 explicitly forbids because the reduced message
// frequency already lowers the offered bit rate.

#include <cstdio>

#include "bench_util.hpp"
#include "iq/stats/table.hpp"

namespace {

using namespace iq;
using namespace iq::harness;

void conflict_ablation() {
  std::printf("--- scheme 1 (send-side discard) on the conflict scenario ---\n");
  stats::Table table(
      {"variant", "duration(s)", "recvd(%)", "tag delay(ms)", "discards"});
  struct Variant {
    const char* name;
    bool conflict;
  };
  const Variant variants[] = {Variant{"full IQ-RUDP", true},
                              Variant{"IQ w/o scheme 1", false}};
  std::vector<ExperimentConfig> cfgs;
  for (const Variant& v : variants) {
    SchemeSpec scheme = SchemeSpec::iq_rudp();
    scheme.enable_conflict = v.conflict;
    auto cfg = scenarios::table4(scheme);
    cfg.total_frames = 3000;
    cfgs.push_back(cfg);
  }
  const auto results = bench::run_all(cfgs);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    table.add_row({variants[i].name, stats::Table::num(r.summary.duration_s),
                   stats::Table::num(r.summary.delivered_pct),
                   stats::Table::num(r.summary.tagged_delay_ms),
                   std::to_string(r.rudp.messages_discarded_at_send)});
  }
  std::printf("%s\n", table.render().c_str());
}

void frequency_counterfactual() {
  std::printf(
      "--- frequency adaptation: no rescale (paper) vs rescale "
      "(counterfactual) ---\n");
  stats::Table table({"variant", "thr(KB/s)", "duration(s)", "jitter(ms)",
                      "loss ratio", "rescales"});
  struct Variant {
    const char* name;
    bool rescale;
  };
  const Variant variants[] = {
      Variant{"no rescale on ADAPT_FREQ (paper)", false},
      Variant{"rescale on ADAPT_FREQ (counterfactual)", true}};
  std::vector<ExperimentConfig> cfgs;
  for (const Variant& v : variants) {
    SchemeSpec scheme = SchemeSpec::iq_rudp();
    scheme.rescale_on_frequency = v.rescale;
    auto cfg = scenarios::table6(scheme, 16'000'000);
    cfg.adaptation = echo::AdaptKind::Frequency;
    cfg.total_frames = 4000;
    cfgs.push_back(cfg);
  }
  const auto results = bench::run_all(cfgs);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    table.add_row({variants[i].name,
                   stats::Table::num(r.summary.throughput_kBps),
                   stats::Table::num(r.summary.duration_s),
                   stats::Table::num(r.summary.jitter_ms, 2),
                   stats::Table::num(r.app_lifetime_loss_ratio, 4),
                   std::to_string(r.coordination.window_rescales)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "the paper's argument: the rescale double-compensates, over-shooting "
      "when frequency recovers. note: against *unresponsive* UDP cross "
      "traffic over-shooting can still pay off in raw throughput (it steals "
      "queue share without TCP-style punishment), so compare the loss ratio "
      "and jitter columns, not throughput alone.\n\n");
}

void cond_ablation() {
  std::printf("--- eq. (1) compensation on the granularity scenario ---\n");
  stats::Table table({"variant", "thr(KB/s)", "jitter(ms)", "compensations"});
  std::vector<ExperimentConfig> cfgs;
  for (const auto& scheme :
       {SchemeSpec::iq_rudp(), SchemeSpec::iq_rudp_no_cond()}) {
    auto cfg = scenarios::table8(scheme);
    cfg.total_frames = 6000;
    cfgs.push_back(cfg);
  }
  const auto results = bench::run_all(cfgs);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    table.add_row({cfgs[i].scheme.label,
                   stats::Table::num(r.summary.throughput_kBps),
                   stats::Table::num(r.summary.jitter_ms, 2),
                   std::to_string(r.coordination.cond_compensations)});
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main() {
  std::printf("== Ablation: coordination schemes ==\n");
  conflict_ablation();
  frequency_counterfactual();
  cond_ablation();
  return 0;
}
