// Extension experiment: delivery latency of the FEC reliability class.
//
// A constant-rate message flow crosses the dumbbell bottleneck while the
// bottleneck corrupts a fraction of packets (random, non-congestive loss).
// Two reliability strategies are compared at each loss rate:
//   * marked    — fully reliable, losses repaired by retransmission;
//   * FEC       — losses repaired by XOR parity recovery at the receiver,
//                 retransmission only as the RTO fallback.
// Retransmission costs at least an extra RTT per repair; parity recovery
// costs only the spacing to the group's parity segment, so the FEC latency
// CDF should show a much shorter tail. Results are emitted as JSON for
// scripting.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "iq/harness/json.hpp"
#include "iq/net/dumbbell.hpp"
#include "iq/rudp/connection.hpp"
#include "iq/stats/histogram.hpp"
#include "iq/wire/sim_wire.hpp"

namespace {

using namespace iq;

constexpr double kSeconds = 30.0;
constexpr std::int64_t kMessageBytes = 1000;
constexpr std::int64_t kIntervalMs = 5;
constexpr std::uint16_t kFecGroupSize = 4;

struct LegResult {
  stats::Histogram latency_ms{1e-2, 1e4, 160};
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t retransmitted = 0;
  std::uint64_t recovered = 0;
  std::uint64_t parities = 0;
};

LegResult run_leg(double drop_probability, bool use_fec) {
  sim::Simulator sim;
  net::Network network(sim);
  net::DumbbellConfig dcfg;
  dcfg.pairs = 1;
  dcfg.bottleneck_drop_probability = drop_probability;
  dcfg.bottleneck_drop_seed = 97;
  net::Dumbbell db(network, dcfg);

  const net::Endpoint a{db.left(0).id(), 1000};
  const net::Endpoint b{db.right(0).id(), 1000};
  wire::SimWire wire_snd(network, a, b, 0);
  wire::SimWire wire_rcv(network, b, a, 0);

  rudp::RudpConfig cfg;
  cfg.fec_group_size = kFecGroupSize;
  rudp::RudpConnection snd(wire_snd, cfg, rudp::Role::Client);
  rudp::RudpConnection rcv(wire_rcv, cfg, rudp::Role::Server);

  LegResult out;
  rcv.set_message_handler([&out](const rudp::DeliveredMessage& m) {
    ++out.delivered;
    out.latency_ms.add((m.delivered - m.first_sent).to_millis());
  });
  rcv.listen();
  snd.connect();

  sim::PeriodicTask source(sim, Duration::millis(kIntervalMs), [&] {
    if (!snd.established()) return;
    ++out.offered;
    snd.send_message({.bytes = kMessageBytes, .marked = true,
                      .fec = use_fec});
  });
  source.start(/*fire_now=*/false);
  sim.run_until(TimePoint::zero() + Duration::from_seconds(kSeconds));

  out.dropped = rcv.stats().messages_dropped;
  out.retransmitted = snd.stats().segments_retransmitted;
  out.recovered = rcv.stats().segments_recovered;
  out.parities = snd.stats().parities_sent;
  return out;
}

void emit_leg(harness::JsonWriter& json, const std::string& name,
              const LegResult& leg) {
  json.key(name).begin_object();
  json.field("offered", leg.offered);
  json.field("delivered", leg.delivered);
  json.field("dropped", leg.dropped);
  json.field("retransmitted", leg.retransmitted);
  json.field("recovered", leg.recovered);
  json.field("parities_sent", leg.parities);
  json.field("latency_mean_ms", leg.latency_ms.mean());
  json.field("latency_p50_ms", leg.latency_ms.p50());
  json.field("latency_p95_ms", leg.latency_ms.p95());
  json.field("latency_p99_ms", leg.latency_ms.p99());
  json.field("latency_max_ms", leg.latency_ms.max());
  json.end_object();
}

}  // namespace

int main() {
  const std::vector<double> loss_rates{0.005, 0.01, 0.02, 0.05};

  harness::JsonWriter json;
  json.begin_object();
  json.field("bench", "fec_latency");
  json.field("topology", "dumbbell");
  json.field("seconds", kSeconds);
  json.field("message_bytes", kMessageBytes);
  json.field("interval_ms", kIntervalMs);
  json.field("fec_group_size", static_cast<std::int64_t>(kFecGroupSize));
  json.key("runs").begin_object();

  std::fprintf(stderr,
               "== FEC vs retransmission: delivery latency on the lossy "
               "dumbbell ==\n");
  for (double rate : loss_rates) {
    const LegResult marked = run_leg(rate, /*use_fec=*/false);
    const LegResult fec = run_leg(rate, /*use_fec=*/true);
    std::fprintf(stderr,
                 "loss %.3f: marked p99 %8.1f ms (rexmit %5llu) | "
                 "fec p99 %8.1f ms (recovered %5llu, rexmit %5llu)\n",
                 rate, marked.latency_ms.p99(),
                 static_cast<unsigned long long>(marked.retransmitted),
                 fec.latency_ms.p99(),
                 static_cast<unsigned long long>(fec.recovered),
                 static_cast<unsigned long long>(fec.retransmitted));

    char label[32];
    std::snprintf(label, sizeof(label), "loss_%.3f", rate);
    json.key(label).begin_object();
    json.field("drop_probability", rate);
    emit_leg(json, "marked", marked);
    emit_leg(json, "fec", fec);
    json.end_object();
  }

  json.end_object();  // runs
  json.end_object();
  std::printf("%s\n", json.take().c_str());
  std::fprintf(stderr,
               "\nexpectation: at low-to-moderate loss FEC trims the latency "
               "tail (p95/p99) that retransmission repair inflates, at the "
               "cost of ~%.0f%% parity overhead. Once loss is high enough "
               "that groups of %u take multiple hits, recovery fails and "
               "the RTO fallback dominates the tail — the regime the "
               "adaptive redundancy controller exists to avoid (it shrinks "
               "k as loss grows).\n",
               100.0 / kFecGroupSize, kFecGroupSize);
  return 0;
}
