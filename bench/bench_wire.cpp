// Real-socket wire bench: throughput and latency of the batched UDP fast
// path, with a machine-readable baseline.
//
// Two UdpWire endpoints on loopback inside one epoll loop. Three sections:
//   - blast: bursts of encoded DATA segments through sendmmsg, drained by
//     recvmmsg on the peer — wire-level packets/second and the delivered
//     ratio (the kernel may shed under overload; the wire may not);
//   - echo: sequential ping/pong through the full encode → sendmmsg →
//     epoll → recvmmsg → in-place-decode path, RTT percentiles — the
//     latency cost of one event-loop round trip (timeouts retransmit, so
//     the reply count is deterministic);
//   - steady allocations: the blast window re-run after warmup with the
//     counting allocator armed — the socket send/recv path claims exactly
//     zero heap traffic at steady state.
//
// Deterministic invariants (exact counts, zero allocs, full echo replies,
// forced batch width) are gated by scripts/perf_compare.py against the
// committed BENCH_WIRE.json; throughput and RTT swing with the machine —
// single-CPU CI containers run both endpoints on one core — so they only
// warn (PERFORMANCE.md discusses the caveat).
//
// Usage: bench_wire [output.json]   (default BENCH_WIRE.json in the CWD)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

// Count every global operator-new in this binary so the steady-state
// allocation metric is exact, not sampled.
#define IQ_COUNT_ALLOCS
#include "bench_util.hpp"
#include "iq/harness/json.hpp"
#include "iq/wire/udp_wire.hpp"

namespace {

using namespace iq;

constexpr std::uint16_t kPortA = 41000;
constexpr std::uint16_t kPortB = 41001;
constexpr std::size_t kBatch = 32;
constexpr std::uint64_t kBlastCount = 100'000;
constexpr std::uint64_t kPingCount = 2'000;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

rudp::Segment data_segment(std::uint32_t seq) {
  rudp::Segment seg;
  seg.type = rudp::SegmentType::Data;
  seg.conn_id = 7;
  seg.seq = seq;
  seg.msg_id = seq;
  seg.payload_bytes = 1400;
  return seg;
}

struct Harness {
  wire::RealtimeLoop loop;
  wire::UdpWire a, b;
  std::uint64_t b_received = 0;
  bool echo = false;          ///< ping phase: b reflects every segment
  std::uint32_t a_last_seq = 0;  ///< ping phase: last reply seen by a
  std::uint64_t a_replies = 0;

  static wire::UdpWireConfig cfg() {
    wire::UdpWireConfig c;
    c.batch = kBatch;
    return c;
  }

  Harness() : a(loop, kPortA, kPortB, cfg()), b(loop, kPortB, kPortA, cfg()) {
    b.set_receiver([this](const rudp::Segment& seg) {
      ++b_received;
      if (echo) b.send(seg);
    });
    a.set_receiver([this](const rudp::Segment& seg) {
      ++a_replies;
      a_last_seq = seg.seq;
    });
  }

  /// Push `count` segments a → b in full sendmmsg bursts, draining the
  /// receiver between bursts, then run until arrivals stop.
  void blast(std::uint64_t count) {
    for (std::uint64_t i = 0; i < count; ++i) {
      a.send(data_segment(static_cast<std::uint32_t>(i + 1)));
      if ((i + 1) % kBatch == 0) loop.poll_once(Duration::zero());
    }
    a.flush_sends();
    // Drain: the kernel holds at most a socket buffer's worth.
    std::uint64_t last = b_received;
    for (int idle = 0; idle < 5;) {
      loop.poll_once(Duration::millis(1));
      idle = b_received == last ? idle + 1 : 0;
      last = b_received;
    }
  }
};

struct BlastResult {
  double pps = 0.0;
  double delivered_ratio = 0.0;
  std::uint64_t received = 0;
};

BlastResult bench_blast(Harness& h) {
  const std::uint64_t recv0 = h.b_received;
  const double t0 = now_s();
  h.blast(kBlastCount);
  const double secs = now_s() - t0;
  BlastResult out;
  out.received = h.b_received - recv0;
  out.pps = secs > 0.0 ? static_cast<double>(kBlastCount) / secs : 0.0;
  out.delivered_ratio =
      static_cast<double>(out.received) / static_cast<double>(kBlastCount);
  return out;
}

struct EchoResult {
  double rtt_us_p50 = 0.0;
  double rtt_us_p99 = 0.0;
  std::uint64_t replies = 0;
};

/// Sequential ping/pong: one segment in flight at a time; a ping that gets
/// no reply within 100 ms is retransmitted (loopback does not guarantee
/// delivery under memory pressure), so every sequence eventually completes
/// and `replies` is exactly kPingCount.
EchoResult bench_echo(Harness& h) {
  h.echo = true;
  std::vector<double> rtts;
  rtts.reserve(kPingCount);
  EchoResult out;
  for (std::uint64_t i = 0; i < kPingCount; ++i) {
    const auto seq = static_cast<std::uint32_t>(1'000'000 + i);
    const double t0 = now_s();
    double sent_at = t0;
    h.a.send(data_segment(seq));
    h.a.flush_sends();
    while (h.a_last_seq != seq) {
      h.loop.poll_once(Duration::millis(1));
      const double now = now_s();
      if (now - sent_at > 0.1) {  // lost: retransmit, keep the RTT honest
        h.a.send(data_segment(seq));
        h.a.flush_sends();
        sent_at = now;
      }
    }
    rtts.push_back((now_s() - sent_at) * 1e6);
  }
  h.echo = false;
  out.replies = kPingCount;  // the loop above cannot exit otherwise
  std::sort(rtts.begin(), rtts.end());
  out.rtt_us_p50 = rtts[rtts.size() / 2];
  out.rtt_us_p99 = rtts[rtts.size() * 99 / 100];
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_WIRE.json";
  std::printf("== wire benchmarks (real UDP loopback) ==\n");

  Harness h;

  // Warmup: every arena, pool and kernel buffer reaches high water while
  // allocation is still allowed, covering both the blast and echo shapes.
  h.blast(5'000);
  h.echo = true;
  h.a.send(data_segment(999'999));
  h.a.flush_sends();
  while (h.a_last_seq != 999'999) h.loop.poll_once(Duration::millis(1));
  h.echo = false;

  const BlastResult blast = bench_blast(h);
  std::printf("  blast:        %8.2f k pkts/s, delivered %.3f (%llu/%llu)\n",
              blast.pps / 1e3, blast.delivered_ratio,
              static_cast<unsigned long long>(blast.received),
              static_cast<unsigned long long>(kBlastCount));

  const EchoResult echo = bench_echo(h);
  std::printf("  echo rtt:     p50 %.1f us, p99 %.1f us (%llu replies)\n",
              echo.rtt_us_p50, echo.rtt_us_p99,
              static_cast<unsigned long long>(echo.replies));

  // Steady-state allocations across a full blast window: the fast path —
  // encode into per-slot arenas, sendmmsg, epoll dispatch, recvmmsg,
  // in-place decode — must not touch the heap.
  const std::uint64_t alloc0 = iq::bench::alloc_count();
  h.blast(20'000);
  const std::uint64_t steady_allocs = iq::bench::alloc_count() - alloc0;
  std::printf("  steady allocs: %llu per 20k-segment blast window\n",
              static_cast<unsigned long long>(steady_allocs));

  const auto& sa = h.a.stats();
  const auto& sb = h.b.stats();
  std::printf("  batches:      send max %llu, recv max %llu, drops %llu\n",
              static_cast<unsigned long long>(sa.max_send_batch),
              static_cast<unsigned long long>(sb.max_recv_batch),
              static_cast<unsigned long long>(sa.sends_dropped));

  iq::harness::JsonWriter w;
  w.begin_object()
      .field("wire_blast_count", kBlastCount)
      .field("wire_blast_received", blast.received)
      .field("wire_blast_delivered_ratio", blast.delivered_ratio)
      .field("wire_blast_pps", blast.pps)
      .field("wire_echo_rtt_us_p50", echo.rtt_us_p50)
      .field("wire_echo_rtt_us_p99", echo.rtt_us_p99)
      .field("wire_ping_count", kPingCount)
      .field("wire_ping_replies", echo.replies)
      .field("wire_max_send_batch", sa.max_send_batch)
      .field("wire_max_recv_batch", sb.max_recv_batch)
      .field("wire_steady_allocs", steady_allocs)
      .field("wire_decode_failures", sb.decode_failures)
      .field("wire_sends_dropped", sa.sends_dropped)
      .field("hardware_concurrency",
             static_cast<std::uint64_t>(std::thread::hardware_concurrency()))
      .end_object();
  std::ofstream f(out_path);
  f << w.take() << "\n";
  std::printf("wrote %s\n", out_path.c_str());

  // Invariant failures (not throughput — that is machine-dependent).
  bool ok = true;
  if (steady_allocs != 0) {
    std::fprintf(stderr, "FAIL: socket path allocated at steady state\n");
    ok = false;
  }
  if (sb.decode_failures != 0 || sb.checksum_rejects != 0) {
    std::fprintf(stderr, "FAIL: decode/checksum failures on loopback\n");
    ok = false;
  }
  if (echo.replies != kPingCount) {
    std::fprintf(stderr, "FAIL: echo replies != pings\n");
    ok = false;
  }
  if (sa.max_send_batch != kBatch) {
    std::fprintf(stderr, "FAIL: full send batches never formed\n");
    ok = false;
  }
  if (blast.delivered_ratio < 0.75) {
    std::fprintf(stderr, "FAIL: blast delivered ratio below 0.75\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
