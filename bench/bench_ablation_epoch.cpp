// Ablation: loss-measuring epoch length.
//
// The "measuring period" (§3.3) sets the granularity of the error ratio
// both layers adapt on: short epochs are noisy and trigger overly frequent
// application adaptations (the paper's stated reason for coarse
// thresholds); long epochs blur congestion onsets and delay reactions.
// This bench sweeps the epoch size on the Table 4 conflict scenario.

#include <cstdio>

#include "bench_util.hpp"
#include "iq/stats/table.hpp"

int main() {
  using namespace iq;
  using namespace iq::harness;
  std::printf("== Ablation: loss-epoch length (packets per measuring period) ==\n");

  stats::Table table({"epoch(pkts)", "duration(s)", "recvd(%)",
                      "tag delay(ms)", "tag jitter(ms)", "epochs",
                      "max eratio"});
  const std::uint32_t epochs[] = {25u, 50u, 100u, 200u, 400u};
  std::vector<ExperimentConfig> cfgs;
  for (std::uint32_t epoch : epochs) {
    auto cfg = scenarios::table4(SchemeSpec::iq_rudp());
    cfg.scheme.label += " epoch=" + std::to_string(epoch);
    cfg.loss_epoch_packets = epoch;
    cfg.total_frames = 3000;
    cfgs.push_back(cfg);
  }
  const auto results = bench::run_all(cfgs);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const std::uint32_t epoch = epochs[i];
    const auto& r = results[i];
    table.add_row({std::to_string(epoch),
                   stats::Table::num(r.summary.duration_s),
                   stats::Table::num(r.summary.delivered_pct),
                   stats::Table::num(r.summary.tagged_delay_ms),
                   stats::Table::num(r.summary.tagged_jitter_ms),
                   std::to_string(r.epochs),
                   stats::Table::num(r.max_epoch_loss, 3)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nexpectation: shorter epochs see higher peak error ratios "
              "(noise) and adapt more often; very long epochs react late.\n");
  return 0;
}
