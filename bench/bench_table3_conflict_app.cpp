// Table 3 reproduction: coordination against conflicting interests,
// changing application. Marking adaptation (tag every 5th, unmark the rest
// tracking the error ratio), 10 Mb CBR cross traffic, 40 % receiver loss
// tolerance. Claim: IQ-RUDP (send-side discard of unmarked data) finishes
// sooner with better tagged delay/jitter; delivers fewer messages but stays
// within tolerance.

#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace iq;
  using namespace iq::harness;
  std::printf("== Table 3: conflicting interests — changing application ==\n");

  const auto results = bench::run_all({
      scenarios::table3(SchemeSpec::iq_rudp()),
      scenarios::table3(SchemeSpec::rudp()),
  });
  const auto& iq = results[0];
  const auto& ru = results[1];

  Comparison cmp("Table 3: conflict, changing application",
                 {"Duration(s)", "Recvd(%)", "TagDelay(ms)", "TagJitter(ms)",
                  "Delay(ms)", "Jitter(ms)"});
  cmp.add_paper_row("IQ-RUDP", {60.0, 72, 58.4, 6.6, 56.4, 6.6});
  cmp.add_measured_row("IQ-RUDP", bench::conflict_row(iq));
  cmp.add_paper_row("RUDP", {80.9, 91, 66.8, 9.1, 62.2, 7.9});
  cmp.add_measured_row("RUDP", bench::conflict_row(ru));
  cmp.add_note(
      "shape targets: IQ duration < RUDP; IQ delivers less but >= 60%; IQ "
      "tagged delay/jitter better");
  std::printf("%s", cmp.render().c_str());

  std::printf("IQ discarded %llu unmarked messages at send; RUDP %llu\n",
              static_cast<unsigned long long>(
                  iq.rudp.messages_discarded_at_send),
              static_cast<unsigned long long>(
                  ru.rudp.messages_discarded_at_send));
  return (iq.completed && ru.completed) ? 0 : 1;
}
