// Table 4 reproduction: coordination against conflicting interests,
// changing network. ASAP fixed-size frames against VBR (trace-driven UDP)
// plus 10 Mb CBR cross traffic. Same claim shape as Table 3, with larger
// margins under the fluctuating load.

#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace iq;
  using namespace iq::harness;
  std::printf("== Table 4: conflicting interests — changing network ==\n");

  const auto results = bench::run_all({
      scenarios::table4(SchemeSpec::iq_rudp()),
      scenarios::table4(SchemeSpec::rudp()),
  });
  const auto& iq = results[0];
  const auto& ru = results[1];

  Comparison cmp("Table 4: conflict, changing network",
                 {"Duration(s)", "Recvd(%)", "TagDelay(ms)", "TagJitter(ms)",
                  "Delay(ms)", "Jitter(ms)"});
  cmp.add_paper_row("IQ-RUDP", {23.9, 63, 30.2, 3.1, 29.6, 3.1});
  cmp.add_measured_row("IQ-RUDP", bench::conflict_row(iq));
  cmp.add_paper_row("RUDP", {32.5, 87.4, 38.1, 4.3, 29.4, 3.8});
  cmp.add_measured_row("RUDP", bench::conflict_row(ru));
  cmp.add_note(
      "shape targets: IQ duration < RUDP; IQ delivered% < RUDP but within "
      "tolerance; tagged delay/jitter improved");
  std::printf("%s", cmp.render().c_str());
  return (iq.completed && ru.completed) ? 0 : 1;
}
