// Figures 2 & 3 reproduction: per-packet delay-jitter series experienced by
// the receiving application under the Table 3 scenario, for coordinated
// IQ-RUDP (Fig. 2) and uncoordinated RUDP (Fig. 3). The claim: IQ-RUDP's
// jitter is lower and more stable once cross traffic bites.

#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace iq;
  using namespace iq::harness;
  std::printf("== Figures 2/3: delay jitter series ==\n");

  const auto iq = bench::run_and_report(scenarios::fig23(SchemeSpec::iq_rudp()));
  const auto ru = bench::run_and_report(scenarios::fig23(SchemeSpec::rudp()));

  std::printf("\n--- Figure 2 (IQ-RUDP) ---\n%s",
              iq.jitter_series.ascii_plot(96, 10).c_str());
  std::printf("\n--- Figure 3 (RUDP) ---\n%s",
              ru.jitter_series.ascii_plot(96, 10).c_str());

  // Quantitative shape check: mean jitter over the congested tail.
  auto tail_mean = [](const stats::TimeSeries& s) {
    if (s.empty()) return 0.0;
    const double n = s.xs().back();
    return s.mean_in(n * 0.3, n + 1);
  };
  const double iq_tail = tail_mean(iq.jitter_series);
  const double ru_tail = tail_mean(ru.jitter_series);
  std::printf("\nmean |jitter| after congestion onset: IQ-RUDP %.2f ms vs "
              "RUDP %.2f ms (paper: IQ lower and stabler)\n",
              iq_tail, ru_tail);
  std::printf("shape check: %s\n", iq_tail <= ru_tail ? "PASS" : "DIVERGES");
  return (iq.completed && ru.completed) ? 0 : 1;
}
