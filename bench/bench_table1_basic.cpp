// Table 1 reproduction: basic performance comparison under 18 Mb UDP cross
// traffic — TCP, IQ-RUDP (transport adaptation only), application
// adaptation only (congestion window instrumented off), and IQ-RUDP with
// application adaptation.

#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace iq;
  using namespace iq::harness;
  std::printf("== Table 1: basic performance comparison ==\n");

  const auto results = bench::run_all({
      scenarios::table1(SchemeSpec::tcp(), false),
      scenarios::table1(SchemeSpec::rudp(), false),
      scenarios::table1(SchemeSpec::app_only(), true),
      scenarios::table1(SchemeSpec::iq_rudp(), true),
  });
  const auto& tcp = results[0];
  const auto& iq_only = results[1];
  const auto& app_only = results[2];
  const auto& iq_app = results[3];

  Comparison cmp("Table 1: basic performance comparison",
                 {"Time(s)", "Thr(KB/s)", "Inter-arrival(s)", "Jitter(s)"});
  cmp.add_paper_row("TCP (1)", {313, 94.2, 0.239, 0.110});
  cmp.add_measured_row("TCP (1)", bench::row4_pkt(tcp));
  cmp.add_paper_row("IQ-RUDP (2)", {298, 98.2, 0.201, 0.098});
  cmp.add_measured_row("IQ-RUDP (2)", bench::row4_pkt(iq_only));
  cmp.add_paper_row("App adaptation only (3)", {158, 90, 0.114, 0.008});
  cmp.add_measured_row("App adaptation only (3)", bench::row4_pkt(app_only));
  cmp.add_paper_row("IQ-RUDP w/ app adapt (4)", {144, 95.6, 0.113, 0.058});
  cmp.add_measured_row("IQ-RUDP w/ app adapt (4)", bench::row4_pkt(iq_app));
  cmp.add_note(
      "shape targets: (2) matches TCP throughput with better jitter; app "
      "adaptation (3,4) finishes much faster; (4) beats (3) on throughput");
  std::printf("%s", cmp.render().c_str());

  const bool shape_ok =
      app_only.summary.duration_s < tcp.summary.duration_s &&
      iq_app.summary.duration_s < iq_only.summary.duration_s &&
      iq_app.summary.throughput_kBps >= app_only.summary.throughput_kBps * 0.95;
  std::printf("shape check: %s\n", shape_ok ? "PASS" : "DIVERGES");
  return (tcp.completed && iq_only.completed && app_only.completed &&
          iq_app.completed)
             ? 0
             : 1;
}
