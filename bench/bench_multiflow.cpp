// Extension experiment (beyond the paper): intra-protocol fairness.
//
// N greedy IQ-RUDP flows share the 20 Mb/s bottleneck. The paper argues its
// LDA-style control is TCP-friendly across protocols (Table 2); this bench
// measures how fairly RUDP flows share with *each other* — Jain's fairness
// index over per-flow goodput — for N = 2, 4, 8.

#include <cstdio>
#include <memory>
#include <vector>

#include "iq/net/dumbbell.hpp"
#include "iq/rudp/connection.hpp"
#include "iq/stats/table.hpp"
#include "iq/wire/sim_wire.hpp"

namespace {

using namespace iq;

struct Flow {
  std::unique_ptr<wire::SimWire> wire_snd;
  std::unique_ptr<wire::SimWire> wire_rcv;
  std::unique_ptr<rudp::RudpConnection> snd;
  std::unique_ptr<rudp::RudpConnection> rcv;
  std::unique_ptr<sim::PeriodicTask> refill;
  std::int64_t delivered_bytes = 0;
};

double jain(const std::vector<double>& xs) {
  double sum = 0, sum_sq = 0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0) return 0;
  return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

void run(std::size_t n_flows, stats::Table& table) {
  sim::Simulator sim;
  net::Network network(sim);
  net::Dumbbell db(network, {.pairs = n_flows});

  std::vector<std::unique_ptr<Flow>> flows;
  for (std::size_t i = 0; i < n_flows; ++i) {
    auto f = std::make_unique<Flow>();
    const net::Endpoint a{db.left(i).id(), 1000};
    const net::Endpoint b{db.right(i).id(), 1000};
    f->wire_snd = std::make_unique<wire::SimWire>(network, a, b,
                                                  static_cast<std::uint32_t>(i));
    f->wire_rcv = std::make_unique<wire::SimWire>(network, b, a,
                                                  static_cast<std::uint32_t>(i));
    rudp::RudpConfig cfg;
    cfg.conn_id = static_cast<std::uint32_t>(i + 1);
    f->snd = std::make_unique<rudp::RudpConnection>(*f->wire_snd, cfg,
                                                    rudp::Role::Client);
    f->rcv = std::make_unique<rudp::RudpConnection>(*f->wire_rcv, cfg,
                                                    rudp::Role::Server);
    Flow* fp = f.get();
    f->rcv->set_message_handler([fp](const rudp::DeliveredMessage& m) {
      fp->delivered_bytes += m.bytes;
    });
    // Greedy source: keep a modest backlog queued.
    f->refill = std::make_unique<sim::PeriodicTask>(
        sim, Duration::millis(2), [fp] {
          if (!fp->snd->established()) return;
          while (fp->snd->queued_segments() < 64) {
            fp->snd->send_message({.bytes = 1400});
          }
        });
    f->rcv->listen();
    f->snd->connect();
    f->refill->start(/*fire_now=*/true);
    flows.push_back(std::move(f));
  }

  const double seconds = 30.0;
  sim.run_until(TimePoint::zero() + Duration::from_seconds(seconds));

  std::vector<double> rates;
  double total = 0;
  for (const auto& f : flows) {
    const double kBps = static_cast<double>(f->delivered_bytes) / 1000.0 /
                        seconds;
    rates.push_back(kBps);
    total += kBps;
  }
  const double mn = *std::min_element(rates.begin(), rates.end());
  const double mx = *std::max_element(rates.begin(), rates.end());
  table.add_row({std::to_string(n_flows), stats::Table::num(total),
                 stats::Table::num(mn), stats::Table::num(mx),
                 stats::Table::num(jain(rates), 4)});
}

}  // namespace

int main() {
  std::printf("== Extension: RUDP-vs-RUDP fairness on the 20 Mb/s bottleneck ==\n");
  iq::stats::Table table(
      {"flows", "total(KB/s)", "min(KB/s)", "max(KB/s)", "Jain index"});
  for (std::size_t n : {2u, 4u, 8u}) run(n, table);
  std::printf("%s", table.render().c_str());
  std::printf("\nexpectation: Jain index near 1.0 (equal shares) and total "
              "goodput near the 20 Mb/s bottleneck across flow counts.\n");
  return 0;
}
