// Extension experiment (beyond the paper): intra-protocol fairness.
//
// Part 1 — N greedy IQ-RUDP flows on separate hosts share the 20 Mb/s
// bottleneck. The paper argues its LDA-style control is TCP-friendly across
// protocols (Table 2); this bench measures how fairly RUDP flows share with
// *each other* — Jain's fairness index over per-flow goodput — for
// N = 2, 4, 8.
//
// Part 2 — the Congestion-Manager ablation (docs/CM.md): N flows between
// ONE host pair, with and without a shared CongestionManager. Without a CM
// each flow probes the path independently; with one, the flows split a
// single macro-flow window by priority weight. Reported per run: per-flow
// goodput, weight-normalized Jain index, and convergence time (first
// 1-second interval after which the per-interval index stays >= 0.95).
// With an output path argument, the results are written as JSON —
// committed as BENCH_CM.json and regression-gated by scripts/perf_compare.py
// (CM-on 4-equal-flow Jain >= 0.95; 2:1 priority split within 10%).
//
// The testbed is deterministic (integer-ns simulator, fixed seeds), so the
// JSON is bit-reproducible on any machine.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "iq/cm/manager.hpp"
#include "iq/harness/json.hpp"
#include "iq/net/dumbbell.hpp"
#include "iq/rudp/connection.hpp"
#include "iq/stats/jain.hpp"
#include "iq/stats/table.hpp"
#include "iq/wire/sim_wire.hpp"

namespace {

using namespace iq;

struct Flow {
  std::unique_ptr<wire::SimWire> wire_snd;
  std::unique_ptr<wire::SimWire> wire_rcv;
  std::unique_ptr<rudp::RudpConnection> snd;
  std::unique_ptr<rudp::RudpConnection> rcv;
  std::unique_ptr<sim::PeriodicTask> refill;
  cm::FlowHandle* handle = nullptr;
  std::int64_t delivered_bytes = 0;
  std::vector<std::int64_t> interval_bytes;  // per 1 s sampling interval
};

// ------------------------------------------------- part 1: per-host flows --

void run(std::size_t n_flows, stats::Table& table) {
  sim::Simulator sim;
  net::Network network(sim);
  net::Dumbbell db(network, {.pairs = n_flows});

  std::vector<std::unique_ptr<Flow>> flows;
  for (std::size_t i = 0; i < n_flows; ++i) {
    auto f = std::make_unique<Flow>();
    const net::Endpoint a{db.left(i).id(), 1000};
    const net::Endpoint b{db.right(i).id(), 1000};
    f->wire_snd = std::make_unique<wire::SimWire>(network, a, b,
                                                  static_cast<std::uint32_t>(i));
    f->wire_rcv = std::make_unique<wire::SimWire>(network, b, a,
                                                  static_cast<std::uint32_t>(i));
    rudp::RudpConfig cfg;
    cfg.conn_id = static_cast<std::uint32_t>(i + 1);
    f->snd = std::make_unique<rudp::RudpConnection>(*f->wire_snd, cfg,
                                                    rudp::Role::Client);
    f->rcv = std::make_unique<rudp::RudpConnection>(*f->wire_rcv, cfg,
                                                    rudp::Role::Server);
    Flow* fp = f.get();
    f->rcv->set_message_handler([fp](const rudp::DeliveredMessage& m) {
      fp->delivered_bytes += m.bytes;
    });
    // Greedy source: keep a modest backlog queued.
    f->refill = std::make_unique<sim::PeriodicTask>(
        sim, Duration::millis(2), [fp] {
          if (!fp->snd->established()) return;
          while (fp->snd->queued_segments() < 64) {
            fp->snd->send_message({.bytes = 1400});
          }
        });
    f->rcv->listen();
    f->snd->connect();
    f->refill->start(/*fire_now=*/true);
    flows.push_back(std::move(f));
  }

  const double seconds = 30.0;
  sim.run_until(TimePoint::zero() + Duration::from_seconds(seconds));

  std::vector<double> rates;
  double total = 0;
  for (const auto& f : flows) {
    const double kBps = static_cast<double>(f->delivered_bytes) / 1000.0 /
                        seconds;
    rates.push_back(kBps);
    total += kBps;
  }
  const double mn = *std::min_element(rates.begin(), rates.end());
  const double mx = *std::max_element(rates.begin(), rates.end());
  table.add_row({std::to_string(n_flows), stats::Table::num(total),
                 stats::Table::num(mn), stats::Table::num(mx),
                 stats::Table::num(stats::jain_index(rates), 4)});
}

// --------------------------------------- part 2: shared-destination flows --

struct SharedResult {
  std::vector<double> rates_kBps;   // per flow, whole-run goodput
  double total_kBps = 0.0;
  double jain = 0.0;                // weight-normalized, whole run
  double convergence_s = 0.0;       // see compute below; run length if never
  std::uint64_t apportion_changes = 0;  // 0 when CM off
};

/// N flows between ONE host pair (one dumbbell leaf each side, distinct
/// ports), optionally sharing a CongestionManager. Connects are staggered
/// 250 ms apart so the join/re-apportion path runs mid-traffic.
SharedResult run_shared(const std::vector<double>& weights, bool use_cm) {
  const std::size_t n_flows = weights.size();
  const double seconds = 30.0;

  sim::Simulator sim;
  net::Network network(sim);
  net::Dumbbell db(network, {.pairs = 1});

  std::optional<cm::CongestionManager> mgr;
  if (use_cm) {
    cm::CmConfig mcfg;
    mcfg.aggregate.initial_cwnd = 8.0;  // the whole macro-flow's start
    mgr.emplace(mcfg);
  }

  std::vector<std::unique_ptr<Flow>> flows;
  for (std::size_t i = 0; i < n_flows; ++i) {
    auto f = std::make_unique<Flow>();
    const std::uint16_t port = static_cast<std::uint16_t>(1000 + i);
    const net::Endpoint a{db.left(0).id(), port};
    const net::Endpoint b{db.right(0).id(), port};
    f->wire_snd = std::make_unique<wire::SimWire>(network, a, b,
                                                  static_cast<std::uint32_t>(i));
    f->wire_rcv = std::make_unique<wire::SimWire>(network, b, a,
                                                  static_cast<std::uint32_t>(i));
    rudp::RudpConfig cfg;
    cfg.conn_id = static_cast<std::uint32_t>(i + 1);
    f->snd = std::make_unique<rudp::RudpConnection>(*f->wire_snd, cfg,
                                                    rudp::Role::Client);
    f->rcv = std::make_unique<rudp::RudpConnection>(*f->wire_rcv, cfg,
                                                    rudp::Role::Server);
    Flow* fp = f.get();
    f->rcv->set_message_handler([fp](const rudp::DeliveredMessage& m) {
      fp->delivered_bytes += m.bytes;
    });
    f->refill = std::make_unique<sim::PeriodicTask>(
        sim, Duration::millis(2), [fp] {
          if (!fp->snd->established()) return;
          while (fp->snd->queued_segments() < 64) {
            fp->snd->send_message({.bytes = 1400});
          }
        });
    if (use_cm) {
      f->handle = mgr->register_flow(weights[i]);
      rudp::RudpConnection* snd = f->snd.get();
      f->handle->set_share_listener([snd] { snd->window_updated(); });
      snd->set_external_congestion(f->handle);
    }
    f->rcv->listen();
    // Staggered joins: flow i starts 250 ms after flow i-1.
    rudp::RudpConnection* snd = f->snd.get();
    sim::PeriodicTask* refill = f->refill.get();
    sim.after(Duration::millis(static_cast<std::int64_t>(250 * i) + 1),
              [snd, refill] {
                snd->connect();
                refill->start(/*fire_now=*/true);
              });
    flows.push_back(std::move(f));
  }

  // 1 s goodput sampling for the convergence metric.
  std::vector<std::int64_t> last_total(n_flows, 0);
  sim::PeriodicTask sampler(sim, Duration::seconds(1), [&] {
    for (std::size_t i = 0; i < n_flows; ++i) {
      flows[i]->interval_bytes.push_back(flows[i]->delivered_bytes -
                                         last_total[i]);
      last_total[i] = flows[i]->delivered_bytes;
    }
  });
  sampler.start();
  sim.run_until(TimePoint::zero() + Duration::from_seconds(seconds));

  SharedResult r;
  std::vector<double> normalized;
  for (std::size_t i = 0; i < n_flows; ++i) {
    const double kBps =
        static_cast<double>(flows[i]->delivered_bytes) / 1000.0 / seconds;
    r.rates_kBps.push_back(kBps);
    r.total_kBps += kBps;
    normalized.push_back(weights[i] > 0.0 ? kBps / weights[i] : kBps);
  }
  r.jain = stats::jain_index(normalized);

  // Convergence: the earliest interval boundary after which every
  // subsequent 1 s interval's weight-normalized index stays >= 0.95. Skip
  // the staggered-join prefix — fairness is only defined once every flow
  // is up. Never converging reports the run length.
  const std::size_t first_full =
      static_cast<std::size_t>((250.0 * static_cast<double>(n_flows - 1)) /
                               1000.0) + 1;
  const std::size_t intervals = flows[0]->interval_bytes.size();
  std::size_t converged_at = intervals;
  for (std::size_t k = intervals; k-- > first_full;) {
    std::vector<double> xs;
    for (std::size_t i = 0; i < n_flows; ++i) {
      const double bytes =
          static_cast<double>(flows[i]->interval_bytes[k]);
      xs.push_back(weights[i] > 0.0 ? bytes / weights[i] : bytes);
    }
    if (stats::jain_index(xs) >= 0.95) {
      converged_at = k;
    } else {
      break;
    }
  }
  r.convergence_s = static_cast<double>(converged_at);

  if (use_cm) {
    r.apportion_changes = mgr->stats().apportion_changes;
    for (auto& f : flows) {
      f->snd->set_external_congestion(nullptr);
      mgr->unregister_flow(f->handle);
    }
  }
  return r;
}

std::string label(bool use_cm, std::size_t n) {
  return (use_cm ? std::string("CM-on ") : std::string("CM-off ")) +
         std::to_string(n) + " flows";
}

void add_shared_row(stats::Table& table, const std::string& name,
                    const SharedResult& r) {
  const double mn = *std::min_element(r.rates_kBps.begin(),
                                      r.rates_kBps.end());
  const double mx = *std::max_element(r.rates_kBps.begin(),
                                      r.rates_kBps.end());
  table.add_row({name, stats::Table::num(r.total_kBps),
                 stats::Table::num(mn), stats::Table::num(mx),
                 stats::Table::num(r.jain, 4),
                 stats::Table::num(r.convergence_s, 0)});
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Extension: RUDP-vs-RUDP fairness on the 20 Mb/s bottleneck ==\n");
  iq::stats::Table table(
      {"flows", "total(KB/s)", "min(KB/s)", "max(KB/s)", "Jain index"});
  for (std::size_t n : {2u, 4u, 8u}) run(n, table);
  std::printf("%s", table.render().c_str());
  std::printf("\nexpectation: Jain index near 1.0 (equal shares) and total "
              "goodput near the 20 Mb/s bottleneck across flow counts.\n");

  std::printf("\n== Congestion-Manager ablation: one host pair, shared path "
              "(docs/CM.md) ==\n");
  const std::vector<double> equal4{1.0, 1.0, 1.0, 1.0};
  const std::vector<double> prio2{2.0, 1.0};
  const SharedResult off4 = run_shared(equal4, /*use_cm=*/false);
  const SharedResult on4 = run_shared(equal4, /*use_cm=*/true);
  const SharedResult prio = run_shared(prio2, /*use_cm=*/true);

  iq::stats::Table cm_table({"run", "total(KB/s)", "min(KB/s)", "max(KB/s)",
                             "Jain (norm)", "conv(s)"});
  add_shared_row(cm_table, label(false, 4), off4);
  add_shared_row(cm_table, label(true, 4), on4);
  add_shared_row(cm_table, label(true, 2) + " 2:1", prio);
  std::printf("%s", cm_table.render().c_str());

  const double prio_ratio =
      prio.rates_kBps[0] / std::max(prio.rates_kBps[1], 1e-9);
  std::printf("\nCM-on priority split 2:1 -> measured goodput ratio %.2f "
              "(apportion changes: %llu)\n",
              prio_ratio,
              static_cast<unsigned long long>(prio.apportion_changes));
  std::printf("expectation: CM-on Jain >= 0.95 with faster convergence than "
              "CM-off, and the 2:1 split lands within 10%%.\n");

  if (argc > 1) {
    iq::harness::JsonWriter w;
    w.begin_object()
        .field("schema", std::string("bench_multiflow_cm_v1"))
        .field("cm_off_jain4", off4.jain)
        .field("cm_on_jain4", on4.jain)
        .field("cm_off_total_kBps4", off4.total_kBps)
        .field("cm_on_total_kBps4", on4.total_kBps)
        .field("cm_off_convergence_s4", off4.convergence_s)
        .field("cm_on_convergence_s4", on4.convergence_s)
        .field("cm_on_apportion_changes4", on4.apportion_changes)
        .field("cm_prio_ratio", prio_ratio)
        .field("cm_prio_jain_norm", prio.jain);
    for (std::size_t i = 0; i < off4.rates_kBps.size(); ++i) {
      w.field("cm_off_flow" + std::to_string(i) + "_kBps",
              off4.rates_kBps[i]);
      w.field("cm_on_flow" + std::to_string(i) + "_kBps", on4.rates_kBps[i]);
    }
    for (std::size_t i = 0; i < prio.rates_kBps.size(); ++i) {
      w.field("cm_prio_flow" + std::to_string(i) + "_kBps",
              prio.rates_kBps[i]);
    }
    w.end_object();
    std::ofstream f(argv[1]);
    f << w.take() << "\n";
    std::printf("wrote %s\n", argv[1]);
  }
  return 0;
}
