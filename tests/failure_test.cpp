// Connection failure semantics: bounded handshake retries with exponential
// backoff, RTO-streak dead-path detection, keepalive-based dead-peer
// detection, blackout recovery (loss-epoch reset), and drop-oldest
// backpressure on the send queue.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "iq/rudp/connection.hpp"
#include "iq/sim/simulator.hpp"
#include "iq/wire/lossy_wire.hpp"
#include "iq/wire/wire.hpp"

namespace iq::rudp {
namespace {

struct LossyPair {
  sim::Simulator sim;
  wire::LossyWirePair wire;
  RudpConnection sender;
  RudpConnection receiver;
  std::vector<DeliveredMessage> delivered;
  std::vector<FailureReason> errors;

  explicit LossyPair(const wire::LossyConfig& lcfg, RudpConfig scfg = {},
                     RudpConfig rcfg = {})
      : wire(sim, lcfg),
        sender(wire.a(), scfg, Role::Client),
        receiver(wire.b(), rcfg, Role::Server) {
    receiver.set_message_handler(
        [this](const DeliveredMessage& m) { delivered.push_back(m); });
    sender.set_error_handler(
        [this](FailureReason r) { errors.push_back(r); });
    receiver.listen();
    sender.connect();
  }

  void run_ms(std::int64_t ms) {
    sim.run_until(sim.now() + Duration::millis(ms));
  }
};

// ------------------------------------------------------------ handshake ---

TEST(FailureTest, HandshakeExhaustionEntersFailed) {
  wire::LossyConfig lcfg;
  lcfg.drop_probability = 1.0;  // no SYN ever arrives
  RudpConfig cfg;
  cfg.connect_retry = Duration::millis(100);
  cfg.max_connect_attempts = 3;
  LossyPair p(lcfg, cfg);
  p.run_ms(5000);

  EXPECT_TRUE(p.sender.failed());
  EXPECT_EQ(p.sender.state(), ConnState::Failed);
  EXPECT_EQ(p.sender.failure_reason(), FailureReason::HandshakeTimeout);
  EXPECT_EQ(p.sender.stats().connect_retries, 2u);  // SYNs after the first
  EXPECT_EQ(p.sender.stats().failures, 1u);
  ASSERT_EQ(p.errors.size(), 1u);
  EXPECT_EQ(p.errors[0], FailureReason::HandshakeTimeout);
}

TEST(FailureTest, HandshakeRetriesBackOffExponentiallyWithCap) {
  wire::LossyConfig lcfg;
  lcfg.drop_probability = 1.0;
  RudpConfig cfg;
  cfg.connect_retry = Duration::millis(100);
  cfg.connect_retry_cap = Duration::millis(400);
  cfg.max_connect_attempts = 6;
  LossyPair p(lcfg, cfg);
  std::vector<TimePoint> syn_times;
  p.sender.set_segment_tap(
      [&](RudpConnection::TapDirection dir, const Segment& s) {
        if (dir == RudpConnection::TapDirection::Out &&
            s.type == SegmentType::Syn) {
          syn_times.push_back(p.sim.now());
        }
      });
  p.run_ms(10'000);

  // First SYN went out before the tap was installed (connect() in the
  // fixture ctor); gaps between the remaining ones are 200, 400, 400, 400 ms
  // — doubling from the second retry, clamped at the cap.
  ASSERT_EQ(syn_times.size(), 5u);
  const std::int64_t expected_gaps_ms[] = {200, 400, 400, 400};
  for (std::size_t i = 1; i < syn_times.size(); ++i) {
    EXPECT_EQ((syn_times[i] - syn_times[i - 1]).ms(), expected_gaps_ms[i - 1])
        << "gap " << i;
  }
  EXPECT_TRUE(p.sender.failed());
}

TEST(FailureTest, HandshakeSucceedsBeforeExhaustionStaysClean) {
  wire::LossyConfig lcfg;  // lossless
  RudpConfig cfg;
  cfg.max_connect_attempts = 3;
  LossyPair p(lcfg, cfg);
  p.run_ms(1000);
  EXPECT_TRUE(p.sender.established());
  EXPECT_FALSE(p.sender.failed());
  EXPECT_EQ(p.sender.failure_reason(), FailureReason::None);
  EXPECT_TRUE(p.errors.empty());
}

// ------------------------------------------------------------ RTO streak --

TEST(FailureTest, RtoStreakOnDeadPathEntersFailed) {
  wire::LossyConfig lcfg;
  RudpConfig cfg;
  cfg.max_rto_streak = 4;
  LossyPair p(lcfg, cfg);
  p.run_ms(200);
  ASSERT_TRUE(p.sender.established());

  p.wire.set_blackout(true);  // path dies, permanently
  p.sender.send_message({.bytes = 500});
  p.run_ms(120'000);

  EXPECT_TRUE(p.sender.failed());
  EXPECT_EQ(p.sender.failure_reason(), FailureReason::RtoStreak);
  EXPECT_GE(p.sender.stats().rto_backoffs, 4u);
  ASSERT_EQ(p.errors.size(), 1u);
  EXPECT_EQ(p.errors[0], FailureReason::RtoStreak);
}

TEST(FailureTest, RtoStreakDisabledNeverFails) {
  wire::LossyConfig lcfg;
  RudpConfig cfg;
  cfg.max_rto_streak = 0;  // disabled
  LossyPair p(lcfg, cfg);
  p.run_ms(200);
  ASSERT_TRUE(p.sender.established());
  p.wire.set_blackout(true);
  p.sender.send_message({.bytes = 500});
  p.run_ms(300'000);
  EXPECT_FALSE(p.sender.failed());
  EXPECT_GT(p.sender.stats().rto_backoffs, 0u);
}

// -------------------------------------------------------------- keepalive --

TEST(FailureTest, KeepaliveMissesDetectDeadPeer) {
  wire::LossyConfig lcfg;
  RudpConfig cfg;
  cfg.keepalive = Duration::millis(200);
  cfg.max_keepalive_misses = 3;
  LossyPair p(lcfg, cfg, cfg);
  p.run_ms(300);
  ASSERT_TRUE(p.sender.established());

  p.wire.set_blackout(true);  // idle connection, peer unreachable
  p.run_ms(10'000);

  EXPECT_TRUE(p.sender.failed());
  EXPECT_EQ(p.sender.failure_reason(), FailureReason::KeepaliveTimeout);
  EXPECT_GE(p.sender.stats().keepalive_misses, 3u);
}

TEST(FailureTest, AnsweredKeepalivesNeverAccumulateMisses) {
  wire::LossyConfig lcfg;
  RudpConfig cfg;
  cfg.keepalive = Duration::millis(200);
  cfg.max_keepalive_misses = 2;
  LossyPair p(lcfg, cfg, cfg);
  p.run_ms(20'000);  // long idle stretch over a healthy path
  EXPECT_TRUE(p.sender.established());
  EXPECT_FALSE(p.sender.failed());
  EXPECT_EQ(p.sender.stats().keepalive_misses, 0u);
  EXPECT_GT(p.sender.stats().nuls_sent, 10u);  // probes did flow
}

TEST(FailureTest, HighRttKeepaliveDoesNotFalseTrip) {
  // Satellite regression: a 500 ms RTT path with a 200 ms keepalive clock.
  // Before the keepalive interval was bounded below by the RTO, two probe
  // intervals (400 ms) elapsed before any probe's reply could return one
  // full RTT later — an always-on keepalive false-tripped every healthy
  // long-RTT connection. The effective interval max(keepalive, rto) keeps
  // the probe clock at or above the path's reply time.
  wire::LossyConfig lcfg;
  lcfg.one_way_delay = Duration::millis(250);  // 500 ms RTT
  RudpConfig cfg;
  cfg.keepalive = Duration::millis(200);  // sub-RTT probe clock
  cfg.max_keepalive_misses = 2;
  LossyPair p(lcfg, cfg, cfg);
  p.run_ms(2000);
  ASSERT_TRUE(p.sender.established());

  p.run_ms(30'000);  // long idle stretch at 500 ms RTT
  EXPECT_TRUE(p.sender.established());
  EXPECT_FALSE(p.sender.failed());
  EXPECT_GT(p.sender.stats().nuls_sent, 5u);  // probes did flow

  // Dead-peer detection still works with the bounded interval.
  p.wire.set_blackout(true);
  p.run_ms(60'000);
  EXPECT_TRUE(p.sender.failed());
  EXPECT_EQ(p.sender.failure_reason(), FailureReason::KeepaliveTimeout);
}

TEST(FailureTest, HighRttDataFlowNeverTripsRtoStreak) {
  // 500 ms RTT with default failure knobs: a streaming sender must not
  // accumulate a terminal RTO streak on a healthy (if slow) path — every
  // delivery resets the streak.
  wire::LossyConfig lcfg;
  lcfg.one_way_delay = Duration::millis(250);
  RudpConfig cfg;  // default max_rto_streak = 8
  LossyPair p(lcfg, cfg);
  p.run_ms(3000);
  ASSERT_TRUE(p.sender.established());

  for (int burst = 0; burst < 20; ++burst) {
    for (int i = 0; i < 5; ++i) p.sender.send_message({.bytes = 1200});
    p.run_ms(1000);
  }
  EXPECT_FALSE(p.sender.failed());
  EXPECT_TRUE(p.sender.established());
  EXPECT_EQ(p.delivered.size(), 100u);
}

// ------------------------------------------------------ blackout recovery --

TEST(FailureTest, SurvivableBlackoutRecoversAndResetsEpoch) {
  wire::LossyConfig lcfg;
  RudpConfig cfg;  // defaults: max_rto_streak = 8 tolerates a 2 s outage
  LossyPair p(lcfg, cfg);
  p.run_ms(200);
  ASSERT_TRUE(p.sender.established());

  // Keep traffic flowing, cut the wire for 2 s mid-run, restore.
  for (int i = 0; i < 20; ++i) p.sender.send_message({.bytes = 1000});
  p.run_ms(500);
  p.wire.set_blackout(true);
  for (int i = 0; i < 5; ++i) p.sender.send_message({.bytes = 1000});
  p.run_ms(2000);
  EXPECT_FALSE(p.sender.failed()) << "failed during a survivable outage";
  p.wire.set_blackout(false);
  p.run_ms(30'000);

  EXPECT_FALSE(p.sender.failed());
  EXPECT_TRUE(p.sender.established());
  EXPECT_GE(p.sender.stats().blackout_recoveries, 1u);
  EXPECT_EQ(p.delivered.size(), 25u);  // everything sent eventually arrives
}

// ----------------------------------------------------------- backpressure --

TEST(FailureTest, BackpressureShedsOldestWholeMessages) {
  wire::LossyConfig lcfg;
  RudpConfig cfg;
  LossyPair p(lcfg, cfg);
  p.run_ms(200);
  ASSERT_TRUE(p.sender.established());

  p.wire.set_blackout(true);  // nothing drains while we flood
  p.sender.set_max_pending_segments(10);
  const int kOffered = 50;
  for (int i = 0; i < kOffered; ++i) {
    p.sender.send_message({.bytes = 1000});  // 1 segment each
  }
  p.run_ms(10);
  EXPECT_LE(p.sender.queued_segments(), 10u + 2u);  // bound holds (±inflight)
  EXPECT_GT(p.sender.stats().messages_shed, 0u);

  p.wire.set_blackout(false);
  p.run_ms(60'000);
  // Conservation: every offered message was either shed or delivered.
  EXPECT_EQ(p.delivered.size() + p.sender.stats().messages_shed,
            static_cast<std::size_t>(kOffered));
  // Drop-oldest: the survivors are still in order and include the newest
  // message; the shed ones leave a gap in the middle (the messages already
  // in flight when the flood began are retransmitted, not shed).
  for (std::size_t i = 1; i < p.delivered.size(); ++i) {
    EXPECT_LT(p.delivered[i - 1].msg_id, p.delivered[i].msg_id);
  }
  ASSERT_FALSE(p.delivered.empty());
  EXPECT_EQ(p.delivered.back().msg_id, static_cast<std::uint32_t>(kOffered));
}

TEST(FailureTest, BackpressureNeverShedsPartiallySentMessage) {
  wire::LossyConfig lcfg;
  RudpConfig cfg;
  LossyPair p(lcfg, cfg);
  p.run_ms(200);
  ASSERT_TRUE(p.sender.established());

  // A large fragmented message goes first; once its head fragments are in
  // flight the rest of its run at the queue front must be unshedable.
  p.sender.send_message({.bytes = 20'000});  // ~15 fragments
  p.run_ms(5);                               // pump a couple of fragments
  p.wire.set_blackout(true);
  p.sender.set_max_pending_segments(4);
  for (int i = 0; i < 30; ++i) p.sender.send_message({.bytes = 1000});
  p.run_ms(10);
  p.wire.set_blackout(false);
  p.run_ms(60'000);

  ASSERT_FALSE(p.delivered.empty());
  // The partially-sent 20 kB message survived the shed and arrived intact.
  EXPECT_EQ(p.delivered.front().bytes, 20'000);
  EXPECT_GT(p.sender.stats().messages_shed, 0u);
}

TEST(FailureTest, UnboundedQueueNeverSheds) {
  wire::LossyConfig lcfg;
  LossyPair p(lcfg);
  p.run_ms(200);
  ASSERT_TRUE(p.sender.established());
  p.wire.set_blackout(true);
  for (int i = 0; i < 200; ++i) p.sender.send_message({.bytes = 1000});
  p.run_ms(100);
  EXPECT_EQ(p.sender.stats().messages_shed, 0u);
  EXPECT_GE(p.sender.queued_segments(), 190u);
}

// ------------------------------------------------------- failed terminal --

TEST(FailureTest, FailedStateIsTerminalAndSilent) {
  wire::LossyConfig lcfg;
  lcfg.drop_probability = 1.0;
  RudpConfig cfg;
  cfg.connect_retry = Duration::millis(100);
  cfg.max_connect_attempts = 2;
  LossyPair p(lcfg, cfg);
  p.run_ms(5000);
  ASSERT_TRUE(p.sender.failed());
  const std::uint64_t failures = p.sender.stats().failures;

  // Another 60 s changes nothing: no more retries, no second error event.
  p.run_ms(60'000);
  EXPECT_EQ(p.sender.stats().failures, failures);
  EXPECT_EQ(p.errors.size(), 1u);
}

}  // namespace
}  // namespace iq::rudp
