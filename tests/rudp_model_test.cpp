// Model-based stress tests: drive RecvBuffer and SendBuffer with long
// randomized operation sequences and check them against simple reference
// models. These catch bookkeeping bugs (double counting, leaks, missed
// deliveries) that example-based tests miss.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "iq/common/rng.hpp"
#include "iq/rudp/recv_buffer.hpp"
#include "iq/rudp/send_buffer.hpp"

namespace iq::rudp {
namespace {

TimePoint at(std::int64_t n) { return TimePoint::from_ns(n); }

// ----------------------------------------------------------- RecvBuffer ---
//
// Model: a stream of messages, each 1..4 fragments. Each fragment is either
// delivered to the buffer (possibly out of order, possibly duplicated) or
// skipped. Expectation: a message with all fragments received is delivered
// exactly once; a message with any skipped fragment is dropped exactly
// once; cum() ends one past the last sequence; nothing leaks.

struct FragmentPlan {
  Seq seq;
  std::uint32_t msg_id;
  std::uint16_t frag_index;
  std::uint16_t frag_count;
  bool skipped;
};

class RecvBufferModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RecvBufferModelTest, RandomizedArrivalOrder) {
  Rng rng(GetParam());
  // Build the plan: ~150 messages.
  std::vector<FragmentPlan> plan;
  std::map<std::uint32_t, bool> msg_has_skip;
  std::map<std::uint32_t, std::int64_t> msg_bytes;
  Seq next_seq = 1;
  std::uint32_t next_msg = 1;
  for (int m = 0; m < 150; ++m) {
    const auto frags = static_cast<std::uint16_t>(rng.uniform_int(1, 4));
    const std::uint32_t id = next_msg++;
    for (std::uint16_t f = 0; f < frags; ++f) {
      const bool skip = rng.chance(0.15);
      plan.push_back(FragmentPlan{next_seq++, id, f, frags, skip});
      msg_has_skip[id] = msg_has_skip[id] || skip;
      if (!skip) msg_bytes[id] += 100;
    }
  }
  const Seq end_seq = next_seq;

  // Shuffle the arrival order within a bounded reordering window so the
  // buffer (4096 slots) never overflows.
  std::vector<std::size_t> order(plan.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    const std::size_t j = i + static_cast<std::size_t>(rng.uniform_int(
                                  0, std::min<std::int64_t>(20, order.size() - 1 - i)));
    std::swap(order[i], order[j]);
  }

  RecvBuffer buf(4096, 1);
  std::map<std::uint32_t, std::int64_t> delivered_bytes;
  std::uint64_t dropped = 0;
  std::int64_t t = 0;

  auto absorb = [&](RecvBuffer::Result r) {
    for (const auto& msg : r.delivered) {
      auto [it, inserted] = delivered_bytes.emplace(msg.msg_id, msg.bytes);
      ASSERT_TRUE(inserted) << "message " << msg.msg_id << " delivered twice";
    }
    dropped += r.dropped_messages;
  };

  for (std::size_t idx : order) {
    const FragmentPlan& f = plan[idx];
    if (f.skipped) {
      const RecvBuffer::SkipInfo info{f.seq, f.msg_id, f.frag_count};
      absorb(buf.on_skip({&info, 1}, at(++t)));
    } else {
      RecvSegment seg;
      seg.seq = f.seq;
      seg.msg_id = f.msg_id;
      seg.frag_index = f.frag_index;
      seg.frag_count = f.frag_count;
      seg.payload_bytes = 100;
      absorb(buf.on_data(seg, at(++t)));
      // Occasionally duplicate the arrival.
      if (rng.chance(0.1)) absorb(buf.on_data(seg, at(++t)));
    }
  }

  EXPECT_EQ(buf.cum(), end_seq);
  EXPECT_EQ(buf.buffered(), 0u);

  std::uint64_t expect_dropped = 0;
  for (const auto& [id, has_skip] : msg_has_skip) {
    if (has_skip) {
      ++expect_dropped;
      EXPECT_FALSE(delivered_bytes.contains(id))
          << "message " << id << " delivered despite a skipped fragment";
    } else {
      ASSERT_TRUE(delivered_bytes.contains(id)) << "message " << id << " lost";
      EXPECT_EQ(delivered_bytes[id], msg_bytes[id]);
    }
  }
  EXPECT_EQ(dropped, expect_dropped);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecvBufferModelTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
                         [](const auto& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

// ----------------------------------------------------------- SendBuffer ---
//
// Model: add N segments, then apply a random sequence of acks (advancing
// cumulative point + random eack subsets). Invariants: inflight equals the
// count of never-evidenced segments; each segment contributes to
// newly_acked exactly once; a segment is reported lost at most once; lost
// segments really were >= dup_threshold below the high-water mark.

class SendBufferModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SendBufferModelTest, RandomizedAckSequences) {
  Rng rng(GetParam());
  SendBuffer buf;
  const Seq n = 400;
  for (Seq s = 1; s <= n; ++s) {
    Outstanding o;
    o.seq = s;
    o.msg_id = static_cast<std::uint32_t>(s);
    o.payload_bytes = 10;
    buf.add(o);
  }

  std::set<Seq> evidenced;
  std::set<Seq> reported_lost;
  Seq cum = 1;
  int total_newly_acked = 0;

  while (cum <= n) {
    // Random eacks above cum.
    std::vector<Seq> eacks;
    for (int i = 0; i < 5; ++i) {
      const Seq e = cum + static_cast<Seq>(rng.uniform_int(0, 30));
      if (e <= n) eacks.push_back(e);
    }
    if (rng.chance(0.7)) {
      cum += static_cast<Seq>(rng.uniform_int(0, 10));
    }
    cum = std::min(cum, n + 1);

    auto out = buf.on_ack(cum, eacks, 3);
    total_newly_acked += out.newly_acked;

    Seq high = 0;
    for (Seq s = 1; s < cum; ++s) evidenced.insert(s);
    for (Seq e : eacks) evidenced.insert(e);
    for (Seq s : evidenced) high = std::max(high, s);

    for (Seq lost : out.lost) {
      EXPECT_FALSE(evidenced.contains(lost));
      EXPECT_TRUE(reported_lost.insert(lost).second)
          << "segment " << lost << " reported lost twice";
      EXPECT_GE(high, lost + 3);
    }
    // inflight = segments with no receipt evidence (abandonment aside).
    int expect_inflight = 0;
    for (Seq s = 1; s <= n; ++s) {
      if (!evidenced.contains(s)) ++expect_inflight;
    }
    EXPECT_EQ(buf.inflight(), expect_inflight);
  }

  auto final_out = buf.on_ack(n + 1, {}, 3);
  total_newly_acked += final_out.newly_acked;
  EXPECT_EQ(total_newly_acked, static_cast<int>(n));
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.inflight(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SendBufferModelTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66),
                         [](const auto& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace iq::rudp
