// Tests for the TCP Reno baseline over the simulated network.

#include <gtest/gtest.h>

#include <memory>

#include "iq/net/dumbbell.hpp"
#include "iq/tcp/tcp_source.hpp"

namespace iq::tcp {
namespace {

struct TcpPair {
  sim::Simulator sim;
  net::Network net{sim};
  std::unique_ptr<net::Dumbbell> db;
  std::unique_ptr<TcpConnection> snd;
  std::unique_ptr<TcpConnection> rcv;

  explicit TcpPair(const net::DumbbellConfig& dcfg = {.pairs = 2},
                   const TcpConfig& tcfg = {}) {
    db = std::make_unique<net::Dumbbell>(net, dcfg);
    snd = std::make_unique<TcpConnection>(
        net, net::Endpoint{db->left(0).id(), 10},
        net::Endpoint{db->right(0).id(), 10}, 1, tcfg, TcpRole::Client);
    rcv = std::make_unique<TcpConnection>(
        net, net::Endpoint{db->right(0).id(), 10},
        net::Endpoint{db->left(0).id(), 10}, 1, tcfg, TcpRole::Server);
    rcv->listen();
    snd->connect();
  }

  void run_s(double s) {
    sim.run_until(sim.now() + Duration::from_seconds(s));
  }
};

TEST(TcpConnectionTest, Handshake) {
  TcpPair p;
  p.run_s(1.0);
  EXPECT_TRUE(p.snd->established());
  EXPECT_TRUE(p.rcv->established());
}

TEST(TcpConnectionTest, BytesDeliveredInOrder) {
  TcpPair p;
  p.run_s(1.0);
  p.snd->send_bytes(100'000);
  p.run_s(10.0);
  EXPECT_EQ(p.rcv->delivered_offset(), 100'000u);
  EXPECT_TRUE(p.snd->send_idle());
}

TEST(TcpConnectionTest, SlowStartGrowsWindow) {
  TcpPair p;
  p.run_s(1.0);
  const double w0 = p.snd->cwnd_segments();
  p.snd->send_bytes(500'000);
  p.run_s(0.5);
  EXPECT_GT(p.snd->cwnd_segments(), w0);
}

TEST(TcpConnectionTest, ThroughputApproachesBottleneck) {
  TcpPair p;
  p.run_s(1.0);
  const std::int64_t total = 10'000'000;  // 10 MB over 20 Mb/s ≈ 4 s ideal
  p.snd->send_bytes(total);
  const double t0 = p.sim.now().to_seconds();
  // Run in slices and record when the transfer actually finished.
  while (!p.snd->send_idle() && p.sim.now().to_seconds() < 120.0) {
    p.run_s(0.1);
  }
  ASSERT_EQ(p.rcv->delivered_offset(), static_cast<std::uint64_t>(total));
  const double finish = p.sim.now().to_seconds();
  // Throughput must be at least half the bottleneck (single flow, no loss
  // other than self-induced queue overflow).
  const double rate_bps = total * 8.0 / (finish - t0);
  EXPECT_GT(rate_bps, 8e6);
  EXPECT_LT(rate_bps, 20e6);
}

TEST(TcpConnectionTest, RecoversFromQueueOverflowLoss) {
  // A tiny bottleneck queue forces drops; Reno must still deliver all.
  net::DumbbellConfig dcfg{.pairs = 2};
  dcfg.bottleneck_queue_bytes = 8 * 1500;
  TcpPair p(dcfg);
  p.run_s(1.0);
  p.snd->send_bytes(2'000'000);
  p.run_s(120.0);
  EXPECT_EQ(p.rcv->delivered_offset(), 2'000'000u);
  EXPECT_GT(p.snd->stats().retransmissions, 0u);
}

TEST(TcpConnectionTest, FastRetransmitUsedBeforeTimeout) {
  net::DumbbellConfig dcfg{.pairs = 2};
  dcfg.bottleneck_queue_bytes = 10 * 1500;
  TcpPair p(dcfg);
  p.run_s(1.0);
  p.snd->send_bytes(5'000'000);
  p.run_s(120.0);
  EXPECT_GT(p.snd->stats().fast_retransmits, 0u);
}

TEST(TcpMessageStreamTest, BoundariesBecomeMessages) {
  TcpPair p;
  p.run_s(1.0);
  TcpMessageStream stream(*p.snd);
  std::vector<std::pair<std::uint32_t, std::int64_t>> messages;
  p.rcv->set_delivered_handler([&](std::uint64_t off, TimePoint now) {
    stream.on_delivered(off, now);
  });
  stream.set_message_handler(
      [&](std::uint32_t id, std::int64_t bytes, TimePoint) {
        messages.emplace_back(id, bytes);
      });
  stream.send_message(5000);
  stream.send_message(12'000);
  stream.send_message(700);
  p.run_s(10.0);
  ASSERT_EQ(messages.size(), 3u);
  EXPECT_EQ(messages[0], (std::pair<std::uint32_t, std::int64_t>{1, 5000}));
  EXPECT_EQ(messages[1], (std::pair<std::uint32_t, std::int64_t>{2, 12'000}));
  EXPECT_EQ(messages[2], (std::pair<std::uint32_t, std::int64_t>{3, 700}));
}

TEST(BulkTcpSourceTest, KeepsPipeBusy) {
  TcpPair p;
  BulkTcpSource bulk(*p.snd);
  bulk.start();
  p.run_s(5.0);
  EXPECT_GT(p.rcv->delivered_offset(), 5'000'000u);  // ≥ 8 Mb/s sustained
}

TEST(TcpFairnessTest, TwoFlowsShareBottleneck) {
  sim::Simulator sim;
  net::Network net(sim);
  net::Dumbbell db(net, {.pairs = 2});
  TcpConfig cfg1;
  cfg1.conn_id = 1;
  TcpConfig cfg2;
  cfg2.conn_id = 2;

  TcpConnection s1(net, {db.left(0).id(), 10}, {db.right(0).id(), 10}, 1, cfg1,
                   TcpRole::Client);
  TcpConnection r1(net, {db.right(0).id(), 10}, {db.left(0).id(), 10}, 1, cfg1,
                   TcpRole::Server);
  TcpConnection s2(net, {db.left(1).id(), 10}, {db.right(1).id(), 10}, 2, cfg2,
                   TcpRole::Client);
  TcpConnection r2(net, {db.right(1).id(), 10}, {db.left(1).id(), 10}, 2, cfg2,
                   TcpRole::Server);
  r1.listen();
  r2.listen();
  s1.connect();
  s2.connect();
  BulkTcpSource b1(s1), b2(s2);
  b1.start();
  b2.start();
  sim.run_until(TimePoint::zero() + Duration::seconds(30));

  const double d1 = static_cast<double>(r1.delivered_offset());
  const double d2 = static_cast<double>(r2.delivered_offset());
  // Jain-style sanity: neither flow starves (within 3x of each other).
  EXPECT_GT(d1, 1e6);
  EXPECT_GT(d2, 1e6);
  EXPECT_LT(std::max(d1, d2) / std::min(d1, d2), 3.0);
}

}  // namespace
}  // namespace iq::tcp
