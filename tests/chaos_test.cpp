// Chaos soak: everything on at once — loss, duplication, reordering, mixed
// marked/unmarked traffic, random message sizes, delayed acks, mid-run
// tolerance changes — with conservation and ordering invariants checked at
// the end. The broadest net for interaction bugs between protocol features.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "iq/audit/audit.hpp"
#include "iq/common/rng.hpp"
#include "iq/fault/injector.hpp"
#include "iq/fault/plan.hpp"
#include "iq/rudp/connection.hpp"
#include "iq/sim/simulator.hpp"
#include "iq/wire/lossy_wire.hpp"

namespace iq::rudp {
namespace {

struct Offered {
  std::uint32_t msg_id;
  std::int64_t bytes;
  bool marked;
};

class ChaosTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosTest, EverythingOnAtOnce) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);

  sim::Simulator sim;
  wire::LossyConfig lcfg;
  lcfg.drop_probability = rng.uniform(0.05, 0.3);
  lcfg.duplicate_probability = rng.uniform(0.0, 0.2);
  lcfg.reorder_jitter = Duration::millis(rng.uniform_int(0, 40));
  lcfg.seed = seed * 7 + 1;
  wire::LossyWirePair wire(sim, lcfg);

  RudpConfig scfg;
  scfg.initial_seq = rng.chance(0.5) ? 1 : (Seq{1} << 32) - 20;
  RudpConfig rcfg = scfg;
  rcfg.recv_loss_tolerance = rng.uniform(0.0, 0.6);
  rcfg.ack_every = static_cast<std::uint32_t>(rng.uniform_int(1, 4));

  RudpConnection snd(wire.a(), scfg, Role::Client);
  RudpConnection rcv(wire.b(), rcfg, Role::Server);
  // Full-length audited soak: every protocol event is cross-checked by the
  // invariant auditor while the chaos wire does its worst.
  audit::AuditConfig acfg;
  acfg.dump_on_violation = false;
  audit::AuditContext* snd_audit = snd.enable_audit(acfg);
  audit::AuditContext* rcv_audit = rcv.enable_audit(acfg);
  std::vector<DeliveredMessage> delivered;
  rcv.set_message_handler(
      [&](const DeliveredMessage& m) { delivered.push_back(m); });
  rcv.listen();
  snd.connect();
  sim.run_until(TimePoint::zero() + Duration::seconds(60));
  ASSERT_TRUE(snd.established()) << "seed=" << seed;

  // Offer a mixed workload in bursts, with a mid-run tolerance change.
  std::vector<Offered> offered;
  double max_tolerance = rcfg.recv_loss_tolerance;
  const int kMessages = 120;
  for (int i = 0; i < kMessages; ++i) {
    if (i == kMessages / 2) {
      const double updated = rng.uniform(0.0, 0.6);
      max_tolerance = std::max(max_tolerance, updated);
      rcv.set_local_recv_tolerance(updated);
    }
    MessageSpec spec;
    spec.bytes = rng.uniform_int(0, 6000);
    spec.marked = rng.chance(0.5);
    auto result = snd.send_message(spec);
    ASSERT_FALSE(result.discarded);  // discard mode is off
    offered.push_back(Offered{result.msg_id, spec.bytes, spec.marked});
    if (rng.chance(0.3)) {
      sim.run_until(sim.now() + Duration::millis(rng.uniform_int(1, 80)));
    }
  }
  sim.run_until(sim.now() + Duration::seconds(1200));

  // Invariant 1: conservation — every message delivered or dropped.
  EXPECT_EQ(delivered.size() + rcv.stats().messages_dropped,
            static_cast<std::size_t>(kMessages))
      << "seed=" << seed;

  // Invariant 2: in-order delivery by message id, exact sizes, and every
  // marked message present.
  std::size_t oi = 0;
  int marked_delivered = 0;
  for (const auto& m : delivered) {
    while (oi < offered.size() && offered[oi].msg_id != m.msg_id) ++oi;
    ASSERT_LT(oi, offered.size())
        << "delivered unknown/out-of-order msg " << m.msg_id
        << " seed=" << seed;
    EXPECT_EQ(m.bytes, offered[oi].bytes);
    EXPECT_EQ(m.marked, offered[oi].marked);
    if (m.marked) ++marked_delivered;
    ++oi;
  }
  int marked_offered = 0;
  for (const auto& o : offered) {
    if (o.marked) ++marked_offered;
  }
  EXPECT_EQ(marked_delivered, marked_offered) << "seed=" << seed;

  // Invariant 3: the sender fully drained.
  EXPECT_TRUE(snd.send_idle()) << "seed=" << seed;

  // Invariant 4: the skip budget never exceeded the largest tolerance in
  // effect (a mid-run *decrease* legitimately strands an already-skipped
  // fraction above the new, lower tolerance).
  EXPECT_LE(snd.skip_budget().skipped_fraction(), max_tolerance + 1e-9)
      << "seed=" << seed;

  // Invariant 5: a clean audit on both endpoints, including segment
  // conservation on the drained sender.
  snd_audit->check_quiescent();
  EXPECT_TRUE(snd_audit->violations().empty())
      << "seed=" << seed << " "
      << snd_audit->violations().front().invariant << ": "
      << snd_audit->violations().front().detail;
  EXPECT_TRUE(rcv_audit->violations().empty())
      << "seed=" << seed << " "
      << rcv_audit->violations().front().invariant << ": "
      << rcv_audit->violations().front().detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Range<std::uint64_t>(1, 13),
                         [](const auto& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

// -------------------------------------------------------- fault-plan soak --
//
// The chaos workload again, but with a scripted FaultPlan layered on top of
// the background loss: a mid-run blackout (survivable — must NOT trip the
// failure detector) plus a Gilbert–Elliott burst phase. The same
// conservation and ordering invariants must hold once the plan has run out.

class ChaosFaultPlanTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosFaultPlanTest, BlackoutAndBurstSoak) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);

  sim::Simulator sim;
  wire::LossyConfig lcfg;
  lcfg.drop_probability = rng.uniform(0.02, 0.1);
  lcfg.reorder_jitter = Duration::millis(rng.uniform_int(0, 20));
  lcfg.seed = seed * 11 + 3;
  wire::LossyWirePair wire(sim, lcfg);

  fault::FaultInjector injector(sim);
  fault::GilbertElliottConfig ge;
  ge.p_good_to_bad = 0.05;
  ge.p_bad_to_good = 0.3;
  ge.loss_bad = 0.6;
  ge.seed = seed + 41;
  fault::FaultPlan plan;
  const int target = injector.add_target(wire);
  plan.blackout(Duration::seconds(20), Duration::seconds(2), target)
      .burst_loss(Duration::seconds(40), Duration::seconds(8), ge, target);
  injector.arm(plan);

  RudpConfig scfg;  // defaults: max_rto_streak = 8 must ride out the outage
  RudpConfig rcfg = scfg;
  rcfg.recv_loss_tolerance = rng.uniform(0.0, 0.4);
  RudpConnection snd(wire.a(), scfg, Role::Client);
  RudpConnection rcv(wire.b(), rcfg, Role::Server);
  audit::AuditConfig acfg;
  acfg.dump_on_violation = false;
  audit::AuditContext* snd_audit = snd.enable_audit(acfg);
  audit::AuditContext* rcv_audit = rcv.enable_audit(acfg);
  int failures = 0;
  snd.set_error_handler([&](FailureReason) { ++failures; });
  std::vector<DeliveredMessage> delivered;
  rcv.set_message_handler(
      [&](const DeliveredMessage& m) { delivered.push_back(m); });
  rcv.listen();
  snd.connect();
  sim.run_until(TimePoint::zero() + Duration::seconds(5));
  ASSERT_TRUE(snd.established()) << "seed=" << seed;

  // Offer traffic across the whole fault timeline (~60 s).
  std::vector<Offered> offered;
  const int kMessages = 150;
  for (int i = 0; i < kMessages; ++i) {
    MessageSpec spec;
    spec.bytes = rng.uniform_int(0, 5000);
    spec.marked = rng.chance(0.5);
    auto result = snd.send_message(spec);
    ASSERT_FALSE(result.discarded);
    offered.push_back(Offered{result.msg_id, spec.bytes, spec.marked});
    sim.run_until(sim.now() + Duration::millis(400));
  }
  sim.run_until(sim.now() + Duration::seconds(600));

  // The outage was survivable: no false Failed, and it was actually felt.
  EXPECT_FALSE(snd.failed()) << "seed=" << seed;
  EXPECT_EQ(failures, 0) << "seed=" << seed;
  EXPECT_GT(wire.blackout_drops() + wire.burst_drops(), 0u)
      << "seed=" << seed;

  // Post-recovery conservation and ordering.
  EXPECT_EQ(delivered.size() + rcv.stats().messages_dropped,
            static_cast<std::size_t>(kMessages))
      << "seed=" << seed;
  std::size_t oi = 0;
  for (const auto& m : delivered) {
    while (oi < offered.size() && offered[oi].msg_id != m.msg_id) ++oi;
    ASSERT_LT(oi, offered.size())
        << "delivered unknown/out-of-order msg " << m.msg_id
        << " seed=" << seed;
    EXPECT_EQ(m.bytes, offered[oi].bytes);
    ++oi;
  }
  EXPECT_TRUE(snd.send_idle()) << "seed=" << seed;

  // Clean audit through blackout + burst, including the epoch-reset
  // discard accounting the recovery path exercises.
  snd_audit->check_quiescent();
  EXPECT_TRUE(snd_audit->violations().empty())
      << "seed=" << seed << " "
      << snd_audit->violations().front().invariant << ": "
      << snd_audit->violations().front().detail;
  EXPECT_TRUE(rcv_audit->violations().empty())
      << "seed=" << seed << " "
      << rcv_audit->violations().front().invariant << ": "
      << rcv_audit->violations().front().detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosFaultPlanTest,
                         ::testing::Values<std::uint64_t>(1, 2, 3, 4),
                         [](const auto& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace iq::rudp
