// Differential test of the hierarchical TimerWheel against the indexed
// 4-ary EventQueue as the reference model.
//
// The wheel replaces the heap inside Simulator and RealtimeLoop, so its
// observable behaviour must be *identical*: the same (time, insertion-seq)
// fire order (this is what keeps CityScale's cross-shard digests
// bit-identical at every shard count), the same cancel results for live,
// fired, stale and double-cancelled handles, the same size accounting and
// the same next_time() at every step. Random interleavings of
// schedule/rearm/cancel/fire across seeds 1–24 drive deadlines through
// every wheel level: same-nanosecond collisions (level-0 FIFO pileups),
// near rearm-style horizons, far-future deadlines that must cascade down
// multiple levels before firing, and deadlines behind the wheel's position
// (legal on the realtime path) that clamp but keep their ordering key.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "iq/common/rng.hpp"
#include "iq/sim/event_queue.hpp"
#include "iq/sim/timer_wheel.hpp"

namespace iq::sim {
namespace {

TEST(TimerWheelPropertyTest, MatchesEventHeapUnderRandomChurn) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    Rng rng(seed);
    TimerWheel wheel;
    EventQueue ref;

    std::vector<std::size_t> wheel_fired;
    std::vector<std::size_t> ref_fired;
    std::vector<EventId> wheel_ids;  // schedule order -> handle
    std::vector<EventId> ref_ids;
    std::size_t scheduled = 0;
    std::int64_t fired_at = 0;  // time of the last fired event

    const auto schedule_both = [&](TimePoint at) {
      const std::size_t tag = scheduled++;
      wheel_ids.push_back(wheel.schedule(
          at, [&wheel_fired, tag] { wheel_fired.push_back(tag); }));
      ref_ids.push_back(ref.schedule(
          at, [&ref_fired, tag] { ref_fired.push_back(tag); }));
    };

    const auto random_deadline = [&]() {
      const double kind = rng.uniform01();
      if (kind < 0.40) {
        // Coarse near-term offsets: plenty of same-ns collisions.
        return TimePoint::from_ns(fired_at + rng.uniform_int(0, 199));
      }
      if (kind < 0.70) {
        // Rearm-style horizons (RTO/keepalive scale).
        return TimePoint::from_ns(fired_at +
                                  rng.uniform_int(1'000, 400'000'000));
      }
      if (kind < 0.90) {
        // Far future: forces placement at high wheel levels and multi-step
        // cascades back down before firing.
        const int shift = static_cast<int>(rng.uniform_int(30, 55));
        return TimePoint::from_ns(fired_at + (std::int64_t{1} << shift) +
                                  rng.uniform_int(0, 9999));
      }
      // Behind the last fired deadline — the realtime path schedules these;
      // both sides must order them by their original timestamp.
      return TimePoint::from_ns(
          std::max<std::int64_t>(0, fired_at - rng.uniform_int(0, 5000)));
    };

    for (int op = 0; op < 15'000; ++op) {
      const double roll = rng.uniform01();
      if (roll < 0.40 || wheel.empty()) {
        schedule_both(random_deadline());
      } else if (roll < 0.55) {
        // Rearm: cancel a random handle and, if it was live, reschedule.
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(wheel_ids.size()) - 1));
        const bool wheel_ok = wheel.cancel(wheel_ids[pick]);
        const bool ref_ok = ref.cancel(ref_ids[pick]);
        ASSERT_EQ(wheel_ok, ref_ok) << "rearm-cancel divergence at op " << op
                                    << " seed " << seed;
        if (wheel_ok) schedule_both(random_deadline());
      } else if (roll < 0.75) {
        // Cancel a random handle — live, fired, or already cancelled; the
        // generation check must reject stale handles identically.
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(wheel_ids.size()) - 1));
        EXPECT_EQ(wheel.cancel(wheel_ids[pick]), ref.cancel(ref_ids[pick]))
            << "cancel divergence at op " << op << " seed " << seed;
      } else {
        ASSERT_FALSE(wheel.empty());
        ASSERT_EQ(wheel.next_time(), ref.next_time())
            << "next_time divergence at op " << op << " seed " << seed;
        auto from_wheel = wheel.pop();
        auto from_ref = ref.pop();
        ASSERT_EQ(from_wheel.at, from_ref.at)
            << "pop-time divergence at op " << op << " seed " << seed;
        fired_at = from_wheel.at.ns();
        from_wheel.fn();
        from_ref.fn();
        ASSERT_EQ(wheel_fired.back(), ref_fired.back())
            << "fire-order divergence at op " << op << " seed " << seed;
      }
      ASSERT_EQ(wheel.size(), ref.size())
          << "size divergence at op " << op << " seed " << seed;
      ASSERT_EQ(wheel.empty(), ref.empty());
    }

    // Drain both completely; the full tag sequences must be identical.
    while (!wheel.empty()) {
      ASSERT_EQ(wheel.next_time(), ref.next_time()) << "seed " << seed;
      auto from_wheel = wheel.pop();
      auto from_ref = ref.pop();
      ASSERT_EQ(from_wheel.at, from_ref.at) << "seed " << seed;
      from_wheel.fn();
      from_ref.fn();
    }
    EXPECT_TRUE(ref.empty());
    EXPECT_EQ(wheel.next_time(), TimePoint::max());
    ASSERT_EQ(wheel_fired, ref_fired) << "seed " << seed;
  }
}

TEST(TimerWheelPropertyTest, EqualTimestampsFireFifoUnderChurn) {
  Rng rng(5);
  TimerWheel wheel;
  // Interleave schedules at one timestamp with noise at other times; the
  // single-timestamp group must fire in insertion order even though the
  // wheel batches the pileup through its fire heap.
  std::vector<int> fired;
  std::vector<EventId> noise;
  int next_tag = 0;
  for (int round = 0; round < 300; ++round) {
    const int tag = next_tag++;
    wheel.schedule(TimePoint::from_ns(1000),
                   [&fired, tag] { fired.push_back(tag); });
    noise.push_back(
        wheel.schedule(TimePoint::from_ns(rng.uniform_int(0, 2000)), [] {}));
    if (round % 3 == 0 && !noise.empty()) {
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(noise.size()) - 1));
      wheel.cancel(noise[pick]);
    }
  }
  while (!wheel.empty()) wheel.pop().fn();
  ASSERT_EQ(fired.size(), 300u);
  for (int i = 0; i < 300; ++i) EXPECT_EQ(fired[i], i);
}

TEST(TimerWheelPropertyTest, StaleAndDoubleCancelStructurallyRejected) {
  TimerWheel wheel;
  const EventId a = wheel.schedule(TimePoint::from_ns(10), [] {});
  const EventId b = wheel.schedule(TimePoint::from_ns(20), [] {});

  EXPECT_TRUE(wheel.cancel(a));
  EXPECT_FALSE(wheel.cancel(a)) << "double cancel must be rejected";

  (void)wheel.pop();  // fires b
  EXPECT_FALSE(wheel.cancel(b)) << "cancel-after-fire must be rejected";

  // A recycled slot gets a fresh generation, so the old handle stays dead
  // even once the slot is reused.
  const EventId c = wheel.schedule(TimePoint::from_ns(30), [] {});
  EXPECT_FALSE(wheel.cancel(a));
  EXPECT_FALSE(wheel.cancel(b));
  EXPECT_TRUE(wheel.cancel(c));

  // Garbage ids.
  EXPECT_FALSE(wheel.cancel(0));
  EXPECT_FALSE(wheel.cancel(~EventId{0}));
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheelPropertyTest, CancelOfBatchedSameNsEntryIsHonoured) {
  // Force a same-ns pileup, fire part of it, then cancel an entry that is
  // already staged in the wheel's internal fire batch — the cancel must
  // still return true exactly once and the entry must not fire.
  TimerWheel wheel;
  std::vector<int> fired;
  std::vector<EventId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(wheel.schedule(TimePoint::from_ns(100),
                                 [&fired, i] { fired.push_back(i); }));
  }
  wheel.pop().fn();  // fires 0; 1..7 are now staged internally
  EXPECT_TRUE(wheel.cancel(ids[3]));
  EXPECT_FALSE(wheel.cancel(ids[3]));
  EXPECT_EQ(wheel.size(), 6u);
  while (!wheel.empty()) wheel.pop().fn();
  ASSERT_EQ(fired, (std::vector<int>{0, 1, 2, 4, 5, 6, 7}));
}

TEST(TimerWheelPropertyTest, FarFutureDeadlinesCascadeInOrder) {
  // Deadlines spread over ~16 orders of magnitude land on every wheel level
  // and must still fire in exact (time, insertion) order, including the
  // same-deadline pair planted at each magnitude.
  TimerWheel wheel;
  EventQueue ref;
  std::vector<std::int64_t> wheel_order;
  std::vector<std::int64_t> ref_order;
  std::int64_t tag = 0;
  for (int shift = 0; shift < 55; ++shift) {
    const std::int64_t at = (std::int64_t{1} << shift) + shift;
    for (int dup = 0; dup < 2; ++dup) {
      const std::int64_t t = tag++;
      wheel.schedule(TimePoint::from_ns(at),
                     [&wheel_order, t] { wheel_order.push_back(t); });
      ref.schedule(TimePoint::from_ns(at),
                   [&ref_order, t] { ref_order.push_back(t); });
    }
  }
  while (!wheel.empty()) {
    ASSERT_EQ(wheel.next_time(), ref.next_time());
    auto w = wheel.pop();
    auto r = ref.pop();
    ASSERT_EQ(w.at, r.at);
    w.fn();
    r.fn();
  }
  ASSERT_EQ(wheel_order, ref_order);
  ASSERT_EQ(wheel_order.size(), 110u);
}

}  // namespace
}  // namespace iq::sim
