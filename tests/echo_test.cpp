// Tests for the IQ-ECho middleware: channels, adaptation policies, the
// adaptive source and the metric sink.

#include <gtest/gtest.h>

#include <memory>

#include "iq/echo/channel.hpp"
#include "iq/echo/policies.hpp"
#include "iq/echo/sink.hpp"
#include "iq/echo/source.hpp"
#include "iq/sim/simulator.hpp"
#include "iq/wire/wire.hpp"

namespace iq::echo {
namespace {

struct EchoPair {
  sim::Simulator sim;
  wire::DirectWirePair wires{sim, Duration::millis(15)};
  std::unique_ptr<core::IqRudpConnection> snd;
  std::unique_ptr<core::IqRudpConnection> rcv;
  std::unique_ptr<EventChannel> chan_s;
  std::unique_ptr<EventChannel> chan_r;

  explicit EchoPair(double tolerance = 0.0) {
    rudp::RudpConfig cfg;
    rudp::RudpConfig rcfg;
    rcfg.recv_loss_tolerance = tolerance;
    snd = std::make_unique<core::IqRudpConnection>(wires.a(), cfg,
                                                   rudp::Role::Client);
    rcv = std::make_unique<core::IqRudpConnection>(wires.b(), rcfg,
                                                   rudp::Role::Server);
    chan_s = std::make_unique<EventChannel>("viz", *snd);
    chan_r = std::make_unique<EventChannel>("viz", *rcv);
    rcv->listen();
    snd->connect();
    sim.run_until(TimePoint::zero() + Duration::millis(200));
  }
};

// -------------------------------------------------------------- channel ---

TEST(EventChannelTest, SubmitDelivers) {
  EchoPair p;
  std::vector<ReceivedEvent> got;
  p.chan_r->set_event_handler([&](const ReceivedEvent& e) {
    got.push_back(e);
  });
  Event ev;
  ev.bytes = 4000;
  ev.tagged = true;
  ev.meta.set("slice", std::int64_t{3});
  p.chan_s->submit(ev);
  p.sim.run_until(TimePoint::zero() + Duration::seconds(2));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].event.bytes, 4000);
  EXPECT_TRUE(got[0].event.tagged);
  EXPECT_EQ(got[0].event.meta.get_int("slice"), 3);
  EXPECT_GT(got[0].delivered, got[0].sent);
}

TEST(EventChannelTest, CountsSubmittedAndReceived) {
  EchoPair p;
  p.chan_r->set_event_handler([](const ReceivedEvent&) {});
  for (int i = 0; i < 10; ++i) p.chan_s->submit({.bytes = 100});
  p.sim.run_until(TimePoint::zero() + Duration::seconds(2));
  EXPECT_EQ(p.chan_s->events_submitted(), 10u);
  EXPECT_EQ(p.chan_r->events_received(), 10u);
}

// ------------------------------------------------------------- policies ---

TEST(ResolutionPolicyTest, ShrinkByErrorRatio) {
  ResolutionPolicy pol;
  const auto rec = pol.shrink(0.2);
  EXPECT_NEAR(pol.scale(), 0.8, 1e-12);
  EXPECT_NEAR(*rec.resolution_change, 0.2, 1e-12);
  EXPECT_EQ(pol.apply(1000), 800);
}

TEST(ResolutionPolicyTest, GrowTenPercentCappedAtFull) {
  ResolutionPolicy pol;
  pol.shrink(0.5);
  const auto rec = pol.grow();
  EXPECT_NEAR(pol.scale(), 0.55, 1e-12);
  EXPECT_NEAR(*rec.resolution_change, -0.1, 1e-12);  // size increase
  for (int i = 0; i < 50; ++i) pol.grow();
  EXPECT_DOUBLE_EQ(pol.scale(), 1.0);
}

TEST(ResolutionPolicyTest, ScaleFloorLimitsEffectiveChange) {
  ResolutionPolicyConfig cfg;
  cfg.min_scale = 0.5;
  ResolutionPolicy pol(cfg);
  pol.shrink(0.4);  // 1.0 -> 0.6
  const auto rec = pol.shrink(0.4);  // would be 0.36, floored at 0.5
  EXPECT_DOUBLE_EQ(pol.scale(), 0.5);
  EXPECT_NEAR(*rec.resolution_change, 1.0 - 0.5 / 0.6, 1e-12);
}

TEST(MarkingPolicyTest, InactiveTagsEverything) {
  MarkingPolicy pol(1);
  for (std::uint64_t i = 0; i < 50; ++i) EXPECT_TRUE(pol.decide_tagged(i));
}

TEST(MarkingPolicyTest, UpperActivatesWithFloorProbability) {
  MarkingPolicy pol(1);
  const auto rec = pol.on_upper(0.10);  // gain 1.25*0.10 = 0.125 < 0.40 floor
  EXPECT_TRUE(pol.active());
  EXPECT_DOUBLE_EQ(pol.unmark_probability(), 0.40);
  EXPECT_DOUBLE_EQ(*rec.mark_degree, 0.40);
  const auto rec2 = pol.on_upper(0.60);  // 1.25*0.6 = 0.75
  EXPECT_DOUBLE_EQ(*rec2.mark_degree, 0.75);
}

TEST(MarkingPolicyTest, EveryFifthAlwaysTagged) {
  MarkingPolicy pol(1);
  pol.on_upper(0.9);
  for (std::uint64_t i = 0; i < 100; i += 5) {
    EXPECT_TRUE(pol.decide_tagged(i));
  }
}

TEST(MarkingPolicyTest, UnmarkRateTracksProbability) {
  MarkingPolicy pol(1);
  pol.on_upper(0.40);  // p = 0.5
  int unmarked = 0;
  const int n = 5000;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (i % 5 == 0) continue;
    if (!pol.decide_tagged(i)) ++unmarked;
  }
  EXPECT_NEAR(unmarked / (n * 0.8), 0.5, 0.05);
}

TEST(MarkingPolicyTest, LowerDecaysAndDeactivates) {
  MarkingPolicy pol(1);
  pol.on_upper(0.10);  // p = 0.40
  pol.on_lower();
  EXPECT_NEAR(pol.unmark_probability(), 0.32, 1e-12);
  for (int i = 0; i < 30; ++i) pol.on_lower();
  EXPECT_FALSE(pol.active());
  EXPECT_DOUBLE_EQ(pol.unmark_probability(), 0.0);
}

TEST(FrequencyPolicyTest, ReduceAndRestore) {
  FrequencyPolicy pol;
  const auto rec = pol.reduce(0.5);
  EXPECT_DOUBLE_EQ(pol.keep_ratio(), 0.5);
  EXPECT_NEAR(*rec.freq_ratio, 0.5, 1e-12);
  for (int i = 0; i < 30; ++i) pol.restore();
  EXPECT_DOUBLE_EQ(pol.keep_ratio(), 1.0);
}

TEST(FrequencyPolicyTest, ThinningKeepsRequestedFraction) {
  FrequencyPolicy pol;
  pol.reduce(0.75);  // keep 25 %
  int kept = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    if (pol.should_send(i)) ++kept;
  }
  EXPECT_NEAR(kept, 250, 2);
}

// ------------------------------------------------------- source + sink ----

TEST(AdaptiveSourceTest, FixedRateSubmitsAllFrames) {
  EchoPair p;
  stats::MessageMetrics metrics;
  MetricSink sink(*p.chan_r, metrics);
  AdaptiveSourceConfig cfg;
  cfg.frame_rate = 100;
  cfg.total_frames = 50;
  cfg.fixed_frame_bytes = 1000;
  AdaptiveSource src(*p.chan_s, nullptr, cfg, &metrics);
  src.start();
  p.sim.run_until(TimePoint::zero() + Duration::seconds(10));
  EXPECT_TRUE(src.done());
  EXPECT_EQ(src.frames_submitted(), 50u);
  EXPECT_EQ(metrics.delivered(), 50u);
  EXPECT_DOUBLE_EQ(metrics.summary().delivered_pct, 100.0);
}

TEST(AdaptiveSourceTest, AsapModeFillsTransport) {
  EchoPair p;
  stats::MessageMetrics metrics;
  MetricSink sink(*p.chan_r, metrics);
  AdaptiveSourceConfig cfg;
  cfg.frame_rate = 0;  // ASAP
  cfg.total_frames = 200;
  cfg.fixed_frame_bytes = 1400;
  AdaptiveSource src(*p.chan_s, nullptr, cfg, &metrics);
  src.start();
  p.sim.run_until(TimePoint::zero() + Duration::seconds(30));
  EXPECT_TRUE(src.done());
  EXPECT_EQ(metrics.delivered(), 200u);
}

TEST(AdaptiveSourceTest, TraceDrivenFrameSizes) {
  EchoPair p;
  workload::MboneTrace trace;
  workload::FrameSchedule schedule(trace, 3000);
  stats::MessageMetrics metrics;
  std::vector<std::int64_t> sizes;
  p.chan_r->set_event_handler(
      [&](const ReceivedEvent& e) { sizes.push_back(e.event.bytes); });
  AdaptiveSourceConfig cfg;
  cfg.frame_rate = 10;
  cfg.total_frames = 20;
  AdaptiveSource src(*p.chan_s, &schedule, cfg, &metrics);
  src.start();
  p.sim.run_until(TimePoint::zero() + Duration::seconds(30));
  ASSERT_EQ(sizes.size(), 20u);
  // First frames use the trace head: group(0..2) * 3000.
  EXPECT_EQ(sizes[0], static_cast<std::int64_t>(trace.group_at(0)) * 3000);
}

TEST(AdaptiveSourceTest, DeferredAdaptationWaitsForAlignedFrame) {
  EchoPair p;
  stats::MessageMetrics metrics;
  AdaptiveSourceConfig cfg;
  cfg.frame_rate = 100;
  cfg.total_frames = 100;
  cfg.fixed_frame_bytes = 1000;
  cfg.adaptation = AdaptKind::Resolution;
  cfg.adapt_granularity = 20;
  cfg.attach_cond = true;
  AdaptiveSource src(*p.chan_s, nullptr, cfg, &metrics);
  src.start();

  // Manually fire the upper threshold between aligned frames.
  p.sim.run_until(TimePoint::zero() + Duration::millis(150));  // ~15 frames in
  p.snd->callbacks().on_metric(attr::kNetLossRatio, 0.5, p.sim.now());
  EXPECT_EQ(src.deferrals(), 1u);
  EXPECT_TRUE(p.snd->coordinator().deferral_pending());
  EXPECT_DOUBLE_EQ(src.resolution_policy().scale(), 1.0);  // not yet applied

  p.sim.run_until(TimePoint::zero() + Duration::seconds(5));
  // The adaptation landed at the next index % 20 == 0 frame. (A trailing
  // loss-epoch callback may legitimately open a *new* deferral afterwards,
  // so we assert on the resolution counters, not on pending state.)
  EXPECT_NEAR(src.resolution_policy().scale(), 0.5, 1e-9);
  EXPECT_GE(p.snd->coordinator().stats().deferred_resolved, 1u);
  EXPECT_GE(p.snd->coordinator().stats().cond_compensations, 1u);
}

TEST(MetricSinkTest, CollectsJitterSeries) {
  EchoPair p;
  stats::MessageMetrics metrics;
  stats::TimeSeries series("jitter");
  MetricSink sink(*p.chan_r, metrics, &series);
  AdaptiveSourceConfig cfg;
  cfg.frame_rate = 100;
  cfg.total_frames = 30;
  cfg.fixed_frame_bytes = 500;
  AdaptiveSource src(*p.chan_s, nullptr, cfg, &metrics);
  src.start();
  p.sim.run_until(TimePoint::zero() + Duration::seconds(5));
  // Jitter points start at the third arrival.
  EXPECT_EQ(series.size(), 28u);
}

}  // namespace
}  // namespace iq::echo
