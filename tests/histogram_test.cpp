// Tests for the log-bucketed histogram and its quantile estimates.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "iq/common/rng.hpp"
#include "iq/stats/histogram.hpp"

namespace iq::stats {
namespace {

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.p50(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.add(5.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
  EXPECT_DOUBLE_EQ(h.min(), 5.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  // Quantiles of a single sample are that sample (within bucket width).
  EXPECT_NEAR(h.p50(), 5.0, 5.0 * 0.25);
}

TEST(HistogramTest, MeanExact) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0}) h.add(v);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
}

TEST(HistogramTest, QuantilesOfUniformSamples) {
  Histogram h(1e-3, 1e3, 256);
  Rng rng(7);
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.uniform(1.0, 100.0);
    values.push_back(v);
    h.add(v);
  }
  std::sort(values.begin(), values.end());
  auto exact = [&](double q) {
    return values[static_cast<std::size_t>(q * (values.size() - 1))];
  };
  EXPECT_NEAR(h.p50(), exact(0.50), exact(0.50) * 0.08);
  EXPECT_NEAR(h.p95(), exact(0.95), exact(0.95) * 0.08);
  EXPECT_NEAR(h.p99(), exact(0.99), exact(0.99) * 0.08);
}

TEST(HistogramTest, QuantilesMonotone) {
  Histogram h;
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) h.add(rng.exponential(3.0) + 1e-3);
  double prev = 0.0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_LE(h.quantile(1.0), h.max());
  EXPECT_GE(h.quantile(0.0), 0.0);
}

TEST(HistogramTest, OutOfRangeClampedNotLost) {
  Histogram h(1.0, 10.0, 8);
  h.add(0.001);   // below range
  h.add(1000.0);  // above range
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), 0.001);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
}

TEST(HistogramTest, MergeMatchesCombined) {
  Histogram a(1e-3, 1e3, 64), b(1e-3, 1e3, 64), all(1e-3, 1e3, 64);
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.uniform(0.01, 500.0);
    (i % 2 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  // Summation order differs, so allow floating-point slack on the mean.
  EXPECT_NEAR(a.mean(), all.mean(), all.mean() * 1e-12);
  EXPECT_DOUBLE_EQ(a.p95(), all.p95());
}

// Regression: a NaN used to slip past the `value <= min_value_` edge clamp
// (NaN comparisons are false) and reach an undefined float->size_t cast in
// bucket_for; ±inf likewise. Non-finite values must be counted separately
// and leave every statistic untouched.
TEST(HistogramTest, NonFiniteValuesAreIsolated) {
  Histogram h(1.0, 10.0, 8);
  h.add(2.0);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  h.add(4.0);

  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.nonfinite(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), 2.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  EXPECT_TRUE(std::isfinite(h.p50()));
  EXPECT_TRUE(std::isfinite(h.p99()));
}

TEST(HistogramTest, HugeAndTinyFiniteValuesStayClamped) {
  Histogram h(1.0, 10.0, 8);
  h.add(std::numeric_limits<double>::max());
  h.add(std::numeric_limits<double>::denorm_min());
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.nonfinite(), 0u);
  for (double q : {0.0, 0.5, 1.0}) {
    EXPECT_TRUE(std::isfinite(h.quantile(q)));
  }
}

TEST(HistogramTest, MergeCarriesNonFiniteCount) {
  Histogram a(1.0, 10.0, 8), b(1.0, 10.0, 8);
  a.add(std::numeric_limits<double>::quiet_NaN());
  b.add(std::numeric_limits<double>::infinity());
  b.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.nonfinite(), 2u);
}

TEST(HistogramTest, SummaryMentionsQuantiles) {
  Histogram h;
  h.add(1.0);
  h.add(2.0);
  const std::string s = h.summary("ms");
  EXPECT_NE(s.find("n=2"), std::string::npos);
  EXPECT_NE(s.find("p95"), std::string::npos);
  EXPECT_NE(s.find("ms"), std::string::npos);
}

}  // namespace
}  // namespace iq::stats
