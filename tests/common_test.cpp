// Tests for iq/common: time arithmetic, RNG determinism, byte codec.

#include <gtest/gtest.h>

#include <algorithm>

#include "iq/common/bytes.hpp"
#include "iq/common/inline_fn.hpp"
#include "iq/common/log.hpp"
#include "iq/common/rng.hpp"
#include "iq/common/time.hpp"

namespace iq {
namespace {

// ------------------------------------------------------------- Duration ---

TEST(DurationTest, FactoryUnits) {
  EXPECT_EQ(Duration::nanos(5).ns(), 5);
  EXPECT_EQ(Duration::micros(5).ns(), 5'000);
  EXPECT_EQ(Duration::millis(5).ns(), 5'000'000);
  EXPECT_EQ(Duration::seconds(5).ns(), 5'000'000'000);
}

TEST(DurationTest, FromSecondsRounds) {
  EXPECT_EQ(Duration::from_seconds(1.5).ns(), 1'500'000'000);
  EXPECT_EQ(Duration::from_seconds(0.0000000015).ns(), 2);  // rounds
}

TEST(DurationTest, Arithmetic) {
  const Duration a = Duration::millis(30);
  const Duration b = Duration::millis(10);
  EXPECT_EQ((a + b).ms(), 40);
  EXPECT_EQ((a - b).ms(), 20);
  EXPECT_EQ((b - a).ms(), -20);
  EXPECT_TRUE((b - a).is_negative());
  EXPECT_EQ((a * 3).ms(), 90);
  EXPECT_EQ((a / 3).ms(), 10);
}

TEST(DurationTest, Scaled) {
  EXPECT_EQ(Duration::millis(100).scaled(0.5).ms(), 50);
  EXPECT_EQ(Duration::millis(100).scaled(1.25).ms(), 125);
}

TEST(DurationTest, Comparisons) {
  EXPECT_LT(Duration::millis(1), Duration::millis(2));
  EXPECT_EQ(Duration::seconds(1), Duration::millis(1000));
  EXPECT_GE(Duration::max(), Duration::seconds(1'000'000));
}

TEST(DurationTest, StrPicksUnit) {
  EXPECT_EQ(Duration::seconds(2).str(), "2s");
  EXPECT_EQ(Duration::millis(30).str(), "30ms");
  EXPECT_EQ(Duration::micros(7).str(), "7us");
  EXPECT_EQ(Duration::nanos(3).str(), "3ns");
}

// ------------------------------------------------------------ TimePoint ---

TEST(TimePointTest, OffsetAndDifference) {
  const TimePoint t0 = TimePoint::zero();
  const TimePoint t1 = t0 + Duration::millis(250);
  EXPECT_EQ((t1 - t0).ms(), 250);
  EXPECT_EQ((t1 - Duration::millis(50)).ns(), Duration::millis(200).ns());
  EXPECT_LT(t0, t1);
}

TEST(TimePointTest, ToSeconds) {
  EXPECT_DOUBLE_EQ((TimePoint::zero() + Duration::millis(1500)).to_seconds(),
                   1.5);
}

// ------------------------------------------------------- transmission ----

TEST(TransmissionTimeTest, KnownValues) {
  // 1500 bytes over 12 Mb/s = 1 ms.
  EXPECT_EQ(transmission_time(1500, 12'000'000).ns(), 1'000'000);
  // 1 byte over 8 bps = 1 s.
  EXPECT_EQ(transmission_time(1, 8).ns(), 1'000'000'000);
}

TEST(TransmissionTimeTest, BytesInInverts) {
  const Duration d = transmission_time(14000, 20'000'000);
  EXPECT_EQ(bytes_in(d, 20'000'000), 14000);
}

// ------------------------------------------------------------------ Rng ---

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1'000'000) == b.uniform_int(0, 1'000'000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntBoundsInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ForkIndependent) {
  Rng parent(21);
  Rng child = parent.fork();
  // The child stream should not reproduce the parent's subsequent values.
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (parent.uniform_int(0, 1 << 30) == child.uniform_int(0, 1 << 30)) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

// ------------------------------------------------------------------ log ---

TEST(LogTest, LevelGatesMessages) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  // Discarded below the level — must not crash and must not format.
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return std::string("x");
  };
  log(LogLevel::Debug, "msg ", expensive());
  // Arguments are evaluated by the caller (no lazy macro), but emission is
  // suppressed; the call above exists to pin that behaviour.
  EXPECT_EQ(evaluations, 1);
  set_log_level(original);
}

TEST(LogTest, LevelsOrdered) {
  EXPECT_LT(static_cast<int>(LogLevel::Trace), static_cast<int>(LogLevel::Debug));
  EXPECT_LT(static_cast<int>(LogLevel::Debug), static_cast<int>(LogLevel::Info));
  EXPECT_LT(static_cast<int>(LogLevel::Info), static_cast<int>(LogLevel::Warn));
  EXPECT_LT(static_cast<int>(LogLevel::Warn), static_cast<int>(LogLevel::Error));
}

// ---------------------------------------------------------------- Bytes ---

TEST(BytesTest, RoundTripScalars) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.14159);

  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(*r.f64(), 3.14159);
  EXPECT_TRUE(r.exhausted());
}

TEST(BytesTest, BigEndianLayout) {
  ByteWriter w;
  w.u16(0x0102);
  EXPECT_EQ(w.data()[0], 0x01);
  EXPECT_EQ(w.data()[1], 0x02);
}

TEST(BytesTest, RoundTripStrings) {
  ByteWriter w;
  w.str16("hello");
  w.str16("");
  Bytes blob{1, 2, 3};
  w.bytes16(blob);

  ByteReader r(w.data());
  EXPECT_EQ(r.str16(), "hello");
  EXPECT_EQ(r.str16(), "");
  EXPECT_EQ(r.bytes16(), blob);
}

TEST(BytesTest, TruncationReturnsNullopt) {
  ByteWriter w;
  w.u32(7);
  Bytes data = w.take();
  data.pop_back();
  ByteReader r(data);
  EXPECT_FALSE(r.u32().has_value());
}

TEST(BytesTest, TruncatedStringLength) {
  ByteWriter w;
  w.u16(100);  // claims 100 bytes follow
  w.u8('x');
  ByteReader r(w.data());
  EXPECT_FALSE(r.str16().has_value());
}

TEST(BytesTest, ReaderTracksRemaining) {
  ByteWriter w;
  w.u32(1);
  w.u32(2);
  ByteReader r(w.data());
  EXPECT_EQ(r.remaining(), 8u);
  r.u32();
  EXPECT_EQ(r.remaining(), 4u);
  r.u32();
  EXPECT_TRUE(r.exhausted());
}

TEST(InlineFnTest, SmallCapturesStayInline) {
  int x = 41;
  InlineFn<int()> f([&x] { return x + 1; });
  EXPECT_TRUE(static_cast<bool>(f));
  EXPECT_TRUE(f.is_inline());
  EXPECT_EQ(f(), 42);
}

TEST(InlineFnTest, LargeCapturesFallBackToHeap) {
  struct Big {
    char bytes[256] = {};
  } big;
  big.bytes[0] = 9;
  InlineFn<int()> f([big] { return big.bytes[0]; });
  EXPECT_FALSE(f.is_inline());
  EXPECT_EQ(f(), 9);
}

TEST(InlineFnTest, MoveTransfersOwnership) {
  auto counter = std::make_shared<int>(0);
  InlineFn<void()> a([counter] { ++*counter; });
  InlineFn<void()> b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  b();
  EXPECT_EQ(*counter, 1);
  InlineFn<void()> c;
  c = std::move(b);
  c();
  EXPECT_EQ(*counter, 2);
}

TEST(InlineFnTest, MoveOnlyCapturesWork) {
  auto p = std::make_unique<int>(5);
  InlineFn<int()> f([p = std::move(p)] { return *p; });
  EXPECT_EQ(f(), 5);
}

TEST(InlineFnTest, DestructorRunsCaptureDestructors) {
  auto token = std::make_shared<int>(0);
  EXPECT_EQ(token.use_count(), 1);
  {
    InlineFn<void()> f([token] {});
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(InlineFnTest, ResetClearsCallable) {
  InlineFn<void()> f([] {});
  EXPECT_TRUE(static_cast<bool>(f));
  f.reset();
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InlineFnTest, ArgumentsForwarded) {
  InlineFn<int(int, int)> add([](int a, int b) { return a + b; });
  EXPECT_EQ(add(2, 3), 5);
}

// ------------------------------------------------------------------ CRC ---

TEST(Crc32Test, CheckVector) {
  // The standard CRC-32/ISO-HDLC check value: crc of "123456789". Pins the
  // polynomial, reflection, init and final XOR against any reimplementation.
  const std::uint8_t msg[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(BytesView(msg, sizeof(msg))), 0xCBF43926u);
  EXPECT_EQ(crc32(BytesView()), 0u);
}

TEST(Crc32Test, Slice8MatchesBytewiseOracle) {
  Rng rng(11);
  for (int round = 0; round < 50; ++round) {
    Bytes buf(static_cast<std::size_t>(rng.uniform_int(0, 512)));
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    EXPECT_EQ(crc32_update(kCrc32Init, buf),
              crc32_update_bytewise(kCrc32Init, buf));
  }
}

TEST(Crc32Test, StreamingIsChunkBoundaryInvariant) {
  Rng rng(13);
  Bytes buf(1458);  // an MTU-sized datagram, the codec's shape
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  const std::uint32_t whole = crc32(buf);
  for (int round = 0; round < 30; ++round) {
    std::uint32_t s = kCrc32Init;
    std::size_t pos = 0;
    while (pos < buf.size()) {
      // Odd-sized chunks exercise the slice-by-8 head/tail handling.
      const auto n = std::min<std::size_t>(
          buf.size() - pos,
          static_cast<std::size_t>(rng.uniform_int(1, 23)));
      s = crc32_update(s, BytesView(buf.data() + pos, n));
      pos += n;
    }
    EXPECT_EQ(s ^ kCrc32Init, whole);
  }
}

// ----------------------------------------------------- ByteWriter arena ---

TEST(ByteWriterTest, ClearReusesStorageAndViewTracksSize) {
  ByteWriter w;
  w.u32(0xdeadbeef);
  EXPECT_EQ(w.size(), 4u);
  const std::uint8_t* p = w.view().data();
  w.clear();
  EXPECT_EQ(w.size(), 0u);
  w.u32(0x01020304);
  EXPECT_EQ(w.view().data(), p);  // same storage, no reallocation
  EXPECT_EQ(w.view()[0], 0x01);
  EXPECT_EQ(w.view()[3], 0x04);
}

TEST(ByteWriterTest, PokeU32OverwritesInPlace) {
  ByteWriter w;
  w.u32(0);
  w.u32(0xffffffff);
  w.poke_u32(0, 0x0a0b0c0d);
  const BytesView v = w.view();
  EXPECT_EQ(v[0], 0x0a);
  EXPECT_EQ(v[3], 0x0d);
  EXPECT_EQ(v[4], 0xff);  // later bytes untouched
}

TEST(ByteWriterTest, ZerosAreZeroEvenAfterDirtyReuse) {
  ByteWriter w;
  // Dirty the whole buffer with nonzero bytes...
  for (int i = 0; i < 64; ++i) w.u8(0xee);
  w.clear();
  // ...then write a shorter prefix and a zero run over the dirty region.
  w.u8(1);
  w.zeros(40);
  w.u8(2);
  const BytesView v = w.view();
  ASSERT_EQ(v.size(), 42u);
  EXPECT_EQ(v[0], 1u);
  for (std::size_t i = 1; i < 41; ++i) EXPECT_EQ(v[i], 0u) << i;
  EXPECT_EQ(v[41], 2u);
}

TEST(ByteWriterTest, ZerosSpanningCleanTailStaysZero) {
  ByteWriter w;
  w.u8(0xaa);
  w.zeros(100);  // mostly beyond any dirty watermark on first use
  w.clear();
  w.u8(0xbb);
  w.zeros(200);  // longer run: part previously-clean, part fresh growth
  const BytesView v = w.view();
  ASSERT_EQ(v.size(), 201u);
  for (std::size_t i = 1; i < v.size(); ++i) EXPECT_EQ(v[i], 0u) << i;
}

TEST(ByteWriterTest, TakeReturnsExactBytesAndResets) {
  ByteWriter w;
  w.u16(0x1234);
  w.zeros(3);
  Bytes out = w.take();
  EXPECT_EQ(out, (Bytes{0x12, 0x34, 0, 0, 0}));
  EXPECT_EQ(w.size(), 0u);
  // The writer is reusable after take(), including the zero invariant.
  w.u8(0x77);
  w.zeros(2);
  EXPECT_EQ(Bytes(w.view().begin(), w.view().end()), (Bytes{0x77, 0, 0}));
}

TEST(ByteReaderTest, ViewBorrowsWithoutCopy) {
  ByteWriter w;
  w.u8(1);
  w.raw(Bytes{2, 3, 4});
  const BytesView all = w.view();
  ByteReader r(all);
  ASSERT_TRUE(r.u8().has_value());
  auto v = r.view(3);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->data(), all.data() + 1);  // aliases, does not copy
  EXPECT_EQ((*v)[2], 4u);
  EXPECT_FALSE(r.view(1).has_value());  // exhausted
}

}  // namespace
}  // namespace iq
