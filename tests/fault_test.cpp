// Fault subsystem tests: the Gilbert–Elliott chain, FaultPlan construction
// and reproducible random generation, and the FaultInjector driving a live
// net::Link through blackouts, bursts, corruption, duplication and
// bandwidth/delay changes.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "iq/fault/injector.hpp"
#include "iq/fault/loss_model.hpp"
#include "iq/fault/plan.hpp"
#include "iq/net/network.hpp"
#include "iq/net/sinks.hpp"
#include "iq/sim/simulator.hpp"

namespace iq::fault {
namespace {

// ------------------------------------------------------- Gilbert–Elliott --

TEST(GilbertElliottTest, StationaryLossRatioFormula) {
  GilbertElliottConfig cfg;
  cfg.p_good_to_bad = 0.1;
  cfg.p_bad_to_good = 0.4;
  cfg.loss_good = 0.0;
  cfg.loss_bad = 0.5;
  // pi_bad = 0.1 / 0.5 = 0.2; ratio = 0.2 * 0.5 = 0.1.
  EXPECT_NEAR(cfg.stationary_loss_ratio(), 0.1, 1e-12);
}

TEST(GilbertElliottTest, EmpiricalLossMatchesStationaryRatio) {
  GilbertElliottConfig cfg;
  cfg.p_good_to_bad = 0.02;
  cfg.p_bad_to_good = 0.25;
  cfg.loss_bad = 0.8;
  cfg.seed = 9;
  GilbertElliottModel model(cfg);
  const int kSteps = 200'000;
  for (int i = 0; i < kSteps; ++i) model.lose();
  const double empirical =
      static_cast<double>(model.losses()) / static_cast<double>(model.steps());
  EXPECT_NEAR(empirical, cfg.stationary_loss_ratio(), 0.01);
  EXPECT_GT(model.bursts_entered(), 100u);  // many distinct bad phases
}

TEST(GilbertElliottTest, SameSeedReplaysExactly) {
  GilbertElliottConfig cfg;
  cfg.seed = 123;
  GilbertElliottModel m1(cfg), m2(cfg);
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_EQ(m1.lose(), m2.lose()) << "diverged at step " << i;
  }
  EXPECT_EQ(m1.losses(), m2.losses());
  EXPECT_EQ(m1.bursts_entered(), m2.bursts_entered());
}

TEST(GilbertElliottTest, LossesClusterIntoBursts) {
  // With long bad phases and certain loss inside them, consecutive losses
  // must appear in runs much longer than i.i.d. loss would produce.
  GilbertElliottConfig cfg;
  cfg.p_good_to_bad = 0.01;
  cfg.p_bad_to_good = 0.1;  // mean burst length 10
  cfg.loss_bad = 1.0;
  cfg.seed = 5;
  GilbertElliottModel model(cfg);
  int longest_run = 0, run = 0;
  for (int i = 0; i < 50'000; ++i) {
    if (model.lose()) {
      longest_run = std::max(longest_run, ++run);
    } else {
      run = 0;
    }
  }
  EXPECT_GE(longest_run, 10);
}

// ------------------------------------------------------------- FaultPlan --

TEST(FaultPlanTest, ActionsKeptTimeOrdered) {
  FaultPlan plan;
  plan.corruption(Duration::seconds(30), 0.01)
      .blackout(Duration::seconds(10), Duration::seconds(2))
      .drop_probability(Duration::seconds(20), 0.1);
  ASSERT_EQ(plan.size(), 4u);  // blackout expands to on + off
  for (std::size_t i = 1; i < plan.actions().size(); ++i) {
    EXPECT_LE(plan.actions()[i - 1].at.ns(), plan.actions()[i].at.ns());
  }
  EXPECT_EQ(plan.horizon().ns(), Duration::seconds(30).ns());
}

TEST(FaultPlanTest, BlackoutExpandsToOnAndOff) {
  FaultPlan plan;
  plan.blackout(Duration::seconds(5), Duration::seconds(3), /*target=*/2);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.actions()[0].kind, FaultKind::Blackout);
  EXPECT_TRUE(plan.actions()[0].on);
  EXPECT_EQ(plan.actions()[0].target, 2);
  EXPECT_FALSE(plan.actions()[1].on);
  EXPECT_EQ(plan.actions()[1].at.ns(), Duration::seconds(8).ns());
}

TEST(FaultPlanTest, FlapAlternatesDownAndUp) {
  FaultPlan plan;
  plan.flap(Duration::seconds(1), Duration::millis(500), Duration::millis(250),
            /*cycles=*/3);
  ASSERT_EQ(plan.size(), 6u);
  bool expect_on = true;
  for (const FaultAction& a : plan.actions()) {
    EXPECT_EQ(a.kind, FaultKind::Blackout);
    EXPECT_EQ(a.on, expect_on);
    expect_on = !expect_on;
  }
}

TEST(FaultPlanTest, BurstLossExpandsToOnAndOff) {
  GilbertElliottConfig ge;
  ge.loss_bad = 0.9;
  FaultPlan plan;
  plan.burst_loss(Duration::seconds(2), Duration::seconds(4), ge);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.actions()[0].kind, FaultKind::BurstLossOn);
  EXPECT_DOUBLE_EQ(plan.actions()[0].burst.loss_bad, 0.9);
  EXPECT_EQ(plan.actions()[1].kind, FaultKind::BurstLossOff);
  EXPECT_EQ(plan.actions()[1].at.ns(), Duration::seconds(6).ns());
}

TEST(FaultPlanTest, RandomPlanIsReproducible) {
  RandomFaultProfile profile;
  profile.run_length = Duration::seconds(60);
  const FaultPlan p1 = FaultPlan::random(77, profile);
  const FaultPlan p2 = FaultPlan::random(77, profile);
  const FaultPlan p3 = FaultPlan::random(78, profile);
  EXPECT_FALSE(p1.empty());
  EXPECT_EQ(p1.describe(), p2.describe());
  EXPECT_NE(p1.describe(), p3.describe());
}

TEST(FaultPlanTest, RandomPlanStaysInsideRunWindow) {
  RandomFaultProfile profile;
  profile.run_length = Duration::seconds(100);
  profile.blackouts = 2;
  profile.bursts = 2;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const FaultPlan plan = FaultPlan::random(seed, profile);
    for (const FaultAction& a : plan.actions()) {
      EXPECT_GE(a.at.ns(), Duration::seconds(10).ns()) << a.describe();
      // Off-edges of a fault that starts near 90% may extend past it, but
      // never beyond the run itself.
      EXPECT_LE(a.at.ns(), profile.run_length.ns()) << a.describe();
    }
  }
}

// ---------------------------------------------------- injector over Link --

struct LinkRig {
  sim::Simulator sim;
  net::Network net{sim};
  std::vector<net::PacketPtr> received;
  net::CallbackSink sink{[this](net::PacketPtr p) {
    received.push_back(std::move(p));
  }};
  net::Link link;

  explicit LinkRig(net::LinkConfig cfg = {.rate_bps = 12'000'000,
                                          .propagation = Duration::millis(3),
                                          .queue_capacity_bytes = 1'000'000})
      : link(sim, "faulty", cfg, sink) {}

  void offer(int n, std::int64_t bytes = 1500) {
    for (int i = 0; i < n; ++i) {
      link.deliver(net.make_packet({0, 1}, {1, 1}, 1, bytes));
    }
  }
};

TEST(FaultInjectorTest, BlackoutWindowDropsThenRestores) {
  LinkRig rig;
  FaultInjector injector(rig.sim);
  const int target = injector.add_target(rig.link);
  FaultPlan plan;
  plan.blackout(Duration::millis(10), Duration::millis(100), target);
  injector.arm(plan);

  // 5 packets land inside the blackout window, 5 after it lifts.
  rig.sim.schedule_after(Duration::millis(20), [&] { rig.offer(5); });
  rig.sim.schedule_after(Duration::millis(200), [&] { rig.offer(5); });
  rig.sim.run();

  EXPECT_EQ(rig.link.blackout_drops(), 5u);
  EXPECT_EQ(rig.received.size(), 5u);
  EXPECT_EQ(injector.actions_scheduled(), 2u);
  EXPECT_EQ(injector.actions_applied(), 2u);
}

TEST(FaultInjectorTest, CorruptedPacketsAreDeliveredFlagged) {
  LinkRig rig;
  rig.link.set_corrupt_probability(1.0);
  rig.offer(10);
  rig.sim.run();
  ASSERT_EQ(rig.received.size(), 10u);
  for (const auto& p : rig.received) EXPECT_TRUE(p->corrupted);
  EXPECT_EQ(rig.link.corrupt_deliveries(), 10u);
  // Corruption consumes bandwidth: the link transmitted all ten.
  EXPECT_EQ(rig.link.transmitted(), 10u);
}

TEST(FaultInjectorTest, DuplicatesArriveTwiceAndClean) {
  LinkRig rig;
  rig.link.set_duplicate_probability(1.0);
  rig.offer(4);
  rig.sim.run();
  ASSERT_EQ(rig.received.size(), 8u);
  for (const auto& p : rig.received) EXPECT_FALSE(p->corrupted);
  EXPECT_EQ(rig.link.duplicates(), 4u);
}

TEST(FaultInjectorTest, BurstPhaseLosesClusteredPackets) {
  LinkRig rig;
  GilbertElliottConfig ge;
  ge.p_good_to_bad = 0.3;
  ge.p_bad_to_good = 0.2;
  ge.loss_bad = 1.0;
  ge.seed = 4;
  FaultInjector injector(rig.sim);
  FaultPlan plan;
  plan.burst_loss(Duration::millis(1), Duration::seconds(5), ge,
                  injector.add_target(rig.link));
  injector.arm(plan);
  rig.sim.schedule_after(Duration::millis(10), [&] { rig.offer(200); });
  rig.sim.run();
  EXPECT_GT(rig.link.burst_drops(), 20u);
  EXPECT_EQ(rig.received.size(), 200u - rig.link.burst_drops());
}

TEST(FaultInjectorTest, DelayChangeStretchesArrival) {
  LinkRig rig;  // 1500 B @ 12 Mb/s = 1 ms serialization + 3 ms propagation
  FaultInjector injector(rig.sim);
  FaultPlan plan;
  plan.delay_change(Duration::zero(), Duration::millis(10),
                    injector.add_target(rig.link));
  injector.arm(plan);
  rig.sim.schedule_after(Duration::millis(1), [&] { rig.offer(1); });
  rig.sim.run();
  ASSERT_EQ(rig.received.size(), 1u);
  EXPECT_EQ(rig.sim.now().ns(), Duration::millis(1 + 1 + 3 + 10).ns());
}

TEST(FaultInjectorTest, RateChangeSlowsSerialization) {
  LinkRig rig;
  FaultInjector injector(rig.sim);
  FaultPlan plan;
  // 12 Mb/s → 1.2 Mb/s: serialization of 1500 B goes from 1 ms to 10 ms.
  plan.rate_change(Duration::zero(), 1'200'000, injector.add_target(rig.link));
  injector.arm(plan);
  rig.sim.schedule_after(Duration::millis(1), [&] { rig.offer(1); });
  rig.sim.run();
  ASSERT_EQ(rig.received.size(), 1u);
  EXPECT_EQ(rig.sim.now().ns(), Duration::millis(1 + 10 + 3).ns());
}

TEST(FaultInjectorTest, DropProbabilityChangeLeavesSeededStreamIntact) {
  // Turning fault features on must not perturb the i.i.d. drop stream:
  // two identically-seeded links, one with corruption+duplication active,
  // must drop exactly the same packets.
  net::LinkConfig cfg{.rate_bps = 12'000'000,
                      .propagation = Duration::millis(3),
                      .queue_capacity_bytes = 1'000'000,
                      .drop_probability = 0.3,
                      .drop_seed = 11};
  LinkRig plain(cfg), faulted(cfg);
  faulted.link.set_corrupt_probability(0.5);
  faulted.link.set_duplicate_probability(0.5);
  plain.offer(300);
  faulted.offer(300);
  plain.sim.run();
  faulted.sim.run();
  EXPECT_EQ(plain.link.random_drops(), faulted.link.random_drops());
}

// ------------------------------------------- overlapping-fault precedence --

TEST(FaultInjectorTest, OverlappingBlackoutsStayDarkUntilLastOff) {
  // Windows [10,110]ms and [50,250]ms overlap: the first off-edge at 110ms
  // must NOT restore the link (the second window still holds it down).
  LinkRig rig;
  FaultInjector injector(rig.sim);
  const int target = injector.add_target(rig.link);
  FaultPlan plan;
  plan.blackout(Duration::millis(10), Duration::millis(100), target);
  plan.blackout(Duration::millis(50), Duration::millis(200), target);
  injector.arm(plan);

  // At 150ms — between the first off and the second off — still dark.
  rig.sim.schedule_after(Duration::millis(150), [&] { rig.offer(3); });
  // After 250ms both windows have closed: delivery resumes.
  rig.sim.schedule_after(Duration::millis(300), [&] { rig.offer(3); });
  rig.sim.run();

  EXPECT_EQ(rig.link.blackout_drops(), 3u);
  EXPECT_EQ(rig.received.size(), 3u);
  EXPECT_EQ(injector.blackout_depth(target), 0);
}

TEST(FaultInjectorTest, FlapOverlappingBlackoutCannotRestoreEarly) {
  // A flap cycling down/up inside a long blackout: each up-edge decrements
  // the nest depth but the outer window keeps the link dark throughout.
  LinkRig rig;
  FaultInjector injector(rig.sim);
  const int target = injector.add_target(rig.link);
  FaultPlan plan;
  plan.blackout(Duration::millis(10), Duration::millis(500), target);
  plan.flap(Duration::millis(100), Duration::millis(50), Duration::millis(50),
            /*cycles=*/3, target);
  injector.arm(plan);

  // 160ms is inside an "up" phase of the flap but the outer blackout holds.
  rig.sim.schedule_after(Duration::millis(160), [&] { rig.offer(2); });
  rig.sim.schedule_after(Duration::millis(600), [&] { rig.offer(2); });
  rig.sim.run();

  EXPECT_EQ(rig.link.blackout_drops(), 2u);
  EXPECT_EQ(rig.received.size(), 2u);
}

TEST(FaultInjectorTest, OverlappingBurstPhasesKeepChainUntilLastOff) {
  // Phase A [1,200]ms (lossless chain) and phase B [100,400]ms (certain
  // loss): A's off-edge at 200ms must not remove B's chain.
  LinkRig rig;
  FaultInjector injector(rig.sim);
  const int target = injector.add_target(rig.link);

  GilbertElliottConfig clean;  // never leaves Good, loses nothing
  clean.p_good_to_bad = 0.0;
  clean.loss_good = 0.0;
  GilbertElliottConfig lossy;  // always Bad, loses everything
  lossy.p_good_to_bad = 1.0;
  lossy.p_bad_to_good = 0.0;
  lossy.loss_bad = 1.0;

  FaultPlan plan;
  plan.burst_loss(Duration::millis(1), Duration::millis(199), clean, target);
  plan.burst_loss(Duration::millis(100), Duration::millis(300), lossy, target);
  injector.arm(plan);

  // 250ms: after A's off-edge, inside B — the lossy chain must still drop.
  rig.sim.schedule_after(Duration::millis(250), [&] { rig.offer(4); });
  // 500ms: after B's off-edge the chain is gone — delivery resumes.
  rig.sim.schedule_after(Duration::millis(500), [&] { rig.offer(4); });
  rig.sim.run();

  EXPECT_EQ(rig.link.burst_drops(), 4u);
  EXPECT_EQ(rig.received.size(), 4u);
  EXPECT_EQ(injector.burst_depth(target), 0);
}

TEST(FaultInjectorTest, StrayOffEdgesAreIgnored) {
  LinkRig rig;
  FaultInjector injector(rig.sim);
  const int target = injector.add_target(rig.link);
  FaultAction off;
  off.target = target;
  off.kind = FaultKind::Blackout;
  off.on = false;
  injector.apply(off);  // no matching on-edge: must not underflow
  FaultAction burst_off = off;
  burst_off.kind = FaultKind::BurstLossOff;
  injector.apply(burst_off);
  EXPECT_EQ(injector.blackout_depth(target), 0);
  EXPECT_EQ(injector.burst_depth(target), 0);

  rig.offer(3);
  rig.sim.run();
  EXPECT_EQ(rig.received.size(), 3u);
}

TEST(FaultInjectorTest, RateChangeDuringBlackoutPersistsAfterRestore) {
  // A bandwidth change scripted mid-blackout is level-triggered: it must be
  // in force when the blackout lifts.
  LinkRig rig;  // 12 Mb/s base: 1500 B = 1 ms serialization, 3 ms prop
  FaultInjector injector(rig.sim);
  const int target = injector.add_target(rig.link);
  FaultPlan plan;
  plan.blackout(Duration::millis(10), Duration::millis(100), target);
  plan.rate_change(Duration::millis(50), 1'200'000, target);  // mid-blackout
  injector.arm(plan);

  // Offer one packet well after restore: serialization must take 10 ms
  // (1.2 Mb/s), not 1 ms.
  rig.sim.schedule_after(Duration::millis(200), [&] { rig.offer(1); });
  rig.sim.run();
  ASSERT_EQ(rig.received.size(), 1u);
  EXPECT_EQ(rig.sim.now().ns(), Duration::millis(200 + 10 + 3).ns());
}

}  // namespace
}  // namespace iq::fault
