// Tests for the parking-lot topology and RUDP across multiple bottlenecks.

#include <gtest/gtest.h>

#include <memory>

#include "iq/net/parking_lot.hpp"
#include "iq/net/sinks.hpp"
#include "iq/rudp/connection.hpp"
#include "iq/wire/sim_wire.hpp"
#include "iq/workload/cbr_source.hpp"

namespace iq::net {
namespace {

TEST(ParkingLotTest, EndToEndPathCrossesAllBottlenecks) {
  sim::Simulator sim;
  Network net(sim);
  ParkingLot pl(net, {.hops = 3});
  CountingSink sink;
  pl.dst().bind(7, &sink);
  pl.src().send(
      net.make_packet({pl.src().id(), 7}, {pl.dst().id(), 7}, 1, 1000));
  sim.run();
  EXPECT_EQ(sink.packets(), 1u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(pl.bottleneck(i).transmitted(), 1u) << "hop " << i;
  }
}

TEST(ParkingLotTest, CrossFlowTouchesOnlyItsHop) {
  sim::Simulator sim;
  Network net(sim);
  ParkingLot pl(net, {.hops = 3});
  CountingSink sink;
  pl.cross_dst(1).bind(7, &sink);
  pl.cross_src(1).send(net.make_packet({pl.cross_src(1).id(), 7},
                                       {pl.cross_dst(1).id(), 7}, 2, 1000));
  sim.run();
  EXPECT_EQ(sink.packets(), 1u);
  EXPECT_EQ(pl.bottleneck(0).transmitted(), 0u);
  EXPECT_EQ(pl.bottleneck(1).transmitted(), 1u);
  EXPECT_EQ(pl.bottleneck(2).transmitted(), 0u);
}

TEST(ParkingLotTest, EndToEndDelaySumsHops) {
  sim::Simulator sim;
  Network net(sim);
  ParkingLotConfig cfg{.hops = 4};
  cfg.hop_delay = Duration::millis(10);
  cfg.access_delay = Duration::millis(1);
  ParkingLot pl(net, cfg);
  TimePoint arrival;
  CallbackSink capture([&](PacketPtr) { arrival = sim.now(); });
  pl.dst().bind(7, &capture);
  pl.src().send(
      net.make_packet({pl.src().id(), 7}, {pl.dst().id(), 7}, 1, 100));
  sim.run();
  // 4 x 10 ms hops + 2 x 1 ms access (+ tiny serialization).
  EXPECT_GE((arrival - TimePoint::zero()).ms(), 42);
  EXPECT_LE((arrival - TimePoint::zero()).ms(), 44);
}

TEST(ParkingLotTest, RudpReliableAcrossCongestedChain) {
  sim::Simulator sim;
  Network net(sim);
  ParkingLot pl(net, {.hops = 2});

  // Congest each hop with 19 Mb/s of UDP.
  CountingSink xs0, xs1;
  pl.cross_dst(0).bind(9, &xs0);
  pl.cross_dst(1).bind(9, &xs1);
  workload::CbrConfig cc;
  cc.rate_bps = 19'000'000;
  cc.src_port = 9;
  cc.dst_port = 9;
  workload::CbrSource cross0(net, pl.cross_src(0), pl.cross_dst(0), cc);
  workload::CbrSource cross1(net, pl.cross_src(1), pl.cross_dst(1), cc);
  cross0.start();
  cross1.start();

  wire::SimWire wsnd(net, {pl.src().id(), 21}, {pl.dst().id(), 21}, 1);
  wire::SimWire wrcv(net, {pl.dst().id(), 21}, {pl.src().id(), 21}, 1);
  rudp::RudpConnection snd(wsnd, {}, rudp::Role::Client);
  rudp::RudpConnection rcv(wrcv, {}, rudp::Role::Server);
  int delivered = 0;
  rcv.set_message_handler([&](const rudp::DeliveredMessage&) { ++delivered; });
  rcv.listen();
  snd.connect();
  sim.run_until(TimePoint::zero() + Duration::seconds(2));
  ASSERT_TRUE(snd.established());
  for (int i = 0; i < 60; ++i) snd.send_message({.bytes = 5000});
  sim.run_until(TimePoint::zero() + Duration::seconds(120));
  EXPECT_EQ(delivered, 60);
  EXPECT_GT(snd.stats().segments_retransmitted, 0u);
}

}  // namespace
}  // namespace iq::net
