// Integration test: the RUDP engine over real UDP sockets on loopback.
//
// Includes the regression tests for the three event-loop/send-path defects
// fixed in the epoll rewrite (docs/WIRE.md): fd-dispatch invalidation when
// callbacks mutate the watch list, the >=1 ms poll timeout floor, and
// silent kernel send drops.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <vector>

#include "iq/rudp/connection.hpp"
#include "iq/wire/udp_wire.hpp"

namespace iq::wire {
namespace {

std::uint16_t pick_port(int offset) {
  // Ports unlikely to collide across test shards.
  return static_cast<std::uint16_t>(39200 + offset);
}

double elapsed_ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

TEST(RealtimeLoopTest, TimersFireInOrder) {
  RealtimeLoop loop;
  std::vector<int> order;
  loop.schedule_after(Duration::millis(30), [&] { order.push_back(2); });
  loop.schedule_after(Duration::millis(10), [&] { order.push_back(1); });
  loop.run_until([&] { return order.size() == 2; }, Duration::seconds(5));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(RealtimeLoopTest, CancelWorks) {
  RealtimeLoop loop;
  bool ran = false;
  auto id = loop.schedule_after(Duration::millis(10), [&] { ran = true; });
  EXPECT_TRUE(loop.cancel_event(id));
  loop.run_for(Duration::millis(50));
  EXPECT_FALSE(ran);
}

// Regression (poll-loop defect #2): a timer already due must fire without
// any forced sleep. The poll(2) predecessor floored every wait to 1 ms, so
// 50 rounds of schedule-at-now cost >= 50 ms; the timerfd loop passes a
// zero timeout when work is due and finishes in microseconds per round.
TEST(RealtimeLoopTest, DueTimerFiresWithoutForcedSleep) {
  RealtimeLoop loop;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 50; ++i) {
    bool fired = false;
    loop.schedule_at(loop.now(), [&] { fired = true; });
    ASSERT_TRUE(loop.run_until([&] { return fired; }, Duration::seconds(5)));
  }
  EXPECT_LT(elapsed_ms_since(t0), 25.0);
}

// Regression (poll-loop defect #2, other half): sub-millisecond waits must
// sleep their actual duration, not a 1 ms floor. 40 chained 200 µs timers
// take ~8 ms here; the old loop took >= 40 ms.
TEST(RealtimeLoopTest, SubMillisecondTimersAreNotFlooredToOneMs) {
  RealtimeLoop loop;
  constexpr int kSteps = 40;
  int fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < kSteps)
      loop.schedule_after(Duration::micros(200), [&] { chain(); });
  };
  const auto t0 = std::chrono::steady_clock::now();
  loop.schedule_after(Duration::micros(200), [&] { chain(); });
  ASSERT_TRUE(loop.run_until([&] { return fired == kSteps; },
                             Duration::seconds(5)));
  const double ms = elapsed_ms_since(t0);
  EXPECT_GE(ms, 7.0);   // timers did sleep, not spin
  EXPECT_LT(ms, 32.0);  // and were not floored to 1 ms each
}

// Regression (poll-loop defect #1): readiness callbacks may mutate the
// watch list, including removing fds that are ready in the same epoll
// round. The old loop dispatched by index into a snapshot of the pollfd
// array and misdispatched (or crashed) after such a removal; the epoll loop
// resolves each event against the live watch list and skips dead watchers.
TEST(RealtimeLoopTest, RemoveFdDuringDispatchIsSafe) {
  RealtimeLoop loop;
  int pairs[3][2];
  for (auto& p : pairs)
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_DGRAM, 0, p), 0);

  int fired = 0;
  int late_fired = 0;
  int extra[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_DGRAM, 0, extra), 0);
  for (auto& p : pairs) {
    loop.add_fd(p[0], [&, fd = p[0]] {
      char c;
      (void)::read(fd, &c, 1);
      ++fired;
      // Tear down every watcher mid-dispatch, then grow the watch list —
      // both mutations the old loop could not survive.
      for (auto& q : pairs) loop.remove_fd(q[0]);
      loop.add_fd(extra[0], [&, efd = extra[0]] {
        char e;
        (void)::read(efd, &e, 1);
        ++late_fired;
      });
    });
  }
  for (auto& p : pairs) ASSERT_EQ(::write(p[1], "x", 1), 1);
  loop.run_for(Duration::millis(20));
  // All three were ready, but the first callback removed the other two:
  // exactly one may run.
  EXPECT_EQ(fired, 1);

  // The watcher added mid-dispatch is live.
  ASSERT_EQ(::write(extra[1], "y", 1), 1);
  ASSERT_TRUE(loop.run_until([&] { return late_fired == 1; },
                             Duration::seconds(5)));
  loop.remove_fd(extra[0]);
  for (auto& p : pairs) {
    ::close(p[0]);
    ::close(p[1]);
  }
  ::close(extra[0]);
  ::close(extra[1]);
}

TEST(RealtimeLoopTest, BeforeWaitHooksRunEveryIterationUntilRemoved) {
  RealtimeLoop loop;
  int runs = 0;
  auto id = loop.add_before_wait([&] { ++runs; });
  loop.poll_once(Duration::zero());
  loop.poll_once(Duration::zero());
  EXPECT_GE(runs, 2);
  const int before = runs;
  loop.remove_before_wait(id);
  loop.poll_once(Duration::zero());
  EXPECT_EQ(runs, before);
}

TEST(UdpWireTest, LoopbackTransfer) {
  RealtimeLoop loop;
  UdpWire wire_a(loop, pick_port(0), pick_port(1));
  UdpWire wire_b(loop, pick_port(1), pick_port(0));

  rudp::RudpConfig cfg;
  rudp::RudpConnection client(wire_a, cfg, rudp::Role::Client);
  rudp::RudpConnection server(wire_b, cfg, rudp::Role::Server);

  std::vector<rudp::DeliveredMessage> delivered;
  server.set_message_handler(
      [&](const rudp::DeliveredMessage& m) { delivered.push_back(m); });
  server.listen();
  client.connect();

  ASSERT_TRUE(loop.run_until([&] { return client.established(); },
                             Duration::seconds(10)));

  for (int i = 0; i < 20; ++i) {
    client.send_message({.bytes = 10'000});  // 8 fragments each
  }
  ASSERT_TRUE(loop.run_until([&] { return delivered.size() == 20; },
                             Duration::seconds(30)));
  for (const auto& m : delivered) EXPECT_EQ(m.bytes, 10'000);
  EXPECT_GT(wire_a.datagrams_sent(), 160u);
  EXPECT_EQ(wire_a.decode_failures(), 0u);
}

TEST(UdpWireTest, AttrsSurviveRealSerialization) {
  RealtimeLoop loop;
  UdpWire wire_a(loop, pick_port(2), pick_port(3));
  UdpWire wire_b(loop, pick_port(3), pick_port(2));

  rudp::RudpConfig cfg;
  rudp::RudpConnection client(wire_a, cfg, rudp::Role::Client);
  rudp::RudpConnection server(wire_b, cfg, rudp::Role::Server);

  std::vector<rudp::DeliveredMessage> delivered;
  server.set_message_handler(
      [&](const rudp::DeliveredMessage& m) { delivered.push_back(m); });
  server.listen();
  client.connect();
  ASSERT_TRUE(loop.run_until([&] { return client.established(); },
                             Duration::seconds(10)));

  rudp::MessageSpec spec;
  spec.bytes = 900;
  spec.attrs.set("ADAPT_PKTSIZE", 0.3);
  spec.attrs.set("label", "frame-7");
  client.send_message(spec);
  ASSERT_TRUE(loop.run_until([&] { return delivered.size() == 1; },
                             Duration::seconds(10)));
  EXPECT_EQ(delivered[0].attrs.get_double("ADAPT_PKTSIZE"), 0.3);
  EXPECT_EQ(delivered[0].attrs.get_string("label"), "frame-7");
}

// Regression (send-path defect #3): a datagram the kernel refuses must not
// vanish silently. An encoded segment above the UDP payload limit fails
// sendmmsg with EMSGSIZE deterministically; the wire counts it and the
// drop handler propagates it into RudpStats::sends_dropped.
TEST(UdpWireTest, RefusedSendIsCountedAndReachesRudpStats) {
  RealtimeLoop loop;
  UdpWire wire(loop, pick_port(4), pick_port(5));
  rudp::RudpConfig cfg;
  rudp::RudpConnection conn(wire, cfg, rudp::Role::Client);  // installs hook

  rudp::Segment seg;
  seg.type = rudp::SegmentType::Data;
  seg.seq = 1;
  seg.payload_bytes = 70'000;  // encodes past the 65507-byte UDP limit
  wire.send(seg);
  wire.flush_sends();

  EXPECT_EQ(wire.stats().sends_dropped, 1u);
  EXPECT_EQ(wire.stats().datagrams_sent, 0u);
  EXPECT_EQ(conn.stats().sends_dropped, 1u);
}

// A zero-length datagram is a valid UDP arrival, distinct from "socket
// drained": it must be counted, not fed to the decoder and not looped on.
TEST(UdpWireTest, ZeroLengthDatagramIsCountedNotDecoded) {
  RealtimeLoop loop;
  UdpWire wire(loop, pick_port(6), pick_port(7));

  // The wire's socket is connected, so the probe must source from the
  // remote port it expects.
  int probe = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in self{};
  self.sin_family = AF_INET;
  self.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  self.sin_port = htons(pick_port(7));
  ASSERT_EQ(::bind(probe, reinterpret_cast<sockaddr*>(&self), sizeof(self)),
            0);
  sockaddr_in dst{};
  dst.sin_family = AF_INET;
  dst.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  dst.sin_port = htons(pick_port(6));
  ASSERT_EQ(::sendto(probe, "", 0, 0, reinterpret_cast<sockaddr*>(&dst),
                     sizeof(dst)),
            0);
  ASSERT_TRUE(loop.run_until([&] { return wire.stats().empty_datagrams > 0; },
                             Duration::seconds(5)));
  EXPECT_EQ(wire.stats().empty_datagrams, 1u);
  EXPECT_EQ(wire.stats().decode_failures, 0u);
  EXPECT_EQ(wire.stats().datagrams_received, 0u);

  // Garbage from the same peer is a decode failure, not a checksum reject.
  ASSERT_EQ(::sendto(probe, "not-iq", 6, 0,
                     reinterpret_cast<sockaddr*>(&dst), sizeof(dst)),
            6);
  ASSERT_TRUE(loop.run_until([&] { return wire.stats().decode_failures > 0; },
                             Duration::seconds(5)));
  EXPECT_EQ(wire.stats().checksum_rejects, 0u);
  ::close(probe);
}

// Batching engages under load: a fixed-window blast queues many segments
// in one dispatch turn, so sendmmsg pushes multi-datagram batches and
// recvmmsg drains them in kind — far fewer syscalls than datagrams.
TEST(UdpWireTest, BurstTrafficBatchesSendsAndReceives) {
  RealtimeLoop loop;
  UdpWire wire_a(loop, pick_port(8), pick_port(9));
  UdpWire wire_b(loop, pick_port(9), pick_port(8));

  rudp::RudpConfig cfg;
  cfg.cc_kind = rudp::CcKind::Fixed;
  cfg.fixed_cwnd = 64.0;
  rudp::RudpConnection client(wire_a, cfg, rudp::Role::Client);
  rudp::RudpConnection server(wire_b, cfg, rudp::Role::Server);

  std::vector<rudp::DeliveredMessage> delivered;
  server.set_message_handler(
      [&](const rudp::DeliveredMessage& m) { delivered.push_back(m); });
  server.listen();
  client.connect();
  ASSERT_TRUE(loop.run_until([&] { return client.established(); },
                             Duration::seconds(10)));
  for (int i = 0; i < 20; ++i) client.send_message({.bytes = 10'000});
  ASSERT_TRUE(loop.run_until([&] { return delivered.size() == 20; },
                             Duration::seconds(30)));

  EXPECT_GT(wire_a.stats().max_send_batch, 1u);
  EXPECT_GT(wire_b.stats().max_recv_batch, 1u);
  // Batching amortized syscalls: strictly fewer batches than datagrams.
  EXPECT_LT(wire_a.stats().send_batches, wire_a.stats().datagrams_sent);
  EXPECT_LT(wire_b.stats().recv_batches, wire_b.stats().datagrams_received);
}

// Fault-matrix row over the real link: seeded userspace rx impairment on
// the receiver endpoint. The transfer still completes (retransmissions
// recover every drop) and the drops are attributed to impairment, not to
// decode/checksum failures.
TEST(UdpWireTest, ImpairedLoopbackStillDeliversEverything) {
  RealtimeLoop loop;
  UdpWire wire_a(loop, pick_port(10), pick_port(11));
  UdpWireConfig impaired;
  impaired.rx_drop = 0.08;
  impaired.impairment_seed = 7;
  UdpWire wire_b(loop, pick_port(11), pick_port(10), impaired);

  rudp::RudpConfig cfg;
  rudp::RudpConnection client(wire_a, cfg, rudp::Role::Client);
  rudp::RudpConnection server(wire_b, cfg, rudp::Role::Server);

  std::vector<rudp::DeliveredMessage> delivered;
  server.set_message_handler(
      [&](const rudp::DeliveredMessage& m) { delivered.push_back(m); });
  server.listen();
  client.connect();
  ASSERT_TRUE(loop.run_until([&] { return client.established(); },
                             Duration::seconds(10)));
  for (int i = 0; i < 20; ++i) client.send_message({.bytes = 10'000});
  ASSERT_TRUE(loop.run_until([&] { return delivered.size() == 20; },
                             Duration::seconds(60)));
  for (const auto& m : delivered) EXPECT_EQ(m.bytes, 10'000);

  EXPECT_GT(wire_b.stats().impaired_rx_drops, 0u);
  EXPECT_EQ(wire_b.stats().decode_failures, 0u);
  EXPECT_EQ(wire_b.stats().checksum_rejects, 0u);
}

}  // namespace
}  // namespace iq::wire
