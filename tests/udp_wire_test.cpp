// Integration test: the RUDP engine over real UDP sockets on loopback.

#include <gtest/gtest.h>

#include <vector>

#include "iq/rudp/connection.hpp"
#include "iq/wire/udp_wire.hpp"

namespace iq::wire {
namespace {

std::uint16_t pick_port(int offset) {
  // Ports unlikely to collide across test shards.
  return static_cast<std::uint16_t>(39200 + offset);
}

TEST(RealtimeLoopTest, TimersFireInOrder) {
  RealtimeLoop loop;
  std::vector<int> order;
  loop.schedule_after(Duration::millis(30), [&] { order.push_back(2); });
  loop.schedule_after(Duration::millis(10), [&] { order.push_back(1); });
  loop.run_until([&] { return order.size() == 2; }, Duration::seconds(5));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(RealtimeLoopTest, CancelWorks) {
  RealtimeLoop loop;
  bool ran = false;
  auto id = loop.schedule_after(Duration::millis(10), [&] { ran = true; });
  EXPECT_TRUE(loop.cancel_event(id));
  loop.run_for(Duration::millis(50));
  EXPECT_FALSE(ran);
}

TEST(UdpWireTest, LoopbackTransfer) {
  RealtimeLoop loop;
  UdpWire wire_a(loop, pick_port(0), pick_port(1));
  UdpWire wire_b(loop, pick_port(1), pick_port(0));

  rudp::RudpConfig cfg;
  rudp::RudpConnection client(wire_a, cfg, rudp::Role::Client);
  rudp::RudpConnection server(wire_b, cfg, rudp::Role::Server);

  std::vector<rudp::DeliveredMessage> delivered;
  server.set_message_handler(
      [&](const rudp::DeliveredMessage& m) { delivered.push_back(m); });
  server.listen();
  client.connect();

  ASSERT_TRUE(loop.run_until([&] { return client.established(); },
                             Duration::seconds(10)));

  for (int i = 0; i < 20; ++i) {
    client.send_message({.bytes = 10'000});  // 8 fragments each
  }
  ASSERT_TRUE(loop.run_until([&] { return delivered.size() == 20; },
                             Duration::seconds(30)));
  for (const auto& m : delivered) EXPECT_EQ(m.bytes, 10'000);
  EXPECT_GT(wire_a.datagrams_sent(), 160u);
  EXPECT_EQ(wire_a.decode_failures(), 0u);
}

TEST(UdpWireTest, AttrsSurviveRealSerialization) {
  RealtimeLoop loop;
  UdpWire wire_a(loop, pick_port(2), pick_port(3));
  UdpWire wire_b(loop, pick_port(3), pick_port(2));

  rudp::RudpConfig cfg;
  rudp::RudpConnection client(wire_a, cfg, rudp::Role::Client);
  rudp::RudpConnection server(wire_b, cfg, rudp::Role::Server);

  std::vector<rudp::DeliveredMessage> delivered;
  server.set_message_handler(
      [&](const rudp::DeliveredMessage& m) { delivered.push_back(m); });
  server.listen();
  client.connect();
  ASSERT_TRUE(loop.run_until([&] { return client.established(); },
                             Duration::seconds(10)));

  rudp::MessageSpec spec;
  spec.bytes = 900;
  spec.attrs.set("ADAPT_PKTSIZE", 0.3);
  spec.attrs.set("label", "frame-7");
  client.send_message(spec);
  ASSERT_TRUE(loop.run_until([&] { return delivered.size() == 1; },
                             Duration::seconds(10)));
  EXPECT_EQ(delivered[0].attrs.get_double("ADAPT_PKTSIZE"), 0.3);
  EXPECT_EQ(delivered[0].attrs.get_string("label"), "frame-7");
}

}  // namespace
}  // namespace iq::wire
