// Wire-codec tests: exact round trips for every segment type, randomized
// property round trips, malformed-input rejection.

#include <gtest/gtest.h>

#include <algorithm>

#include "iq/common/rng.hpp"
#include "iq/rudp/codec.hpp"

namespace iq::rudp {
namespace {

Segment data_segment() {
  Segment s;
  s.type = SegmentType::Data;
  s.conn_id = 7;
  s.seq = 1234;
  s.msg_id = 55;
  s.frag_index = 2;
  s.frag_count = 5;
  s.marked = false;
  s.payload_bytes = 100;
  s.cum_ack = 77;
  s.ts_us = 999999;
  return s;
}

void expect_equal(const Segment& a, const Segment& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.conn_id, b.conn_id);
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.msg_id, b.msg_id);
  EXPECT_EQ(a.frag_index, b.frag_index);
  EXPECT_EQ(a.frag_count, b.frag_count);
  EXPECT_EQ(a.marked, b.marked);
  EXPECT_EQ(a.payload_bytes, b.payload_bytes);
  EXPECT_EQ(a.cum_ack, b.cum_ack);
  EXPECT_EQ(a.eacks, b.eacks);
  EXPECT_EQ(a.rwnd_packets, b.rwnd_packets);
  EXPECT_EQ(a.ts_us, b.ts_us);
  EXPECT_EQ(a.ts_echo_us, b.ts_echo_us);
  EXPECT_EQ(a.skipped, b.skipped);
  EXPECT_EQ(a.fec_protected, b.fec_protected);
  EXPECT_EQ(a.fec_group, b.fec_group);
  EXPECT_EQ(a.fec_members, b.fec_members);
  EXPECT_DOUBLE_EQ(a.recv_loss_tolerance, b.recv_loss_tolerance);
  EXPECT_EQ(a.attrs, b.attrs);
}

TEST(CodecTest, DataRoundTrip) {
  const Segment s = data_segment();
  auto decoded = decode_segment(encode_segment(s));
  ASSERT_TRUE(decoded.has_value());
  expect_equal(decoded->segment, s);
}

TEST(CodecTest, DataWithRealPayload) {
  Segment s = data_segment();
  s.payload_bytes = 5;
  Bytes payload{10, 20, 30, 40, 50};
  auto decoded = decode_segment(encode_segment(s, payload));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->payload, payload);
}

TEST(CodecTest, VirtualPayloadZeroFilled) {
  Segment s = data_segment();
  s.payload_bytes = 8;
  auto decoded = decode_segment(encode_segment(s));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->payload.size(), 8u);
  for (auto b : decoded->payload) EXPECT_EQ(b, 0);
}

TEST(CodecTest, AckWithEacksRoundTrip) {
  Segment s;
  s.type = SegmentType::Ack;
  s.conn_id = 3;
  s.cum_ack = 500;
  s.eacks = {502, 505, 510};
  s.rwnd_packets = 4000;
  s.ts_us = 123;
  s.ts_echo_us = 456;
  auto decoded = decode_segment(encode_segment(s));
  ASSERT_TRUE(decoded.has_value());
  expect_equal(decoded->segment, s);
}

TEST(CodecTest, AdvanceRoundTrip) {
  Segment s;
  s.type = SegmentType::Advance;
  s.conn_id = 3;
  s.skipped = {{100, 9, 3}, {101, 9, 3}, {150, 12, 1}};
  auto decoded = decode_segment(encode_segment(s));
  ASSERT_TRUE(decoded.has_value());
  expect_equal(decoded->segment, s);
}

TEST(CodecTest, SynAckCarriesTolerance) {
  Segment s;
  s.type = SegmentType::SynAck;
  s.conn_id = 1;
  s.recv_loss_tolerance = 0.4;
  auto decoded = decode_segment(encode_segment(s));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_DOUBLE_EQ(decoded->segment.recv_loss_tolerance, 0.4);
}

TEST(CodecTest, AttrsRideInBand) {
  Segment s = data_segment();
  s.attrs.set("ADAPT_PKTSIZE", 0.25);
  s.attrs.set("ADAPT_COND_ERATIO", 0.18);
  auto decoded = decode_segment(encode_segment(s));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->segment.attrs.get_double("ADAPT_PKTSIZE"), 0.25);
  EXPECT_EQ(decoded->segment.attrs.get_double("ADAPT_COND_ERATIO"), 0.18);
}

TEST(CodecTest, ControlTypesRoundTrip) {
  for (SegmentType t : {SegmentType::Syn, SegmentType::Nul, SegmentType::Rst}) {
    Segment s;
    s.type = t;
    s.conn_id = 9;
    s.cum_ack = 10;
    s.ts_us = 42;
    auto decoded = decode_segment(encode_segment(s));
    ASSERT_TRUE(decoded.has_value());
    expect_equal(decoded->segment, s);
  }
}

TEST(CodecTest, FecFlagRoundTrip) {
  Segment s = data_segment();
  s.fec_protected = true;
  auto decoded = decode_segment(encode_segment(s));
  ASSERT_TRUE(decoded.has_value());
  expect_equal(decoded->segment, s);
}

Segment parity_segment() {
  Segment s;
  s.type = SegmentType::Parity;
  s.conn_id = 7;
  s.fec_group = 31;
  s.payload_bytes = 900;
  s.cum_ack = 12;
  s.ts_us = 5555;
  FecMember m0{.seq = 100, .msg_id = 40, .frag_index = 0, .frag_count = 2,
               .payload_bytes = 900};
  m0.attrs.set("ADAPT_PKTSIZE", 0.25);
  FecMember m1{.seq = 101, .msg_id = 40, .frag_index = 1, .frag_count = 2,
               .payload_bytes = 350};
  s.fec_members = {m0, m1};
  return s;
}

TEST(CodecTest, ParityRoundTrip) {
  const Segment s = parity_segment();
  auto decoded = decode_segment(encode_segment(s));
  ASSERT_TRUE(decoded.has_value());
  expect_equal(decoded->segment, s);
  ASSERT_EQ(decoded->segment.fec_members.size(), 2u);
  EXPECT_EQ(decoded->segment.fec_members[0].attrs.get_double("ADAPT_PKTSIZE"),
            0.25);
}

TEST(CodecTest, ParityRejectsEveryTruncation) {
  const Bytes wire = encode_segment(parity_segment());
  for (std::size_t len = 0; len < wire.size(); ++len) {
    BytesView prefix(wire.data(), len);
    EXPECT_FALSE(decode_segment(prefix).has_value())
        << "accepted a " << len << "-byte prefix of a " << wire.size()
        << "-byte parity segment";
  }
}

TEST(CodecTest, RejectsBadMagic) {
  Bytes wire = encode_segment(data_segment());
  wire[0] ^= 0xff;
  EXPECT_FALSE(decode_segment(wire).has_value());
}

TEST(CodecTest, RejectsBadType) {
  Bytes wire = encode_segment(data_segment());
  wire[2] = 0x7f;
  // Re-seal so the corruption is not masked by the checksum: this test is
  // about the type-range validation specifically.
  seal_segment(wire);
  DecodeStatus status = DecodeStatus::Ok;
  EXPECT_FALSE(decode_segment(wire, &status).has_value());
  EXPECT_EQ(status, DecodeStatus::Malformed);
}

// ------------------------------------------------------------- checksum ---

TEST(CodecTest, ChecksumRejectsBitFlip) {
  Segment s = data_segment();
  s.payload_bytes = 4;
  const Bytes clean = encode_segment(s, Bytes{1, 2, 3, 4});
  // Flip one bit at every offset past the magic (a flipped magic reads as
  // BadMagic, not BadChecksum) — every single-bit error must be caught.
  for (std::size_t i = 2; i < clean.size(); ++i) {
    Bytes corrupted = clean;
    corrupted[i] ^= 0x01;
    DecodeStatus status = DecodeStatus::Ok;
    EXPECT_FALSE(decode_segment(corrupted, &status).has_value())
        << "bit flip at offset " << i << " accepted";
    EXPECT_EQ(status, DecodeStatus::BadChecksum) << "offset " << i;
  }
}

TEST(CodecTest, ChecksumFieldItselfIsProtected) {
  Bytes wire = encode_segment(data_segment());
  wire[kChecksumOffset] ^= 0xff;  // corrupt the stored checksum
  DecodeStatus status = DecodeStatus::Ok;
  EXPECT_FALSE(decode_segment(wire, &status).has_value());
  EXPECT_EQ(status, DecodeStatus::BadChecksum);
}

TEST(CodecTest, DecodeStatusDistinguishesFailureModes) {
  const Bytes wire = encode_segment(data_segment());
  {
    Bytes bad_magic = wire;
    bad_magic[0] ^= 0xff;
    DecodeStatus status = DecodeStatus::Ok;
    EXPECT_FALSE(decode_segment(bad_magic, &status).has_value());
    EXPECT_EQ(status, DecodeStatus::BadMagic);
  }
  {
    BytesView truncated(wire.data(), wire.size() - 1);
    DecodeStatus status = DecodeStatus::Ok;
    EXPECT_FALSE(decode_segment(truncated, &status).has_value());
    EXPECT_EQ(status, DecodeStatus::BadChecksum);
  }
  {
    DecodeStatus status = DecodeStatus::BadMagic;
    EXPECT_TRUE(decode_segment(wire, &status).has_value());
    EXPECT_EQ(status, DecodeStatus::Ok);
  }
}

TEST(CodecTest, SealAfterMutationRestoresDecodability) {
  Bytes wire = encode_segment(data_segment());
  wire[kChecksumOffset + 8] ^= 0x01;  // perturb a header field
  EXPECT_FALSE(decode_segment(wire).has_value());
  seal_segment(wire);
  EXPECT_TRUE(decode_segment(wire).has_value());
}

TEST(CodecTest, RejectsEveryTruncation) {
  Segment s = data_segment();
  s.attrs.set("k", 1.0);
  s.payload_bytes = 4;
  const Bytes wire = encode_segment(s);
  for (std::size_t len = 0; len < wire.size(); ++len) {
    BytesView prefix(wire.data(), len);
    EXPECT_FALSE(decode_segment(prefix).has_value())
        << "accepted a " << len << "-byte prefix of a " << wire.size()
        << "-byte segment";
  }
}

TEST(CodecTest, RejectsZeroFragCount) {
  Segment s = data_segment();
  s.frag_count = 1;
  s.frag_index = 0;
  Bytes wire = encode_segment(s);
  // frag_count lives 4+2 bytes after the 40-byte fixed header.
  wire[kFixedHeaderBytes + 4 + 2] = 0;
  wire[kFixedHeaderBytes + 4 + 3] = 0;
  seal_segment(wire);  // re-seal: the semantic check must fire, not the CRC
  DecodeStatus status = DecodeStatus::Ok;
  EXPECT_FALSE(decode_segment(wire, &status).has_value());
  EXPECT_EQ(status, DecodeStatus::Malformed);
}

TEST(CodecTest, HeaderBytesMatchesEncodedSizeWithoutPayload) {
  // wire_bytes() is what the simulator charges; it must agree with the
  // actual encoding (modulo the UDP/IP encapsulation constant).
  Segment ack;
  ack.type = SegmentType::Ack;
  ack.eacks = {5, 9};
  EXPECT_EQ(static_cast<std::int64_t>(encode_segment(ack).size()),
            ack.header_bytes());

  Segment adv;
  adv.type = SegmentType::Advance;
  adv.skipped = {{1, 2, 3}};
  EXPECT_EQ(static_cast<std::int64_t>(encode_segment(adv).size()),
            adv.header_bytes());

  Segment data = data_segment();
  data.payload_bytes = 0;
  EXPECT_EQ(static_cast<std::int64_t>(encode_segment(data).size()),
            data.header_bytes());
}

TEST(CodecTest, SurvivesSingleByteCorruptionEverywhere) {
  // Fuzz-style: flip every byte of every encoding (data with payload and
  // attrs, ack with eacks, parity with members) at every offset, with a few
  // different corruption values. The decoder must never crash or read out
  // of bounds — rejecting or mis-decoding are both acceptable outcomes.
  std::vector<Bytes> wires;
  {
    Segment s = data_segment();
    s.attrs.set("k", 1.0);
    s.payload_bytes = 4;
    wires.push_back(encode_segment(s, Bytes{1, 2, 3, 4}));
  }
  {
    Segment s;
    s.type = SegmentType::Ack;
    s.eacks = {5, 9, 12};
    wires.push_back(encode_segment(s));
  }
  wires.push_back(encode_segment(parity_segment()));

  for (const Bytes& wire : wires) {
    for (std::size_t i = 0; i < wire.size(); ++i) {
      for (std::uint8_t delta : {0x01, 0x80, 0xff}) {
        Bytes corrupted = wire;
        corrupted[i] = static_cast<std::uint8_t>(corrupted[i] ^ delta);
        auto decoded = decode_segment(corrupted);  // must not crash
        if (decoded.has_value()) {
          // Whatever came back must at least be internally consistent
          // enough to describe.
          (void)decoded->segment.describe();
        }
      }
    }
  }
}

// ------------------------------------------------- randomized round trip --

class CodecPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

Segment random_segment(Rng& rng) {
  Segment s;
  const int type = static_cast<int>(rng.uniform_int(1, 8));
  s.type = static_cast<SegmentType>(type);
  s.conn_id = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 30));
  s.seq = static_cast<WireSeq>(rng.uniform_int(0, 0xffffffffLL));
  s.cum_ack = static_cast<WireSeq>(rng.uniform_int(0, 0xffffffffLL));
  s.rwnd_packets = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 20));
  s.ts_us = static_cast<std::uint64_t>(rng.uniform_int(0, 1LL << 50));
  s.ts_echo_us = static_cast<std::uint64_t>(rng.uniform_int(0, 1LL << 50));
  s.marked = rng.chance(0.5);
  switch (s.type) {
    case SegmentType::Data:
      s.msg_id = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 30));
      s.frag_count = static_cast<std::uint16_t>(rng.uniform_int(1, 400));
      s.frag_index =
          static_cast<std::uint16_t>(rng.uniform_int(0, s.frag_count - 1));
      s.payload_bytes = static_cast<std::int32_t>(rng.uniform_int(0, 1400));
      s.fec_protected = rng.chance(0.3);
      break;
    case SegmentType::Parity:
      s.fec_group = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 30));
      s.payload_bytes = static_cast<std::int32_t>(rng.uniform_int(0, 1400));
      for (int i = rng.uniform_int(1, 16); i > 0; --i) {
        FecMember m;
        m.seq = static_cast<WireSeq>(rng.uniform_int(0, 0xffffffffLL));
        m.msg_id = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 30));
        m.frag_count = static_cast<std::uint16_t>(rng.uniform_int(1, 400));
        m.frag_index =
            static_cast<std::uint16_t>(rng.uniform_int(0, m.frag_count - 1));
        m.payload_bytes = static_cast<std::int32_t>(rng.uniform_int(0, 1400));
        if (rng.chance(0.3)) m.attrs.set("m", rng.uniform01());
        s.fec_members.push_back(std::move(m));
      }
      break;
    case SegmentType::Ack:
      for (int i = rng.uniform_int(0, 64); i > 0; --i) {
        s.eacks.push_back(
            static_cast<WireSeq>(rng.uniform_int(0, 0xffffffffLL)));
      }
      break;
    case SegmentType::Advance:
      for (int i = rng.uniform_int(0, 32); i > 0; --i) {
        s.skipped.push_back(SkippedSeq{
            static_cast<WireSeq>(rng.uniform_int(0, 0xffffffffLL)),
            static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 30)),
            static_cast<std::uint16_t>(rng.uniform_int(1, 100))});
      }
      break;
    case SegmentType::SynAck:
      s.recv_loss_tolerance = rng.uniform01();
      break;
    default:
      break;
  }
  if (rng.chance(0.3)) {
    s.attrs.set("a", rng.uniform01());
    s.attrs.set("b", rng.uniform_int(0, 100));
  }
  return s;
}

TEST_P(CodecPropertyTest, RandomRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const Segment s = random_segment(rng);
    auto decoded = decode_segment(encode_segment(s));
    ASSERT_TRUE(decoded.has_value()) << s.describe();
    expect_equal(decoded->segment, s);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ------------------------------------------- golden bytes (wire freeze) --

// A sealed v2 datagram, byte for byte. Any codec or CRC change that alters
// the wire image — field order, widths, checksum algorithm — fails here.
// Captured from the v2 sealing implementation and cross-checked against an
// independently hand-assembled header below.
TEST(CodecGoldenTest, SealedV2DatagramIsBitIdentical) {
  Segment s;
  s.type = SegmentType::Data;
  s.conn_id = 7;
  s.seq = 0x01020304;
  s.cum_ack = 0x0a0b0c0d;
  s.rwnd_packets = 512;
  s.ts_us = 0x1122334455ull;
  s.ts_echo_us = 0x5544332211ull;
  s.msg_id = 9;
  s.frag_index = 0;
  s.frag_count = 1;
  s.marked = true;
  s.payload_bytes = 8;
  const Bytes payload{1, 2, 3, 4, 5, 6, 7, 8};

  static const std::uint8_t kGolden[] = {
      0x49, 0x51, 0x03, 0x01, 0xf2, 0x56, 0x5d, 0xcb, 0x00, 0x00, 0x00,
      0x07, 0x01, 0x02, 0x03, 0x04, 0x0a, 0x0b, 0x0c, 0x0d, 0x00, 0x00,
      0x02, 0x00, 0x00, 0x00, 0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x00,
      0x00, 0x00, 0x55, 0x44, 0x33, 0x22, 0x11, 0x00, 0x00, 0x00, 0x09,
      0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x08, 0x01, 0x02, 0x03,
      0x04, 0x05, 0x06, 0x07, 0x08};

  const Bytes wire = encode_segment(s, payload);
  ASSERT_EQ(wire.size(), sizeof(kGolden));
  EXPECT_EQ(wire, Bytes(kGolden, kGolden + sizeof(kGolden)));

  // Cross-check: assemble the same datagram field by field, independent of
  // the codec, and seal it with crc32 (whose polynomial is pinned by the
  // check-vector test in common_test). Golden bytes can't drift silently.
  ByteWriter w;
  w.u16(kWireMagic);
  w.u8(0x03);  // Data
  w.u8(0x01);  // marked
  w.u32(0);    // checksum placeholder
  w.u32(s.conn_id);
  w.u32(s.seq);
  w.u32(s.cum_ack);
  w.u32(s.rwnd_packets);
  w.u64(s.ts_us);
  w.u64(s.ts_echo_us);
  w.u32(s.msg_id);
  w.u16(s.frag_index);
  w.u16(s.frag_count);
  w.u32(static_cast<std::uint32_t>(s.payload_bytes));
  w.raw(payload);
  Bytes manual = w.take();
  w.clear();
  seal_segment(manual);
  EXPECT_EQ(manual, wire);
  ASSERT_TRUE(decode_segment(manual).has_value());
}

// --------------------------------------- in-place decode (SegmentView) ---

TEST(CodecViewTest, ViewMatchesOwningDecode) {
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    Segment s = random_segment(rng);
    Bytes payload;
    if ((s.type == SegmentType::Data || s.type == SegmentType::Parity) &&
        s.payload_bytes > 0) {
      payload.resize(static_cast<std::size_t>(s.payload_bytes));
      for (auto& b : payload) {
        b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      }
    }
    const Bytes wire = encode_segment(s, payload);
    auto owned = decode_segment(wire);
    auto view = decode_segment_view(wire);
    ASSERT_TRUE(owned.has_value());
    ASSERT_TRUE(view.has_value());
    expect_equal(view->segment, owned->segment);
    ASSERT_EQ(view->payload.size(), owned->payload.size());
    EXPECT_TRUE(std::equal(view->payload.begin(), view->payload.end(),
                           owned->payload.begin()));
  }
}

TEST(CodecViewTest, PayloadAliasesTheDatagram) {
  Segment s = data_segment();
  s.payload_bytes = 4;
  Bytes wire = encode_segment(s, Bytes{9, 9, 9, 9});
  auto view = decode_segment_view(wire);
  ASSERT_TRUE(view.has_value());
  ASSERT_EQ(view->payload.size(), 4u);
  EXPECT_EQ(view->payload[0], 9);
  // The view borrows the datagram: mutating the buffer shows through. This
  // is the contract (and the hazard) zero-copy callers sign up for.
  wire[wire.size() - 4] = 123;
  EXPECT_EQ(view->payload[0], 123);
  EXPECT_EQ(view->payload.data(), wire.data() + wire.size() - 4);
}

TEST(CodecViewTest, RejectsSameInputsAsOwningDecode) {
  Rng rng(7);
  const Bytes wire = encode_segment(data_segment());
  for (int i = 0; i < 2000; ++i) {
    Bytes mutated = wire;
    // Truncate, corrupt, or extend at random; both decoders must agree.
    const auto mode = rng.uniform_int(0, 2);
    if (mode == 0) {
      mutated.resize(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(wire.size()))));
    } else if (mode == 1) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(wire.size()) - 1));
      mutated[pos] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    } else {
      mutated.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
    }
    DecodeStatus st_owned = DecodeStatus::Ok;
    DecodeStatus st_view = DecodeStatus::Ok;
    auto owned = decode_segment(mutated, &st_owned);
    auto view = decode_segment_view(mutated, &st_view);
    ASSERT_EQ(owned.has_value(), view.has_value());
    ASSERT_EQ(st_owned, st_view);
    if (owned.has_value()) expect_equal(view->segment, owned->segment);
  }
}

// ------------------------------------------ arena reuse & virtual zeros --

TEST(CodecArenaTest, ArenaEncodeMatchesOwningEncode) {
  Rng rng(31);
  ByteWriter arena;
  for (int i = 0; i < 200; ++i) {
    const Segment s = random_segment(rng);
    const Bytes fresh = encode_segment(s);
    const BytesView reused = encode_segment_into(arena, s);
    ASSERT_EQ(Bytes(reused.begin(), reused.end()), fresh) << s.describe();
  }
}

// Regression: encode_segment used to zero-fill the whole virtual payload
// byte by byte on every encode. The arena now skips the memset for any tail
// it already keeps zeroed — which must not change the bytes (or checksum)
// even when a previous encode dirtied the buffer with a real payload.
TEST(CodecArenaTest, VirtualPayloadIdenticalAfterDirtyArenaReuse) {
  Segment virt = data_segment();
  virt.payload_bytes = 1000;  // no real bytes: fully virtual payload

  const Bytes reference = encode_segment(virt);
  // The virtual payload region must be all zeros on the wire.
  for (std::size_t i = reference.size() - 1000; i < reference.size(); ++i) {
    ASSERT_EQ(reference[i], 0u);
  }

  // Dirty the arena with a real nonzero payload, then re-encode the
  // virtual segment through it: bit-identical, checksum included.
  ByteWriter arena;
  Segment real = data_segment();
  real.payload_bytes = 1400;
  const Bytes junk(1400, 0xee);
  (void)encode_segment_into(arena, real, junk);
  const BytesView reused = encode_segment_into(arena, virt);
  EXPECT_EQ(Bytes(reused.begin(), reused.end()), reference);
  EXPECT_EQ(segment_checksum(reused), segment_checksum(reference));
}

}  // namespace
}  // namespace iq::rudp

