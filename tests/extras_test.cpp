// Tests for the auxiliary tooling: trace file I/O, the protocol segment
// tap, and JSON result serialization.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <vector>

#include "iq/core/iq_connection.hpp"
#include "iq/harness/json.hpp"
#include "iq/harness/scenarios.hpp"
#include "iq/rudp/connection.hpp"
#include "iq/sim/simulator.hpp"
#include "iq/wire/wire.hpp"
#include "iq/workload/mbone_trace.hpp"

namespace iq {
namespace {

// ----------------------------------------------------------- trace I/O ----

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path(testing::TempDir() + "/" + name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(TraceIoTest, SaveLoadRoundTrip) {
  TempFile f("trace_roundtrip.txt");
  workload::MboneTrace original;
  ASSERT_TRUE(original.save(f.path));
  auto loaded = workload::MboneTrace::load(f.path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->groups(), original.groups());
}

TEST(TraceIoTest, LoadsPlainAndCsvForms) {
  TempFile f("trace_forms.txt");
  std::ofstream(f.path) << "# comment\n5\n\n10\n2,15\n";
  auto t = workload::MboneTrace::load(f.path);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->groups(), (std::vector<int>{5, 10, 15}));
}

TEST(TraceIoTest, MissingFileIsNullopt) {
  EXPECT_FALSE(workload::MboneTrace::load("/nonexistent/trace").has_value());
}

TEST(TraceIoTest, MalformedLineIsNullopt) {
  TempFile f("trace_bad.txt");
  std::ofstream(f.path) << "5\nnot-a-number\n";
  EXPECT_FALSE(workload::MboneTrace::load(f.path).has_value());
}

TEST(TraceIoTest, ExplicitSeriesConstructor) {
  workload::MboneTrace t(std::vector<int>{3, 9, 27});
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.group_at(1), 9);
  EXPECT_EQ(t.group_at(4), 9);  // wraps
}

// ---------------------------------------------------------- segment tap ---

TEST(SegmentTapTest, SeesBothDirections) {
  sim::Simulator sim;
  wire::DirectWirePair wires(sim, Duration::millis(5));
  rudp::RudpConnection snd(wires.a(), {}, rudp::Role::Client);
  rudp::RudpConnection rcv(wires.b(), {}, rudp::Role::Server);

  std::vector<std::pair<rudp::RudpConnection::TapDirection, rudp::SegmentType>>
      tapped;
  snd.set_segment_tap([&](rudp::RudpConnection::TapDirection dir,
                          const rudp::Segment& seg) {
    tapped.emplace_back(dir, seg.type);
  });

  rcv.listen();
  snd.connect();
  sim.run_until(TimePoint::zero() + Duration::millis(100));
  snd.send_message({.bytes = 1000});
  sim.run_until(TimePoint::zero() + Duration::seconds(1));

  // SYN out, SYN-ACK in, DATA out, ACK in — in that order.
  ASSERT_GE(tapped.size(), 4u);
  using Dir = rudp::RudpConnection::TapDirection;
  EXPECT_EQ(tapped[0], (std::pair{Dir::Out, rudp::SegmentType::Syn}));
  EXPECT_EQ(tapped[1], (std::pair{Dir::In, rudp::SegmentType::SynAck}));
  EXPECT_EQ(tapped[2], (std::pair{Dir::Out, rudp::SegmentType::Data}));
  EXPECT_EQ(tapped[3], (std::pair{Dir::In, rudp::SegmentType::Ack}));
}

TEST(SegmentTapTest, ForeignConnIdNotTapped) {
  sim::Simulator sim;
  wire::DirectWirePair wires(sim, Duration::millis(5));
  rudp::RudpConfig cfg_a;
  cfg_a.conn_id = 1;
  rudp::RudpConfig cfg_b;
  cfg_b.conn_id = 2;  // mismatched: everything ignored
  rudp::RudpConnection snd(wires.a(), cfg_a, rudp::Role::Client);
  rudp::RudpConnection rcv(wires.b(), cfg_b, rudp::Role::Server);
  int tapped_in = 0;
  rcv.set_segment_tap([&](rudp::RudpConnection::TapDirection dir,
                          const rudp::Segment&) {
    if (dir == rudp::RudpConnection::TapDirection::In) ++tapped_in;
  });
  rcv.listen();
  snd.connect();
  sim.run_until(TimePoint::zero() + Duration::millis(600));
  EXPECT_EQ(tapped_in, 0);
}

// ------------------------------------------- receiver metric export -------

TEST(RecvMetricsTest, ReceiverPublishesDeliveryRate) {
  sim::Simulator sim;
  wire::DirectWirePair wires(sim, Duration::millis(10));
  core::IqRudpConnection snd(wires.a(), {}, rudp::Role::Client);
  core::IqRudpConnection rcv(wires.b(), {}, rudp::Role::Server);
  rcv.set_message_handler([](const rudp::DeliveredMessage&) {});
  rcv.listen();
  snd.connect();
  sim.run_until(TimePoint::zero() + Duration::millis(200));

  for (int i = 0; i < 20; ++i) snd.send({.bytes = 10'000});
  sim.run_until(TimePoint::zero() + Duration::seconds(3));

  auto& store = rcv.attributes();
  ASSERT_TRUE(store.has(attr::kRecvMsgsDelivered));
  EXPECT_EQ(store.query(attr::kRecvMsgsDelivered)->as_int(), 20);
  EXPECT_EQ(store.query(attr::kRecvMsgsDropped)->as_int(), 0);
  // Some one-second window saw a nonzero delivery rate.
  ASSERT_TRUE(store.has(attr::kRecvRateBps));
}

// ------------------------------------------------------------- JSON -------

TEST(JsonWriterTest, ObjectShape) {
  harness::JsonWriter w;
  w.begin_object();
  w.field("name", "iq-rudp");
  w.field("count", std::int64_t{3});
  w.field("ratio", 0.5);
  w.field("on", true);
  w.end_object();
  EXPECT_EQ(w.take(),
            R"({"name":"iq-rudp","count":3,"ratio":0.5,"on":true})");
}

TEST(JsonWriterTest, EscapesStrings) {
  harness::JsonWriter w;
  w.begin_object();
  w.field("k", "a\"b\\c\nd");
  w.end_object();
  EXPECT_EQ(w.take(), R"({"k":"a\"b\\c\nd"})");
}

TEST(JsonWriterTest, NestedObjects) {
  harness::JsonWriter w;
  w.begin_object();
  w.key("outer").begin_object();
  w.field("x", std::int64_t{1});
  w.end_object();
  w.field("y", std::int64_t{2});
  w.end_object();
  EXPECT_EQ(w.take(), R"({"outer":{"x":1},"y":2})");
}

TEST(JsonResultTest, ContainsAllSections) {
  auto cfg = harness::scenarios::base();
  cfg.scheme = harness::SchemeSpec::iq_rudp();
  cfg.frame_rate = 50;
  cfg.total_frames = 30;
  cfg.fixed_frame_bytes = 1000;
  cfg.max_sim_time = Duration::seconds(30);
  const auto r = harness::run_experiment(cfg);
  const std::string json = harness::result_to_json(cfg, r);
  for (const char* needle :
       {"\"config\":", "\"summary\":", "\"transport\":", "\"coordination\":",
        "\"scheme\":\"IQ-RUDP\"", "\"completed\":true",
        "\"duration_s\":", "\"window_rescales\":"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle << "\n" << json;
  }
  // Balanced braces.
  int depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

}  // namespace
}  // namespace iq
