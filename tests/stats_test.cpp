// Tests for statistics collectors: Welford stats, inter-arrival/jitter,
// time series, metrics summaries, table rendering.

#include <gtest/gtest.h>

#include <cmath>

#include "iq/stats/interarrival.hpp"
#include "iq/stats/jain.hpp"
#include "iq/stats/metrics.hpp"
#include "iq/stats/running_stats.hpp"
#include "iq/stats/table.hpp"
#include "iq/stats/timeseries.hpp"

namespace iq::stats {
namespace {

TEST(RunningStatsTest, MeanAndVarianceClosedForm) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_TRUE(s.empty());
}

TEST(RunningStatsTest, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, MergeEqualsCombined) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i) * 10;
    (i % 2 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(RunningStatsTest, NumericalStabilityLargeOffset) {
  RunningStats s;
  for (int i = 0; i < 1000; ++i) s.add(1e9 + (i % 2));
  EXPECT_NEAR(s.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(s.variance(), 0.25, 1e-6);
}

// Pins the documented semantics: variance() is the *population* variance
// (M2/n, no Bessel correction — a run's packet trace is the whole
// population), sample_variance() is M2/(n-1), and Chan's merge keeps the
// sharded result equal to a serial pass over the same samples.
TEST(RunningStatsTest, PopulationVsSampleVariance) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  // Textbook example: population variance 4, sample variance 32/7.
  EXPECT_NEAR(s.variance(), 4.0, 1e-12);
  EXPECT_NEAR(s.sample_variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);

  RunningStats tiny;
  tiny.add(3.0);
  EXPECT_EQ(tiny.variance(), 0.0);
  EXPECT_EQ(tiny.sample_variance(), 0.0);
}

TEST(RunningStatsTest, MergeMatchesSerial) {
  // Four shards merged pairwise-unevenly must agree with one serial pass.
  RunningStats shard[4], serial;
  for (int i = 0; i < 4000; ++i) {
    const double v = std::cos(i * 0.7) * 1e3 + i * 0.01;
    shard[i % 4].add(v);
    serial.add(v);
  }
  shard[2].merge(shard[3]);
  shard[0].merge(shard[1]);
  shard[0].merge(shard[2]);
  EXPECT_EQ(shard[0].count(), serial.count());
  EXPECT_NEAR(shard[0].mean(), serial.mean(), 1e-9);
  EXPECT_NEAR(shard[0].variance(), serial.variance(),
              serial.variance() * 1e-10);
  EXPECT_NEAR(shard[0].sample_variance(), serial.sample_variance(),
              serial.sample_variance() * 1e-10);
  EXPECT_DOUBLE_EQ(shard[0].min(), serial.min());
  EXPECT_DOUBLE_EQ(shard[0].max(), serial.max());
  EXPECT_NEAR(shard[0].sum(), serial.sum(), std::fabs(serial.sum()) * 1e-10);
}

TEST(InterarrivalTest, UniformArrivalsZeroJitter) {
  InterarrivalTracker t;
  for (int i = 0; i < 10; ++i) {
    t.arrival(TimePoint::zero() + Duration::millis(10 * i));
  }
  EXPECT_NEAR(t.mean_seconds(), 0.010, 1e-12);
  EXPECT_NEAR(t.jitter_seconds(), 0.0, 1e-12);
  EXPECT_EQ(t.arrivals(), 10u);
}

TEST(InterarrivalTest, AlternatingGapsKnownJitter) {
  InterarrivalTracker t;
  TimePoint now = TimePoint::zero();
  for (int i = 0; i < 20; ++i) {
    now += (i % 2 == 0) ? Duration::millis(10) : Duration::millis(30);
    t.arrival(now);
  }
  EXPECT_NEAR(t.mean_millis(), 20.0, 0.6);
  EXPECT_NEAR(t.jitter_millis(), 10.0, 0.3);
}

TEST(InterarrivalTest, SingleArrivalNoGaps) {
  InterarrivalTracker t;
  t.arrival(TimePoint::zero() + Duration::millis(5));
  EXPECT_EQ(t.mean_seconds(), 0.0);
  EXPECT_EQ(t.gaps().count(), 0u);
}

TEST(TimeSeriesTest, CsvContainsAllPoints) {
  TimeSeries ts("v");
  ts.add(TimePoint::zero() + Duration::seconds(1), 10.0);
  ts.add(TimePoint::zero() + Duration::seconds(2), 20.0);
  const std::string csv = ts.to_csv();
  EXPECT_NE(csv.find("x,v"), std::string::npos);
  EXPECT_NE(csv.find("1,10"), std::string::npos);
  EXPECT_NE(csv.find("2,20"), std::string::npos);
}

TEST(TimeSeriesTest, MeanInWindow) {
  TimeSeries ts("v");
  for (int i = 0; i < 10; ++i) ts.add_indexed(i, i * 1.0);
  EXPECT_DOUBLE_EQ(ts.mean_in(0, 5), 2.0);
  EXPECT_DOUBLE_EQ(ts.mean_in(5, 10), 7.0);
  EXPECT_EQ(ts.mean_in(100, 200), 0.0);
}

TEST(TimeSeriesTest, AsciiPlotRendersWithoutCrashing) {
  TimeSeries ts("v");
  for (int i = 0; i < 500; ++i) ts.add_indexed(i, std::abs(std::sin(i * 0.1)));
  const std::string plot = ts.ascii_plot(40, 8);
  EXPECT_NE(plot.find('*'), std::string::npos);
  EXPECT_EQ(TimeSeries("e").ascii_plot(), "(empty series)\n");
}

TEST(MessageMetricsTest, SummaryBasics) {
  MessageMetrics m;
  m.start(TimePoint::zero());
  for (int i = 1; i <= 10; ++i) {
    m.offered();
    MessageRecord rec;
    rec.arrival = TimePoint::zero() + Duration::millis(100 * i);
    rec.bytes = 1000;
    rec.tagged = (i % 5 == 0);
    m.on_message(rec);
  }
  const FlowSummary s = m.summary();
  EXPECT_DOUBLE_EQ(s.duration_s, 1.0);
  EXPECT_NEAR(s.throughput_kBps, 10.0, 1e-9);  // 10 kB over 1 s
  EXPECT_NEAR(s.interarrival_s, 0.1, 1e-12);
  EXPECT_NEAR(s.jitter_s, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.delivered_pct, 100.0);
  EXPECT_EQ(s.messages, 10u);
  EXPECT_EQ(s.tagged_messages, 2u);
  EXPECT_NEAR(s.tagged_delay_ms, 500.0, 1e-9);
}

TEST(MessageMetricsTest, DeliveredPctReflectsLoss) {
  MessageMetrics m;
  m.start(TimePoint::zero());
  m.offered(10);
  for (int i = 1; i <= 7; ++i) {
    MessageRecord rec;
    rec.arrival = TimePoint::zero() + Duration::millis(i);
    rec.bytes = 10;
    m.on_message(rec);
  }
  EXPECT_DOUBLE_EQ(m.summary().delivered_pct, 70.0);
}

TEST(MessageMetricsTest, FinishExtendsDuration) {
  MessageMetrics m;
  m.start(TimePoint::zero());
  MessageRecord rec;
  rec.arrival = TimePoint::zero() + Duration::seconds(1);
  rec.bytes = 5000;
  m.on_message(rec);
  m.finish(TimePoint::zero() + Duration::seconds(5));
  EXPECT_DOUBLE_EQ(m.summary().duration_s, 5.0);
}

TEST(MessageMetricsTest, OneWayDelayQuantiles) {
  MessageMetrics m;
  m.start(TimePoint::zero());
  for (int i = 1; i <= 100; ++i) {
    MessageRecord rec;
    rec.sent = TimePoint::zero() + Duration::millis(i);
    // One-way delay: 10 ms for most, 100 ms for every 10th (a loss tail).
    rec.arrival = rec.sent + Duration::millis(i % 10 == 0 ? 100 : 10);
    rec.bytes = 100;
    m.on_message(rec);
  }
  const FlowSummary s = m.summary();
  EXPECT_NEAR(s.owd_mean_ms, 0.9 * 10 + 0.1 * 100, 1.0);
  EXPECT_NEAR(s.owd_p50_ms, 10.0, 1.5);
  EXPECT_GT(s.owd_p95_ms, 50.0);
  EXPECT_EQ(m.one_way_delay().count(), 100u);
}

TEST(MessageMetricsTest, NoSenderTimestampNoOwd) {
  MessageMetrics m;
  m.start(TimePoint::zero());
  MessageRecord rec;
  rec.arrival = TimePoint::zero() + Duration::millis(5);
  rec.bytes = 1;  // rec.sent left at zero => no one-way-delay sample
  m.on_message(rec);
  EXPECT_EQ(m.one_way_delay().count(), 0u);
  EXPECT_EQ(m.summary().owd_p95_ms, 0.0);
}

TEST(JainIndexTest, EqualAllocationsScoreOne) {
  const double xs[] = {5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(jain_index(xs), 1.0);
}

TEST(JainIndexTest, OneHotScoresOneOverN) {
  const double xs[] = {12.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_index(xs), 0.25);
}

TEST(JainIndexTest, EmptyAndAllZeroScoreZero) {
  EXPECT_DOUBLE_EQ(jain_index(std::span<const double>{}), 0.0);
  const double zeros[] = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_index(zeros), 0.0);
}

TEST(JainIndexTest, RunningStatsOverloadMatchesSpan) {
  // The streaming overload must use the *population* variance — Jain's
  // denominator is n·Σx², i.e. M2/n + mean², not the Bessel-corrected
  // sample variance. Pin the two overloads to each other.
  const double xs[] = {3.0, 7.0, 11.0};
  RunningStats s;
  for (double x : xs) s.add(x);
  EXPECT_NEAR(jain_index(s), jain_index(xs), 1e-12);
  EXPECT_DOUBLE_EQ(jain_index(RunningStats{}), 0.0);
}

TEST(TableTest, RendersAlignedColumns) {
  Table t({"scheme", "thr"});
  t.add_row({"IQ-RUDP", "98.2"});
  t.add_row({"TCP", "94.2"});
  const std::string out = t.render();
  EXPECT_NE(out.find("IQ-RUDP"), std::string::npos);
  EXPECT_NE(out.find("94.2"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(100.0, 0), "100");
}

}  // namespace
}  // namespace iq::stats
