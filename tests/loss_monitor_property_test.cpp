// Property test for LossMonitor epoch accounting: under any interleaving of
// on_acked / on_lost / reset_epoch, the conservation identity
//   lifetime total == Σ closed-epoch counts + reset discards + pending
// holds for acked and lost independently, epochs number consecutively from
// 1, and every report's loss ratio equals lost/(acked+lost) for its own
// counts. This is the identity the invariant auditor enforces on live
// connections (docs/AUDIT.md); here it is pinned directly on the monitor.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "iq/common/rng.hpp"
#include "iq/rudp/loss_monitor.hpp"

namespace iq::rudp {
namespace {

struct Tally {
  std::uint64_t epoch_acked = 0;
  std::uint64_t epoch_lost = 0;
  std::uint64_t reports = 0;
  std::uint64_t last_epoch = 0;
};

void check_conservation(const LossMonitor& lm, const Tally& t,
                        std::uint64_t seed, int step) {
  ASSERT_EQ(lm.total_acked(),
            t.epoch_acked + lm.discarded_acked() + lm.pending_acked())
      << "seed=" << seed << " step=" << step;
  ASSERT_EQ(lm.total_lost(),
            t.epoch_lost + lm.discarded_lost() + lm.pending_lost())
      << "seed=" << seed << " step=" << step;
  ASSERT_EQ(lm.epochs_closed(), t.reports)
      << "seed=" << seed << " step=" << step;
}

class LossMonitorPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LossMonitorPropertyTest, ConservationUnderAnyInterleaving) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);

  const auto epoch_packets =
      static_cast<std::uint32_t>(rng.uniform_int(1, 50));
  LossMonitor lm(epoch_packets, /*ewma_gain=*/0.3);

  Tally tally;
  lm.set_epoch_handler([&](const EpochReport& r) {
    // Reports number consecutively and carry self-consistent counts.
    ASSERT_EQ(r.epoch, tally.last_epoch + 1) << "seed=" << seed;
    tally.last_epoch = r.epoch;
    ++tally.reports;
    tally.epoch_acked += r.acked;
    tally.epoch_lost += r.lost;
    ASSERT_GE(r.acked + r.lost, epoch_packets) << "seed=" << seed;
    const double expect = static_cast<double>(r.lost) /
                          static_cast<double>(r.acked + r.lost);
    ASSERT_DOUBLE_EQ(r.loss_ratio, expect) << "seed=" << seed;
    ASSERT_GE(r.smoothed_loss_ratio, 0.0);
    ASSERT_LE(r.smoothed_loss_ratio, 1.0);
  });

  TimePoint now;
  const int kSteps = 600;
  for (int step = 0; step < kSteps; ++step) {
    now = now + Duration::millis(rng.uniform_int(0, 10));
    const double roll = rng.uniform(0.0, 1.0);
    if (roll < 0.55) {
      lm.on_acked(static_cast<std::uint32_t>(rng.uniform_int(0, 12)),
                  rng.uniform_int(0, 1500), now);
    } else if (roll < 0.9) {
      lm.on_lost(static_cast<std::uint32_t>(rng.uniform_int(0, 6)), now);
    } else {
      lm.reset_epoch();
    }
    check_conservation(lm, tally, seed, step);
  }

  // Pending counts are bounded by the epoch threshold: anything at or above
  // it would have closed an epoch at the last resolve.
  ASSERT_LT(lm.pending_acked() + lm.pending_lost(), epoch_packets);

  // Drain the in-progress epoch and re-check the identity end-state.
  lm.reset_epoch();
  ASSERT_EQ(lm.pending_acked(), 0u);
  ASSERT_EQ(lm.pending_lost(), 0u);
  check_conservation(lm, tally, seed, kSteps);
  ASSERT_EQ(lm.total_acked(), tally.epoch_acked + lm.discarded_acked());
  ASSERT_EQ(lm.total_lost(), tally.epoch_lost + lm.discarded_lost());
  ASSERT_GT(lm.epoch_resets(), 0u);  // the interleaving really reset
}

INSTANTIATE_TEST_SUITE_P(Seeds, LossMonitorPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 25),
                         [](const auto& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

// Directed edge cases the random walk may miss.

TEST(LossMonitorEdgeTest, ZeroCountCallsAreNoOps) {
  LossMonitor lm(10);
  lm.on_acked(0, 0, TimePoint{});
  lm.on_lost(0, TimePoint{});
  EXPECT_EQ(lm.total_acked(), 0u);
  EXPECT_EQ(lm.total_lost(), 0u);
  EXPECT_EQ(lm.pending_acked(), 0u);
  EXPECT_EQ(lm.pending_lost(), 0u);
}

TEST(LossMonitorEdgeTest, ResetWithoutTrafficIsHarmless) {
  LossMonitor lm(10);
  lm.reset_epoch();
  EXPECT_EQ(lm.discarded_acked(), 0u);
  EXPECT_EQ(lm.discarded_lost(), 0u);
  EXPECT_EQ(lm.epoch_resets(), 1u);
  EXPECT_EQ(lm.epochs_closed(), 0u);
}

TEST(LossMonitorEdgeTest, ResetJustBelowThresholdDiscardsExactly) {
  LossMonitor lm(10);
  TimePoint now;
  lm.on_acked(5, 500, now);
  lm.on_lost(4, now);
  ASSERT_EQ(lm.epochs_closed(), 0u);
  lm.reset_epoch();
  EXPECT_EQ(lm.discarded_acked(), 5u);
  EXPECT_EQ(lm.discarded_lost(), 4u);
  EXPECT_EQ(lm.total_acked(), 5u);
  EXPECT_EQ(lm.total_lost(), 4u);
  // Next epoch starts from zero: 10 more resolutions close epoch 1.
  lm.on_acked(10, 1000, now);
  EXPECT_EQ(lm.epochs_closed(), 1u);
  EXPECT_DOUBLE_EQ(lm.last_loss_ratio(), 0.0);
}

}  // namespace
}  // namespace iq::rudp
