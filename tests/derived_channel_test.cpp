// Tests for derived channels: transform chains, suppression, per-stage
// accounting, ready-made transforms — in isolation and over a live
// connection.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "iq/echo/derived.hpp"
#include "iq/sim/simulator.hpp"
#include "iq/wire/wire.hpp"

namespace iq::echo {
namespace {

struct Rig {
  sim::Simulator sim;
  wire::DirectWirePair wires{sim, Duration::millis(5)};
  std::unique_ptr<core::IqRudpConnection> snd;
  std::unique_ptr<core::IqRudpConnection> rcv;
  std::unique_ptr<EventChannel> chan_s;
  std::unique_ptr<EventChannel> chan_r;
  std::vector<ReceivedEvent> got;

  Rig() {
    rudp::RudpConfig cfg;
    snd = std::make_unique<core::IqRudpConnection>(wires.a(), cfg,
                                                   rudp::Role::Client);
    rudp::RudpConfig rcfg;
    rcfg.recv_loss_tolerance = 0.5;
    rcv = std::make_unique<core::IqRudpConnection>(wires.b(), rcfg,
                                                   rudp::Role::Server);
    chan_s = std::make_unique<EventChannel>("base", *snd);
    chan_r = std::make_unique<EventChannel>("base", *rcv);
    chan_r->set_event_handler(
        [this](const ReceivedEvent& e) { got.push_back(e); });
    rcv->listen();
    snd->connect();
    sim.run_until(TimePoint::zero() + Duration::millis(100));
  }
};

TEST(DerivedChannelTest, PassThroughWithoutTransforms) {
  Rig r;
  DerivedChannel d("derived", *r.chan_s);
  auto res = d.submit({.bytes = 1000});
  ASSERT_TRUE(res.has_value());
  r.sim.run_until(TimePoint::zero() + Duration::seconds(1));
  ASSERT_EQ(r.got.size(), 1u);
  EXPECT_EQ(r.got[0].event.bytes, 1000);
}

TEST(DerivedChannelTest, FilterSuppresses) {
  Rig r;
  DerivedChannel d("derived", *r.chan_s);
  d.add_transform("small-only", DerivedChannel::filter([](const Event& e) {
                    return e.bytes < 500;
                  }));
  EXPECT_TRUE(d.submit({.bytes = 100}).has_value());
  EXPECT_FALSE(d.submit({.bytes = 900}).has_value());
  r.sim.run_until(TimePoint::zero() + Duration::seconds(1));
  EXPECT_EQ(r.got.size(), 1u);
  const auto& st = d.stages()[0];
  EXPECT_EQ(st.seen, 2u);
  EXPECT_EQ(st.suppressed, 1u);
}

TEST(DerivedChannelTest, DownsampleScalesBytes) {
  Rig r;
  DerivedChannel d("derived", *r.chan_s);
  d.add_transform("half-res", DerivedChannel::downsample(0.5));
  d.submit({.bytes = 1000});
  r.sim.run_until(TimePoint::zero() + Duration::seconds(1));
  ASSERT_EQ(r.got.size(), 1u);
  EXPECT_EQ(r.got[0].event.bytes, 500);
  EXPECT_EQ(d.stages()[0].bytes_in, 1000);
  EXPECT_EQ(d.stages()[0].bytes_out, 500);
}

TEST(DerivedChannelTest, DownsampleNeverBelowOneByte) {
  Rig r;
  DerivedChannel d("derived", *r.chan_s);
  d.add_transform("crush", DerivedChannel::downsample(1e-9));
  d.submit({.bytes = 100});
  r.sim.run_until(TimePoint::zero() + Duration::seconds(1));
  ASSERT_EQ(r.got.size(), 1u);
  EXPECT_EQ(r.got[0].event.bytes, 1);
}

TEST(DerivedChannelTest, PrioritizeRetags) {
  Rig r;
  DerivedChannel d("derived", *r.chan_s);
  d.add_transform("focus", DerivedChannel::prioritize([](const Event& e) {
                    return e.meta.get_bool("in_focus").value_or(false);
                  }));
  Event in_focus;
  in_focus.bytes = 100;
  in_focus.tagged = false;  // transform overrides
  in_focus.meta.set("in_focus", true);
  Event out_of_focus;
  out_of_focus.bytes = 100;
  out_of_focus.tagged = true;
  d.submit(in_focus);
  d.submit(out_of_focus);
  r.sim.run_until(TimePoint::zero() + Duration::seconds(1));
  ASSERT_EQ(r.got.size(), 2u);
  EXPECT_TRUE(r.got[0].event.tagged);
  EXPECT_FALSE(r.got[1].event.tagged);
}

TEST(DerivedChannelTest, ThinKeepsEveryKth) {
  Rig r;
  DerivedChannel d("derived", *r.chan_s);
  d.add_transform("1-in-3", DerivedChannel::thin(3));
  int kept = 0;
  for (int i = 0; i < 12; ++i) {
    if (d.submit({.bytes = 10}).has_value()) ++kept;
  }
  EXPECT_EQ(kept, 4);  // indices 0, 3, 6, 9
}

TEST(DerivedChannelTest, StagesCompose) {
  Rig r;
  DerivedChannel d("derived", *r.chan_s);
  d.add_transform("1-in-2", DerivedChannel::thin(2));
  d.add_transform("half-res", DerivedChannel::downsample(0.5));
  for (int i = 0; i < 6; ++i) d.submit({.bytes = 1000});
  r.sim.run_until(TimePoint::zero() + Duration::seconds(1));
  ASSERT_EQ(r.got.size(), 3u);
  for (const auto& e : r.got) EXPECT_EQ(e.event.bytes, 500);
  // The thin stage saw all six; the downsampler only the survivors.
  EXPECT_EQ(d.stages()[0].seen, 6u);
  EXPECT_EQ(d.stages()[1].seen, 3u);
}

}  // namespace
}  // namespace iq::echo
