// Hostile-network scenario matrix: the three canonical profiles must
// complete byte-identical transfers without wedging, the cellular profile
// must survive a terminal connection failure via reconnect + resume, and
// the recovery scorer itself is pinned on synthetic series.

#include <gtest/gtest.h>

#include "iq/scenario/profile.hpp"
#include "iq/scenario/runner.hpp"
#include "iq/scenario/score.hpp"

namespace iq::scenario {
namespace {

// ------------------------------------------------------------ the scorer --

std::vector<double> ramp(double rate_per_sample, std::size_t n,
                         std::size_t dark_from, std::size_t dark_to,
                         double post_rate) {
  std::vector<double> cum;
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    if (k < dark_from) {
      total += rate_per_sample;
    } else if (k >= dark_to) {
      total += post_rate;
    }
    cum.push_back(total);
  }
  return cum;
}

TEST(RateScoreTest, FullRecoveryScoresOne) {
  // 1000 bytes per 250 ms sample, dark from 10 s to 12 s, same rate after.
  const auto cum = ramp(1000, 120, 40, 48, 1000);
  const RateScore s = score_recovery(cum, Duration::seconds(10),
                                     Duration::seconds(12));
  EXPECT_NEAR(s.prefault_rate_bps, 4000.0, 1.0);
  EXPECT_NEAR(s.recovery_ratio, 1.0, 0.01);
  EXPECT_GE(s.recovery_time_s, 0.0);
  EXPECT_LE(s.recovery_time_s, 3.0);
}

TEST(RateScoreTest, HalfRateRecoveryScoresHalf) {
  const auto cum = ramp(1000, 120, 40, 48, 500);
  const RateScore s = score_recovery(cum, Duration::seconds(10),
                                     Duration::seconds(12));
  EXPECT_NEAR(s.recovery_ratio, 0.5, 0.01);
  EXPECT_LT(s.recovery_ratio, 0.8);
  EXPECT_EQ(s.recovery_time_s, -1.0);  // never reached the 80% threshold
}

TEST(RateScoreTest, QuietPrefaultScoresTriviallyRecovered) {
  const std::vector<double> cum(120, 0.0);  // nothing ever flowed
  const RateScore s = score_recovery(cum, Duration::seconds(10),
                                     Duration::seconds(12));
  EXPECT_NEAR(s.recovery_ratio, 1.0, 1e-12);
  EXPECT_EQ(s.recovery_time_s, 0.0);
}

TEST(RateScoreTest, WedgeDetection) {
  // Progress, then a flat tail longer than the stall window.
  std::vector<double> stalled = ramp(1000, 60, 40, 60, 0);
  EXPECT_TRUE(is_wedged(stalled, Duration::millis(250), Duration::seconds(5)));
  std::vector<double> flowing = ramp(1000, 60, 40, 44, 1000);
  EXPECT_FALSE(
      is_wedged(flowing, Duration::millis(250), Duration::seconds(5)));
  // Too short a series can't be judged wedged.
  EXPECT_FALSE(is_wedged({0.0, 0.0}, Duration::millis(250),
                         Duration::seconds(5)));
}

// ----------------------------------------------------------- the profiles --

TEST(ScenarioTest, ProfileNamesAndModes) {
  const ScenarioConfig sat = make_profile(Profile::Satellite, true);
  EXPECT_EQ(sat.name, "satellite_coord");
  EXPECT_TRUE(sat.coordinated);
  EXPECT_GT(sat.critical_stride, 1u);
  const ScenarioConfig unc = make_profile(Profile::Satellite, false);
  EXPECT_EQ(unc.name, "satellite_uncoord");
  // Uncoordinated runs are fully reliable: every block critical.
  EXPECT_EQ(unc.critical_stride, 1u);
  EXPECT_DOUBLE_EQ(unc.recv_loss_tolerance, 0.0);
  EXPECT_FALSE(make_profile(Profile::Incast, true).video);
  EXPECT_EQ(make_profile(Profile::Incast, true).senders, 6u);
}

TEST(ScenarioTest, SatelliteCoordinatedSurvivesRainFade) {
  const ScenarioResult r = run_scenario(make_profile(Profile::Satellite, true));
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.wedged);
  EXPECT_TRUE(r.crc_ok);
  EXPECT_TRUE(r.critical_complete);
  EXPECT_TRUE(r.audits_clean);
  // The 500 ms RTT path with a sub-RTT keepalive clock must not false-trip:
  // the satellite blackout (2 s) is survivable, so no terminal failure.
  EXPECT_EQ(r.failures, 0u);
  EXPECT_EQ(r.reconnects, 0u);
  EXPECT_GT(r.video_frames_delivered, 0u);
  EXPECT_GT(r.recovery.prefault_rate_bps, 0.0);
}

TEST(ScenarioTest, CellularTerminalFailureReconnectsAndResumes) {
  const ScenarioResult r = run_scenario(make_profile(Profile::Cellular, true));
  // The 6 s tunnel kills the transfer's connection terminally...
  EXPECT_GE(r.failures, 1u);
  EXPECT_GE(r.reconnects, 1u);
  // ...and the transfer still ends complete and byte-identical.
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.wedged);
  EXPECT_TRUE(r.crc_ok);
  EXPECT_TRUE(r.critical_complete);
  EXPECT_TRUE(r.audits_clean);
}

TEST(ScenarioTest, IncastFanInCompletesAllSenders) {
  const ScenarioConfig cfg = make_profile(Profile::Incast, true);
  const ScenarioResult r = run_scenario(cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.wedged);
  EXPECT_TRUE(r.crc_ok);
  EXPECT_TRUE(r.audits_clean);
  EXPECT_EQ(r.blocks_total, cfg.senders * cfg.file.block_count());
  EXPECT_EQ(r.blocks_received, r.blocks_total);
}

TEST(ScenarioTest, UncoordinatedCellularStillNeverWedges) {
  // The uncoordinated run degrades worse (that delta is the point of the
  // matrix) but the survivability floor applies to both modes.
  const ScenarioResult r =
      run_scenario(make_profile(Profile::Cellular, false));
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.wedged);
  EXPECT_TRUE(r.crc_ok);
  EXPECT_TRUE(r.audits_clean);
}

}  // namespace
}  // namespace iq::scenario
