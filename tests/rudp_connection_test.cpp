// End-to-end protocol tests for RudpConnection over in-memory wires:
// handshake, transfer, retransmission, adaptive reliability, keepalive.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "iq/rudp/connection.hpp"
#include "iq/sim/simulator.hpp"
#include "iq/wire/lossy_wire.hpp"
#include "iq/wire/wire.hpp"

namespace iq::rudp {
namespace {

struct Pair {
  sim::Simulator sim;
  std::unique_ptr<wire::DirectWirePair> direct;
  std::unique_ptr<wire::LossyWirePair> lossy;
  std::unique_ptr<RudpConnection> sender;
  std::unique_ptr<RudpConnection> receiver;
  std::vector<DeliveredMessage> delivered;

  explicit Pair(RudpConfig cfg = {}, RudpConfig rcfg_override = {},
                bool use_rcfg = false) {
    direct = std::make_unique<wire::DirectWirePair>(sim, Duration::millis(15));
    RudpConfig rcfg = use_rcfg ? rcfg_override : cfg;
    sender = std::make_unique<RudpConnection>(direct->a(), cfg, Role::Client);
    receiver =
        std::make_unique<RudpConnection>(direct->b(), rcfg, Role::Server);
    hook();
  }

  explicit Pair(const wire::LossyConfig& lcfg, RudpConfig cfg = {},
                RudpConfig rcfg = {}) {
    lossy = std::make_unique<wire::LossyWirePair>(sim, lcfg);
    sender = std::make_unique<RudpConnection>(lossy->a(), cfg, Role::Client);
    receiver = std::make_unique<RudpConnection>(lossy->b(), rcfg, Role::Server);
    hook();
  }

  void hook() {
    receiver->set_message_handler(
        [this](const DeliveredMessage& m) { delivered.push_back(m); });
    receiver->listen();
    sender->connect();
  }

  void run_ms(std::int64_t ms) {
    sim.run_until(sim.now() + Duration::millis(ms));
  }
};

TEST(RudpConnectionTest, HandshakeEstablishes) {
  Pair p;
  EXPECT_FALSE(p.sender->established());
  p.run_ms(100);
  EXPECT_TRUE(p.sender->established());
  EXPECT_TRUE(p.receiver->established());
}

TEST(RudpConnectionTest, EstablishedHandlerFires) {
  Pair p;
  int fired = 0;
  p.sender->set_established_handler([&] { ++fired; });
  p.run_ms(100);
  EXPECT_EQ(fired, 1);
}

TEST(RudpConnectionTest, HandshakeSurvivesSynLoss) {
  wire::LossyConfig lcfg;
  lcfg.drop_probability = 0.8;  // most SYNs die; retry must win eventually
  lcfg.seed = 3;
  RudpConfig cfg;
  cfg.max_connect_attempts = 200;
  cfg.connect_retry_cap = cfg.connect_retry;  // fixed interval: 200 × 500ms
  Pair p(lcfg, cfg);
  p.run_ms(60000);
  EXPECT_TRUE(p.sender->established());
}

TEST(RudpConnectionTest, SmallMessageDelivered) {
  Pair p;
  p.run_ms(100);
  auto res = p.sender->send_message({.bytes = 500});
  EXPECT_FALSE(res.discarded);
  p.run_ms(200);
  ASSERT_EQ(p.delivered.size(), 1u);
  EXPECT_EQ(p.delivered[0].bytes, 500);
  EXPECT_TRUE(p.delivered[0].marked);
}

TEST(RudpConnectionTest, LargeMessageFragmentsAndReassembles) {
  Pair p;
  p.run_ms(100);
  p.sender->send_message({.bytes = 100'000});  // 72 fragments
  p.run_ms(5000);
  ASSERT_EQ(p.delivered.size(), 1u);
  EXPECT_EQ(p.delivered[0].bytes, 100'000);
  EXPECT_GT(p.sender->stats().segments_sent, 70u);
}

TEST(RudpConnectionTest, ManyMessagesInOrder) {
  Pair p;
  p.run_ms(100);
  for (int i = 0; i < 50; ++i) {
    p.sender->send_message({.bytes = 3000});
  }
  p.run_ms(5000);
  ASSERT_EQ(p.delivered.size(), 50u);
  for (std::size_t i = 1; i < p.delivered.size(); ++i) {
    EXPECT_GT(p.delivered[i].msg_id, p.delivered[i - 1].msg_id);
    EXPECT_GE(p.delivered[i].delivered, p.delivered[i - 1].delivered);
  }
}

TEST(RudpConnectionTest, ZeroByteMessageDelivered) {
  Pair p;
  p.run_ms(100);
  p.sender->send_message({.bytes = 0});
  p.run_ms(200);
  ASSERT_EQ(p.delivered.size(), 1u);
  EXPECT_EQ(p.delivered[0].bytes, 0);
}

TEST(RudpConnectionTest, AttrsArriveWithMessage) {
  Pair p;
  p.run_ms(100);
  MessageSpec spec;
  spec.bytes = 2000;
  spec.attrs.set("frame", std::int64_t{42});
  p.sender->send_message(spec);
  p.run_ms(500);
  ASSERT_EQ(p.delivered.size(), 1u);
  EXPECT_EQ(p.delivered[0].attrs.get_int("frame"), 42);
}

TEST(RudpConnectionTest, ReliableUnderHeavyLoss) {
  wire::LossyConfig lcfg;
  lcfg.drop_probability = 0.2;
  lcfg.seed = 11;
  Pair p(lcfg);
  p.run_ms(2000);
  ASSERT_TRUE(p.sender->established());
  for (int i = 0; i < 40; ++i) p.sender->send_message({.bytes = 5000});
  p.run_ms(60000);
  EXPECT_EQ(p.delivered.size(), 40u);
  EXPECT_GT(p.sender->stats().segments_retransmitted, 0u);
}

TEST(RudpConnectionTest, ReliableUnderReordering) {
  wire::LossyConfig lcfg;
  lcfg.reorder_jitter = Duration::millis(40);
  lcfg.seed = 13;
  Pair p(lcfg);
  p.run_ms(1000);
  for (int i = 0; i < 30; ++i) p.sender->send_message({.bytes = 4000});
  p.run_ms(30000);
  ASSERT_EQ(p.delivered.size(), 30u);
  for (std::size_t i = 1; i < 30; ++i) {
    EXPECT_GT(p.delivered[i].msg_id, p.delivered[i - 1].msg_id);
  }
}

TEST(RudpConnectionTest, ReliableUnderDuplication) {
  wire::LossyConfig lcfg;
  lcfg.duplicate_probability = 0.3;
  lcfg.seed = 17;
  Pair p(lcfg);
  p.run_ms(1000);
  for (int i = 0; i < 30; ++i) p.sender->send_message({.bytes = 4000});
  p.run_ms(30000);
  EXPECT_EQ(p.delivered.size(), 30u);  // duplicates filtered
}

TEST(RudpConnectionTest, UnmarkedSkippedWithinTolerance) {
  wire::LossyConfig lcfg;
  lcfg.drop_probability = 0.25;
  lcfg.seed = 19;
  RudpConfig scfg;
  RudpConfig rcfg;
  rcfg.recv_loss_tolerance = 0.5;
  Pair p(lcfg, scfg, rcfg);
  p.run_ms(8000);  // lossy handshake + exponential retry backoff
  ASSERT_TRUE(p.sender->established());
  EXPECT_DOUBLE_EQ(p.sender->peer_recv_tolerance(), 0.5);

  for (int i = 0; i < 60; ++i) {
    p.sender->send_message({.bytes = 1400, .marked = false});
  }
  p.run_ms(60000);
  const auto& st = p.sender->stats();
  // Some unmarked messages were abandoned rather than retransmitted…
  EXPECT_GT(st.messages_skipped, 0u);
  // …but the abandoned share respects the receiver's tolerance.
  EXPECT_LE(p.sender->skip_budget().skipped_fraction(), 0.5);
  // Receiver accounted every message exactly once.
  EXPECT_EQ(p.delivered.size() + p.receiver->stats().messages_dropped, 60u);
}

TEST(RudpConnectionTest, MarkedAlwaysRetransmitted) {
  wire::LossyConfig lcfg;
  lcfg.drop_probability = 0.3;
  lcfg.seed = 23;
  RudpConfig rcfg;
  rcfg.recv_loss_tolerance = 0.9;  // tolerance exists but marked data must land
  Pair p(lcfg, {}, rcfg);
  p.run_ms(2000);
  for (int i = 0; i < 30; ++i) {
    p.sender->send_message({.bytes = 1400, .marked = true});
  }
  p.run_ms(60000);
  EXPECT_EQ(p.delivered.size(), 30u);
  EXPECT_EQ(p.sender->stats().messages_skipped, 0u);
}

TEST(RudpConnectionTest, DiscardUnmarkedAtSend) {
  RudpConfig rcfg;
  rcfg.recv_loss_tolerance = 0.4;
  Pair p({}, rcfg, /*use_rcfg=*/true);
  p.run_ms(100);
  p.sender->set_discard_unmarked(true);

  int discarded = 0;
  for (int i = 0; i < 100; ++i) {
    auto res = p.sender->send_message({.bytes = 1400, .marked = false});
    if (res.discarded) ++discarded;
  }
  p.run_ms(5000);
  // Discards happen, bounded by the 40% tolerance.
  EXPECT_GT(discarded, 0);
  EXPECT_LE(discarded, 40);
  EXPECT_EQ(p.delivered.size(), 100u - discarded);
  EXPECT_EQ(p.sender->stats().messages_discarded_at_send,
            static_cast<std::uint64_t>(discarded));
}

TEST(RudpConnectionTest, DiscardRequiresUnmarked) {
  RudpConfig rcfg;
  rcfg.recv_loss_tolerance = 0.9;
  Pair p({}, rcfg, /*use_rcfg=*/true);
  p.run_ms(100);
  p.sender->set_discard_unmarked(true);
  for (int i = 0; i < 20; ++i) {
    auto res = p.sender->send_message({.bytes = 500, .marked = true});
    EXPECT_FALSE(res.discarded);
  }
  p.run_ms(2000);
  EXPECT_EQ(p.delivered.size(), 20u);
}

TEST(RudpConnectionTest, RtoRecoversFromBlackout) {
  // Drop everything for a while, then heal: RTO must resend and finish.
  wire::LossyConfig lcfg;
  lcfg.drop_probability = 0.0;
  Pair p(lcfg);
  p.run_ms(100);
  ASSERT_TRUE(p.sender->established());
  p.lossy->set_drop_probability(1.0);
  p.sender->send_message({.bytes = 2000});
  p.run_ms(1500);  // several RTOs fire into the void
  EXPECT_GT(p.sender->stats().timeouts, 0u);
  p.lossy->set_drop_probability(0.0);
  p.run_ms(60000);
  ASSERT_EQ(p.delivered.size(), 1u);
}

TEST(RudpConnectionTest, EpochHandlerReportsLoss) {
  wire::LossyConfig lcfg;
  lcfg.drop_probability = 0.1;
  lcfg.seed = 29;
  RudpConfig cfg;
  cfg.loss_epoch_packets = 50;
  Pair p(lcfg, cfg);
  std::vector<EpochReport> epochs;
  p.sender->set_epoch_handler(
      [&](const EpochReport& r) { epochs.push_back(r); });
  p.run_ms(1000);
  for (int i = 0; i < 100; ++i) p.sender->send_message({.bytes = 1400});
  p.run_ms(60000);
  ASSERT_GT(epochs.size(), 0u);
  bool saw_loss = false;
  for (const auto& e : epochs) {
    EXPECT_GE(e.loss_ratio, 0.0);
    EXPECT_LE(e.loss_ratio, 1.0);
    saw_loss |= e.loss_ratio > 0.0;
  }
  EXPECT_TRUE(saw_loss);
}

TEST(RudpConnectionTest, ScaleCongestionWindowTakesEffect) {
  Pair p;
  p.run_ms(100);
  const double before = p.sender->congestion().cwnd();
  p.sender->scale_congestion_window(1.0 / (1.0 - 0.25));
  EXPECT_NEAR(p.sender->congestion().cwnd(), before / 0.75, 1e-9);
}

TEST(RudpConnectionTest, KeepaliveNulsWhenIdle) {
  RudpConfig cfg;
  cfg.keepalive = Duration::millis(200);
  Pair p(cfg);
  // Warm the RTT estimator: the probe clock never ticks faster than the
  // RTO, and an unmeasured path sits at the conservative initial RTO (1 s).
  // One round trip brings the RTO down to min_rto on this 30 ms path, and
  // the probes then flow at the configured 200 ms pace.
  p.sender->send_message({.bytes = 100});
  p.run_ms(500);
  const std::uint64_t before = p.sender->stats().nuls_sent;
  p.run_ms(2000);
  EXPECT_GT(p.sender->stats().nuls_sent - before, 5u);
}

TEST(RudpConnectionTest, CloseSendsRstAndNotifiesPeer) {
  Pair p;
  p.run_ms(100);
  bool closed = false;
  p.receiver->set_closed_handler([&] { closed = true; });
  p.sender->close();
  p.run_ms(100);
  EXPECT_EQ(p.sender->state(), ConnState::Closed);
  EXPECT_TRUE(closed);
  EXPECT_EQ(p.receiver->state(), ConnState::Closed);
}

TEST(RudpConnectionTest, SendIdleReflectsDrain) {
  Pair p;
  p.run_ms(100);
  EXPECT_TRUE(p.sender->send_idle());
  p.sender->send_message({.bytes = 50'000});
  EXPECT_FALSE(p.sender->send_idle());
  p.run_ms(10000);
  EXPECT_TRUE(p.sender->send_idle());
}

TEST(RudpConnectionTest, StatsConsistency) {
  wire::LossyConfig lcfg;
  lcfg.drop_probability = 0.1;
  lcfg.seed = 31;
  Pair p(lcfg);
  p.run_ms(1000);
  for (int i = 0; i < 50; ++i) p.sender->send_message({.bytes = 2800});
  p.run_ms(60000);
  const auto& st = p.sender->stats();
  EXPECT_EQ(st.messages_offered, 50u);
  EXPECT_EQ(st.messages_enqueued, 50u);
  EXPECT_GE(st.segments_sent, 100u);  // 2 fragments each, plus rexmits
  EXPECT_EQ(st.segments_sent - st.segments_retransmitted, 100u);
  EXPECT_EQ(p.delivered.size(), 50u);
}

}  // namespace
}  // namespace iq::rudp
