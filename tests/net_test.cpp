// Tests for the simulated network: queues, links, routing, dumbbell.

#include <gtest/gtest.h>

#include "iq/net/dumbbell.hpp"
#include "iq/net/network.hpp"
#include "iq/net/sinks.hpp"

namespace iq::net {
namespace {

PacketPtr make_test_packet(Network& net, Endpoint src, Endpoint dst,
                           std::int64_t bytes, std::uint32_t flow = 1) {
  return net.make_packet(src, dst, flow, bytes);
}

// ---------------------------------------------------------------- Queue ---

TEST(DropTailQueueTest, FifoOrder) {
  sim::Simulator sim;
  Network net(sim);
  DropTailQueue q(10'000);
  auto p1 = make_test_packet(net, {0, 1}, {1, 1}, 100);
  auto p2 = make_test_packet(net, {0, 1}, {1, 1}, 200);
  ASSERT_TRUE(q.enqueue(p1));
  ASSERT_TRUE(q.enqueue(p2));
  EXPECT_EQ(q.bytes(), 300);
  EXPECT_EQ(q.dequeue()->id, p1->id);
  EXPECT_EQ(q.dequeue()->id, p2->id);
  EXPECT_TRUE(q.empty());
}

TEST(DropTailQueueTest, DropsWhenFull) {
  sim::Simulator sim;
  Network net(sim);
  DropTailQueue q(250);
  EXPECT_TRUE(q.enqueue(make_test_packet(net, {0, 1}, {1, 1}, 200)));
  EXPECT_FALSE(q.enqueue(make_test_packet(net, {0, 1}, {1, 1}, 100)));
  EXPECT_EQ(q.dropped(), 1u);
  EXPECT_EQ(q.dropped_bytes(), 100);
  // A packet that fits still gets in.
  EXPECT_TRUE(q.enqueue(make_test_packet(net, {0, 1}, {1, 1}, 50)));
}

TEST(DropTailQueueTest, TracksPeakOccupancy) {
  sim::Simulator sim;
  Network net(sim);
  DropTailQueue q(1000);
  q.enqueue(make_test_packet(net, {0, 1}, {1, 1}, 400));
  q.enqueue(make_test_packet(net, {0, 1}, {1, 1}, 400));
  q.dequeue();
  EXPECT_EQ(q.max_bytes_seen(), 800);
  EXPECT_EQ(q.bytes(), 400);
}

// ----------------------------------------------------------------- Link ---

TEST(LinkTest, SerializationPlusPropagationDelay) {
  sim::Simulator sim;
  Network net(sim);
  CountingSink sink;
  // 12 Mb/s, 3 ms propagation: 1500 B = 1 ms serialization.
  Link link(sim, "l", {.rate_bps = 12'000'000,
                       .propagation = Duration::millis(3),
                       .queue_capacity_bytes = 100'000},
            sink);
  link.deliver(make_test_packet(net, {0, 1}, {1, 1}, 1500));
  sim.run();
  EXPECT_EQ(sink.packets(), 1u);
  EXPECT_EQ(sim.now().ns(), Duration::millis(4).ns());
}

TEST(LinkTest, BackToBackPacketsSerialize) {
  sim::Simulator sim;
  Network net(sim);
  CountingSink sink;
  Link link(sim, "l", {.rate_bps = 12'000'000,
                       .propagation = Duration::zero(),
                       .queue_capacity_bytes = 100'000},
            sink);
  for (int i = 0; i < 5; ++i) {
    link.deliver(make_test_packet(net, {0, 1}, {1, 1}, 1500));
  }
  sim.run();
  EXPECT_EQ(sink.packets(), 5u);
  // Five 1 ms transmissions, sequential.
  EXPECT_EQ(sim.now().ns(), Duration::millis(5).ns());
}

TEST(LinkTest, QueueOverflowDrops) {
  sim::Simulator sim;
  Network net(sim);
  CountingSink sink;
  // Queue only fits 2 x 1500 while one is transmitting.
  Link link(sim, "l", {.rate_bps = 1'000'000,
                       .propagation = Duration::zero(),
                       .queue_capacity_bytes = 3000},
            sink);
  for (int i = 0; i < 10; ++i) {
    link.deliver(make_test_packet(net, {0, 1}, {1, 1}, 1500));
  }
  sim.run();
  // 1 transmitting + 2 queued delivered; the rest dropped.
  EXPECT_EQ(sink.packets(), 3u);
  EXPECT_EQ(link.queue().dropped(), 7u);
}

TEST(LinkTest, ThroughputMatchesRate) {
  sim::Simulator sim;
  Network net(sim);
  CountingSink sink;
  Link link(sim, "l", {.rate_bps = 20'000'000,
                       .propagation = Duration::millis(1),
                       .queue_capacity_bytes = 10'000'000},
            sink);
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    link.deliver(make_test_packet(net, {0, 1}, {1, 1}, 1400));
  }
  sim.run();
  const double expected_s = n * 1400 * 8.0 / 20e6 + 0.001;
  EXPECT_NEAR(sim.now().to_seconds(), expected_s, 1e-6);
}

// -------------------------------------------------------- Node routing ----

TEST(NodeTest, LocalDeliveryByPort) {
  sim::Simulator sim;
  Network net(sim);
  Node& n = net.add_node("host");
  CountingSink sink;
  n.bind(5, &sink);
  n.deliver(make_test_packet(net, {9, 1}, {n.id(), 5}, 100));
  EXPECT_EQ(sink.packets(), 1u);
  EXPECT_EQ(n.delivered_local(), 1u);
}

TEST(NodeTest, UnboundPortDeadLetters) {
  sim::Simulator sim;
  Network net(sim);
  Node& n = net.add_node("host");
  n.deliver(make_test_packet(net, {9, 1}, {n.id(), 5}, 100));
  EXPECT_EQ(n.dead_lettered(), 1u);
}

TEST(NetworkTest, ComputeRoutesForwardsAcrossHops) {
  sim::Simulator sim;
  Network net(sim);
  Node& a = net.add_node("a");
  Node& r = net.add_node("r");
  Node& b = net.add_node("b");
  LinkConfig fast{.rate_bps = 100'000'000,
                  .propagation = Duration::millis(1),
                  .queue_capacity_bytes = 1'000'000};
  net.add_duplex_link(a, r, fast);
  net.add_duplex_link(r, b, fast);
  net.compute_routes();

  CountingSink sink;
  b.bind(7, &sink);
  a.send(make_test_packet(net, {a.id(), 7}, {b.id(), 7}, 500));
  sim.run();
  EXPECT_EQ(sink.packets(), 1u);
  EXPECT_EQ(r.forwarded(), 1u);
}

TEST(NetworkTest, TracerCountsPerFlow) {
  sim::Simulator sim;
  Network net(sim);
  CountingTracer tracer;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  net.add_duplex_link(a, b,
                      {.rate_bps = 10'000'000,
                       .propagation = Duration::millis(1),
                       .queue_capacity_bytes = 100'000});
  net.compute_routes();
  net.set_tracer(&tracer);

  CountingSink sink;
  b.bind(7, &sink);
  a.send(make_test_packet(net, {a.id(), 7}, {b.id(), 7}, 500, /*flow=*/42));
  a.send(make_test_packet(net, {a.id(), 7}, {b.id(), 7}, 500, /*flow=*/42));
  sim.run();
  EXPECT_EQ(tracer.flow(42).transmitted, 2u);
  EXPECT_EQ(tracer.flow(42).delivered, 2u);
  EXPECT_EQ(tracer.flow(42).dropped, 0u);
}

// ------------------------------------------------------------- Dumbbell ---

TEST(DumbbellTest, EndToEndRttMatchesConfig) {
  sim::Simulator sim;
  Network net(sim);
  Dumbbell db(net, {.pairs = 2, .path_rtt = Duration::millis(30)});

  CountingSink sink;
  db.right(0).bind(7, &sink);
  TimePoint arrival;
  CallbackSink capture([&](PacketPtr) { arrival = sim.now(); });
  db.right(0).bind(7, &capture);

  db.left(0).send(
      make_test_packet(net, {db.left(0).id(), 7}, {db.right(0).id(), 7}, 100));
  sim.run();
  // One-way propagation is rtt/2 plus (tiny) serialization delays.
  EXPECT_GE((arrival - TimePoint::zero()).ms(), 14);
  EXPECT_LE((arrival - TimePoint::zero()).ms(), 17);
}

TEST(DumbbellTest, CrossTrafficSharesBottleneck) {
  sim::Simulator sim;
  Network net(sim);
  Dumbbell db(net, {.pairs = 2});
  CountingSink s0, s1;
  db.right(0).bind(7, &s0);
  db.right(1).bind(7, &s1);
  db.left(0).send(
      make_test_packet(net, {db.left(0).id(), 7}, {db.right(0).id(), 7}, 100));
  db.left(1).send(
      make_test_packet(net, {db.left(1).id(), 7}, {db.right(1).id(), 7}, 100));
  sim.run();
  EXPECT_EQ(s0.packets(), 1u);
  EXPECT_EQ(s1.packets(), 1u);
  EXPECT_EQ(db.bottleneck().transmitted(), 2u);
}

TEST(DumbbellTest, ReverseBottleneckCarriesAcks) {
  sim::Simulator sim;
  Network net(sim);
  Dumbbell db(net, {.pairs = 1});
  CountingSink sink;
  db.left(0).bind(7, &sink);
  db.right(0).send(
      make_test_packet(net, {db.right(0).id(), 7}, {db.left(0).id(), 7}, 40));
  sim.run();
  EXPECT_EQ(sink.packets(), 1u);
  EXPECT_EQ(db.bottleneck_reverse().transmitted(), 1u);
}

}  // namespace
}  // namespace iq::net
